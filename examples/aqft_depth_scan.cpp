// How much QFT do you actually need? Scans the AQFT approximation depth d
// for several register sizes and prints the fidelity to the exact QFT and
// the gate savings — the trade-off behind the paper's entire study, and a
// direct look at Barenco et al.'s d ≈ log2(n) rule of thumb.
#include <cmath>
#include <iostream>

#include "common/table.h"
#include "qfb/qft.h"
#include "sim/statevector.h"
#include "transpile/transpile.h"

namespace {

using namespace qfab;

/// Mean |<AQFT_d y | QFT y>| over a sample of basis inputs.
double mean_fidelity(int n, int d) {
  const QuantumCircuit approx = make_qft(n, d);
  const QuantumCircuit full = make_qft(n);
  double sum = 0.0;
  int samples = 0;
  const u64 step = std::max<u64>(1, pow2(n) / 32);
  for (u64 y = 0; y < pow2(n); y += step) {
    StateVector a(n), b(n);
    a.set_basis_state(y);
    b.set_basis_state(y);
    a.apply_circuit(approx);
    b.apply_circuit(full);
    cplx acc{0.0, 0.0};
    for (u64 i = 0; i < a.dim(); ++i)
      acc += std::conj(a.amplitude(i)) * b.amplitude(i);
    sum += std::abs(acc);
    ++samples;
  }
  return sum / samples;
}

}  // namespace

int main() {
  std::cout << "AQFT depth scan: fidelity to the exact QFT vs gates saved\n"
            << "(Barenco et al. predict the optimum near d = log2 n under "
               "decoherence)\n\n";
  for (int n : {4, 8, 12}) {
    std::cout << "n = " << n << " qubits (log2 n = "
              << std::log2(static_cast<double>(n)) << "):\n";
    TextTable table({"d", "mean fidelity", "CX gates", "vs full"});
    const auto full_cx =
        transpile_to_basis(make_qft(n)).counts().two_qubit;
    for (int d = 1; d <= n - 1; ++d) {
      const auto cx = transpile_to_basis(make_qft(n, d)).counts().two_qubit;
      table.add_row({std::to_string(d), fmt_double(mean_fidelity(n, d), 6),
                     std::to_string(cx),
                     fmt_percent(static_cast<double>(cx) /
                                     static_cast<double>(full_cx),
                                 0) + "%"});
      if (d >= 8) break;  // deeper rows are indistinguishable from 1
    }
    table.print(std::cout);
    std::cout << '\n';
  }
  std::cout << "Already at d = log2 n the fidelity is within a fraction of\n"
            << "a percent of exact while using roughly half the CX budget —\n"
            << "on a noisy machine those missing gates are pure profit,\n"
            << "which is the effect the paper measures end-to-end.\n";
  return 0;
}
