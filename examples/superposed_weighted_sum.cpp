// Weighted sums over superposed inputs — the data-processing motif from
// the paper's introduction: one circuit execution evaluates acc = 3x + 2y
// for *every* combination of superposed x and y values in parallel.
#include <iostream>

#include "arith/expected.h"
#include "arith/qint.h"
#include "qfb/weighted_sum.h"
#include "sim/statevector.h"
#include "transpile/transpile.h"

int main() {
  using namespace qfab;

  // x in {1, 2, 5}, y in {0, 3}: six (x, y) branches at once.
  const QInt x = QInt::uniform(3, {1, 2, 5});
  const QInt y = QInt::uniform(3, {0, 3});
  const int acc_bits = 6;

  QuantumCircuit qc(0);
  const QubitRange xr = qc.add_register("x", 3);
  const QubitRange yr = qc.add_register("y", 3);
  const QubitRange acc = qc.add_register("acc", acc_bits);
  append_weighted_sum(qc,
                      {WeightedTerm{range_qubits(xr), 3},
                       WeightedTerm{range_qubits(yr), 2}},
                      range_qubits(acc));

  const QuantumCircuit basis = transpile_to_basis(qc);
  std::cout << "weighted-sum circuit acc += 3x + 2y: "
            << basis.counts().one_qubit << " 1q + "
            << basis.counts().two_qubit << " 2q basis gates\n\n";

  StateVector sv =
      prepare_product_state(qc.num_qubits(), {{xr, x}, {yr, y}});
  sv.apply_circuit(basis);

  const auto marg = sv.marginal_probabilities(range_qubits(acc));
  std::cout << "accumulator distribution (one circuit run):\n";
  for (std::size_t v = 0; v < marg.size(); ++v)
    if (marg[v] > 1e-9)
      std::cout << "  acc=" << v << "  P=" << marg[v] << "\n";

  const auto expected = expected_weighted_sums({{x, 3}, {y, 2}}, 0, acc_bits);
  std::cout << "\nclassically expected values:";
  for (u64 v : expected) std::cout << ' ' << v;
  std::cout << "\n(each (x,y) branch carries probability 1/6; branches with\n"
            << "equal sums add their probabilities)\n";
  return 0;
}
