// Quickstart: add two integers with Quantum Fourier Addition.
//
//   1. build the QFA circuit (QFT -> phase add -> inverse QFT),
//   2. transpile it to the IBM basis {Id, X, RZ, SX, CX},
//   3. simulate and sample measurement shots,
//   4. compare the full QFT against an approximate (AQFT) run.
//
// Build & run:  ./build/examples/quickstart
#include <iostream>

#include "arith/qint.h"
#include "qfb/adder.h"
#include "sim/statevector.h"
#include "transpile/transpile.h"

int main() {
  using namespace qfab;
  const int n = 6;  // 6-bit operands, modular arithmetic (mod 64)
  const std::int64_t a = 23, b = 42;

  // --- 1. build -----------------------------------------------------------
  const QuantumCircuit qfa = make_qfa(n, n, {});
  std::cout << "QFA circuit on " << qfa.num_qubits() << " qubits: "
            << qfa.gates().size() << " abstract gates, depth "
            << qfa.depth() << "\n";

  // --- 2. transpile -------------------------------------------------------
  const TranspileReport report = transpile(qfa);
  std::cout << "transpiled to basis {id,x,sx,rz,cx}: "
            << report.counts.one_qubit << " 1q + " << report.counts.two_qubit
            << " 2q gates\n\n";

  // --- 3. simulate --------------------------------------------------------
  StateVector sv = prepare_product_state(
      2 * n, {{QubitRange{0, n}, QInt::classical(n, a)},
              {QubitRange{n, n}, QInt::classical(n, b)}});
  sv.apply_circuit(report.circuit);

  Pcg64 rng(1);
  std::vector<int> y_register;
  for (int i = n; i < 2 * n; ++i) y_register.push_back(i);
  const auto counts = sv.sample_counts(y_register, 1024, rng);
  std::cout << a << " + " << b << " (mod " << (1 << n) << ") measured:\n";
  for (std::size_t v = 0; v < counts.size(); ++v)
    if (counts[v] > 0)
      std::cout << "  |" << v << ">  x" << counts[v] << " shots\n";
  std::cout << "  expected: " << (a + b) % (1 << n) << "\n\n";

  // --- 4. approximate QFT -------------------------------------------------
  std::cout << "AQFT comparison (same sum, varying approximation depth d):\n";
  for (int d : {1, 2, 3, kFullDepth}) {
    AdderOptions opt;
    opt.qft_depth = d;
    const QuantumCircuit approx = transpile_to_basis(make_qfa(n, n, opt));
    StateVector asv = prepare_product_state(
        2 * n, {{QubitRange{0, n}, QInt::classical(n, a)},
                {QubitRange{n, n}, QInt::classical(n, b)}});
    asv.apply_circuit(approx);
    const auto marg = asv.marginal_probabilities(y_register);
    const double p_correct = marg[static_cast<u64>((a + b) % (1 << n))];
    std::cout << "  d=" << (d == kFullDepth ? "full" : std::to_string(d))
              << ": " << approx.counts().two_qubit << " CX gates, "
              << "P(correct sum) = " << p_correct << "\n";
  }
  std::cout << "\nEven d=2 keeps the correct sum dominant while removing a\n"
            << "third of the 2-qubit gates — the paper's central trade-off.\n";
  return 0;
}
