// Period finding — the Shor's-algorithm core that motivates the paper's
// interest in QFT arithmetic — built entirely from this library's
// components: Beauregard modular multiplication (itself built on
// Fourier-basis constant adders), phase estimation, and the inverse QFT.
//
// We find the order r of a = 7 modulo N = 15 (r = 4): the counting
// register's distribution peaks at multiples of 2^t / r, and the continued
// -fraction step recovers r. Runs a full state-vector simulation on 16
// qubits in a few seconds.
#include <algorithm>
#include <cmath>
#include <numeric>
#include <utility>
#include <iostream>
#include <vector>

#include "qfb/modular.h"
#include "qfb/qft.h"
#include "sim/statevector.h"

namespace {

using namespace qfab;

/// Best rational approximation of phase ≈ s/r with r < max_r (continued
/// fractions).
u64 denominator_from_phase(double phase, u64 max_r) {
  double x = phase;
  u64 num_prev = 1, num = 0;   // convergent numerators (unused but kept
  u64 den_prev = 0, den = 1;   // for clarity); denominators drive the loop
  for (int step = 0; step < 16; ++step) {
    const double a_f = std::floor(1.0 / std::max(x, 1e-12));
    const auto a = static_cast<u64>(a_f);
    const u64 den_next = a * den + den_prev;
    if (den_next > max_r) break;
    den_prev = std::exchange(den, den_next);
    num_prev = std::exchange(num, a * num + num_prev);
    x = 1.0 / std::max(x, 1e-12) - a_f;
    if (x < 1e-9) break;
  }
  return den;
}

}  // namespace

int main() {
  const u64 N = 15, a = 7;
  const int n = 4;   // value register width (N < 16)
  const int t = 6;   // counting qubits: resolution 2^6 = 64

  // Register layout: x value [0,4), scratch [4,9), ancilla 9,
  // counting [10, 10+t).
  QuantumCircuit qc(10 + t);
  std::vector<int> x = {0, 1, 2, 3};
  std::vector<int> scratch = {4, 5, 6, 7, 8};
  const int ancilla = 9;
  std::vector<int> counting;
  for (int i = 0; i < t; ++i) counting.push_back(10 + i);

  for (int q : counting) qc.h(q);
  // Controlled-U^{2^j} with U|x> = |a·x mod N>: multiply by a^{2^j} mod N.
  for (int j = 0; j < t; ++j) {
    const u64 factor = modular_pow(a, u64{1} << j, N);
    append_modular_mul_const(qc, x, scratch, ancilla, factor, N,
                             counting[static_cast<std::size_t>(j)]);
  }
  append_iqft(qc, counting, kFullDepth, /*with_swaps=*/true);

  std::cout << "period finding: a = " << a << ", N = " << N << ", "
            << qc.num_qubits() << " qubits, " << qc.gates().size()
            << " abstract gates\n\n";

  StateVector sv(qc.num_qubits());
  sv.set_basis_state(u64{1});  // |x> = |1>, everything else |0>
  sv.apply_circuit(qc);

  const auto dist = sv.marginal_probabilities(counting);
  std::cout << "counting-register peaks (P > 2%):\n";
  std::vector<std::pair<double, u64>> peaks;
  for (u64 v = 0; v < dist.size(); ++v)
    if (dist[v] > 0.02) peaks.push_back({dist[v], v});
  std::sort(peaks.rbegin(), peaks.rend());
  for (const auto& [p, v] : peaks) {
    const double phase = static_cast<double>(v) / std::ldexp(1.0, t);
    const u64 r = denominator_from_phase(phase, N);
    std::cout << "  |" << v << ">  P=" << p << "  phase=" << phase
              << "  -> candidate r=" << r << "\n";
  }

  // Majority answer: smallest r > 1 whose a^r = 1 (mod N).
  for (const auto& [p, v] : peaks) {
    const u64 r =
        denominator_from_phase(static_cast<double>(v) / std::ldexp(1.0, t), N);
    if (r > 1 && modular_pow(a, r, N) == 1) {
      std::cout << "\nrecovered order r = " << r << " (indeed " << a << "^"
                << r << " mod " << N << " = 1)\n";
      const u64 g1 = std::gcd(modular_pow(a, r / 2, N) + 1, N);
      const u64 g2 = std::gcd(modular_pow(a, r / 2, N) + N - 1, N);
      std::cout << "factors of " << N << ": " << g1 << " x " << g2 << "\n";
      return 0;
    }
  }
  std::cout << "\nno valid order among peaks (rerun with more counting "
               "qubits)\n";
  return 1;
}
