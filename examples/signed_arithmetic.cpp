// Signed (two's-complement) arithmetic with the same QFA circuits:
// addition, subtraction, and constant addition on negative numbers —
// the encoding the paper adopts in Sec. II.
#include <iostream>

#include "arith/qint.h"
#include "qfb/adder.h"
#include "sim/statevector.h"

namespace {

using namespace qfab;

std::int64_t run_add(int n, std::int64_t a, std::int64_t b, bool subtract) {
  AdderOptions opt;
  opt.subtract = subtract;
  const QuantumCircuit qc = make_qfa(n, n, opt);
  StateVector sv = prepare_product_state(
      2 * n, {{QubitRange{0, n}, QInt::classical(n, a)},
              {QubitRange{n, n}, QInt::classical(n, b)}});
  sv.apply_circuit(qc);
  std::vector<int> y;
  for (int i = n; i < 2 * n; ++i) y.push_back(i);
  const auto marg = sv.marginal_probabilities(y);
  u64 best = 0;
  for (u64 v = 1; v < marg.size(); ++v)
    if (marg[v] > marg[best]) best = v;
  return QInt::decode_signed(best, n);
}

std::int64_t run_const_add(int n, std::int64_t c, std::int64_t y0) {
  QuantumCircuit qc(n);
  std::vector<int> y;
  for (int i = 0; i < n; ++i) y.push_back(i);
  append_qfa_const(qc, y, c);
  StateVector sv(n);
  sv.set_basis_state(QInt::encode(y0, n));
  sv.apply_circuit(qc);
  const auto marg = sv.marginal_probabilities(y);
  u64 best = 0;
  for (u64 v = 1; v < marg.size(); ++v)
    if (marg[v] > marg[best]) best = v;
  return QInt::decode_signed(best, n);
}

}  // namespace

int main() {
  const int n = 6;  // values in [-32, 31]
  std::cout << "two's-complement arithmetic on " << n << "-bit registers\n\n";

  struct Case { std::int64_t a, b; };
  std::cout << "quantum addition (y += x):\n";
  for (const auto& [a, b] : {Case{-5, 17}, Case{-20, -9}, Case{31, 1}}) {
    const std::int64_t sum = run_add(n, a, b, false);
    std::cout << "  " << a << " + " << b << " = " << sum
              << (a + b == sum ? "" : "   (wrapped mod 64)") << "\n";
  }

  std::cout << "\nquantum subtraction (y -= x, negated rotations):\n";
  for (const auto& [a, b] : {Case{7, 3}, Case{-12, 4}, Case{25, -25}}) {
    std::cout << "  " << b << " - " << a << " = " << run_add(n, a, b, true)
              << "\n";
  }

  std::cout << "\nconstant addition (classical operand, 1q rotations only —\n"
            << "the dynamic-circuit variant the paper notes in Sec. III):\n";
  for (const auto& [c, y0] : {Case{-13, 20}, Case{9, -30}}) {
    std::cout << "  " << y0 << " + (" << c << ") = " << run_const_add(n, c, y0)
              << "\n";
  }
  return 0;
}
