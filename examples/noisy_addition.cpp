// Noisy arithmetic in one page: run 5-bit quantum addition under a 2q-gate
// depolarizing noise model and watch the paper's headline effect — the
// approximate QFT beating the full QFT once the machine is noisy.
#include <iostream>

#include "common/table.h"
#include "exp/sweep.h"

int main() {
  using namespace qfab;

  SweepConfig cfg;
  cfg.base.op = Operation::kAdd;
  cfg.base.n = 5;
  cfg.depths = {1, 2, 3, kFullDepth};
  cfg.rates_percent = {0.5, 1.0, 2.0};  // 2q error rates, percent
  cfg.vary_2q = true;
  cfg.orders = {2, 2};  // both addends order-2 superpositions
  cfg.instances = 10;
  cfg.run.shots = 1024;
  cfg.run.error_trajectories = 12;
  cfg.seed = 123;

  std::cout << "5-bit QFA, both addends order-2 superposed, 2q-gate "
               "depolarizing noise\n\n";

  Pcg64 gen(cfg.seed);
  const auto instances =
      generate_instances(cfg.instances, cfg.base.n, cfg.base.n, cfg.orders,
                         gen);
  const SweepResult result = run_sweep(cfg, instances);
  print_sweep(std::cout, result, "success rate by AQFT depth");

  std::cout << "Gate budgets per depth:\n";
  for (int d : cfg.depths) {
    CircuitSpec spec = cfg.base;
    spec.depth = d;
    const auto counts = build_transpiled_circuit(spec).counts();
    std::cout << "  d=" << depth_label(d) << ": " << counts.two_qubit
              << " CX, " << counts.one_qubit << " 1q\n";
  }
  std::cout << "\nAt low noise the full QFT wins; as the 2q error rate\n"
            << "climbs, shallower approximation depths overtake it — fewer\n"
            << "gates mean fewer error opportunities (paper Sec. IV).\n";
  return 0;
}
