#!/usr/bin/env bash
# Full CI pass: tier-1 tests + differential verification smoke, first in a
# plain release build, then under the two sanitizer presets
# (QFAB_SANITIZE=address -> ASan+UBSan, QFAB_SANITIZE=thread -> TSan).
# Sanitizer presets pin QFAB_SIMD=scalar: the portable kernel table is what
# the instrumented build can actually check, and results must not depend on
# the host's vector units.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local name="$1"
  shift
  local builddir="build-ci-${name}"
  echo "== ${name}: configure =="
  cmake -B "${builddir}" -S . "$@" >/dev/null
  echo "== ${name}: build =="
  cmake --build "${builddir}" -j "$(nproc)" >/dev/null
  echo "== ${name}: tier-1 tests =="
  (cd "${builddir}" && ctest --output-on-failure -j "$(nproc)")
  echo "== ${name}: verify smoke (ctest -L verify) =="
  (cd "${builddir}" && ctest -L verify --output-on-failure)
}

# Crash a bounded figure run mid-sweep with an injected fault, resume it
# from the checkpoint journal, and require the CSVs to match an
# uninterrupted reference run byte for byte (the durability contract;
# DESIGN.md §10). Exit 86 is the fault injector's distinctive crash code.
crash_resume_smoke() {
  local name="$1"
  local builddir="build-ci-${name}"
  local smokedir="${builddir}/crash_resume_smoke"
  local flags=(--instances 3 --traj 3 --shots 64 --depths 1,2
               --rates1q 0.4 --rates2q 1.0 --quiet)
  echo "== ${name}: crash-resume smoke =="
  rm -rf "${smokedir}"
  mkdir -p "${smokedir}"
  (
    cd "${smokedir}"
    ../bench/fig1_qfa_sweep "${flags[@]}" --csv ref >/dev/null
    set +e
    QFAB_FAULT=crash-after-unit=2 ../bench/fig1_qfa_sweep "${flags[@]}" \
      --csv ckpt --checkpoint ckpt >/dev/null 2>&1
    local crash_rc=$?
    set -e
    if [[ "${crash_rc}" -ne 86 ]]; then
      echo "crash-resume smoke: expected injected-crash exit 86, got ${crash_rc}" >&2
      exit 1
    fi
    ../bench/fig1_qfa_sweep "${flags[@]}" --csv ckpt --checkpoint ckpt \
      --resume >/dev/null
    for ref in ref_*.csv; do
      cmp "${ref}" "ckpt${ref#ref}"
    done
  )
  echo "== ${name}: crash-resume smoke: resumed CSVs match reference =="
}

# Multi-process fabric smoke: crash the only worker of a 1-worker fabric
# after its first journaled unit (respawn budget 0, so the run strands and
# exits resumable), then resume with 2 workers while wedging the first of
# them (hang-after-unit=0, so the coordinator must expire its lease,
# SIGKILL it, and reassign the unit). The merged CSV must match a
# single-process --workers=0 reference byte for byte (DESIGN.md §13).
fabric_smoke() {
  local name="$1"
  local builddir="build-ci-${name}"
  local smokedir="${builddir}/fabric_smoke"
  local flags=(--n 5 --instances 4 --shots 64 --traj 4 --depths 1,2
               --rates 0.5,1.0)
  echo "== ${name}: fabric crash+stall resume smoke =="
  rm -rf "${smokedir}"
  mkdir -p "${smokedir}"
  (
    cd "${smokedir}"
    ../tools/qfab_sweepd "${flags[@]}" --workers 0 --csv ref >/dev/null
    set +e
    QFAB_FAULT='crash-after-unit=1,fault-worker=0' ../tools/qfab_sweepd \
      "${flags[@]}" --workers 1 --max-respawns 0 --lease 0.5 --dir fab \
      --csv fab >/dev/null 2>&1
    local crash_rc=$?
    set -e
    if [[ "${crash_rc}" -ne 75 ]]; then
      echo "fabric smoke: expected stranded-fabric exit 75, got ${crash_rc}" >&2
      exit 1
    fi
    # Resumed worker ids continue above the dead shard's, so the first new
    # worker is id 1 — the one the hang directive targets.
    QFAB_FAULT='hang-after-unit=0,fault-worker=1' ../tools/qfab_sweepd \
      "${flags[@]}" --workers 2 --resume --lease 0.5 --dir fab \
      --csv fab >/dev/null 2>&1
    cmp ref.csv fab.csv
  )
  echo "== ${name}: fabric smoke: merged CSV matches single-process reference =="
}

# Bounded batched-throughput smoke against the checked-in baseline: rerun
# the batch={4,8,16} rows of bench_batch — the end-to-end sweep points AND
# the "<case>_replay" lane-scaling rows — and fail if any (case, simd,
# precision, batch) row's inst_per_sec drops more than 30% below
# results/BENCH_batch.json. The 30% band plus median-of-reps timing
# absorbs normal scheduler noise; the baseline is host-specific, so set
# QFAB_SKIP_PERF=1 on other machines.
perf_smoke() {
  local name="$1"
  local builddir="build-ci-${name}"
  if [[ "${QFAB_SKIP_PERF:-0}" == "1" ]]; then
    echo "== ${name}: perf smoke skipped (QFAB_SKIP_PERF=1) =="
    return
  fi
  if ! command -v python3 >/dev/null 2>&1; then
    echo "== ${name}: perf smoke skipped (no python3) =="
    return
  fi
  echo "== ${name}: batched perf smoke (bounded) =="
  "./${builddir}/bench/bench_batch" --instances 8 --reps 3 --batches 4,8,16 \
    --out "${builddir}/BENCH_batch_smoke.json" >/dev/null
  python3 - "${builddir}/BENCH_batch_smoke.json" results/BENCH_batch.json <<'PY'
import json, sys
smoke = json.load(open(sys.argv[1]))
ref = json.load(open(sys.argv[2]))
key = lambda r: (r["name"], r["simd"], r["precision"], r["batch"])
ref_rows = {key(r): r for r in ref["cases"]}
worst = None
for row in smoke["cases"]:
    base = ref_rows.get(key(row))
    if base is None:
        continue
    ratio = row["inst_per_sec"] / base["inst_per_sec"]
    if worst is None or ratio < worst[0]:
        worst = (ratio, key(row))
    if ratio < 0.7:
        sys.exit("perf regression: %s: %.1f inst/sec vs baseline %.1f"
                 " (%.0f%% drop)" % (key(row), row["inst_per_sec"],
                                     base["inst_per_sec"], 100 * (1 - ratio)))
if worst is None:
    sys.exit("perf smoke: no overlapping rows with the baseline")
print("perf smoke: worst ratio %.2fx at %s" % worst)
PY
}

run_preset plain
echo "== plain: bench_sweep smoke (bounded) =="
./build-ci-plain/bench/bench_sweep --instances 4 --traj 6 --shots 256 \
  --reps 1 --out build-ci-plain/BENCH_sweep_smoke.json
perf_smoke plain
crash_resume_smoke plain
fabric_smoke plain
QFAB_SIMD=scalar run_preset asan -DQFAB_SANITIZE=address
QFAB_SIMD=scalar crash_resume_smoke asan
QFAB_SIMD=scalar fabric_smoke asan
QFAB_SIMD=scalar run_preset tsan -DQFAB_SANITIZE=thread
# The fabric suite (worker fork, heartbeat threads, lease supervision) is
# part of tier-1 above; re-run it alone under TSan so a data race in the
# fabric fails loudly with its own name.
echo "== tsan: fabric suite =="
(cd build-ci-tsan && ctest -R '^test_fabric' --output-on-failure)

echo "CI: all presets green"
