#!/usr/bin/env bash
# Full CI pass: tier-1 tests + differential verification smoke, first in a
# plain release build, then under the two sanitizer presets
# (QFAB_SANITIZE=address -> ASan+UBSan, QFAB_SANITIZE=thread -> TSan).
# Sanitizer presets pin QFAB_SIMD=scalar: the portable kernel table is what
# the instrumented build can actually check, and results must not depend on
# the host's vector units.
set -euo pipefail
cd "$(dirname "$0")/.."

run_preset() {
  local name="$1"
  shift
  local builddir="build-ci-${name}"
  echo "== ${name}: configure =="
  cmake -B "${builddir}" -S . "$@" >/dev/null
  echo "== ${name}: build =="
  cmake --build "${builddir}" -j "$(nproc)" >/dev/null
  echo "== ${name}: tier-1 tests =="
  (cd "${builddir}" && ctest --output-on-failure -j "$(nproc)")
  echo "== ${name}: verify smoke (ctest -L verify) =="
  (cd "${builddir}" && ctest -L verify --output-on-failure)
}

run_preset plain
echo "== plain: bench_sweep smoke (bounded) =="
./build-ci-plain/bench/bench_sweep --instances 4 --traj 6 --shots 256 \
  --reps 1 --out build-ci-plain/BENCH_sweep_smoke.json
QFAB_SIMD=scalar run_preset asan -DQFAB_SANITIZE=address
QFAB_SIMD=scalar run_preset tsan -DQFAB_SANITIZE=thread

echo "CI: all presets green"
