// Differential verification CLI.
//
//   tools/qfab_verify --cases 200 --seed 1
//       run 200 seeded random cases through the engine matrix; exit 1 and
//       dump minimized QASM repros to results/verify_failures/ on any
//       mismatch.
//   tools/qfab_verify --repro results/verify_failures/seed1_case37.qasm
//       replay one dumped failure.
//
// See DESIGN.md §8 for the engine matrix and invariants.
#include <iostream>

#include "common/cli.h"
#include "sim/batch.h"
#include "verify/repro.h"
#include "verify/verify.h"

int main(int argc, char** argv) {
  using namespace qfab;
  using namespace qfab::verify;

  const CliFlags flags(argc, argv);
  VerifyOptions opt;
  opt.seed = static_cast<std::uint64_t>(flags.get_int("seed", 1));
  opt.cases = static_cast<std::size_t>(flags.get_int("cases", 200));
  opt.generator.max_qubits = static_cast<int>(flags.get_int("max-qubits", 6));
  opt.generator.max_gates = static_cast<int>(flags.get_int("max-gates", 48));
  opt.engines.tol = flags.get_double("tol", 1e-10);
  opt.engines.channel_tol = flags.get_double("channel-tol", 0.12);
  opt.engines.f32_tol = flags.get_double("f32-tol", opt.engines.f32_tol);
  opt.engines.error_trajectories =
      static_cast<int>(flags.get_int("traj", 96));
  opt.engines.check_noisy = flags.get_bool("noisy", true);
  opt.shrink = flags.get_bool("shrink", true);
  opt.max_failures =
      static_cast<std::size_t>(flags.get_int("max-failures", 8));
  opt.failure_dir = flags.get_string("out", "results/verify_failures");
  opt.progress = flags.get_bool("progress", false);
  const std::string repro = flags.get_string("repro", "");
  // Hidden self-test flag: emulate a batched-kernel regression (one sign
  // flip) that the harness must catch; see sim/batch.h.
  const bool inject = flags.get_bool("inject-kernel-bug", false);
  if (!flags.validate()) return 2;

  if (inject) detail::set_batch_fault_injection(true);

  try {
    if (!repro.empty()) {
      const std::string failure = run_repro(repro, opt.engines);
      if (failure.empty()) {
        std::cout << "repro " << repro << ": PASSES (fixed or not "
                  << "reproducible in this build)\n";
        return 0;
      }
      std::cout << "repro " << repro << ": still fails\n  " << failure
                << '\n';
      return 1;
    }
    const VerifyReport report = run_verification(opt);
    print_report(std::cout, report);
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::cerr << "qfab_verify: " << e.what() << '\n';
    return 2;
  }
}
