// Sweep checkpoint-journal inspection and repair CLI.
//
//   tools/qfab_journal results/fig1_1to1_1q.journal
//       print the journal's header status, config fingerprint, record
//       counts by type, and whether a damaged tail was dropped.
//   tools/qfab_journal results/fig1_1to1_1q.journal --records
//       additionally list every record's (depth_index, instance block).
//   tools/qfab_journal results/fig1_1to1_1q.journal --repair
//       rewrite the file to its valid prefix (atomic tmp+fsync+rename),
//       discarding a torn or corrupt tail so the next --resume does not
//       have to.
//
// Exit codes: 0 = journal readable (possibly after --repair), 1 = header
// missing/unrecognizable, 2 = usage error.
//
// See DESIGN.md §10 for the journal format.
#include <cstdio>
#include <iostream>
#include <string>

#include "exp/journal.h"

int main(int argc, char** argv) {
  using namespace qfab;

  std::string path;
  bool repair = false;
  bool records = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repair") repair = true;
    else if (arg == "--records") records = true;
    else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << "\n"
                << "usage: qfab_journal <journal> [--records] [--repair]\n";
      return 2;
    } else if (path.empty()) {
      path = arg;
    } else {
      std::cerr << "usage: qfab_journal <journal> [--records] [--repair]\n";
      return 2;
    }
  }
  if (path.empty()) {
    std::cerr << "usage: qfab_journal <journal> [--records] [--repair]\n";
    return 2;
  }

  const JournalContents contents = read_journal(path);
  if (!contents.header_ok) {
    std::cout << path << ": not a readable sweep journal";
    if (!contents.note.empty()) std::cout << " (" << contents.note << ")";
    std::cout << '\n';
    return 1;
  }

  std::size_t units = 0, timeouts = 0, poisoned = 0;
  for (const JournalRecord& rec : contents.records) {
    switch (rec.type) {
      case JournalRecord::Type::kUnit: ++units; break;
      case JournalRecord::Type::kTimeout: ++timeouts; break;
      case JournalRecord::Type::kPoisoned: ++poisoned; break;
    }
  }

  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(contents.fingerprint));
  std::cout << path << ":\n"
            << "  fingerprint  " << fp << '\n'
            << "  records      " << contents.records.size() << " (" << units
            << " unit, " << poisoned << " poisoned, " << timeouts
            << " timeout marker" << (timeouts == 1 ? "" : "s") << ")\n"
            << "  valid bytes  " << contents.valid_bytes << '\n';
  if (contents.dropped_tail)
    std::cout << "  DAMAGED TAIL dropped: " << contents.note << '\n';

  if (records) {
    for (const JournalRecord& rec : contents.records) {
      const char* kind = rec.type == JournalRecord::Type::kUnit ? "unit"
                         : rec.type == JournalRecord::Type::kPoisoned
                             ? "poisoned"
                             : "timeout";
      std::cout << "  " << kind << " depth_index=" << rec.depth_index
                << " instances=[" << rec.block_begin << ',' << rec.block_end
                << ')';
      if (!rec.error.empty()) std::cout << "  error: " << rec.error;
      std::cout << '\n';
    }
  }

  if (repair) {
    if (contents.dropped_tail) {
      rewrite_journal(path, contents);
      std::cout << "  repaired: rewrote the valid prefix ("
                << contents.records.size() << " record(s))\n";
    } else {
      std::cout << "  repair not needed\n";
    }
  } else if (contents.dropped_tail) {
    std::cout << "  (run with --repair to rewrite the valid prefix; "
                 "--resume does this automatically)\n";
  }
  return 0;
}
