// Sweep checkpoint-journal inspection and repair CLI.
//
//   tools/qfab_journal results/fig1_1to1_1q.journal
//       print the journal's header status, config fingerprint, record
//       counts by type, and whether a damaged tail was dropped.
//   tools/qfab_journal results/fig1_1to1_1q.journal --records
//       additionally list every record's (depth_index, instance block).
//   tools/qfab_journal results/fig1_1to1_1q.journal --repair
//       rewrite the file to its valid prefix (atomic tmp+fsync+rename),
//       reporting how many record frames the damaged tail stranded
//       instead of silently truncating.
//   tools/qfab_journal --fabric results/fabric1
//       inspect a sweep-fabric directory (exp/fabric.h): manifest, done
//       markers, live leases, and every shard journal's health.
//   tools/qfab_journal --fabric results/fabric1 --repair
//       additionally rewrite damaged shard journals to their valid
//       prefixes and clear stale lease files. Only safe when no fabric
//       coordinator is running on the directory.
//
// Exit codes: 0 = readable (possibly after --repair), 1 = journal or
// manifest missing/unrecognizable, 2 = usage error.
//
// See DESIGN.md §10 for the journal format and §13 for the fabric layout.
#include <cstdio>
#include <iostream>
#include <string>

#include "exp/fabric.h"
#include "exp/journal.h"

namespace {

int usage() {
  std::cerr << "usage: qfab_journal <journal> [--records] [--repair]\n"
               "       qfab_journal --fabric <dir> [--repair]\n";
  return 2;
}

int run_fabric_mode(const std::string& dir, bool repair) {
  using namespace qfab;
  const FabricStatus status = inspect_fabric(dir);
  if (!status.manifest_ok) {
    std::cout << dir << ": not a fabric directory (no readable MANIFEST)\n";
    return 1;
  }
  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(status.fingerprint));
  std::cout << dir << ":\n"
            << "  fingerprint  " << fp << '\n'
            << "  units        " << status.done_markers << '/'
            << status.n_units << " done\n"
            << "  leases       " << status.leases.size() << " live\n";
  for (const FabricLeaseStatus& lease : status.leases)
    std::cout << "    " << lease.file << "  " << lease.content << '\n';
  std::cout << "  shards       " << status.shards.size() << '\n';
  for (const FabricShardStatus& shard : status.shards) {
    std::cout << "    " << shard.file << "  ";
    if (!shard.header_ok) {
      std::cout << "UNREADABLE";
      if (!shard.note.empty()) std::cout << " (" << shard.note << ")";
      std::cout << '\n';
      continue;
    }
    std::cout << shard.records << " record(s)";
    if (!shard.fingerprint_ok) std::cout << "  FINGERPRINT MISMATCH";
    if (shard.dropped_tail)
      std::cout << "  DAMAGED TAIL (" << shard.dropped_frames
                << " stranded record frame(s), " << shard.dropped_bytes
                << " byte(s))";
    std::cout << '\n';
  }

  if (repair) {
    const FabricRepair result = repair_fabric(dir);
    std::cout << "  repaired: " << result.shards_rewritten
              << " shard(s) rewritten, " << result.dropped_records
              << " stranded record frame(s) dropped (" << result.dropped_bytes
              << " byte(s)), " << result.leases_cleared
              << " lease(s) cleared\n";
  } else {
    bool damaged = false;
    for (const FabricShardStatus& shard : status.shards)
      damaged = damaged || shard.dropped_tail;
    if (damaged || !status.leases.empty())
      std::cout << "  (run with --repair to rewrite damaged shards and "
                   "clear stale leases; only with no fabric running)\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace qfab;

  std::string path;
  std::string fabric;
  bool repair = false;
  bool records = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--repair") repair = true;
    else if (arg == "--records") records = true;
    else if (arg == "--fabric") {
      if (i + 1 >= argc) return usage();
      fabric = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "unknown flag " << arg << '\n';
      return usage();
    } else if (path.empty()) {
      path = arg;
    } else {
      return usage();
    }
  }
  if (!fabric.empty()) {
    if (!path.empty() || records) return usage();
    return run_fabric_mode(fabric, repair);
  }
  if (path.empty()) return usage();

  const JournalContents contents = read_journal(path);
  if (!contents.header_ok) {
    std::cout << path << ": not a readable sweep journal";
    if (!contents.note.empty()) std::cout << " (" << contents.note << ")";
    std::cout << '\n';
    return 1;
  }

  std::size_t units = 0, timeouts = 0, poisoned = 0;
  for (const JournalRecord& rec : contents.records) {
    switch (rec.type) {
      case JournalRecord::Type::kUnit: ++units; break;
      case JournalRecord::Type::kTimeout: ++timeouts; break;
      case JournalRecord::Type::kPoisoned: ++poisoned; break;
    }
  }

  char fp[32];
  std::snprintf(fp, sizeof fp, "%016llx",
                static_cast<unsigned long long>(contents.fingerprint));
  std::cout << path << ":\n"
            << "  fingerprint  " << fp << '\n'
            << "  records      " << contents.records.size() << " (" << units
            << " unit, " << poisoned << " poisoned, " << timeouts
            << " timeout marker" << (timeouts == 1 ? "" : "s") << ")\n"
            << "  valid bytes  " << contents.valid_bytes << '\n';
  if (contents.dropped_tail)
    std::cout << "  DAMAGED TAIL dropped: " << contents.note << '\n';

  if (records) {
    for (const JournalRecord& rec : contents.records) {
      const char* kind = rec.type == JournalRecord::Type::kUnit ? "unit"
                         : rec.type == JournalRecord::Type::kPoisoned
                             ? "poisoned"
                             : "timeout";
      std::cout << "  " << kind << " depth_index=" << rec.depth_index
                << " instances=[" << rec.block_begin << ',' << rec.block_end
                << ')';
      if (!rec.error.empty()) std::cout << "  error: " << rec.error;
      std::cout << '\n';
    }
  }

  if (repair) {
    if (contents.dropped_tail) {
      rewrite_journal(path, contents);
      std::cout << "  repaired: rewrote the valid prefix ("
                << contents.records.size() << " record(s) kept); dropped "
                << contents.dropped_frames << " stranded record frame(s)"
                << (contents.dropped_partial_frame
                        ? " plus a torn partial frame"
                        : "")
                << " in " << contents.dropped_bytes << " byte(s)\n";
    } else {
      std::cout << "  repair not needed\n";
    }
  } else if (contents.dropped_tail) {
    std::cout << "  (run with --repair to rewrite the valid prefix; "
                 "--resume does this automatically)\n";
  }
  return 0;
}
