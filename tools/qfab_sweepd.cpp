// Durable multi-process sweep daemon: one sweep panel executed through the
// fault-tolerant fabric (exp/fabric.h) — a coordinator plus K forked
// workers leasing work units from a filesystem-backed queue, each
// journaling to its own shard, merged into a result bit-identical to a
// single-process run.
//
//   tools/qfab_sweepd --dir results/fabric1 --workers 4
//       run the default sweep with four worker processes.
//   tools/qfab_sweepd --dir results/fabric1 --workers 4 --resume
//       continue an interrupted run: done units are kept, stale leases are
//       broken, and only the remainder is computed.
//   tools/qfab_sweepd --dir results/ref --workers 0 --csv ref
//       reference mode: the identical sweep through single-process
//       run_sweep_durable (no fabric) — CI diffs its CSV byte-for-byte
//       against the fabric's.
//
// Sweep shape flags mirror the figure benches: --op add|mul, --n, --depths,
// --rates, --vary-2q, --order-x/--order-y, --instances, --shots, --traj,
// --seed, --per-shot, --shared-trajectories. Fabric knobs: --workers,
// --lease (seconds), --max-respawns, --resume, --progress. Output: --csv
// PREFIX writes PREFIX.csv (the canonical sweep point dump).
//
// SIGINT/SIGTERM drain gracefully: the coordinator propagates the request
// to workers via SIGUSR1, workers finish their in-flight unit and exit
// kResumableExitCode, and the daemon exits kResumableExitCode with every
// completed unit durably journaled. A second SIGINT hard-exits (130).
// Per-worker exit codes are reported on shutdown.
//
// Exit codes: 0 complete, 75 drained/incomplete but resumable, 2 usage.
#include <cstdio>
#include <iostream>
#include <string>
#include <vector>

#include "common/cli.h"
#include "common/shutdown.h"
#include "exp/fabric.h"
#include "exp/instances.h"
#include "exp/journal.h"
#include "exp/sweep.h"

int main(int argc, char** argv) {
  using namespace qfab;

  install_shutdown_latch();
  const CliFlags flags(argc, argv);

  const std::string op_name = flags.get_string("op", "add");
  SweepConfig cfg;
  if (op_name == "add") {
    cfg.base.op = Operation::kAdd;
  } else if (op_name == "mul") {
    cfg.base.op = Operation::kMultiply;
  } else {
    std::cerr << "--op must be add or mul (got " << op_name << ")\n";
    return 2;
  }
  cfg.base.n = static_cast<int>(flags.get_int("n", 6));
  cfg.base.measure_all = flags.get_bool("measure-all", false);

  std::vector<long> depths = flags.get_int_list("depths", {1, 2, kFullDepth});
  for (long d : depths) cfg.depths.push_back(static_cast<int>(d));
  cfg.rates_percent = flags.get_double_list("rates", {0.2, 0.5, 1.0});
  cfg.vary_2q = flags.get_bool("vary-2q", false);
  cfg.orders.order_x = static_cast<int>(flags.get_int("order-x", 1));
  cfg.orders.order_y = static_cast<int>(flags.get_int("order-y", 1));
  cfg.instances = static_cast<int>(flags.get_int("instances", 8));
  cfg.run.shots = static_cast<std::uint64_t>(flags.get_int("shots", 256));
  cfg.run.error_trajectories =
      static_cast<int>(flags.get_int("traj", 8));
  cfg.run.per_shot = flags.get_bool("per-shot", false);
  cfg.run.shared_trajectories = flags.get_bool("shared-trajectories", true);
  cfg.seed = static_cast<std::uint64_t>(flags.get_int("seed", 2112'09349));
  cfg.progress = false;

  FabricOptions fabric;
  fabric.dir = flags.get_string("dir", "");
  fabric.workers = static_cast<int>(flags.get_int("workers", 2));
  fabric.resume = flags.get_bool("resume", false);
  fabric.lease_seconds = flags.get_double("lease", 5.0);
  fabric.max_respawns =
      static_cast<int>(flags.get_int("max-respawns", fabric.max_respawns));
  fabric.progress = flags.get_bool("progress", false);
  const std::string csv_prefix = flags.get_string("csv", "");
  if (!flags.validate()) return 2;
  if (fabric.dir.empty() && fabric.workers > 0) {
    std::cerr << "--dir is required (fabric state directory)\n";
    return 2;
  }

  // One operand set, derived exactly as the figure rows derive theirs, so
  // reference and fabric runs agree bit for bit.
  Pcg64 row_rng(cfg.seed ^
                (static_cast<std::uint64_t>(cfg.orders.order_x) << 8) ^
                static_cast<std::uint64_t>(cfg.orders.order_y));
  const std::vector<ArithInstance> instances = generate_instances(
      cfg.instances, cfg.base.n, cfg.base.n, cfg.orders, row_rng);

  SweepResult result;
  FabricReport report;
  if (fabric.workers <= 0) {
    // Reference mode: single-process durable sweep, journaled into the
    // fabric directory's namesake file when --dir is given.
    DurableOptions durable;
    if (!fabric.dir.empty()) {
      durable.journal_path = fabric.dir + ".journal";
      durable.resume = fabric.resume;
    }
    result = run_sweep_durable(cfg, instances, durable);
  } else {
    result = run_sweep_fabric(cfg, instances, fabric, &report);
    for (const WorkerExit& we : report.exits)
      std::fprintf(stderr, "[qfab-sweepd] worker %d (pid %ld) exit code %d\n",
                   we.worker_id, static_cast<long>(we.pid), we.exit_code);
    if (report.lease_steals || report.respawns || report.kills)
      std::fprintf(stderr,
                   "[qfab-sweepd] supervision: %d lease steal(s), %d "
                   "kill(s), %d respawn(s)\n",
                   report.lease_steals, report.kills, report.respawns);
  }

  if (!result.complete) {
    std::cout << "drained after " << result.units_done << '/'
              << result.units_total
              << " work units; re-run with --resume to continue\n";
    return kResumableExitCode;
  }

  print_sweep(std::cout, result,
              "sweepd " + op_name + " n=" + std::to_string(cfg.base.n) +
                  (cfg.vary_2q ? " | varying 2q" : " | varying 1q") +
                  " gate error");
  if (!csv_prefix.empty()) {
    const std::string path = csv_prefix + ".csv";
    sweep_csv_table(result).write_csv(path);
    std::cout << "wrote " << path << '\n';
  }
  return 0;
}
