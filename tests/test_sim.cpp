// State-vector kernel validation: every fast kernel is compared against
// dense matrix application (embed_gate) on random states, across qubit
// placements — the property that underwrites every other simulation result.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "linalg/gates.h"
#include "sim/statevector.h"

namespace qfab {
namespace {

std::vector<cplx> random_state(int n, Pcg64& rng) {
  std::vector<cplx> amps(pow2(n));
  double norm = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    norm += std::norm(a);
  }
  const double s = 1.0 / std::sqrt(norm);
  for (cplx& a : amps) a *= s;
  return amps;
}

double state_distance(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::norm(a[i] - b[i]);
  return std::sqrt(d);
}

TEST(StateVector, InitialState) {
  StateVector sv(3);
  EXPECT_EQ(sv.dim(), 8u);
  EXPECT_EQ(sv.amplitude(0), cplx(1.0, 0.0));
  for (u64 i = 1; i < 8; ++i) EXPECT_EQ(sv.amplitude(i), cplx(0.0, 0.0));
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(StateVector, SetBasisState) {
  StateVector sv(4);
  sv.set_basis_state(0b1010);
  EXPECT_EQ(sv.amplitude(0b1010), cplx(1.0, 0.0));
  EXPECT_EQ(sv.amplitude(0), cplx(0.0, 0.0));
}

TEST(StateVector, FromAmplitudesValidation) {
  EXPECT_THROW(StateVector::from_amplitudes({cplx{1, 0}, cplx{1, 0}}),
               CheckError);
  auto sv = StateVector::from_amplitudes(
      {cplx{std::sqrt(0.5), 0}, cplx{0, std::sqrt(0.5)}});
  EXPECT_EQ(sv.num_qubits(), 1);
}

// Parameterized kernel-vs-dense check over gate kinds and qubit layouts.
struct KernelCase {
  const char* name;
  Gate gate;
};

class KernelVsDense : public ::testing::TestWithParam<KernelCase> {};

TEST_P(KernelVsDense, MatchesDenseReference) {
  const Gate g = GetParam().gate;
  const int n = 5;
  Pcg64 rng(12345);
  for (int rep = 0; rep < 3; ++rep) {
    const std::vector<cplx> init = random_state(n, rng);
    StateVector fast = StateVector::from_amplitudes(init);
    fast.apply_gate(g);

    StateVector ref = StateVector::from_amplitudes(init);
    std::vector<int> targets(g.qubits.begin(), g.qubits.begin() + g.arity());
    ref.apply_matrix(g.matrix(), targets);

    EXPECT_LT(state_distance(fast.amplitudes(), ref.amplitudes()), 1e-10)
        << GetParam().name;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, KernelVsDense,
    ::testing::Values(
        KernelCase{"x_q0", make_gate1(GateKind::kX, 0)},
        KernelCase{"x_q4", make_gate1(GateKind::kX, 4)},
        KernelCase{"y_q2", make_gate1(GateKind::kY, 2)},
        KernelCase{"z_q3", make_gate1(GateKind::kZ, 3)},
        KernelCase{"h_q1", make_gate1(GateKind::kH, 1)},
        KernelCase{"sx_q2", make_gate1(GateKind::kSX, 2)},
        KernelCase{"sxdg_q0", make_gate1(GateKind::kSXdg, 0)},
        KernelCase{"rz_q3", make_gate1(GateKind::kRZ, 3, 0.77)},
        KernelCase{"ry_q1", make_gate1(GateKind::kRY, 1, -1.2)},
        KernelCase{"rx_q4", make_gate1(GateKind::kRX, 4, 2.5)},
        KernelCase{"p_q2", make_gate1(GateKind::kP, 2, 0.33)},
        KernelCase{"u_q0", make_gate1(GateKind::kU, 0, 1.0, 0.5, -0.7)},
        KernelCase{"cx_t0c1", make_gate2(GateKind::kCX, 0, 1)},
        KernelCase{"cx_t3c1", make_gate2(GateKind::kCX, 3, 1)},
        KernelCase{"cx_t1c4", make_gate2(GateKind::kCX, 1, 4)},
        KernelCase{"cz_q02", make_gate2(GateKind::kCZ, 0, 2)},
        KernelCase{"cp_t2c0", make_gate2(GateKind::kCP, 2, 0, 1.1)},
        KernelCase{"ch_t1c3", make_gate2(GateKind::kCH, 1, 3)},
        KernelCase{"swap_q13", make_gate2(GateKind::kSWAP, 1, 3)},
        KernelCase{"swap_q40", make_gate2(GateKind::kSWAP, 4, 0)},
        KernelCase{"ccp_t4c02", make_gate3(GateKind::kCCP, 4, 0, 2, 0.9)},
        KernelCase{"ccx_t0c24", make_gate3(GateKind::kCCX, 0, 2, 4)}),
    [](const ::testing::TestParamInfo<KernelCase>& info) {
      return info.param.name;
    });

TEST(StateVector, PauliKernelsMatchMatrices) {
  Pcg64 rng(99);
  const std::vector<cplx> init = random_state(4, rng);
  const Pauli paulis[] = {Pauli::kX, Pauli::kY, Pauli::kZ};
  const Matrix mats[] = {gates::X(), gates::Y(), gates::Z()};
  for (int p = 0; p < 3; ++p)
    for (int q = 0; q < 4; ++q) {
      StateVector fast = StateVector::from_amplitudes(init);
      fast.apply_pauli(paulis[p], q);
      StateVector ref = StateVector::from_amplitudes(init);
      ref.apply_matrix(mats[p], {q});
      EXPECT_LT(state_distance(fast.amplitudes(), ref.amplitudes()), 1e-12);
    }
}

TEST(StateVector, ApplyCircuitMatchesUnitary) {
  QuantumCircuit qc(3);
  qc.h(0);
  qc.cp(0, 1, 0.6);
  qc.cx(1, 2);
  qc.rz(2, -0.9);
  qc.swap(0, 2);
  qc.add_global_phase(0.4);

  Pcg64 rng(7);
  const std::vector<cplx> init = random_state(3, rng);
  StateVector sv = StateVector::from_amplitudes(init);
  sv.apply_circuit(qc);
  const auto expected = qc.to_unitary().apply(init);
  EXPECT_LT(state_distance(sv.amplitudes(), expected), 1e-10);
}

TEST(StateVector, ApplyCircuitRange) {
  QuantumCircuit qc(2);
  qc.h(0);
  qc.cx(0, 1);
  StateVector sv(2);
  sv.apply_circuit_range(qc, 0, 1);  // only H
  EXPECT_NEAR(std::abs(sv.amplitude(0b00)), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(sv.amplitude(0b01)), 1.0 / std::sqrt(2.0), 1e-12);
  sv.apply_circuit_range(qc, 1, 2);  // then CX
  EXPECT_NEAR(std::abs(sv.amplitude(0b11)), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(StateVector, NormPreservedThroughLongCircuit) {
  QuantumCircuit qc(6);
  Pcg64 rng(3);
  for (int i = 0; i < 200; ++i) {
    const int q = static_cast<int>(rng.uniform_int(6));
    const int r = static_cast<int>((q + 1 + rng.uniform_int(5)) % 6);
    switch (rng.uniform_int(4)) {
      case 0: qc.h(q); break;
      case 1: qc.rz(q, rng.uniform() * 6.28); break;
      case 2: qc.cx(q, r); break;
      default: qc.cp(q, r, rng.uniform()); break;
    }
  }
  StateVector sv(6);
  sv.apply_circuit(qc);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-9);
}

TEST(StateVector, Probabilities) {
  StateVector sv(1);
  sv.apply_gate(make_gate1(GateKind::kH, 0));
  const auto p = sv.probabilities();
  EXPECT_NEAR(p[0], 0.5, 1e-12);
  EXPECT_NEAR(p[1], 0.5, 1e-12);
}

TEST(StateVector, MarginalProbabilities) {
  // Bell pair on (0,1) ⊗ |1> on qubit 2.
  QuantumCircuit qc(3);
  qc.h(0);
  qc.cx(0, 1);
  qc.x(2);
  StateVector sv(3);
  sv.apply_circuit(qc);

  const auto m0 = sv.marginal_probabilities({0});
  EXPECT_NEAR(m0[0], 0.5, 1e-12);
  EXPECT_NEAR(m0[1], 0.5, 1e-12);

  const auto m01 = sv.marginal_probabilities({0, 1});
  EXPECT_NEAR(m01[0b00], 0.5, 1e-12);
  EXPECT_NEAR(m01[0b11], 0.5, 1e-12);
  EXPECT_NEAR(m01[0b01], 0.0, 1e-12);

  const auto m2 = sv.marginal_probabilities({2});
  EXPECT_NEAR(m2[1], 1.0, 1e-12);

  // Qubit order in the subset defines output bit order.
  const auto m20 = sv.marginal_probabilities({2, 0});
  EXPECT_NEAR(m20[0b01], 0.5, 1e-12);  // q2=1 (bit0), q0=0 (bit1)
  EXPECT_NEAR(m20[0b11], 0.5, 1e-12);
}

TEST(StateVector, MarginalContiguousFastPathMatchesGather) {
  // The contiguous-range fast path (shift/mask) must agree with the
  // generic bit-gather on a random state, for every inner range.
  Pcg64 rng(77);
  const int n = 6;
  std::vector<cplx> amps(pow2(n));
  double norm = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    norm += std::norm(a);
  }
  for (cplx& a : amps) a *= 1.0 / std::sqrt(norm);
  const StateVector sv = StateVector::from_amplitudes(amps);

  for (int start = 0; start < n; ++start)
    for (int size = 1; start + size <= n; ++size) {
      std::vector<int> qubits(size);
      for (int b = 0; b < size; ++b) qubits[b] = start + b;
      const auto fast = sv.marginal_probabilities(qubits);
      // Generic reference: accumulate keys bit by bit.
      std::vector<double> ref(pow2(size), 0.0);
      for (u64 i = 0; i < pow2(n); ++i) {
        u64 key = 0;
        for (int b = 0; b < size; ++b)
          key |= static_cast<u64>(get_bit(i, qubits[b])) << b;
        ref[key] += std::norm(amps[i]);
      }
      ASSERT_EQ(fast.size(), ref.size());
      for (std::size_t k = 0; k < ref.size(); ++k)
        EXPECT_NEAR(fast[k], ref[k], 1e-14) << "start=" << start;
    }
}

TEST(StateVector, SampleCountsStatistics) {
  StateVector sv(2);
  sv.apply_gate(make_gate1(GateKind::kH, 0));  // q0 uniform, q1 = 0
  Pcg64 rng(55);
  const auto counts = sv.sample_counts({0}, 100000, rng);
  EXPECT_NEAR(static_cast<double>(counts[0]), 50000.0, 1500.0);
  std::uint64_t total = counts[0] + counts[1];
  EXPECT_EQ(total, 100000u);
}

TEST(StateVector, SampleFullWidth) {
  StateVector sv(3);
  sv.set_basis_state(0b101);
  Pcg64 rng(1);
  for (int i = 0; i < 20; ++i) EXPECT_EQ(sv.sample(rng), 0b101u);
}

TEST(StateVector, GlobalPhaseDoesNotChangeProbabilities) {
  StateVector sv(2);
  sv.apply_gate(make_gate1(GateKind::kH, 0));
  const auto before = sv.probabilities();
  sv.apply_global_phase(1.234);
  const auto after = sv.probabilities();
  for (std::size_t i = 0; i < before.size(); ++i)
    EXPECT_NEAR(before[i], after[i], 1e-12);
  EXPECT_NEAR(std::arg(sv.amplitude(0)), 1.234, 1e-12);
}

}  // namespace
}  // namespace qfab
