// Algebraic property tests for the Fourier-basis adder: group structure
// (composition, inverses, commutativity), linearity over superpositions,
// and entanglement with a superposed control — the properties that make
// QFA usable as a subroutine rather than a demo.
#include <gtest/gtest.h>

#include <cmath>

#include "arith/qint.h"
#include "qfb/adder.h"
#include "sim/statevector.h"

namespace qfab {
namespace {

constexpr int kN = 3;  // 3-bit registers, modular arithmetic mod 8

/// Constant-adder circuit on a lone register.
QuantumCircuit const_add_circuit(std::int64_t c) {
  QuantumCircuit qc(kN);
  append_qfa_const(qc, {0, 1, 2}, c);
  return qc;
}

u64 argmax(const std::vector<double>& p) {
  u64 best = 0;
  for (u64 i = 1; i < p.size(); ++i)
    if (p[i] > p[best]) best = i;
  return best;
}

TEST(AdderAlgebra, ConstAddsCompose) {
  // add(a) ∘ add(b) == add(a+b) for every basis state.
  for (std::int64_t a : {1, 3, 5})
    for (std::int64_t b : {2, 6, 7}) {
      QuantumCircuit two(kN);
      two.compose(const_add_circuit(a));
      two.compose(const_add_circuit(b));
      const QuantumCircuit one = const_add_circuit(a + b);
      for (u64 y = 0; y < 8; ++y) {
        StateVector s1(kN), s2(kN);
        s1.set_basis_state(y);
        s2.set_basis_state(y);
        s1.apply_circuit(two);
        s2.apply_circuit(one);
        EXPECT_EQ(argmax(s1.probabilities()), argmax(s2.probabilities()));
      }
    }
}

TEST(AdderAlgebra, AddThenSubtractIsIdentity) {
  QuantumCircuit qc(2 * kN);
  std::vector<int> x = {0, 1, 2}, y = {3, 4, 5};
  append_qfa(qc, x, y, {});
  AdderOptions sub;
  sub.subtract = true;
  append_qfa(qc, x, y, sub);
  for (u64 v = 0; v < 64; v += 7) {
    StateVector sv(2 * kN);
    sv.set_basis_state(v);
    sv.apply_circuit(qc);
    EXPECT_NEAR(std::norm(sv.amplitude(v)), 1.0, 1e-9) << v;
  }
}

TEST(AdderAlgebra, InverseCircuitIsSubtraction) {
  // make_qfa(...).inverse() must equal the subtract variant on states.
  const QuantumCircuit add = make_qfa(kN, kN, {});
  AdderOptions opt;
  opt.subtract = true;
  const QuantumCircuit sub = make_qfa(kN, kN, opt);
  const QuantumCircuit inv = add.inverse();
  for (u64 v : {u64{5}, u64{23}, u64{42}, u64{63}}) {
    StateVector a(2 * kN), b(2 * kN);
    a.set_basis_state(v);
    b.set_basis_state(v);
    a.apply_circuit(inv);
    b.apply_circuit(sub);
    EXPECT_EQ(argmax(a.probabilities()), argmax(b.probabilities()));
  }
}

TEST(AdderAlgebra, DisjointAddsCommute) {
  // Adds into disjoint target registers commute exactly.
  QuantumCircuit ab(9), ba(9);
  std::vector<int> x = {0, 1, 2}, y1 = {3, 4, 5}, y2 = {6, 7, 8};
  append_qfa(ab, x, y1, {});
  append_qfa(ab, x, y2, {});
  append_qfa(ba, x, y2, {});
  append_qfa(ba, x, y1, {});
  StateVector s1(9), s2(9);
  const u64 init = 3 | (1 << 3) | (6 << 6);
  s1.set_basis_state(init);
  s2.set_basis_state(init);
  s1.apply_circuit(ab);
  s2.apply_circuit(ba);
  const auto p1 = s1.probabilities();
  const auto p2 = s2.probabilities();
  for (std::size_t i = 0; i < p1.size(); ++i) EXPECT_NEAR(p1[i], p2[i], 1e-10);
}

TEST(AdderAlgebra, LinearOverTargetSuperposition) {
  // add(x) applied to y in superposition adds into every branch.
  const QuantumCircuit qc = make_qfa(kN, kN, {});
  StateVector sv = prepare_product_state(
      2 * kN, {{QubitRange{0, kN}, QInt::classical(kN, 3)},
               {QubitRange{kN, kN}, QInt::uniform(kN, {0, 2, 5})}});
  sv.apply_circuit(qc);
  const auto marg = sv.marginal_probabilities({3, 4, 5});
  EXPECT_NEAR(marg[3], 1.0 / 3, 1e-9);
  EXPECT_NEAR(marg[5], 1.0 / 3, 1e-9);
  EXPECT_NEAR(marg[0], 1.0 / 3, 1e-9);  // 5+3 = 8 ≡ 0
}

TEST(AdderAlgebra, SuperposedControlCreatesEntanglement) {
  // Control in |+>: (|0>|y> + |1>|y+x>)/√2 — the controlled adder must
  // entangle the control with the target.
  const int total = 2 * kN + 1;
  QuantumCircuit sub(total);
  append_qfa(sub, {0, 1, 2}, {3, 4, 5}, {});
  const QuantumCircuit cadd = sub.controlled_on(6);

  StateVector sv(total);
  sv.set_basis_state(2 | (3 << 3));  // x=2, y=3
  sv.apply_gate(make_gate1(GateKind::kH, 6));
  sv.apply_circuit(cadd);

  // Joint distribution of (control, y): only (0, 3) and (1, 5).
  const auto joint = sv.marginal_probabilities({6, 3, 4, 5});
  EXPECT_NEAR(joint[0b0110], 0.5, 1e-9);  // control=0, y=3
  EXPECT_NEAR(joint[0b1011], 0.5, 1e-9);  // control=1, y=5
  // Control marginal stays unbiased.
  const auto ctrl = sv.marginal_probabilities({6});
  EXPECT_NEAR(ctrl[0], 0.5, 1e-9);
}

TEST(AdderAlgebra, PhaseCoherencePreserved) {
  // The adder must preserve relative phases of the target superposition:
  // applying add(0) (identity values) to any state leaves it unchanged,
  // including phases.
  const QuantumCircuit qc = make_qfa(kN, kN, {});
  const QInt y = QInt::superposition(
      kN, {{1, cplx{0.6, 0.0}}, {4, cplx{0.0, 0.8}}});
  StateVector sv = prepare_product_state(
      2 * kN, {{QubitRange{0, kN}, QInt::classical(kN, 0)},
               {QubitRange{kN, kN}, y}});
  const StateVector before = sv;
  sv.apply_circuit(qc);
  double dist = 0.0;
  for (u64 i = 0; i < sv.dim(); ++i)
    dist += std::norm(sv.amplitude(i) - before.amplitude(i));
  EXPECT_LT(std::sqrt(dist), 1e-9);
}

TEST(AdderAlgebra, ConstAndRegisterAddersAgree) {
  // Adding a classical constant c must equal adding a register holding c.
  for (std::int64_t c : {0, 1, 4, 7}) {
    const QuantumCircuit reg_add = make_qfa(kN, kN, {});
    const QuantumCircuit const_add = const_add_circuit(c);
    for (u64 y = 0; y < 8; ++y) {
      StateVector a(2 * kN);
      a.set_basis_state(static_cast<u64>(c) | (y << kN));
      a.apply_circuit(reg_add);
      StateVector b(kN);
      b.set_basis_state(y);
      b.apply_circuit(const_add);
      const auto ya = argmax(a.marginal_probabilities({3, 4, 5}));
      const auto yb = argmax(b.probabilities());
      EXPECT_EQ(ya, yb) << "c=" << c << " y=" << y;
    }
  }
}

}  // namespace
}  // namespace qfab
