// Durable-sweep validation: checkpoint journal round trips, crash-fault
// resume determinism, torn/corrupt tail recovery, graceful drain, and the
// numerical-health retry path.
//
// This suite has its own main(): the crash-fault tests re-exec this binary
// as a child process (`test_durable --durable-child <journal> ...`) with
// QFAB_FAULT armed, let the injected fault kill it mid-sweep, and then
// resume from the journal it left behind. gtest_main would try to parse the
// child flags, so the binary links GTest::gtest and dispatches by hand.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/fault.h"
#include "common/shutdown.h"
#include "exp/journal.h"

namespace qfab {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture configuration. The child process rebuilds the exact same
// sweep from the seed alone, so parent and child must agree on every knob.
// block = batch_lanes = 2 over 5 instances -> 3 groups (one ragged), and
// 2 depths -> 6 work units; rates expand to {0, 0.5, 1.0}.

SweepConfig durable_test_config(std::uint64_t seed = 77) {
  SweepConfig cfg;
  cfg.base.op = Operation::kAdd;
  cfg.base.n = 3;
  cfg.depths = {1, kFullDepth};
  cfg.rates_percent = {0.5, 1.0};
  cfg.vary_2q = true;
  cfg.orders = {1, 2};
  cfg.instances = 5;
  cfg.run.shots = 64;
  cfg.run.error_trajectories = 4;
  cfg.run.batch_lanes = 2;
  cfg.seed = seed;
  cfg.progress = false;
  return cfg;
}

constexpr std::size_t kUnits = 6;

std::vector<ArithInstance> durable_test_instances(const SweepConfig& cfg) {
  Pcg64 rng(cfg.seed);
  return generate_instances(cfg.instances, cfg.base.n, cfg.base.n, cfg.orders,
                            rng);
}

// Per-process scratch directory: ctest -j runs the plain and forced-scalar
// variants of this suite concurrently, and both write journals.
std::string tmp_path(const std::string& name) {
  static const std::string dir = [] {
    const std::string d =
        "test_durable_tmp_" + std::to_string(static_cast<long>(::getpid()));
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir + "/" + name;
}

void cleanup_tmp() {
  std::error_code ec;
  std::filesystem::remove_all(
      "test_durable_tmp_" + std::to_string(static_cast<long>(::getpid())), ec);
}

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  QFAB_CHECK(n > 0);
  buf[n] = '\0';
  return buf;
}

/// Re-exec this binary in child mode with `fault` armed via QFAB_FAULT.
/// Returns the child's exit code (-1 if it died on a signal).
int spawn_child(const std::string& fault, const std::string& journal,
                bool resume, std::uint64_t seed = 77) {
  std::string cmd;
  if (!fault.empty()) cmd += "QFAB_FAULT='" + fault + "' ";
  cmd += "'" + self_exe() + "' --durable-child '" + journal + "'";
  if (resume) cmd += " --resume";
  cmd += " --child-seed " + std::to_string(seed);
  cmd += " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

const SweepResult& reference() {
  static const SweepResult r = [] {
    const SweepConfig cfg = durable_test_config();
    return run_sweep(cfg, durable_test_instances(cfg));
  }();
  return r;
}

// Bit-identical point results: resume determinism is exact reproduction,
// not statistical agreement, so every comparison here is ==.
void expect_same_points(const SweepResult& a, const SweepResult& b) {
  ASSERT_EQ(a.points.size(), b.points.size());
  for (std::size_t i = 0; i < a.points.size(); ++i) {
    SCOPED_TRACE("point " + std::to_string(i));
    EXPECT_EQ(a.points[i].depth, b.points[i].depth);
    EXPECT_EQ(a.points[i].rate_percent, b.points[i].rate_percent);
    EXPECT_EQ(a.points[i].stats.instances, b.points[i].stats.instances);
    EXPECT_EQ(a.points[i].stats.successes, b.points[i].stats.successes);
    EXPECT_EQ(a.points[i].stats.success_rate, b.points[i].stats.success_rate);
    EXPECT_EQ(a.points[i].stats.sigma, b.points[i].stats.sigma);
    EXPECT_EQ(a.points[i].stats.lower_flips, b.points[i].stats.lower_flips);
    EXPECT_EQ(a.points[i].stats.upper_flips, b.points[i].stats.upper_flips);
  }
}

// Shared-trajectory bookkeeping merges in unit order on every path
// (computed, restored, or mixed), so it is exactly reproducible too.
void expect_same_stats(const SharedEstimateStats& a,
                       const SharedEstimateStats& b) {
  EXPECT_EQ(a.proposal_trajectories, b.proposal_trajectories);
  EXPECT_EQ(a.unique_trajectories, b.unique_trajectories);
  EXPECT_EQ(a.fallback_trajectories, b.fallback_trajectories);
  EXPECT_EQ(a.rate_columns, b.rate_columns);
  EXPECT_EQ(a.fallback_columns, b.fallback_columns);
  EXPECT_EQ(a.ess_fraction_min, b.ess_fraction_min);
  EXPECT_EQ(a.ess_fraction_sum, b.ess_fraction_sum);
  EXPECT_EQ(a.ess_fraction_count, b.ess_fraction_count);
}

std::size_t count_type(const JournalContents& contents,
                       JournalRecord::Type type) {
  std::size_t n = 0;
  for (const JournalRecord& rec : contents.records)
    if (rec.type == type) ++n;
  return n;
}

// ---------------------------------------------------------------------------

TEST(Durable, FreshJournaledRunMatchesPlainRunSweep) {
  const SweepConfig cfg = durable_test_config();
  const auto insts = durable_test_instances(cfg);
  DurableOptions durable;
  durable.journal_path = tmp_path("fresh.journal");
  const SweepResult r = run_sweep_durable(cfg, insts, durable);

  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.units_total, kUnits);
  EXPECT_EQ(r.units_done, kUnits);
  EXPECT_EQ(r.units_restored, 0u);
  EXPECT_EQ(r.units_retried, 0u);
  EXPECT_TRUE(r.unit_errors.empty());
  expect_same_points(reference(), r);
  expect_same_stats(reference().shared_stats, r.shared_stats);

  const JournalContents contents = read_journal(durable.journal_path);
  EXPECT_TRUE(contents.header_ok);
  EXPECT_FALSE(contents.dropped_tail);
  EXPECT_EQ(contents.records.size(), kUnits);
  EXPECT_EQ(count_type(contents, JournalRecord::Type::kUnit), kUnits);
}

TEST(Durable, CrashResumeIsBitIdentical) {
  for (const long k : {1L, 3L, 6L}) {
    SCOPED_TRACE("crash-after-unit=" + std::to_string(k));
    const std::string journal =
        tmp_path("crash" + std::to_string(k) + ".journal");
    ASSERT_EQ(spawn_child("crash-after-unit=" + std::to_string(k), journal,
                          /*resume=*/false),
              fault::kCrashExitCode);

    // The crash fires after the k-th record is durably on disk.
    const JournalContents after_crash = read_journal(journal);
    ASSERT_TRUE(after_crash.header_ok);
    EXPECT_FALSE(after_crash.dropped_tail);
    ASSERT_EQ(after_crash.records.size(), static_cast<std::size_t>(k));

    const SweepConfig cfg = durable_test_config();
    DurableOptions durable;
    durable.journal_path = journal;
    durable.resume = true;
    const SweepResult r =
        run_sweep_durable(cfg, durable_test_instances(cfg), durable);
    EXPECT_TRUE(r.complete);
    EXPECT_EQ(r.units_restored, static_cast<std::size_t>(k));
    EXPECT_EQ(r.units_done, kUnits);
    expect_same_points(reference(), r);
    expect_same_stats(reference().shared_stats, r.shared_stats);

    EXPECT_EQ(read_journal(journal).records.size(), kUnits);
  }
}

TEST(Durable, TornWriteTailIsDroppedOnResume) {
  const std::string journal = tmp_path("torn.journal");
  ASSERT_EQ(spawn_child("torn-write=3", journal, /*resume=*/false),
            fault::kCrashExitCode);

  const JournalContents damaged = read_journal(journal);
  ASSERT_TRUE(damaged.header_ok);
  EXPECT_TRUE(damaged.dropped_tail);
  ASSERT_EQ(damaged.records.size(), 2u);

  const SweepConfig cfg = durable_test_config();
  DurableOptions durable;
  durable.journal_path = journal;
  durable.resume = true;
  const SweepResult r =
      run_sweep_durable(cfg, durable_test_instances(cfg), durable);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.units_restored, 2u);
  expect_same_points(reference(), r);

  // Resume rewrote the valid prefix before appending, so the file is whole.
  const JournalContents repaired = read_journal(journal);
  EXPECT_FALSE(repaired.dropped_tail);
  EXPECT_EQ(repaired.records.size(), kUnits);
}

TEST(Durable, CorruptCrcTailIsDroppedOnResume) {
  const std::string journal = tmp_path("badcrc.journal");
  ASSERT_EQ(spawn_child("corrupt-crc=3", journal, /*resume=*/false),
            fault::kCrashExitCode);

  const JournalContents damaged = read_journal(journal);
  ASSERT_TRUE(damaged.header_ok);
  EXPECT_TRUE(damaged.dropped_tail);
  ASSERT_EQ(damaged.records.size(), 2u);

  const SweepConfig cfg = durable_test_config();
  DurableOptions durable;
  durable.journal_path = journal;
  durable.resume = true;
  const SweepResult r =
      run_sweep_durable(cfg, durable_test_instances(cfg), durable);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.units_restored, 2u);
  expect_same_points(reference(), r);
  EXPECT_FALSE(read_journal(journal).dropped_tail);
}

TEST(Durable, DrainAndResumeInProcess) {
  reset_shutdown_latch_for_tests();
  fault::set_fault_spec_for_tests("drain-after-unit=1");

  const SweepConfig cfg = durable_test_config();
  const auto insts = durable_test_instances(cfg);
  DurableOptions durable;
  durable.journal_path = tmp_path("drain.journal");
  const SweepResult drained = run_sweep_durable(cfg, insts, durable);

  fault::set_fault_spec_for_tests("");
  reset_shutdown_latch_for_tests();

  // The latch stops workers from *claiming* new units; anything already in
  // flight finishes and journals, so the done count is a range, not exact.
  EXPECT_GE(drained.units_done, 1u);
  EXPECT_LE(drained.units_done, kUnits);
  if (!drained.complete) {
    EXPECT_TRUE(drained.points.empty());
  }

  durable.resume = true;
  const SweepResult r = run_sweep_durable(cfg, insts, durable);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.units_restored, drained.units_done);
  EXPECT_EQ(r.units_done, kUnits);
  expect_same_points(reference(), r);
  expect_same_stats(reference().shared_stats, r.shared_stats);
}

TEST(Durable, NanFaultRetriesOnScalarPathOnce) {
  // One NaN charge: the first apply pass covering gate 3 poisons an
  // amplitude, a health sentinel throws, and the unit's scalar non-fused
  // retry (charge spent) succeeds.
  fault::set_fault_spec_for_tests("nan-at-gate=3");

  const SweepConfig cfg = durable_test_config();
  const auto insts = durable_test_instances(cfg);
  DurableOptions durable;
  durable.journal_path = tmp_path("nan_retry.journal");
  const SweepResult r = run_sweep_durable(cfg, insts, durable);
  fault::set_fault_spec_for_tests("");

  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.units_retried, 1u);
  EXPECT_TRUE(r.unit_errors.empty());
  ASSERT_EQ(r.points.size(), reference().points.size());
  for (const SweepPoint& p : r.points) {
    EXPECT_EQ(p.stats.instances, cfg.instances);
    EXPECT_GE(p.stats.success_rate, 0.0);
    EXPECT_LE(p.stats.success_rate, 1.0);
  }

  const JournalContents contents = read_journal(durable.journal_path);
  EXPECT_EQ(contents.records.size(), kUnits);
  EXPECT_EQ(count_type(contents, JournalRecord::Type::kPoisoned), 0u);
}

TEST(Durable, PersistentNanPoisonsUnitsAndResumeRestoresThem) {
  // Unlimited NaN charges: the retry is poisoned too, so every unit records
  // its members as failures along with the sentinel description.
  fault::set_fault_spec_for_tests("nan-at-gate=3,nan-count=-1");

  const SweepConfig cfg = durable_test_config();
  const auto insts = durable_test_instances(cfg);
  DurableOptions durable;
  durable.journal_path = tmp_path("poison.journal");
  const SweepResult poisoned = run_sweep_durable(cfg, insts, durable);
  fault::set_fault_spec_for_tests("");

  EXPECT_TRUE(poisoned.complete);
  EXPECT_EQ(poisoned.unit_errors.size(), kUnits);
  for (const SweepPoint& p : poisoned.points) EXPECT_EQ(p.stats.successes, 0);

  const JournalContents contents = read_journal(durable.journal_path);
  EXPECT_EQ(count_type(contents, JournalRecord::Type::kPoisoned), kUnits);

  // Resume with the fault disarmed: poisoned units restore from the journal
  // without recompute — the record of what failed is itself durable.
  durable.resume = true;
  const SweepResult r = run_sweep_durable(cfg, insts, durable);
  EXPECT_TRUE(r.complete);
  EXPECT_EQ(r.units_restored, kUnits);
  EXPECT_EQ(r.unit_errors.size(), kUnits);
  expect_same_points(poisoned, r);
  expect_same_stats(poisoned.shared_stats, r.shared_stats);
}

TEST(Durable, FingerprintMismatchRefusesResume) {
  const std::string journal = tmp_path("fingerprint.journal");
  {
    const SweepConfig cfg = durable_test_config(77);
    DurableOptions durable;
    durable.journal_path = journal;
    run_sweep_durable(cfg, durable_test_instances(cfg), durable);
  }
  const SweepConfig other = durable_test_config(78);
  DurableOptions durable;
  durable.journal_path = journal;
  durable.resume = true;
  EXPECT_THROW(run_sweep_durable(other, durable_test_instances(other), durable),
               CheckError);
}

TEST(Durable, JournalRoundTripAndManualTruncation) {
  const std::string path = tmp_path("roundtrip.journal");
  const std::uint64_t fp = 0xABCDEF0123456789ULL;

  JournalRecord unit;
  unit.type = JournalRecord::Type::kUnit;
  unit.depth_index = 1;
  unit.block_begin = 2;
  unit.block_end = 4;
  unit.outcomes = {{{true, 31}, {false, -4}}, {{true, 7}, {true, 0}}};
  unit.stats.proposal_trajectories = 8;
  unit.stats.ess_fraction_min = 0.25;

  JournalRecord timeout;
  timeout.type = JournalRecord::Type::kTimeout;
  timeout.depth_index = 0;
  timeout.block_begin = 0;
  timeout.block_end = 2;

  JournalRecord poisoned;
  poisoned.type = JournalRecord::Type::kPoisoned;
  poisoned.depth_index = 0;
  poisoned.block_begin = 4;
  poisoned.block_end = 5;
  poisoned.outcomes = {{{false, 0}}, {{false, 0}}};
  poisoned.error = "clean run final state: norm drifted";

  {
    JournalWriter writer(path, fp, /*fresh=*/true);
    writer.append(unit);
    writer.append(timeout);
    writer.append(poisoned);
  }

  const JournalContents contents = read_journal(path);
  ASSERT_TRUE(contents.header_ok);
  EXPECT_EQ(contents.fingerprint, fp);
  EXPECT_FALSE(contents.dropped_tail);
  ASSERT_EQ(contents.records.size(), 3u);
  const JournalRecord& got = contents.records[0];
  EXPECT_EQ(got.type, JournalRecord::Type::kUnit);
  EXPECT_EQ(got.depth_index, 1u);
  EXPECT_EQ(got.block_begin, 2u);
  EXPECT_EQ(got.block_end, 4u);
  ASSERT_EQ(got.outcomes.size(), 2u);
  EXPECT_TRUE(got.outcomes[0][0].success);
  EXPECT_EQ(got.outcomes[0][0].margin, 31);
  EXPECT_EQ(got.outcomes[0][1].margin, -4);
  EXPECT_EQ(got.stats.proposal_trajectories, 8);
  EXPECT_EQ(got.stats.ess_fraction_min, 0.25);
  EXPECT_EQ(contents.records[1].type, JournalRecord::Type::kTimeout);
  EXPECT_TRUE(contents.records[1].outcomes.empty());
  EXPECT_EQ(contents.records[2].type, JournalRecord::Type::kPoisoned);
  EXPECT_EQ(contents.records[2].error, poisoned.error);

  // Chop into the last frame: the torn tail must be dropped, not fatal.
  std::filesystem::resize_file(path, contents.valid_bytes - 3);
  const JournalContents torn = read_journal(path);
  ASSERT_TRUE(torn.header_ok);
  EXPECT_TRUE(torn.dropped_tail);
  EXPECT_EQ(torn.records.size(), 2u);

  // Repair rewrites exactly the valid prefix.
  rewrite_journal(path, torn);
  const JournalContents repaired = read_journal(path);
  EXPECT_FALSE(repaired.dropped_tail);
  EXPECT_EQ(repaired.records.size(), 2u);
  EXPECT_EQ(repaired.fingerprint, fp);
}

TEST(Durable, DamagedTailRefusesAppendUntilRewritten) {
  const std::string path = tmp_path("guard.journal");
  const std::uint64_t fp = 0x5EED5EED5EED5EEDULL;
  JournalRecord rec;
  rec.type = JournalRecord::Type::kUnit;
  rec.block_end = 1;
  rec.outcomes = {{{true, 1}}};
  {
    JournalWriter writer(path, fp, /*fresh=*/true);
    writer.append(rec);
    writer.append(rec);
  }

  // Tear the trailing frame: re-opening for append must refuse until the
  // valid prefix is rewritten — appending after a torn tail would strand
  // the new records behind unreadable bytes.
  const JournalContents whole = read_journal(path);
  std::filesystem::resize_file(path, whole.valid_bytes - 3);
  EXPECT_THROW(JournalWriter(path, fp, /*fresh=*/false), CheckError);
  // The wrong fingerprint is refused outright, even on a clean file.
  { JournalWriter other(path, fp + 1, /*fresh=*/true); }
  EXPECT_THROW(JournalWriter(path, fp, /*fresh=*/false), CheckError);

  JournalWriter(path, fp, /*fresh=*/true).append(rec);
  const JournalContents fresh = read_journal(path);
  std::filesystem::resize_file(path, fresh.valid_bytes - 3);
  rewrite_journal(path, read_journal(path));
  JournalWriter writer(path, fp, /*fresh=*/false);  // now accepted
  writer.append(rec);
  EXPECT_EQ(read_journal(path).records.size(), 1u);
}

TEST(Durable, MissingAndForeignFilesAreNotJournals) {
  const JournalContents missing = read_journal(tmp_path("nonexistent"));
  EXPECT_FALSE(missing.header_ok);
  EXPECT_TRUE(missing.records.empty());

  const std::string garbage = tmp_path("garbage");
  {
    std::ofstream os(garbage);
    os << "not a journal at all";
  }
  const JournalContents foreign = read_journal(garbage);
  EXPECT_FALSE(foreign.header_ok);
  EXPECT_TRUE(foreign.records.empty());
}

TEST(Durable, SigintLatchesDrainRequest) {
  install_shutdown_latch();
  reset_shutdown_latch_for_tests();
  EXPECT_FALSE(shutdown_requested());
  // One signal latches a drain (a second would hard-exit, so raise once).
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(shutdown_requested());
  reset_shutdown_latch_for_tests();
  EXPECT_FALSE(shutdown_requested());
}

// ---------------------------------------------------------------------------

int run_durable_child(const std::string& journal, bool resume,
                      std::uint64_t seed) {
  const SweepConfig cfg = durable_test_config(seed);
  DurableOptions durable;
  durable.journal_path = journal;
  durable.resume = resume;
  const SweepResult r =
      run_sweep_durable(cfg, durable_test_instances(cfg), durable);
  return r.complete ? 0 : kResumableExitCode;
}

}  // namespace
}  // namespace qfab

int main(int argc, char** argv) {
  std::string child_journal;
  bool child_resume = false;
  std::uint64_t child_seed = 77;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--durable-child" && i + 1 < argc) {
      child_journal = argv[++i];
    } else if (arg == "--resume") {
      child_resume = true;
    } else if (arg == "--child-seed" && i + 1 < argc) {
      child_seed = std::strtoull(argv[++i], nullptr, 10);
    }
  }
  if (!child_journal.empty())
    return qfab::run_durable_child(child_journal, child_resume, child_seed);

  ::testing::InitGoogleTest(&argc, argv);
  const int rc = RUN_ALL_TESTS();
  qfab::cleanup_tmp();
  return rc;
}
