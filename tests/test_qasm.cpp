// OpenQASM 2.0 round-trip: export must parse back to a unitarily identical
// circuit (global phase excepted — QASM 2 has no global-phase statement).
#include <gtest/gtest.h>

#include <numbers>

#include "circuit/qasm.h"
#include "common/rng.h"
#include "qfb/adder.h"
#include "qfb/qft.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(QasmExport, HeaderAndRegisters) {
  QuantumCircuit qc(0);
  qc.add_register("x", 2);
  qc.add_register("y", 3);
  qc.h(0);
  qc.cx(1, 4);
  const std::string text = to_qasm(qc);
  EXPECT_NE(text.find("OPENQASM 2.0;"), std::string::npos);
  EXPECT_NE(text.find("qreg x[2];"), std::string::npos);
  EXPECT_NE(text.find("qreg y[3];"), std::string::npos);
  EXPECT_NE(text.find("h x[0];"), std::string::npos);
  EXPECT_NE(text.find("cx x[1],y[2];"), std::string::npos);
}

TEST(QasmExport, SymbolicAngles) {
  QuantumCircuit qc(1);
  qc.rz(0, kPi / 2);
  qc.rz(0, -kPi);
  qc.rz(0, 3 * kPi / 4);
  qc.rz(0, 0.1234);
  const std::string text = to_qasm(qc);
  EXPECT_NE(text.find("rz(pi/2)"), std::string::npos);
  EXPECT_NE(text.find("rz(-pi)"), std::string::npos);
  EXPECT_NE(text.find("rz(3*pi/4)"), std::string::npos);
  EXPECT_NE(text.find("0.1234"), std::string::npos);
}

TEST(QasmExport, AnonymousCircuitGetsDefaultRegister) {
  QuantumCircuit qc(2);
  qc.h(1);
  EXPECT_NE(to_qasm(qc).find("qreg q[2];"), std::string::npos);
  EXPECT_NE(to_qasm(qc).find("h q[1];"), std::string::npos);
}

TEST(QasmImport, ParsesBasics) {
  const std::string text = R"(
    OPENQASM 2.0;
    include "qelib1.inc";
    // a comment
    qreg a[2];
    qreg b[1];
    h a[0];
    cx a[0],b[0];
    rz(pi/4) a[1];
    u1(-pi/2) b[0];
    barrier a;
    ccx a[0],a[1],b[0];
  )";
  const QuantumCircuit qc = from_qasm(text);
  EXPECT_EQ(qc.num_qubits(), 3);
  EXPECT_EQ(qc.gates().size(), 5u);
  EXPECT_EQ(qc.gates()[0].kind, GateKind::kH);
  EXPECT_EQ(qc.gates()[2].kind, GateKind::kRZ);
  EXPECT_NEAR(qc.gates()[2].params[0], kPi / 4, 1e-12);
  EXPECT_EQ(qc.gates()[4].kind, GateKind::kCCX);
}

TEST(QasmImport, AngleExpressions) {
  const std::string text = R"(OPENQASM 2.0;
qreg q[1];
rz(2*pi/8) q[0];
rz(pi/2 + pi/4) q[0];
rz(-(pi/3)) q[0];
rz(1.5) q[0];
)";
  const QuantumCircuit qc = from_qasm(text);
  EXPECT_NEAR(qc.gates()[0].params[0], kPi / 4, 1e-12);
  EXPECT_NEAR(qc.gates()[1].params[0], 3 * kPi / 4, 1e-12);
  EXPECT_NEAR(qc.gates()[2].params[0], -kPi / 3, 1e-12);
  EXPECT_NEAR(qc.gates()[3].params[0], 1.5, 1e-12);
}

TEST(QasmImport, SAndTShorthands) {
  const QuantumCircuit qc = from_qasm(
      "OPENQASM 2.0;\nqreg q[1];\ns q[0];\ntdg q[0];\n");
  EXPECT_EQ(qc.gates()[0].kind, GateKind::kP);
  EXPECT_NEAR(qc.gates()[0].params[0], kPi / 2, 1e-12);
  EXPECT_NEAR(qc.gates()[1].params[0], -kPi / 4, 1e-12);
}

TEST(QasmImport, Diagnostics) {
  EXPECT_THROW(from_qasm("qreg q[1];"), CheckError);  // missing header
  EXPECT_THROW(from_qasm("OPENQASM 2.0;\nqreg q[1];\nfrobnicate q[0];"),
               CheckError);
  EXPECT_THROW(from_qasm("OPENQASM 2.0;\nqreg q[1];\nh q[3];"), CheckError);
  EXPECT_THROW(from_qasm("OPENQASM 2.0;\nqreg q[1];\nh r[0];"), CheckError);
  EXPECT_THROW(from_qasm("OPENQASM 2.0;\nqreg q[0];"), CheckError);
}

class QasmRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(QasmRoundTrip, PreservesUnitaryUpToPhase) {
  Pcg64 rng(900 + static_cast<std::uint64_t>(GetParam()));
  const int n = 3;
  QuantumCircuit qc(0);
  qc.add_register("q", n);
  for (int i = 0; i < 20; ++i) {
    const int q = static_cast<int>(rng.uniform_int(n));
    const int r = static_cast<int>((q + 1 + rng.uniform_int(n - 1)) % n);
    const int s = 3 - q - r;
    switch (rng.uniform_int(12)) {
      case 0: qc.h(q); break;
      case 1: qc.x(q); break;
      case 2: qc.y(q); break;
      case 3: qc.sx(q); break;
      case 4: qc.rz(q, rng.uniform() * 6 - 3); break;
      case 5: qc.p(q, rng.uniform() * 6); break;
      case 6: qc.u(q, rng.uniform(), rng.uniform(), rng.uniform()); break;
      case 7: qc.cx(q, r); break;
      case 8: qc.cp(q, r, rng.uniform() * 3); break;
      case 9: qc.swap(q, r); break;
      case 10: qc.ccp(q, r, s, rng.uniform() * 3); break;
      default: qc.ch(q, r); break;
    }
  }
  const QuantumCircuit back = from_qasm(to_qasm(qc));
  EXPECT_EQ(back.num_qubits(), n);
  EXPECT_TRUE(back.to_unitary().equal_up_to_phase(qc.to_unitary(), 1e-8));
}

INSTANTIATE_TEST_SUITE_P(Seeds, QasmRoundTrip, ::testing::Values(0, 1, 2, 3));

TEST(QasmRoundTripNamed, TranspiledQfaSurvives) {
  const QuantumCircuit qfa = transpile_to_basis(make_qfa(3, 3, {}));
  const QuantumCircuit back = from_qasm(to_qasm(qfa));
  EXPECT_EQ(back.gates().size(), qfa.gates().size());
  EXPECT_TRUE(back.to_unitary().equal_up_to_phase(qfa.to_unitary(), 1e-8));
  // Register names survive.
  EXPECT_TRUE(back.has_register("x"));
  EXPECT_TRUE(back.has_register("y"));
}

TEST(QasmRoundTripNamed, AbstractQftSurvives) {
  const QuantumCircuit qft = make_qft(4, kFullDepth, true);
  const QuantumCircuit back = from_qasm(to_qasm(qft));
  EXPECT_TRUE(back.to_unitary().equal_up_to_phase(qft.to_unitary(), 1e-8));
}

}  // namespace
}  // namespace qfab
