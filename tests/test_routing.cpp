// Linear-chain routing: adjacency of every 2q gate, permutation-corrected
// unitary equivalence, and the SWAP overhead on the paper's circuits.
#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "exp/experiment.h"
#include "transpile/routing.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

bool all_two_qubit_gates_adjacent(const QuantumCircuit& qc) {
  for (const Gate& g : qc.gates())
    if (g.arity() == 2 && std::abs(g.qubits[0] - g.qubits[1]) != 1)
      return false;
  return true;
}

TEST(Routing, AdjacentGatesNeedNoSwaps) {
  QuantumCircuit qc(4);
  qc.h(0);
  qc.cx(0, 1);
  qc.cx(2, 1);
  qc.cx(3, 2);
  const RoutedCircuit routed = route_linear(qc);
  EXPECT_EQ(routed.swaps_inserted, 0u);
  EXPECT_EQ(routed.circuit.gates().size(), qc.gates().size());
  for (int i = 0; i < 4; ++i) EXPECT_EQ(routed.final_layout[i], i);
}

TEST(Routing, DistantGateGetsRouted) {
  QuantumCircuit qc(5);
  qc.cx(0, 4);
  const RoutedCircuit routed = route_linear(qc);
  EXPECT_GT(routed.swaps_inserted, 0u);
  EXPECT_TRUE(all_two_qubit_gates_adjacent(routed.circuit));
}

TEST(Routing, RejectsThreeQubitGates) {
  QuantumCircuit qc(3);
  qc.ccp(0, 1, 2, 0.5);
  EXPECT_THROW(route_linear(qc), CheckError);
}

TEST(Routing, RoutedCircuitComputesTheSameFunction) {
  // Simulate logical vs routed circuits from random basis states and
  // compare via the final layout permutation.
  Pcg64 rng(11);
  for (int rep = 0; rep < 5; ++rep) {
    QuantumCircuit qc(5);
    for (int i = 0; i < 30; ++i) {
      const int q = static_cast<int>(rng.uniform_int(5));
      int r = static_cast<int>(rng.uniform_int(5));
      while (r == q) r = static_cast<int>(rng.uniform_int(5));
      switch (rng.uniform_int(4)) {
        case 0: qc.h(q); break;
        case 1: qc.rz(q, rng.uniform() * 6); break;
        case 2: qc.cx(q, r); break;
        default: qc.cp(q, r, rng.uniform() * 3); break;
      }
    }
    const RoutedCircuit routed = route_linear(qc);
    EXPECT_TRUE(all_two_qubit_gates_adjacent(routed.circuit));

    const u64 input = rng.uniform_int(32);
    StateVector logical(5), physical(5);
    logical.set_basis_state(input);
    // The routed circuit assumes the identity initial layout: logical
    // qubit q starts at chain slot q.
    physical.set_basis_state(input);
    logical.apply_circuit(qc);
    physical.apply_circuit(routed.circuit);

    // Compare marginals of each logical qubit through the layout.
    for (int q = 0; q < 5; ++q) {
      const auto ml = logical.marginal_probabilities({q});
      const auto mp = physical.marginal_probabilities(
          {routed.final_layout[static_cast<std::size_t>(q)]});
      EXPECT_NEAR(ml[0], mp[0], 1e-9);
    }
    // Full-distribution check through the permutation.
    const auto pl = logical.probabilities();
    const auto pp = physical.probabilities();
    for (u64 v = 0; v < 32; ++v) {
      u64 permuted = 0;
      for (int q = 0; q < 5; ++q)
        if (get_bit(v, q))
          permuted = set_bit(
              permuted, routed.final_layout[static_cast<std::size_t>(q)]);
      EXPECT_NEAR(pl[v], pp[permuted], 1e-9) << "v=" << v;
    }
  }
}

TEST(Routing, RoutedQubitsHelper) {
  QuantumCircuit qc(3);
  qc.cx(0, 2);
  const RoutedCircuit routed = route_linear(qc);
  const auto mapped = routed_qubits(routed, {0, 1, 2});
  // A permutation of 0..2.
  std::vector<int> sorted = mapped;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{0, 1, 2}));
  EXPECT_THROW(routed_qubits(routed, {7}), CheckError);
}

TEST(Routing, QfaSwapOverheadIsSubstantial) {
  // Quantifies the connectivity cost the paper idealized away: routing
  // the n=8 QFA onto a chain adds a large number of SWAPs (3 CX each).
  CircuitSpec spec;
  spec.n = 8;
  const QuantumCircuit basis = build_transpiled_circuit(spec);
  const RoutedCircuit routed = route_linear(basis);
  EXPECT_TRUE(all_two_qubit_gates_adjacent(routed.circuit));
  EXPECT_GT(routed.swaps_inserted, 50u);

  const QuantumCircuit rebasis = transpile_to_basis(routed.circuit);
  const std::size_t cx_full = basis.counts().two_qubit;
  const std::size_t cx_routed = rebasis.counts().two_qubit;
  EXPECT_GT(cx_routed, cx_full + 3 * 50);
}

TEST(Routing, RoutedQfaStillAddsCorrectly) {
  CircuitSpec spec;
  spec.n = 3;
  const QuantumCircuit basis = build_transpiled_circuit(spec);
  const RoutedCircuit routed = route_linear(basis);
  const auto out_phys = routed_qubits(routed, output_qubits(spec));
  for (u64 x = 0; x < 8; ++x)
    for (u64 y = 0; y < 8; ++y) {
      StateVector sv(6);
      sv.set_basis_state(x | (y << 3));
      sv.apply_circuit(routed.circuit);
      const auto marg = sv.marginal_probabilities(out_phys);
      u64 best = 0;
      for (u64 i = 1; i < 8; ++i)
        if (marg[i] > marg[best]) best = i;
      ASSERT_EQ(best, (x + y) % 8) << x << "+" << y;
    }
}

}  // namespace
}  // namespace qfab
