// Fused tile-walk driver validation: run_trajectories_batched (the walk)
// against run_trajectories_batched_split (the per-split reference it
// replaced). The walk decomposes op-interior splits PER LANE (only the
// event lane slices the host op; bystanders take it fused), so against
// the split driver's merged full-width decomposition it deviates at the
// re-association level — compared with each lane's pending phase folded
// in, since the two decompositions route scalar phase work differently
// (fused tables carry absolute phases in the planes, per-gate slices
// defer them to the pending accumulator). The double tier is pinned to
// 1e-12 and float32 to the tier's replay drift bound; step patterns whose
// per-lane decomposition provably matches the split driver's (boundary
// sites, all-lanes-same-site schedules) stay bitwise on the raw planes.
// What IS bitwise by construction is packing invariance: a lane's replay
// is identical whatever trajectories share the batch (pinned below
// against solo single-lane walks). Site classes the walk decomposes
// differently from a plain fused pass are each pinned: splits inside
// collapsed diagonal ops, splits on op boundaries, runs broken by
// non-tileable ops, and dense same-site multi-lane injections.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/experiment.h"
#include "noise/trajectory.h"
#include "sim/batch.h"
#include "sim/fusion.h"

namespace qfab {
namespace {

std::vector<cplx> random_state(int n, Pcg64& rng) {
  std::vector<cplx> amps(pow2(n));
  double norm = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    norm += std::norm(a);
  }
  const double s = 1.0 / std::sqrt(norm);
  for (cplx& a : amps) a *= s;
  return amps;
}

/// max |a_i - b_i| — zero iff the two states are bitwise equal (no NaNs
/// occur in these circuits).
double max_abs_diff(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    d = std::max(d, std::abs(a[i] - b[i]));
  return d;
}

/// A random circuit drawing from every supported gate kind (fuses into
/// every op kind: kGate, kMatrix1, kMatrix2, kDiagonal).
QuantumCircuit random_circuit(int n, int gates, Pcg64& rng) {
  static const GateKind kKinds[] = {
      GateKind::kId, GateKind::kX,    GateKind::kY,  GateKind::kZ,
      GateKind::kH,  GateKind::kSX,   GateKind::kSXdg, GateKind::kRZ,
      GateKind::kRY, GateKind::kRX,   GateKind::kP,  GateKind::kU,
      GateKind::kCX, GateKind::kCZ,   GateKind::kCP, GateKind::kCH,
      GateKind::kSWAP, GateKind::kCCP, GateKind::kCCX};
  QuantumCircuit qc(n);
  for (int i = 0; i < gates; ++i) {
    const GateKind kind = kKinds[rng.uniform_int(std::size(kKinds))];
    const int arity = gate_arity(kind);
    int q[3];
    q[0] = static_cast<int>(rng.uniform_int(n));
    do q[1] = static_cast<int>(rng.uniform_int(n));
    while (q[1] == q[0]);
    do q[2] = static_cast<int>(rng.uniform_int(n));
    while (q[2] == q[0] || q[2] == q[1]);
    double p[3];
    for (double& v : p) v = (rng.uniform() - 0.5) * 2.0 * M_PI;
    if (arity == 1) {
      qc.append(make_gate1(kind, q[0], p[0], p[1], p[2]));
    } else if (arity == 2) {
      qc.append(make_gate2(kind, q[0], q[1], p[0]));
    } else {
      qc.append(make_gate3(kind, q[0], q[1], q[2], p[0]));
    }
  }
  return qc;
}

/// Run every kernel table the host resolves through `body` (duplicates by
/// resolved name skipped; auto-detection restored after).
template <typename Body>
void for_each_simd_mode(const Body& body) {
  std::vector<std::string> seen;
  for (SimdMode mode :
       {SimdMode::kScalar, SimdMode::kAvx2, SimdMode::kAvx512}) {
    set_simd_mode(mode);
    const std::string level = simd_mode_name();
    if (std::find(seen.begin(), seen.end(), level) != seen.end()) continue;
    seen.push_back(level);
    body(simd_mode_name());
  }
  set_simd_mode(SimdMode::kAuto);
}

/// Random per-lane event lists over [0, total), arity-respecting Paulis;
/// returns the replay start (first site, or 0 when no lane has events).
std::size_t random_lane_events(const QuantumCircuit& qc, int lanes,
                               int max_events_per_lane, Pcg64& rng,
                               std::vector<std::vector<ErrorEvent>>& out) {
  const std::size_t total = qc.gates().size();
  out.assign(static_cast<std::size_t>(lanes), {});
  std::size_t min_site = total;
  for (int l = 0; l < lanes; ++l) {
    const auto n_events = rng.uniform_int(
        static_cast<std::uint64_t>(max_events_per_lane) + 1);
    std::vector<std::size_t> sites;
    for (std::uint64_t e = 0; e < n_events; ++e)
      sites.push_back(rng.uniform_int(total));
    std::sort(sites.begin(), sites.end());
    for (std::size_t site : sites) {
      ErrorEvent ev;
      ev.gate_index = site;
      ev.pauli0 = static_cast<Pauli>(1 + rng.uniform_int(3));
      if (qc.gates()[site].arity() >= 2 && rng.bernoulli(0.5))
        ev.pauli1 = static_cast<Pauli>(1 + rng.uniform_int(3));
      out[static_cast<std::size_t>(l)].push_back(ev);
    }
    if (!sites.empty()) min_site = std::min(min_site, sites.front() + 1);
  }
  return min_site == total ? 0 : min_site;
}

/// Largest per-amplitude difference between two batched states with each
/// lane's pending phase folded in (the raw planes alone are only defined
/// up to that factor — see lane_pending_phase). When both sides hold
/// bitwise-equal planes AND bitwise-equal pending phases, the folded
/// difference is exactly zero, so EXPECT_EQ(…, 0.0) still asserts
/// bitwise equality where the decompositions provably coincide.
template <typename Real>
double max_folded_diff(const BatchedStateVectorT<Real>& a,
                       const BatchedStateVectorT<Real>& b) {
  const int lanes = a.lanes();
  double d = 0.0;
  for (int l = 0; l < lanes; ++l) {
    const cplx pa = std::polar(1.0, a.lane_pending_phase(l));
    const cplx pb = std::polar(1.0, b.lane_pending_phase(l));
    for (u64 r = 0; r < a.dim(); ++r) {
      const std::size_t i =
          r * static_cast<u64>(lanes) + static_cast<u64>(l);
      const cplx va = pa * cplx{static_cast<double>(a.re()[i]),
                                static_cast<double>(a.im()[i])};
      const cplx vb = pb * cplx{static_cast<double>(b.re()[i]),
                                static_cast<double>(b.im()[i])};
      d = std::max(d, std::abs(va - vb));
    }
  }
  return d;
}

/// Run the walk and the split reference from identical start states and
/// return the largest pending-folded amplitude difference across lanes.
template <typename Real>
double walk_vs_split(const FusedPlan& plan, const StateVector& start,
                     int lanes, std::size_t start_gates,
                     const std::vector<std::vector<ErrorEvent>>& lane_events) {
  BatchedStateVectorT<Real> walk(plan.circuit().num_qubits(), lanes);
  BatchedStateVectorT<Real> split(plan.circuit().num_qubits(), lanes);
  walk.broadcast(start);
  split.broadcast(start);
  run_trajectories_batched(plan, walk, start_gates, lane_events);
  run_trajectories_batched_split(plan, split, start_gates, lane_events);
  return max_folded_diff(walk, split);
}

TEST(TrajectoryWalk, DoubleMatchesSplitWithinReassociation) {
  // Random circuits over every gate kind, lane counts spanning the replay
  // tiers, random schedules: the double walk must match the split
  // reference to 1e-12 with pending phases folded in. The two drivers
  // decompose op-interior splits differently (per-lane vs merged), so
  // their fused products re-associate — the deviation is rounding-level,
  // invisible to the marginal-based Fig. 1/2 CSVs.
  for_each_simd_mode([](const char* mode) {
    Pcg64 rng(20260809, 1);
    for (const int lanes : {2, 8, 16}) {
      for (int trial = 0; trial < 6; ++trial) {
        const int n = 4 + static_cast<int>(rng.uniform_int(2));  // 4..5
        const QuantumCircuit qc = random_circuit(n, 40, rng);
        const FusedPlan plan(qc);
        std::vector<std::vector<ErrorEvent>> lane_events;
        const std::size_t g0 =
            random_lane_events(qc, lanes, 3, rng, lane_events);
        StateVector start(n);
        plan.apply_range(start, 0, g0);
        EXPECT_LT(
            walk_vs_split<double>(plan, start, lanes, g0, lane_events), 1e-12)
            << mode << " lanes=" << lanes << " trial=" << trial;
      }
    }
  });
}

TEST(TrajectoryWalk, Float32StaysWithinReplayDrift) {
  // Same comparison on the float32 tier. The walk is arithmetic-identical
  // there too, but the pinned bound is the tier's documented drift budget
  // rather than bitwise (keeps the test valid if either driver ever
  // reassociates narrow-precision kernels).
  for_each_simd_mode([](const char* mode) {
    Pcg64 rng(20260809, 2);
    for (const int lanes : {2, 8, 16}) {
      for (int trial = 0; trial < 4; ++trial) {
        const QuantumCircuit qc = random_circuit(5, 40, rng);
        const FusedPlan plan(qc);
        std::vector<std::vector<ErrorEvent>> lane_events;
        const std::size_t g0 =
            random_lane_events(qc, lanes, 3, rng, lane_events);
        StateVector start(5);
        plan.apply_range(start, 0, g0);
        EXPECT_LT(
            walk_vs_split<float>(plan, start, lanes, g0, lane_events), 1e-4)
            << mode << " lanes=" << lanes << " trial=" << trial;
      }
    }
  });
}

TEST(TrajectoryWalk, SitesInsideCollapsedDiagonalOps) {
  // Transpiled QFA fuses long diagonal runs; injection sites interior to
  // a collapsed diagonal op force the walk through subrange plans on both
  // sides of the Pauli. Every interior site of every multi-gate diagonal
  // op is hit by some lane.
  CircuitSpec spec;
  spec.op = Operation::kAdd;
  spec.n = 3;
  const QuantumCircuit qc = build_transpiled_circuit(spec);
  const FusedPlan plan(qc);
  std::vector<std::size_t> interior_sites;
  for (std::size_t i = 0; i < plan.op_count(); ++i) {
    const FusedOp& op = plan.ops()[i];
    if (op.kind != FusedOp::Kind::kDiagonal || op.gate_count() < 3) continue;
    for (std::size_t g = op.gate_begin + 1; g + 1 < op.gate_end; ++g)
      interior_sites.push_back(g);
  }
  ASSERT_FALSE(interior_sites.empty())
      << "transpiled QFA no longer fuses multi-gate diagonal ops";

  Pcg64 rng(20260809, 3);
  const int lanes = 8;
  std::vector<std::vector<ErrorEvent>> lane_events(lanes);
  for (std::size_t k = 0; k < interior_sites.size(); ++k) {
    ErrorEvent ev;
    ev.gate_index = interior_sites[k];
    ev.pauli0 = static_cast<Pauli>(1 + rng.uniform_int(3));
    lane_events[k % lanes].push_back(ev);
  }
  for (auto& evs : lane_events)
    std::sort(evs.begin(), evs.end(),
              [](const ErrorEvent& a, const ErrorEvent& b) {
                return a.gate_index < b.gate_index;
              });
  const StateVector start(qc.num_qubits());
  EXPECT_LT(walk_vs_split<double>(plan, start, lanes, 0, lane_events), 1e-12);
  EXPECT_LT(walk_vs_split<float>(plan, start, lanes, 0, lane_events), 1e-4);
}

TEST(TrajectoryWalk, SitesOnEveryOpBoundary) {
  // Sites landing exactly on fused-op boundaries: the walk's segments are
  // whole-op runs with no subrange plans, alternating with Paulis.
  Pcg64 rng(20260809, 4);
  const QuantumCircuit qc = random_circuit(4, 40, rng);
  const FusedPlan plan(qc);
  const int lanes = 8;
  std::vector<std::vector<ErrorEvent>> lane_events(lanes);
  int k = 0;
  for (std::size_t i = 0; i < plan.op_count(); ++i) {
    ErrorEvent ev;
    // Site = gate_index + 1, so the boundary gate is gate_end - 1.
    ev.gate_index = plan.ops()[i].gate_end - 1;
    ev.pauli0 = static_cast<Pauli>(1 + rng.uniform_int(3));
    lane_events[k++ % lanes].push_back(ev);
  }
  const StateVector start = StateVector::from_amplitudes(random_state(4, rng));
  EXPECT_EQ(walk_vs_split<double>(plan, start, lanes, 0, lane_events), 0.0);
}

TEST(TrajectoryWalk, NonTileableOpsBreakRunsCorrectly) {
  // A small tile forces non-diagonal ops on high qubits (and X/Y Paulis
  // there) through the full-width fallback mid-walk. tile_bits=3 with
  // 6 qubits puts the tile well under the state size at every lane count.
  FusionOptions options;
  options.tile_bits = 3;
  Pcg64 rng(20260809, 5);
  for (const int lanes : {2, 16}) {
    for (int trial = 0; trial < 4; ++trial) {
      const QuantumCircuit qc = random_circuit(6, 50, rng);
      const FusedPlan plan(qc, options);
      // Sanity: the tiny tile actually renders some op non-tileable.
      const int tb = batched_tile_rows_log2(options, lanes, 6, sizeof(double));
      bool any_non_tileable = false;
      for (std::size_t i = 0; i < plan.op_count(); ++i)
        if (!plan.op_tile_eligible(i, tb)) any_non_tileable = true;
      ASSERT_TRUE(any_non_tileable);

      std::vector<std::vector<ErrorEvent>> lane_events;
      const std::size_t g0 =
          random_lane_events(qc, lanes, 4, rng, lane_events);
      StateVector start(6);
      plan.apply_range(start, 0, g0);
      EXPECT_LT(
          walk_vs_split<double>(plan, start, lanes, g0, lane_events), 1e-12)
          << "lanes=" << lanes << " trial=" << trial;
    }
  }
}

TEST(TrajectoryWalk, DenseSameSiteMultiLaneInjections) {
  // Every lane fires at the same few sites — the merged schedule has long
  // same-site runs, which the old split driver handled as one pass per
  // site but the walk folds into a single tile pass per run.
  Pcg64 rng(20260809, 6);
  const int lanes = 16;
  const QuantumCircuit qc = random_circuit(5, 40, rng);
  const std::size_t total = qc.gates().size();
  const FusedPlan plan(qc);
  std::vector<std::size_t> sites = {total / 4, total / 2, 3 * total / 4};
  std::sort(sites.begin(), sites.end());
  std::vector<std::vector<ErrorEvent>> lane_events(lanes);
  for (int l = 0; l < lanes; ++l) {
    for (std::size_t site : sites) {
      ErrorEvent ev;
      ev.gate_index = site;
      ev.pauli0 = static_cast<Pauli>(1 + rng.uniform_int(3));
      if (qc.gates()[site].arity() >= 2)
        ev.pauli1 = static_cast<Pauli>(1 + rng.uniform_int(3));
      lane_events[static_cast<std::size_t>(l)].push_back(ev);
    }
  }
  const StateVector start = StateVector::from_amplitudes(random_state(5, rng));
  EXPECT_EQ(walk_vs_split<double>(plan, start, lanes, 0, lane_events), 0.0);
  EXPECT_LT(walk_vs_split<float>(plan, start, lanes, 0, lane_events), 1e-4);
}

TEST(TrajectoryWalk, LaneReplayIsPackingInvariantBitwise) {
  // The per-lane schedule's defining property: a lane's replay depends
  // only on its own trajectory, never on which trajectories share the
  // batch. Each lane of a 8-wide group walk must be BITWISE identical —
  // raw planes and pending phase — to a solo 1-lane walk of that lane's
  // events from the same resume point. (The group splits the lane's clean
  // segments at other lanes' sites, but only ever on fused-op boundaries,
  // so the per-lane step arithmetic is unchanged.)
  Pcg64 rng(20260809, 9);
  const int lanes = 8;
  for (int trial = 0; trial < 4; ++trial) {
    const QuantumCircuit qc = random_circuit(5, 40, rng);
    const FusedPlan plan(qc);
    std::vector<std::vector<ErrorEvent>> lane_events;
    const std::size_t g0 = random_lane_events(qc, lanes, 3, rng, lane_events);
    StateVector start(5);
    plan.apply_range(start, 0, g0);

    BatchedStateVector group(5, lanes);
    group.broadcast(start);
    run_trajectories_batched(plan, group, g0, lane_events);

    for (int l = 0; l < lanes; ++l) {
      BatchedStateVector solo(5, 1);
      solo.broadcast(start);
      const std::vector<std::vector<ErrorEvent>> one = {
          lane_events[static_cast<std::size_t>(l)]};
      run_trajectories_batched(plan, solo, g0, one);
      EXPECT_EQ(group.lane_pending_phase(l), solo.lane_pending_phase(0))
          << "trial=" << trial << " lane=" << l;
      double d = 0.0;
      for (u64 r = 0; r < group.dim(); ++r) {
        const std::size_t gi =
            r * static_cast<u64>(lanes) + static_cast<u64>(l);
        d = std::max(d, std::abs(group.re()[gi] - solo.re()[r]));
        d = std::max(d, std::abs(group.im()[gi] - solo.im()[r]));
      }
      EXPECT_EQ(d, 0.0) << "trial=" << trial << " lane=" << l;
    }
  }
}

TEST(ApplyPlanRange, EmptyRangeIsANoOp) {
  // gate_begin == gate_end must leave the batched state bitwise untouched,
  // at 0, at an interior gate, and at gate_count.
  Pcg64 rng(20260809, 7);
  const QuantumCircuit qc = random_circuit(4, 30, rng);
  const FusedPlan plan(qc);
  const std::size_t total = qc.gates().size();
  BatchedStateVector bsv(4, 3);
  for (int l = 0; l < 3; ++l)
    bsv.set_lane(l, StateVector::from_amplitudes(random_state(4, rng)));
  std::vector<std::vector<cplx>> before;
  for (int l = 0; l < 3; ++l) before.push_back(bsv.lane_state(l).amplitudes());
  for (const std::size_t g : {std::size_t{0}, total / 2, total}) {
    apply_plan_range(plan, bsv, g, g);
    for (int l = 0; l < 3; ++l)
      EXPECT_EQ(max_abs_diff(bsv.lane_state(l).amplitudes(),
                             before[static_cast<std::size_t>(l)]),
                0.0)
          << "empty range at " << g << " lane " << l;
  }
}

TEST(ApplyPlanRange, SplitAtZeroAndGateCountMatchesSinglePass) {
  // Splitting at the extreme boundaries (0 and gate_count) must be
  // bitwise identical to one uninterrupted pass.
  Pcg64 rng(20260809, 8);
  const QuantumCircuit qc = random_circuit(4, 30, rng);
  const FusedPlan plan(qc);
  const std::size_t total = qc.gates().size();
  const StateVector init = StateVector::from_amplitudes(random_state(4, rng));

  BatchedStateVector ref(4, 2);
  ref.broadcast(init);
  apply_plan_range(plan, ref, 0, total);

  for (const std::size_t s : {std::size_t{0}, total}) {
    BatchedStateVector bsv(4, 2);
    bsv.broadcast(init);
    apply_plan_range(plan, bsv, 0, s);
    apply_plan_range(plan, bsv, s, total);
    for (int l = 0; l < 2; ++l)
      EXPECT_EQ(max_abs_diff(bsv.lane_state(l).amplitudes(),
                             ref.lane_state(l).amplitudes()),
                0.0)
          << "split at " << s << " lane " << l;
  }
}

}  // namespace
}  // namespace qfab
