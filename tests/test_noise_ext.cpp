// Extension-noise validation: readout confusion matrices and
// Pauli-twirled thermal relaxation (the paper's deferred future work).
#include <gtest/gtest.h>

#include <cmath>

#include "exp/experiment.h"
#include "noise/estimator.h"
#include "noise/readout.h"
#include "noise/thermal.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

// ---------- readout ----------

TEST(Readout, DisabledIsIdentity) {
  std::vector<double> dist = {0.25, 0.25, 0.5, 0.0};
  const std::vector<double> before = dist;
  apply_readout_error(dist, ReadoutError{});
  EXPECT_EQ(dist, before);
}

TEST(Readout, SingleBitConfusion) {
  // P(1|0)=0.1, P(0|1)=0.2 on a deterministic |0>.
  std::vector<double> dist = {1.0, 0.0};
  apply_readout_error(dist, ReadoutError{0.1, 0.2});
  EXPECT_NEAR(dist[0], 0.9, 1e-12);
  EXPECT_NEAR(dist[1], 0.1, 1e-12);
  // ... and on |1>.
  dist = {0.0, 1.0};
  apply_readout_error(dist, ReadoutError{0.1, 0.2});
  EXPECT_NEAR(dist[0], 0.2, 1e-12);
  EXPECT_NEAR(dist[1], 0.8, 1e-12);
}

TEST(Readout, TwoBitTensorStructure) {
  // |01> (bit0 = 1, bit1 = 0) through symmetric p = 0.1 flips.
  std::vector<double> dist = {0.0, 1.0, 0.0, 0.0};
  apply_readout_error(dist, ReadoutError{0.1, 0.1});
  EXPECT_NEAR(dist[0b01], 0.81, 1e-12);
  EXPECT_NEAR(dist[0b00], 0.09, 1e-12);
  EXPECT_NEAR(dist[0b11], 0.09, 1e-12);
  EXPECT_NEAR(dist[0b10], 0.01, 1e-12);
}

TEST(Readout, PreservesNormalization) {
  std::vector<double> dist = {0.1, 0.2, 0.3, 0.15, 0.05, 0.1, 0.05, 0.05};
  apply_readout_error(dist, ReadoutError{0.07, 0.13});
  double total = 0.0;
  for (double p : dist) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(Readout, HeterogeneousPerQubit) {
  std::vector<double> dist = {1.0, 0.0, 0.0, 0.0};
  // Bit 0 perfect, bit 1 always misread as 1.
  apply_readout_error(dist, std::vector<ReadoutError>{{0.0, 0.0}, {1.0, 0.0}});
  EXPECT_NEAR(dist[0b10], 1.0, 1e-12);
  EXPECT_THROW(apply_readout_error(dist, std::vector<ReadoutError>{{}}),
               CheckError);
}

TEST(Readout, PerShotAndDistributionModesAgree) {
  // Per-shot bit flipping and confusion-matrix application must produce
  // statistically identical counts.
  const QuantumCircuit qc = transpile_to_basis(make_qfa(3, 3, {}));
  StateVector init(6);
  init.set_basis_state(2 | (3 << 3));
  const CleanRun clean(qc, init, 16);
  const ErrorLocations no_noise(qc, NoiseModel{});
  const ReadoutError ro{0.05, 0.1};
  Pcg64 rng1(1), rng2(2);

  const std::uint64_t shots = 40000;
  const auto per_shot =
      sample_counts_per_shot(clean, no_noise, {3, 4, 5}, shots, rng1, ro);
  std::vector<double> dist = clean.ideal_marginal({3, 4, 5});
  apply_readout_error(dist, ro);
  double tv = 0.0;
  for (std::size_t i = 0; i < dist.size(); ++i)
    tv += std::abs(dist[i] - static_cast<double>(per_shot[i]) /
                                 static_cast<double>(shots));
  EXPECT_LT(tv / 2, 0.01);
}

TEST(Readout, DegradesSuccessInHarness) {
  CircuitSpec spec;
  spec.n = 4;
  const QuantumCircuit circuit = build_transpiled_circuit(spec);
  RunOptions run;
  run.shots = 512;
  run.readout = ReadoutError{0.25, 0.25};  // heavy misreads
  Pcg64 gen(3);
  const auto insts = generate_instances(6, 4, 4, {2, 2}, gen);
  int successes = 0;
  for (const auto& inst : insts) {
    const InstanceContext ctx(circuit, spec, inst, run);
    Pcg64 rng(7);
    successes += ctx.evaluate(NoiseModel{}, run, rng).success;
  }
  EXPECT_LT(successes, 6);
}

// ---------- thermal relaxation (PTA) ----------

TEST(Thermal, ZeroDurationIsNoiseless) {
  const PauliProbs p = thermal_pauli_twirl(100.0, 50.0, 0.0);
  EXPECT_EQ(p.total(), 0.0);
}

TEST(Thermal, PureDephasingLimit) {
  // T1 disabled: p_z = (1 - e^{-t/T2})/2, no X/Y component.
  const double t2 = 80.0, t = 10.0;
  const PauliProbs p = thermal_pauli_twirl(0.0, t2, t);
  EXPECT_DOUBLE_EQ(p.px, 0.0);
  EXPECT_DOUBLE_EQ(p.py, 0.0);
  EXPECT_NEAR(p.pz, 0.5 * (1.0 - std::exp(-t / t2)), 1e-12);
}

TEST(Thermal, AmplitudeDampingLimit) {
  // T2 = 2 T1 (no pure dephasing): twirled AD formulas.
  const double t1 = 100.0, t = 25.0;
  const double gamma = 1.0 - std::exp(-t / t1);
  const PauliProbs p = thermal_pauli_twirl(t1, 2 * t1, t);
  EXPECT_NEAR(p.px, gamma / 4, 1e-12);
  EXPECT_NEAR(p.py, gamma / 4, 1e-12);
  EXPECT_NEAR(p.pz, 0.5 * (1.0 - gamma / 2 - std::sqrt(1.0 - gamma)), 1e-12);
}

TEST(Thermal, MonotoneInDuration) {
  double prev = 0.0;
  for (double t : {1.0, 5.0, 20.0, 100.0}) {
    const double total = thermal_pauli_twirl(100.0, 70.0, t).total();
    EXPECT_GT(total, prev);
    prev = total;
  }
  EXPECT_LT(prev, 1.0);
}

TEST(Thermal, RejectsInvalidT2) {
  // T2 > 2 T1 is unphysical.
  EXPECT_THROW(thermal_pauli_twirl(10.0, 30.0, 1.0), CheckError);
}

TEST(Thermal, NoiseModelAttachesPerQubit) {
  NoiseModel nm;
  nm.t1 = 100.0;
  nm.t2 = 80.0;
  nm.time_1q = 0.1;
  nm.time_2q = 0.4;
  EXPECT_TRUE(nm.thermal_enabled());
  EXPECT_TRUE(nm.enabled());
  // RZ is virtual: no relaxation.
  EXPECT_DOUBLE_EQ(nm.gate_duration(make_gate1(GateKind::kRZ, 0, 0.1)), 0.0);
  EXPECT_DOUBLE_EQ(nm.gate_duration(make_gate1(GateKind::kSX, 0)), 0.1);
  EXPECT_DOUBLE_EQ(nm.gate_duration(make_gate2(GateKind::kCX, 0, 1)), 0.4);

  // A circuit of 1 sx + 1 cx gets 1 + 2 thermal locations.
  QuantumCircuit qc(2);
  qc.sx(0);
  qc.cx(0, 1);
  const ErrorLocations locs(transpile_to_basis(qc), nm);
  EXPECT_EQ(locs.noisy_gate_count(), 3u);
}

TEST(Thermal, ExpectedEventsScaleWithCircuit) {
  NoiseModel nm;
  nm.t1 = 200.0;
  nm.t2 = 150.0;
  nm.time_1q = 0.05;
  nm.time_2q = 0.3;
  const QuantumCircuit small = transpile_to_basis(make_qfa(3, 3, {}));
  const QuantumCircuit large = transpile_to_basis(make_qfa(4, 4, {}));
  const ErrorLocations ls(small, nm);
  const ErrorLocations ll(large, nm);
  EXPECT_GT(ll.expected_events(), ls.expected_events());
  EXPECT_LT(ls.clean_probability(), 1.0);
}

TEST(Thermal, TrajectorySamplingRespectsWeights) {
  // Pure dephasing -> every thermal event must be a Z.
  NoiseModel nm;
  nm.t2 = 10.0;
  nm.time_1q = 1.0;
  nm.time_2q = 1.0;
  QuantumCircuit qc(2);
  qc.sx(0);
  qc.cx(0, 1);
  qc.sx(1);
  const QuantumCircuit basis = transpile_to_basis(qc);
  const ErrorLocations locs(basis, nm);
  Pcg64 rng(9);
  int events = 0;
  for (int rep = 0; rep < 400; ++rep)
    for (const ErrorEvent& ev : locs.sample_at_least_one(rng)) {
      ++events;
      EXPECT_TRUE(ev.pauli0 == Pauli::kZ || ev.pauli0 == Pauli::kI);
      EXPECT_TRUE(ev.pauli1 == Pauli::kZ || ev.pauli1 == Pauli::kI);
    }
  EXPECT_GT(events, 400);
}

TEST(Thermal, DegradesArithmeticSuccess) {
  CircuitSpec spec;
  spec.n = 4;
  const QuantumCircuit circuit = build_transpiled_circuit(spec);
  RunOptions run;
  run.shots = 512;
  run.error_trajectories = 8;
  NoiseModel hot;
  hot.t1 = 50.0;
  hot.t2 = 40.0;
  hot.time_1q = 0.5;
  hot.time_2q = 2.0;  // absurdly slow gates vs T1
  Pcg64 gen(11);
  const auto insts = generate_instances(6, 4, 4, {2, 2}, gen);
  int successes = 0;
  for (const auto& inst : insts) {
    const InstanceContext ctx(circuit, spec, inst, run);
    Pcg64 rng(13);
    successes += ctx.evaluate(hot, run, rng).success;
  }
  EXPECT_LT(successes, 5);
}

}  // namespace
}  // namespace qfab
