#include <gtest/gtest.h>

#include <cmath>

#include "common/check.h"
#include "noise/mitigation.h"

namespace qfab {
namespace {

TEST(ReadoutInversion, ExactlyUndoesConfusionInExpectation) {
  const ReadoutError err{0.08, 0.12};
  std::vector<double> dist = {0.5, 0.125, 0.25, 0.125};
  const std::vector<double> original = dist;
  apply_readout_error(dist, err);
  const auto recovered = invert_readout(dist, err);
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_NEAR(recovered[i], original[i], 1e-10);
}

TEST(ReadoutInversion, MultiQubitRoundTrip) {
  const ReadoutError err{0.05, 0.05};
  std::vector<double> dist(16, 0.0);
  dist[3] = 0.7;
  dist[12] = 0.3;
  const std::vector<double> original = dist;
  apply_readout_error(dist, err);
  const auto recovered = invert_readout(dist, err);
  for (std::size_t i = 0; i < original.size(); ++i)
    EXPECT_NEAR(recovered[i], original[i], 1e-10);
}

TEST(ReadoutInversion, ClipsSamplingNegatives) {
  // Statistical fluctuations can push the inverted vector negative; the
  // result must still be a probability vector.
  const ReadoutError err{0.2, 0.2};
  const std::vector<double> noisy_empirical = {0.15, 0.85};
  const auto fixed = invert_readout(noisy_empirical, err);
  double total = 0.0;
  for (double p : fixed) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-12);
}

TEST(ReadoutInversion, RejectsSingularConfusion) {
  const std::vector<double> dist = {0.5, 0.5};
  const ReadoutError singular{0.5, 0.5};
  EXPECT_THROW(invert_readout(dist, singular), CheckError);
}

TEST(Richardson, WeightsSumToOne) {
  for (const std::vector<double>& scales :
       {std::vector<double>{1.0, 2.0}, {1.0, 2.0, 3.0}, {1.0, 1.5, 2.5}}) {
    const auto w = richardson_weights(scales);
    double sum = 0.0;
    for (double x : w) sum += x;
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(Richardson, TwoPointLinearWeights) {
  // f(0) ≈ 2 f(1) - f(2).
  const auto w = richardson_weights({1.0, 2.0});
  EXPECT_NEAR(w[0], 2.0, 1e-12);
  EXPECT_NEAR(w[1], -1.0, 1e-12);
}

TEST(Richardson, RecoversPolynomialExactly) {
  // If each outcome's probability is polynomial in the scale with degree
  // < #scales, extrapolation is exact (before clipping).
  const std::vector<double> scales = {1.0, 2.0, 3.0};
  auto f0 = [](double c) { return 0.6 - 0.1 * c + 0.01 * c * c; };
  auto f1 = [&](double c) { return 1.0 - f0(c); };
  std::vector<std::vector<double>> dists;
  for (double c : scales) dists.push_back({f0(c), f1(c)});
  const auto zero = richardson_extrapolate(dists, scales);
  EXPECT_NEAR(zero[0], f0(0.0), 1e-10);
  EXPECT_NEAR(zero[1], f1(0.0), 1e-10);
}

TEST(Richardson, RejectsDegenerateScales) {
  EXPECT_THROW(richardson_weights({1.0, 1.0}), CheckError);
  EXPECT_THROW(richardson_extrapolate({{1.0}, {0.9}}, {2.0}), CheckError);
}

TEST(Richardson, MismatchedSizesRejected) {
  EXPECT_THROW(richardson_extrapolate({{0.5, 0.5}, {0.5}}, {1.0, 2.0}),
               CheckError);
}

TEST(ClipToProbabilities, Basics) {
  const auto p = clip_to_probabilities({0.5, -0.25, 0.75});
  EXPECT_DOUBLE_EQ(p[1], 0.0);
  EXPECT_NEAR(p[0] + p[2], 1.0, 1e-12);
  EXPECT_THROW(clip_to_probabilities({-1.0, -2.0}), CheckError);
}

}  // namespace
}  // namespace qfab
