#include <gtest/gtest.h>

#include <numbers>

#include "circuit/circuit.h"
#include "linalg/gates.h"

namespace qfab {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Gate, ArityAndNames) {
  EXPECT_EQ(gate_arity(GateKind::kH), 1);
  EXPECT_EQ(gate_arity(GateKind::kCP), 2);
  EXPECT_EQ(gate_arity(GateKind::kCCP), 3);
  EXPECT_EQ(gate_name(GateKind::kCX), "cx");
  EXPECT_EQ(gate_name(GateKind::kCCP), "ccp");
  EXPECT_EQ(gate_param_count(GateKind::kU), 3);
  EXPECT_EQ(gate_param_count(GateKind::kH), 0);
}

TEST(Gate, DiagonalClassification) {
  EXPECT_TRUE(gate_is_diagonal(GateKind::kRZ));
  EXPECT_TRUE(gate_is_diagonal(GateKind::kCCP));
  EXPECT_FALSE(gate_is_diagonal(GateKind::kH));
  EXPECT_FALSE(gate_is_diagonal(GateKind::kCX));
}

TEST(Gate, InverseMatricesMultiplyToIdentity) {
  const Gate samples[] = {
      make_gate1(GateKind::kH, 0),
      make_gate1(GateKind::kSX, 0),
      make_gate1(GateKind::kRZ, 0, 0.7),
      make_gate1(GateKind::kU, 0, 1.0, 0.4, -0.2),
      make_gate2(GateKind::kCP, 0, 1, 0.9),
      make_gate2(GateKind::kCH, 0, 1),
      make_gate3(GateKind::kCCP, 0, 1, 2, 1.1),
  };
  for (const Gate& g : samples) {
    EXPECT_TRUE((g.matrix() * g.inverse().matrix())
                    .approx_equal(Matrix::identity(g.matrix().rows())))
        << g.to_string();
  }
}

TEST(Gate, RepeatedQubitsRejected) {
  EXPECT_THROW(make_gate2(GateKind::kCX, 1, 1), CheckError);
  EXPECT_THROW(make_gate3(GateKind::kCCP, 0, 1, 1, 0.5), CheckError);
}

TEST(Circuit, RegistersAreContiguous) {
  QuantumCircuit qc(0);
  const QubitRange x = qc.add_register("x", 3);
  const QubitRange y = qc.add_register("y", 2);
  EXPECT_EQ(qc.num_qubits(), 5);
  EXPECT_EQ(x.start, 0);
  EXPECT_EQ(y.start, 3);
  EXPECT_EQ(y[1], 4);
  EXPECT_TRUE(qc.has_register("x"));
  EXPECT_FALSE(qc.has_register("z"));
  EXPECT_THROW(qc.add_register("x", 1), CheckError);
  EXPECT_THROW(qc.reg("nope"), CheckError);
}

TEST(Circuit, AppendValidatesQubits) {
  QuantumCircuit qc(2);
  qc.h(0);
  qc.cx(0, 1);
  EXPECT_THROW(qc.h(2), CheckError);
  EXPECT_THROW(qc.cx(0, 5), CheckError);
}

TEST(Circuit, CountsByArity) {
  QuantumCircuit qc(3);
  qc.h(0);
  qc.h(1);
  qc.cx(0, 1);
  qc.ccp(0, 1, 2, 0.3);
  const GateCounts c = qc.counts();
  EXPECT_EQ(c.one_qubit, 2u);
  EXPECT_EQ(c.two_qubit, 1u);
  EXPECT_EQ(c.three_qubit, 1u);
  EXPECT_EQ(c.total(), 4u);
  EXPECT_EQ(c.by_name.at("h"), 2u);
}

TEST(Circuit, DepthComputation) {
  QuantumCircuit qc(3);
  EXPECT_EQ(qc.depth(), 0);
  qc.h(0);        // level 1 on q0
  qc.h(1);        // level 1 on q1
  EXPECT_EQ(qc.depth(), 1);
  qc.cx(0, 1);    // level 2 on q0,q1
  EXPECT_EQ(qc.depth(), 2);
  qc.h(2);        // level 1 on q2 — parallel
  EXPECT_EQ(qc.depth(), 2);
  qc.cx(1, 2);    // level 3
  EXPECT_EQ(qc.depth(), 3);
}

TEST(Circuit, ToUnitaryBellCircuit) {
  QuantumCircuit qc(2);
  qc.h(0);
  qc.cx(0, 1);
  const Matrix u = qc.to_unitary();
  // |00> -> (|00> + |11>)/√2.
  const auto col0 = std::vector<cplx>{u.at(0, 0), u.at(1, 0), u.at(2, 0),
                                      u.at(3, 0)};
  EXPECT_NEAR(std::abs(col0[0]), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(col0[3]), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(col0[1]), 0.0, 1e-12);
  EXPECT_NEAR(std::abs(col0[2]), 0.0, 1e-12);
}

TEST(Circuit, GlobalPhaseInUnitary) {
  QuantumCircuit qc(1);
  qc.add_global_phase(kPi / 3);
  const Matrix u = qc.to_unitary();
  EXPECT_NEAR(std::arg(u.at(0, 0)), kPi / 3, 1e-12);
}

TEST(Circuit, InverseIsExactInverse) {
  QuantumCircuit qc(3);
  qc.h(0);
  qc.cp(0, 1, 0.7);
  qc.cx(1, 2);
  qc.rz(2, -0.4);
  qc.sx(1);
  qc.add_global_phase(0.2);
  QuantumCircuit both(3);
  both.compose(qc);
  both.compose(qc.inverse());
  EXPECT_TRUE(both.to_unitary().approx_equal(Matrix::identity(8), 1e-10));
}

TEST(Circuit, ComposeMappedRelabelsQubits) {
  QuantumCircuit sub(2);
  sub.h(0);
  sub.cx(0, 1);
  QuantumCircuit qc(4);
  qc.compose_mapped(sub, {3, 1});
  ASSERT_EQ(qc.gates().size(), 2u);
  EXPECT_EQ(qc.gates()[0].qubits[0], 3);
  EXPECT_EQ(qc.gates()[1].qubits[0], 1);  // target
  EXPECT_EQ(qc.gates()[1].qubits[1], 3);  // control
}

TEST(Circuit, ControlledOnMatchesReference) {
  // Build a small circuit with the QFT/adder alphabet and compare its
  // controlled version against controlled(U) built from dense matrices.
  QuantumCircuit sub(2);
  sub.h(0);
  sub.cp(0, 1, 0.9);
  sub.p(1, 0.3);
  sub.x(0);
  sub.rz(1, -0.8);
  sub.add_global_phase(0.15);

  QuantumCircuit whole(3);
  whole.compose_mapped(sub, {0, 1});
  // Controlled version with control = qubit 2.
  QuantumCircuit sub3(3);
  sub3.compose_mapped(sub, {0, 1});
  const QuantumCircuit controlled = sub3.controlled_on(2);

  // Reference: embed controlled(U_sub) with control as the highest bit.
  const Matrix u_sub = sub.to_unitary();
  const Matrix expected = embed_gate(gates::controlled(u_sub), {0, 1, 2}, 3);
  EXPECT_TRUE(controlled.to_unitary().approx_equal(expected, 1e-9));
}

TEST(Circuit, ControlledOnRejectsOverlap) {
  QuantumCircuit qc(2);
  qc.h(0);
  qc.h(1);
  EXPECT_THROW(qc.controlled_on(1), CheckError);
}

TEST(Circuit, DrawProducesOneLinePerQubit) {
  QuantumCircuit qc(3);
  qc.h(0);
  qc.cx(0, 2);
  qc.cp(1, 2, 0.4);
  const std::string art = qc.draw();
  EXPECT_EQ(std::count(art.begin(), art.end(), '\n'), 3);
  EXPECT_NE(art.find("h"), std::string::npos);
  EXPECT_NE(art.find("*"), std::string::npos);
}

TEST(Circuit, SameShapeCopiesRegisters) {
  QuantumCircuit qc(0);
  qc.add_register("a", 2);
  qc.add_register("b", 3);
  qc.h(0);
  const QuantumCircuit shaped = QuantumCircuit::same_shape(qc);
  EXPECT_EQ(shaped.num_qubits(), 5);
  EXPECT_TRUE(shaped.gates().empty());
  EXPECT_EQ(shaped.reg("b").start, 2);
}

}  // namespace
}  // namespace qfab
