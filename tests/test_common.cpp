#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <cmath>
#include <csignal>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>
#include <string>
#include <thread>

#include "common/bits.h"
#include "common/cli.h"
#include "common/io.h"
#include "common/parallel.h"
#include "common/rng.h"
#include "common/shutdown.h"
#include "common/table.h"

namespace qfab {
namespace {

// ---------- bits ----------

TEST(Bits, Pow2) {
  EXPECT_EQ(pow2(0), 1u);
  EXPECT_EQ(pow2(1), 2u);
  EXPECT_EQ(pow2(16), 65536u);
  EXPECT_EQ(pow2(63), u64{1} << 63);
  EXPECT_THROW(pow2(64), CheckError);
  EXPECT_THROW(pow2(-1), CheckError);
}

TEST(Bits, GetSetClearFlip) {
  EXPECT_EQ(get_bit(0b1010, 1), 1);
  EXPECT_EQ(get_bit(0b1010, 0), 0);
  EXPECT_EQ(set_bit(0b1010, 0), 0b1011u);
  EXPECT_EQ(clear_bit(0b1010, 1), 0b1000u);
  EXPECT_EQ(flip_bit(0b1010, 3), 0b0010u);
  EXPECT_EQ(flip_bit(0b1010, 2), 0b1110u);
}

TEST(Bits, InsertZeroBit) {
  // Inserting at position 0 shifts everything left.
  EXPECT_EQ(insert_zero_bit(0b111, 0), 0b1110u);
  // Inserting at position 1 keeps bit 0.
  EXPECT_EQ(insert_zero_bit(0b111, 1), 0b1101u);
  EXPECT_EQ(insert_zero_bit(0b111, 3), 0b0111u);
  // Enumerating g in [0, 2^{n-1}) with a zero inserted at q yields every
  // index with bit q clear, exactly once.
  const int n = 5, q = 2;
  std::set<u64> seen;
  for (u64 g = 0; g < pow2(n - 1); ++g) {
    const u64 i = insert_zero_bit(g, q);
    EXPECT_EQ(get_bit(i, q), 0);
    seen.insert(i);
  }
  EXPECT_EQ(seen.size(), pow2(n - 1));
}

TEST(Bits, InsertTwoZeroBits) {
  const int n = 6, b1 = 1, b2 = 4;
  std::set<u64> seen;
  for (u64 g = 0; g < pow2(n - 2); ++g) {
    const u64 i = insert_two_zero_bits(g, b1, b2);
    EXPECT_EQ(get_bit(i, b1), 0);
    EXPECT_EQ(get_bit(i, b2), 0);
    seen.insert(i);
  }
  EXPECT_EQ(seen.size(), pow2(n - 2));
}

TEST(Bits, CeilLog2) {
  EXPECT_EQ(ceil_log2(1), 0);
  EXPECT_EQ(ceil_log2(2), 1);
  EXPECT_EQ(ceil_log2(3), 2);
  EXPECT_EQ(ceil_log2(4), 2);
  EXPECT_EQ(ceil_log2(5), 3);
  EXPECT_EQ(ceil_log2(1024), 10);
}

TEST(Bits, ReverseBits) {
  EXPECT_EQ(reverse_bits(0b001, 3), 0b100u);
  EXPECT_EQ(reverse_bits(0b110, 3), 0b011u);
  EXPECT_EQ(reverse_bits(0b1011, 4), 0b1101u);
  for (u64 x = 0; x < 32; ++x)
    EXPECT_EQ(reverse_bits(reverse_bits(x, 5), 5), x);
}

// ---------- rng ----------

TEST(Rng, DeterministicStreams) {
  Pcg64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
  Pcg64 c(43);
  bool differs = false;
  Pcg64 a2(42);
  for (int i = 0; i < 10; ++i) differs |= (a2() != c());
  EXPECT_TRUE(differs);
}

TEST(Rng, UniformInUnitInterval) {
  Pcg64 rng(7);
  double sum = 0.0;
  for (int i = 0; i < 20000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 20000.0, 0.5, 0.02);
}

TEST(Rng, UniformIntRangeAndMean) {
  Pcg64 rng(11);
  std::vector<int> hist(10, 0);
  for (int i = 0; i < 50000; ++i) ++hist[rng.uniform_int(10)];
  for (int h : hist) EXPECT_NEAR(h, 5000, 500);
}

TEST(Rng, SplitIndependence) {
  Pcg64 root(5);
  Pcg64 a = root.split(1);
  Pcg64 b = root.split(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a() == b());
  EXPECT_LT(same, 2);
}

TEST(Rng, BinomialMoments) {
  Pcg64 rng(13);
  // Small-mean branch.
  {
    double sum = 0.0;
    const int reps = 20000;
    for (int i = 0; i < reps; ++i)
      sum += static_cast<double>(binomial(rng, 100, 0.05));
    EXPECT_NEAR(sum / reps, 5.0, 0.1);
  }
  // Normal-approximation branch.
  {
    double sum = 0.0, sq = 0.0;
    const int reps = 20000;
    for (int i = 0; i < reps; ++i) {
      const double k = static_cast<double>(binomial(rng, 2048, 0.5));
      sum += k;
      sq += k * k;
    }
    const double mean = sum / reps;
    const double var = sq / reps - mean * mean;
    EXPECT_NEAR(mean, 1024.0, 2.0);
    EXPECT_NEAR(var, 512.0, 40.0);
  }
}

TEST(Rng, BinomialEdgeCases) {
  Pcg64 rng(17);
  EXPECT_EQ(binomial(rng, 0, 0.5), 0u);
  EXPECT_EQ(binomial(rng, 100, 0.0), 0u);
  EXPECT_EQ(binomial(rng, 100, 1.0), 100u);
  EXPECT_THROW(binomial(rng, 10, 1.5), CheckError);
}

TEST(Rng, MultinomialConservesTrials) {
  Pcg64 rng(19);
  const std::vector<double> probs = {0.5, 0.25, 0.125, 0.125};
  for (int rep = 0; rep < 50; ++rep) {
    const auto counts = multinomial(rng, 2048, probs);
    std::uint64_t total = 0;
    for (auto c : counts) total += c;
    ASSERT_EQ(total, 2048u);
  }
}

TEST(Rng, MultinomialMeans) {
  Pcg64 rng(23);
  const std::vector<double> probs = {0.7, 0.2, 0.1};
  std::vector<double> sums(3, 0.0);
  const int reps = 2000;
  for (int rep = 0; rep < reps; ++rep) {
    const auto counts = multinomial(rng, 1000, probs);
    for (int i = 0; i < 3; ++i) sums[i] += static_cast<double>(counts[i]);
  }
  EXPECT_NEAR(sums[0] / reps, 700.0, 5.0);
  EXPECT_NEAR(sums[1] / reps, 200.0, 5.0);
  EXPECT_NEAR(sums[2] / reps, 100.0, 5.0);
}

TEST(Rng, MultinomialUnnormalizedProbs) {
  Pcg64 rng(27);
  // Scaling all probabilities must not change the law.
  const auto counts = multinomial(rng, 10000, {2.0, 2.0});
  EXPECT_NEAR(static_cast<double>(counts[0]), 5000.0, 300.0);
}

TEST(Rng, SampleWithoutReplacement) {
  Pcg64 rng(31);
  // Dense branch.
  const auto dense = sample_without_replacement(rng, 10, 8);
  EXPECT_EQ(dense.size(), 8u);
  EXPECT_TRUE(std::is_sorted(dense.begin(), dense.end()));
  EXPECT_EQ(std::set<std::uint64_t>(dense.begin(), dense.end()).size(), 8u);
  // Sparse branch.
  const auto sparse = sample_without_replacement(rng, 1000000, 5);
  EXPECT_EQ(std::set<std::uint64_t>(sparse.begin(), sparse.end()).size(), 5u);
  // Full draw is a permutation of [0, n).
  const auto all = sample_without_replacement(rng, 6, 6);
  for (std::uint64_t i = 0; i < 6; ++i) EXPECT_EQ(all[i], i);
}

// ---------- parallel ----------

TEST(Parallel, CoversRangeExactlyOnce) {
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, EmptyRangeIsNoop) {
  bool called = false;
  parallel_for(5, 5, [&](std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, ChunkedCoversRangeExactlyOnce) {
  for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{7},
                            std::size_t{1000}}) {
    std::vector<std::atomic<int>> hits(1000);
    parallel_for_chunked(
        0, 1000,
        [&](std::size_t lo, std::size_t hi) {
          EXPECT_LT(lo, hi);
          EXPECT_LE(hi, 1000u);
          for (std::size_t i = lo; i < hi; ++i) ++hits[i];
        },
        chunk);
    for (auto& h : hits) EXPECT_EQ(h.load(), 1);
  }
}

TEST(Parallel, ChunkedOffsetRangeAndEmpty) {
  std::vector<std::atomic<int>> hits(100);
  parallel_for_chunked(40, 100, [&](std::size_t lo, std::size_t hi) {
    for (std::size_t i = lo; i < hi; ++i) ++hits[i];
  });
  for (std::size_t i = 0; i < 100; ++i)
    EXPECT_EQ(hits[i].load(), i >= 40 ? 1 : 0);

  bool called = false;
  parallel_for_chunked(9, 9,
                       [&](std::size_t, std::size_t) { called = true; });
  EXPECT_FALSE(called);
}

TEST(Parallel, GrainFloorCoversChunkBoundaries) {
  // Every (n, chunk, min_grain) combination — ragged tails, grain larger
  // than chunk, grain larger than the whole range — must cover each index
  // exactly once with ordered, in-range chunk boundaries.
  for (std::size_t n : {std::size_t{1}, std::size_t{5}, std::size_t{64},
                        std::size_t{1000}}) {
    for (std::size_t chunk : {std::size_t{0}, std::size_t{1}, std::size_t{7}})
      for (std::size_t grain : {std::size_t{0}, std::size_t{1}, std::size_t{4},
                                std::size_t{16}, std::size_t{5000}}) {
        std::vector<std::atomic<int>> hits(n);
        parallel_for_chunked(
            0, n,
            [&](std::size_t lo, std::size_t hi) {
              EXPECT_LT(lo, hi);
              EXPECT_LE(hi, n);
              for (std::size_t i = lo; i < hi; ++i) ++hits[i];
            },
            chunk, grain);
        for (auto& h : hits)
          EXPECT_EQ(h.load(), 1) << "n=" << n << " chunk=" << chunk
                                 << " grain=" << grain;
      }
  }
}

TEST(Parallel, TinyRangeUnderGrainRunsAsOneChunk) {
  // n <= min_grain must be a single serial body(begin, end) call.
  int calls = 0;
  parallel_for_chunked(
      10, 14,
      [&](std::size_t lo, std::size_t hi) {
        ++calls;
        EXPECT_EQ(lo, 10u);
        EXPECT_EQ(hi, 14u);
      },
      0, 8);
  EXPECT_EQ(calls, 1);
}

TEST(Parallel, BodyExceptionRethrownOnCaller) {
  // A throwing body must surface on the calling thread (not
  // std::terminate the worker), and the pool must stay usable after.
  EXPECT_THROW(
      parallel_for_chunked(
          0, 1000,
          [&](std::size_t lo, std::size_t hi) {
            // Keyed on containment, not chunk boundaries: holds under any
            // chunking, including the whole-range serial fallback.
            if (lo <= 500 && 500 < hi) throw std::runtime_error("body failed");
          },
          1),
      std::runtime_error);

  // CheckError (the repo's own assertion type) propagates with its type.
  EXPECT_THROW(parallel_for(0, 64,
                            [&](std::size_t i) {
                              QFAB_CHECK_MSG(i != 40, "index 40 rejected");
                            }),
               CheckError);

  // The pool was not wedged by the failed calls: a full pass still covers
  // every index exactly once.
  std::vector<std::atomic<int>> hits(1000);
  parallel_for(0, 1000, [&](std::size_t i) { ++hits[i]; });
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(Parallel, ExceptionCancelsButNeverRepeats) {
  // After the first exception remaining chunks are cancelled; every index
  // is visited at most once either way.
  std::vector<std::atomic<int>> hits(512);
  std::atomic<int> failures{0};
  try {
    parallel_for_chunked(
        0, 512,
        [&](std::size_t lo, std::size_t hi) {
          for (std::size_t i = lo; i < hi; ++i) ++hits[i];
          if (lo <= 256 && 256 < hi) throw std::runtime_error("halfway");
        },
        8);
  } catch (const std::runtime_error&) {
    ++failures;
  }
  EXPECT_EQ(failures.load(), 1);
  for (auto& h : hits) EXPECT_LE(h.load(), 1);
}

TEST(Parallel, NestedCallsDoNotDeadlock) {
  // A pool-worker caller must be able to run a nested parallel loop to
  // completion even when every other worker is blocked in the same
  // position (the callers help drain their own and each other's chunks).
  std::atomic<long> total{0};
  parallel_for_chunked(
      0, 32,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i)
          parallel_for(0, 100, [&](std::size_t) { ++total; });
      },
      1);
  EXPECT_EQ(total.load(), 3200);
}

TEST(Parallel, NestedExceptionPropagatesThroughBothLevels) {
  EXPECT_THROW(
      parallel_for_chunked(
          0, 8,
          [&](std::size_t lo, std::size_t hi) {
            parallel_for(0, 64, [&](std::size_t i) {
              if (lo <= 4 && 4 < hi && i == 32)
                throw std::runtime_error("inner");
            });
          },
          1),
      std::runtime_error);
}

TEST(Parallel, ConcurrentTopLevelCallers) {
  // Multiple plain threads sharing the pool at once: each call's
  // completion wait tracks only its own chunks.
  constexpr int kThreads = 4;
  constexpr std::size_t kN = 2000;
  std::vector<std::vector<std::atomic<int>>> hits(kThreads);
  for (auto& h : hits) h = std::vector<std::atomic<int>>(kN);
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t)
    threads.emplace_back([&, t] {
      parallel_for_chunked(
          0, kN,
          [&, t](std::size_t lo, std::size_t hi) {
            for (std::size_t i = lo; i < hi; ++i) ++hits[t][i];
          },
          3);
    });
  for (auto& th : threads) th.join();
  for (int t = 0; t < kThreads; ++t)
    for (auto& h : hits[t]) ASSERT_EQ(h.load(), 1);
}

// ---------- cli ----------

TEST(Cli, ParsesAllForms) {
  const char* argv[] = {"prog",       "--alpha=3",  "--beta", "2.5",
                        "--gamma",    "--no-delta", "--list=1,2,3"};
  CliFlags flags(7, argv);
  EXPECT_EQ(flags.get_int("alpha", 0), 3);
  EXPECT_DOUBLE_EQ(flags.get_double("beta", 0.0), 2.5);
  EXPECT_TRUE(flags.get_bool("gamma", false));
  EXPECT_FALSE(flags.get_bool("delta", true));
  const auto list = flags.get_int_list("list", {});
  ASSERT_EQ(list.size(), 3u);
  EXPECT_EQ(list[2], 3);
  EXPECT_EQ(flags.get_string("missing", "def"), "def");
  EXPECT_TRUE(flags.validate());
}

TEST(Cli, RejectsBadValues) {
  const char* argv[] = {"prog", "--x=abc"};
  CliFlags flags(2, argv);
  EXPECT_THROW(flags.get_int("x", 0), CheckError);
}

TEST(Cli, ValidateFlagsUnknown) {
  const char* argv[] = {"prog", "--typo=1"};
  CliFlags flags(2, argv);
  flags.get_int("real", 0);
  EXPECT_FALSE(flags.validate());
}

TEST(Cli, DoubleListParsing) {
  const char* argv[] = {"prog", "--rates=0.1,0.2,0.5"};
  CliFlags flags(2, argv);
  const auto rates = flags.get_double_list("rates", {});
  ASSERT_EQ(rates.size(), 3u);
  EXPECT_DOUBLE_EQ(rates[1], 0.2);
}

TEST(Cli, RejectsEmptyNumericValue) {
  // "--shots=" used to parse as 0 because strtol("") just returns 0 with
  // end == str; an explicit empty value must be an error, not a silent 0.
  const char* argv[] = {"prog", "--shots=", "--rate="};
  CliFlags flags(3, argv);
  EXPECT_THROW(flags.get_int("shots", 1024), CheckError);
  EXPECT_THROW(flags.get_double("rate", 0.5), CheckError);
}

TEST(Cli, RejectsOutOfRangeValues) {
  // strtol/strtod clamp on ERANGE (LONG_MAX / HUGE_VAL) instead of
  // failing; the wrapper must check errno and reject.
  const char* argv[] = {"prog", "--big=999999999999999999999999",
                        "--huge=1e999", "--neg=-999999999999999999999999"};
  CliFlags flags(4, argv);
  EXPECT_THROW(flags.get_int("big", 0), CheckError);
  EXPECT_THROW(flags.get_double("huge", 0.0), CheckError);
  EXPECT_THROW(flags.get_int("neg", 0), CheckError);
}

TEST(Cli, RejectsTrailingGarbage) {
  const char* argv[] = {"prog", "--x=12abc", "--y=3.5q"};
  CliFlags flags(3, argv);
  EXPECT_THROW(flags.get_int("x", 0), CheckError);
  EXPECT_THROW(flags.get_double("y", 0.0), CheckError);
}

TEST(Cli, RejectsNonNumericPrefixes) {
  // strtol/strtod silently skip leading whitespace and accept a '+' sign,
  // so `--depths=" 3"` used to parse while `"3 "` was rejected. Any
  // non-numeric prefix must fail, consistently with trailing garbage.
  const char* argv[] = {"prog",      "--sp= 3",    "--tab=\t4", "--plus=+5",
                        "--dsp= 2.5", "--dplus=+.5", "--inf=-inf", "--nan=nan"};
  CliFlags flags(8, argv);
  EXPECT_THROW(flags.get_int("sp", 0), CheckError);
  EXPECT_THROW(flags.get_int("tab", 0), CheckError);
  EXPECT_THROW(flags.get_int("plus", 0), CheckError);
  EXPECT_THROW(flags.get_double("dsp", 0.0), CheckError);
  EXPECT_THROW(flags.get_double("dplus", 0.0), CheckError);
  EXPECT_THROW(flags.get_double("inf", 0.0), CheckError);
  EXPECT_THROW(flags.get_double("nan", 0.0), CheckError);
}

TEST(Cli, AcceptsPlainNumericForms) {
  // The no-prefix rule must not break the forms flags actually use:
  // negative integers, negative/leading-dot decimals, and exponents.
  const char* argv[] = {"prog", "--n=-7", "--r=-0.25", "--d=.5", "--e=2e-3"};
  CliFlags flags(5, argv);
  EXPECT_EQ(flags.get_int("n", 0), -7);
  EXPECT_DOUBLE_EQ(flags.get_double("r", 0.0), -0.25);
  EXPECT_DOUBLE_EQ(flags.get_double("d", 0.0), 0.5);
  EXPECT_DOUBLE_EQ(flags.get_double("e", 0.0), 2e-3);
}

TEST(Cli, RejectsBadListValues) {
  const char* argv[] = {"prog", "--a=1,,3", "--b=", "--c=0.1,x"};
  CliFlags flags(4, argv);
  EXPECT_THROW(flags.get_int_list("a", {}), CheckError);
  EXPECT_THROW(flags.get_int_list("b", {}), CheckError);
  EXPECT_THROW(flags.get_double_list("c", {}), CheckError);
}

// ---------- table ----------

TEST(Table, AlignmentAndRows) {
  TextTable t({"a", "long_header"});
  t.add_row({"1", "2"});
  t.add_row({"333", "4"});
  EXPECT_EQ(t.rows(), 2u);
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("long_header"), std::string::npos);
  EXPECT_NE(s.find("333"), std::string::npos);
}

TEST(Table, RowWidthMismatchThrows) {
  TextTable t({"a", "b"});
  EXPECT_THROW(t.add_row({"only one"}), CheckError);
}

TEST(Table, Formatters) {
  EXPECT_EQ(fmt_double(3.14159, 2), "3.14");
  EXPECT_EQ(fmt_percent(0.5, 1), "50.0");
  EXPECT_EQ(fmt_percent(1.0, 0), "100");
}

// ---------- io ----------

TEST(Io, AtomicWriteFileReplacesWholeContents) {
  const std::string path =
      "test_common_atomic_" + std::to_string(static_cast<long>(::getpid()));
  atomic_write_file(path, "first\n");
  atomic_write_file(path, "second, longer than the first\n");
  std::ifstream in(path);
  std::stringstream got;
  got << in.rdbuf();
  EXPECT_EQ(got.str(), "second, longer than the first\n");
  // No stray tmp file left next to the target.
  EXPECT_FALSE(std::filesystem::exists(
      path + ".tmp." + std::to_string(static_cast<long>(::getpid()))));
  std::filesystem::remove(path);
}

TEST(Io, AtomicWriteFileRejectsUnwritableDirectory) {
  EXPECT_THROW(atomic_write_file("no_such_dir_zzz/out.txt", "x"), CheckError);
}

TEST(Io, Crc32KnownVectors) {
  // IEEE 802.3 check value for "123456789".
  const char digits[] = "123456789";
  EXPECT_EQ(crc32(digits, 9), 0xCBF43926u);
  EXPECT_EQ(crc32(nullptr, 0), 0u);
  // Seeding lets a frame be checksummed in pieces.
  const std::uint32_t head = crc32(digits, 4);
  EXPECT_EQ(crc32(digits + 4, 5, head), 0xCBF43926u);
}

// ---------- shutdown ----------

TEST(Shutdown, SoftDrainLatchesWithoutAdvancingHardExitCounter) {
  install_shutdown_latch();
  install_soft_drain_handler();
  reset_shutdown_latch_for_tests();

  ASSERT_EQ(std::raise(SIGUSR1), 0);
  EXPECT_TRUE(shutdown_requested());
  // The soft channel must not count toward the two-signal hard exit: after
  // any number of SIGUSR1s, a first SIGINT still only latches a drain — if
  // SIGUSR1 advanced the counter, this SIGINT would _Exit(130) right here.
  ASSERT_EQ(std::raise(SIGUSR1), 0);
  ASSERT_EQ(std::raise(SIGINT), 0);
  EXPECT_TRUE(shutdown_requested());
  reset_shutdown_latch_for_tests();
  EXPECT_FALSE(shutdown_requested());
}

TEST(Shutdown, SecondCountedSignalHardExits130) {
  // The hard exit must be observed from outside: a fork raises SIGINT
  // twice, and the second signal's handler _Exit(130)s before the child
  // can reach its fallback exit code.
  const pid_t pid = ::fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    install_shutdown_latch();
    reset_shutdown_latch_for_tests();
    (void)std::raise(SIGINT);
    (void)std::raise(SIGINT);
    std::_Exit(99);  // unreachable when the latch behaves
  }
  int status = 0;
  ASSERT_EQ(::waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status));
  EXPECT_EQ(WEXITSTATUS(status), 130);
}

}  // namespace
}  // namespace qfab
