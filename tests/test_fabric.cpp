// Multi-process sweep-fabric validation: merged results bit-identical to a
// single-process run across worker counts, crash / stall / lease-steal
// fault recovery, resume, fingerprint refusal, and the grid/assembler
// invariants the merge relies on.
//
// This suite has its own main(): the multi-process tests re-exec this
// binary as a coordinator child (`test_fabric --fabric-child <dir> ...`),
// which forks its worker fleet from a thread-free process (forking the
// gtest process after a reference sweep would inherit dead thread-pool
// state). gtest_main would try to parse the child flags, so the binary
// links GTest::gtest and dispatches by hand.
#include <gtest/gtest.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "common/check.h"
#include "common/shutdown.h"
#include "exp/fabric.h"
#include "exp/journal.h"

namespace qfab {
namespace {

// ---------------------------------------------------------------------------
// Shared fixture configuration: the coordinator child rebuilds the exact
// same sweep from the seed alone. block = batch_lanes = 2 over 5 instances
// -> 3 groups (one ragged), 2 depths -> 6 work units.

SweepConfig fabric_test_config(std::uint64_t seed = 77) {
  SweepConfig cfg;
  cfg.base.op = Operation::kAdd;
  cfg.base.n = 3;
  cfg.depths = {1, kFullDepth};
  cfg.rates_percent = {0.5, 1.0};
  cfg.vary_2q = true;
  cfg.orders = {1, 2};
  cfg.instances = 5;
  cfg.run.shots = 64;
  cfg.run.error_trajectories = 4;
  cfg.run.batch_lanes = 2;
  cfg.seed = seed;
  cfg.progress = false;
  return cfg;
}

constexpr std::size_t kUnits = 6;

std::vector<ArithInstance> fabric_test_instances(const SweepConfig& cfg) {
  Pcg64 rng(cfg.seed);
  return generate_instances(cfg.instances, cfg.base.n, cfg.base.n, cfg.orders,
                            rng);
}

// Per-process scratch directory: ctest -j runs the plain and forced-scalar
// variants of this suite concurrently.
std::string tmp_path(const std::string& name) {
  static const std::string dir = [] {
    const std::string d =
        "test_fabric_tmp_" + std::to_string(static_cast<long>(::getpid()));
    std::filesystem::create_directories(d);
    return d;
  }();
  return dir + "/" + name;
}

void cleanup_tmp() {
  std::error_code ec;
  std::filesystem::remove_all(
      "test_fabric_tmp_" + std::to_string(static_cast<long>(::getpid())), ec);
}

std::string self_exe() {
  char buf[4096];
  const ssize_t n = ::readlink("/proc/self/exe", buf, sizeof(buf) - 1);
  QFAB_CHECK(n > 0);
  buf[n] = '\0';
  return buf;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

/// What the coordinator child writes to its --report file.
struct ChildReport {
  int complete = -1;
  int steals = -1;
  int kills = -1;
  int respawns = -1;
  int spawned = -1;
  std::size_t restored = 0;
  std::size_t done = 0;
};

ChildReport read_report(const std::string& path) {
  ChildReport rep;
  const std::string text = slurp(path);
  EXPECT_EQ(std::sscanf(text.c_str(),
                        "complete=%d steals=%d kills=%d respawns=%d "
                        "spawned=%d restored=%zu done=%zu",
                        &rep.complete, &rep.steals, &rep.kills, &rep.respawns,
                        &rep.spawned, &rep.restored, &rep.done),
            7)
      << "unparseable child report: " << text;
  return rep;
}

/// Re-exec this binary as a fabric coordinator with `fault` armed via
/// QFAB_FAULT. The child writes its merged CSV and a report file next to
/// the fabric directory. Returns the child's exit code (-1 on signal).
int spawn_fabric(const std::string& fault, const std::string& dir,
                 int workers, bool resume, std::uint64_t seed = 77,
                 double lease = 5.0, int max_respawns = 3) {
  std::string cmd;
  if (!fault.empty()) cmd += "QFAB_FAULT='" + fault + "' ";
  cmd += "'" + self_exe() + "' --fabric-child '" + dir + "'";
  cmd += " --workers " + std::to_string(workers);
  if (resume) cmd += " --resume";
  cmd += " --child-seed " + std::to_string(seed);
  cmd += " --lease " + std::to_string(lease);
  cmd += " --max-respawns " + std::to_string(max_respawns);
  cmd += " --csv '" + dir + ".csv' --report '" + dir + ".report'";
  cmd += " >/dev/null 2>&1";
  const int status = std::system(cmd.c_str());
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

/// The single-process truth: the same sweep through run_sweep, rendered
/// with the same canonical CSV table the fabric children write.
const std::string& reference_csv() {
  static const std::string text = [] {
    const SweepConfig cfg = fabric_test_config();
    const SweepResult r = run_sweep(cfg, fabric_test_instances(cfg));
    const std::string path = tmp_path("reference.csv");
    sweep_csv_table(r).write_csv(path);
    return slurp(path);
  }();
  return text;
}

std::size_t total_shard_records(const FabricStatus& status) {
  std::size_t n = 0;
  for (const FabricShardStatus& shard : status.shards) n += shard.records;
  return n;
}

// ---------------------------------------------------------------------------
// In-process invariants the merge relies on.

TEST(Fabric, GridGeometryRoundTrips) {
  const SweepConfig cfg = fabric_test_config();
  const SweepGrid grid(cfg, 5);
  EXPECT_EQ(grid.block, 2u);
  EXPECT_EQ(grid.n_groups, 3u);
  EXPECT_EQ(grid.n_depths, 2u);
  EXPECT_EQ(grid.n_units, kUnits);
  for (std::size_t u = 0; u < grid.n_units; ++u) {
    const SweepGrid::UnitKey key = grid.key(u);
    EXPECT_EQ(grid.unit_of(key.depth_index, key.block_begin, key.block_end),
              u);
  }
  // The final block is ragged (5 % 2 != 0) and still on-grid.
  EXPECT_EQ(grid.key(grid.n_units - 1).block_end, 5u);
  // Off-grid coordinates are rejected, not aliased to a neighbour.
  EXPECT_EQ(grid.unit_of(0, 1, 3), SweepGrid::npos);
  EXPECT_EQ(grid.unit_of(0, 0, 1), SweepGrid::npos);
  EXPECT_EQ(grid.unit_of(2, 0, 2), SweepGrid::npos);
}

TEST(Fabric, AssemblerDeduplicatesAndRejectsMisfits) {
  const SweepConfig cfg = fabric_test_config();
  SweepExecution exec(cfg, fabric_test_instances(cfg));
  const SweepGrid& grid = exec.grid();
  const SweepGrid::UnitKey key = grid.key(0);
  UnitResult out = exec.run_unit(0);
  const auto outcomes = out.outcomes;  // keep a copy to replay

  SweepAssembler assembler(cfg, grid);
  EXPECT_EQ(assembler.add_record(key.depth_index, key.block_begin,
                                 key.block_end, outcomes, out.stats, ""),
            SweepAssembler::Add::kAdded);
  EXPECT_TRUE(assembler.done(0));
  EXPECT_EQ(assembler.units_done(), 1u);
  // A bit-identical duplicate (crash window, broken lease) is ignored.
  EXPECT_EQ(assembler.add_record(key.depth_index, key.block_begin,
                                 key.block_end, outcomes, out.stats, ""),
            SweepAssembler::Add::kDuplicate);
  EXPECT_EQ(assembler.units_done(), 1u);
  // Off-grid coordinates and mis-shaped outcomes never reach the matrix.
  EXPECT_EQ(assembler.add_record(key.depth_index, 1, 3, outcomes, out.stats,
                                 ""),
            SweepAssembler::Add::kMisfit);
  auto truncated = outcomes;
  truncated.pop_back();
  EXPECT_EQ(assembler.add_record(grid.key(1).depth_index,
                                 grid.key(1).block_begin,
                                 grid.key(1).block_end, truncated, out.stats,
                                 ""),
            SweepAssembler::Add::kMisfit);
  EXPECT_FALSE(assembler.done(1));
}

// ---------------------------------------------------------------------------
// Multi-process: the merged CSV must be byte-identical to the
// single-process truth, whatever the worker count or injected failure.

TEST(Fabric, MergedCsvBitIdenticalAcrossWorkerCounts) {
  for (const int workers : {1, 2, 4}) {
    SCOPED_TRACE("workers=" + std::to_string(workers));
    const std::string dir = tmp_path("w" + std::to_string(workers));
    ASSERT_EQ(spawn_fabric("", dir, workers, /*resume=*/false), 0);
    EXPECT_EQ(slurp(dir + ".csv"), reference_csv());

    const ChildReport rep = read_report(dir + ".report");
    EXPECT_EQ(rep.complete, 1);
    EXPECT_EQ(rep.done, kUnits);
    EXPECT_EQ(rep.steals, 0);
    EXPECT_EQ(rep.kills, 0);
    EXPECT_EQ(rep.respawns, 0);
    EXPECT_EQ(rep.spawned, workers);

    const FabricStatus status = inspect_fabric(dir);
    EXPECT_TRUE(status.manifest_ok);
    EXPECT_EQ(status.n_units, kUnits);
    EXPECT_EQ(status.done_markers, kUnits);
    EXPECT_TRUE(status.leases.empty());
    EXPECT_EQ(total_shard_records(status), kUnits);
    for (const FabricShardStatus& shard : status.shards) {
      EXPECT_TRUE(shard.header_ok);
      EXPECT_TRUE(shard.fingerprint_ok);
      EXPECT_FALSE(shard.dropped_tail);
    }
  }
}

TEST(Fabric, CrashedWorkerUnitIsReassignedExactlyOnce) {
  // Worker 0 crashes inside its first journal append: the record is durable
  // but the done marker is not, so its lease goes stale and the unit is
  // recomputed — the merge must deduplicate exactly one record.
  const std::string dir = tmp_path("crash");
  ASSERT_EQ(spawn_fabric("crash-after-unit=1,fault-worker=0", dir,
                         /*workers=*/2, /*resume=*/false, 77, /*lease=*/0.5),
            0);
  EXPECT_EQ(slurp(dir + ".csv"), reference_csv());

  const ChildReport rep = read_report(dir + ".report");
  EXPECT_EQ(rep.complete, 1);
  EXPECT_EQ(rep.done, kUnits);
  EXPECT_EQ(rep.respawns, 1);
  EXPECT_EQ(rep.steals, 1);
  EXPECT_EQ(rep.kills, 0);  // the holder was already dead, not wedged

  const FabricStatus status = inspect_fabric(dir);
  EXPECT_EQ(status.done_markers, kUnits);
  EXPECT_EQ(total_shard_records(status), kUnits + 1);
}

TEST(Fabric, StalledWorkerLeaseExpiresAndUnitIsReassignedOnce) {
  // Worker 0 wedges on its first claim with the heartbeat stopped: the
  // coordinator must expire the lease, SIGKILL the wedged process, break
  // the lease exactly once, and let the fleet absorb the unit.
  const std::string dir = tmp_path("stall");
  ASSERT_EQ(spawn_fabric("hang-after-unit=0,fault-worker=0", dir,
                         /*workers=*/2, /*resume=*/false, 77, /*lease=*/0.5),
            0);
  EXPECT_EQ(slurp(dir + ".csv"), reference_csv());

  const ChildReport rep = read_report(dir + ".report");
  EXPECT_EQ(rep.complete, 1);
  EXPECT_EQ(rep.done, kUnits);
  EXPECT_EQ(rep.steals, 1);
  EXPECT_EQ(rep.kills, 1);
  EXPECT_EQ(rep.respawns, 1);  // SIGKILL (137) is a crash to the supervisor

  const FabricStatus status = inspect_fabric(dir);
  EXPECT_EQ(status.done_markers, kUnits);
  // The wedged worker journaled nothing; every unit has exactly one record.
  EXPECT_EQ(total_shard_records(status), kUnits);
}

TEST(Fabric, LeaseStealDuplicateRecordIsMergedOnce) {
  // Worker 0 journals its first unit but withholds the done marker and
  // stops heartbeating — the slow-holder race. The unit is reassigned and
  // recomputed, so two bit-identical records reach the merge.
  const std::string dir = tmp_path("steal");
  ASSERT_EQ(spawn_fabric("lease-steal=1,fault-worker=0", dir,
                         /*workers=*/2, /*resume=*/false, 77, /*lease=*/0.5),
            0);
  EXPECT_EQ(slurp(dir + ".csv"), reference_csv());

  const ChildReport rep = read_report(dir + ".report");
  EXPECT_EQ(rep.complete, 1);
  EXPECT_EQ(rep.done, kUnits);
  EXPECT_EQ(rep.steals, 1);
  EXPECT_EQ(total_shard_records(inspect_fabric(dir)), kUnits + 1);
}

TEST(Fabric, ResumeCompletesAfterRespawnBudgetExhausted) {
  // One worker, no respawn budget: the injected crash strands the sweep
  // after a single durable record and the coordinator returns a resumable
  // incomplete result. A resumed fabric finishes it and the record that
  // predates the crash survives into the merge.
  const std::string dir = tmp_path("resume");
  ASSERT_EQ(spawn_fabric("crash-after-unit=1,fault-worker=0", dir,
                         /*workers=*/1, /*resume=*/false, 77, /*lease=*/0.5,
                         /*max_respawns=*/0),
            kResumableExitCode);
  const ChildReport first = read_report(dir + ".report");
  EXPECT_EQ(first.complete, 0);
  EXPECT_EQ(first.done, 1u);

  ASSERT_EQ(spawn_fabric("", dir, /*workers=*/2, /*resume=*/true), 0);
  EXPECT_EQ(slurp(dir + ".csv"), reference_csv());
  const ChildReport second = read_report(dir + ".report");
  EXPECT_EQ(second.complete, 1);
  EXPECT_EQ(second.done, kUnits);
}

TEST(Fabric, FingerprintMismatchRefusesResume) {
  const std::string dir = tmp_path("fingerprint");
  ASSERT_EQ(spawn_fabric("", dir, /*workers=*/1, /*resume=*/false, 77), 0);
  // Same directory, different sweep seed: the coordinator must refuse.
  EXPECT_EQ(spawn_fabric("", dir, /*workers=*/1, /*resume=*/true, 78), 3);
}

TEST(Fabric, InspectAndRepairDamagedShard) {
  const std::string dir = tmp_path("repair");
  ASSERT_EQ(spawn_fabric("", dir, /*workers=*/1, /*resume=*/false), 0);

  // Tear the shard's last record frame and drop a stale lease file, as a
  // crashed machine would.
  const std::string shard = dir + "/shards/shard_0.journal";
  std::filesystem::resize_file(shard,
                               std::filesystem::file_size(shard) - 3);
  { std::ofstream os(dir + "/leases/u000003.lease"); os << "pid=1 worker=9"; }

  const FabricStatus damaged = inspect_fabric(dir);
  ASSERT_EQ(damaged.shards.size(), 1u);
  EXPECT_TRUE(damaged.shards[0].dropped_tail);
  EXPECT_EQ(damaged.shards[0].records, kUnits - 1);
  EXPECT_EQ(damaged.leases.size(), 1u);

  const FabricRepair repair = repair_fabric(dir);
  EXPECT_EQ(repair.shards_rewritten, 1u);
  EXPECT_EQ(repair.dropped_records, 0u);  // torn partial frame, not whole
  EXPECT_GT(repair.dropped_bytes, 0u);
  EXPECT_EQ(repair.leases_cleared, 1u);

  const FabricStatus repaired = inspect_fabric(dir);
  EXPECT_FALSE(repaired.shards[0].dropped_tail);
  EXPECT_EQ(repaired.shards[0].records, kUnits - 1);
  EXPECT_TRUE(repaired.leases.empty());
}

// ---------------------------------------------------------------------------

int run_fabric_child(const std::string& dir, int workers, bool resume,
                     std::uint64_t seed, double lease, int max_respawns,
                     const std::string& csv, const std::string& report_file) {
  try {
    install_shutdown_latch();
    const SweepConfig cfg = fabric_test_config(seed);
    FabricOptions options;
    options.dir = dir;
    options.workers = workers;
    options.resume = resume;
    options.lease_seconds = lease;
    options.max_respawns = max_respawns;
    FabricReport report;
    const SweepResult r =
        run_sweep_fabric(cfg, fabric_test_instances(cfg), options, &report);
    if (!csv.empty() && r.complete) sweep_csv_table(r).write_csv(csv);
    if (!report_file.empty()) {
      std::ofstream os(report_file);
      os << "complete=" << (r.complete ? 1 : 0)
         << " steals=" << report.lease_steals << " kills=" << report.kills
         << " respawns=" << report.respawns
         << " spawned=" << report.workers_spawned
         << " restored=" << r.units_restored << " done=" << r.units_done
         << '\n';
    }
    return r.complete ? 0 : kResumableExitCode;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "fabric child failed: %s\n", e.what());
    return 3;
  }
}

}  // namespace
}  // namespace qfab

int main(int argc, char** argv) {
  std::string child_dir, child_csv, child_report;
  int child_workers = 1;
  bool child_resume = false;
  std::uint64_t child_seed = 77;
  double child_lease = 5.0;
  int child_max_respawns = 3;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--fabric-child" && i + 1 < argc) {
      child_dir = argv[++i];
    } else if (arg == "--workers" && i + 1 < argc) {
      child_workers = std::atoi(argv[++i]);
    } else if (arg == "--resume") {
      child_resume = true;
    } else if (arg == "--child-seed" && i + 1 < argc) {
      child_seed = std::strtoull(argv[++i], nullptr, 10);
    } else if (arg == "--lease" && i + 1 < argc) {
      child_lease = std::atof(argv[++i]);
    } else if (arg == "--max-respawns" && i + 1 < argc) {
      child_max_respawns = std::atoi(argv[++i]);
    } else if (arg == "--csv" && i + 1 < argc) {
      child_csv = argv[++i];
    } else if (arg == "--report" && i + 1 < argc) {
      child_report = argv[++i];
    }
  }
  if (!child_dir.empty())
    return qfab::run_fabric_child(child_dir, child_workers, child_resume,
                                  child_seed, child_lease, child_max_respawns,
                                  child_csv, child_report);

  ::testing::InitGoogleTest(&argc, argv);
  const int rc = RUN_ALL_TESTS();
  qfab::cleanup_tmp();
  return rc;
}
