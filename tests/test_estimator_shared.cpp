// Shared-trajectory estimator validation: exact delegation for single-rate
// clusters, stream-identical proposal columns, importance-reweighted
// columns tracking the exact channel, bit-for-bit ESS fallback, and
// sweep-level equivalence between shared and per-rate evaluation.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "exp/sweep.h"
#include "noise/densitymatrix.h"
#include "noise/estimator.h"
#include "qfb/adder.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

QuantumCircuit qfa_circuit(int n) {
  AdderOptions options;
  options.max_rotation_order = n - 1;
  return transpile_to_basis(make_qfa(n, n, options));
}

NoiseModel depol(double p) {
  NoiseModel nm;
  nm.p1q = nm.p2q = p;
  return nm;
}

std::vector<int> result_qubits(int n) {
  std::vector<int> out;
  for (int i = 0; i < n; ++i) out.push_back(n + i);
  return out;
}

/// Scale p so the proposal's expected event count is ~lambda (expected
/// events are ~linear in p at these magnitudes), keeping tests robust to
/// transpiled gate-count changes.
double rate_for_lambda(const QuantumCircuit& qc, double lambda) {
  const double base = 1e-3;
  const ErrorLocations probe(qc, depol(base));
  return base * lambda / probe.expected_events();
}

double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  double tv = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) tv += std::abs(a[i] - b[i]);
  return 0.5 * tv;
}

TEST(SharedEstimator, SingleRateClusterDelegatesBitForBit) {
  const QuantumCircuit qc = qfa_circuit(3);
  const CleanRun clean(qc, StateVector(qc.num_qubits()), 16);
  const std::vector<int> outputs = result_qubits(3);
  const std::vector<ErrorLocations> cluster{ErrorLocations(qc, depol(0.01))};
  SharedEstimatorOptions opt;
  opt.error_trajectories = 10;

  for (int max_lanes : {1, 4}) {
    std::vector<Pcg64> rngs;
    rngs.emplace_back(7, 9);
    SharedEstimateStats stats;
    const auto shared = estimate_channel_marginal_shared(
        clean, cluster, outputs, opt, max_lanes, rngs, &stats);
    ASSERT_EQ(shared.size(), 1u);

    Pcg64 ref_rng(7, 9);
    const EstimatorOptions eopt{opt.error_trajectories};
    const std::vector<double> ref =
        max_lanes > 1
            ? estimate_channel_marginal_batched(clean, cluster[0], outputs,
                                                eopt, max_lanes, ref_rng)
            : estimate_channel_marginal(clean, cluster[0], outputs, eopt,
                                        ref_rng);
    EXPECT_EQ(shared[0], ref);  // bitwise: same code path, same stream
    // The delegated stream advanced exactly as the per-rate estimator's.
    EXPECT_EQ(rngs[0](), ref_rng());
    EXPECT_EQ(stats.fallback_columns, 0);
    EXPECT_EQ(stats.rate_columns, 1);
  }
}

TEST(SharedEstimator, ProposalColumnMatchesStratifiedStream) {
  const QuantumCircuit qc = qfa_circuit(4);
  const CleanRun clean(qc, StateVector(qc.num_qubits()), 32);
  const std::vector<int> outputs = result_qubits(4);
  const double p = rate_for_lambda(qc, 2.0);
  std::vector<ErrorLocations> cluster;
  for (double f : {0.25, 0.5, 1.0}) cluster.emplace_back(qc, depol(f * p));
  SharedEstimatorOptions opt;
  opt.error_trajectories = 24;

  std::vector<Pcg64> rngs;
  for (std::uint64_t r = 0; r < cluster.size(); ++r) rngs.emplace_back(11, r);
  SharedEstimateStats stats;
  const auto shared = estimate_channel_marginal_shared(clean, cluster, outputs,
                                                       opt, 8, rngs, &stats);
  ASSERT_EQ(shared.size(), 3u);

  // The proposal (largest rate, index 2) consumed its stream exactly as the
  // stratified estimator would; dedup only regroups the average, so the
  // estimates agree to summation rounding.
  Pcg64 ref_rng(11, 2);
  const std::vector<double> ref = estimate_channel_marginal_batched(
      clean, cluster[2], outputs, EstimatorOptions{opt.error_trajectories}, 8,
      ref_rng);
  ASSERT_EQ(shared[2].size(), ref.size());
  for (std::size_t b = 0; b < ref.size(); ++b)
    EXPECT_NEAR(shared[2][b], ref[b], 1e-12);
  EXPECT_GE(stats.unique_trajectories, 1);
  EXPECT_LE(stats.unique_trajectories, stats.proposal_trajectories);
  // Every reweighted column is a distribution.
  for (const std::vector<double>& col : shared) {
    double sum = 0.0;
    for (double v : col) {
      EXPECT_GE(v, -1e-12);
      sum += v;
    }
    EXPECT_NEAR(sum, 1.0, 1e-9);
  }
}

TEST(SharedEstimator, ReweightedColumnsTrackExactChannel) {
  const QuantumCircuit qc = qfa_circuit(3);  // 6 qubits: exact DM affordable
  const CleanRun clean(qc, StateVector(qc.num_qubits()), 32);
  const std::vector<int> outputs = result_qubits(3);
  const double p = rate_for_lambda(qc, 1.5);
  const std::vector<double> fractions{0.3, 0.5, 0.75, 1.0};
  std::vector<ErrorLocations> cluster;
  for (double f : fractions) cluster.emplace_back(qc, depol(f * p));
  SharedEstimatorOptions opt;
  opt.error_trajectories = 400;

  std::vector<Pcg64> rngs;
  for (std::uint64_t r = 0; r < cluster.size(); ++r) rngs.emplace_back(13, r);
  SharedEstimateStats stats;
  const auto shared = estimate_channel_marginal_shared(clean, cluster, outputs,
                                                       opt, 16, rngs, &stats);

  for (std::size_t r = 0; r < cluster.size(); ++r) {
    DensityMatrix dm(qc.num_qubits());
    dm.apply_noisy_circuit(qc, depol(fractions[r] * p));
    const std::vector<double> exact = dm.marginal_probabilities(outputs);
    EXPECT_LT(total_variation(shared[r], exact), 0.05)
        << "rate fraction " << fractions[r];
    // And within statistical agreement of a fresh stratified estimate.
    Pcg64 strat_rng(99, r);
    const std::vector<double> strat = estimate_channel_marginal_batched(
        clean, cluster[r], outputs, EstimatorOptions{opt.error_trajectories},
        16, strat_rng);
    EXPECT_LT(total_variation(shared[r], strat), 0.08);
  }
  // Mild rate ratios at this lambda keep every column above the guard.
  EXPECT_EQ(stats.fallback_columns, 0);
  EXPECT_GT(stats.ess_fraction_min, 0.25);
}

TEST(SharedEstimator, ForcedEssFallbackReproducesStratifiedBitForBit) {
  const QuantumCircuit qc = qfa_circuit(3);
  const CleanRun clean(qc, StateVector(qc.num_qubits()), 16);
  const std::vector<int> outputs = result_qubits(3);
  const double p = rate_for_lambda(qc, 2.0);
  std::vector<ErrorLocations> cluster;
  for (double f : {0.5, 1.0}) cluster.emplace_back(qc, depol(f * p));
  SharedEstimatorOptions opt;
  opt.error_trajectories = 32;
  // ESS < T whenever any two trajectories carry different weights, so a
  // threshold of exactly T forces every non-proposal column to fall back
  // (the proposal's ESS is exactly T and never falls back).
  opt.min_ess_fraction = 1.0;

  for (int max_lanes : {1, 8}) {
    std::vector<Pcg64> rngs;
    rngs.emplace_back(17, 0);
    rngs.emplace_back(17, 1);
    SharedEstimateStats stats;
    const auto shared = estimate_channel_marginal_shared(
        clean, cluster, outputs, opt, max_lanes, rngs, &stats);

    EXPECT_EQ(stats.fallback_columns, 1);
    EXPECT_EQ(stats.fallback_trajectories, opt.error_trajectories);
    EXPECT_LT(stats.ess_fraction_min, 1.0);

    // The fallback column is exactly the per-rate call from its own
    // (previously untouched) stream.
    Pcg64 ref_rng(17, 0);
    const EstimatorOptions eopt{opt.error_trajectories};
    const std::vector<double> ref =
        max_lanes > 1
            ? estimate_channel_marginal_batched(clean, cluster[0], outputs,
                                                eopt, max_lanes, ref_rng)
            : estimate_channel_marginal(clean, cluster[0], outputs, eopt,
                                        ref_rng);
    EXPECT_EQ(shared[0], ref);
    EXPECT_EQ(rngs[0](), ref_rng());
  }
}

TEST(SharedEstimator, DefaultEssGuardTripsOnExtremeRateRatio) {
  const QuantumCircuit qc = qfa_circuit(4);
  const CleanRun clean(qc, StateVector(qc.num_qubits()), 32);
  const std::vector<int> outputs = result_qubits(4);
  // lambda ~4 at the proposal with a 50x rate ratio: the light column's
  // ESS fraction is ~(e^{lambda r} - 1)^2 / ((e^{lambda r^2} - 1)
  // (e^lambda - 1)) ~ 0.01, far below the default 0.25 guard.
  const double p = rate_for_lambda(qc, 4.0);
  std::vector<ErrorLocations> cluster;
  for (double f : {0.02, 1.0}) cluster.emplace_back(qc, depol(f * p));
  ASSERT_GT(cluster[1].expected_events(), 3.0);
  SharedEstimatorOptions opt;
  opt.error_trajectories = 48;

  std::vector<Pcg64> rngs;
  rngs.emplace_back(23, 0);
  rngs.emplace_back(23, 1);
  SharedEstimateStats stats;
  const auto shared = estimate_channel_marginal_shared(clean, cluster, outputs,
                                                       opt, 8, rngs, &stats);
  ASSERT_EQ(shared.size(), 2u);
  EXPECT_EQ(stats.fallback_columns, 1);
  EXPECT_LT(stats.ess_fraction_min, 0.25);
}

TEST(SharedEstimator, BatchedMembersMatchPooledEstimator) {
  const QuantumCircuit qc = qfa_circuit(3);
  const int n = qc.num_qubits();
  std::vector<StateVector> initials;
  for (u64 v : {0ull, 5ull, 9ull}) {
    StateVector sv(n);
    sv.set_basis_state(v);
    initials.push_back(sv);
  }
  const auto plan = std::make_shared<const FusedPlan>(qc);
  const BatchedCleanRun clean(plan, initials, 16);
  const std::vector<int> outputs = result_qubits(3);
  const double p = rate_for_lambda(qc, 2.0);
  SharedEstimatorOptions opt;
  opt.error_trajectories = 16;

  // Single-rate: delegates to the pooled estimator, bit-for-bit.
  {
    const std::vector<ErrorLocations> cluster{ErrorLocations(qc, depol(p))};
    std::vector<std::vector<Pcg64>> rngs(1);
    std::vector<Pcg64> ref_rngs;
    for (std::uint64_t m = 0; m < initials.size(); ++m) {
      rngs[0].emplace_back(31, m);
      ref_rngs.emplace_back(31, m);
    }
    const auto shared =
        estimate_channel_marginals_shared(clean, cluster, outputs, opt, rngs);
    const auto ref = estimate_channel_marginals_batched(
        clean, cluster[0], outputs, EstimatorOptions{opt.error_trajectories},
        ref_rngs);
    ASSERT_EQ(shared.size(), 1u);
    EXPECT_EQ(shared[0], ref);
  }

  // Multi-rate: every member's proposal column agrees with the pooled
  // per-rate estimator on the same streams to replay rounding, and the
  // reweighted columns are distributions.
  {
    std::vector<ErrorLocations> cluster;
    for (double f : {0.5, 1.0}) cluster.emplace_back(qc, depol(f * p));
    std::vector<std::vector<Pcg64>> rngs(2);
    std::vector<Pcg64> ref_rngs;
    for (std::uint64_t m = 0; m < initials.size(); ++m) {
      rngs[0].emplace_back(37, 100 + m);
      rngs[1].emplace_back(37, m);
      ref_rngs.emplace_back(37, m);
    }
    SharedEstimateStats stats;
    const auto shared = estimate_channel_marginals_shared(clean, cluster,
                                                          outputs, opt, rngs,
                                                          &stats);
    const auto ref = estimate_channel_marginals_batched(
        clean, cluster[1], outputs, EstimatorOptions{opt.error_trajectories},
        ref_rngs);
    ASSERT_EQ(shared.size(), 2u);
    ASSERT_EQ(shared[1].size(), ref.size());
    for (std::size_t m = 0; m < ref.size(); ++m)
      for (std::size_t b = 0; b < ref[m].size(); ++b)
        EXPECT_NEAR(shared[1][m][b], ref[m][b], 1e-10);
    EXPECT_EQ(stats.rate_columns,
              static_cast<long>(2 * initials.size()));
    for (std::size_t m = 0; m < shared[0].size(); ++m) {
      double sum = 0.0;
      for (double v : shared[0][m]) {
        EXPECT_GE(v, -1e-12);
        sum += v;
      }
      EXPECT_NEAR(sum, 1.0, 1e-9);
    }
  }
}

TEST(SharedEstimator, HashEventsSeparatesDistinctLists) {
  const std::vector<ErrorEvent> a{{3, Pauli::kX, Pauli::kI}};
  const std::vector<ErrorEvent> b{{3, Pauli::kY, Pauli::kI}};
  const std::vector<ErrorEvent> c{{4, Pauli::kX, Pauli::kI}};
  std::vector<ErrorEvent> a2 = a;
  EXPECT_EQ(hash_events(a), hash_events(a2));
  EXPECT_NE(hash_events(a), hash_events(b));
  EXPECT_NE(hash_events(a), hash_events(c));
  EXPECT_NE(hash_events(a), hash_events({}));
}

SweepConfig small_sweep_config(std::vector<double> rates) {
  SweepConfig config;
  config.base.op = Operation::kAdd;
  config.base.n = 3;
  config.depths = {2, kFullDepth};
  config.rates_percent = std::move(rates);
  config.instances = 4;
  config.run.shots = 256;
  config.run.error_trajectories = 8;
  config.run.batch_lanes = 4;
  config.seed = 0xABCDEFull;
  return config;
}

std::vector<ArithInstance> sweep_instances(const SweepConfig& config) {
  Pcg64 rng(config.seed, 0x1257);
  return generate_instances(config.instances, config.base.n, config.base.n,
                            config.orders, rng);
}

TEST(SharedSweep, ExpandedRatesPrependsNoiseFree) {
  SweepConfig config = small_sweep_config({0.5, 1.0});
  EXPECT_EQ(config.expanded_rates(), (std::vector<double>{0.0, 0.5, 1.0}));
  config.include_noise_free = false;
  EXPECT_EQ(config.expanded_rates(), (std::vector<double>{0.5, 1.0}));
}

TEST(SharedSweep, SingleRateSweepMatchesPerRateBitForBit) {
  // One positive rate: the shared path delegates per column, so the whole
  // sweep must reproduce the per-rate sweep exactly — success rates,
  // margins, and error bars.
  for (int lanes : {1, 4}) {
    SweepConfig config = small_sweep_config({1.0});
    config.run.batch_lanes = lanes;
    const std::vector<ArithInstance> instances = sweep_instances(config);
    config.run.shared_trajectories = true;
    const SweepResult shared = run_sweep(config, instances);
    config.run.shared_trajectories = false;
    const SweepResult per_rate = run_sweep(config, instances);
    ASSERT_EQ(shared.points.size(), per_rate.points.size());
    for (std::size_t i = 0; i < shared.points.size(); ++i) {
      EXPECT_EQ(shared.points[i].stats.successes,
                per_rate.points[i].stats.successes);
      EXPECT_EQ(shared.points[i].stats.sigma, per_rate.points[i].stats.sigma);
      EXPECT_EQ(shared.points[i].stats.lower_flips,
                per_rate.points[i].stats.lower_flips);
      EXPECT_EQ(shared.points[i].stats.upper_flips,
                per_rate.points[i].stats.upper_flips);
    }
    EXPECT_EQ(shared.shared_stats.fallback_columns, 0);
    EXPECT_GT(shared.shared_stats.rate_columns, 0);
    EXPECT_EQ(per_rate.shared_stats.rate_columns, 0);
  }
}

TEST(SharedSweep, MultiRateSweepStaysWithinErrorBars) {
  // Shared and per-rate sweeps are different unbiased estimates of the
  // same panel; with this circuit and budget the per-point success rates
  // must stay well inside the paper's error bars of each other.
  SweepConfig config = small_sweep_config({0.4, 0.6, 0.8, 1.0});
  config.run.shots = 1024;
  config.run.error_trajectories = 12;
  const std::vector<ArithInstance> instances = sweep_instances(config);
  config.run.shared_trajectories = true;
  const SweepResult shared = run_sweep(config, instances);
  config.run.shared_trajectories = false;
  const SweepResult per_rate = run_sweep(config, instances);
  ASSERT_EQ(shared.points.size(), per_rate.points.size());
  for (std::size_t i = 0; i < shared.points.size(); ++i) {
    EXPECT_NEAR(shared.points[i].stats.success_rate,
                per_rate.points[i].stats.success_rate, 0.51)
        << "depth " << shared.points[i].depth << " rate "
        << shared.points[i].rate_percent;
    // Noise-free columns bypass estimation entirely: bitwise equal.
    if (shared.points[i].rate_percent == 0.0)
      EXPECT_EQ(shared.points[i].stats.success_rate,
                per_rate.points[i].stats.success_rate);
  }
  // The whole panel shared one proposal set per (group, depth): replays
  // are bounded by proposal count plus fallbacks, far under the per-rate
  // total of rates x instances x depths x T.
  const SharedEstimateStats& s = shared.shared_stats;
  EXPECT_GT(s.proposal_trajectories, 0);
  EXPECT_LE(s.unique_trajectories, s.proposal_trajectories);
  EXPECT_EQ(s.rate_columns,
            static_cast<long>(4 * config.depths.size() * instances.size()));
}

}  // namespace
}  // namespace qfab
