// QFA correctness: exhaustive classical-input checks (modular and
// non-modular), subtraction, constant addition, controlled addition,
// superposition linearity, and the approximate-addition knobs.
#include <gtest/gtest.h>

#include <cmath>

#include "arith/qint.h"
#include "qfb/adder.h"
#include "sim/statevector.h"

namespace qfab {
namespace {

/// Run the adder on computational-basis inputs and return the measured
/// (deterministic) y value. Checks x is preserved.
u64 run_classical_add(int n, int m, u64 x, u64 y, const AdderOptions& opt) {
  const QuantumCircuit qc = make_qfa(n, m, opt);
  StateVector sv(n + m);
  sv.set_basis_state(x | (y << n));
  sv.apply_circuit(qc);
  // The state must be a single basis state again.
  u64 best = 0;
  double best_p = -1.0;
  const auto probs = sv.probabilities();
  for (u64 i = 0; i < probs.size(); ++i)
    if (probs[i] > best_p) {
      best_p = probs[i];
      best = i;
    }
  EXPECT_NEAR(best_p, 1.0, 1e-9);
  EXPECT_EQ(best & (pow2(n) - 1), x) << "x register was modified";
  return best >> n;
}

TEST(Adder, ExhaustiveModular3Bit) {
  const u64 N = 8;
  for (u64 x = 0; x < N; ++x)
    for (u64 y = 0; y < N; ++y)
      EXPECT_EQ(run_classical_add(3, 3, x, y, {}), (x + y) % N)
          << x << "+" << y;
}

TEST(Adder, ExhaustiveNonModular3Bit) {
  // m = n+1: sums up to 2^{n+1}-2 fit exactly (paper's Fig. 2 layout).
  for (u64 x = 0; x < 8; ++x)
    for (u64 y = 0; y < 8; ++y)
      EXPECT_EQ(run_classical_add(3, 4, x, y, {}), x + y);
}

TEST(Adder, ExhaustiveModular4Bit) {
  for (u64 x = 0; x < 16; ++x)
    for (u64 y = 0; y < 16; ++y)
      EXPECT_EQ(run_classical_add(4, 4, x, y, {}), (x + y) % 16);
}

TEST(Adder, SubtractionExhaustive3Bit) {
  AdderOptions opt;
  opt.subtract = true;
  for (u64 x = 0; x < 8; ++x)
    for (u64 y = 0; y < 8; ++y)
      EXPECT_EQ(run_classical_add(3, 3, x, y, opt), (y + 8 - x) % 8);
}

TEST(Adder, SignedSemanticsViaTwosComplement) {
  // (-2) + 3 = 1 on 4 bits: x = encode(-2) = 14, y = 3 -> 17 mod 16 = 1.
  const u64 x = QInt::encode(-2, 4);
  EXPECT_EQ(run_classical_add(4, 4, x, 3, {}), 1u);
  // (-3) + (-4) = -7 -> encode(-7, 4) = 9.
  EXPECT_EQ(run_classical_add(4, 4, QInt::encode(-3, 4), QInt::encode(-4, 4),
                              {}),
            QInt::encode(-7, 4));
}

TEST(Adder, AqftDepthStillExactOnBasisStates) {
  // The AQFT changes the transform basis but, for single-integer inputs at
  // d >= 1... not exactly: truncation breaks exactness in general. But the
  // roundtrip QFT_d then QFT_d^{-1} with the same d plus exact add keeps
  // classical sums *approximately*; here we only check the full-depth
  // equivalence of explicit and sentinel depth.
  AdderOptions full_sentinel;
  AdderOptions full_explicit;
  full_explicit.qft_depth = 2;  // m=3 -> full depth = 2
  for (u64 x = 0; x < 8; ++x)
    for (u64 y = 0; y < 8; ++y)
      EXPECT_EQ(run_classical_add(3, 3, x, y, full_explicit),
                run_classical_add(3, 3, x, y, full_sentinel));
}

TEST(Adder, ConstantAdditionExhaustive) {
  for (std::int64_t c : {0L, 1L, 5L, 15L, -1L, -7L}) {
    QuantumCircuit qc(0);
    const QubitRange y = qc.add_register("y", 4);
    append_qfa_const(qc, range_qubits(y), c);
    for (u64 yv = 0; yv < 16; ++yv) {
      StateVector sv(4);
      sv.set_basis_state(yv);
      sv.apply_circuit(qc);
      const u64 expected = (yv + QInt::encode(c, 4)) % 16;
      EXPECT_NEAR(std::norm(sv.amplitude(expected)), 1.0, 1e-9)
          << "y=" << yv << " c=" << c;
    }
  }
}

TEST(Adder, ConstantSubtraction) {
  QuantumCircuit qc(0);
  const QubitRange y = qc.add_register("y", 3);
  append_qfa_const(qc, range_qubits(y), 3, {kFullDepth, 0, 0, true});
  StateVector sv(3);
  sv.set_basis_state(1);
  sv.apply_circuit(qc);
  EXPECT_NEAR(std::norm(sv.amplitude((1 + 8 - 3) % 8)), 1.0, 1e-9);
}

TEST(Adder, ControlledAdditionViaControlledOn) {
  // Build QFA on (x,y) plus a control qubit; check both control values.
  const int n = 3;
  QuantumCircuit sub(2 * n + 1);
  std::vector<int> xq = {0, 1, 2}, yq = {3, 4, 5};
  append_qfa(sub, xq, yq);
  const QuantumCircuit cqfa = sub.controlled_on(6);

  for (u64 control : {u64{0}, u64{1}}) {
    StateVector sv(2 * n + 1);
    const u64 x = 5, y = 6;
    sv.set_basis_state(x | (y << n) | (control << (2 * n)));
    sv.apply_circuit(cqfa);
    const u64 expected_y = control ? (x + y) % 8 : y;
    const u64 expected = x | (expected_y << n) | (control << (2 * n));
    EXPECT_NEAR(std::norm(sv.amplitude(expected)), 1.0, 1e-9)
        << "control=" << control;
  }
}

TEST(Adder, SuperpositionProducesAllSums) {
  // x = (|1> + |2>)/√2, y = (|3> + |4>)/√2 on 3-bit modular adder:
  // final y ⊗ x state holds the four sums with weight 1/4 each,
  // entangled with the x register.
  const int n = 3;
  const QuantumCircuit qc = make_qfa(n, n, {});
  const QInt x = QInt::uniform(n, {1, 2});
  const QInt y = QInt::uniform(n, {3, 4});
  StateVector sv = prepare_product_state(
      2 * n, {{QubitRange{0, n}, x}, {QubitRange{n, n}, y}});
  sv.apply_circuit(qc);
  const auto joint = sv.probabilities();
  // Probability of (x=xi, y=xi+yi) should be 1/4 for each pair.
  for (u64 xi : {1, 2})
    for (u64 yi : {3, 4}) {
      const u64 idx = xi | (((xi + yi) % 8) << n);
      EXPECT_NEAR(joint[idx], 0.25, 1e-9);
    }
  // Marginal over y: sums 4,5,6 with weights 1/4, 1/2, 1/4.
  const auto marg = sv.marginal_probabilities({3, 4, 5});
  EXPECT_NEAR(marg[4], 0.25, 1e-9);
  EXPECT_NEAR(marg[5], 0.50, 1e-9);
  EXPECT_NEAR(marg[6], 0.25, 1e-9);
}

TEST(Adder, PhaseAddWithoutQftIsPhaseOnly) {
  // append_phase_add alone must not change measurement probabilities in
  // the computational basis (all rotations are diagonal).
  QuantumCircuit qc(6);
  append_phase_add(qc, {0, 1, 2}, {3, 4, 5});
  StateVector sv(6);
  sv.set_basis_state(0b101011);
  sv.apply_circuit(qc);
  EXPECT_NEAR(std::norm(sv.amplitude(0b101011)), 1.0, 1e-12);
}

TEST(Adder, RotationCountFormulas) {
  // Modular n=m=8: 36 rotations; the paper's capped variant drops R_8.
  EXPECT_EQ(adder_rotation_count(8, 8, {}), 36u);
  AdderOptions capped;
  capped.max_rotation_order = 7;
  EXPECT_EQ(adder_rotation_count(8, 8, capped), 35u);
  // Non-modular Fig. 2 layout (n=8 -> m=9): 44 rotations.
  EXPECT_EQ(adder_rotation_count(8, 9, {}), 44u);
  // Approximate addition at depth d keeps R_l with l-1 <= d.
  AdderOptions approx;
  approx.add_depth = 1;
  // l in {1,2} only: q-j+1 <= 2 -> for each q, at most 2 of its rotations.
  EXPECT_EQ(adder_rotation_count(8, 8, approx), 15u);  // 1 + 2*7
}

TEST(Adder, CircuitMatchesRotationCount) {
  for (int cap : {0, 7}) {
    AdderOptions opt;
    opt.max_rotation_order = cap;
    QuantumCircuit qc(16);
    std::vector<int> xq, yq;
    for (int i = 0; i < 8; ++i) xq.push_back(i);
    for (int i = 8; i < 16; ++i) yq.push_back(i);
    append_phase_add(qc, xq, yq, opt);
    EXPECT_EQ(qc.gates().size(), adder_rotation_count(8, 8, opt));
  }
}

TEST(Adder, MaxRotationCapPreservesClassicalSums) {
  // Dropping R_n (angle 2π/2^n) perturbs amplitudes negligibly for n=4:
  // classical sums still decode exactly as the argmax outcome.
  AdderOptions capped;
  capped.max_rotation_order = 3;
  for (u64 x = 0; x < 16; ++x)
    for (u64 y = 0; y < 16; ++y) {
      const QuantumCircuit qc = make_qfa(4, 4, capped);
      StateVector sv(8);
      sv.set_basis_state(x | (y << 4));
      sv.apply_circuit(qc);
      const auto marg = sv.marginal_probabilities({4, 5, 6, 7});
      u64 best = 0;
      for (u64 i = 1; i < 16; ++i)
        if (marg[i] > marg[best]) best = i;
      EXPECT_EQ(best, (x + y) % 16);
    }
}

TEST(Adder, InputValidation) {
  QuantumCircuit qc(4);
  EXPECT_THROW(append_phase_add(qc, {0, 1, 2}, {3}), CheckError);  // |y|<|x|
  EXPECT_THROW(make_qfa(0, 1, {}), CheckError);
}

}  // namespace
}  // namespace qfab
