#include <gtest/gtest.h>
#include <unistd.h>

#include <filesystem>
#include <string>
#include <vector>

#include "circuit/qasm.h"
#include "sim/batch.h"
#include "sim/invariants.h"
#include "sim/statevector.h"
#include "verify/compare.h"
#include "verify/engines.h"
#include "verify/generator.h"
#include "verify/repro.h"
#include "verify/shrink.h"
#include "verify/verify.h"

namespace qfab::verify {
namespace {

/// Restores the batched-kernel fault flag even when an assertion fails.
struct FaultInjectionGuard {
  explicit FaultInjectionGuard(bool on) { detail::set_batch_fault_injection(on); }
  ~FaultInjectionGuard() { detail::set_batch_fault_injection(false); }
};

// ---------- invariants ----------

TEST(Invariants, SimplexAcceptsValidDistributions) {
  EXPECT_EQ(check_probability_simplex({0.5, 0.5}, 1e-12), "");
  EXPECT_EQ(check_probability_simplex({1.0, 0.0, 0.0}, 1e-12), "");
  // Entries a hair outside [0, 1] within tolerance are rounding, not bugs.
  EXPECT_EQ(check_probability_simplex({1.0 + 1e-13, -1e-13}, 1e-12), "");
}

TEST(Invariants, SimplexRejectsViolations) {
  EXPECT_NE(check_probability_simplex({0.5, 0.6}, 1e-12), "");     // sum > 1
  EXPECT_NE(check_probability_simplex({1.2, -0.2}, 1e-12), "");    // range
  EXPECT_NE(check_probability_simplex({0.5, 0.4}, 1e-12), "");     // sum < 1
  const double nan = std::nan("");
  EXPECT_NE(check_probability_simplex({nan, 1.0}, 1e-12), "");
}

TEST(Invariants, NormChecks) {
  StateVector sv(3);  // |000>, exactly normalized
  EXPECT_EQ(check_norm(sv, 1e-12), "");
  BatchedStateVector bsv(2, 3);
  EXPECT_EQ(check_lane_norms(bsv, 1e-12), "");
}

// ---------- generator ----------

TEST(Generator, DeterministicPerSeedAndIndex) {
  const GeneratorOptions opts;
  for (std::size_t i = 0; i < 16; ++i) {
    const VerifyCase a = generate_case(7, i, opts);
    const VerifyCase b = generate_case(7, i, opts);
    EXPECT_EQ(to_qasm(a.circuit), to_qasm(b.circuit));
    EXPECT_EQ(a.lanes, b.lanes);
    EXPECT_EQ(a.split_gate, b.split_gate);
    EXPECT_DOUBLE_EQ(a.depolarizing_p, b.depolarizing_p);
  }
  // Different indices give different circuits (overwhelmingly likely).
  EXPECT_NE(to_qasm(generate_case(7, 0, opts).circuit),
            to_qasm(generate_case(7, 1, opts).circuit));
}

TEST(Generator, RespectsBounds) {
  GeneratorOptions opts;
  opts.min_qubits = 2;
  opts.max_qubits = 4;
  opts.min_gates = 3;
  opts.max_gates = 9;
  for (std::size_t i = 0; i < 64; ++i) {
    const VerifyCase c = generate_case(3, i, opts);
    EXPECT_GE(c.circuit.num_qubits(), 2);
    EXPECT_LE(c.circuit.num_qubits(), 4);
    EXPECT_GE(c.circuit.gates().size(), 3u);
    EXPECT_LE(c.circuit.gates().size(), 9u);
    EXPECT_GE(c.lanes, 1);
    EXPECT_LE(c.lanes, BatchedStateVector::kMaxLanes);
    EXPECT_LE(c.split_gate, c.circuit.gates().size());
    EXPECT_GT(c.depolarizing_p, 0.0);
    for (const Gate& g : c.circuit.gates())
      EXPECT_LE(gate_arity(g.kind), c.circuit.num_qubits());
  }
}

TEST(Generator, TwoQubitCasesTerminate) {
  // Regression: q[2] (a third distinct qubit) was drawn unconditionally,
  // which cannot terminate at n == 2.
  GeneratorOptions opts;
  opts.min_qubits = 2;
  opts.max_qubits = 2;
  for (std::size_t i = 0; i < 32; ++i) {
    const VerifyCase c = generate_case(11, i, opts);
    EXPECT_EQ(c.circuit.num_qubits(), 2);
    for (const Gate& g : c.circuit.gates()) EXPECT_LE(gate_arity(g.kind), 2);
  }
}

// ---------- engine matrix ----------

TEST(Engines, SmokeCasesAgree) {
  const GeneratorOptions gopts;
  EngineOptions eopts;
  eopts.error_trajectories = 48;  // keep the suite fast; the CLI uses 96
  for (std::size_t i = 0; i < 12; ++i) {
    const VerifyCase c = generate_case(1, i, gopts);
    EXPECT_EQ(check_case(c, eopts), "")
        << "case " << i << ": " << to_qasm(c.circuit);
  }
}

TEST(Engines, CompareFlagsDisagreement) {
  EngineResult a, b;
  a.name = "one";
  a.probabilities = {0.5, 0.5};
  a.marginal = {1.0};
  b = a;
  b.name = "two";
  EXPECT_EQ(compare_engine_results({a, b}, 1e-10), "");
  b.probabilities = {0.6, 0.4};
  const std::string failure = compare_engine_results({a, b}, 1e-10);
  EXPECT_NE(failure, "");
  EXPECT_NE(failure.find("one"), std::string::npos);
  EXPECT_NE(failure.find("two"), std::string::npos);
  a.violation = "norm drifted";
  EXPECT_NE(compare_engine_results({a}, 1e-10).find("norm drifted"),
            std::string::npos);
}

// ---------- fault injection end-to-end ----------

TEST(Engines, InjectedKernelBugIsCaught) {
  const GeneratorOptions gopts;
  EngineOptions eopts;
  eopts.check_noisy = false;
  const VerifyCase c = generate_case(1, 0, gopts);
  ASSERT_EQ(check_case(c, eopts), "");
  FaultInjectionGuard guard(true);
  EXPECT_NE(check_case(c, eopts), "");
}

TEST(Shrink, MinimizesInjectedFailure) {
  const GeneratorOptions gopts;
  EngineOptions eopts;
  eopts.check_noisy = false;
  const VerifyCase c = generate_case(1, 0, gopts);
  FaultInjectionGuard guard(true);
  const auto check = [&eopts](const VerifyCase& cand) {
    return check_case(cand, eopts);
  };
  ASSERT_NE(check(c), "");
  const VerifyCase minimized = shrink_case(c, check);
  EXPECT_NE(check(minimized), "");  // still failing after minimization
  EXPECT_LE(minimized.circuit.gates().size(), c.circuit.gates().size());
  EXPECT_LE(minimized.circuit.num_qubits(), c.circuit.num_qubits());
  // The sign flip reproduces on a handful of 1q gates; minimization must
  // get well under the original random circuit.
  EXPECT_LE(minimized.circuit.gates().size(), 8u);
}

TEST(Repro, RoundTripsCaseAndMetadata) {
  // Per-process dir: ctest runs this binary twice concurrently (native and
  // QFAB_SIMD=scalar variants), which must not clobber each other's files.
  const std::string dir =
      "test_verify_repro_tmp_" + std::to_string(::getpid());
  const VerifyCase c = generate_case(5, 3, GeneratorOptions{});
  const std::string path = write_repro(dir, c, "engine X vs Y: max |dp|\n= 1");
  std::string failure;
  const VerifyCase back = load_repro(path, &failure);
  EXPECT_EQ(to_qasm(back.circuit), to_qasm(c.circuit));
  EXPECT_EQ(back.root_seed, c.root_seed);
  EXPECT_EQ(back.index, c.index);
  EXPECT_EQ(back.lanes, c.lanes);
  EXPECT_EQ(back.split_gate, c.split_gate);
  EXPECT_DOUBLE_EQ(back.depolarizing_p, c.depolarizing_p);
  // Newlines in the failure summary are flattened, not lost.
  EXPECT_EQ(failure, "engine X vs Y: max |dp| = 1");
  std::filesystem::remove_all(dir);
}

TEST(Verify, DriverReportsInjectedFailuresWithRepro) {
  // Per-process dir: see Repro.RoundTripsCaseAndMetadata.
  const std::string dir =
      "test_verify_driver_tmp_" + std::to_string(::getpid());
  VerifyOptions opts;
  opts.seed = 1;
  opts.cases = 8;
  opts.engines.check_noisy = false;
  opts.max_failures = 2;
  opts.failure_dir = dir;

  const VerifyReport clean = run_verification(opts);
  EXPECT_TRUE(clean.ok());
  EXPECT_EQ(clean.cases_run, 8u);

  {
    FaultInjectionGuard guard(true);
    const VerifyReport broken = run_verification(opts);
    EXPECT_FALSE(broken.ok());
    // max_failures bounds *scheduling* of new cases, not in-flight ones, so
    // the exact count depends on pool timing; at least one and at most
    // `cases` failures are recorded.
    ASSERT_GE(broken.failures.size(), 1u);
    EXPECT_LE(broken.failures.size(), opts.cases);
    for (const CaseFailure& f : broken.failures) {
      EXPECT_NE(f.summary, "");
      ASSERT_NE(f.repro_path, "");
      // Each dumped repro must itself fail under the injected bug and pass
      // once the "bug" is gone — the workflow a real kernel fix follows.
      EXPECT_NE(run_repro(f.repro_path, opts.engines), "");
    }
    detail::set_batch_fault_injection(false);
    EXPECT_EQ(run_repro(broken.failures.front().repro_path, opts.engines), "");
  }
  std::filesystem::remove_all(dir);
}

}  // namespace
}  // namespace qfab::verify
