// Table I reproduction (transpiled basis-gate counts of the experiment
// circuits). The abstract-rotation accounting matches the paper exactly;
// the transpiled 1q/2q totals are pinned here and compared against the
// paper's numbers in bench/table1_gate_counts (see EXPERIMENTS.md for the
// residual analysis).
#include <gtest/gtest.h>

#include <cmath>

#include "exp/experiment.h"
#include "exp/sweep.h"
#include "qfb/qft.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

struct CountRow {
  Operation op;
  int n;
  int depth;
  std::size_t paper_1q;
  std::size_t paper_2q;
};

GateCounts transpiled_counts(Operation op, int n, int depth) {
  CircuitSpec spec;
  spec.op = op;
  spec.n = n;
  spec.depth = depth;
  return build_transpiled_circuit(spec).counts();
}

TEST(AbstractCounts, QfaRotationTotalsMatchPaper) {
  // Paper Table I 2q counts / 2 = CP totals: 49, 61, 71, 79, 91 for
  // d = 1, 2, 3, 4, 7(full) — QFT(d) twice plus the capped 35-rotation add.
  const std::size_t add = 35;  // adder_rotation_count(8, 8, cap 7)
  EXPECT_EQ(2 * qft_rotation_count(8, 1) + add, 49u);
  EXPECT_EQ(2 * qft_rotation_count(8, 2) + add, 61u);
  EXPECT_EQ(2 * qft_rotation_count(8, 3) + add, 71u);
  EXPECT_EQ(2 * qft_rotation_count(8, 4) + add, 79u);
  EXPECT_EQ(2 * qft_rotation_count(8, kFullDepth) + add, 91u);
}

TEST(AbstractCounts, QfmCcpTotalsMatchPaper) {
  // Paper QFM rows: (2q - 40 ch-CX) / 8 = CCP totals 88, 112, 136 for
  // d = 1, 2, full — 8 window cQFTs (5 qubits) plus 4 × 14-rotation cadds.
  const std::size_t cadd_total = 4 * 14;
  EXPECT_EQ(8 * qft_rotation_count(5, 1) + cadd_total, 88u);
  EXPECT_EQ(8 * qft_rotation_count(5, 2) + cadd_total, 112u);
  EXPECT_EQ(8 * qft_rotation_count(5, kFullDepth) + cadd_total, 136u);
  // The paper labels full as d=3 (n-1 for 4-bit operands) but the counts
  // correspond to the full 5-qubit window cQFT (d=4); our d=3 row is the
  // genuinely approximated one the paper skipped:
  EXPECT_EQ(8 * qft_rotation_count(5, 3) + cadd_total, 128u);
}

class TranspiledCounts : public ::testing::TestWithParam<CountRow> {};

TEST_P(TranspiledCounts, TwoQubitCountsMatchPaperExactly) {
  const CountRow row = GetParam();
  const GateCounts counts = transpiled_counts(row.op, row.n, row.depth);
  EXPECT_EQ(counts.two_qubit, row.paper_2q);
  EXPECT_EQ(counts.three_qubit, 0u);
}

TEST_P(TranspiledCounts, OneQubitCountsAtFixedOffsetFromPaper) {
  // 1q totals depend on the transpiler's 1q-run resynthesis. Ours differs
  // from Qiskit 0.31's by a *constant* per-H/per-CH amount: +17 for every
  // QFA row, -60 for every QFM row — so all depth-to-depth deltas match
  // the paper exactly (see EXPERIMENTS.md).
  const CountRow row = GetParam();
  const GateCounts counts = transpiled_counts(row.op, row.n, row.depth);
  const long offset = row.op == Operation::kAdd ? 17 : -60;
  EXPECT_EQ(static_cast<long>(counts.one_qubit),
            static_cast<long>(row.paper_1q) + offset);
}

INSTANTIATE_TEST_SUITE_P(
    TableOne, TranspiledCounts,
    ::testing::Values(
        CountRow{Operation::kAdd, 8, 1, 163, 98},
        CountRow{Operation::kAdd, 8, 2, 199, 122},
        CountRow{Operation::kAdd, 8, 3, 229, 142},
        CountRow{Operation::kAdd, 8, 4, 253, 158},
        CountRow{Operation::kAdd, 8, kFullDepth, 289, 182},
        CountRow{Operation::kMultiply, 4, 1, 1032, 744},
        CountRow{Operation::kMultiply, 4, 2, 1248, 936},
        CountRow{Operation::kMultiply, 4, kFullDepth, 1464, 1128}),
    [](const ::testing::TestParamInfo<CountRow>& info) {
      return std::string(info.param.op == Operation::kAdd ? "qfa" : "qfm") +
             "_d" + depth_label(info.param.depth);
    });

TEST(TranspiledCounts, BasisAlphabetOnly) {
  for (Operation op : {Operation::kAdd, Operation::kMultiply}) {
    CircuitSpec spec;
    spec.op = op;
    spec.n = op == Operation::kAdd ? 8 : 4;
    const QuantumCircuit qc = build_transpiled_circuit(spec);
    for (const Gate& g : qc.gates()) {
      const bool basis = g.kind == GateKind::kId || g.kind == GateKind::kX ||
                         g.kind == GateKind::kSX || g.kind == GateKind::kRZ ||
                         g.kind == GateKind::kCX;
      ASSERT_TRUE(basis) << g.to_string();
    }
  }
}

TEST(TranspiledCounts, DepthSemanticFullEqualsExplicit) {
  EXPECT_EQ(transpiled_counts(Operation::kAdd, 8, 7).two_qubit,
            transpiled_counts(Operation::kAdd, 8, kFullDepth).two_qubit);
  EXPECT_EQ(transpiled_counts(Operation::kMultiply, 4, 4).two_qubit,
            transpiled_counts(Operation::kMultiply, 4, kFullDepth).two_qubit);
}

}  // namespace
}  // namespace qfab
