// Modular Fourier arithmetic (Beauregard construction): exhaustive
// correctness of the modular constant adder (plain / controlled /
// doubly-controlled), the modular multiply-accumulate, and in-place
// modular multiplication — including ancilla cleanliness, which is what
// makes the construction composable into modular exponentiation.
#include <gtest/gtest.h>

#include <cmath>

#include "qfb/modular.h"
#include "sim/statevector.h"

namespace qfab {
namespace {

/// Run `qc` on basis state `input` and return the unique outcome.
u64 run_basis(const QuantumCircuit& qc, u64 input) {
  StateVector sv(qc.num_qubits());
  sv.set_basis_state(input);
  sv.apply_circuit(qc);
  const auto probs = sv.probabilities();
  u64 best = 0;
  double best_p = -1.0;
  for (u64 i = 0; i < probs.size(); ++i)
    if (probs[i] > best_p) {
      best_p = probs[i];
      best = i;
    }
  EXPECT_NEAR(best_p, 1.0, 1e-7) << "state not classical";
  return best;
}

TEST(ModularHelpers, Inverse) {
  EXPECT_EQ(modular_inverse(1, 15), 1u);
  EXPECT_EQ(modular_inverse(7, 15), 13u);   // 7*13 = 91 = 6*15+1
  EXPECT_EQ(modular_inverse(2, 15), 8u);
  EXPECT_EQ(modular_inverse(4, 7), 2u);
  EXPECT_THROW(modular_inverse(3, 15), CheckError);  // gcd 3
  for (u64 N : {5, 7, 13}) {
    for (u64 a = 1; a < N; ++a)
      EXPECT_EQ(a * modular_inverse(a, N) % N, 1u);
  }
}

TEST(ModularHelpers, Pow) {
  EXPECT_EQ(modular_pow(7, 0, 15), 1u);
  EXPECT_EQ(modular_pow(7, 1, 15), 7u);
  EXPECT_EQ(modular_pow(7, 2, 15), 4u);
  EXPECT_EQ(modular_pow(7, 4, 15), 1u);  // order of 7 mod 15 is 4
  EXPECT_EQ(modular_pow(2, 10, 1000), 24u);
}

class ModularAddConst : public ::testing::TestWithParam<u64> {};

TEST_P(ModularAddConst, ExhaustiveThreeBitModulus) {
  const u64 N = GetParam();
  const int n = 3;  // y register n+1 = 4 qubits + 1 ancilla = 5 total
  for (u64 a = 0; a < N; ++a) {
    QuantumCircuit qc(n + 2);
    append_modular_add_const(qc, {0, 1, 2, 3}, 4, a, N);
    for (u64 y = 0; y < N; ++y) {
      const u64 out = run_basis(qc, y);
      EXPECT_EQ(out, (y + a) % N) << "y=" << y << " a=" << a << " N=" << N;
      // Sentinel and ancilla (bits 3, 4) must come back clean — checked
      // implicitly: out has no high bits.
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Moduli, ModularAddConst,
                         ::testing::Values(u64{3}, u64{5}, u64{6}, u64{7}));

TEST(ModularAdd, SingleControl) {
  const u64 N = 7, a = 5;
  QuantumCircuit qc(6);  // y {0..3}, anc 4, control 5
  append_modular_add_const(qc, {0, 1, 2, 3}, 4, a, N, {5});
  for (u64 y = 0; y < N; ++y) {
    EXPECT_EQ(run_basis(qc, y), y) << "control off must be identity";
    EXPECT_EQ(run_basis(qc, y | (u64{1} << 5)),
              ((y + a) % N) | (u64{1} << 5));
  }
}

TEST(ModularAdd, DoubleControl) {
  const u64 N = 5, a = 3;
  QuantumCircuit qc(7);  // y {0..3}, anc 4, controls 5, 6
  append_modular_add_const(qc, {0, 1, 2, 3}, 4, a, N, {5, 6});
  for (u64 y = 0; y < N; ++y) {
    for (u64 c = 0; c < 4; ++c) {
      const u64 in = y | (c << 5);
      const u64 expected_y = (c == 3) ? (y + a) % N : y;
      EXPECT_EQ(run_basis(qc, in), expected_y | (c << 5));
    }
  }
}

TEST(ModularAdd, ApproximateQftDepthStaysCorrect) {
  // The internal QFTs can be mildly approximated and still produce exact
  // classical results at this size (argmax remains the true sum).
  const u64 N = 7, a = 4;
  QuantumCircuit qc(5);
  append_modular_add_const(qc, {0, 1, 2, 3}, 4, a, N, {}, /*qft_depth=*/2);
  int correct = 0;
  for (u64 y = 0; y < N; ++y) {
    StateVector sv(5);
    sv.set_basis_state(y);
    sv.apply_circuit(qc);
    const auto probs = sv.probabilities();
    u64 best = 0;
    for (u64 i = 1; i < probs.size(); ++i)
      if (probs[i] > probs[best]) best = i;
    correct += (best == (y + a) % N);
  }
  EXPECT_GE(correct, 6);
}

TEST(ModularMac, AccumulatesProducts) {
  const u64 N = 7, a = 3;
  const int n = 3;
  // x {0..2}, z {3..6}, anc 7.
  QuantumCircuit qc(8);
  append_modular_mac_const(qc, {0, 1, 2}, {3, 4, 5, 6}, 7, a, N);
  for (u64 x = 0; x < pow2(n); ++x)
    for (u64 z = 0; z < N; ++z) {
      const u64 out = run_basis(qc, x | (z << n));
      EXPECT_EQ(out & 7u, x) << "x preserved";
      EXPECT_EQ(out >> n, (z + a * x) % N) << "x=" << x << " z=" << z;
    }
}

TEST(ModularMac, ControlledVersion) {
  const u64 N = 5, a = 2;
  QuantumCircuit qc(9);  // x {0,1,2}, z {3..6}, anc 7, control 8
  append_modular_mac_const(qc, {0, 1, 2}, {3, 4, 5, 6}, 7, a, N, 8);
  const u64 x = 3, z = 4;
  EXPECT_EQ(run_basis(qc, x | (z << 3)), x | (z << 3));
  const u64 on = u64{1} << 8;
  EXPECT_EQ(run_basis(qc, x | (z << 3) | on),
            x | (((z + a * x) % N) << 3) | on);
}

class ModularMul : public ::testing::TestWithParam<std::pair<u64, u64>> {};

TEST_P(ModularMul, InPlaceExhaustive) {
  const auto [a, N] = GetParam();
  const int n = 3;
  // x {0..2}, scratch {3..6}, anc 7.
  QuantumCircuit qc(8);
  append_modular_mul_const(qc, {0, 1, 2}, {3, 4, 5, 6}, 7, a, N);
  for (u64 x = 0; x < N; ++x) {
    const u64 out = run_basis(qc, x);
    EXPECT_EQ(out & 7u, (a * x) % N) << "x=" << x;
    EXPECT_EQ(out >> n, 0u) << "scratch/ancilla must be clean, x=" << x;
  }
}

INSTANTIATE_TEST_SUITE_P(Cases, ModularMul,
                         ::testing::Values(std::pair<u64, u64>{2, 7},
                                           std::pair<u64, u64>{3, 7},
                                           std::pair<u64, u64>{5, 6},
                                           std::pair<u64, u64>{4, 5}),
                         [](const auto& info) {
                           return "a" + std::to_string(info.param.first) +
                                  "_N" + std::to_string(info.param.second);
                         });

TEST(ModularMul, ControlledInPlace) {
  const u64 a = 4, N = 7;
  QuantumCircuit qc(9);  // x {0..2}, scratch {3..6}, anc 7, control 8
  append_modular_mul_const(qc, {0, 1, 2}, {3, 4, 5, 6}, 7, a, N, 8);
  for (u64 x = 0; x < N; ++x) {
    EXPECT_EQ(run_basis(qc, x), x) << "control off";
    const u64 on = u64{1} << 8;
    EXPECT_EQ(run_basis(qc, x | on), ((a * x) % N) | on) << "control on";
  }
}

TEST(ModularMul, PreservesSuperposition) {
  // |x> uniform over Z_5, multiply by 2 mod 5: permutation of the support.
  const u64 a = 2, N = 5;
  QuantumCircuit qc(8);
  append_modular_mul_const(qc, {0, 1, 2}, {3, 4, 5, 6}, 7, a, N);
  std::vector<cplx> amps(256, cplx{0.0, 0.0});
  for (u64 x = 0; x < N; ++x) amps[x] = 1.0 / std::sqrt(5.0);
  StateVector sv = StateVector::from_amplitudes(std::move(amps));
  sv.apply_circuit(qc);
  const auto probs = sv.probabilities();
  for (u64 x = 0; x < N; ++x)
    EXPECT_NEAR(probs[(a * x) % N], 0.2, 1e-8);
}

TEST(ModularMul, RejectsNonCoprime) {
  QuantumCircuit qc(8);
  EXPECT_THROW(
      append_modular_mul_const(qc, {0, 1, 2}, {3, 4, 5, 6}, 7, 3, 6),
      CheckError);
}

TEST(ModularAdd, InputValidation) {
  QuantumCircuit qc(6);
  // Modulus must fit in n bits (m-1).
  EXPECT_THROW(append_modular_add_const(qc, {0, 1, 2, 3}, 4, 1, 9),
               CheckError);
  EXPECT_THROW(append_modular_add_const(qc, {0, 1, 2, 3}, 4, 7, 7),
               CheckError);  // a must be < N
}

}  // namespace
}  // namespace qfab
