// Exact density-matrix backend, and the cross-validation that anchors the
// entire noise stack: the Pauli-trajectory estimator must converge to the
// exact channel marginal.
#include <gtest/gtest.h>

#include <cmath>

#include "noise/densitymatrix.h"
#include "noise/estimator.h"
#include "qfb/adder.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

QuantumCircuit bell_plus(int n) {
  QuantumCircuit qc(n);
  qc.h(0);
  for (int i = 1; i < n; ++i) qc.cx(i - 1, i);
  return qc;
}

double tv_distance(const std::vector<double>& a,
                   const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d / 2.0;
}

TEST(DensityMatrix, InitialStatePure) {
  DensityMatrix dm(3);
  EXPECT_NEAR(dm.trace(), 1.0, 1e-12);
  EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
  EXPECT_EQ(dm.at(0, 0), cplx(1.0, 0.0));
  EXPECT_EQ(dm.at(1, 1), cplx(0.0, 0.0));
}

TEST(DensityMatrix, FromStatevector) {
  StateVector sv(2);
  sv.apply_gate(make_gate1(GateKind::kH, 0));
  const DensityMatrix dm = DensityMatrix::from_statevector(sv);
  EXPECT_NEAR(dm.at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(dm.at(0, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(dm.purity(), 1.0, 1e-12);
}

TEST(DensityMatrix, UnitaryEvolutionMatchesStatevector) {
  Pcg64 rng(1);
  for (int rep = 0; rep < 5; ++rep) {
    QuantumCircuit qc(3);
    for (int i = 0; i < 25; ++i) {
      const int q = static_cast<int>(rng.uniform_int(3));
      const int r = static_cast<int>((q + 1 + rng.uniform_int(2)) % 3);
      switch (rng.uniform_int(5)) {
        case 0: qc.h(q); break;
        case 1: qc.rz(q, rng.uniform() * 6.0); break;
        case 2: qc.sx(q); break;
        case 3: qc.cx(q, r); break;
        default: qc.cp(q, r, rng.uniform() * 3.0); break;
      }
    }
    StateVector sv(3);
    sv.apply_circuit(qc);
    DensityMatrix dm(3);
    dm.apply_circuit(qc);
    EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
    EXPECT_NEAR(dm.purity(), 1.0, 1e-10);
    const auto ps = sv.probabilities();
    const auto pd = dm.probabilities();
    EXPECT_LT(tv_distance(ps, pd), 1e-10);
    EXPECT_NEAR(dm.fidelity(sv), 1.0, 1e-10);
  }
}

TEST(DensityMatrix, MarginalsMatchStatevector) {
  QuantumCircuit qc = bell_plus(4);
  StateVector sv(4);
  sv.apply_circuit(qc);
  DensityMatrix dm(4);
  dm.apply_circuit(qc);
  for (const std::vector<int>& subset :
       {std::vector<int>{0}, {1, 3}, {2, 0, 3}}) {
    EXPECT_LT(tv_distance(sv.marginal_probabilities(subset),
                          dm.marginal_probabilities(subset)),
              1e-12);
  }
}

TEST(DensityMatrix, FullDepolarizingMixesCompletely) {
  DensityMatrix dm(1);
  dm.apply_depolarizing1(0, 1.0);
  EXPECT_NEAR(dm.at(0, 0).real(), 0.5, 1e-12);
  EXPECT_NEAR(dm.at(1, 1).real(), 0.5, 1e-12);
  EXPECT_NEAR(std::abs(dm.at(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(dm.purity(), 0.5, 1e-12);
}

TEST(DensityMatrix, DepolarizingPreservesTraceReducesPurity) {
  DensityMatrix dm(3);
  dm.apply_circuit(bell_plus(3));
  const double p0 = dm.purity();
  dm.apply_depolarizing2(0, 2, 0.2);
  EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
  EXPECT_LT(dm.purity(), p0);
  dm.apply_depolarizing1(1, 0.3);
  EXPECT_NEAR(dm.trace(), 1.0, 1e-10);
}

TEST(DensityMatrix, PauliChannelDephasesOffDiagonals) {
  // Z channel with pz = 1/2 kills the |+><+| coherence entirely.
  DensityMatrix dm(1);
  dm.apply_gate(make_gate1(GateKind::kH, 0));
  dm.apply_pauli_channel(0, PauliProbs{0.0, 0.0, 0.5});
  EXPECT_NEAR(std::abs(dm.at(0, 1)), 0.0, 1e-12);
  EXPECT_NEAR(dm.at(0, 0).real(), 0.5, 1e-12);
}

TEST(DensityMatrix, ThermalChannelShrinksFidelity) {
  const QuantumCircuit qc = bell_plus(2);
  StateVector ideal(2);
  ideal.apply_circuit(qc);
  DensityMatrix dm(2);
  dm.apply_circuit(qc);
  dm.apply_pauli_channel(0, thermal_pauli_twirl(100.0, 60.0, 5.0));
  const double f = dm.fidelity(ideal);
  EXPECT_LT(f, 1.0);
  EXPECT_GT(f, 0.8);
}

// The anchor test: exact channel vs the stratified trajectory estimator
// and per-shot frequencies, on a real transpiled QFA circuit.
class ExactVsTrajectories
    : public ::testing::TestWithParam<std::pair<double, double>> {};

TEST_P(ExactVsTrajectories, EstimatorConvergesToExactChannel) {
  const auto [p1q, p2q] = GetParam();
  const QuantumCircuit qc = transpile_to_basis(make_qfa(2, 2, {}));
  const u64 x = 2, y = 3;

  NoiseModel noise;
  noise.p1q = p1q;
  noise.p2q = p2q;

  // Exact channel marginal.
  DensityMatrix dm(4);
  StateVector init(4);
  init.set_basis_state(x | (y << 2));
  DensityMatrix start = DensityMatrix::from_statevector(init);
  start.apply_noisy_circuit(qc, noise);
  const auto exact = start.marginal_probabilities({2, 3});

  // Stratified estimate with a generous trajectory budget.
  const CleanRun clean(qc, init, 16);
  const ErrorLocations locs(qc, noise);
  Pcg64 rng(31337);
  const auto est =
      estimate_channel_marginal(clean, locs, {2, 3}, {4000}, rng);
  EXPECT_LT(tv_distance(exact, est), 0.01)
      << "p1q=" << p1q << " p2q=" << p2q;

  // Per-shot empirical frequencies.
  Pcg64 rng2(271828);
  const auto counts = sample_counts_per_shot(clean, locs, {2, 3}, 60000,
                                             rng2);
  std::vector<double> freq(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    freq[i] = static_cast<double>(counts[i]) / 60000.0;
  EXPECT_LT(tv_distance(exact, freq), 0.01);
}

INSTANTIATE_TEST_SUITE_P(
    NoisePoints, ExactVsTrajectories,
    ::testing::Values(std::pair{0.01, 0.0}, std::pair{0.0, 0.02},
                      std::pair{0.005, 0.01}),
    [](const auto& info) { return "case" + std::to_string(info.index); });

TEST(DensityMatrix, ThermalNoisyCircuitMatchesTrajectoryAverage) {
  // Same cross-validation for the thermal PTA channel.
  const QuantumCircuit qc = transpile_to_basis(make_qfa(2, 2, {}));
  NoiseModel noise;
  noise.t1 = 200.0;
  noise.t2 = 120.0;
  noise.time_1q = 0.5;
  noise.time_2q = 2.0;

  StateVector init(4);
  init.set_basis_state(1 | (2 << 2));
  DensityMatrix dm = DensityMatrix::from_statevector(init);
  dm.apply_noisy_circuit(qc, noise);
  const auto exact = dm.marginal_probabilities({2, 3});

  const CleanRun clean(qc, init, 16);
  const ErrorLocations locs(qc, noise);
  Pcg64 rng(5);
  const auto est =
      estimate_channel_marginal(clean, locs, {2, 3}, {4000}, rng);
  EXPECT_LT(tv_distance(exact, est), 0.01);
}

TEST(DensityMatrix, GuardsAndValidation) {
  EXPECT_THROW(DensityMatrix(13), CheckError);
  DensityMatrix dm(2);
  EXPECT_THROW(dm.apply_depolarizing1(0, 1.5), CheckError);
  EXPECT_THROW(dm.apply_depolarizing2(1, 1, 0.1), CheckError);
  EXPECT_THROW(dm.at(4, 0), CheckError);
}

}  // namespace
}  // namespace qfab
