// QFT/AQFT semantics: the swapped circuit must equal the textbook DFT, the
// swapless (Draper) form its bit-reversed variant, and the AQFT must match
// the paper's truncated-binary-fraction product state (Eq. 4) exactly.
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "qfb/qft.h"
#include "sim/statevector.h"

namespace qfab {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

std::vector<cplx> run_on_basis(const QuantumCircuit& qc, u64 input) {
  StateVector sv(qc.num_qubits());
  sv.set_basis_state(input);
  sv.apply_circuit(qc);
  return sv.amplitudes();
}

double distance(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::norm(a[i] - b[i]);
  return std::sqrt(d);
}

TEST(Qft, DepthResolution) {
  EXPECT_EQ(resolve_qft_depth(kFullDepth, 8), 7);
  EXPECT_EQ(resolve_qft_depth(3, 8), 3);
  EXPECT_EQ(resolve_qft_depth(100, 8), 7);  // clamped
  EXPECT_EQ(resolve_qft_depth(0, 4), 0);
  EXPECT_THROW(resolve_qft_depth(-2, 4), CheckError);
}

TEST(Qft, RotationCountFormula) {
  // n=8: d=1 -> 7, d=2 -> 13, d=3 -> 18, d=4 -> 22, full -> 28.
  EXPECT_EQ(qft_rotation_count(8, 1), 7u);
  EXPECT_EQ(qft_rotation_count(8, 2), 13u);
  EXPECT_EQ(qft_rotation_count(8, 3), 18u);
  EXPECT_EQ(qft_rotation_count(8, 4), 22u);
  EXPECT_EQ(qft_rotation_count(8, kFullDepth), 28u);
  EXPECT_EQ(qft_rotation_count(1, kFullDepth), 0u);
}

TEST(Qft, RotationCountMatchesCircuit) {
  for (int n = 1; n <= 6; ++n)
    for (int d : {0, 1, 2, 3, kFullDepth}) {
      const QuantumCircuit qc = make_qft(n, d);
      EXPECT_EQ(qc.counts().by_name.count("cp")
                    ? qc.counts().by_name.at("cp")
                    : 0u,
                qft_rotation_count(n, d))
          << "n=" << n << " d=" << d;
      EXPECT_EQ(qc.counts().by_name.at("h"), static_cast<std::size_t>(n));
    }
}

class QftDft : public ::testing::TestWithParam<int> {};

TEST_P(QftDft, SwappedFormEqualsTextbookDft) {
  const int n = GetParam();
  const u64 N = pow2(n);
  const QuantumCircuit qc = make_qft(n, kFullDepth, /*with_swaps=*/true);
  for (u64 y = 0; y < N; ++y) {
    const auto amps = run_on_basis(qc, y);
    for (u64 k = 0; k < N; ++k) {
      const double phase = kTwoPi * static_cast<double>(y * k % N) /
                           static_cast<double>(N);
      const cplx expected =
          cplx{std::cos(phase), std::sin(phase)} / std::sqrt(double(N));
      ASSERT_NEAR(std::abs(amps[k] - expected), 0.0, 1e-9)
          << "y=" << y << " k=" << k;
    }
  }
}

TEST_P(QftDft, SwaplessFormIsBitReversedDft) {
  const int n = GetParam();
  const u64 N = pow2(n);
  const QuantumCircuit qc = make_qft(n);
  for (u64 y = 0; y < N; ++y) {
    const auto amps = run_on_basis(qc, y);
    for (u64 k = 0; k < N; ++k) {
      const u64 rk = reverse_bits(k, n);
      const double phase = kTwoPi * static_cast<double>(y * rk % N) /
                           static_cast<double>(N);
      const cplx expected =
          cplx{std::cos(phase), std::sin(phase)} / std::sqrt(double(N));
      ASSERT_NEAR(std::abs(amps[k] - expected), 0.0, 1e-9);
    }
  }
}

TEST_P(QftDft, InverseUndoesForward) {
  const int n = GetParam();
  QuantumCircuit qc(n);
  std::vector<int> qubits(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) qubits[static_cast<std::size_t>(i)] = i;
  append_qft(qc, qubits);
  append_iqft(qc, qubits);
  for (u64 y = 0; y < pow2(n); ++y) {
    const auto amps = run_on_basis(qc, y);
    EXPECT_NEAR(std::abs(amps[y]), 1.0, 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, QftDft, ::testing::Values(1, 2, 3, 4, 5));

// The AQFT product form: qubit q carries phase sum_{j=max(1,q-d)}^{q}
// y_j / 2^{q-j+1} (at most d controlled terms + the Hadamard self-term).
class AqftProduct : public ::testing::TestWithParam<std::pair<int, int>> {};

TEST_P(AqftProduct, MatchesTruncatedBinaryFraction) {
  const auto [n, d] = GetParam();
  const QuantumCircuit qc = make_qft(n, d);
  const u64 N = pow2(n);
  for (u64 y = 0; y < N; ++y) {
    // Expected product state amplitudes.
    std::vector<cplx> expected(N);
    for (u64 k = 0; k < N; ++k) {
      double phase = 0.0;
      for (int q = 1; q <= n; ++q) {
        if (!get_bit(k, q - 1)) continue;
        const int j_min = std::max(1, q - d);
        for (int j = j_min; j <= q; ++j)
          if (get_bit(y, j - 1))
            phase += 1.0 / std::ldexp(1.0, q - j + 1);
      }
      expected[k] = cplx{std::cos(kTwoPi * phase), std::sin(kTwoPi * phase)} /
                    std::sqrt(double(N));
    }
    EXPECT_LT(distance(run_on_basis(qc, y), expected), 1e-9)
        << "n=" << n << " d=" << d << " y=" << y;
  }
}

INSTANTIATE_TEST_SUITE_P(
    DepthGrid, AqftProduct,
    ::testing::Values(std::pair{3, 0}, std::pair{3, 1}, std::pair{3, 2},
                      std::pair{4, 1}, std::pair{4, 2}, std::pair{4, 3},
                      std::pair{5, 1}, std::pair{5, 3}, std::pair{5, 4}));

TEST(Qft, FullDepthEqualsLargeDepth) {
  // Depth >= n-1 is the full transform.
  const QuantumCircuit a = make_qft(4, kFullDepth);
  const QuantumCircuit b = make_qft(4, 3);
  EXPECT_EQ(a.gates().size(), b.gates().size());
}

TEST(Qft, AppendOnSubsetOfQubits) {
  // QFT over a non-contiguous subset leaves other qubits alone.
  QuantumCircuit qc(4);
  append_qft(qc, {1, 3});
  StateVector sv(4);
  sv.set_basis_state(0b0101);  // q0=1, q2=1 untouched
  sv.apply_circuit(qc);
  const auto m = sv.marginal_probabilities({0, 2});
  EXPECT_NEAR(m[0b11], 1.0, 1e-12);
}

}  // namespace
}  // namespace qfab
