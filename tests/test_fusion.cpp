// FusedPlan validation: fused execution must be bit-compatible (<= 1e-12)
// with the per-gate reference path on random circuits over every supported
// gate kind, including when split at arbitrary gate indices — the contract
// the trajectory noise-injection machinery relies on.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <thread>

#include "common/rng.h"
#include "exp/experiment.h"
#include "sim/fusion.h"

namespace qfab {
namespace {

constexpr double kTol = 1e-12;

std::vector<cplx> random_state(int n, Pcg64& rng) {
  std::vector<cplx> amps(pow2(n));
  double norm = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    norm += std::norm(a);
  }
  const double s = 1.0 / std::sqrt(norm);
  for (cplx& a : amps) a *= s;
  return amps;
}

double state_distance(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::norm(a[i] - b[i]);
  return std::sqrt(d);
}

/// A random circuit drawing from every supported gate kind.
QuantumCircuit random_circuit(int n, int gates, Pcg64& rng) {
  static const GateKind kKinds[] = {
      GateKind::kId, GateKind::kX,    GateKind::kY,  GateKind::kZ,
      GateKind::kH,  GateKind::kSX,   GateKind::kSXdg, GateKind::kRZ,
      GateKind::kRY, GateKind::kRX,   GateKind::kP,  GateKind::kU,
      GateKind::kCX, GateKind::kCZ,   GateKind::kCP, GateKind::kCH,
      GateKind::kSWAP, GateKind::kCCP, GateKind::kCCX};
  QuantumCircuit qc(n);
  for (int i = 0; i < gates; ++i) {
    const GateKind kind = kKinds[rng.uniform_int(std::size(kKinds))];
    const int arity = gate_arity(kind);
    int q[3];
    q[0] = static_cast<int>(rng.uniform_int(n));
    do q[1] = static_cast<int>(rng.uniform_int(n));
    while (q[1] == q[0]);
    do q[2] = static_cast<int>(rng.uniform_int(n));
    while (q[2] == q[0] || q[2] == q[1]);
    double p[3];
    for (double& v : p) v = (rng.uniform() - 0.5) * 2.0 * M_PI;
    if (arity == 1) {
      qc.append(make_gate1(kind, q[0], p[0], p[1], p[2]));
    } else if (arity == 2) {
      qc.append(make_gate2(kind, q[0], q[1], p[0]));
    } else {
      qc.append(make_gate3(kind, q[0], q[1], q[2], p[0]));
    }
  }
  return qc;
}

StateVector run_reference(const QuantumCircuit& qc,
                          const std::vector<cplx>& init) {
  StateVector sv = StateVector::from_amplitudes(init);
  sv.apply_circuit(qc);
  return sv;
}

TEST(FusedPlan, MatchesReferenceOnRandomCircuits) {
  Pcg64 rng(20260805, 1);
  for (int trial = 0; trial < 50; ++trial) {
    const int n = 3 + static_cast<int>(rng.uniform_int(3));  // 3..5 qubits
    const QuantumCircuit qc = random_circuit(n, 40, rng);
    const std::vector<cplx> init = random_state(n, rng);

    const StateVector ref = run_reference(qc, init);
    const FusedPlan plan(qc);
    StateVector sv = StateVector::from_amplitudes(init);
    plan.apply(sv);

    EXPECT_LT(state_distance(sv.amplitudes(), ref.amplitudes()), kTol)
        << "trial " << trial << " n=" << n;
  }
}

TEST(FusedPlan, MatchesReferenceWithSmallTiles) {
  // tile_bits below the qubit count exercises the multi-tile block path.
  Pcg64 rng(20260805, 2);
  FusionOptions options;
  options.tile_bits = 3;
  for (int trial = 0; trial < 20; ++trial) {
    const QuantumCircuit qc = random_circuit(6, 60, rng);
    const std::vector<cplx> init = random_state(6, rng);

    const StateVector ref = run_reference(qc, init);
    const FusedPlan plan(qc, options);
    StateVector sv = StateVector::from_amplitudes(init);
    plan.apply(sv);

    EXPECT_LT(state_distance(sv.amplitudes(), ref.amplitudes()), kTol)
        << "trial " << trial;
  }
}

TEST(FusedPlan, SplitAtEveryGateIndexWithPauliInjection) {
  // The trajectory-injection contract: apply_range(0, s), inject a Pauli,
  // apply_range(s, N) must match the per-gate path for every split s.
  Pcg64 rng(20260805, 3);
  for (int trial = 0; trial < 8; ++trial) {
    const int n = 4;
    const QuantumCircuit qc = random_circuit(n, 30, rng);
    const std::size_t total = qc.gates().size();
    const std::vector<cplx> init = random_state(n, rng);
    const FusedPlan plan(qc);

    for (std::size_t s = 0; s <= total; ++s) {
      const Pauli p = static_cast<Pauli>(1 + rng.uniform_int(3));
      const int q = static_cast<int>(rng.uniform_int(n));

      StateVector ref = StateVector::from_amplitudes(init);
      ref.apply_circuit_range(qc, 0, s);
      ref.apply_pauli(p, q);
      ref.apply_circuit_range(qc, s, total);

      StateVector sv = StateVector::from_amplitudes(init);
      plan.apply_range(sv, 0, s);
      sv.apply_pauli(p, q);
      plan.apply_range(sv, s, total);

      EXPECT_LT(state_distance(sv.amplitudes(), ref.amplitudes()), kTol)
          << "trial " << trial << " split " << s;
    }
  }
}

TEST(FusedPlan, DoubleSplitMatchesReference) {
  // Two injection sites -> three fused segments with two partial
  // boundaries, the shape run_trajectory produces for multi-event shots.
  Pcg64 rng(20260805, 4);
  const QuantumCircuit qc = random_circuit(5, 40, rng);
  const std::size_t total = qc.gates().size();
  const std::vector<cplx> init = random_state(5, rng);
  const FusedPlan plan(qc);

  for (int trial = 0; trial < 40; ++trial) {
    std::size_t s1 = rng.uniform_int(total + 1);
    std::size_t s2 = rng.uniform_int(total + 1);
    if (s1 > s2) std::swap(s1, s2);

    StateVector ref = StateVector::from_amplitudes(init);
    ref.apply_circuit_range(qc, 0, s1);
    ref.apply_pauli(Pauli::kX, 0);
    ref.apply_circuit_range(qc, s1, s2);
    ref.apply_pauli(Pauli::kY, 1);
    ref.apply_circuit_range(qc, s2, total);

    StateVector sv = StateVector::from_amplitudes(init);
    plan.apply_range(sv, 0, s1);
    sv.apply_pauli(Pauli::kX, 0);
    plan.apply_range(sv, s1, s2);
    sv.apply_pauli(Pauli::kY, 1);
    plan.apply_range(sv, s2, total);

    EXPECT_LT(state_distance(sv.amplitudes(), ref.amplitudes()), kTol)
        << "splits " << s1 << "," << s2;
  }
}

TEST(FusedPlan, OpsPartitionGateRange) {
  Pcg64 rng(20260805, 5);
  const QuantumCircuit qc = random_circuit(5, 60, rng);
  const FusedPlan plan(qc);
  ASSERT_FALSE(plan.ops().empty());
  std::size_t expect = 0;
  for (std::size_t o = 0; o < plan.op_count(); ++o) {
    const FusedOp& op = plan.ops()[o];
    EXPECT_EQ(op.gate_begin, expect);
    EXPECT_LT(op.gate_begin, op.gate_end);
    expect = op.gate_end;
    for (std::size_t g = op.gate_begin; g < op.gate_end; ++g)
      EXPECT_EQ(plan.op_of_gate(g), o);
  }
  EXPECT_EQ(expect, plan.gate_count());
}

TEST(FusedPlan, FusionCollapsesTranspiledCircuits) {
  CircuitSpec spec;
  spec.op = Operation::kAdd;
  spec.n = 4;
  const QuantumCircuit qc = build_transpiled_circuit(spec);
  const FusedPlan plan(qc);
  // The transpiled Euler chains and CX·RZ·CX blocks must actually fuse.
  EXPECT_LT(plan.op_count(), qc.gates().size() / 2)
      << "gates=" << qc.gates().size() << " ops=" << plan.op_count();

  // And the fused replay still matches the reference path.
  StateVector ref(qc.num_qubits());
  ref.apply_circuit(qc);
  StateVector sv(qc.num_qubits());
  plan.apply(sv);
  EXPECT_LT(state_distance(sv.amplitudes(), ref.amplitudes()), kTol);
}

TEST(FusedPlan, DisabledPlanStillMatchesReference) {
  Pcg64 rng(20260805, 6);
  FusionOptions options;
  options.enable = false;
  const QuantumCircuit qc = random_circuit(4, 40, rng);
  const std::vector<cplx> init = random_state(4, rng);

  const FusedPlan plan(qc, options);
  EXPECT_EQ(plan.op_count(), qc.gates().size());
  StateVector sv = StateVector::from_amplitudes(init);
  plan.apply(sv);
  EXPECT_LT(state_distance(sv.amplitudes(),
                           run_reference(qc, init).amplitudes()),
            kTol);
}

TEST(FusedPlan, SubrangePlanConcurrentHammer) {
  // Many threads resolving overlapping subranges of one shared plan: the
  // read path is a shared_lock, so concurrent hits must not serialize or
  // race with misses inserting (run under the TSan preset to prove it).
  // Every returned reference must stay valid and describe its range.
  Pcg64 rng(20260805, 7);
  const QuantumCircuit qc = random_circuit(5, 60, rng);
  const FusedPlan plan(qc);
  const std::size_t total = qc.gates().size();

  constexpr int kThreads = 8;
  constexpr int kRounds = 200;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      Pcg64 trng(20260805, 100 + t);
      for (int r = 0; r < kRounds; ++r) {
        // A small pool of ranges so threads collide on the same keys
        // (first resolver builds, the rest must hit the cache).
        const std::size_t begin = trng.uniform_int(8);
        const std::size_t end =
            begin + 1 + trng.uniform_int(total - 8);
        const FusedPlan& sub = plan.subrange_plan(begin, end);
        if (sub.circuit().gates().size() != end - begin) failures.fetch_add(1);
        if (sub.gate_count() != end - begin) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& w : workers) w.join();
  EXPECT_EQ(failures.load(), 0);

  // The cached plans still produce correct states after the stampede.
  const std::vector<cplx> init = random_state(5, rng);
  StateVector ref = StateVector::from_amplitudes(init);
  ref.apply_circuit_range(qc, 3, total);
  StateVector sv = StateVector::from_amplitudes(init);
  plan.subrange_plan(3, total).apply(sv);
  EXPECT_LT(state_distance(sv.amplitudes(), ref.amplitudes()), kTol);
}

TEST(FusedPlan, CleanRunSharesPlanAcrossInstances) {
  // A CleanRun built from a shared plan must agree with one that compiles
  // its own, and with the unfused reference.
  CircuitSpec spec;
  spec.op = Operation::kAdd;
  spec.n = 3;
  const QuantumCircuit qc = build_transpiled_circuit(spec);
  const auto plan = std::make_shared<const FusedPlan>(qc);

  StateVector init(qc.num_qubits());
  const CleanRun shared(qc, init, 16, plan);
  const CleanRun owned(qc, init, 16);
  StateVector ref(qc.num_qubits());
  ref.apply_circuit_range(qc, 0, qc.gates().size());

  EXPECT_LT(state_distance(shared.final_state().amplitudes(),
                           ref.amplitudes()),
            kTol);
  for (std::size_t g = 0; g <= qc.gates().size(); g += 7) {
    EXPECT_LT(state_distance(shared.state_at(g).amplitudes(),
                             owned.state_at(g).amplitudes()),
              kTol);
  }
}

}  // namespace
}  // namespace qfab
