#include <gtest/gtest.h>

#include <cmath>

#include "arith/expected.h"
#include "arith/qint.h"
#include "arith/stateprep.h"
#include "common/rng.h"
#include "sim/statevector.h"

namespace qfab {
namespace {

TEST(QIntEncoding, TwosComplementRoundTrip) {
  for (int bits : {1, 4, 8}) {
    const std::int64_t lo = -(std::int64_t{1} << (bits - 1));
    const std::int64_t hi = (std::int64_t{1} << (bits - 1)) - 1;
    for (std::int64_t v = lo; v <= hi; ++v)
      EXPECT_EQ(QInt::decode_signed(QInt::encode(v, bits), bits), v);
  }
}

TEST(QIntEncoding, KnownValues) {
  EXPECT_EQ(QInt::encode(-1, 4), 15u);
  EXPECT_EQ(QInt::encode(-8, 4), 8u);
  EXPECT_EQ(QInt::encode(7, 4), 7u);
  EXPECT_EQ(QInt::encode(16, 4), 0u);   // wraps
  EXPECT_EQ(QInt::encode(-9, 4), 7u);   // wraps
  EXPECT_EQ(QInt::decode_signed(15, 4), -1);
  EXPECT_EQ(QInt::decode_signed(8, 4), -8);
}

TEST(QInt, ClassicalOrderOne) {
  const QInt q = QInt::classical(4, 11);
  EXPECT_EQ(q.order(), 1);
  EXPECT_EQ(q.support(), std::vector<u64>{11});
  EXPECT_NEAR(std::abs(q.terms()[0].amplitude), 1.0, 1e-12);
}

TEST(QInt, UniformAmplitudes) {
  const QInt q = QInt::uniform(4, {3, 7, 12});
  EXPECT_EQ(q.order(), 3);
  for (const auto& t : q.terms())
    EXPECT_NEAR(std::norm(t.amplitude), 1.0 / 3.0, 1e-12);
}

TEST(QInt, SuperpositionNormalizes) {
  const QInt q = QInt::superposition(
      3, {{1, cplx{3.0, 0.0}}, {2, cplx{0.0, 4.0}}});
  EXPECT_NEAR(std::norm(q.terms()[0].amplitude), 9.0 / 25.0, 1e-12);
  EXPECT_NEAR(std::norm(q.terms()[1].amplitude), 16.0 / 25.0, 1e-12);
}

TEST(QInt, RejectsDuplicatesAndRange) {
  EXPECT_THROW(QInt::uniform(3, {1, 1}), CheckError);
  EXPECT_NO_THROW(QInt::uniform(3, {7}));
  EXPECT_EQ(QInt::uniform(3, {9}).support()[0], 1u);  // 9 mod 8
}

TEST(QInt, AmplitudeVector) {
  const QInt q = QInt::uniform(2, {0, 3});
  const auto amps = q.amplitudes();
  ASSERT_EQ(amps.size(), 4u);
  EXPECT_NEAR(std::norm(amps[0]), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(amps[3]), 0.5, 1e-12);
  EXPECT_EQ(amps[1], cplx(0.0, 0.0));
}

TEST(ProductState, TwoRegistersWithPadding) {
  // x=|2> on bits [0,2), y=(|1>+|3>)/√2 on bits [2,4), one padding qubit.
  const StateVector sv = prepare_product_state(
      5, {{QubitRange{0, 2}, QInt::classical(2, 2)},
          {QubitRange{2, 2}, QInt::uniform(2, {1, 3})}});
  EXPECT_NEAR(std::norm(sv.amplitude(0b00110)), 0.5, 1e-12);
  EXPECT_NEAR(std::norm(sv.amplitude(0b01110)), 0.5, 1e-12);
  EXPECT_NEAR(sv.norm(), 1.0, 1e-12);
}

TEST(ProductState, EntangledAmplitudeProducts) {
  const QInt a = QInt::superposition(1, {{0, cplx{0.6, 0.0}},
                                         {1, cplx{0.8, 0.0}}});
  const QInt b = QInt::superposition(1, {{0, cplx{0.0, 0.6}},
                                         {1, cplx{0.8, 0.0}}});
  const StateVector sv = prepare_product_state(
      2, {{QubitRange{0, 1}, a}, {QubitRange{1, 1}, b}});
  EXPECT_NEAR(std::norm(sv.amplitude(0b00)), 0.36 * 0.36, 1e-12);
  EXPECT_NEAR(std::norm(sv.amplitude(0b11)), 0.64 * 0.64, 1e-12);
}

TEST(ProductState, RejectsOverlapAndMismatch) {
  EXPECT_THROW(prepare_product_state(
                   3, {{QubitRange{0, 2}, QInt::classical(2, 1)},
                       {QubitRange{1, 2}, QInt::classical(2, 1)}}),
               CheckError);
  EXPECT_THROW(prepare_product_state(
                   3, {{QubitRange{0, 2}, QInt::classical(3, 1)}}),
               CheckError);
}

// ---------- state preparation circuits ----------

std::vector<cplx> random_target(int n, Pcg64& rng) {
  std::vector<cplx> amps(pow2(n));
  double norm = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    norm += std::norm(a);
  }
  for (cplx& a : amps) a /= std::sqrt(norm);
  return amps;
}

TEST(Multiplexor, SingleControlBranches) {
  // UCRY with one control: angle a0 when control=0, a1 when control=1.
  QuantumCircuit qc(2);
  append_multiplexed_rotation(qc, {1}, 0, {0.4, 1.3}, 'y');
  for (int c = 0; c < 2; ++c) {
    StateVector sv(2);
    sv.set_basis_state(static_cast<u64>(c) << 1);
    sv.apply_circuit(qc);
    const double angle = c ? 1.3 : 0.4;
    EXPECT_NEAR(std::abs(sv.amplitude(u64(c) << 1)), std::cos(angle / 2),
                1e-10);
    EXPECT_NEAR(std::abs(sv.amplitude((u64(c) << 1) | 1)),
                std::sin(angle / 2), 1e-10);
  }
}

TEST(Multiplexor, TwoControlSelectsAngleByValue) {
  const std::vector<double> angles = {0.2, 0.9, 1.7, 2.4};
  QuantumCircuit qc(3);
  append_multiplexed_rotation(qc, {1, 2}, 0, angles, 'y');
  for (u64 c = 0; c < 4; ++c) {
    StateVector sv(3);
    sv.set_basis_state(c << 1);
    sv.apply_circuit(qc);
    EXPECT_NEAR(std::abs(sv.amplitude(c << 1)), std::cos(angles[c] / 2),
                1e-10)
        << "control " << c;
  }
}

TEST(Multiplexor, RzAxisPhases) {
  QuantumCircuit qc(2);
  append_multiplexed_rotation(qc, {1}, 0, {0.6, -1.0}, 'z');
  // Prepare (|0>+|1>)/√2 ⊗ |1> on (target, control) and check phases.
  StateVector sv(2);
  sv.apply_gate(make_gate1(GateKind::kH, 0));
  sv.apply_gate(make_gate1(GateKind::kX, 1));
  sv.apply_circuit(qc);
  const double rel =
      std::arg(sv.amplitude(0b11)) - std::arg(sv.amplitude(0b10));
  EXPECT_NEAR(rel, -1.0, 1e-10);
}

class StatePrep : public ::testing::TestWithParam<int> {};

TEST_P(StatePrep, PreparesRandomStatesExactly) {
  const int n = GetParam();
  Pcg64 rng(1000 + static_cast<std::uint64_t>(n));
  for (int rep = 0; rep < 4; ++rep) {
    const std::vector<cplx> target = random_target(n, rng);
    QuantumCircuit qc(n);
    std::vector<int> qubits;
    for (int i = 0; i < n; ++i) qubits.push_back(i);
    append_state_preparation(qc, qubits, target);

    StateVector sv(n);
    sv.apply_circuit(qc);
    double dist = 0.0;
    for (u64 i = 0; i < pow2(n); ++i)
      dist += std::norm(sv.amplitude(i) - target[i]);
    EXPECT_LT(std::sqrt(dist), 1e-8) << "n=" << n << " rep=" << rep;
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, StatePrep, ::testing::Values(1, 2, 3, 4, 5));

TEST(StatePrepCost, SparseStatesAreCheap) {
  // A basis state requires no rotations at all (all angles collapse).
  QuantumCircuit qc(3);
  std::vector<cplx> target(8, cplx{0.0, 0.0});
  target[0] = 1.0;
  append_state_preparation(qc, {0, 1, 2}, target);
  EXPECT_TRUE(qc.gates().empty());
}

TEST(StatePrep, PreparesQIntOperands) {
  // The paper's operands: uniform order-2 qintegers.
  const QInt q = QInt::uniform(3, {2, 5});
  QuantumCircuit qc(3);
  append_state_preparation(qc, {0, 1, 2}, q.amplitudes());
  StateVector sv(3);
  sv.apply_circuit(qc);
  EXPECT_NEAR(std::norm(sv.amplitude(2)), 0.5, 1e-10);
  EXPECT_NEAR(std::norm(sv.amplitude(5)), 0.5, 1e-10);
}

// ---------- expected outputs ----------

TEST(Expected, SumsModulo) {
  const QInt x = QInt::uniform(3, {6, 7});
  const QInt y = QInt::classical(3, 3);
  const auto sums = expected_sums(x, y, 3);
  // 6+3=9≡1, 7+3=10≡2.
  EXPECT_EQ(sums, (std::vector<u64>{1, 2}));
}

TEST(Expected, SumsCollide) {
  const QInt x = QInt::uniform(3, {1, 2});
  const QInt y = QInt::uniform(3, {4, 5});
  const auto sums = expected_sums(x, y, 3);
  // {5,6,6,7} -> {5,6,7}.
  EXPECT_EQ(sums, (std::vector<u64>{5, 6, 7}));
}

TEST(Expected, Differences) {
  const QInt x = QInt::classical(3, 5);
  const QInt y = QInt::classical(3, 2);
  // y - x = -3 ≡ 5 (mod 8).
  EXPECT_EQ(expected_differences(x, y, 3), std::vector<u64>{5});
}

TEST(Expected, ProductsWide) {
  const QInt x = QInt::uniform(4, {3, 5});
  const QInt y = QInt::uniform(4, {7, 11});
  const auto prods = expected_products(x, y, 8);
  EXPECT_EQ(prods, (std::vector<u64>{21, 33, 35, 55}));
}

}  // namespace
}  // namespace qfab
