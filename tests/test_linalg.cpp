#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "linalg/gates.h"
#include "linalg/matrix.h"

namespace qfab {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Matrix, IdentityAndMultiply) {
  const Matrix i2 = Matrix::identity(2);
  const Matrix x = gates::X();
  EXPECT_TRUE((i2 * x).approx_equal(x));
  EXPECT_TRUE((x * x).approx_equal(i2));
}

TEST(Matrix, AdjointOfProduct) {
  const Matrix a = gates::H() * gates::SX();
  EXPECT_TRUE((a * a.adjoint()).approx_equal(Matrix::identity(2)));
}

TEST(Matrix, ApplyVector) {
  const std::vector<cplx> v = {1.0, 0.0};
  const auto hv = gates::H().apply(v);
  EXPECT_NEAR(std::abs(hv[0]), 1.0 / std::sqrt(2.0), 1e-12);
  EXPECT_NEAR(std::abs(hv[1]), 1.0 / std::sqrt(2.0), 1e-12);
}

TEST(Matrix, KronDimensionsAndValues) {
  const Matrix k = gates::X().kron(gates::I());
  EXPECT_EQ(k.rows(), 4u);
  // X ⊗ I flips the high-order bit: |00> -> |10>.
  EXPECT_EQ(k.at(2, 0), cplx(1.0, 0.0));
  EXPECT_EQ(k.at(0, 0), cplx(0.0, 0.0));
}

TEST(Matrix, EqualUpToPhase) {
  const Matrix h = gates::H();
  const Matrix rotated = h * cplx{std::cos(1.2), std::sin(1.2)};
  EXPECT_TRUE(h.equal_up_to_phase(rotated));
  EXPECT_FALSE(h.equal_up_to_phase(gates::X()));
  EXPECT_FALSE(h.approx_equal(rotated));
}

class GateUnitarity : public ::testing::TestWithParam<const char*> {};

TEST(Gates, AllUnitary) {
  const Matrix all[] = {gates::I(),      gates::X(),     gates::Y(),
                        gates::Z(),      gates::H(),     gates::SX(),
                        gates::SXdg(),   gates::RZ(0.7), gates::RY(1.1),
                        gates::RX(-0.3), gates::P(2.2),  gates::U(1.0, 0.5, -0.5),
                        gates::CX(),     gates::CZ(),    gates::CP(0.9),
                        gates::CH(),     gates::SWAP(),  gates::CCP(1.3),
                        gates::CCX()};
  for (const Matrix& m : all) EXPECT_TRUE(m.is_unitary());
}

TEST(Gates, SxSquaredIsX) {
  EXPECT_TRUE((gates::SX() * gates::SX()).approx_equal(gates::X()));
  EXPECT_TRUE((gates::SX() * gates::SXdg()).approx_equal(Matrix::identity(2)));
}

TEST(Gates, PauliAlgebra) {
  const cplx i{0.0, 1.0};
  EXPECT_TRUE((gates::X() * gates::Y()).approx_equal(gates::Z() * i));
  EXPECT_TRUE((gates::Y() * gates::Z()).approx_equal(gates::X() * i));
  EXPECT_TRUE((gates::Z() * gates::X()).approx_equal(gates::Y() * i));
}

TEST(Gates, RzIsPhaseUpToGlobal) {
  // P(θ) = e^{iθ/2} RZ(θ).
  const double theta = 0.83;
  const cplx ph{std::cos(theta / 2), std::sin(theta / 2)};
  EXPECT_TRUE((gates::RZ(theta) * ph).approx_equal(gates::P(theta)));
}

TEST(Gates, UGateRecoversNamedGates) {
  EXPECT_TRUE(gates::U(kPi / 2, 0.0, kPi).equal_up_to_phase(gates::H()));
  EXPECT_TRUE(gates::U(kPi, 0.0, kPi).equal_up_to_phase(gates::X()));
  EXPECT_TRUE(gates::U(0.7, 0.0, 0.0).approx_equal(gates::RY(0.7)));
  EXPECT_TRUE(
      gates::U(0.7, -kPi / 2, kPi / 2).equal_up_to_phase(gates::RX(0.7)));
}

TEST(Gates, RlAngles) {
  // R_1 = P(π) = Z, R_2 = P(π/2) = S.
  EXPECT_TRUE(gates::R_l(1).approx_equal(gates::Z()));
  EXPECT_NEAR(std::arg(gates::R_l(2).at(1, 1)), kPi / 2, 1e-12);
  EXPECT_NEAR(std::arg(gates::R_l(3).at(1, 1)), kPi / 4, 1e-12);
}

TEST(Gates, ControlledStructure) {
  // CX: control is the high gate-local bit (basis order |control target>).
  const Matrix cx = gates::CX();
  EXPECT_EQ(cx.at(0, 0), cplx(1.0, 0.0));  // |00> fixed
  EXPECT_EQ(cx.at(1, 1), cplx(1.0, 0.0));  // |01> fixed (control=0)
  EXPECT_EQ(cx.at(3, 2), cplx(1.0, 0.0));  // |10> -> |11>
  EXPECT_EQ(cx.at(2, 3), cplx(1.0, 0.0));  // |11> -> |10>
}

TEST(Gates, CcpOnlyPhasesAllOnes) {
  const Matrix ccp = gates::CCP(0.77);
  for (std::size_t i = 0; i < 8; ++i) {
    const cplx d = ccp.at(i, i);
    if (i == 7)
      EXPECT_NEAR(std::arg(d), 0.77, 1e-12);
    else
      EXPECT_EQ(d, cplx(1.0, 0.0));
  }
}

TEST(EmbedGate, SingleQubitPlacement) {
  // X on qubit 1 of 3: |000> -> |010>.
  const Matrix u = embed_gate(gates::X(), {1}, 3);
  EXPECT_EQ(u.at(0b010, 0b000), cplx(1.0, 0.0));
  EXPECT_EQ(u.at(0b101, 0b111), cplx(1.0, 0.0));
  EXPECT_TRUE(u.is_unitary());
}

TEST(EmbedGate, TwoQubitOrdering) {
  // CX with target=qubit 0, control=qubit 2 in a 3-qubit system.
  const Matrix u = embed_gate(gates::CX(), {0, 2}, 3);
  EXPECT_EQ(u.at(0b101, 0b100), cplx(1.0, 0.0));  // control set: flips bit 0
  EXPECT_EQ(u.at(0b001, 0b001), cplx(1.0, 0.0));  // control clear: identity
  EXPECT_TRUE(u.is_unitary());
}

TEST(EmbedGate, MatchesKronForAdjacentQubits) {
  // Gate on qubits {0,1} of 2 qubits is the gate itself.
  EXPECT_TRUE(embed_gate(gates::CP(0.5), {0, 1}, 2)
                  .approx_equal(gates::CP(0.5)));
  // H on qubit 1 of 2 = H ⊗ I (high bit ⊗ low bit).
  EXPECT_TRUE(
      embed_gate(gates::H(), {1}, 2).approx_equal(gates::H().kron(gates::I())));
}

TEST(EmbedGate, ThreeQubitPermuted) {
  // CCX with target on qubit 2, controls on 0 and 1: |011> -> |111>.
  const Matrix u = embed_gate(gates::CCX(), {2, 0, 1}, 3);
  EXPECT_EQ(u.at(0b111, 0b011), cplx(1.0, 0.0));
  EXPECT_EQ(u.at(0b011, 0b111), cplx(1.0, 0.0));
  EXPECT_EQ(u.at(0b010, 0b010), cplx(1.0, 0.0));
  EXPECT_TRUE(u.is_unitary());
}

}  // namespace
}  // namespace qfab
