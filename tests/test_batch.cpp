// Batched-engine validation: BatchedStateVector must match the scalar
// StateVector/FusedPlan path to <= 1e-12 on random circuits over every
// fused op kind — including mid-plan per-lane Pauli injections at every
// gate index, ragged lane counts, and every kernel table the host
// resolves (the suite is also re-run with QFAB_SIMD=scalar by the
// "scalar" CTest label). Float32 lanes are pinned against double to a
// bounded drift, and the precision-policy fallback must reproduce the
// double path bit for bit.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "exp/experiment.h"
#include "exp/instances.h"
#include "exp/sweep.h"
#include "noise/estimator.h"
#include "sim/batch.h"
#include "sim/fusion.h"
#include "sim/invariants.h"

namespace qfab {
namespace {

constexpr double kTol = 1e-12;

std::vector<cplx> random_state(int n, Pcg64& rng) {
  std::vector<cplx> amps(pow2(n));
  double norm = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    norm += std::norm(a);
  }
  const double s = 1.0 / std::sqrt(norm);
  for (cplx& a : amps) a *= s;
  return amps;
}

double state_distance(const std::vector<cplx>& a, const std::vector<cplx>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::norm(a[i] - b[i]);
  return std::sqrt(d);
}

/// A random circuit drawing from every supported gate kind (fuses into
/// every op kind: kGate, kMatrix1, kMatrix2, kDiagonal).
QuantumCircuit random_circuit(int n, int gates, Pcg64& rng) {
  static const GateKind kKinds[] = {
      GateKind::kId, GateKind::kX,    GateKind::kY,  GateKind::kZ,
      GateKind::kH,  GateKind::kSX,   GateKind::kSXdg, GateKind::kRZ,
      GateKind::kRY, GateKind::kRX,   GateKind::kP,  GateKind::kU,
      GateKind::kCX, GateKind::kCZ,   GateKind::kCP, GateKind::kCH,
      GateKind::kSWAP, GateKind::kCCP, GateKind::kCCX};
  QuantumCircuit qc(n);
  for (int i = 0; i < gates; ++i) {
    const GateKind kind = kKinds[rng.uniform_int(std::size(kKinds))];
    const int arity = gate_arity(kind);
    int q[3];
    q[0] = static_cast<int>(rng.uniform_int(n));
    do q[1] = static_cast<int>(rng.uniform_int(n));
    while (q[1] == q[0]);
    do q[2] = static_cast<int>(rng.uniform_int(n));
    while (q[2] == q[0] || q[2] == q[1]);
    double p[3];
    for (double& v : p) v = (rng.uniform() - 0.5) * 2.0 * M_PI;
    if (arity == 1) {
      qc.append(make_gate1(kind, q[0], p[0], p[1], p[2]));
    } else if (arity == 2) {
      qc.append(make_gate2(kind, q[0], q[1], p[0]));
    } else {
      qc.append(make_gate3(kind, q[0], q[1], q[2], p[0]));
    }
  }
  return qc;
}

/// Run every kernel table the host resolves through `body` — forcing an
/// unsupported level degrades to the next one down, so duplicates are
/// skipped by resolved name (restores auto-detection after).
template <typename Body>
void for_each_simd_mode(const Body& body) {
  std::vector<std::string> seen;
  for (SimdMode mode :
       {SimdMode::kScalar, SimdMode::kAvx2, SimdMode::kAvx512}) {
    set_simd_mode(mode);
    const std::string level = simd_mode_name();
    if (std::find(seen.begin(), seen.end(), level) != seen.end()) continue;
    seen.push_back(level);
    body(simd_mode_name());
  }
  set_simd_mode(SimdMode::kAuto);
}

TEST(SimdDispatch, ResolvesToConcreteMode) {
  set_simd_mode(SimdMode::kScalar);
  EXPECT_EQ(simd_mode(), SimdMode::kScalar);
  EXPECT_STREQ(simd_mode_name(), "scalar");
  set_simd_mode(SimdMode::kAuto);
  EXPECT_NE(simd_mode(), SimdMode::kAuto);  // always resolved
}

TEST(BatchedStateVector, LaneRoundTripAndInitialState) {
  Pcg64 rng(20260805, 10);
  BatchedStateVector bsv(4, 3);
  // Default lanes are |0...0>.
  const auto zero = bsv.lane_state(1).amplitudes();
  EXPECT_NEAR(std::abs(zero[0] - cplx{1.0, 0.0}), 0.0, kTol);

  std::vector<StateVector> states;
  for (int l = 0; l < 3; ++l) {
    states.push_back(StateVector::from_amplitudes(random_state(4, rng)));
    bsv.set_lane(l, states.back());
  }
  for (int l = 0; l < 3; ++l) {
    EXPECT_LT(state_distance(bsv.lane_state(l).amplitudes(),
                             states[static_cast<std::size_t>(l)].amplitudes()),
              kTol);
    EXPECT_NEAR(bsv.lane_norm(l), 1.0, 1e-12);
  }
}

TEST(BatchedStateVector, PerLanePauliTouchesOnlyItsLane) {
  Pcg64 rng(20260805, 11);
  const int n = 3, L = 4;
  std::vector<StateVector> states;
  BatchedStateVector bsv(n, L);
  for (int l = 0; l < L; ++l) {
    states.push_back(StateVector::from_amplitudes(random_state(n, rng)));
    bsv.set_lane(l, states.back());
  }
  bsv.apply_pauli(2, Pauli::kY, 1);
  states[2].apply_pauli(Pauli::kY, 1);
  for (int l = 0; l < L; ++l)
    EXPECT_LT(state_distance(bsv.lane_state(l).amplitudes(),
                             states[static_cast<std::size_t>(l)].amplitudes()),
              kTol)
        << "lane " << l;
}

TEST(BatchedStateVector, AllLaneMarginalsBitwiseMatchPerLane) {
  Pcg64 rng(20260805, 17);
  const int n = 5, lanes = 6;
  BatchedStateVector bsv(n, lanes);
  for (int l = 0; l < lanes; ++l)
    bsv.set_lane(l, StateVector::from_amplitudes(random_state(n, rng)));
  // Contiguous, scattered, and single-qubit subsets: both key paths.
  const std::vector<std::vector<int>> qubit_sets = {{1, 2, 3}, {0, 2, 4}, {4}};
  for (const auto& qs : qubit_sets) {
    const auto all = bsv.all_lane_marginal_probabilities(qs);
    ASSERT_EQ(all.size(), static_cast<std::size_t>(lanes));
    for (int l = 0; l < lanes; ++l) {
      const auto ref = bsv.lane_marginal_probabilities(l, qs);
      ASSERT_EQ(all[static_cast<std::size_t>(l)].size(), ref.size());
      for (std::size_t i = 0; i < ref.size(); ++i)
        EXPECT_EQ(all[static_cast<std::size_t>(l)][i], ref[i])
            << "lane " << l << " bin " << i;
    }
  }
}

TEST(BatchedStateVector, AssignPermutedCopiesMappedLanes) {
  Pcg64 rng(20260805, 18);
  const int n = 4;
  BatchedStateVector src(n, 3);
  for (int l = 0; l < 3; ++l)
    src.set_lane(l, StateVector::from_amplitudes(random_state(n, rng)));
  src.apply_lane_global_phase(1, 0.7);  // pending phase must follow its lane
  BatchedStateVector dst(1, 1);  // wrong shape on purpose: assign resizes
  const std::vector<int> map = {1, 1, 2, 0, 1};
  dst.assign_permuted(src, map);
  ASSERT_EQ(dst.lanes(), 5);
  ASSERT_EQ(dst.num_qubits(), n);
  for (std::size_t j = 0; j < map.size(); ++j)
    EXPECT_LT(state_distance(dst.lane_state(static_cast<int>(j)).amplitudes(),
                             src.lane_state(map[j]).amplitudes()),
              kTol)
        << "dst lane " << j;
}

TEST(BatchedEngine, MatchesScalarOnRandomCircuits) {
  // All op kinds, several lane counts (including non-power-of-two "ragged"
  // widths), both kernel tables.
  for_each_simd_mode([](const char* mode) {
    Pcg64 rng(20260805, 12);
    for (int lanes : {1, 3, 4, 8}) {
      for (int trial = 0; trial < 10; ++trial) {
        const int n = 3 + static_cast<int>(rng.uniform_int(3));  // 3..5
        const QuantumCircuit qc = random_circuit(n, 40, rng);
        const FusedPlan plan(qc);

        BatchedStateVector bsv(n, lanes);
        std::vector<StateVector> refs;
        for (int l = 0; l < lanes; ++l) {
          const auto init = random_state(n, rng);
          bsv.set_lane(l, StateVector::from_amplitudes(init));
          refs.push_back(StateVector::from_amplitudes(init));
          plan.apply(refs.back());
        }
        apply_plan(plan, bsv);
        for (int l = 0; l < lanes; ++l)
          EXPECT_LT(
              state_distance(bsv.lane_state(l).amplitudes(),
                             refs[static_cast<std::size_t>(l)].amplitudes()),
              kTol)
              << mode << " lanes=" << lanes << " trial=" << trial
              << " lane=" << l;
      }
    }
  });
}

TEST(BatchedEngine, MatchesScalarWithSmallTiles) {
  // tile_bits below the qubit count exercises the batched multi-tile path
  // (whose effective tile also shrinks by log2(lanes)).
  for_each_simd_mode([](const char* mode) {
    Pcg64 rng(20260805, 13);
    FusionOptions options;
    options.tile_bits = 3;
    for (int trial = 0; trial < 5; ++trial) {
      const QuantumCircuit qc = random_circuit(6, 60, rng);
      const FusedPlan plan(qc, options);
      const int lanes = 5;
      BatchedStateVector bsv(6, lanes);
      std::vector<StateVector> refs;
      for (int l = 0; l < lanes; ++l) {
        const auto init = random_state(6, rng);
        bsv.set_lane(l, StateVector::from_amplitudes(init));
        refs.push_back(StateVector::from_amplitudes(init));
        plan.apply(refs.back());
      }
      apply_plan(plan, bsv);
      for (int l = 0; l < lanes; ++l)
        EXPECT_LT(state_distance(bsv.lane_state(l).amplitudes(),
                                 refs[static_cast<std::size_t>(l)].amplitudes()),
                  kTol)
            << mode << " trial=" << trial << " lane=" << l;
    }
  });
}

TEST(BatchedEngine, PerLaneInjectionAtEveryGateIndex) {
  // The divergence protocol: shared segments batched, per-lane Paulis at
  // the split, batched execution resumes — checked at every gate index,
  // with each lane getting a different Pauli on a different qubit.
  Pcg64 rng(20260805, 14);
  const int n = 4, lanes = 4;
  const QuantumCircuit qc = random_circuit(n, 30, rng);
  const std::size_t total = qc.gates().size();
  const FusedPlan plan(qc);
  std::vector<std::vector<cplx>> inits;
  for (int l = 0; l < lanes; ++l) inits.push_back(random_state(n, rng));

  for (std::size_t s = 0; s <= total; ++s) {
    Pauli p[lanes];
    int q[lanes];
    for (int l = 0; l < lanes; ++l) {
      p[l] = static_cast<Pauli>(1 + rng.uniform_int(3));
      q[l] = static_cast<int>(rng.uniform_int(n));
    }

    BatchedStateVector bsv(n, lanes);
    for (int l = 0; l < lanes; ++l)
      bsv.set_lane(l, StateVector::from_amplitudes(inits[l]));
    apply_plan_range(plan, bsv, 0, s);
    for (int l = 0; l < lanes; ++l) bsv.apply_pauli(l, p[l], q[l]);
    apply_plan_range(plan, bsv, s, total);

    for (int l = 0; l < lanes; ++l) {
      StateVector ref = StateVector::from_amplitudes(inits[l]);
      plan.apply_range(ref, 0, s);
      ref.apply_pauli(p[l], q[l]);
      plan.apply_range(ref, s, total);
      EXPECT_LT(state_distance(bsv.lane_state(l).amplitudes(),
                               ref.amplitudes()),
                kTol)
          << "split " << s << " lane " << l;
    }
  }
}

TEST(BatchedEngine, SplitsInsideTranspiledQfaOpsMatchScalar) {
  // Transpiled QFA fuses long diagonal gate runs into single ops; a split
  // inside one now executes through a cached subrange plan
  // (FusedPlan::subrange_plan) instead of gate-at-a-time. Pin the batched
  // split execution against the scalar apply_range at strided split points.
  for_each_simd_mode([](const char* mode) {
    CircuitSpec spec;
    spec.op = Operation::kAdd;
    spec.n = 3;
    const QuantumCircuit qc = build_transpiled_circuit(spec);
    const FusedPlan plan(qc);
    const std::size_t total = qc.gates().size();
    Pcg64 rng(20260805, 19);
    const auto init = random_state(qc.num_qubits(), rng);
    StateVector ref = StateVector::from_amplitudes(init);
    plan.apply_range(ref, 0, total);
    for (std::size_t s = 0; s <= total; s += 3) {
      BatchedStateVector bsv(qc.num_qubits(), 2);
      for (int l = 0; l < 2; ++l)
        bsv.set_lane(l, StateVector::from_amplitudes(init));
      apply_plan_range(plan, bsv, 0, s);
      apply_plan_range(plan, bsv, s, total);
      for (int l = 0; l < 2; ++l)
        EXPECT_LT(state_distance(bsv.lane_state(l).amplitudes(),
                                 ref.amplitudes()),
                  kTol)
            << mode << " split " << s << " lane " << l;
    }
  });
}

TEST(BatchedTrajectories, MatchScalarRunTrajectory) {
  // Hand-crafted per-lane event lists (0-3 events each, arity-respecting
  // Paulis) through run_trajectories_batched vs the scalar run_trajectory.
  Pcg64 rng(20260805, 15);
  const int n = 4, lanes = 5;
  const QuantumCircuit qc = random_circuit(n, 40, rng);
  const std::size_t total = qc.gates().size();
  const FusedPlan* raw_plan = nullptr;
  const StateVector init = StateVector::from_amplitudes(random_state(n, rng));
  const CleanRun clean(qc, init, 8);
  raw_plan = &clean.plan();

  for (int trial = 0; trial < 10; ++trial) {
    std::vector<std::vector<ErrorEvent>> lane_events(lanes);
    std::size_t min_site = total;
    for (int l = 0; l < lanes; ++l) {
      const int n_events = static_cast<int>(rng.uniform_int(4));  // 0..3
      std::vector<std::size_t> sites;
      for (int e = 0; e < n_events; ++e) sites.push_back(rng.uniform_int(total));
      std::sort(sites.begin(), sites.end());
      for (std::size_t site : sites) {
        ErrorEvent ev;
        ev.gate_index = site;
        ev.pauli0 = static_cast<Pauli>(1 + rng.uniform_int(3));
        if (qc.gates()[site].arity() >= 2 && rng.bernoulli(0.5))
          ev.pauli1 = static_cast<Pauli>(1 + rng.uniform_int(3));
        lane_events[static_cast<std::size_t>(l)].push_back(ev);
      }
      if (!sites.empty()) min_site = std::min(min_site, sites.front() + 1);
    }
    const std::size_t g0 = min_site == total ? 0 : min_site;

    BatchedStateVector bsv(n, lanes);
    bsv.broadcast(clean.state_at(g0));
    run_trajectories_batched(*raw_plan, bsv, g0, lane_events);

    for (int l = 0; l < lanes; ++l) {
      const StateVector ref =
          run_trajectory(clean, lane_events[static_cast<std::size_t>(l)]);
      EXPECT_LT(state_distance(bsv.lane_state(l).amplitudes(),
                               ref.amplitudes()),
                kTol)
          << "trial " << trial << " lane " << l;
    }
  }
}

TEST(BatchedCleanRunTest, LaneQueriesMatchScalarCleanRuns) {
  // A batched group of clean runs must agree lane-for-lane with
  // independently computed scalar CleanRuns, at every checkpoint boundary
  // and in between.
  Pcg64 rng(20260805, 16);
  const int n = 4, lanes = 3;
  const QuantumCircuit qc = random_circuit(n, 50, rng);
  const auto plan = std::make_shared<const FusedPlan>(qc);

  std::vector<StateVector> initials;
  std::vector<CleanRun> scalar_runs;
  for (int l = 0; l < lanes; ++l) {
    initials.push_back(StateVector::from_amplitudes(random_state(n, rng)));
    scalar_runs.emplace_back(qc, initials.back(), 16, plan);
  }
  const BatchedCleanRun batched(plan, initials, 16);
  ASSERT_EQ(batched.lanes(), lanes);

  for (int l = 0; l < lanes; ++l) {
    EXPECT_LT(
        state_distance(batched.lane_final_state(l).amplitudes(),
                       scalar_runs[static_cast<std::size_t>(l)].final_state()
                           .amplitudes()),
        kTol);
    for (std::size_t g = 0; g <= qc.gates().size(); g += 7)
      EXPECT_LT(state_distance(
                    batched.lane_state_at(l, g).amplitudes(),
                    scalar_runs[static_cast<std::size_t>(l)].state_at(g)
                        .amplitudes()),
                kTol)
          << "lane " << l << " g " << g;
  }

  // states_at / load_states_at: batched resume states match the scalar
  // replays lane-for-lane, including permuted-with-repeats lane maps
  // loaded into reused storage.
  BatchedStateVector reuse(n, 1);
  const std::vector<int> map = {2, 0, 0, 1};
  for (std::size_t g = 0; g <= qc.gates().size(); g += 11) {
    const BatchedStateVector at = batched.states_at(g);
    for (int l = 0; l < lanes; ++l)
      EXPECT_LT(state_distance(
                    at.lane_state(l).amplitudes(),
                    scalar_runs[static_cast<std::size_t>(l)].state_at(g)
                        .amplitudes()),
                kTol)
          << "states_at lane " << l << " g " << g;
    batched.load_states_at(g, map, reuse);
    ASSERT_EQ(reuse.lanes(), static_cast<int>(map.size()));
    for (std::size_t j = 0; j < map.size(); ++j)
      EXPECT_LT(
          state_distance(reuse.lane_state(static_cast<int>(j)).amplitudes(),
                         scalar_runs[static_cast<std::size_t>(map[j])]
                             .state_at(g)
                             .amplitudes()),
          kTol)
          << "load_states_at lane " << j << " g " << g;
  }
}

TEST(BatchedEstimator, MatchesScalarEstimatorAndIsPackingIndependent) {
  CircuitSpec spec;
  spec.op = Operation::kAdd;
  spec.n = 3;
  const QuantumCircuit qc = build_transpiled_circuit(spec);
  Pcg64 inst_rng(5, 1);
  const ArithInstance inst =
      generate_instances(1, 3, 3, OperandOrders{}, inst_rng)[0];
  const CleanRun clean(qc, make_initial_state(spec, inst), 32);
  const ErrorLocations errors(qc, NoiseModel{.p1q = 0.002, .p2q = 0.004});
  const std::vector<int> out_q = output_qubits(spec);
  EstimatorOptions est;
  est.error_trajectories = 10;

  Pcg64 rng_scalar(77, 3);
  const auto scalar = estimate_channel_marginal(clean, errors, out_q, est,
                                                rng_scalar);
  for (int max_lanes : {1, 4, 8}) {
    Pcg64 rng_batched(77, 3);
    const auto batched = estimate_channel_marginal_batched(
        clean, errors, out_q, est, max_lanes, rng_batched);
    ASSERT_EQ(batched.size(), scalar.size());
    // Same pre-sampled trajectories, same accumulation order: agreement to
    // simulation rounding regardless of how lanes were packed.
    for (std::size_t i = 0; i < scalar.size(); ++i)
      EXPECT_NEAR(batched[i], scalar[i], 1e-9) << "max_lanes=" << max_lanes;
    // And the consumed rng stream is identical to the scalar estimator's.
    Pcg64 rng_ref(77, 3);
    (void)estimate_channel_marginal(clean, errors, out_q, est, rng_ref);
    EXPECT_EQ(rng_batched(), rng_ref());
  }
}

TEST(BatchedEstimator, MultiMemberMatchesPerMemberEstimates) {
  // estimate_channel_marginals_batched pools all members' trajectories
  // into cross-member groups; each member's estimate must still match the
  // per-member batched estimator (same event samples, same accumulation
  // order) to simulation rounding, and consume the same rng stream.
  CircuitSpec spec;
  spec.op = Operation::kAdd;
  spec.n = 3;
  const QuantumCircuit qc = build_transpiled_circuit(spec);
  const auto plan = std::make_shared<const FusedPlan>(qc);
  Pcg64 inst_rng(6, 2);
  const auto insts = generate_instances(3, 3, 3, OperandOrders{}, inst_rng);
  std::vector<StateVector> initials;
  for (const ArithInstance& inst : insts)
    initials.push_back(make_initial_state(spec, inst));
  const BatchedCleanRun clean(plan, initials, 32);
  const ErrorLocations errors(qc, NoiseModel{.p1q = 0.002, .p2q = 0.004});
  const std::vector<int> out_q = output_qubits(spec);
  EstimatorOptions est;
  est.error_trajectories = 10;

  std::vector<Pcg64> rngs;
  for (std::size_t m = 0; m < insts.size(); ++m)
    rngs.push_back(Pcg64(88, 4).split(m));
  const auto all =
      estimate_channel_marginals_batched(clean, errors, out_q, est, rngs);
  ASSERT_EQ(all.size(), insts.size());
  for (std::size_t m = 0; m < insts.size(); ++m) {
    Pcg64 rng_ref = Pcg64(88, 4).split(m);
    const auto ref = estimate_channel_marginal_batched(
        clean, static_cast<int>(m), errors, out_q, est, 8, rng_ref);
    ASSERT_EQ(all[m].size(), ref.size());
    for (std::size_t i = 0; i < ref.size(); ++i)
      EXPECT_NEAR(all[m][i], ref[i], 1e-9) << "member " << m << " bin " << i;
    EXPECT_EQ(rngs[m](), rng_ref()) << "member " << m;
  }
}

TEST(BatchedSweep, RaggedGroupsMatchScalarSweep) {
  // run_sweep's batched path packs instances into lane groups; the ragged
  // cases — n_inst % lanes != 0 (5 % 2, 5 % 3) and lanes > n_inst (8 > 5)
  // — must reproduce the scalar (batch_lanes = 1) sweep point for point,
  // including the noise-free cluster.
  SweepConfig cfg;
  cfg.base.op = Operation::kAdd;
  cfg.base.n = 3;
  cfg.depths = {2, kFullDepth};
  cfg.rates_percent = {4.0};
  cfg.vary_2q = true;
  cfg.orders = {1, 1};
  cfg.instances = 5;
  cfg.run.shots = 128;
  cfg.run.error_trajectories = 6;
  cfg.include_noise_free = true;
  cfg.seed = 77;

  Pcg64 gen(cfg.seed);
  const auto insts = generate_instances(cfg.instances, 3, 3, cfg.orders, gen);

  SweepConfig scalar_cfg = cfg;
  scalar_cfg.run.batch_lanes = 1;
  const SweepResult ref = run_sweep(scalar_cfg, insts);
  ASSERT_EQ(ref.points.size(), 4u);  // 2 depths x (noise-free + 1 rate)

  for (int lanes : {2, 3, 8}) {
    SweepConfig batched_cfg = cfg;
    batched_cfg.run.batch_lanes = lanes;
    const SweepResult got = run_sweep(batched_cfg, insts);
    ASSERT_EQ(got.points.size(), ref.points.size()) << "lanes=" << lanes;
    for (std::size_t i = 0; i < ref.points.size(); ++i) {
      const PointStats& a = ref.points[i].stats;
      const PointStats& b = got.points[i].stats;
      EXPECT_EQ(got.points[i].depth, ref.points[i].depth);
      EXPECT_EQ(got.points[i].rate_percent, ref.points[i].rate_percent);
      EXPECT_EQ(b.instances, a.instances) << "lanes=" << lanes << " pt " << i;
      EXPECT_EQ(b.successes, a.successes) << "lanes=" << lanes << " pt " << i;
      EXPECT_EQ(b.lower_flips, a.lower_flips)
          << "lanes=" << lanes << " pt " << i;
      EXPECT_EQ(b.upper_flips, a.upper_flips)
          << "lanes=" << lanes << " pt " << i;
      EXPECT_NEAR(b.success_rate, a.success_rate, 1e-12)
          << "lanes=" << lanes << " pt " << i;
      EXPECT_NEAR(b.sigma, a.sigma, 1e-9) << "lanes=" << lanes << " pt " << i;
    }
  }
}

/// Euclidean distance between one lane of each engine, straight off the
/// raw planes (usable across precisions, where the float lane's norm may
/// sit outside StateVector's construction tolerance). Fair as long as
/// both lanes carry the same pending phase — true when both engines ran
/// the same plan from the same inputs.
template <typename RealA, typename RealB>
double raw_lane_distance(const BatchedStateVectorT<RealA>& a,
                         const BatchedStateVectorT<RealB>& b, int lane) {
  double d = 0.0;
  for (u64 i = 0; i < a.dim(); ++i) {
    const std::size_t ia = i * static_cast<u64>(a.lanes()) + lane;
    const std::size_t ib = i * static_cast<u64>(b.lanes()) + lane;
    const double dr =
        static_cast<double>(a.re()[ia]) - static_cast<double>(b.re()[ib]);
    const double di =
        static_cast<double>(a.im()[ia]) - static_cast<double>(b.im()[ib]);
    d += dr * dr + di * di;
  }
  return std::sqrt(d);
}

TEST(Float32Engine, TracksDoubleWithinDriftBound) {
  // Float32 lanes through the same plan must stay within a random-walk
  // drift bound of the double engine (~eps_f32 * sqrt(gates) per
  // amplitude; 1e-4 leaves generous headroom at 60 gates) and keep their
  // norms, on every kernel table.
  for_each_simd_mode([](const char* mode) {
    Pcg64 rng(20260807, 21);
    for (int trial = 0; trial < 6; ++trial) {
      const int n = 4, lanes = 5;
      const QuantumCircuit qc = random_circuit(n, 60, rng);
      const FusedPlan plan(qc);
      BatchedStateVector bsv(n, lanes);
      BatchedStateVectorF bsf(n, lanes);
      for (int l = 0; l < lanes; ++l) {
        const StateVector init =
            StateVector::from_amplitudes(random_state(n, rng));
        bsv.set_lane(l, init);
        bsf.set_lane(l, init);
      }
      apply_plan(plan, bsv);
      apply_plan(plan, bsf);
      EXPECT_EQ(check_lane_norms(bsf, 1e-4), "") << mode;
      for (int l = 0; l < lanes; ++l) {
        EXPECT_NEAR(bsf.lane_norm(l), 1.0, 1e-4) << mode << " lane=" << l;
        EXPECT_LT(raw_lane_distance(bsf, bsv, l), 1e-4)
            << mode << " trial=" << trial << " lane=" << l;
      }
    }
  });
}

TEST(PrecisionPolicy, ResolvePrecisionHonorsBudget) {
  RunOptions run;
  // Explicit settings pass through untouched.
  EXPECT_EQ(resolve_precision(run, 1000), Precision::kDouble);
  run.precision = Precision::kFloat32;
  run.float_drift_budget = 0.0;
  EXPECT_EQ(resolve_precision(run, 1000), Precision::kFloat32);
  // kAuto: predicted random-walk drift vs the budget.
  run.precision = Precision::kAuto;
  run.float_drift_budget = 1e-3;
  EXPECT_EQ(resolve_precision(run, 100), Precision::kFloat32);
  run.float_drift_budget = 1e-9;
  EXPECT_EQ(resolve_precision(run, 100), Precision::kDouble);
}

TEST(PrecisionPolicy, Float32EstimatorTracksDoubleWithoutFallback) {
  CircuitSpec spec;
  spec.op = Operation::kAdd;
  spec.n = 3;
  const QuantumCircuit qc = build_transpiled_circuit(spec);
  Pcg64 inst_rng(9, 1);
  const ArithInstance inst =
      generate_instances(1, 3, 3, OperandOrders{}, inst_rng)[0];
  const CleanRun clean(qc, make_initial_state(spec, inst), 32);
  const ErrorLocations errors(qc, NoiseModel{.p1q = 0.002, .p2q = 0.004});
  const std::vector<int> out_q = output_qubits(spec);
  EstimatorOptions est;
  est.error_trajectories = 10;

  Pcg64 rng_d(91, 3);
  const auto dbl =
      estimate_channel_marginal_batched(clean, errors, out_q, est, 8, rng_d);

  est.precision = Precision::kFloat32;  // default 1e-3 budget: no trips
  reset_precision_fallback_count();
  Pcg64 rng_f(91, 3);
  const auto f32 =
      estimate_channel_marginal_batched(clean, errors, out_q, est, 8, rng_f);
  EXPECT_EQ(precision_fallback_count(), 0);
  ASSERT_EQ(f32.size(), dbl.size());
  double dev = 0.0;
  for (std::size_t i = 0; i < dbl.size(); ++i)
    dev = std::max(dev, std::abs(f32[i] - dbl[i]));
  EXPECT_LT(dev, 1e-4);
  // Surviving float marginals are renormalized, so downstream simplex
  // checks still hold at double tolerances.
  EXPECT_EQ(check_probability_simplex(f32, 1e-9), "");
  // Events are pre-sampled identically in both precisions.
  EXPECT_EQ(rng_f(), rng_d());
}

TEST(PrecisionPolicy, TrippedBudgetFallsBackToDoubleBitForBit) {
  // A zero drift budget trips the sentinel on every float32 replay group;
  // the redo must reproduce the pure-double estimate bit for bit (the
  // events were pre-sampled, so the replay consumes no extra rng) and
  // count one fallback per replay group.
  CircuitSpec spec;
  spec.op = Operation::kAdd;
  spec.n = 3;
  const QuantumCircuit qc = build_transpiled_circuit(spec);
  Pcg64 inst_rng(9, 2);
  const ArithInstance inst =
      generate_instances(1, 3, 3, OperandOrders{}, inst_rng)[0];
  const CleanRun clean(qc, make_initial_state(spec, inst), 32);
  const ErrorLocations errors(qc, NoiseModel{.p1q = 0.002, .p2q = 0.004});
  const std::vector<int> out_q = output_qubits(spec);
  EstimatorOptions est;
  est.error_trajectories = 10;

  Pcg64 rng_d(92, 3);
  const auto dbl =
      estimate_channel_marginal_batched(clean, errors, out_q, est, 8, rng_d);

  est.precision = Precision::kFloat32;
  est.float_drift_budget = 0.0;
  reset_precision_fallback_count();
  Pcg64 rng_f(92, 3);
  const auto fell =
      estimate_channel_marginal_batched(clean, errors, out_q, est, 8, rng_f);
  EXPECT_GT(precision_fallback_count(), 0);
  ASSERT_EQ(fell.size(), dbl.size());
  for (std::size_t i = 0; i < dbl.size(); ++i)
    EXPECT_EQ(fell[i], dbl[i]) << "bin " << i;  // bitwise
  EXPECT_EQ(rng_f(), rng_d());
}

TEST(CdfSampler, MatchesLinearScanSemantics) {
  // Deterministic draw positions: with a known uniform stream the sampler
  // must land on the first index whose running sum exceeds u.
  const std::vector<double> probs = {0.0, 0.25, 0.0, 0.5, 0.25};
  CdfSampler sampler(probs);
  EXPECT_EQ(sampler.size(), probs.size());
  Pcg64 rng(123, 9);
  std::vector<int> counts(probs.size(), 0);
  for (int i = 0; i < 20000; ++i) ++counts[sampler.draw(rng)];
  EXPECT_EQ(counts[0], 0);  // zero-probability bins never drawn
  EXPECT_EQ(counts[2], 0);
  EXPECT_NEAR(counts[1], 5000, 400);
  EXPECT_NEAR(counts[3], 10000, 500);
  EXPECT_NEAR(counts[4], 5000, 400);
}

}  // namespace
}  // namespace qfab
