// Noise-layer validation: depolarizing event probabilities, conditional
// trajectory sampling, checkpointed replay correctness, and agreement
// between the stratified channel estimator and paper-faithful per-shot
// simulation.
#include <gtest/gtest.h>

#include <cmath>

#include "noise/estimator.h"
#include "noise/trajectory.h"
#include "qfb/adder.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

QuantumCircuit small_basis_circuit() {
  QuantumCircuit qc(3);
  qc.h(0);
  qc.cp(0, 1, 0.7);
  qc.h(1);
  qc.cx(1, 2);
  qc.rz(2, 0.4);
  qc.cx(0, 2);
  return transpile_to_basis(qc);
}

TEST(NoiseModel, EventProbabilities) {
  NoiseModel nm;
  nm.p1q = 0.01;
  nm.p2q = 0.02;
  EXPECT_DOUBLE_EQ(nm.error_event_prob(make_gate1(GateKind::kSX, 0)),
                   0.01 * 0.75);
  EXPECT_DOUBLE_EQ(nm.error_event_prob(make_gate1(GateKind::kRZ, 0, 0.1)),
                   0.01 * 0.75);
  EXPECT_DOUBLE_EQ(nm.error_event_prob(make_gate2(GateKind::kCX, 0, 1)),
                   0.02 * 15.0 / 16.0);
  nm.noisy_rz = false;
  EXPECT_DOUBLE_EQ(nm.error_event_prob(make_gate1(GateKind::kRZ, 0, 0.1)),
                   0.0);
  nm.noisy_id = false;
  EXPECT_DOUBLE_EQ(nm.error_event_prob(make_gate1(GateKind::kId, 0)), 0.0);
  EXPECT_THROW(nm.error_event_prob(make_gate3(GateKind::kCCP, 0, 1, 2, 0.1)),
               CheckError);
}

TEST(ErrorLocations, CleanProbabilityHomogeneous) {
  const QuantumCircuit qc = small_basis_circuit();
  NoiseModel nm;
  nm.p2q = 0.1;
  const ErrorLocations locs(qc, nm);
  const std::size_t n_cx = qc.counts().by_name.at("cx");
  EXPECT_EQ(locs.noisy_gate_count(), n_cx);
  const double q = 0.1 * 15.0 / 16.0;
  EXPECT_NEAR(locs.clean_probability(),
              std::pow(1.0 - q, static_cast<double>(n_cx)), 1e-12);
  EXPECT_NEAR(locs.expected_events(), q * static_cast<double>(n_cx), 1e-12);
}

TEST(ErrorLocations, SampleRateMatchesExpectation) {
  const QuantumCircuit qc = small_basis_circuit();
  NoiseModel nm;
  nm.p1q = 0.2;
  const ErrorLocations locs(qc, nm);
  Pcg64 rng(5);
  double total = 0.0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i)
    total += static_cast<double>(locs.sample(rng).size());
  EXPECT_NEAR(total / reps, locs.expected_events(),
              0.05 * locs.expected_events() + 0.01);
}

TEST(ErrorLocations, ConditionalSamplerNeverEmptyAndUnbiased) {
  const QuantumCircuit qc = small_basis_circuit();
  NoiseModel nm;
  nm.p1q = 0.02;
  nm.p2q = 0.05;  // heterogeneous rates
  const ErrorLocations locs(qc, nm);
  Pcg64 rng(6);
  // Empirical conditional mean must match E[K | K>=1] =
  // E[K] / (1 - P(K=0)) for Poisson-binomial K? No: E[K | K>=1] =
  // E[K] / P(K>=1) since K=0 contributes nothing to E[K].
  const double expected_mean =
      locs.expected_events() / (1.0 - locs.clean_probability());
  double total = 0.0;
  const int reps = 20000;
  for (int i = 0; i < reps; ++i) {
    const auto ev = locs.sample_at_least_one(rng);
    ASSERT_FALSE(ev.empty());
    ASSERT_TRUE(std::is_sorted(ev.begin(), ev.end(),
                               [](const ErrorEvent& a, const ErrorEvent& b) {
                                 return a.gate_index < b.gate_index;
                               }));
    total += static_cast<double>(ev.size());
  }
  EXPECT_NEAR(total / reps, expected_mean, 0.02 * expected_mean + 0.005);
}

TEST(ErrorLocations, PauliCodesInRange) {
  const QuantumCircuit qc = small_basis_circuit();
  NoiseModel nm;
  nm.p1q = 0.5;
  nm.p2q = 0.5;
  const ErrorLocations locs(qc, nm);
  Pcg64 rng(7);
  int two_qubit_events = 0;
  for (int i = 0; i < 500; ++i) {
    for (const ErrorEvent& ev : locs.sample(rng)) {
      const Gate& g = qc.gates()[ev.gate_index];
      if (g.arity() == 1) {
        EXPECT_NE(ev.pauli0, Pauli::kI);
        EXPECT_EQ(ev.pauli1, Pauli::kI);
      } else {
        EXPECT_TRUE(ev.pauli0 != Pauli::kI || ev.pauli1 != Pauli::kI);
        ++two_qubit_events;
      }
    }
  }
  EXPECT_GT(two_qubit_events, 0);
}

TEST(CleanRun, CheckpointReplayMatchesDirect) {
  const QuantumCircuit qc = small_basis_circuit();
  StateVector init(3);
  init.apply_gate(make_gate1(GateKind::kH, 2));  // non-trivial start
  const CleanRun clean(qc, init, /*checkpoint_interval=*/3);

  for (std::size_t g = 0; g <= qc.gates().size(); ++g) {
    StateVector direct = init;
    direct.apply_circuit_range(qc, 0, g);
    const StateVector via = clean.state_at(g);
    double d = 0.0;
    for (u64 i = 0; i < direct.dim(); ++i)
      d += std::norm(direct.amplitude(i) - via.amplitude(i));
    EXPECT_LT(std::sqrt(d), 1e-12) << "g=" << g;
  }
}

TEST(Trajectory, MatchesManualPauliInsertion) {
  const QuantumCircuit qc = small_basis_circuit();
  StateVector init(3);
  const CleanRun clean(qc, init, 4);

  // Two events: Y on gate 2's qubit, X⊗Z on a CX.
  std::size_t cx_index = 0;
  for (std::size_t i = 0; i < qc.gates().size(); ++i)
    if (qc.gates()[i].kind == GateKind::kCX) cx_index = i;
  std::vector<ErrorEvent> events;
  events.push_back({2, Pauli::kY, Pauli::kI});
  events.push_back({cx_index, Pauli::kX, Pauli::kZ});

  const StateVector via = run_trajectory(clean, events);

  StateVector manual = init;
  for (std::size_t i = 0; i < qc.gates().size(); ++i) {
    manual.apply_gate(qc.gates()[i]);
    for (const ErrorEvent& ev : events)
      if (ev.gate_index == i) {
        if (ev.pauli0 != Pauli::kI)
          manual.apply_pauli(ev.pauli0, qc.gates()[i].qubits[0]);
        if (ev.pauli1 != Pauli::kI)
          manual.apply_pauli(ev.pauli1, qc.gates()[i].qubits[1]);
      }
  }
  double d = 0.0;
  for (u64 i = 0; i < manual.dim(); ++i)
    d += std::norm(manual.amplitude(i) - via.amplitude(i));
  EXPECT_LT(std::sqrt(d), 1e-12);
}

TEST(Trajectory, NoEventsReturnsCleanFinal) {
  const QuantumCircuit qc = small_basis_circuit();
  const CleanRun clean(qc, StateVector(3), 4);
  const StateVector out = run_trajectory(clean, {});
  double d = 0.0;
  for (u64 i = 0; i < out.dim(); ++i)
    d += std::norm(out.amplitude(i) - clean.final_state().amplitude(i));
  EXPECT_LT(d, 1e-24);
}

TEST(Estimator, NoNoiseReturnsIdealExactly) {
  const QuantumCircuit qc = small_basis_circuit();
  const CleanRun clean(qc, StateVector(3), 8);
  const ErrorLocations locs(qc, NoiseModel{});
  Pcg64 rng(9);
  const auto est =
      estimate_channel_marginal(clean, locs, {0, 1, 2}, {4}, rng);
  const auto ideal = clean.ideal_marginal({0, 1, 2});
  for (std::size_t i = 0; i < est.size(); ++i)
    EXPECT_DOUBLE_EQ(est[i], ideal[i]);
}

TEST(Estimator, StratifiedAgreesWithPerShot) {
  // Cross-validation of the two modes on a real (small) QFA circuit.
  const QuantumCircuit qc = transpile_to_basis(make_qfa(3, 3, {}));
  StateVector init(6);
  init.set_basis_state(3 | (5 << 3));  // x=3, y=5
  const CleanRun clean(qc, init, 16);

  NoiseModel nm;
  nm.p2q = 0.03;
  const ErrorLocations locs(qc, nm);
  const std::vector<int> out_qubits = {3, 4, 5};

  Pcg64 rng1(11), rng2(12);
  const auto strat = estimate_channel_marginal(clean, locs, out_qubits,
                                               {600}, rng1);
  const std::uint64_t shots = 40000;
  const auto counts =
      sample_counts_per_shot(clean, locs, out_qubits, shots, rng2);

  double tv = 0.0;
  for (std::size_t i = 0; i < strat.size(); ++i)
    tv += std::abs(strat[i] -
                   static_cast<double>(counts[i]) / static_cast<double>(shots));
  EXPECT_LT(tv / 2.0, 0.02) << "total variation too large";
  // The ideal output (x+y = 0 mod 8) must dominate both.
  EXPECT_GT(strat[0], 0.55);
  EXPECT_GT(static_cast<double>(counts[0]) / static_cast<double>(shots),
            0.55);
}

TEST(Estimator, DistributionsAreNormalized) {
  const QuantumCircuit qc = transpile_to_basis(make_qfa(3, 3, {}));
  StateVector init(6);
  init.set_basis_state(1 | (2 << 3));
  const CleanRun clean(qc, init, 16);
  NoiseModel nm;
  nm.p1q = 0.01;
  const ErrorLocations locs(qc, nm);
  Pcg64 rng(13);
  const auto est = estimate_channel_marginal(clean, locs, {3, 4, 5}, {50},
                                             rng);
  double total = 0.0;
  for (double p : est) {
    EXPECT_GE(p, 0.0);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-9);
}

TEST(Estimator, ShotCountsSumToShots) {
  Pcg64 rng(14);
  const auto counts = sample_shot_counts({0.25, 0.25, 0.5}, 2048, rng);
  EXPECT_EQ(counts[0] + counts[1] + counts[2], 2048u);
}

}  // namespace
}  // namespace qfab
