#include <gtest/gtest.h>

#include <cmath>

#include "arith/expected.h"
#include "arith/qint.h"
#include "qfb/weighted_sum.h"
#include "sim/statevector.h"

namespace qfab {
namespace {

/// acc (width m) starts at acc0; terms are classical values on their own
/// registers. Returns the measured accumulator.
u64 run_weighted(const std::vector<std::pair<u64, int>>& operands,  // (value, bits)
                 const std::vector<std::int64_t>& weights, int m, u64 acc0) {
  QuantumCircuit qc(0);
  std::vector<WeightedTerm> terms;
  for (std::size_t k = 0; k < operands.size(); ++k) {
    const QubitRange r =
        qc.add_register("x" + std::to_string(k), operands[k].second);
    terms.push_back(WeightedTerm{range_qubits(r), weights[k]});
  }
  const QubitRange acc = qc.add_register("acc", m);
  append_weighted_sum(qc, terms, range_qubits(acc));

  StateVector sv(qc.num_qubits());
  u64 init = acc0 << acc.start;
  int offset = 0;
  for (const auto& [value, bits] : operands) {
    init |= value << offset;
    offset += bits;
  }
  sv.set_basis_state(init);
  sv.apply_circuit(qc);

  const auto marg = sv.marginal_probabilities(range_qubits(acc));
  u64 best = 0;
  for (u64 i = 1; i < marg.size(); ++i)
    if (marg[i] > marg[best]) best = i;
  EXPECT_NEAR(marg[best], 1.0, 1e-9);
  return best;
}

TEST(WeightedSum, SingleTermUnitWeightIsAddition) {
  for (u64 x = 0; x < 8; ++x)
    EXPECT_EQ(run_weighted({{x, 3}}, {1}, 4, 5), (5 + x) % 16);
}

TEST(WeightedSum, PositiveWeights) {
  // acc = 3*x + 2*y, x=5, y=6, acc0=0, m=6: 27.
  EXPECT_EQ(run_weighted({{5, 3}, {6, 3}}, {3, 2}, 6, 0), 27u);
}

TEST(WeightedSum, NegativeWeightSubtracts) {
  // acc = 10 + 2*3 - 1*4 = 12 (m=5).
  EXPECT_EQ(run_weighted({{3, 3}, {4, 3}}, {2, -1}, 5, 10), 12u);
  // Net negative wraps mod 2^m: 0 - 3*2 = -6 -> 32-6 = 26.
  EXPECT_EQ(run_weighted({{2, 3}}, {-3}, 5, 0), 26u);
}

TEST(WeightedSum, ZeroWeightIsIdentity) {
  EXPECT_EQ(run_weighted({{7, 3}}, {0}, 4, 9), 9u);
}

TEST(WeightedSum, LargeWeightWrapsModulo) {
  // weight 20 on m=4 accumulator: 20*3 = 60 ≡ 12 (mod 16).
  EXPECT_EQ(run_weighted({{3, 2}}, {20}, 4, 0), 12u);
}

TEST(WeightedSum, ExhaustiveTwoTermSweep) {
  for (u64 x = 0; x < 4; ++x)
    for (u64 y = 0; y < 4; ++y)
      EXPECT_EQ(run_weighted({{x, 2}, {y, 2}}, {3, 5}, 5, 1),
                (1 + 3 * x + 5 * y) % 32);
}

TEST(WeightedSum, SuperposedOperandSpreadsAccumulator) {
  // x = (|1> + |2>)/√2, weight 2, acc 4 bits starting 0:
  // acc ends in superposition of 2 and 4.
  QuantumCircuit qc(0);
  const QubitRange x = qc.add_register("x", 2);
  const QubitRange acc = qc.add_register("acc", 4);
  append_weighted_sum(qc, {WeightedTerm{range_qubits(x), 2}},
                      range_qubits(acc));
  StateVector sv = prepare_product_state(
      6, {{x, QInt::uniform(2, {1, 2})}, {acc, QInt::classical(4, 0)}});
  sv.apply_circuit(qc);
  const auto marg = sv.marginal_probabilities(range_qubits(acc));
  EXPECT_NEAR(marg[2], 0.5, 1e-9);
  EXPECT_NEAR(marg[4], 0.5, 1e-9);
}

TEST(WeightedSum, ExpectedWeightedSumsHelperAgrees) {
  const QInt a = QInt::uniform(3, {1, 2});
  const QInt b = QInt::classical(3, 3);
  const auto expected = expected_weighted_sums({{a, 2}, {b, -1}}, 0, 5);
  // 2*{1,2} - 3 = {-1, 1} -> {31, 1}.
  ASSERT_EQ(expected.size(), 2u);
  EXPECT_EQ(expected[0], 1u);
  EXPECT_EQ(expected[1], 31u);
}

}  // namespace
}  // namespace qfab
