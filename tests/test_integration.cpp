// Cross-module integration: the exact circuits the experiment harness
// simulates (transpiled, capped, basis-gate QFA/QFM) must compute correct
// arithmetic end-to-end, and the whole evaluation pipeline must be
// deterministic in its seeds.
#include <gtest/gtest.h>

#include <cmath>

#include "circuit/qasm.h"
#include "exp/sweep.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

double distribution_distance(const std::vector<double>& a,
                             const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) d += std::abs(a[i] - b[i]);
  return d;
}

TEST(Integration, TranspiledQfaMatchesAbstractOnSuperposedStates) {
  CircuitSpec spec;
  spec.n = 4;
  const QuantumCircuit abstract = build_arith_circuit(spec);
  const QuantumCircuit basis = build_transpiled_circuit(spec);
  Pcg64 gen(7);
  for (int rep = 0; rep < 4; ++rep) {
    const auto insts = generate_instances(1, 4, 4, {2, 2}, gen);
    StateVector a = make_initial_state(spec, insts[0]);
    StateVector b = a;
    a.apply_circuit(abstract);
    b.apply_circuit(basis);
    EXPECT_LT(distribution_distance(a.probabilities(), b.probabilities()),
              1e-9);
  }
}

TEST(Integration, ExperimentQfaCircuitExhaustivelyCorrect) {
  // The exact circuit the harness runs (including the paper's R_{n-1}
  // rotation cap) still computes every 4-bit modular sum exactly.
  CircuitSpec spec;
  spec.n = 4;
  const QuantumCircuit basis = build_transpiled_circuit(spec);
  for (u64 x = 0; x < 16; ++x)
    for (u64 y = 0; y < 16; ++y) {
      StateVector sv(8);
      sv.set_basis_state(x | (y << 4));
      sv.apply_circuit(basis);
      const auto marg = sv.marginal_probabilities({4, 5, 6, 7});
      u64 best = 0;
      for (u64 i = 1; i < 16; ++i)
        if (marg[i] > marg[best]) best = i;
      ASSERT_EQ(best, (x + y) % 16) << x << "+" << y;
      // The paper's rotation cap (drops R_n) costs a few percent of
      // amplitude at this small n but never flips the argmax.
      ASSERT_GT(marg[best], 0.90);
    }
}

TEST(Integration, ExperimentQfmCircuitExhaustivelyCorrect) {
  CircuitSpec spec;
  spec.op = Operation::kMultiply;
  spec.n = 2;
  const QuantumCircuit basis = build_transpiled_circuit(spec);
  for (u64 x = 0; x < 4; ++x)
    for (u64 y = 0; y < 4; ++y) {
      StateVector sv(8);
      sv.set_basis_state(x | (y << 2));
      sv.apply_circuit(basis);
      const auto marg = sv.marginal_probabilities({4, 5, 6, 7});
      u64 best = 0;
      for (u64 i = 1; i < 16; ++i)
        if (marg[i] > marg[best]) best = i;
      ASSERT_EQ(best, x * y);
      ASSERT_GT(marg[best], 0.99);
    }
}

TEST(Integration, EvaluationIsSeedDeterministic) {
  CircuitSpec spec;
  spec.n = 5;
  const QuantumCircuit circuit = build_transpiled_circuit(spec);
  Pcg64 gen(123);
  const auto insts = generate_instances(1, 5, 5, {2, 2}, gen);
  RunOptions run;
  run.shots = 512;
  run.error_trajectories = 6;
  NoiseModel nm;
  nm.p2q = 0.01;
  const InstanceContext ctx(circuit, spec, insts[0], run);
  Pcg64 r1(999), r2(999), r3(1000);
  const auto o1 = ctx.evaluate(nm, run, r1);
  const auto o2 = ctx.evaluate(nm, run, r2);
  EXPECT_EQ(o1.margin, o2.margin);
  EXPECT_EQ(o1.success, o2.success);
  // Different seed is allowed to differ (and usually does in margin).
  const auto o3 = ctx.evaluate(nm, run, r3);
  (void)o3;
}

TEST(Integration, ExperimentCircuitSurvivesQasmRoundTrip) {
  CircuitSpec spec;
  spec.n = 3;
  const QuantumCircuit basis = build_transpiled_circuit(spec);
  const QuantumCircuit back = from_qasm(to_qasm(basis));
  StateVector a(6), b(6);
  a.set_basis_state(3 | (5 << 3));
  b.set_basis_state(3 | (5 << 3));
  a.apply_circuit(basis);
  b.apply_circuit(back);
  EXPECT_LT(distribution_distance(a.probabilities(), b.probabilities()),
            1e-9);
}

TEST(Integration, DeeperAqftIsMoreAccurateOnAverage) {
  // Ideal (noise-free) correct-output mass averaged over random instances
  // must not decrease from d=1 to full depth.
  CircuitSpec shallow, full;
  shallow.n = full.n = 5;
  shallow.depth = 1;
  const QuantumCircuit c_shallow = build_transpiled_circuit(shallow);
  const QuantumCircuit c_full = build_transpiled_circuit(full);
  Pcg64 gen(5);
  const auto insts = generate_instances(6, 5, 5, {1, 1}, gen);
  double mass_shallow = 0.0, mass_full = 0.0;
  for (const auto& inst : insts) {
    const auto correct = correct_outputs(shallow, inst);
    StateVector a = make_initial_state(shallow, inst);
    StateVector b = a;
    a.apply_circuit(c_shallow);
    b.apply_circuit(c_full);
    const auto ma = a.marginal_probabilities(output_qubits(shallow));
    const auto mb = b.marginal_probabilities(output_qubits(full));
    for (u64 v : correct) {
      mass_shallow += ma[v];
      mass_full += mb[v];
    }
  }
  EXPECT_GT(mass_full, mass_shallow);
  // Not exactly 1: the experiment spec keeps the paper's R_{n-1} cap.
  EXPECT_GT(mass_full / 6.0, 0.99);
}

}  // namespace
}  // namespace qfab
