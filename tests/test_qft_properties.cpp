// Fourier-transform property tests: shift theorem, norm preservation,
// approximation-fidelity monotonicity in the AQFT depth, and the
// Barenco-style depth heuristic the paper leans on (optimal d ~ log2 n).
#include <gtest/gtest.h>

#include <cmath>
#include <numbers>

#include "qfb/adder.h"
#include "qfb/qft.h"
#include "sim/statevector.h"

namespace qfab {
namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

std::vector<int> all_qubits(int n) {
  std::vector<int> q(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) q[static_cast<std::size_t>(i)] = i;
  return q;
}

/// |<a|b>| for two state vectors.
double overlap(const StateVector& a, const StateVector& b) {
  cplx acc{0.0, 0.0};
  for (u64 i = 0; i < a.dim(); ++i)
    acc += std::conj(a.amplitude(i)) * b.amplitude(i);
  return std::abs(acc);
}

TEST(QftProperties, PreservesNormOnRandomStates) {
  Pcg64 rng(3);
  for (int n : {2, 4, 6}) {
    std::vector<cplx> amps(pow2(n));
    double norm = 0.0;
    for (cplx& a : amps) {
      a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
      norm += std::norm(a);
    }
    for (cplx& a : amps) a /= std::sqrt(norm);
    StateVector sv = StateVector::from_amplitudes(std::move(amps));
    sv.apply_circuit(make_qft(n));
    EXPECT_NEAR(sv.norm(), 1.0, 1e-10);
  }
}

TEST(QftProperties, ShiftTheorem) {
  // QFT|y+1 mod N> = D · QFT|y> where D multiplies Fourier qubit q by
  // e^{2πi/2^q} — exactly the constant-adder phase profile for +1.
  const int n = 4;
  const QuantumCircuit qft = make_qft(n);
  for (u64 y = 0; y < 16; ++y) {
    StateVector shifted(n);
    shifted.set_basis_state((y + 1) % 16);
    shifted.apply_circuit(qft);

    StateVector ramped(n);
    ramped.set_basis_state(y);
    ramped.apply_circuit(qft);
    QuantumCircuit ramp(n);
    append_phase_add_const(ramp, all_qubits(n), 1);
    ramped.apply_circuit(ramp);

    EXPECT_NEAR(overlap(shifted, ramped), 1.0, 1e-9) << "y=" << y;
  }
}

TEST(QftProperties, AqftFidelityIncreasesWithDepth) {
  // Fidelity of AQFT(d)|y> against QFT|y>, averaged over basis inputs,
  // must be non-decreasing in d and approach 1.
  const int n = 6;
  const QuantumCircuit full = make_qft(n);
  double prev = 0.0;
  for (int d = 0; d <= n - 1; ++d) {
    const QuantumCircuit approx = make_qft(n, d);
    double fid = 0.0;
    for (u64 y = 0; y < pow2(n); y += 5) {
      StateVector a(n), b(n);
      a.set_basis_state(y);
      b.set_basis_state(y);
      a.apply_circuit(approx);
      b.apply_circuit(full);
      fid += overlap(a, b);
    }
    EXPECT_GE(fid, prev - 1e-9) << "d=" << d;
    prev = fid;
  }
  const double samples = std::ceil(pow2(6) / 5.0);
  EXPECT_NEAR(prev / samples, 1.0, 1e-10);
}

TEST(QftProperties, AqftErrorScalesWithDroppedAngles) {
  // The per-state worst-case phase error of AQFT(d) is bounded by the sum
  // of dropped rotation angles: Σ over removed R_l of 2π/2^l. Check the
  // measured infidelity respects that bound.
  const int n = 6;
  const QuantumCircuit full = make_qft(n);
  for (int d = 1; d < n - 1; ++d) {
    const QuantumCircuit approx = make_qft(n, d);
    double dropped = 0.0;
    for (int q = 1; q <= n; ++q)
      for (int l = d + 2; l <= q; ++l) dropped += kTwoPi / std::ldexp(1.0, l);
    double worst = 0.0;
    for (u64 y = 0; y < pow2(n); ++y) {
      StateVector a(n), b(n);
      a.set_basis_state(y);
      b.set_basis_state(y);
      a.apply_circuit(approx);
      b.apply_circuit(full);
      worst = std::max(worst, 1.0 - overlap(a, b));
    }
    // 1 - |<ψ|φ>| <= total dropped phase (loose small-angle bound).
    EXPECT_LE(worst, dropped) << "d=" << d;
  }
}

TEST(QftProperties, DepthLogNKeepsAdditionReliable) {
  // The paper's heuristic: d ≈ log2 n suffices for arithmetic. At n = 8,
  // d = 3 must keep every classical sum's argmax correct with dominant
  // probability.
  const int n = 8;
  AdderOptions opt;
  opt.qft_depth = 3;
  const QuantumCircuit qc = make_qfa(n, n, opt);
  Pcg64 rng(77);
  for (int rep = 0; rep < 12; ++rep) {
    const u64 x = rng.uniform_int(256), y = rng.uniform_int(256);
    StateVector sv(2 * n);
    sv.set_basis_state(x | (y << n));
    sv.apply_circuit(qc);
    const auto marg = sv.marginal_probabilities(
        {8, 9, 10, 11, 12, 13, 14, 15});
    u64 best = 0;
    for (u64 i = 1; i < marg.size(); ++i)
      if (marg[i] > marg[best]) best = i;
    ASSERT_EQ(best, (x + y) % 256);
    EXPECT_GT(marg[best], 0.5);
  }
}

TEST(QftProperties, SwapsOnlyReorderProbabilities) {
  const int n = 4;
  const QuantumCircuit plain = make_qft(n, kFullDepth, false);
  const QuantumCircuit swapped = make_qft(n, kFullDepth, true);
  StateVector a(n), b(n);
  a.set_basis_state(11);
  b.set_basis_state(11);
  a.apply_circuit(plain);
  b.apply_circuit(swapped);
  const auto pa = a.probabilities();
  const auto pb = b.probabilities();
  for (u64 k = 0; k < pow2(n); ++k)
    EXPECT_NEAR(pa[k], pb[reverse_bits(k, n)], 1e-10);
}

}  // namespace
}  // namespace qfab
