#include <gtest/gtest.h>

#include <cmath>

#include "exp/metrics.h"

namespace qfab {
namespace {

TEST(Metrics, TotalVariationBasics) {
  EXPECT_DOUBLE_EQ(total_variation({0.5, 0.5}, {0.5, 0.5}), 0.0);
  EXPECT_DOUBLE_EQ(total_variation({1.0, 0.0}, {0.0, 1.0}), 1.0);
  EXPECT_NEAR(total_variation({0.7, 0.3}, {0.5, 0.5}), 0.2, 1e-12);
  EXPECT_THROW(total_variation({1.0}, {0.5, 0.5}), CheckError);
}

TEST(Metrics, HellingerFidelityBasics) {
  EXPECT_NEAR(hellinger_fidelity({0.5, 0.5}, {0.5, 0.5}), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(hellinger_fidelity({1.0, 0.0}, {0.0, 1.0}), 0.0);
  // (sqrt(0.5*1.0))^2 = 0.5 for {1,0} vs {0.5,0.5}.
  EXPECT_NEAR(hellinger_fidelity({1.0, 0.0}, {0.5, 0.5}), 0.5, 1e-12);
}

TEST(Metrics, HellingerSymmetricAndBounded) {
  const std::vector<double> p = {0.6, 0.3, 0.1, 0.0};
  const std::vector<double> q = {0.25, 0.25, 0.25, 0.25};
  EXPECT_DOUBLE_EQ(hellinger_fidelity(p, q), hellinger_fidelity(q, p));
  EXPECT_GT(hellinger_fidelity(p, q), 0.0);
  EXPECT_LT(hellinger_fidelity(p, q), 1.0);
}

TEST(Metrics, KlDivergence) {
  EXPECT_NEAR(kl_divergence({0.5, 0.5}, {0.5, 0.5}), 0.0, 1e-12);
  const double d = kl_divergence({0.75, 0.25}, {0.5, 0.5});
  EXPECT_NEAR(d, 0.75 * std::log(1.5) + 0.25 * std::log(0.5), 1e-12);
  // Support mismatch hits the sentinel.
  EXPECT_GE(kl_divergence({0.5, 0.5}, {1.0, 0.0}), 1e12);
  // Zero p bins are fine.
  EXPECT_NEAR(kl_divergence({0.0, 1.0}, {0.5, 0.5}), std::log(2.0), 1e-12);
}

TEST(Metrics, SuccessMass) {
  const std::vector<double> p = {0.1, 0.4, 0.3, 0.2};
  EXPECT_NEAR(success_mass(p, {1}), 0.4, 1e-12);
  EXPECT_NEAR(success_mass(p, {1, 3}), 0.6, 1e-12);
  EXPECT_THROW(success_mass(p, {5}), CheckError);
}

TEST(Metrics, NormalizeCounts) {
  const auto p = normalize_counts({2, 0, 6});
  EXPECT_NEAR(p[0], 0.25, 1e-12);
  EXPECT_NEAR(p[2], 0.75, 1e-12);
  EXPECT_THROW(normalize_counts({0, 0}), CheckError);
}

TEST(Metrics, PinskersInequalityHolds) {
  // TV² <= KL/2 for arbitrary distributions (sanity property sweep).
  const std::vector<std::vector<double>> dists = {
      {0.9, 0.1, 0.0, 0.0},
      {0.25, 0.25, 0.25, 0.25},
      {0.4, 0.3, 0.2, 0.1},
      {0.97, 0.01, 0.01, 0.01},
  };
  for (const auto& p : dists)
    for (const auto& q : dists) {
      if (kl_divergence(p, q) >= 1e12) continue;
      const double tv = total_variation(p, q);
      EXPECT_LE(tv * tv, kl_divergence(p, q) / 2.0 + 1e-12);
    }
}

}  // namespace
}  // namespace qfab
