// Transpiler validation: every decomposition and the peephole optimizer
// must preserve the circuit's unitary *exactly* (global phase included) —
// checked per gate kind and on random circuits.
#include <gtest/gtest.h>

#include <numbers>

#include "common/rng.h"
#include "linalg/gates.h"
#include "transpile/euler.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

constexpr double kPi = std::numbers::pi;

TEST(Euler, RoundTripsRandomUnitaries) {
  Pcg64 rng(42);
  for (int rep = 0; rep < 50; ++rep) {
    const double phase = rng.uniform() * 2 * kPi;
    const Matrix u = gates::U(rng.uniform() * kPi, rng.uniform() * 2 * kPi,
                              rng.uniform() * 2 * kPi) *
                     cplx{std::cos(phase), std::sin(phase)};
    // zyz_decompose self-checks; surviving the call is the assertion.
    const ZyzAngles a = zyz_decompose(u);
    (void)a;
  }
}

TEST(Euler, SpecialCases) {
  EXPECT_NO_THROW(zyz_decompose(gates::I()));
  EXPECT_NO_THROW(zyz_decompose(gates::X()));
  EXPECT_NO_THROW(zyz_decompose(gates::Z()));
  EXPECT_NO_THROW(zyz_decompose(gates::H()));
  const ZyzAngles h = zyz_decompose(gates::H());
  EXPECT_NEAR(h.gamma, kPi / 2, 1e-9);
  EXPECT_THROW(zyz_decompose(Matrix{{1.0, 0.0}, {0.0, 2.0}}), CheckError);
}

TEST(Basis, Classification) {
  EXPECT_TRUE(is_basis_gate(GateKind::kRZ));
  EXPECT_TRUE(is_basis_gate(GateKind::kCX));
  EXPECT_TRUE(is_basis_gate(GateKind::kId));
  EXPECT_FALSE(is_basis_gate(GateKind::kH));
  EXPECT_FALSE(is_basis_gate(GateKind::kCP));
}

// Every gate kind decomposes into basis gates with the identical unitary.
class DecomposeGate : public ::testing::TestWithParam<Gate> {};

TEST_P(DecomposeGate, UnitaryPreservedExactly) {
  const Gate g = GetParam();
  const int n = 3;
  QuantumCircuit original(n);
  original.append(g);

  QuantumCircuit basis(n);
  decompose_gate(g, basis);
  EXPECT_TRUE(is_basis_circuit(basis));
  EXPECT_TRUE(basis.to_unitary().approx_equal(original.to_unitary(), 1e-8))
      << g.to_string();
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, DecomposeGate,
    ::testing::Values(
        make_gate1(GateKind::kId, 0), make_gate1(GateKind::kX, 1),
        make_gate1(GateKind::kY, 2), make_gate1(GateKind::kZ, 0),
        make_gate1(GateKind::kH, 1), make_gate1(GateKind::kSX, 2),
        make_gate1(GateKind::kSXdg, 0), make_gate1(GateKind::kRZ, 1, 0.83),
        make_gate1(GateKind::kRY, 2, -1.7), make_gate1(GateKind::kRX, 0, 2.9),
        make_gate1(GateKind::kP, 1, 0.41),
        make_gate1(GateKind::kU, 2, 1.1, -0.3, 0.77),
        make_gate2(GateKind::kCX, 0, 2), make_gate2(GateKind::kCZ, 1, 0),
        make_gate2(GateKind::kCP, 2, 1, 1.23),
        make_gate2(GateKind::kCP, 0, 1, kPi),
        make_gate2(GateKind::kCH, 0, 2), make_gate2(GateKind::kSWAP, 1, 2),
        make_gate3(GateKind::kCCP, 0, 1, 2, 0.9),
        make_gate3(GateKind::kCCP, 2, 0, 1, kPi / 2),
        make_gate3(GateKind::kCCX, 1, 0, 2)),
    [](const ::testing::TestParamInfo<Gate>& info) {
      return gate_name(info.param.kind) + std::string("_") +
             std::to_string(info.index);
    });

TEST(Decompose, ControlledUnitaryArbitrary) {
  Pcg64 rng(5);
  for (int rep = 0; rep < 10; ++rep) {
    const Matrix u = gates::U(rng.uniform() * kPi, rng.uniform() * 2 * kPi,
                              rng.uniform() * 2 * kPi);
    QuantumCircuit qc(2);
    emit_controlled_unitary(u, 1, 0, qc);
    EXPECT_TRUE(is_basis_circuit(qc));
    const Matrix expected = embed_gate(gates::controlled(u), {0, 1}, 2);
    EXPECT_TRUE(qc.to_unitary().approx_equal(expected, 1e-8));
  }
}

QuantumCircuit random_circuit(int n, int gates, Pcg64& rng) {
  QuantumCircuit qc(n);
  for (int i = 0; i < gates; ++i) {
    const int q = static_cast<int>(rng.uniform_int(static_cast<u64>(n)));
    int r = static_cast<int>(rng.uniform_int(static_cast<u64>(n)));
    while (r == q) r = static_cast<int>(rng.uniform_int(static_cast<u64>(n)));
    int s = static_cast<int>(rng.uniform_int(static_cast<u64>(n)));
    while (s == q || s == r)
      s = static_cast<int>(rng.uniform_int(static_cast<u64>(n)));
    switch (rng.uniform_int(10)) {
      case 0: qc.h(q); break;
      case 1: qc.x(q); break;
      case 2: qc.rz(q, rng.uniform() * 6.28 - 3.14); break;
      case 3: qc.p(q, rng.uniform() * 6.28); break;
      case 4: qc.sx(q); break;
      case 5: qc.cx(q, r); break;
      case 6: qc.cp(q, r, rng.uniform() * 6.28); break;
      case 7: qc.ch(q, r); break;
      case 8: qc.ccp(q, r, s, rng.uniform() * 3.0); break;
      default: qc.swap(q, r); break;
    }
  }
  return qc;
}

TEST(Transpile, RandomCircuitsPreserveUnitary) {
  Pcg64 rng(101);
  for (int rep = 0; rep < 8; ++rep) {
    const QuantumCircuit qc = random_circuit(4, 25, rng);
    const TranspileReport report = transpile(qc);
    EXPECT_TRUE(is_basis_circuit(report.circuit));
    EXPECT_TRUE(
        report.circuit.to_unitary().approx_equal(qc.to_unitary(), 1e-7))
        << "rep " << rep;
  }
}

TEST(Transpile, OptimizationNeverIncreasesCounts) {
  Pcg64 rng(202);
  for (int rep = 0; rep < 5; ++rep) {
    const QuantumCircuit qc = random_circuit(4, 30, rng);
    const auto l0 = transpile(qc, {0});
    const auto l1 = transpile(qc, {1});
    EXPECT_LE(l1.counts.total(), l0.counts.total());
    EXPECT_LE(l1.counts.two_qubit, l0.counts.two_qubit);
  }
}

TEST(Optimize, MergesAdjacentRz) {
  QuantumCircuit qc(2);
  qc.rz(0, 0.3);
  qc.rz(0, 0.4);
  const OptimizeStats stats = optimize_basis_circuit(qc);
  EXPECT_EQ(stats.rz_merged, 1u);
  ASSERT_EQ(qc.gates().size(), 1u);
  EXPECT_NEAR(qc.gates()[0].params[0], 0.7, 1e-12);
}

TEST(Optimize, MergesRzAcrossCxControl) {
  QuantumCircuit qc(2);
  qc.rz(0, 0.3);
  qc.cx(0, 1);  // q0 is control: RZ commutes through
  qc.rz(0, 0.4);
  const QuantumCircuit before = qc;
  optimize_basis_circuit(qc);
  EXPECT_EQ(qc.counts().by_name.at("rz"), 1u);
  EXPECT_TRUE(qc.to_unitary().approx_equal(before.to_unitary(), 1e-10));
}

TEST(Optimize, DoesNotMergeRzAcrossCxTarget) {
  QuantumCircuit qc(2);
  qc.rz(1, 0.3);
  qc.cx(0, 1);  // q1 is target: blocks
  qc.rz(1, 0.4);
  optimize_basis_circuit(qc);
  EXPECT_EQ(qc.counts().by_name.at("rz"), 2u);
}

TEST(Optimize, DropsFullTurnsWithPhase) {
  QuantumCircuit qc(1);
  qc.rz(0, 2 * kPi);
  const QuantumCircuit before = qc;
  const OptimizeStats stats = optimize_basis_circuit(qc);
  EXPECT_EQ(stats.rz_removed, 1u);
  EXPECT_TRUE(qc.gates().empty());
  // RZ(2π) = -I: phase must be tracked.
  EXPECT_TRUE(qc.to_unitary().approx_equal(before.to_unitary(), 1e-10));
}

TEST(Optimize, CancelsCxPairs) {
  QuantumCircuit qc(3);
  qc.cx(0, 1);
  qc.rz(0, 0.5);   // on control: commutes
  qc.cx(2, 1);     // shared target: commutes
  qc.cx(0, 1);     // cancels with the first
  const QuantumCircuit before = qc;
  const OptimizeStats stats = optimize_basis_circuit(qc);
  EXPECT_EQ(stats.cx_cancelled, 2u);
  EXPECT_TRUE(qc.to_unitary().approx_equal(before.to_unitary(), 1e-10));
  EXPECT_EQ(qc.counts().two_qubit, 1u);
}

TEST(Optimize, DoesNotCancelBlockedCxPairs) {
  QuantumCircuit qc(2);
  qc.cx(0, 1);
  qc.sx(1);  // on target: blocks
  qc.cx(0, 1);
  optimize_basis_circuit(qc);
  EXPECT_EQ(qc.counts().two_qubit, 2u);
}

TEST(Optimize, FoldsSxPairsToX) {
  QuantumCircuit qc(1);
  qc.sx(0);
  qc.sx(0);
  const QuantumCircuit before = qc;
  optimize_basis_circuit(qc);
  ASSERT_EQ(qc.gates().size(), 1u);
  EXPECT_EQ(qc.gates()[0].kind, GateKind::kX);
  EXPECT_TRUE(qc.to_unitary().approx_equal(before.to_unitary(), 1e-10));
}

TEST(Optimize, FoldsXPairsToIdentity) {
  QuantumCircuit qc(1);
  qc.x(0);
  qc.x(0);
  optimize_basis_circuit(qc);
  EXPECT_TRUE(qc.gates().empty());
}

TEST(Optimize, RandomBasisCircuitsPreserved) {
  Pcg64 rng(303);
  for (int rep = 0; rep < 8; ++rep) {
    QuantumCircuit qc(3);
    for (int i = 0; i < 40; ++i) {
      const int q = static_cast<int>(rng.uniform_int(3));
      const int r = static_cast<int>((q + 1 + rng.uniform_int(2)) % 3);
      switch (rng.uniform_int(4)) {
        case 0: qc.rz(q, rng.uniform() * 12.0 - 6.0); break;
        case 1: qc.sx(q); break;
        case 2: qc.x(q); break;
        default: qc.cx(q, r); break;
      }
    }
    const QuantumCircuit before = qc;
    optimize_basis_circuit(qc);
    EXPECT_TRUE(qc.to_unitary().approx_equal(before.to_unitary(), 1e-8))
        << "rep " << rep;
  }
}

TEST(Transpile, ReportCountsMatchCircuit) {
  QuantumCircuit qc(2);
  qc.h(0);
  qc.cp(0, 1, 0.7);
  const TranspileReport report = transpile(qc);
  EXPECT_EQ(report.counts.total(), report.circuit.gates().size());
  EXPECT_EQ(report.counts.two_qubit, 2u);  // one CP -> two CX
}

}  // namespace
}  // namespace qfab
