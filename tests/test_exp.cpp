// Experiment-harness validation: the success metric, error bars, operand
// generation, circuit specs, and a tiny end-to-end sweep.
#include <gtest/gtest.h>

#include <set>
#include <sstream>

#include "exp/sweep.h"

namespace qfab {
namespace {

TEST(Success, CorrectDominatesIsSuccess) {
  //          0    1    2    3
  const std::vector<std::uint64_t> counts = {10, 1000, 5, 3};
  const auto out = evaluate_counts(counts, {1});
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.margin, 990);
}

TEST(Success, AnyIncorrectAboveAnyCorrectFails) {
  // Correct {1,2}: count(2)=5 < count(3)=8 -> fail even though 1 leads.
  const std::vector<std::uint64_t> counts = {0, 1000, 5, 8};
  const auto out = evaluate_counts(counts, {1, 2});
  EXPECT_FALSE(out.success);
  EXPECT_EQ(out.margin, -3);
}

TEST(Success, TiesCountAsSuccess) {
  const std::vector<std::uint64_t> counts = {7, 7, 0, 0};
  const auto out = evaluate_counts(counts, {0});
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.margin, 0);
}

TEST(Success, AllOutputsCorrect) {
  // No incorrect output at all: margin = min correct count - 0.
  const std::vector<std::uint64_t> counts = {3, 5};
  const auto out = evaluate_counts(counts, {0, 1});
  EXPECT_TRUE(out.success);
  EXPECT_EQ(out.margin, 3);
}

TEST(Success, CorrectOutputBeyondRangeThrows) {
  EXPECT_THROW(evaluate_counts({1, 2}, {5}), CheckError);
}

TEST(Success, AggregateStats) {
  std::vector<InstanceOutcome> outs;
  outs.push_back({true, 100});
  outs.push_back({true, 2});
  outs.push_back({false, -1});
  outs.push_back({false, -50});
  const PointStats s = aggregate_outcomes(outs);
  EXPECT_EQ(s.instances, 4);
  EXPECT_EQ(s.successes, 2);
  EXPECT_DOUBLE_EQ(s.success_rate, 0.5);
  // margins {100, 2, -1, -50}: mean 12.75, population sigma ≈ 54.44.
  EXPECT_NEAR(s.sigma, 54.44, 0.01);
  // lower: successes with margin < sigma -> {2} -> 1.
  EXPECT_EQ(s.lower_flips, 1);
  // upper: failures with margin > -sigma -> {-1, -50} -> both -> 2.
  EXPECT_EQ(s.upper_flips, 2);
}

TEST(Success, AggregateEmptyAndUniform) {
  EXPECT_EQ(aggregate_outcomes({}).instances, 0);
  std::vector<InstanceOutcome> outs(5, InstanceOutcome{true, 10});
  const PointStats s = aggregate_outcomes(outs);
  EXPECT_DOUBLE_EQ(s.success_rate, 1.0);
  EXPECT_DOUBLE_EQ(s.sigma, 0.0);
  EXPECT_EQ(s.lower_flips, 0);  // margin 10 < sigma 0 is false
}

TEST(Instances, CountOrdersAndDeterminism) {
  Pcg64 rng1(77), rng2(77);
  const auto a = generate_instances(20, 8, 8, {2, 2}, rng1);
  const auto b = generate_instances(20, 8, 8, {2, 2}, rng2);
  ASSERT_EQ(a.size(), 20u);
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x.order(), 2);
    EXPECT_EQ(a[i].y.order(), 2);
    EXPECT_EQ(a[i].x.support(), b[i].x.support());
    EXPECT_EQ(a[i].y.support(), b[i].y.support());
  }
}

TEST(Instances, MostlyUniquePairs) {
  Pcg64 rng(78);
  const auto insts = generate_instances(50, 8, 8, {1, 1}, rng);
  std::set<std::pair<u64, u64>> seen;
  for (const auto& inst : insts)
    seen.insert({inst.x.support()[0], inst.y.support()[0]});
  EXPECT_EQ(seen.size(), 50u);
}

TEST(Instances, TinySpaceAllowsRepeats) {
  Pcg64 rng(79);
  // 1-bit operands: only 4 distinct pairs; asking for 10 must not hang.
  const auto insts = generate_instances(10, 1, 1, {1, 1}, rng);
  EXPECT_EQ(insts.size(), 10u);
}

TEST(Spec, RotationCapDefaults) {
  CircuitSpec add;
  add.op = Operation::kAdd;
  add.n = 8;
  EXPECT_EQ(resolve_rotation_cap(add), 7);
  CircuitSpec mult;
  mult.op = Operation::kMultiply;
  mult.n = 4;
  EXPECT_EQ(resolve_rotation_cap(mult), 0);
  add.max_rotation_order = 0;
  EXPECT_EQ(resolve_rotation_cap(add), 0);  // explicit override
}

TEST(Spec, OutputQubitsAndBits) {
  CircuitSpec add;
  add.n = 8;
  EXPECT_EQ(output_bits(add), 8);
  EXPECT_EQ(output_qubits(add).front(), 8);
  EXPECT_EQ(output_qubits(add).back(), 15);
  CircuitSpec mult;
  mult.op = Operation::kMultiply;
  mult.n = 4;
  EXPECT_EQ(output_bits(mult), 8);
  EXPECT_EQ(output_qubits(mult).front(), 8);
  EXPECT_EQ(output_qubits(mult).back(), 15);
}

TEST(Spec, CorrectOutputsMatchOperation) {
  CircuitSpec add;
  add.n = 4;
  const ArithInstance inst{QInt::classical(4, 9), QInt::classical(4, 12)};
  EXPECT_EQ(correct_outputs(add, inst), std::vector<u64>{(9 + 12) % 16});
  CircuitSpec mult;
  mult.op = Operation::kMultiply;
  mult.n = 4;
  EXPECT_EQ(correct_outputs(mult, inst), std::vector<u64>{9 * 12});
}

TEST(Spec, InitialStateLayout) {
  CircuitSpec mult;
  mult.op = Operation::kMultiply;
  mult.n = 2;
  const ArithInstance inst{QInt::classical(2, 3), QInt::classical(2, 2)};
  const StateVector sv = make_initial_state(mult, inst);
  EXPECT_EQ(sv.num_qubits(), 8);
  EXPECT_NEAR(std::norm(sv.amplitude(3 | (2 << 2))), 1.0, 1e-12);
}

TEST(Context, NoiselessExactAdditionAlwaysSucceeds) {
  CircuitSpec spec;
  spec.n = 4;
  const QuantumCircuit circuit = build_transpiled_circuit(spec);
  RunOptions run;
  run.shots = 256;
  Pcg64 rng(5);
  for (int rep = 0; rep < 5; ++rep) {
    Pcg64 gen(100 + static_cast<std::uint64_t>(rep));
    const auto insts = generate_instances(1, 4, 4, {1, 2}, gen);
    const InstanceContext ctx(circuit, spec, insts[0], run);
    const InstanceOutcome out = ctx.evaluate(NoiseModel{}, run, rng);
    EXPECT_TRUE(out.success);
    EXPECT_GT(out.margin, 0);
  }
}

TEST(Context, HeavyNoiseDegradesSuccess) {
  CircuitSpec spec;
  spec.n = 4;
  const QuantumCircuit circuit = build_transpiled_circuit(spec);
  RunOptions run;
  run.shots = 256;
  run.error_trajectories = 8;
  NoiseModel heavy;
  heavy.p2q = 0.2;  // absurdly noisy
  Pcg64 gen(200);
  const auto insts = generate_instances(8, 4, 4, {2, 2}, gen);
  int successes = 0;
  for (const auto& inst : insts) {
    const InstanceContext ctx(circuit, spec, inst, run);
    Pcg64 rng(300);
    successes += ctx.evaluate(heavy, run, rng).success;
  }
  EXPECT_LT(successes, 6);
}

TEST(Sweep, EndToEndTinyAndDeterministic) {
  SweepConfig cfg;
  cfg.base.op = Operation::kAdd;
  cfg.base.n = 3;
  cfg.depths = {1, kFullDepth};
  cfg.rates_percent = {5.0};
  cfg.vary_2q = true;
  cfg.orders = {1, 1};
  cfg.instances = 4;
  cfg.run.shots = 128;
  cfg.run.error_trajectories = 4;
  cfg.seed = 42;

  Pcg64 gen1(cfg.seed), gen2(cfg.seed);
  const auto insts1 = generate_instances(cfg.instances, 3, 3, cfg.orders, gen1);
  const auto insts2 = generate_instances(cfg.instances, 3, 3, cfg.orders, gen2);
  const SweepResult r1 = run_sweep(cfg, insts1);
  const SweepResult r2 = run_sweep(cfg, insts2);

  // depths × (noise-free + 1 rate) = 4 points.
  ASSERT_EQ(r1.points.size(), 4u);
  for (std::size_t i = 0; i < r1.points.size(); ++i) {
    EXPECT_EQ(r1.points[i].stats.successes, r2.points[i].stats.successes);
    EXPECT_EQ(r1.points[i].stats.instances, 4);
  }
  // Noise-free full-depth addition is exact.
  EXPECT_DOUBLE_EQ(r1.at(kFullDepth, 0.0).stats.success_rate, 1.0);

  // Table renders without throwing and has one row per rate cluster.
  const TextTable table = sweep_table(r1);
  EXPECT_EQ(table.rows(), 2u);
  std::ostringstream os;
  print_sweep(os, r1, "tiny panel");
  EXPECT_NE(os.str().find("noise-free"), std::string::npos);
  EXPECT_NE(os.str().find("d=full"), std::string::npos);
}


TEST(Spec, MeasureAllChangesOutputLayout) {
  CircuitSpec add;
  add.n = 4;
  add.measure_all = true;
  EXPECT_EQ(output_bits(add), 8);
  EXPECT_EQ(output_qubits(add).front(), 0);
  EXPECT_EQ(output_qubits(add).back(), 7);
  CircuitSpec mult;
  mult.op = Operation::kMultiply;
  mult.n = 2;
  mult.measure_all = true;
  EXPECT_EQ(output_bits(mult), 8);
}

TEST(Spec, MeasureAllCorrectOutputsJoinOperands) {
  CircuitSpec add;
  add.n = 3;
  add.measure_all = true;
  const ArithInstance inst{QInt::uniform(3, {1, 2}), QInt::classical(3, 6)};
  // Joint outcomes: (x=1, y=7) and (x=2, y=0): 1 | 7<<3 = 57, 2 | 0<<3 = 2.
  EXPECT_EQ(correct_outputs(add, inst), (std::vector<u64>{2, 57}));

  CircuitSpec mult;
  mult.op = Operation::kMultiply;
  mult.n = 2;
  mult.measure_all = true;
  const ArithInstance mi{QInt::classical(2, 3), QInt::classical(2, 2)};
  // x=3, y=2, z=6: 3 | 2<<2 | 6<<4 = 3 + 8 + 96 = 107.
  EXPECT_EQ(correct_outputs(mult, mi), std::vector<u64>{107});
}

TEST(Context, MeasureAllNoiselessStillSucceeds) {
  CircuitSpec spec;
  spec.n = 3;
  spec.measure_all = true;
  const QuantumCircuit circuit = build_transpiled_circuit(spec);
  RunOptions run;
  run.shots = 256;
  Pcg64 gen(55);
  const auto insts = generate_instances(4, 3, 3, {2, 1}, gen);
  for (const auto& inst : insts) {
    const InstanceContext ctx(circuit, spec, inst, run);
    Pcg64 rng(66);
    EXPECT_TRUE(ctx.evaluate(NoiseModel{}, run, rng).success);
  }
}

TEST(Sweep, CsvRoundTripShape) {
  SweepConfig cfg;
  cfg.base.n = 3;
  cfg.depths = {kFullDepth};
  cfg.rates_percent = {};
  cfg.include_noise_free = true;
  cfg.instances = 2;
  cfg.run.shots = 64;
  Pcg64 gen(1);
  const auto insts = generate_instances(2, 3, 3, {1, 1}, gen);
  const SweepResult r = run_sweep(cfg, insts);
  ASSERT_EQ(r.points.size(), 1u);
  EXPECT_EQ(r.points[0].rate_percent, 0.0);
  EXPECT_EQ(r.points[0].stats.instances, 2);
}

TEST(Sweep, PerShotModeMatchesStratifiedAtZeroNoise) {
  SweepConfig cfg;
  cfg.base.n = 3;
  cfg.depths = {kFullDepth};
  cfg.rates_percent = {};
  cfg.instances = 3;
  cfg.run.shots = 128;
  Pcg64 g1(9), g2(9);
  const auto i1 = generate_instances(3, 3, 3, {1, 1}, g1);
  const auto i2 = generate_instances(3, 3, 3, {1, 1}, g2);
  SweepConfig per_shot = cfg;
  per_shot.run.per_shot = true;
  const SweepResult a = run_sweep(cfg, i1);
  const SweepResult b = run_sweep(per_shot, i2);
  // Noise-free evaluation ignores per_shot (no errors to unravel).
  EXPECT_EQ(a.points[0].stats.successes, b.points[0].stats.successes);
}

TEST(Sweep, DepthLabel) {
  EXPECT_EQ(depth_label(kFullDepth), "full");
  EXPECT_EQ(depth_label(3), "3");
}

}  // namespace
}  // namespace qfab
