// Channel-level property tests: composition laws of the depolarizing
// channel, unitality, contraction of distances, and estimator statistics —
// checked against the exact density-matrix backend.
#include <gtest/gtest.h>

#include <cmath>

#include "noise/densitymatrix.h"
#include "noise/estimator.h"
#include "qfb/qft.h"
#include "transpile/transpile.h"

namespace qfab {
namespace {

DensityMatrix random_pure(int n, Pcg64& rng) {
  std::vector<cplx> amps(pow2(n));
  double norm = 0.0;
  for (cplx& a : amps) {
    a = cplx{rng.uniform() - 0.5, rng.uniform() - 0.5};
    norm += std::norm(a);
  }
  for (cplx& a : amps) a /= std::sqrt(norm);
  return DensityMatrix::from_statevector(
      StateVector::from_amplitudes(std::move(amps)));
}

double frob_distance(const DensityMatrix& a, const DensityMatrix& b) {
  double d = 0.0;
  for (u64 r = 0; r < a.dim(); ++r)
    for (u64 c = 0; c < a.dim(); ++c) d += std::norm(a.at(r, c) - b.at(r, c));
  return std::sqrt(d);
}

TEST(ChannelProperties, DepolarizingComposition) {
  // Two depolarizing channels compose to one: the Bloch contraction
  // factors multiply, (1-p1)(1-p2) = 1-p12 -> p12 = p1 + p2 - p1 p2.
  Pcg64 rng(8);
  const double p1 = 0.15, p2 = 0.3;
  const double p12 = p1 + p2 - p1 * p2;
  for (int rep = 0; rep < 4; ++rep) {
    DensityMatrix a = random_pure(2, rng);
    DensityMatrix b = a;
    a.apply_depolarizing1(0, p1);
    a.apply_depolarizing1(0, p2);
    b.apply_depolarizing1(0, p12);
    EXPECT_LT(frob_distance(a, b), 1e-10);
  }
}

TEST(ChannelProperties, DepolarizingIsUnital) {
  // The maximally mixed state is a fixed point.
  DensityMatrix dm(2);
  // Build I/4 by fully depolarizing both qubits.
  dm.apply_depolarizing1(0, 1.0);
  dm.apply_depolarizing1(1, 1.0);
  DensityMatrix before = dm;
  dm.apply_depolarizing2(0, 1, 0.37);
  EXPECT_LT(frob_distance(dm, before), 1e-10);
  EXPECT_NEAR(dm.purity(), 0.25, 1e-10);
}

TEST(ChannelProperties, NoiseContractsPurityMonotonically) {
  Pcg64 rng(9);
  DensityMatrix dm = random_pure(3, rng);
  double prev = dm.purity();
  for (int step = 0; step < 5; ++step) {
    dm.apply_depolarizing2(0, 2, 0.1);
    dm.apply_depolarizing1(1, 0.05);
    const double now = dm.purity();
    EXPECT_LT(now, prev + 1e-12);
    prev = now;
  }
  EXPECT_GT(prev, 1.0 / 8.0 - 1e-12);  // never below maximally mixed
}

TEST(ChannelProperties, PauliChannelCommutesWithZRotations) {
  // A Z-only Pauli channel commutes with RZ evolution.
  DensityMatrix a(1), b(1);
  a.apply_gate(make_gate1(GateKind::kH, 0));
  b.apply_gate(make_gate1(GateKind::kH, 0));
  const PauliProbs dephase{0.0, 0.0, 0.2};
  const Gate rz = make_gate1(GateKind::kRZ, 0, 0.7);
  a.apply_pauli_channel(0, dephase);
  a.apply_gate(rz);
  b.apply_gate(rz);
  b.apply_pauli_channel(0, dephase);
  EXPECT_LT(frob_distance(a, b), 1e-12);
}

TEST(EstimatorStatistics, CleanWeightMatchesEmpiricalCleanFraction) {
  const QuantumCircuit qc = transpile_to_basis(make_qft(3, kFullDepth));
  NoiseModel nm;
  nm.p1q = 0.02;
  nm.p2q = 0.01;
  const ErrorLocations locs(qc, nm);
  Pcg64 rng(10);
  int clean = 0;
  const int reps = 30000;
  for (int i = 0; i < reps; ++i) clean += locs.sample(rng).empty();
  EXPECT_NEAR(static_cast<double>(clean) / reps, locs.clean_probability(),
              0.01);
}

TEST(EstimatorStatistics, EventPositionsAreUniformWhenHomogeneous) {
  // With a single gate type noisy at one rate, error positions
  // (conditional on exactly one event) are uniform over noisy locations.
  QuantumCircuit qc(2);
  for (int i = 0; i < 10; ++i) qc.cx(0, 1);
  NoiseModel nm;
  nm.p2q = 0.01;
  const ErrorLocations locs(qc, nm);
  Pcg64 rng(11);
  std::vector<int> hist(10, 0);
  int singles = 0;
  while (singles < 8000) {
    const auto ev = locs.sample_at_least_one(rng);
    if (ev.size() != 1) continue;
    ++hist[static_cast<int>(ev[0].gate_index)];
    ++singles;
  }
  for (int h : hist) EXPECT_NEAR(h, 800, 120);
}

TEST(EstimatorStatistics, TwoQubitPaulisAreUniform) {
  QuantumCircuit qc(2);
  qc.cx(0, 1);
  NoiseModel nm;
  nm.p2q = 0.9;
  const ErrorLocations locs(qc, nm);
  Pcg64 rng(12);
  std::vector<int> hist(16, 0);
  int events = 0;
  for (int i = 0; i < 60000 && events < 30000; ++i)
    for (const ErrorEvent& ev : locs.sample(rng)) {
      const int code = static_cast<int>(ev.pauli0) |
                       (static_cast<int>(ev.pauli1) << 2);
      ++hist[code];
      ++events;
    }
  EXPECT_EQ(hist[0], 0);  // no identity "errors"
  for (int c = 1; c < 16; ++c)
    EXPECT_NEAR(hist[c], events / 15.0, 5.0 * std::sqrt(events / 15.0));
}

TEST(EstimatorStatistics, StratifiedEstimateIsUnbiasedOverSeeds) {
  // Averaging many independent stratified estimates converges to the
  // exact channel marginal (unbiasedness, not just convergence in T).
  const QuantumCircuit qc = transpile_to_basis(make_qft(2, kFullDepth));
  NoiseModel nm;
  nm.p1q = 0.05;
  StateVector init(2);
  init.set_basis_state(1);
  DensityMatrix dm = DensityMatrix::from_statevector(init);
  dm.apply_noisy_circuit(qc, nm);
  const auto exact = dm.marginal_probabilities({0, 1});

  const CleanRun clean(qc, init, 8);
  const ErrorLocations locs(qc, nm);
  std::vector<double> mean(4, 0.0);
  const int seeds = 300;
  for (int s = 0; s < seeds; ++s) {
    Pcg64 rng(1000 + static_cast<std::uint64_t>(s));
    const auto est =
        estimate_channel_marginal(clean, locs, {0, 1}, {3}, rng);
    for (int i = 0; i < 4; ++i) mean[static_cast<std::size_t>(i)] += est[static_cast<std::size_t>(i)];
  }
  for (int i = 0; i < 4; ++i)
    EXPECT_NEAR(mean[static_cast<std::size_t>(i)] / seeds, exact[static_cast<std::size_t>(i)], 0.01);
}

}  // namespace
}  // namespace qfab
