// QFM correctness: exhaustive classical products for both constructions,
// accumulation semantics, superposed operands, and approximation behavior.
#include <gtest/gtest.h>

#include <cmath>

#include "arith/qint.h"
#include "qfb/multiplier.h"
#include "sim/statevector.h"

namespace qfab {
namespace {

u64 run_classical_mult(int n, int m, u64 x, u64 y, u64 z0, bool fused,
                       const MultiplierOptions& opt = {}) {
  const QuantumCircuit qc = make_qfm(n, m, opt, fused);
  StateVector sv(2 * (n + m));
  sv.set_basis_state(x | (y << n) | (z0 << (n + m)));
  sv.apply_circuit(qc);
  const auto probs = sv.probabilities();
  u64 best = 0;
  double best_p = -1.0;
  for (u64 i = 0; i < probs.size(); ++i)
    if (probs[i] > best_p) {
      best_p = probs[i];
      best = i;
    }
  EXPECT_NEAR(best_p, 1.0, 1e-8) << "state not classical";
  EXPECT_EQ(best & (pow2(n) - 1), x) << "x modified";
  EXPECT_EQ((best >> n) & (pow2(m) - 1), y) << "y modified";
  return best >> (n + m);
}

class MultExhaustive : public ::testing::TestWithParam<bool> {};

TEST_P(MultExhaustive, TwoBitAllPairs) {
  const bool fused = GetParam();
  for (u64 x = 0; x < 4; ++x)
    for (u64 y = 0; y < 4; ++y)
      EXPECT_EQ(run_classical_mult(2, 2, x, y, 0, fused), x * y)
          << x << "*" << y;
}

TEST_P(MultExhaustive, ThreeBitAllPairs) {
  const bool fused = GetParam();
  for (u64 x = 0; x < 8; ++x)
    for (u64 y = 0; y < 8; ++y)
      EXPECT_EQ(run_classical_mult(3, 3, x, y, 0, fused), x * y);
}

TEST_P(MultExhaustive, MixedWidths) {
  const bool fused = GetParam();
  for (u64 x = 0; x < 4; ++x)      // n=2
    for (u64 y = 0; y < 8; ++y)    // m=3
      EXPECT_EQ(run_classical_mult(2, 3, x, y, 0, fused), x * y);
}

INSTANTIATE_TEST_SUITE_P(Constructions, MultExhaustive,
                         ::testing::Values(false, true),
                         [](const ::testing::TestParamInfo<bool>& info) {
                           return info.param ? "fused" : "cascade";
                         });

TEST(Multiplier, FusedAccumulatesIntoArbitraryZ) {
  // The fused (single-QFT) form is a true accumulator: exhaustive over all
  // nonzero starting z.
  for (u64 x = 0; x < 4; ++x)
    for (u64 y = 0; y < 4; ++y)
      for (u64 z0 = 0; z0 < 16; z0 += 3)
        EXPECT_EQ(run_classical_mult(2, 2, x, y, z0, true),
                  (z0 + x * y) % 16);
}

TEST(Multiplier, CascadeRequiresZeroedProductRegister) {
  // The paper's cQFA cascade adds y into sliding (m+1)-qubit windows; a
  // carry out of an *interior* window is silently dropped, so the cascade
  // is only exact when the no-overflow invariant holds — guaranteed from
  // z = 0 (partial sums stay below the window top), not for arbitrary z.
  // Witness: z=7, x=1, y=1 should give 8 but the step-1 window [0,3)
  // wraps 7+1 to 0.
  EXPECT_EQ(run_classical_mult(2, 2, 1, 1, 7, false), 0u);
  EXPECT_EQ(run_classical_mult(2, 2, 1, 1, 7, true), 8u);
}

TEST(Multiplier, FusedAndCascadeAgreeFromZeroedZ) {
  // With z = 0 (the paper's configuration) the constructions agree on
  // superposed x/y inputs, including output phases up to global phase.
  const int n = 2, m = 2;
  const QuantumCircuit a = make_qfm(n, m, {}, false);
  const QuantumCircuit b = make_qfm(n, m, {}, true);
  const QInt qx = QInt::uniform(n, {0, 1, 2, 3});
  const QInt qy = QInt::uniform(m, {1, 2, 3});
  StateVector sa = prepare_product_state(
      2 * (n + m), {{QubitRange{0, n}, qx}, {QubitRange{n, m}, qy}});
  StateVector sb = sa;
  sa.apply_circuit(a);
  sb.apply_circuit(b);
  const auto pa = sa.probabilities();
  const auto pb = sb.probabilities();
  double d = 0.0;
  for (std::size_t i = 0; i < pa.size(); ++i) d += std::abs(pa[i] - pb[i]);
  EXPECT_LT(d, 1e-8);
}

TEST(Multiplier, SuperposedOperandsGiveAllProducts) {
  const int n = 2, m = 2;
  const QuantumCircuit qc = make_qfm(n, m, {});
  const QInt x = QInt::uniform(n, {1, 3});
  const QInt y = QInt::uniform(m, {2, 3});
  StateVector sv = prepare_product_state(
      2 * (n + m), {{QubitRange{0, n}, x}, {QubitRange{n, m}, y}});
  sv.apply_circuit(qc);
  const auto marg = sv.marginal_probabilities({4, 5, 6, 7});
  // Products: 2, 3, 6, 9 — all distinct, each with probability 1/4.
  for (u64 p : {2, 3, 6, 9}) EXPECT_NEAR(marg[p], 0.25, 1e-9) << p;
  EXPECT_NEAR(marg[0], 0.0, 1e-12);
}

TEST(Multiplier, CascadeUsesOnlyControlledAlphabet) {
  const QuantumCircuit qc = make_qfm(2, 2, {});
  for (const Gate& g : qc.gates()) {
    const bool ok = g.kind == GateKind::kCH || g.kind == GateKind::kCCP ||
                    g.kind == GateKind::kCP || g.kind == GateKind::kP;
    EXPECT_TRUE(ok) << g.to_string();
  }
}

TEST(Multiplier, GateCountsGrowWithDepth) {
  MultiplierOptions d1, d2;
  d1.qft_depth = 1;
  d2.qft_depth = 2;
  const auto c1 = make_qfm(4, 4, d1).counts();
  const auto c2 = make_qfm(4, 4, d2).counts();
  const auto cf = make_qfm(4, 4, {}).counts();
  EXPECT_LT(c1.total(), c2.total());
  EXPECT_LT(c2.total(), cf.total());
  // Depth step adds 3 CCPs per cQFT: 8 cQFT/icQFT blocks -> 24.
  EXPECT_EQ(c2.by_name.at("ccp") - c1.by_name.at("ccp"), 24u);
}

TEST(Multiplier, WindowStructure) {
  // The paper's cascade: window cQFT of m+1 qubits, full depth m.
  // ccp count per cQFA = 2*qft_rotation_count(m+1, full) + cadd(14 for
  // m=4); total for n=4: 4 * (2*10 + 14) = 136.
  const auto counts = make_qfm(4, 4, {}).counts();
  EXPECT_EQ(counts.by_name.at("ccp"), 136u);
  EXPECT_EQ(counts.by_name.at("ch"), 40u);  // 5 qubits * 2 * 4 cQFAs
}

TEST(Multiplier, RejectsWrongProductWidth) {
  QuantumCircuit qc(7);
  EXPECT_THROW(append_qfm(qc, {0, 1}, {2, 3}, {4, 5, 6}), CheckError);
}

TEST(Multiplier, ApproximateDepthOneStillOftenCorrectAtTinySizes) {
  // With n=m=2 windows are 3 qubits; depth 1 truncates one rotation per
  // cQFT. The result is not guaranteed exact — this documents behavior:
  // measure argmax and count how many of the 16 products survive.
  MultiplierOptions opt;
  opt.qft_depth = 1;
  int correct = 0;
  for (u64 x = 0; x < 4; ++x)
    for (u64 y = 0; y < 4; ++y) {
      const QuantumCircuit qc = make_qfm(2, 2, opt);
      StateVector sv(8);
      sv.set_basis_state(x | (y << 2));
      sv.apply_circuit(qc);
      const auto marg = sv.marginal_probabilities({4, 5, 6, 7});
      u64 best = 0;
      for (u64 i = 1; i < 16; ++i)
        if (marg[i] > marg[best]) best = i;
      correct += (best == x * y);
    }
  EXPECT_GE(correct, 10);  // most survive; the paper sees d=1 degrade
  EXPECT_LE(correct, 16);
}


TEST(Squarer, ExhaustiveAccumulate) {
  // z += x^2 mod 2^m for all x and several starting z.
  const int n = 3, m = 6;
  QuantumCircuit qc(n + m);
  std::vector<int> x = {0, 1, 2}, z;
  for (int i = n; i < n + m; ++i) z.push_back(i);
  append_square_accumulate(qc, x, z);
  for (u64 xv = 0; xv < 8; ++xv)
    for (u64 z0 = 0; z0 < 64; z0 += 13) {
      StateVector sv(n + m);
      sv.set_basis_state(xv | (z0 << n));
      sv.apply_circuit(qc);
      const auto probs = sv.probabilities();
      u64 best = 0;
      for (u64 i = 1; i < probs.size(); ++i)
        if (probs[i] > probs[best]) best = i;
      EXPECT_NEAR(probs[best], 1.0, 1e-9);
      EXPECT_EQ(best & 7u, xv);
      EXPECT_EQ(best >> n, (z0 + xv * xv) % 64) << "x=" << xv << " z0=" << z0;
    }
}

TEST(Squarer, ModularWrapWithNarrowRegister) {
  // |z| = n: squares wrap mod 2^n.
  const int n = 3;
  QuantumCircuit qc(2 * n);
  append_square_accumulate(qc, {0, 1, 2}, {3, 4, 5});
  for (u64 xv = 0; xv < 8; ++xv) {
    StateVector sv(2 * n);
    sv.set_basis_state(xv);
    sv.apply_circuit(qc);
    const auto marg = sv.marginal_probabilities({3, 4, 5});
    u64 best = 0;
    for (u64 i = 1; i < marg.size(); ++i)
      if (marg[i] > marg[best]) best = i;
    EXPECT_EQ(best, (xv * xv) % 8);
  }
}

TEST(Squarer, SuperposedInput) {
  // x = (|1> + |3>)/sqrt(2): z holds 1 and 9 with equal weight.
  const int n = 2, m = 4;
  QuantumCircuit qc(n + m);
  std::vector<int> z = {2, 3, 4, 5};
  append_square_accumulate(qc, {0, 1}, z);
  StateVector sv = prepare_product_state(
      n + m, {{QubitRange{0, n}, QInt::uniform(n, {1, 3})}});
  sv.apply_circuit(qc);
  const auto marg = sv.marginal_probabilities(z);
  EXPECT_NEAR(marg[1], 0.5, 1e-9);
  EXPECT_NEAR(marg[9], 0.5, 1e-9);
}

}  // namespace
}  // namespace qfab
