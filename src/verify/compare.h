// Distribution comparators for the differential verifier.
#pragma once

#include <string>
#include <vector>

#include "verify/engines.h"

namespace qfab::verify {

/// max_i |a[i] - b[i]|; infinity when sizes differ.
double max_abs_diff(const std::vector<double>& a, const std::vector<double>& b);

/// Total variation distance (1/2) * sum_i |a[i] - b[i]|.
double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b);

/// Pairwise agreement over the engine matrix: every pair of results must
/// match on the full distribution and on the subset marginal to `tol`, and
/// no result may carry an invariant violation. Returns "" or the first
/// failure, named by the engine pair.
std::string compare_engine_results(const std::vector<EngineResult>& results,
                                   double tol);

}  // namespace qfab::verify
