// The differential engine matrix.
//
// Every case runs through each way this repo can produce an output
// distribution:
//
//   statevector    gate-by-gate reference kernels (norm checked per gate)
//   transpiled     transpile_to_basis(circuit) on the same reference path
//                  (the transpiler is unitary-preserving, so the
//                  distribution must survive decomposition + peephole)
//   fused          FusedPlan::apply (cost-gated fusion + cache blocking)
//   fused-split    FusedPlan::apply_range around the case's split site,
//                  second half through a lazily compiled subrange_plan —
//                  the trajectory machinery's mid-op split protocol
//   batched        BatchedStateVector at the case's lane count, split at
//                  the same site, with an X·X identity probe on one lane
//                  exercising per-lane divergence
//   density        exact DensityMatrix evolution (trace and purity checked)
//
// plus a noisy leg: the depolarizing channel applied exactly by the
// density matrix versus the scalar and batched stratified trajectory
// estimators (scalar vs batched compared at replay-rounding tolerance,
// either vs exact at a statistical tolerance).
//
// All pure engines must agree pairwise on the full distribution and on a
// qubit-subset marginal to `tol`; every engine's invariants (norm per
// segment, probability simplex, trace) are checked as it runs.
#pragma once

#include <string>
#include <vector>

#include "verify/generator.h"

namespace qfab::verify {

struct EngineOptions {
  /// Pairwise agreement + invariant tolerance for exact (pure) engines and
  /// for scalar-vs-batched estimator agreement.
  double tol = 1e-10;
  /// Total-variation tolerance for the stratified estimator vs the exact
  /// depolarizing channel (statistical, not exact).
  double channel_tol = 0.12;
  /// Trajectories per estimator leg.
  int error_trajectories = 96;
  /// Agreement tolerance for the float32 legs: the batched float32 engine
  /// vs the double reference, and the float32-replay estimator vs the
  /// scalar double estimator. Float32 amplitudes round at ~1.2e-7 per op
  /// and the drift compounds like a random walk over the case's gates, so
  /// probabilities of the generator's circuits (<= a few hundred gates)
  /// land within ~1e-5 of double; 1e-4 leaves an order of magnitude of
  /// headroom while staying far below any real kernel defect.
  double f32_tol = 1e-4;
  /// Disable the noisy leg (the shrinker does: the injected-fault search
  /// is an exact-engine property, and the noisy leg dominates runtime).
  bool check_noisy = true;
};

struct EngineResult {
  std::string name;
  std::vector<double> probabilities;  // full output distribution
  std::vector<double> marginal;       // distribution of marginal_qubits(n)
  std::string violation;              // first invariant breakage, "" = clean
};

/// The deterministic qubit subset every engine's marginal is compared on:
/// every other qubit (non-empty for n >= 1).
std::vector<int> marginal_qubits(int num_qubits);

/// Run the case through every exact engine. Results are in a fixed order;
/// each carries any invariant violation it hit.
std::vector<EngineResult> run_exact_engines(const VerifyCase& c,
                                            const EngineOptions& opt);

/// Run the noisy leg (exact channel vs estimators, double and float32
/// replay). Returns "" or the first violation.
std::string check_noisy_channel(const VerifyCase& c, const EngineOptions& opt);

/// Float32 engine leg: the batched float32 engine through the same
/// split + identity-probe protocol as the double batched leg, compared to
/// the per-gate double reference at opt.f32_tol (see its doc for the
/// tolerance rationale). Runs the fused kernels at whatever SIMD level is
/// active, so an injected kernel fault (set_batch_fault_injection) is
/// caught on the float32 tier too. Returns "" or a violation.
std::string check_float32_leg(const VerifyCase& c, const EngineOptions& opt);

/// Full verdict for one case: "" when every engine agrees and every
/// invariant holds, else a one-line failure description.
std::string check_case(const VerifyCase& c, const EngineOptions& opt);

}  // namespace qfab::verify
