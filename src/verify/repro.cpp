#include "verify/repro.h"

#include <filesystem>
#include <fstream>
#include <sstream>

#include "circuit/qasm.h"
#include "common/check.h"
#include "common/io.h"
#include "sim/batch.h"

namespace qfab::verify {

namespace {

constexpr const char* kMagic = "// qfab_verify repro";

}  // namespace

std::string write_repro(const std::string& dir, const VerifyCase& c,
                        const std::string& failure) {
  std::filesystem::create_directories(dir);
  std::ostringstream name;
  name << "seed" << c.root_seed << "_case" << c.index << ".qasm";
  const std::string path = (std::filesystem::path(dir) / name.str()).string();

  // Atomic tmp+fsync+rename: an interrupted verifier never leaves a
  // half-written repro that a later triage run would trip over.
  std::ostringstream out;
  out.precision(17);
  out << kMagic << '\n';
  out << "// seed=" << c.root_seed << " case=" << c.index << '\n';
  out << "// lanes=" << c.lanes << " split=" << c.split_gate
      << " depol=" << c.depolarizing_p << '\n';
  std::string summary = failure;
  for (char& ch : summary)
    if (ch == '\n') ch = ' ';
  out << "// failure=" << summary << '\n';
  out << to_qasm(c.circuit);
  atomic_write_file(path, out.str());
  return path;
}

VerifyCase load_repro(const std::string& path, std::string* failure) {
  std::ifstream in(path);
  QFAB_CHECK_MSG(in.good(), "cannot read repro file " << path);
  std::stringstream buffer;
  buffer << in.rdbuf();
  const std::string text = buffer.str();
  QFAB_CHECK_MSG(text.rfind(kMagic, 0) == 0,
                 path << " is not a qfab_verify repro (missing \"" << kMagic
                      << "\" header)");

  VerifyCase c;
  if (failure) failure->clear();
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.rfind("//", 0) != 0) break;  // header comments end at the QASM
    std::istringstream fields(line.substr(2));
    std::string field;
    while (fields >> field) {
      const auto eq = field.find('=');
      if (eq == std::string::npos) continue;
      const std::string key = field.substr(0, eq);
      const std::string value = field.substr(eq + 1);
      if (key == "seed") c.root_seed = std::stoull(value);
      else if (key == "case") c.index = std::stoull(value);
      else if (key == "lanes") c.lanes = std::stoi(value);
      else if (key == "split") c.split_gate = std::stoull(value);
      else if (key == "depol") c.depolarizing_p = std::stod(value);
      else if (key == "failure" && failure) {
        // The failure summary is free text: everything after "failure=".
        const auto pos = line.find("failure=");
        *failure = line.substr(pos + 8);
        break;
      }
    }
  }
  c.circuit = from_qasm(text);  // the parser skips // comments
  QFAB_CHECK_MSG(c.lanes >= 1 && c.lanes <= BatchedStateVector::kMaxLanes,
                 "repro lane count " << c.lanes << " out of range");
  c.split_gate = std::min(c.split_gate, c.circuit.gates().size());
  return c;
}

}  // namespace qfab::verify
