// Differential verification driver.
//
// Runs a seeded stream of random cases (verify/generator.h) through the
// full engine matrix (verify/engines.h) in parallel, greedily minimizes
// any failure (verify/shrink.h), and dumps a deterministic repro per
// failure (verify/repro.h). This is the correctness backstop every
// performance PR replays against: a kernel or plan rewrite that changes
// any engine's distribution by more than 1e-10 shows up as a minimized
// QASM file and a nonzero exit from tools/qfab_verify.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "verify/engines.h"
#include "verify/generator.h"

namespace qfab::verify {

struct VerifyOptions {
  std::uint64_t seed = 1;
  std::size_t cases = 200;
  GeneratorOptions generator;
  EngineOptions engines;
  /// Minimize failing circuits before dumping.
  bool shrink = true;
  /// Stop scheduling new cases once this many failures are recorded.
  std::size_t max_failures = 8;
  /// Repro dump directory ("" disables dumping).
  std::string failure_dir = "results/verify_failures";
  /// Per-case progress dots on stderr.
  bool progress = false;
};

struct CaseFailure {
  std::size_t index = 0;
  std::string summary;           // failure from the engine matrix
  std::string repro_path;        // "" when dumping is disabled
  std::size_t shrunk_gates = 0;  // minimized circuit size
  int shrunk_qubits = 0;
};

struct VerifyReport {
  std::size_t cases_run = 0;
  std::vector<CaseFailure> failures;  // ordered by case index
  bool ok() const { return failures.empty(); }
};

/// Run the full matrix over `cases` seeded cases (parallel over the shared
/// thread pool).
VerifyReport run_verification(const VerifyOptions& options);

/// Replay one dumped repro file. Returns "" when it now passes, else the
/// current failure description.
std::string run_repro(const std::string& path, const EngineOptions& options);

/// Human-readable report (one line per failure + verdict).
void print_report(std::ostream& os, const VerifyReport& report);

}  // namespace qfab::verify
