#include "verify/engines.h"

#include <algorithm>
#include <cmath>
#include <memory>
#include <sstream>

#include "noise/densitymatrix.h"
#include "noise/estimator.h"
#include "sim/batch.h"
#include "sim/fusion.h"
#include "sim/invariants.h"
#include "transpile/transpile.h"
#include "verify/compare.h"

namespace qfab::verify {

namespace {

std::vector<int> all_qubits(int n) {
  std::vector<int> q(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) q[static_cast<std::size_t>(i)] = i;
  return q;
}

EngineResult finish_pure(std::string name, const StateVector& sv,
                         const std::vector<int>& marg, double tol,
                         std::string violation) {
  EngineResult r;
  r.name = std::move(name);
  r.probabilities = sv.probabilities();
  r.marginal = sv.marginal_probabilities(marg);
  r.violation = std::move(violation);
  if (r.violation.empty()) r.violation = check_norm(sv, tol);
  if (r.violation.empty())
    r.violation = check_probability_simplex(r.probabilities, tol);
  if (r.violation.empty())
    r.violation = check_probability_simplex(r.marginal, tol);
  return r;
}

}  // namespace

std::vector<int> marginal_qubits(int num_qubits) {
  std::vector<int> q;
  for (int i = 0; i < num_qubits; i += 2) q.push_back(i);
  return q;
}

std::vector<EngineResult> run_exact_engines(const VerifyCase& c,
                                            const EngineOptions& opt) {
  const QuantumCircuit& qc = c.circuit;
  const int n = qc.num_qubits();
  const std::size_t gates = qc.gates().size();
  const std::size_t split = std::min(c.split_gate, gates);
  const std::vector<int> marg = marginal_qubits(n);
  std::vector<EngineResult> results;

  // Reference: per-gate kernels, norm preserved after every gate.
  {
    StateVector sv(n);
    std::string violation;
    for (const Gate& g : qc.gates()) {
      sv.apply_gate(g);
      violation = check_norm(sv, opt.tol);
      if (!violation.empty()) break;
    }
    results.push_back(
        finish_pure("statevector", sv, marg, opt.tol, std::move(violation)));
  }

  // The transpiler must preserve the distribution exactly (it preserves
  // the unitary, global phase included).
  {
    StateVector sv(n);
    sv.apply_circuit(transpile_to_basis(qc));
    results.push_back(finish_pure("transpiled", sv, marg, opt.tol, {}));
  }

  // Fused execution plan, whole circuit.
  const FusedPlan plan(qc);
  {
    StateVector sv(n);
    plan.apply(sv);
    results.push_back(finish_pure("fused", sv, marg, opt.tol, {}));
  }

  // Split execution: first half through apply_range (falls back per-gate
  // around a mid-op boundary), second half through the lazily compiled
  // subrange plan — the exact protocol trajectory replay uses.
  {
    StateVector sv(n);
    plan.apply_range(sv, 0, split);
    std::string violation = check_norm(sv, opt.tol);
    const FusedPlan& tail = plan.subrange_plan(split, gates);
    tail.apply_range(sv, 0, tail.gate_count());
    results.push_back(
        finish_pure("fused-split", sv, marg, opt.tol, std::move(violation)));
  }

  // Batched engine at the case's lane count, same split. All lanes start
  // |0...0>, so they must stay identical; one lane takes an X·X identity
  // probe mid-circuit to exercise per-lane divergence bookkeeping.
  {
    BatchedStateVector bsv(n, c.lanes);
    apply_plan_range(plan, bsv, 0, split);
    std::string violation = check_lane_norms(bsv, opt.tol);
    const int probe_lane = c.lanes - 1;
    bsv.apply_pauli(probe_lane, Pauli::kX, 0);
    bsv.apply_pauli(probe_lane, Pauli::kX, 0);
    apply_plan_range(plan, bsv, split, gates);
    if (violation.empty()) violation = check_lane_norms(bsv, opt.tol);

    EngineResult r;
    r.name = "batched";
    r.probabilities = bsv.lane_probabilities(0);
    const auto lane_margs = bsv.all_lane_marginal_probabilities(marg);
    r.marginal = lane_margs.front();
    if (violation.empty()) {
      for (int l = 1; l < c.lanes && violation.empty(); ++l) {
        const double d =
            std::max(max_abs_diff(r.probabilities, bsv.lane_probabilities(l)),
                     max_abs_diff(r.marginal,
                                  lane_margs[static_cast<std::size_t>(l)]));
        if (d > opt.tol) {
          std::ostringstream os;
          os << "lane " << l << " diverged from lane 0 by " << d
             << " on identical inputs (tol " << opt.tol << ")";
          violation = os.str();
        }
      }
    }
    if (violation.empty())
      violation = check_probability_simplex(r.probabilities, opt.tol);
    r.violation = std::move(violation);
    results.push_back(std::move(r));
  }

  // Exact density matrix: ρ = |ψ><ψ| evolved as a 2^{2n} buffer; trace and
  // purity are the segment invariants on this engine.
  {
    DensityMatrix dm(n);
    dm.apply_circuit(qc);
    EngineResult r;
    r.name = "density";
    r.probabilities = dm.probabilities();
    r.marginal = dm.marginal_probabilities(marg);
    std::ostringstream os;
    if (std::abs(dm.trace() - 1.0) > opt.tol) {
      os << "trace " << dm.trace() << " drifted from 1";
      r.violation = os.str();
    } else if (std::abs(dm.purity() - 1.0) > opt.tol) {
      os << "purity " << dm.purity() << " drifted from 1 on a pure state";
      r.violation = os.str();
    } else {
      r.violation = check_probability_simplex(r.probabilities, opt.tol);
    }
    results.push_back(std::move(r));
  }

  return results;
}

std::string check_float32_leg(const VerifyCase& c, const EngineOptions& opt) {
  const QuantumCircuit& qc = c.circuit;
  const int n = qc.num_qubits();
  const std::size_t gates = qc.gates().size();
  const std::size_t split = std::min(c.split_gate, gates);
  const std::vector<int> marg = marginal_qubits(n);

  StateVector ref(n);
  ref.apply_circuit(qc);

  const FusedPlan plan(qc);
  BatchedStateVectorF bsf(n, c.lanes);
  apply_plan_range(plan, bsf, 0, split);
  std::string violation = check_lane_norms(bsf, opt.f32_tol);
  if (!violation.empty()) return "batched-f32: " + violation;
  const int probe_lane = c.lanes - 1;
  bsf.apply_pauli(probe_lane, Pauli::kX, 0);
  bsf.apply_pauli(probe_lane, Pauli::kX, 0);
  apply_plan_range(plan, bsf, split, gates);
  violation = check_lane_norms(bsf, opt.f32_tol);
  if (!violation.empty()) return "batched-f32: " + violation;

  const std::vector<double> probs = bsf.lane_probabilities(0);
  const auto lane_margs = bsf.all_lane_marginal_probabilities(marg);
  const double d_full = max_abs_diff(probs, ref.probabilities());
  const double d_marg =
      max_abs_diff(lane_margs.front(), ref.marginal_probabilities(marg));
  if (std::max(d_full, d_marg) > opt.f32_tol) {
    std::ostringstream os;
    os << "batched-f32 vs statevector: max |dp| = " << std::max(d_full, d_marg)
       << " (f32 tol " << opt.f32_tol << ")";
    return os.str();
  }
  for (int l = 1; l < c.lanes; ++l) {
    const double d =
        std::max(max_abs_diff(probs, bsf.lane_probabilities(l)),
                 max_abs_diff(lane_margs.front(),
                              lane_margs[static_cast<std::size_t>(l)]));
    // Identical inputs through identical float32 arithmetic: lanes must
    // agree bitwise, so any nonzero divergence is a lane-indexing defect.
    if (d > 0.0) {
      std::ostringstream os;
      os << "batched-f32 lane " << l << " diverged from lane 0 by " << d
         << " on identical inputs";
      return os.str();
    }
  }
  return {};
}

std::string check_noisy_channel(const VerifyCase& c,
                                const EngineOptions& opt) {
  const int n = c.circuit.num_qubits();
  const QuantumCircuit tqc = transpile_to_basis(c.circuit);
  const std::size_t tgates = tqc.gates().size();
  if (tgates == 0) return {};

  // Keep the expected error-event count O(1) so the trajectory average
  // converges to the exact channel within channel_tol at the configured
  // trajectory budget (the rate still scales every gate's error).
  NoiseModel noise;
  noise.p1q = noise.p2q =
      std::min(c.depolarizing_p, 2.0 / static_cast<double>(tgates));

  DensityMatrix dm(n);
  dm.apply_noisy_circuit(tqc, noise);
  const std::vector<double> exact = dm.probabilities();
  if (std::abs(dm.trace() - 1.0) > opt.tol)
    return "noisy density: trace " + std::to_string(dm.trace()) +
           " drifted from 1";
  std::string violation = check_probability_simplex(exact, opt.tol);
  if (!violation.empty()) return "noisy density: " + violation;

  // Scalar vs batched stratified estimators: identical rng streams, so
  // they must agree to replay rounding — a far tighter differential than
  // either is to the exact channel.
  const auto plan = std::make_shared<const FusedPlan>(tqc);
  const CleanRun clean(tqc, StateVector(n), 64, plan);
  const ErrorLocations errors(tqc, noise);
  const std::vector<int> outputs = all_qubits(n);
  EstimatorOptions eopt;
  eopt.error_trajectories = opt.error_trajectories;
  const std::uint64_t stream = 0xd1ffe7e47ULL ^ c.root_seed;

  Pcg64 rng_scalar(stream, c.index);
  const std::vector<double> est_scalar =
      estimate_channel_marginal(clean, errors, outputs, eopt, rng_scalar);
  Pcg64 rng_batched(stream, c.index);
  const std::vector<double> est_batched = estimate_channel_marginal_batched(
      clean, errors, outputs, eopt, std::max(2, c.lanes), rng_batched);

  violation = check_probability_simplex(est_scalar, opt.tol);
  if (!violation.empty()) return "estimator(scalar): " + violation;
  const double d_est = max_abs_diff(est_scalar, est_batched);
  if (d_est > opt.tol) {
    std::ostringstream os;
    os << "estimator scalar vs batched: max |dp| = " << d_est << " (tol "
       << opt.tol << ")";
    return os.str();
  }
  // Float32 replay leg: identical rng stream (events are pre-sampled, so
  // the narrow tier consumes it exactly like the double tier), compared to
  // the scalar double estimate at the float32 drift tolerance.
  EstimatorOptions fopt = eopt;
  fopt.precision = Precision::kFloat32;
  Pcg64 rng_f32(stream, c.index);
  const std::vector<double> est_f32 = estimate_channel_marginal_batched(
      clean, errors, outputs, fopt, std::max(2, c.lanes), rng_f32);
  violation = check_probability_simplex(est_f32, opt.tol);
  if (!violation.empty()) return "estimator(float32): " + violation;
  const double d_f32 = max_abs_diff(est_scalar, est_f32);
  if (d_f32 > opt.f32_tol) {
    std::ostringstream os;
    os << "estimator double vs float32 replay: max |dp| = " << d_f32
       << " (f32 tol " << opt.f32_tol << ")";
    return os.str();
  }

  const double tv = total_variation(est_scalar, exact);
  if (tv > opt.channel_tol) {
    std::ostringstream os;
    os << "estimator vs exact channel: total variation " << tv << " (tol "
       << opt.channel_tol << ", " << eopt.error_trajectories
       << " trajectories)";
    return os.str();
  }

  // Shared-trajectory cluster estimator over {rate/2, rate}: the proposal
  // column samples the same stream the stratified estimators consumed, so
  // it must match them to replay rounding; the reweighted half-rate column
  // must stay within a (variance-inflated) statistical TV tolerance of its
  // own exact channel. An ESS fallback on the half-rate column is fine —
  // it reproduces the per-rate estimator, which meets the same bound.
  NoiseModel half = noise;
  half.p1q *= 0.5;
  half.p2q *= 0.5;
  std::vector<ErrorLocations> cluster;
  cluster.emplace_back(tqc, half);
  cluster.emplace_back(tqc, noise);  // proposal (largest expected events)
  SharedEstimatorOptions sopt;
  sopt.error_trajectories = opt.error_trajectories;
  std::vector<Pcg64> rngs;
  rngs.emplace_back(stream ^ 0x51a7edULL, c.index);
  rngs.emplace_back(stream, c.index);  // the stratified estimators' stream
  const std::vector<std::vector<double>> shared =
      estimate_channel_marginal_shared(clean, cluster, outputs, sopt,
                                       std::max(2, c.lanes), rngs);
  const double d_shared = max_abs_diff(shared[1], est_scalar);
  if (d_shared > opt.tol) {
    std::ostringstream os;
    os << "shared-trajectory proposal column vs stratified: max |dp| = "
       << d_shared << " (tol " << opt.tol << ")";
    return os.str();
  }
  violation = check_probability_simplex(shared[0], opt.tol);
  if (!violation.empty()) return "estimator(shared half-rate): " + violation;
  DensityMatrix dm_half(n);
  dm_half.apply_noisy_circuit(tqc, half);
  const double tv_half = total_variation(shared[0], dm_half.probabilities());
  if (tv_half > 1.5 * opt.channel_tol) {
    std::ostringstream os;
    os << "shared-trajectory half-rate column vs exact channel: total "
          "variation "
       << tv_half << " (tol " << 1.5 * opt.channel_tol << ", "
       << sopt.error_trajectories << " trajectories)";
    return os.str();
  }
  return {};
}

std::string check_case(const VerifyCase& c, const EngineOptions& opt) {
  const std::vector<EngineResult> exact = run_exact_engines(c, opt);
  std::string failure = compare_engine_results(exact, opt.tol);
  if (!failure.empty()) return failure;
  failure = check_float32_leg(c, opt);
  if (!failure.empty()) return failure;
  if (opt.check_noisy) return check_noisy_channel(c, opt);
  return {};
}

}  // namespace qfab::verify
