// Greedy failing-case minimization.
//
// On a mismatch the verifier does not hand the user a 48-gate, 6-qubit
// circuit: it repeatedly tries dropping contiguous gate chunks (halving
// chunk sizes, delta-debugging style) and removing qubits (untouched ones
// always; the upper half when every gate on it can go too), keeping any
// candidate on which the failure reproduces. Deterministic: same failing
// case + same check -> same minimized circuit.
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "verify/generator.h"

namespace qfab::verify {

/// Returns "" when the case passes, else a failure description. Must be
/// deterministic for shrinking to terminate at a stable minimum.
using FailureCheck = std::function<std::string(const VerifyCase&)>;

/// Greedily minimize `failing` (on which `check` must return nonempty).
/// `max_checks` bounds the number of candidate evaluations.
VerifyCase shrink_case(const VerifyCase& failing, const FailureCheck& check,
                       std::size_t max_checks = 500);

}  // namespace qfab::verify
