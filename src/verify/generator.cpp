#include "verify/generator.h"

#include <cmath>

#include "common/rng.h"

namespace qfab::verify {

namespace {

/// The transpiled basis the sweeps actually execute.
const GateKind kBasisKinds[] = {GateKind::kId, GateKind::kX, GateKind::kRZ,
                                GateKind::kSX, GateKind::kCX};

/// Pre-decomposition gates from the arithmetic builders' alphabet.
const GateKind kPreKinds[] = {GateKind::kCP, GateKind::kCCP, GateKind::kH,
                              GateKind::kCH};

}  // namespace

VerifyCase generate_case(std::uint64_t root_seed, std::size_t index,
                         const GeneratorOptions& options) {
  QFAB_CHECK(options.min_qubits >= 2 &&
             options.max_qubits >= options.min_qubits);
  QFAB_CHECK(options.min_gates >= 1 && options.max_gates >= options.min_gates);
  Pcg64 root(root_seed, 0x5eedfab5ULL);
  Pcg64 rng = root.split(static_cast<std::uint64_t>(index));

  VerifyCase c;
  c.root_seed = root_seed;
  c.index = index;
  const int n = options.min_qubits +
                static_cast<int>(rng.uniform_int(
                    static_cast<u64>(options.max_qubits - options.min_qubits) +
                    1));
  const int gates =
      options.min_gates +
      static_cast<int>(rng.uniform_int(
          static_cast<u64>(options.max_gates - options.min_gates) + 1));
  c.circuit = QuantumCircuit(n);

  for (int i = 0; i < gates; ++i) {
    GateKind kind;
    do {
      const bool pre = rng.uniform() < options.pre_decomposition_fraction;
      kind = pre ? kPreKinds[rng.uniform_int(std::size(kPreKinds))]
                 : kBasisKinds[rng.uniform_int(std::size(kBasisKinds))];
    } while (gate_arity(kind) > n);  // CCP needs 3 qubits
    // Sample only as many distinct qubits as the gate needs: n == 2 has no
    // third distinct qubit, so an unconditional q[2] draw would spin.
    const int arity = gate_arity(kind);
    int q[3] = {0, 0, 0};
    q[0] = static_cast<int>(rng.uniform_int(n));
    if (arity >= 2)
      do q[1] = static_cast<int>(rng.uniform_int(n));
      while (q[1] == q[0]);
    if (arity >= 3)
      do q[2] = static_cast<int>(rng.uniform_int(n));
      while (q[2] == q[0] || q[2] == q[1]);
    const double theta = (rng.uniform() - 0.5) * 2.0 * M_PI;
    if (arity == 1) {
      c.circuit.append(make_gate1(kind, q[0], theta));
    } else if (arity == 2) {
      c.circuit.append(make_gate2(kind, q[0], q[1], theta));
    } else {
      c.circuit.append(make_gate3(kind, q[0], q[1], q[2], theta));
    }
  }

  c.lanes = 1 + static_cast<int>(rng.uniform_int(8));
  c.split_gate = rng.uniform_int(static_cast<u64>(gates) + 1);
  // Small enough that the stratified estimator's trajectory average stays
  // close to the exact channel; large enough that a noise-handling bug
  // moves the distribution measurably.
  c.depolarizing_p = 0.001 + 0.007 * rng.uniform();
  return c;
}

}  // namespace qfab::verify
