#include "verify/shrink.h"

#include <algorithm>
#include <vector>

#include "common/check.h"

namespace qfab::verify {

namespace {

/// Rebuild a case around a gate subset (order preserved), compacting away
/// qubits no remaining gate touches and clamping the split site.
VerifyCase rebuild(const VerifyCase& base, const std::vector<Gate>& gates) {
  const int n = base.circuit.num_qubits();
  std::vector<int> remap(static_cast<std::size_t>(n), -1);
  for (const Gate& g : gates)
    for (int b = 0; b < g.arity(); ++b)
      remap[static_cast<std::size_t>(g.qubits[b])] = 0;
  int next = 0;
  for (int q = 0; q < n; ++q)
    if (remap[static_cast<std::size_t>(q)] == 0)
      remap[static_cast<std::size_t>(q)] = next++;
  // Engines need a non-degenerate register even if every gate was dropped
  // from some qubit; keep at least two (CX in any remaining repro).
  next = std::max(next, 2);

  VerifyCase out = base;
  out.circuit = QuantumCircuit(next);
  for (const Gate& g : gates) {
    Gate h = g;
    for (int b = 0; b < g.arity(); ++b)
      h.qubits[static_cast<std::size_t>(b)] =
          remap[static_cast<std::size_t>(g.qubits[b])];
    out.circuit.append(h);
  }
  out.split_gate = std::min(base.split_gate, gates.size());
  return out;
}

}  // namespace

VerifyCase shrink_case(const VerifyCase& failing, const FailureCheck& check,
                       std::size_t max_checks) {
  QFAB_CHECK(!check(failing).empty());
  VerifyCase best = failing;
  std::size_t budget = max_checks;

  auto try_accept = [&](const VerifyCase& candidate) {
    if (budget == 0) return false;
    --budget;
    if (check(candidate).empty()) return false;
    best = candidate;
    return true;
  };

  bool progressed = true;
  while (progressed && budget > 0) {
    progressed = false;

    // Drop-gate passes: chunks of halving size, each tried at every
    // aligned offset; restart a size on success (indices shifted).
    const std::size_t count = best.circuit.gates().size();
    for (std::size_t chunk = std::max<std::size_t>(count / 2, 1); chunk >= 1;
         chunk /= 2) {
      bool dropped = true;
      while (dropped && budget > 0) {
        dropped = false;
        const std::vector<Gate>& gates = best.circuit.gates();
        if (gates.size() <= 1) break;
        for (std::size_t start = 0; start < gates.size() && budget > 0;
             start += chunk) {
          std::vector<Gate> kept;
          kept.reserve(gates.size());
          for (std::size_t i = 0; i < gates.size(); ++i)
            if (i < start || i >= start + chunk) kept.push_back(gates[i]);
          if (kept.empty()) continue;
          if (try_accept(rebuild(best, kept))) {
            progressed = dropped = true;
            break;  // gate list changed; rescan this chunk size
          }
        }
      }
      if (chunk == 1) break;
    }

    // Halve-qubit pass: keep only gates confined to the lower half of the
    // register (rebuild compacts the rest away).
    {
      const int n = best.circuit.num_qubits();
      const int keep_below = (n + 1) / 2;
      if (keep_below >= 1 && keep_below < n) {
        std::vector<Gate> kept;
        for (const Gate& g : best.circuit.gates()) {
          bool inside = true;
          for (int b = 0; b < g.arity(); ++b)
            inside = inside && g.qubits[b] < keep_below;
          if (inside) kept.push_back(g);
        }
        if (!kept.empty() && kept.size() < best.circuit.gates().size() &&
            try_accept(rebuild(best, kept)))
          progressed = true;
      }
    }
  }

  // Final compaction (drops qubits the last accepted candidate freed).
  VerifyCase compact = rebuild(best, best.circuit.gates());
  if (compact.circuit.num_qubits() < best.circuit.num_qubits() &&
      !check(compact).empty())
    best = compact;
  return best;
}

}  // namespace qfab::verify
