// Deterministic failure repros.
//
// A failing (minimized) case is dumped as a single OpenQASM 2.0 file with a
// metadata header in comments: the generator coordinates (root seed + case
// index), the engine-matrix parameters (lanes, split site, depolarizing
// rate), and the failure summary. The file reloads byte-for-byte into the
// same VerifyCase via the circuit/qasm parser, so
// `tools/qfab_verify --repro <file>` replays exactly what failed.
#pragma once

#include <string>

#include "verify/generator.h"

namespace qfab::verify {

/// Write `<dir>/seed<seed>_case<index>.qasm` (directories created as
/// needed) and return the path.
std::string write_repro(const std::string& dir, const VerifyCase& c,
                        const std::string& failure);

/// Parse a repro file back into a case; the stored failure summary (if
/// any) is returned through `failure` when non-null.
VerifyCase load_repro(const std::string& path, std::string* failure = nullptr);

}  // namespace qfab::verify
