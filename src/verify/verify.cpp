#include "verify/verify.h"

#include <algorithm>
#include <atomic>
#include <iostream>
#include <mutex>
#include <ostream>

#include "common/parallel.h"
#include "verify/repro.h"
#include "verify/shrink.h"

namespace qfab::verify {

VerifyReport run_verification(const VerifyOptions& options) {
  VerifyReport report;
  report.cases_run = options.cases;

  std::mutex mu;
  std::atomic<std::size_t> failure_count{0};

  // Chunk 1: case costs vary (width, gate count, noisy leg), and the whole
  // loop is the first production caller of the nested-safe pool rewrite.
  parallel_for_chunked(
      0, options.cases,
      [&](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) {
          if (failure_count.load(std::memory_order_relaxed) >=
              options.max_failures)
            return;  // budget exhausted; skip remaining cases
          const VerifyCase c =
              generate_case(options.seed, i, options.generator);
          const std::string failure = check_case(c, options.engines);
          if (options.progress)
            std::cerr << (failure.empty() ? '.' : 'X') << std::flush;
          if (failure.empty()) continue;
          failure_count.fetch_add(1, std::memory_order_relaxed);

          CaseFailure f;
          f.index = i;
          f.summary = failure;
          VerifyCase minimized = c;
          if (options.shrink) {
            // The shrinker re-runs the exact engines hundreds of times;
            // the noisy leg is dropped there (it dominates runtime and
            // exact-engine failures reproduce without it). A purely noisy
            // failure skips shrinking instead.
            EngineOptions exact_only = options.engines;
            exact_only.check_noisy = false;
            const auto still_fails = [&exact_only](const VerifyCase& cand) {
              return check_case(cand, exact_only);
            };
            if (!still_fails(c).empty())
              minimized = shrink_case(c, still_fails);
          }
          f.shrunk_gates = minimized.circuit.gates().size();
          f.shrunk_qubits = minimized.circuit.num_qubits();
          if (!options.failure_dir.empty())
            f.repro_path =
                write_repro(options.failure_dir, minimized, f.summary);

          std::lock_guard lock(mu);
          report.failures.push_back(std::move(f));
        }
      },
      1);
  if (options.progress) std::cerr << '\n';

  std::sort(report.failures.begin(), report.failures.end(),
            [](const CaseFailure& a, const CaseFailure& b) {
              return a.index < b.index;
            });
  return report;
}

std::string run_repro(const std::string& path, const EngineOptions& options) {
  std::string original;
  const VerifyCase c = load_repro(path, &original);
  return check_case(c, options);
}

void print_report(std::ostream& os, const VerifyReport& report) {
  os << "qfab_verify: " << report.cases_run << " cases, "
     << report.failures.size() << " failure"
     << (report.failures.size() == 1 ? "" : "s") << '\n';
  for (const CaseFailure& f : report.failures) {
    os << "  case " << f.index << ": " << f.summary << '\n';
    os << "    minimized to " << f.shrunk_gates << " gates / "
       << f.shrunk_qubits << " qubits";
    if (!f.repro_path.empty()) os << " -> " << f.repro_path;
    os << '\n';
  }
  os << (report.ok() ? "OK: all engines agree" : "FAIL") << '\n';
}

}  // namespace qfab::verify
