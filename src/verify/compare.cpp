#include "verify/compare.h"

#include <cmath>
#include <limits>
#include <sstream>

namespace qfab::verify {

double max_abs_diff(const std::vector<double>& a,
                    const std::vector<double>& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i)
    worst = std::max(worst, std::abs(a[i] - b[i]));
  return worst;
}

double total_variation(const std::vector<double>& a,
                       const std::vector<double>& b) {
  if (a.size() != b.size()) return std::numeric_limits<double>::infinity();
  double sum = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) sum += std::abs(a[i] - b[i]);
  return 0.5 * sum;
}

std::string compare_engine_results(const std::vector<EngineResult>& results,
                                   double tol) {
  for (const EngineResult& r : results)
    if (!r.violation.empty()) return r.name + ": " + r.violation;
  for (std::size_t i = 0; i < results.size(); ++i)
    for (std::size_t j = i + 1; j < results.size(); ++j) {
      const double dp =
          max_abs_diff(results[i].probabilities, results[j].probabilities);
      const double dm = max_abs_diff(results[i].marginal, results[j].marginal);
      if (dp > tol || dm > tol) {
        std::ostringstream os;
        os << results[i].name << " vs " << results[j].name
           << ": max |dp| = " << std::max(dp, dm) << " (tol " << tol << ")";
        return os.str();
      }
    }
  return {};
}

}  // namespace qfab::verify
