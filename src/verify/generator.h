// Seeded random case generation for the differential verifier.
//
// Each case is a random circuit over the transpiled basis {Id, X, RZ, SX,
// CX} mixed with pre-decomposition gates {CP, CCP, H, CH} (the alphabet the
// QFT/adder builders emit before transpilation), plus the engine-matrix
// parameters that vary per case: the batched lane count, the mid-circuit
// split site exercising subrange plans, and the depolarizing rate of the
// exact-channel run. Everything is a pure function of (root seed, case
// index), so any failure reproduces from those two numbers alone.
#pragma once

#include <cstddef>
#include <cstdint>

#include "circuit/circuit.h"

namespace qfab::verify {

struct GeneratorOptions {
  /// Width range. The density-matrix engine evolves 4^n entries per case,
  /// so the default cap stays small.
  int min_qubits = 2;
  int max_qubits = 6;
  int min_gates = 4;
  int max_gates = 48;
  /// Probability of drawing a pre-decomposition gate (CP/CCP/H/CH) instead
  /// of a transpiled-basis gate.
  double pre_decomposition_fraction = 0.4;
};

/// One generated (or loaded-from-repro) verification case.
struct VerifyCase {
  std::uint64_t root_seed = 0;
  std::size_t index = 0;
  QuantumCircuit circuit;
  /// Lane count for the batched engine (1..8 when generated).
  int lanes = 1;
  /// Gate index splitting range execution (0..gate count); both the fused
  /// split engine and the batched engine execute [0, split) then
  /// [split, end), which lands mid-op often enough to exercise
  /// subrange_plan compilation.
  std::size_t split_gate = 0;
  /// Depolarizing parameter (attached to every transpiled gate) of the
  /// exact-channel density-matrix run.
  double depolarizing_p = 0.0;
};

/// Deterministic case for (root_seed, index).
VerifyCase generate_case(std::uint64_t root_seed, std::size_t index,
                         const GeneratorOptions& options = {});

}  // namespace qfab::verify
