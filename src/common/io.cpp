#include "common/io.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/check.h"

namespace qfab {

namespace {

/// Directory part of `path` ("." when there is none).
std::string dir_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

/// fsync the directory containing a just-renamed file so the rename itself
/// survives power loss. A failed directory fsync means the rename may
/// silently vanish, so real failures (EIO and friends) surface as
/// CheckError with the errno instead of being swallowed. Two cases are
/// tolerated because they mean "cannot be done here", not "was lost":
/// filesystems that refuse directory fsync report EINVAL/ENOTSUP (POSIX
/// allows this), and a directory that grants create-but-not-read permission
/// cannot be opened O_RDONLY at all (EACCES).
void fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (fd < 0) {
    QFAB_CHECK_MSG(errno == EACCES, "cannot open directory "
                                        << dir << " for fsync: "
                                        << std::strerror(errno));
    return;
  }
  const int rc = ::fsync(fd);
  const int err = errno;
  (void)::close(fd);
  if (rc != 0) {
    QFAB_CHECK_MSG(err == EINVAL || err == ENOTSUP,
                   "fsync of directory " << dir << " failed: "
                                         << std::strerror(err));
  }
}

}  // namespace

void fsync_parent_dir(const std::string& path) { fsync_dir(dir_of(path)); }

void atomic_write_file(const std::string& path, const std::string& content) {
  // The temp file must live in the target directory: rename(2) is only
  // atomic within one filesystem. The pid suffix keeps concurrent writers
  // of different files from colliding; concurrent writers of the *same*
  // path last-write-win, which is the same guarantee rename gives anyway.
  const std::string tmp = path + ".tmp." + std::to_string(::getpid());
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  QFAB_CHECK_MSG(fd >= 0, "cannot open " << tmp << " for writing: "
                                         << std::strerror(errno));
  std::size_t written = 0;
  bool ok = true;
  while (ok && written < content.size()) {
    const ssize_t n = ::write(fd, content.data() + written,
                              content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
    } else {
      written += static_cast<std::size_t>(n);
    }
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    const int err = errno;
    (void)::unlink(tmp.c_str());
    QFAB_CHECK_MSG(false, "short write to " << tmp << ": "
                                            << std::strerror(err));
  }
  if (::rename(tmp.c_str(), path.c_str()) != 0) {
    const int err = errno;
    (void)::unlink(tmp.c_str());
    QFAB_CHECK_MSG(false, "cannot rename " << tmp << " over " << path << ": "
                                           << std::strerror(err));
  }
  fsync_dir(dir_of(path));
}

std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed) {
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k)
        c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  const auto* p = static_cast<const unsigned char*>(data);
  for (std::size_t i = 0; i < size; ++i)
    c = table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace qfab
