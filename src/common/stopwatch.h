// Wall-clock timing for progress reporting in the experiment harness.
#pragma once

#include <chrono>

namespace qfab {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  /// Elapsed seconds since construction or last reset().
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace qfab
