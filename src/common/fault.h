// QFAB_FAULT — deterministic fault injection for durability tests.
//
// Long-running sweeps claim crash-safety (journaled checkpoints, torn-write
// tolerance, numerical health guards); those claims are only worth anything
// if tests can *make* the failures happen. The QFAB_FAULT environment
// variable arms a comma-separated list of `key=value` directives that the
// journal writer (exp/journal.cpp) and the state-vector apply paths
// (sim/fusion.cpp, sim/batch.cpp) consult:
//
//   crash-after-unit=K   after the K-th unit record is durably appended to
//                        the sweep journal, hard-exit (kCrashExitCode) —
//                        simulates an OOM kill / power loss at a clean
//                        record boundary.
//   torn-write=K         write only a prefix of the K-th unit record's
//                        frame, then hard-exit — simulates a crash mid-
//                        write (trailing torn record on disk).
//   corrupt-crc=K        write the K-th unit record with a corrupted frame
//                        CRC, then hard-exit — simulates on-disk bit rot in
//                        the trailing record.
//   drain-after-unit=K   after the K-th unit record is appended, latch a
//                        graceful shutdown (common/shutdown.h) — simulates
//                        SIGINT without signal delivery, for in-process
//                        tests.
//   nan-at-gate=G        the next state-vector apply pass that covers
//                        original gate index G poisons one amplitude with a
//                        quiet NaN — exercises the numerical health
//                        sentinels and their scalar retry.
//   nan-count=N          how many times nan-at-gate fires (default 1, so a
//                        retried unit succeeds; -1 = every pass, so the
//                        point is persistently poisoned).
//
// The multi-process fabric (exp/fabric.h) adds three directives consulted
// by the worker loop rather than the journal writer:
//
//   hang-after-unit=K    after the worker has journaled K units, it claims
//                        its next work unit and then wedges forever while
//                        holding the lease (heartbeat stopped) — simulates
//                        a stalled process the coordinator must expire,
//                        kill, and reassign.
//   lease-steal=K        while holding the lease of its K-th unit, the
//                        worker stops heartbeating, journals the unit
//                        *without* its done marker, and parks until the
//                        coordinator expires and breaks the stale lease
//                        (usually SIGKILLing the worker) — the unit is
//                        reassigned and recomputed, forcing a duplicate
//                        shard record the merge must deduplicate.
//   fault-worker=W       gate every armed directive to fabric worker id W:
//                        any worker with a different id disarms the whole
//                        spec at startup. Lets a forked fleet (which
//                        inherits QFAB_FAULT wholesale) fault exactly one
//                        member.
//
// All queries are negligible when QFAB_FAULT is unset: one relaxed atomic
// (or cached bool) load. Directives are parsed once per process; tests that
// stay in-process can re-arm via set_fault_spec_for_tests.
#pragma once

#include <cstddef>
#include <string>

namespace qfab::fault {

/// Exit code used by the crash directives; tests assert on it to tell an
/// injected crash from a genuine failure.
inline constexpr int kCrashExitCode = 86;

/// Re-parse the directive set from `spec` instead of the environment
/// (empty string disarms everything). Test-only; not thread-safe against
/// concurrent fault queries.
void set_fault_spec_for_tests(const std::string& spec);

/// 1-based unit-record ordinals for the journal-writer directives;
/// -1 when the directive is absent.
long crash_after_unit();
long torn_write_unit();
long corrupt_crc_unit();
long drain_after_unit();

/// Fabric worker directives: units-journaled count after which the worker
/// wedges (hang-after-unit), the 1-based unit ordinal whose lease the
/// worker lets expire before journaling (lease-steal), and the worker id
/// the whole spec is gated to (fault-worker); -1 when absent.
long hang_after_unit();
long lease_steal_unit();
long fault_worker();

/// Fast gate for the simulation hooks: true iff a nan-at-gate directive is
/// armed with charges remaining.
bool nan_fault_active();

/// Consume one nan-at-gate charge if the armed gate index lies in
/// [gate_begin, gate_end). Returns true when the caller should poison its
/// state now. Thread-safe; at most `nan-count` callers ever see true.
bool take_nan_charge(std::size_t gate_begin, std::size_t gate_end);

/// Flush a note to stderr and hard-exit with kCrashExitCode (no unwinding,
/// no atexit — the whole point is to die like a kill -9 would, modulo the
/// distinctive exit code).
[[noreturn]] void crash_now(const char* directive);

}  // namespace qfab::fault
