// Bit-twiddling helpers shared by the state-vector kernels and the
// arithmetic layer. Qubit index 0 is the least-significant bit of a basis
// state's integer label (little-endian, Qiskit convention).
#pragma once

#include <bit>
#include <cstdint>

#include "common/check.h"

namespace qfab {

using u64 = std::uint64_t;

/// 2^n as an unsigned 64-bit value. Requires n < 64.
constexpr u64 pow2(int n) {
  QFAB_CHECK(n >= 0 && n < 64);
  return u64{1} << n;
}

/// Value of bit `b` of `x` (0 or 1).
constexpr int get_bit(u64 x, int b) { return static_cast<int>((x >> b) & 1u); }

/// `x` with bit `b` set to 1.
constexpr u64 set_bit(u64 x, int b) { return x | (u64{1} << b); }

/// `x` with bit `b` cleared.
constexpr u64 clear_bit(u64 x, int b) { return x & ~(u64{1} << b); }

/// `x` with bit `b` flipped.
constexpr u64 flip_bit(u64 x, int b) { return x ^ (u64{1} << b); }

/// Insert a 0 bit at position `b`, shifting higher bits left.
/// Used to enumerate basis states with a given qubit fixed to 0.
constexpr u64 insert_zero_bit(u64 x, int b) {
  const u64 low_mask = (u64{1} << b) - 1;
  return ((x & ~low_mask) << 1) | (x & low_mask);
}

/// Insert two 0 bits at positions b1 < b2 (positions in the *output*).
constexpr u64 insert_two_zero_bits(u64 x, int b1, int b2) {
  QFAB_CHECK(b1 < b2);
  return insert_zero_bit(insert_zero_bit(x, b1), b2);
}

/// Number of set bits.
constexpr int popcount(u64 x) { return std::popcount(x); }

/// ceil(log2(x)) for x >= 1; number of bits needed to index x states.
constexpr int ceil_log2(u64 x) {
  QFAB_CHECK(x >= 1);
  return (x == 1) ? 0 : 64 - std::countl_zero(x - 1);
}

/// Number of bits needed to represent the unsigned value x (x=0 -> 1).
constexpr int bit_width_nonzero(u64 x) {
  return x == 0 ? 1 : std::bit_width(x);
}

/// Reverse the lowest `n` bits of `x` (used by QFT output-ordering checks).
constexpr u64 reverse_bits(u64 x, int n) {
  u64 r = 0;
  for (int i = 0; i < n; ++i) r |= static_cast<u64>(get_bit(x, i)) << (n - 1 - i);
  return r;
}

}  // namespace qfab
