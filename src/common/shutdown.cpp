#include "common/shutdown.h"

#include <csignal>
#include <cstdlib>
#include <unistd.h>

#include <atomic>

namespace qfab {

namespace {

std::atomic<int> g_signal_count{0};
std::atomic<bool> g_soft_drain{false};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free latch");

extern "C" void soft_drain_handler(int) {
  // Coordinator-propagated drain: latch only; never advance the hard-exit
  // counter (the worker may already have latched a terminal SIGINT).
  g_soft_drain.store(true, std::memory_order_relaxed);
}

extern "C" void latch_handler(int) {
  // First signal: request a drain. Second: hard-exit now. Everything here
  // must be async-signal-safe — atomics, write(2), _Exit only.
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) == 0) {
    static const char msg[] =
        "\n[qfab] drain requested: finishing in-flight units, flushing "
        "journal (interrupt again to abort immediately)\n";
    (void)!::write(STDERR_FILENO, msg, sizeof(msg) - 1);
  } else {
    std::_Exit(130);
  }
}

}  // namespace

void install_shutdown_latch() {
  struct sigaction sa = {};
  sa.sa_handler = latch_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let blocking syscalls see the interrupt
  (void)sigaction(SIGINT, &sa, nullptr);
  (void)sigaction(SIGTERM, &sa, nullptr);
}

void install_soft_drain_handler() {
  struct sigaction sa = {};
  sa.sa_handler = soft_drain_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;
  (void)sigaction(SIGUSR1, &sa, nullptr);
}

bool shutdown_requested() {
  return g_signal_count.load(std::memory_order_relaxed) > 0 ||
         g_soft_drain.load(std::memory_order_relaxed);
}

void request_shutdown() {
  g_signal_count.fetch_add(1, std::memory_order_relaxed);
}

void reset_shutdown_latch_for_tests() {
  g_signal_count.store(0, std::memory_order_relaxed);
  g_soft_drain.store(false, std::memory_order_relaxed);
}

}  // namespace qfab
