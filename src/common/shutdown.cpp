#include "common/shutdown.h"

#include <csignal>
#include <cstdlib>
#include <unistd.h>

#include <atomic>

namespace qfab {

namespace {

std::atomic<int> g_signal_count{0};
static_assert(std::atomic<int>::is_always_lock_free,
              "signal handler requires a lock-free latch");

extern "C" void latch_handler(int) {
  // First signal: request a drain. Second: hard-exit now. Everything here
  // must be async-signal-safe — atomics, write(2), _Exit only.
  if (g_signal_count.fetch_add(1, std::memory_order_relaxed) == 0) {
    static const char msg[] =
        "\n[qfab] drain requested: finishing in-flight units, flushing "
        "journal (interrupt again to abort immediately)\n";
    (void)!::write(STDERR_FILENO, msg, sizeof(msg) - 1);
  } else {
    std::_Exit(130);
  }
}

}  // namespace

void install_shutdown_latch() {
  struct sigaction sa = {};
  sa.sa_handler = latch_handler;
  sigemptyset(&sa.sa_mask);
  sa.sa_flags = 0;  // no SA_RESTART: let blocking syscalls see the interrupt
  (void)sigaction(SIGINT, &sa, nullptr);
  (void)sigaction(SIGTERM, &sa, nullptr);
}

bool shutdown_requested() {
  return g_signal_count.load(std::memory_order_relaxed) > 0;
}

void request_shutdown() {
  g_signal_count.fetch_add(1, std::memory_order_relaxed);
}

void reset_shutdown_latch_for_tests() {
  g_signal_count.store(0, std::memory_order_relaxed);
}

}  // namespace qfab
