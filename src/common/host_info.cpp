#include "common/host_info.h"

#include <fstream>
#include <sstream>

namespace qfab {

namespace {

std::string read_line(const std::string& path) {
  std::ifstream in(path);
  std::string line;
  if (in) std::getline(in, line);
  return line;
}

/// sysfs cache sizes are "32K" / "2048K" / "16M"; anything unparsable
/// yields 0.
long parse_cache_kib(const std::string& text) {
  if (text.empty()) return 0;
  std::size_t pos = 0;
  long value = 0;
  while (pos < text.size() && text[pos] >= '0' && text[pos] <= '9') {
    value = value * 10 + (text[pos] - '0');
    ++pos;
  }
  if (pos == 0) return 0;
  if (pos < text.size() && (text[pos] == 'M' || text[pos] == 'm'))
    value *= 1024;
  return value;
}

HostInfo probe() {
  HostInfo info;
  {
    std::ifstream in("/proc/cpuinfo");
    std::string line;
    while (std::getline(in, line)) {
      const std::size_t colon = line.find(':');
      if (colon == std::string::npos ||
          line.compare(0, 10, "model name") != 0)
        continue;
      std::size_t start = colon + 1;
      while (start < line.size() && line[start] == ' ') ++start;
      info.cpu_model = line.substr(start);
      break;
    }
  }
  // cpu0's cache hierarchy: the data/unified level-2 entry is the per-core
  // L2, level 3 the shared LLC. Missing sysfs (containers, non-x86) leaves
  // the sizes at 0.
  for (int index = 0; index < 10; ++index) {
    const std::string base =
        "/sys/devices/system/cpu/cpu0/cache/index" + std::to_string(index);
    const std::string level = read_line(base + "/level");
    if (level.empty()) break;
    if (read_line(base + "/type") == "Instruction") continue;
    const long kib = parse_cache_kib(read_line(base + "/size"));
    if (level == "2")
      info.l2_kib = kib;
    else if (level == "3")
      info.l3_kib = kib;
  }
  return info;
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char ch : s) {
    if (ch == '"' || ch == '\\') out.push_back('\\');
    if (static_cast<unsigned char>(ch) >= 0x20) out.push_back(ch);
  }
  return out;
}

}  // namespace

const HostInfo& host_info() {
  static const HostInfo info = probe();
  return info;
}

std::string host_info_json(const std::string& simd_level) {
  const HostInfo& info = host_info();
  std::ostringstream out;
  out << "{\"cpu\": \"" << json_escape(info.cpu_model) << "\", \"simd\": \""
      << json_escape(simd_level) << "\", \"l2_kib\": " << info.l2_kib
      << ", \"l3_kib\": " << info.l3_kib << "}";
  return out.str();
}

}  // namespace qfab
