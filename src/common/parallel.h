// Minimal work-sharing layer.
//
// Experiment sweeps are embarrassingly parallel over operand instances, so a
// chunked parallel_for over a shared thread pool is all we need. On a
// single-core host (the common CI case for this repo) everything degenerates
// to a plain serial loop with no thread creation.
//
// Completion is tracked *per parallel_for_chunked call*, not pool-wide: the
// calling thread claims chunks from its own call's cursor alongside the
// workers and then waits only for that call's outstanding jobs — helping
// drain the global queue while it waits. This makes nested parallel_for
// calls (a body that itself parallelizes) and concurrent top-level calls
// from independent threads safe: neither can block on the other's work.
// An exception thrown by a body cancels that call's remaining chunks and is
// rethrown on the calling thread once the call's jobs have drained; the
// pool itself stays reusable.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qfab {

/// Fixed-size pool of worker threads executing submitted jobs FIFO.
class ThreadPool {
 public:
  /// `threads == 0` selects the QFAB_THREADS environment override when set,
  /// else std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job. Raw jobs must not throw (exceptions terminate);
  /// parallel_for_chunked wraps its bodies so their exceptions are
  /// captured and rethrown on the calling thread instead.
  void submit(std::function<void()> job);

  /// Pop one queued job (any job, not necessarily the caller's) and run it
  /// on the calling thread. Returns false when the queue was empty. Used by
  /// waiting parallel_for_chunked callers so a nested call can never
  /// deadlock on jobs only it could execute.
  bool try_run_one();

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  bool stop_ = false;
};

/// Run body(i) for i in [begin, end). Uses the shared pool when it has more
/// than one worker and the range is non-trivial; otherwise runs serially.
/// body must be safe to invoke concurrently for distinct i. If body throws,
/// the first exception is rethrown on the calling thread after the call's
/// outstanding work has drained; remaining chunks are cancelled (each index
/// is then visited at most once, not exactly once).
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: body(lo, hi) receives half-open sub-ranges of
/// [begin, end), so the std::function dispatch happens once per chunk
/// instead of once per index. Chunks are claimed dynamically (work
/// stealing via a per-call shared cursor) to tolerate uneven per-index
/// cost; the calling thread participates in draining its own cursor, so
/// the call completes even when every pool worker is busy elsewhere —
/// including when the caller *is* a pool worker (nested parallelism).
/// `chunk == 0` picks a size that gives each worker several chunks.
/// `min_grain` is the grain-size floor: chunks never shrink below it, and
/// a range of at most min_grain indices runs serially in the caller — tiny
/// sweeps skip the thread wake-up entirely instead of paying pool dispatch
/// for less work than the dispatch costs.
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t chunk = 0, std::size_t min_grain = 1);

}  // namespace qfab
