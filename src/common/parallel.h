// Minimal work-sharing layer.
//
// Experiment sweeps are embarrassingly parallel over operand instances, so a
// static-chunked parallel_for over a shared thread pool is all we need. On a
// single-core host (the common CI case for this repo) everything degenerates
// to a plain serial loop with no thread creation.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace qfab {

/// Fixed-size pool of worker threads executing submitted jobs FIFO.
class ThreadPool {
 public:
  /// `threads == 0` selects std::thread::hardware_concurrency().
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t size() const { return workers_.size(); }

  /// Enqueue a job. Jobs must not throw; exceptions terminate.
  void submit(std::function<void()> job);

  /// Block until all submitted jobs have completed.
  void wait_idle();

  /// Process-wide shared pool (lazily constructed).
  static ThreadPool& shared();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> jobs_;
  std::mutex mu_;
  std::condition_variable cv_job_;
  std::condition_variable cv_idle_;
  std::size_t active_ = 0;
  bool stop_ = false;
};

/// Run body(i) for i in [begin, end). Uses the shared pool when it has more
/// than one worker and the range is non-trivial; otherwise runs serially.
/// body must be safe to invoke concurrently for distinct i.
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body);

/// Chunked variant: body(lo, hi) receives half-open sub-ranges of
/// [begin, end), so the std::function dispatch happens once per chunk
/// instead of once per index. Chunks are claimed dynamically (work
/// stealing via a shared cursor) to tolerate uneven per-index cost.
/// `chunk == 0` picks a size that gives each worker several chunks.
/// `min_grain` is the grain-size floor: chunks never shrink below it, and
/// a range of at most min_grain indices runs serially in the caller — tiny
/// sweeps skip the thread wake-up entirely instead of paying pool dispatch
/// for less work than the dispatch costs.
void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t chunk = 0, std::size_t min_grain = 1);

}  // namespace qfab
