// Graceful-shutdown latch for long-running sweeps.
//
// The paper-scale figure runs are hours of batch work; Ctrl-C or a SIGTERM
// from a job scheduler should not discard everything computed so far. The
// latch turns the first SIGINT/SIGTERM into a *drain request*: the sweep
// loop (exp/sweep.cpp) polls shutdown_requested() before starting each
// work unit, finishes the units already in flight, flushes the checkpoint
// journal, and returns an incomplete-but-resumable result. A second signal
// hard-exits immediately (exit code 130) for when the user really means it.
//
// The handler itself only touches a lock-free atomic — async-signal-safe by
// construction. request_shutdown() latches the same flag programmatically
// (used by the drain-after-unit fault directive and by tests).
//
// Multi-process sweeps (exp/fabric.h) add a second, *soft* drain channel:
// the coordinator propagates a drain request to its worker processes with
// SIGUSR1. A terminal Ctrl-C is delivered to the whole foreground process
// group, so a worker may already have latched its first SIGINT when the
// coordinator's propagation arrives — if the propagation also went through
// the SIGINT/SIGTERM counter it would be the "second signal" and hard-exit
// the worker mid-unit. SIGUSR1 therefore only sets the drain flag and never
// advances the hard-exit counter.
#pragma once

namespace qfab {

/// Exit code a bench returns when a drained (or timed-out) sweep left a
/// resumable journal behind: BSD EX_TEMPFAIL, "try again later".
inline constexpr int kResumableExitCode = 75;

/// Install the SIGINT/SIGTERM latch handlers (idempotent). Call once from
/// a binary's main before starting sweep work; library code never installs
/// handlers on its own.
void install_shutdown_latch();

/// Install the SIGUSR1 soft-drain handler (idempotent). Fabric workers call
/// this so a coordinator can request a drain without risking the
/// second-signal hard exit (see file comment).
void install_soft_drain_handler();

/// True once a drain has been requested (signal, soft signal, or
/// programmatic).
bool shutdown_requested();

/// Latch a drain request without a signal.
void request_shutdown();

/// Clear the latch (test-only: lets one process drain, resume, and drain
/// again).
void reset_shutdown_latch_for_tests();

}  // namespace qfab
