// Deterministic, splittable random number generation.
//
// All stochastic components of the library (operand sampling, Pauli
// trajectory sampling, multinomial shot synthesis) draw from Pcg64 streams
// derived from a single experiment seed, so every figure is reproducible
// bit-for-bit from its printed seed.
#pragma once

#include <cstdint>
#include <limits>
#include <vector>

#include "common/check.h"

namespace qfab {

/// PCG64 (XSL-RR 128/64) generator. Satisfies UniformRandomBitGenerator.
class Pcg64 {
 public:
  using result_type = std::uint64_t;

  explicit Pcg64(std::uint64_t seed = 0x853c49e6748fea9bULL,
                 std::uint64_t stream = 0xda3e39cb94b95bdbULL);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform integer in [0, n). Requires n > 0. Unbiased (rejection).
  std::uint64_t uniform_int(std::uint64_t n);

  /// Bernoulli draw with success probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Derive an independent child generator; deterministic in (this, salt).
  Pcg64 split(std::uint64_t salt);

 private:
  using u128 = unsigned __int128;
  u128 state_;
  u128 inc_;  // odd
};

/// Draws indices from a fixed discrete distribution: the running-sum table
/// is built once (O(n)) and every draw is a binary search (O(log n)),
/// replacing the O(n) linear CDF scan when many shots sample one
/// distribution (2048 shots per instance in the paper's sweeps).
class CdfSampler {
 public:
  /// `probs` need not be normalized; it must be non-empty with a positive
  /// sum and no negative entries.
  explicit CdfSampler(const std::vector<double>& probs);

  std::size_t size() const { return cdf_.size(); }

  /// One index, distributed proportionally to probs.
  std::size_t draw(Pcg64& rng) const;

 private:
  std::vector<double> cdf_;  // inclusive running sums; back() = total
};

/// Binomial(n, p) sample. Exact inversion for small n*p, BTPE-free
/// normal-rejection hybrid otherwise (adequate for trajectory scheduling).
std::uint64_t binomial(Pcg64& rng, std::uint64_t n, double p);

/// Multinomial sample: `trials` draws over `probs` (need not be normalized).
/// Returns counts aligned with probs. Uses sequential binomial conditioning.
std::vector<std::uint64_t> multinomial(Pcg64& rng, std::uint64_t trials,
                                       const std::vector<double>& probs);

/// Sample k distinct values from [0, n) (k <= n), ascending order.
std::vector<std::uint64_t> sample_without_replacement(Pcg64& rng,
                                                      std::uint64_t n,
                                                      std::uint64_t k);

}  // namespace qfab
