// Host metadata for the bench JSON writers: checked-in BENCH_*.json results
// are only comparable against runs on similar hardware, so every writer
// embeds the CPU model, cache sizes, and the active SIMD dispatch level
// alongside its measurements.
#pragma once

#include <string>

namespace qfab {

struct HostInfo {
  std::string cpu_model;  // /proc/cpuinfo "model name" ("" when unknown)
  long l2_kib = 0;        // per-core unified L2 (0 when unknown)
  long l3_kib = 0;        // shared L3 (0 when unknown)
};

/// Probe /proc/cpuinfo and the cpu0 sysfs cache hierarchy once per process.
const HostInfo& host_info();

/// One-line JSON object for a bench writer's "host" key:
///   {"cpu": "...", "simd": "<simd_level>", "l2_kib": N, "l3_kib": N}
/// `simd_level` is passed in (simd_mode_name()) so this header stays below
/// the sim layer.
std::string host_info_json(const std::string& simd_level);

}  // namespace qfab
