// ASCII table and CSV emission for bench output.
//
// Bench binaries print the same rows/series the paper reports; TextTable
// renders aligned monospace tables, and the same data can be mirrored to a
// CSV file for plotting.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace qfab {

class TextTable {
 public:
  /// Column headers define the width of the table.
  explicit TextTable(std::vector<std::string> headers);

  /// Add a row; must match the header count.
  void add_row(std::vector<std::string> cells);

  /// Render with column alignment and a header separator.
  void print(std::ostream& os) const;

  /// Write as CSV (headers + rows) to `path`. Throws CheckError on I/O error.
  void write_csv(const std::string& path) const;

  std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// printf-style %.*f formatting helpers used by the bench binaries.
std::string fmt_double(double v, int decimals);
std::string fmt_percent(double fraction, int decimals);  // 0.123 -> "12.3"

}  // namespace qfab
