#include "common/fault.h"

#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace qfab::fault {

namespace {

struct FaultState {
  long crash_after_unit = -1;
  long torn_write_unit = -1;
  long corrupt_crc_unit = -1;
  long drain_after_unit = -1;
  long hang_after_unit = -1;
  long lease_steal_unit = -1;
  long fault_worker = -1;
  long nan_gate = -1;
  std::atomic<long> nan_charges{0};  // -1 = unlimited

  void parse(const std::string& spec) {
    crash_after_unit = torn_write_unit = corrupt_crc_unit =
        drain_after_unit = hang_after_unit = lease_steal_unit = fault_worker =
            nan_gate = -1;
    nan_charges.store(0, std::memory_order_relaxed);
    long nan_count = 1;
    std::size_t pos = 0;
    while (pos < spec.size()) {
      std::size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      const std::string item = spec.substr(pos, comma - pos);
      pos = comma + 1;
      const auto eq = item.find('=');
      if (eq == std::string::npos) continue;  // unknown/bare tokens ignored
      const std::string key = item.substr(0, eq);
      const long value = std::strtol(item.c_str() + eq + 1, nullptr, 10);
      if (key == "crash-after-unit") crash_after_unit = value;
      else if (key == "torn-write") torn_write_unit = value;
      else if (key == "corrupt-crc") corrupt_crc_unit = value;
      else if (key == "drain-after-unit") drain_after_unit = value;
      else if (key == "hang-after-unit") hang_after_unit = value;
      else if (key == "lease-steal") lease_steal_unit = value;
      else if (key == "fault-worker") fault_worker = value;
      else if (key == "nan-at-gate") nan_gate = value;
      else if (key == "nan-count") nan_count = value;
    }
    if (nan_gate >= 0)
      nan_charges.store(nan_count, std::memory_order_relaxed);
  }
};

FaultState& state() {
  static FaultState s;
  static const bool parsed = [] {
    const char* env = std::getenv("QFAB_FAULT");
    s.parse(env ? env : "");
    return true;
  }();
  (void)parsed;
  return s;
}

}  // namespace

void set_fault_spec_for_tests(const std::string& spec) {
  state().parse(spec);
}

long crash_after_unit() { return state().crash_after_unit; }
long torn_write_unit() { return state().torn_write_unit; }
long corrupt_crc_unit() { return state().corrupt_crc_unit; }
long drain_after_unit() { return state().drain_after_unit; }
long hang_after_unit() { return state().hang_after_unit; }
long lease_steal_unit() { return state().lease_steal_unit; }
long fault_worker() { return state().fault_worker; }

bool nan_fault_active() {
  const FaultState& s = state();
  return s.nan_gate >= 0 &&
         s.nan_charges.load(std::memory_order_relaxed) != 0;
}

bool take_nan_charge(std::size_t gate_begin, std::size_t gate_end) {
  FaultState& s = state();
  if (s.nan_gate < 0) return false;
  const auto g = static_cast<std::size_t>(s.nan_gate);
  if (g < gate_begin || g >= gate_end) return false;
  long have = s.nan_charges.load(std::memory_order_relaxed);
  while (have != 0) {
    if (have < 0) return true;  // unlimited
    if (s.nan_charges.compare_exchange_weak(have, have - 1,
                                            std::memory_order_relaxed))
      return true;
  }
  return false;
}

void crash_now(const char* directive) {
  std::fprintf(stderr, "\nQFAB_FAULT: injected crash (%s)\n", directive);
  std::fflush(stderr);
  ::_exit(kCrashExitCode);
}

}  // namespace qfab::fault
