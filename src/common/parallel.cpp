#include "common/parallel.h"

#include <atomic>

namespace qfab {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // With a single hardware thread, keep zero workers: callers run inline.
  if (threads <= 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    job();  // no workers: run inline
    return;
  }
  {
    std::lock_guard lock(mu_);
    jobs_.push(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
      ++active_;
    }
    job();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (jobs_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t n = end - begin;
  if (pool.size() <= 1 || n == 1) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  // Dynamic self-scheduling via a shared atomic cursor: instance costs vary
  // (error trajectories replay different gate suffixes), so static chunks
  // would straggle.
  auto cursor = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t jobs = std::min(pool.size(), n);
  for (std::size_t j = 0; j < jobs; ++j) {
    pool.submit([cursor, end, &body] {
      for (;;) {
        const std::size_t i = cursor->fetch_add(1);
        if (i >= end) return;
        body(i);
      }
    });
  }
  pool.wait_idle();
}

}  // namespace qfab
