#include "common/parallel.h"

#include <algorithm>
#include <atomic>

namespace qfab {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // With a single hardware thread, keep zero workers: callers run inline.
  if (threads <= 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    job();  // no workers: run inline
    return;
  }
  {
    std::lock_guard lock(mu_);
    jobs_.push(std::move(job));
  }
  cv_job_.notify_one();
}

void ThreadPool::wait_idle() {
  if (workers_.empty()) return;
  std::unique_lock lock(mu_);
  cv_idle_.wait(lock, [this] { return jobs_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
      ++active_;
    }
    job();
    {
      std::lock_guard lock(mu_);
      --active_;
      if (jobs_.empty() && active_ == 0) cv_idle_.notify_all();
    }
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  // Chunk size 1 keeps the original per-index dynamic self-scheduling:
  // instance costs vary (error trajectories replay different gate
  // suffixes), so large static chunks would straggle.
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      1);
}

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t chunk, std::size_t min_grain) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t n = end - begin;
  if (min_grain == 0) min_grain = 1;
  // Grain floor: a range this small is cheaper to run inline than to hand
  // to the pool (wake-up + cursor traffic exceed the work).
  if (pool.size() <= 1 || n <= min_grain) {
    body(begin, end);
    return;
  }
  if (chunk == 0) {
    // Several chunks per worker: amortizes dispatch while leaving the
    // dynamic scheduler room to balance uneven chunk costs.
    chunk = std::max<std::size_t>(1, n / (pool.size() * 8));
  }
  chunk = std::max(chunk, min_grain);
  auto cursor = std::make_shared<std::atomic<std::size_t>>(begin);
  const std::size_t jobs = std::min(pool.size(), (n + chunk - 1) / chunk);
  for (std::size_t j = 0; j < jobs; ++j) {
    pool.submit([cursor, end, chunk, &body] {
      for (;;) {
        const std::size_t lo = cursor->fetch_add(chunk);
        if (lo >= end) return;
        body(lo, std::min(lo + chunk, end));
      }
    });
  }
  pool.wait_idle();
}

}  // namespace qfab
