#include "common/parallel.h"

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <exception>
#include <memory>

namespace qfab {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    // QFAB_THREADS overrides the hardware count (mirrors QFAB_SIMD): the
    // regression tests pin it > 1 so the pool paths run even on the
    // single-core CI hosts where the default degenerates to serial.
    if (const char* env = std::getenv("QFAB_THREADS")) {
      char* end = nullptr;
      const unsigned long v = std::strtoul(env, &end, 10);
      if (end != env && *end == '\0' && v > 0 && v <= 1024) threads = v;
    }
  }
  if (threads == 0) {
    threads = std::thread::hardware_concurrency();
    if (threads == 0) threads = 1;
  }
  // With a single hardware thread, keep zero workers: callers run inline.
  if (threads <= 1) return;
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mu_);
    stop_ = true;
  }
  cv_job_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> job) {
  if (workers_.empty()) {
    job();  // no workers: run inline
    return;
  }
  {
    std::lock_guard lock(mu_);
    jobs_.push(std::move(job));
  }
  cv_job_.notify_one();
}

bool ThreadPool::try_run_one() {
  std::function<void()> job;
  {
    std::lock_guard lock(mu_);
    if (jobs_.empty()) return false;
    job = std::move(jobs_.front());
    jobs_.pop();
  }
  job();
  return true;
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> job;
    {
      std::unique_lock lock(mu_);
      cv_job_.wait(lock, [this] { return stop_ || !jobs_.empty(); });
      if (stop_ && jobs_.empty()) return;
      job = std::move(jobs_.front());
      jobs_.pop();
    }
    job();
  }
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body) {
  // Chunk size 1 keeps the original per-index dynamic self-scheduling:
  // instance costs vary (error trajectories replay different gate
  // suffixes), so large static chunks would straggle.
  parallel_for_chunked(
      begin, end,
      [&body](std::size_t lo, std::size_t hi) {
        for (std::size_t i = lo; i < hi; ++i) body(i);
      },
      1);
}

namespace {

/// Shared state of one parallel_for_chunked call. The calling thread keeps
/// the body (and this task, via shared_ptr) alive until `pending` helper
/// jobs have all finished, so the body reference below never dangles.
struct ChunkTask {
  ChunkTask(std::size_t begin, std::size_t end_, std::size_t chunk_,
            const std::function<void(std::size_t, std::size_t)>& body_)
      : cursor(begin), end(end_), chunk(chunk_), body(body_) {}

  std::atomic<std::size_t> cursor;
  const std::size_t end;
  const std::size_t chunk;
  const std::function<void(std::size_t, std::size_t)>& body;

  std::mutex mu;
  std::condition_variable done;
  std::size_t pending = 0;       // helper jobs submitted but not finished
  std::exception_ptr error;      // first exception thrown by any chunk

  /// Claim and run chunks until the cursor is exhausted. A throwing body
  /// records the first exception and cancels the remaining range.
  void run() {
    for (;;) {
      const std::size_t lo = cursor.fetch_add(chunk, std::memory_order_relaxed);
      if (lo >= end) return;
      try {
        body(lo, std::min(lo + chunk, end));
      } catch (...) {
        {
          std::lock_guard lock(mu);
          if (!error) error = std::current_exception();
        }
        // Best-effort cancellation: un-claimed chunks are abandoned.
        cursor.store(end, std::memory_order_relaxed);
      }
    }
  }

  void finish_one() {
    std::lock_guard lock(mu);
    if (--pending == 0) done.notify_all();
  }
};

}  // namespace

void parallel_for_chunked(
    std::size_t begin, std::size_t end,
    const std::function<void(std::size_t, std::size_t)>& body,
    std::size_t chunk, std::size_t min_grain) {
  if (begin >= end) return;
  ThreadPool& pool = ThreadPool::shared();
  const std::size_t n = end - begin;
  if (min_grain == 0) min_grain = 1;
  // Grain floor: a range this small is cheaper to run inline than to hand
  // to the pool (wake-up + cursor traffic exceed the work).
  if (n <= min_grain) {
    body(begin, end);
    return;
  }
  if (pool.size() <= 1) {
    // Serial host: keep the caller's chunk-size contract (bodies may size
    // per-chunk scratch from hi - lo) instead of one whole-range call.
    if (chunk == 0) {
      body(begin, end);
      return;
    }
    chunk = std::max(chunk, min_grain);
    for (std::size_t lo = begin; lo < end; lo += chunk)
      body(lo, std::min(lo + chunk, end));
    return;
  }
  if (chunk == 0) {
    // Several chunks per worker: amortizes dispatch while leaving the
    // dynamic scheduler room to balance uneven chunk costs.
    chunk = std::max<std::size_t>(1, n / (pool.size() * 8));
  }
  chunk = std::max(chunk, min_grain);
  const std::size_t total_chunks = (n + chunk - 1) / chunk;
  if (total_chunks <= 1) {
    body(begin, end);
    return;
  }

  const auto task = std::make_shared<ChunkTask>(begin, end, chunk, body);
  // The caller claims chunks too, so it needs at most total_chunks - 1
  // helpers; each helper job drains the cursor until empty.
  const std::size_t helpers = std::min(pool.size(), total_chunks - 1);
  task->pending = helpers;
  for (std::size_t j = 0; j < helpers; ++j) {
    pool.submit([task] {
      task->run();
      task->finish_one();
    });
  }

  task->run();

  // Wait for this call's helpers only. While any are still *queued*, run
  // queued jobs (ours or another call's) on this thread instead of
  // blocking: if every worker is itself a waiting caller, progress still
  // happens, so nested and concurrent calls cannot deadlock.
  {
    std::unique_lock lock(task->mu);
    while (task->pending != 0) {
      lock.unlock();
      const bool ran = pool.try_run_one();
      lock.lock();
      if (!ran && task->pending != 0) {
        // Queue momentarily empty: our remaining helpers are executing on
        // other threads; sleep until one finishes (finish_one notifies).
        task->done.wait(lock);
      }
    }
  }
  if (task->error) std::rethrow_exception(task->error);
}

}  // namespace qfab
