// Tiny command-line flag parser for the bench / example binaries.
//
// Supported syntax: --name=value, --name value, and boolean --name /
// --no-name. Unrecognized flags are an error so typos don't silently run a
// multi-minute sweep at the wrong scale.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

namespace qfab {

class CliFlags {
 public:
  /// Parse argv. Throws CheckError on malformed input.
  CliFlags(int argc, const char* const* argv);

  /// Scalar lookups with defaults. Throw on unparsable values.
  std::string get_string(const std::string& name, std::string def) const;
  long get_int(const std::string& name, long def) const;
  double get_double(const std::string& name, double def) const;
  bool get_bool(const std::string& name, bool def) const;

  /// Comma-separated list of doubles (e.g. --rates=0.1,0.2,0.5).
  std::vector<double> get_double_list(const std::string& name,
                                      std::vector<double> def) const;
  /// Comma-separated list of longs (e.g. --depths=1,2,3).
  std::vector<long> get_int_list(const std::string& name,
                                 std::vector<long> def) const;

  bool has(const std::string& name) const { return values_.count(name) != 0; }

  /// After all get_* calls, verify the user passed no unknown flags.
  /// Prints usage to stderr and returns false when a stray flag exists.
  bool validate() const;

  /// Program name (argv[0]).
  const std::string& program() const { return program_; }

 private:
  std::optional<std::string> raw(const std::string& name) const;

  std::string program_;
  std::map<std::string, std::string> values_;
  mutable std::map<std::string, bool> touched_;
};

}  // namespace qfab
