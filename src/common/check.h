// Lightweight precondition / invariant checking.
//
// QFAB_CHECK is active in all build types: violated preconditions in a
// numerical-simulation library almost always mean a silently wrong result,
// which is far worse than an abort. The cost is negligible next to the
// state-vector kernels.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace qfab {

/// Thrown when a QFAB_CHECK condition fails.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}

}  // namespace detail
}  // namespace qfab

#define QFAB_CHECK(cond)                                                \
  do {                                                                  \
    if (!(cond))                                                        \
      ::qfab::detail::check_failed(#cond, __FILE__, __LINE__, {});      \
  } while (false)

#define QFAB_CHECK_MSG(cond, msg)                                       \
  do {                                                                  \
    if (!(cond)) {                                                      \
      std::ostringstream qfab_check_os;                                 \
      qfab_check_os << msg;                                             \
      ::qfab::detail::check_failed(#cond, __FILE__, __LINE__,           \
                                   qfab_check_os.str());                \
    }                                                                   \
  } while (false)
