// Durable file I/O primitives.
//
// Long sweep runs write results and checkpoint journals that must never be
// observable in a torn state: a crash between open() and the final write
// would otherwise leave a file that parses but lies. atomic_write_file
// follows the standard tmp + fsync + rename protocol (rename(2) within one
// directory is atomic on POSIX), so readers see either the old contents or
// the complete new contents, never a prefix. crc32 is the frame checksum
// used by the sweep journal (exp/journal.h) and its inspection tool.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace qfab {

/// Durably replace `path` with `content`: write to a temp file in the same
/// directory, fsync it, rename over `path`, then fsync the directory so the
/// rename itself is persistent. Throws CheckError on any I/O failure (the
/// temp file is removed on error).
void atomic_write_file(const std::string& path, const std::string& content);

/// fsync the directory containing `path`, so a file just created or renamed
/// there survives power loss. Throws CheckError on real failures; tolerates
/// filesystems that cannot fsync directories (EINVAL/ENOTSUP) and
/// directories that grant create-but-not-read permission (EACCES). Used by
/// the fabric's lease protocol, where the file itself is created with
/// O_EXCL and cannot go through atomic_write_file.
void fsync_parent_dir(const std::string& path);

/// CRC-32 (IEEE 802.3 polynomial, the zlib convention). `seed` chains
/// incremental computations: crc32(b, crc32(a)) == crc32(a+b).
std::uint32_t crc32(const void* data, std::size_t size,
                    std::uint32_t seed = 0);

}  // namespace qfab
