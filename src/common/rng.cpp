#include "common/rng.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace qfab {

namespace {
constexpr unsigned __int128 kPcgMult =
    (static_cast<unsigned __int128>(2549297995355413924ULL) << 64) |
    4865540595714422341ULL;
}  // namespace

Pcg64::Pcg64(std::uint64_t seed, std::uint64_t stream) {
  inc_ = (static_cast<u128>(stream) << 1) | 1;
  state_ = 0;
  (*this)();
  state_ += (static_cast<u128>(seed) << 64) | (seed * 0x9e3779b97f4a7c15ULL);
  (*this)();
}

Pcg64::result_type Pcg64::operator()() {
  const u128 old = state_;
  state_ = old * kPcgMult + inc_;
  const std::uint64_t xored =
      static_cast<std::uint64_t>(old >> 64) ^ static_cast<std::uint64_t>(old);
  const int rot = static_cast<int>(old >> 122);
  return (xored >> rot) | (xored << ((-rot) & 63));
}

double Pcg64::uniform() {
  // 53 random bits into [0,1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

std::uint64_t Pcg64::uniform_int(std::uint64_t n) {
  QFAB_CHECK(n > 0);
  const std::uint64_t threshold = (0 - n) % n;  // 2^64 mod n
  for (;;) {
    const std::uint64_t r = (*this)();
    if (r >= threshold) return r % n;
  }
}

Pcg64 Pcg64::split(std::uint64_t salt) {
  // Mix current state with salt to seed a child on a distinct stream.
  const std::uint64_t s = (*this)() ^ (salt * 0xbf58476d1ce4e5b9ULL);
  const std::uint64_t t = (*this)() + (salt ^ 0x94d049bb133111ebULL);
  return Pcg64(s, t | 1);
}

CdfSampler::CdfSampler(const std::vector<double>& probs) {
  QFAB_CHECK(!probs.empty());
  cdf_.resize(probs.size());
  double acc = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    QFAB_CHECK(probs[i] >= 0.0);
    acc += probs[i];
    cdf_[i] = acc;
  }
  QFAB_CHECK(acc > 0.0);
}

std::size_t CdfSampler::draw(Pcg64& rng) const {
  // First index whose inclusive running sum exceeds u — the same index the
  // linear scan `u < acc` would return, found in O(log n).
  const double u = rng.uniform() * cdf_.back();
  const std::size_t i = static_cast<std::size_t>(
      std::upper_bound(cdf_.begin(), cdf_.end(), u) - cdf_.begin());
  return std::min(i, cdf_.size() - 1);  // numerical slack at u ~= total
}

std::uint64_t binomial(Pcg64& rng, std::uint64_t n, double p) {
  QFAB_CHECK(p >= 0.0 && p <= 1.0);
  if (n == 0 || p == 0.0) return 0;
  if (p == 1.0) return n;
  if (p > 0.5) return n - binomial(rng, n, 1.0 - p);

  const double mean = static_cast<double>(n) * p;
  if (mean < 30.0) {
    // Inversion by sequential search on the CDF.
    const double q = 1.0 - p;
    double pr = std::pow(q, static_cast<double>(n));
    double cdf = pr;
    const double u = rng.uniform();
    std::uint64_t k = 0;
    while (u > cdf && k < n) {
      ++k;
      pr *= (static_cast<double>(n - k + 1) / static_cast<double>(k)) *
            (p / q);
      cdf += pr;
    }
    return k;
  }
  // Normal approximation with continuity correction, clamped and resampled
  // only at the (negligible-probability) tails.
  const double sd = std::sqrt(mean * (1.0 - p));
  for (;;) {
    const double u1 = rng.uniform();
    const double u2 = rng.uniform();
    const double z = std::sqrt(-2.0 * std::log(1.0 - u1)) *
                     std::cos(6.283185307179586 * u2);
    const double x = mean + sd * z + 0.5;
    if (x < 0.0) continue;
    const auto k = static_cast<std::uint64_t>(x);
    if (k <= n) return k;
  }
}

std::vector<std::uint64_t> multinomial(Pcg64& rng, std::uint64_t trials,
                                       const std::vector<double>& probs) {
  std::vector<std::uint64_t> counts(probs.size(), 0);
  double total = 0.0;
  for (double p : probs) {
    QFAB_CHECK(p >= 0.0);
    total += p;
  }
  std::uint64_t remaining = trials;
  double mass = total;
  for (std::size_t i = 0; i + 1 < probs.size() && remaining > 0; ++i) {
    if (mass <= 0.0) break;
    const double p = std::min(1.0, probs[i] / mass);
    const std::uint64_t c = binomial(rng, remaining, p);
    counts[i] = c;
    remaining -= c;
    mass -= probs[i];
  }
  if (!counts.empty()) counts.back() += remaining;
  return counts;
}

std::vector<std::uint64_t> sample_without_replacement(Pcg64& rng,
                                                      std::uint64_t n,
                                                      std::uint64_t k) {
  QFAB_CHECK(k <= n);
  std::vector<std::uint64_t> out;
  out.reserve(k);
  if (k * 3 >= n) {
    // Dense case: partial Fisher-Yates over an index array.
    std::vector<std::uint64_t> idx(n);
    for (std::uint64_t i = 0; i < n; ++i) idx[i] = i;
    for (std::uint64_t i = 0; i < k; ++i) {
      const std::uint64_t j = i + rng.uniform_int(n - i);
      std::swap(idx[i], idx[j]);
    }
    out.assign(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k));
  } else {
    // Sparse case: rejection into a hash set.
    std::unordered_set<std::uint64_t> seen;
    while (seen.size() < k) seen.insert(rng.uniform_int(n));
    out.assign(seen.begin(), seen.end());
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace qfab
