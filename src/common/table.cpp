#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>

#include "common/check.h"
#include "common/io.h"

namespace qfab {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  QFAB_CHECK(!headers_.empty());
}

void TextTable::add_row(std::vector<std::string> cells) {
  QFAB_CHECK_MSG(cells.size() == headers_.size(),
                 "row has " << cells.size() << " cells, table has "
                            << headers_.size() << " columns");
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  auto print_row = [&](const std::vector<std::string>& row) {
    os << '|';
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << ' ' << row[c];
      for (std::size_t pad = row[c].size(); pad < widths[c]; ++pad) os << ' ';
      os << " |";
    }
    os << '\n';
  };

  print_row(headers_);
  os << '|';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    for (std::size_t i = 0; i < widths[c] + 2; ++i) os << '-';
    os << '|';
  }
  os << '\n';
  for (const auto& row : rows_) print_row(row);
}

void TextTable::write_csv(const std::string& path) const {
  // Built in memory and written via atomic tmp+fsync+rename so a crash or
  // interrupt mid-write can never leave a torn CSV behind.
  std::ostringstream os;
  auto write_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      if (c) os << ',';
      // Cells in this library never contain quotes; escape commas only.
      const bool needs_quotes = row[c].find(',') != std::string::npos;
      if (needs_quotes) os << '"' << row[c] << '"';
      else os << row[c];
    }
    os << '\n';
  };
  write_row(headers_);
  for (const auto& row : rows_) write_row(row);
  atomic_write_file(path, os.str());
}

std::string fmt_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

std::string fmt_percent(double fraction, int decimals) {
  return fmt_double(100.0 * fraction, decimals);
}

}  // namespace qfab
