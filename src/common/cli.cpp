#include "common/cli.h"

#include <cerrno>
#include <cmath>
#include <cstdlib>
#include <iostream>
#include <sstream>

#include "common/check.h"

namespace qfab {

namespace {

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.rfind(prefix, 0) == 0;
}

bool is_digit(char c) { return c >= '0' && c <= '9'; }

/// strtol with full validation: empty strings, trailing garbage, and
/// out-of-range values (ERANGE clamps silently otherwise) all fail. The
/// first character must start the number itself — strtol would silently
/// skip leading whitespace and accept a '+' sign, making `" 3"` parse
/// while `"3 "` is rejected — so anything but a digit or '-' fails.
bool parse_long(const std::string& s, long& out) {
  if (s.empty()) return false;
  if (!is_digit(s[0]) && s[0] != '-') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtol(s.c_str(), &end, 10);
  return end != s.c_str() && *end == '\0' && errno != ERANGE;
}

/// strtod with the same validation (overflow to ±HUGE_VAL and underflow
/// both set ERANGE and are rejected rather than clamped). The same
/// no-prefix rule applies — a digit, '-' or '.' must come first, which
/// also shuts out strtod's "inf"/"nan" spellings.
bool parse_double(const std::string& s, double& out) {
  if (s.empty()) return false;
  if (!is_digit(s[0]) && s[0] != '-' && s[0] != '.') return false;
  char* end = nullptr;
  errno = 0;
  out = std::strtod(s.c_str(), &end);
  return end != s.c_str() && *end == '\0' && errno != ERANGE &&
         std::isfinite(out);  // "-inf" slips past the prefix rule
}

}  // namespace

CliFlags::CliFlags(int argc, const char* const* argv) {
  program_ = argc > 0 ? argv[0] : "";
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    QFAB_CHECK_MSG(starts_with(arg, "--"),
                   "positional arguments are not supported: " << arg);
    arg = arg.substr(2);
    const auto eq = arg.find('=');
    if (eq != std::string::npos) {
      values_[arg.substr(0, eq)] = arg.substr(eq + 1);
      continue;
    }
    if (starts_with(arg, "no-")) {
      values_[arg.substr(3)] = "false";
      continue;
    }
    // --name value, unless the next token is another flag or absent: then
    // treat as boolean true.
    if (i + 1 < argc && !starts_with(argv[i + 1], "--")) {
      values_[arg] = argv[++i];
    } else {
      values_[arg] = "true";
    }
  }
}

std::optional<std::string> CliFlags::raw(const std::string& name) const {
  touched_[name] = true;
  const auto it = values_.find(name);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string CliFlags::get_string(const std::string& name,
                                 std::string def) const {
  return raw(name).value_or(std::move(def));
}

long CliFlags::get_int(const std::string& name, long def) const {
  const auto v = raw(name);
  if (!v) return def;
  long out = 0;
  QFAB_CHECK_MSG(parse_long(*v, out),
                 "--" << name << " expects an in-range integer, got \"" << *v
                      << '"');
  return out;
}

double CliFlags::get_double(const std::string& name, double def) const {
  const auto v = raw(name);
  if (!v) return def;
  double out = 0.0;
  QFAB_CHECK_MSG(parse_double(*v, out),
                 "--" << name << " expects an in-range number, got \"" << *v
                      << '"');
  return out;
}

bool CliFlags::get_bool(const std::string& name, bool def) const {
  const auto v = raw(name);
  if (!v) return def;
  if (*v == "true" || *v == "1" || *v == "yes") return true;
  if (*v == "false" || *v == "0" || *v == "no") return false;
  QFAB_CHECK_MSG(false, "--" << name << " expects a boolean, got " << *v);
  return def;
}

std::vector<double> CliFlags::get_double_list(const std::string& name,
                                              std::vector<double> def) const {
  const auto v = raw(name);
  if (!v) return def;
  QFAB_CHECK_MSG(!v->empty(), "--" << name << " expects a list, got an empty"
                                   << " value (omit the flag for the default)");
  std::vector<double> out;
  std::istringstream is(*v);
  std::string item;
  while (std::getline(is, item, ',')) {
    double value = 0.0;
    QFAB_CHECK_MSG(parse_double(item, value),
                   "--" << name << ": bad list element \"" << item << '"');
    out.push_back(value);
  }
  return out;
}

std::vector<long> CliFlags::get_int_list(const std::string& name,
                                         std::vector<long> def) const {
  const auto v = raw(name);
  if (!v) return def;
  QFAB_CHECK_MSG(!v->empty(), "--" << name << " expects a list, got an empty"
                                   << " value (omit the flag for the default)");
  std::vector<long> out;
  std::istringstream is(*v);
  std::string item;
  while (std::getline(is, item, ',')) {
    long value = 0;
    QFAB_CHECK_MSG(parse_long(item, value),
                   "--" << name << ": bad list element \"" << item << '"');
    out.push_back(value);
  }
  return out;
}

bool CliFlags::validate() const {
  bool ok = true;
  for (const auto& [name, value] : values_) {
    (void)value;
    if (!touched_.count(name)) {
      std::cerr << program_ << ": unknown flag --" << name << '\n';
      ok = false;
    }
  }
  if (!ok) {
    std::cerr << "known flags:";
    for (const auto& [name, used] : touched_) {
      (void)used;
      std::cerr << " --" << name;
    }
    std::cerr << '\n';
  }
  return ok;
}

}  // namespace qfab
