#include "exp/experiment.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "sim/invariants.h"
#include "transpile/transpile.h"

namespace qfab {

namespace {

// Health-sentinel tolerance: loose enough that legitimate rounding over the
// paper's deepest circuits never trips it, tight enough to catch NaN/Inf
// and genuine norm collapse.
constexpr double kHealthTol = 1e-6;

void throw_if_unhealthy(const std::string& violation, const char* where) {
  if (!violation.empty())
    throw NumericalHealthError(std::string(where) + ": " + violation);
}

void check_channel_health(const RunOptions& run,
                          const std::vector<double>& channel,
                          const char* where) {
  if (!run.health_checks) return;
  throw_if_unhealthy(check_probability_simplex(channel, kHealthTol), where);
}

}  // namespace

Precision resolve_precision(const RunOptions& run, std::size_t gate_count) {
  if (run.precision != Precision::kAuto) return run.precision;
  const double predicted = 8.0 * std::numeric_limits<float>::epsilon() *
                           std::sqrt(static_cast<double>(gate_count));
  return predicted <= run.float_drift_budget ? Precision::kFloat32
                                             : Precision::kDouble;
}

int resolve_rotation_cap(const CircuitSpec& spec) {
  if (spec.max_rotation_order >= 0) return spec.max_rotation_order;
  // Paper convention (EXPERIMENTS.md): the QFA addition step omits R_n
  // (cap n-1); the QFM cadd keeps all rotations.
  return spec.op == Operation::kAdd ? spec.n - 1 : 0;
}

QuantumCircuit build_arith_circuit(const CircuitSpec& spec) {
  QFAB_CHECK(spec.n >= 1);
  const int cap = resolve_rotation_cap(spec);
  if (spec.op == Operation::kAdd) {
    AdderOptions options;
    options.qft_depth = spec.depth;
    options.add_depth = spec.add_depth;
    options.max_rotation_order = cap;
    return make_qfa(spec.n, spec.n, options);
  }
  MultiplierOptions options;
  options.qft_depth = spec.depth;
  options.add_depth = spec.add_depth;
  options.max_rotation_order = cap;
  return make_qfm(spec.n, spec.n, options, spec.fused_multiplier);
}

QuantumCircuit build_transpiled_circuit(const CircuitSpec& spec) {
  return transpile_to_basis(build_arith_circuit(spec));
}

std::vector<int> output_qubits(const CircuitSpec& spec) {
  // Register layout of make_qfa / make_qfm: x at [0,n), y at [n,2n),
  // z at [2n,4n).
  const int start =
      spec.measure_all ? 0 : (spec.op == Operation::kAdd ? spec.n : 2 * spec.n);
  const int size = output_bits(spec);
  std::vector<int> out(static_cast<std::size_t>(size));
  for (int i = 0; i < size; ++i) out[static_cast<std::size_t>(i)] = start + i;
  return out;
}

int output_bits(const CircuitSpec& spec) {
  const int result_bits = spec.op == Operation::kAdd ? spec.n : 2 * spec.n;
  if (!spec.measure_all) return result_bits;
  return spec.op == Operation::kAdd ? 2 * spec.n : 4 * spec.n;
}

std::vector<u64> correct_outputs(const CircuitSpec& spec,
                                 const ArithInstance& inst) {
  if (!spec.measure_all) {
    const int bits = output_bits(spec);
    return spec.op == Operation::kAdd
               ? expected_sums(inst.x, inst.y, bits)
               : expected_products(inst.x, inst.y, bits);
  }
  // Joint bitstrings: every (x_i, y_j) support pair maps to one outcome
  // with the operands preserved alongside the result.
  std::vector<u64> out;
  const int n = spec.n;
  for (const auto& tx : inst.x.terms())
    for (const auto& ty : inst.y.terms()) {
      if (spec.op == Operation::kAdd) {
        const u64 sum = (tx.value + ty.value) & (pow2(n) - 1);
        out.push_back(tx.value | (sum << n));
      } else {
        const u64 prod = (tx.value * ty.value) & (pow2(2 * n) - 1);
        out.push_back(tx.value | (ty.value << n) | (prod << (2 * n)));
      }
    }
  std::sort(out.begin(), out.end());
  out.erase(std::unique(out.begin(), out.end()), out.end());
  return out;
}

StateVector make_initial_state(const CircuitSpec& spec,
                               const ArithInstance& inst) {
  const int total =
      spec.op == Operation::kAdd ? 2 * spec.n : 4 * spec.n;
  const QubitRange xr{0, spec.n};
  const QubitRange yr{spec.n, spec.n};
  return prepare_product_state(total, {{xr, inst.x}, {yr, inst.y}});
}

InstanceContext::InstanceContext(const QuantumCircuit& transpiled,
                                 const CircuitSpec& spec,
                                 const ArithInstance& inst,
                                 const RunOptions& run,
                                 std::shared_ptr<const FusedPlan> plan)
    : clean_(transpiled, make_initial_state(spec, inst),
             run.checkpoint_interval, std::move(plan)),
      output_qubits_(output_qubits(spec)),
      correct_(correct_outputs(spec, inst)) {
  if (run.health_checks)
    throw_if_unhealthy(check_norm(clean_.final_state(), kHealthTol),
                       "clean run final state");
}

InstanceOutcome InstanceContext::evaluate(const NoiseModel& noise,
                                          const RunOptions& run,
                                          Pcg64& rng) const {
  std::vector<std::uint64_t> counts;
  const ErrorLocations errors(clean_.circuit(), noise);
  if (run.per_shot && noise.enabled()) {
    counts = sample_counts_per_shot(clean_, errors, output_qubits_,
                                    run.shots, rng, run.readout);
  } else {
    EstimatorOptions est;
    est.error_trajectories = run.error_trajectories;
    est.precision = resolve_precision(run, clean_.plan().gate_count());
    est.float_drift_budget = run.float_drift_budget;
    std::vector<double> channel =
        run.batch_lanes > 1
            ? estimate_channel_marginal_batched(clean_, errors, output_qubits_,
                                                est, run.batch_lanes, rng)
            : estimate_channel_marginal(clean_, errors, output_qubits_, est,
                                        rng);
    check_channel_health(run, channel, "estimated channel");
    if (run.readout.enabled()) apply_readout_error(channel, run.readout);
    counts = sample_shot_counts(channel, run.shots, rng);
  }
  return evaluate_counts(counts, correct_);
}

std::vector<InstanceOutcome> InstanceContext::evaluate_rates(
    const std::vector<NoiseModel>& noises, const RunOptions& run,
    std::vector<Pcg64>& rngs, SharedEstimateStats* stats) const {
  QFAB_CHECK(!noises.empty() && noises.size() == rngs.size());
  QFAB_CHECK(!run.per_shot);
  std::vector<ErrorLocations> errors;
  errors.reserve(noises.size());
  for (const NoiseModel& noise : noises)
    errors.emplace_back(clean_.circuit(), noise);
  SharedEstimatorOptions opt;
  opt.error_trajectories = run.error_trajectories;
  opt.min_ess_fraction = run.shared_min_ess;
  opt.precision = resolve_precision(run, clean_.plan().gate_count());
  opt.float_drift_budget = run.float_drift_budget;
  std::vector<std::vector<double>> channels = estimate_channel_marginal_shared(
      clean_, errors, output_qubits_, opt, std::max(run.batch_lanes, 1), rngs,
      stats);
  std::vector<InstanceOutcome> outcomes;
  outcomes.reserve(channels.size());
  for (std::size_t r = 0; r < channels.size(); ++r) {
    check_channel_health(run, channels[r], "shared-cluster channel");
    if (run.readout.enabled()) apply_readout_error(channels[r], run.readout);
    const std::vector<std::uint64_t> counts =
        sample_shot_counts(channels[r], run.shots, rngs[r]);
    outcomes.push_back(evaluate_counts(counts, correct_));
  }
  return outcomes;
}

std::vector<StateVector> InstanceBatch::initial_states(
    const CircuitSpec& spec, const std::vector<ArithInstance>& group) {
  std::vector<StateVector> states;
  states.reserve(group.size());
  for (const ArithInstance& inst : group)
    states.push_back(make_initial_state(spec, inst));
  return states;
}

InstanceBatch::InstanceBatch(const QuantumCircuit& transpiled,
                             const CircuitSpec& spec,
                             const std::vector<ArithInstance>& group,
                             const RunOptions& run,
                             std::shared_ptr<const FusedPlan> plan)
    : clean_(plan ? std::move(plan)
                  : std::make_shared<const FusedPlan>(transpiled),
             initial_states(spec, group), run.checkpoint_interval),
      output_qubits_(output_qubits(spec)) {
  // The shared plan must describe this exact circuit (same contract as
  // CleanRun): trajectory injection addresses gates by index through it.
  QFAB_CHECK(clean_.circuit().num_qubits() == transpiled.num_qubits());
  QFAB_CHECK(clean_.plan().gate_count() == transpiled.gates().size());
  if (run.health_checks)
    throw_if_unhealthy(check_lane_norms(clean_.final_states(), kHealthTol),
                       "batched clean run final states");
  correct_.reserve(group.size());
  for (const ArithInstance& inst : group)
    correct_.push_back(correct_outputs(spec, inst));
}

InstanceOutcome InstanceBatch::evaluate(int member, const NoiseModel& noise,
                                        const RunOptions& run,
                                        Pcg64& rng) const {
  QFAB_CHECK(member >= 0 && member < size());
  const ErrorLocations errors(clean_.circuit(), noise);
  EstimatorOptions est;
  est.error_trajectories = run.error_trajectories;
  est.precision = resolve_precision(run, clean_.plan().gate_count());
  est.float_drift_budget = run.float_drift_budget;
  std::vector<double> channel = estimate_channel_marginal_batched(
      clean_, member, errors, output_qubits_, est, std::max(run.batch_lanes, 1),
      rng);
  check_channel_health(run, channel, "estimated channel");
  if (run.readout.enabled()) apply_readout_error(channel, run.readout);
  std::vector<std::uint64_t> counts = sample_shot_counts(channel, run.shots, rng);
  return evaluate_counts(counts, correct_[static_cast<std::size_t>(member)]);
}

std::vector<InstanceOutcome> InstanceBatch::evaluate_all(
    const NoiseModel& noise, const RunOptions& run,
    std::vector<Pcg64>& rngs) const {
  QFAB_CHECK(rngs.size() == static_cast<std::size_t>(size()));
  const ErrorLocations errors(clean_.circuit(), noise);
  EstimatorOptions est;
  est.error_trajectories = run.error_trajectories;
  est.precision = resolve_precision(run, clean_.plan().gate_count());
  est.float_drift_budget = run.float_drift_budget;
  std::vector<std::vector<double>> channels =
      estimate_channel_marginals_batched(clean_, errors, output_qubits_, est,
                                         rngs);
  std::vector<InstanceOutcome> outcomes;
  outcomes.reserve(channels.size());
  for (std::size_t m = 0; m < channels.size(); ++m) {
    check_channel_health(run, channels[m], "estimated channel");
    if (run.readout.enabled()) apply_readout_error(channels[m], run.readout);
    const std::vector<std::uint64_t> counts =
        sample_shot_counts(channels[m], run.shots, rngs[m]);
    outcomes.push_back(evaluate_counts(counts, correct_[m]));
  }
  return outcomes;
}

std::vector<std::vector<InstanceOutcome>> InstanceBatch::evaluate_all_rates(
    const std::vector<NoiseModel>& noises, const RunOptions& run,
    std::vector<std::vector<Pcg64>>& rngs, SharedEstimateStats* stats) const {
  QFAB_CHECK(!noises.empty() && noises.size() == rngs.size());
  QFAB_CHECK(!run.per_shot);
  std::vector<ErrorLocations> errors;
  errors.reserve(noises.size());
  for (const NoiseModel& noise : noises)
    errors.emplace_back(clean_.circuit(), noise);
  SharedEstimatorOptions opt;
  opt.error_trajectories = run.error_trajectories;
  opt.min_ess_fraction = run.shared_min_ess;
  opt.precision = resolve_precision(run, clean_.plan().gate_count());
  opt.float_drift_budget = run.float_drift_budget;
  std::vector<std::vector<std::vector<double>>> channels =
      estimate_channel_marginals_shared(clean_, errors, output_qubits_, opt,
                                        rngs, stats);
  std::vector<std::vector<InstanceOutcome>> outcomes(channels.size());
  for (std::size_t r = 0; r < channels.size(); ++r) {
    outcomes[r].reserve(channels[r].size());
    for (std::size_t m = 0; m < channels[r].size(); ++m) {
      check_channel_health(run, channels[r][m], "shared-cluster channel");
      if (run.readout.enabled())
        apply_readout_error(channels[r][m], run.readout);
      const std::vector<std::uint64_t> counts =
          sample_shot_counts(channels[r][m], run.shots, rngs[r][m]);
      outcomes[r].push_back(evaluate_counts(counts, correct_[m]));
    }
  }
  return outcomes;
}

}  // namespace qfab
