#include "exp/journal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault.h"
#include "common/io.h"
#include "common/shutdown.h"

namespace qfab {

namespace {

constexpr char kMagic[8] = {'Q', 'F', 'A', 'B', 'J', 'N', 'L', '1'};
constexpr std::uint32_t kVersion = 1;
// Frames larger than this are treated as corruption, not allocation
// requests: a torn length field must never make the reader try to swallow
// gigabytes.
constexpr std::uint32_t kMaxFrameBytes = 1u << 28;

/// Append-only byte buffer with fixed-width little-ish (host-endian)
/// primitive writers. The journal is a local checkpoint, not an
/// interchange format; host-endian memcpy keeps doubles bit-exact.
struct ByteWriter {
  std::string bytes;

  void u8(std::uint8_t v) { bytes.push_back(static_cast<char>(v)); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u32(static_cast<std::uint32_t>(s.size()));
    bytes.append(s);
  }
  void raw(const void* p, std::size_t n) {
    bytes.append(static_cast<const char*>(p), n);
  }
};

/// Bounds-checked reader over a payload. Any overrun or trailing garbage
/// marks the payload malformed; the caller treats that as frame corruption.
struct ByteReader {
  const char* p;
  const char* end;
  bool ok = true;

  explicit ByteReader(const std::string& payload)
      : p(payload.data()), end(payload.data() + payload.size()) {}

  template <typename T>
  T get() {
    T v{};
    if (ok && end - p >= static_cast<std::ptrdiff_t>(sizeof(T))) {
      std::memcpy(&v, p, sizeof(T));
      p += sizeof(T);
    } else {
      ok = false;
    }
    return v;
  }
  std::string str() {
    const auto n = get<std::uint32_t>();
    if (!ok || end - p < static_cast<std::ptrdiff_t>(n)) {
      ok = false;
      return {};
    }
    std::string s(p, n);
    p += n;
    return s;
  }
  bool done() const { return ok && p == end; }
};

void write_stats(ByteWriter& w, const SharedEstimateStats& s) {
  w.i64(s.proposal_trajectories);
  w.i64(s.unique_trajectories);
  w.i64(s.fallback_trajectories);
  w.i64(s.rate_columns);
  w.i64(s.fallback_columns);
  w.f64(s.ess_fraction_min);
  w.f64(s.ess_fraction_sum);
  w.i64(s.ess_fraction_count);
}

SharedEstimateStats read_stats(ByteReader& r) {
  SharedEstimateStats s;
  s.proposal_trajectories = static_cast<long>(r.get<std::int64_t>());
  s.unique_trajectories = static_cast<long>(r.get<std::int64_t>());
  s.fallback_trajectories = static_cast<long>(r.get<std::int64_t>());
  s.rate_columns = static_cast<long>(r.get<std::int64_t>());
  s.fallback_columns = static_cast<long>(r.get<std::int64_t>());
  s.ess_fraction_min = r.get<double>();
  s.ess_fraction_sum = r.get<double>();
  s.ess_fraction_count = static_cast<long>(r.get<std::int64_t>());
  return s;
}

std::string serialize_record(const JournalRecord& rec) {
  ByteWriter w;
  w.u8(static_cast<std::uint8_t>(rec.type));
  w.u32(rec.depth_index);
  w.u32(rec.block_begin);
  w.u32(rec.block_end);
  if (rec.type == JournalRecord::Type::kTimeout) return std::move(w.bytes);
  w.u32(static_cast<std::uint32_t>(rec.outcomes.size()));
  for (const auto& rate : rec.outcomes) {
    QFAB_CHECK(rate.size() == rec.block_end - rec.block_begin);
    for (const InstanceOutcome& o : rate) {
      w.u8(o.success ? 1 : 0);
      w.i64(o.margin);
    }
  }
  write_stats(w, rec.stats);
  w.str(rec.error);
  return std::move(w.bytes);
}

/// Returns false when the payload is malformed (treated as corruption).
bool parse_record(const std::string& payload, JournalRecord& rec) {
  ByteReader r(payload);
  const auto type = r.get<std::uint8_t>();
  if (type < 1 || type > 3) return false;
  rec.type = static_cast<JournalRecord::Type>(type);
  rec.depth_index = r.get<std::uint32_t>();
  rec.block_begin = r.get<std::uint32_t>();
  rec.block_end = r.get<std::uint32_t>();
  if (!r.ok || rec.block_end <= rec.block_begin) return false;
  if (rec.type == JournalRecord::Type::kTimeout) return r.done();
  const auto n_rates = r.get<std::uint32_t>();
  const std::size_t members = rec.block_end - rec.block_begin;
  // Each outcome is 9 payload bytes; refuse to allocate more outcome slots
  // than the remaining payload can actually hold (overflow-safe order).
  const std::size_t remaining = static_cast<std::size_t>(r.end - r.p);
  if (!r.ok || members > remaining / 9 ||
      n_rates > remaining / 9 / members)
    return false;
  rec.outcomes.assign(n_rates, std::vector<InstanceOutcome>(members));
  for (auto& rate : rec.outcomes)
    for (InstanceOutcome& o : rate) {
      o.success = r.get<std::uint8_t>() != 0;
      o.margin = r.get<std::int64_t>();
    }
  rec.stats = read_stats(r);
  rec.error = r.str();
  return r.done();
}

std::string serialize_header(std::uint64_t fingerprint) {
  ByteWriter w;
  w.raw(kMagic, sizeof kMagic);
  w.u32(kVersion);
  w.u64(fingerprint);
  return std::move(w.bytes);
}

std::string frame(const std::string& payload, bool corrupt_crc = false) {
  ByteWriter w;
  w.u32(static_cast<std::uint32_t>(payload.size()));
  std::uint32_t crc = crc32(payload.data(), payload.size());
  if (corrupt_crc) crc ^= 0xDEADBEEFu;
  w.u32(crc);
  w.bytes.append(payload);
  return std::move(w.bytes);
}

void write_all_fd(int fd, const char* data, std::size_t size,
                  const std::string& path) {
  std::size_t written = 0;
  while (written < size) {
    const ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      QFAB_CHECK_MSG(false, "journal write to " << path << " failed: "
                                                << std::strerror(errno));
    }
    written += static_cast<std::size_t>(n);
  }
}

/// FNV-1a over a growing byte stream — the fingerprint accumulator.
struct Fingerprint {
  std::uint64_t h = 0xcbf29ce484222325ULL;

  void bytes(const void* p, std::size_t n) {
    const auto* b = static_cast<const unsigned char*>(p);
    for (std::size_t i = 0; i < n; ++i) {
      h ^= b[i];
      h *= 0x100000001b3ULL;
    }
  }
  void u64(std::uint64_t v) { bytes(&v, sizeof v); }
  void i64(std::int64_t v) { bytes(&v, sizeof v); }
  void f64(double v) { bytes(&v, sizeof v); }
  void b(bool v) { u64(v ? 1 : 0); }
};

}  // namespace

std::uint64_t sweep_fingerprint(const SweepConfig& config,
                                const std::vector<ArithInstance>& instances) {
  Fingerprint fp;
  fp.u64(kVersion);
  // Circuit spec.
  const CircuitSpec& s = config.base;
  fp.i64(static_cast<std::int64_t>(s.op));
  fp.i64(s.n);
  fp.i64(s.depth);
  fp.i64(s.add_depth);
  fp.i64(s.max_rotation_order);
  fp.b(s.fused_multiplier);
  fp.b(s.measure_all);
  // Depth series and rate columns (expanded: the journal's rate axis).
  fp.u64(config.depths.size());
  for (int d : config.depths) fp.i64(d);
  const std::vector<double> rates = config.expanded_rates();
  fp.u64(rates.size());
  for (double r : rates) fp.f64(r);
  fp.b(config.vary_2q);
  fp.b(config.include_noise_free);
  fp.i64(config.orders.order_x);
  fp.i64(config.orders.order_y);
  // Run options — batch_lanes included: it fixes the unit block size, so
  // records from a run with different lanes would not even key the same.
  const RunOptions& run = config.run;
  fp.u64(run.shots);
  fp.i64(run.error_trajectories);
  fp.b(run.per_shot);
  fp.u64(run.checkpoint_interval);
  fp.b(run.noisy_rz);
  fp.b(run.noisy_id);
  fp.i64(run.batch_lanes);
  fp.b(run.shared_trajectories);
  fp.f64(run.shared_min_ess);
  // Replay precision changes outcomes within rounding, so records from a
  // float32 (or auto) run must not resume a double journal or vice versa.
  fp.i64(static_cast<std::int64_t>(run.precision));
  fp.f64(run.float_drift_budget);
  fp.b(run.health_checks);
  fp.f64(run.readout.p01);
  fp.f64(run.readout.p10);
  fp.u64(config.seed);
  // Operand instances: outcomes depend on the exact superposed values and
  // amplitudes, not just the generation seed.
  fp.u64(instances.size());
  for (const ArithInstance& inst : instances)
    for (const QInt* q : {&inst.x, &inst.y}) {
      fp.i64(q->bits());
      fp.u64(q->terms().size());
      for (const QInt::Term& t : q->terms()) {
        fp.u64(t.value);
        fp.f64(t.amplitude.real());
        fp.f64(t.amplitude.imag());
      }
    }
  return fp.h;
}

JournalContents read_journal(const std::string& path) {
  JournalContents out;
  std::ifstream in(path, std::ios::binary);
  if (!in.good()) {
    out.note = "no journal at " + path;
    return out;
  }
  std::ostringstream buf;
  buf << in.rdbuf();
  const std::string data = buf.str();

  std::size_t pos = 0;
  bool saw_header = false;
  while (pos + 8 <= data.size()) {
    std::uint32_t len = 0, crc = 0;
    std::memcpy(&len, data.data() + pos, 4);
    std::memcpy(&crc, data.data() + pos + 4, 4);
    if (len > kMaxFrameBytes || pos + 8 + len > data.size()) {
      out.note = "truncated frame at byte " + std::to_string(pos);
      break;
    }
    const std::string payload = data.substr(pos + 8, len);
    if (crc32(payload.data(), payload.size()) != crc) {
      out.note = "CRC mismatch at byte " + std::to_string(pos);
      break;
    }
    if (!saw_header) {
      if (payload.size() != sizeof(kMagic) + 4 + 8 ||
          std::memcmp(payload.data(), kMagic, sizeof kMagic) != 0) {
        out.note = "unrecognized journal header";
        break;
      }
      std::uint32_t version = 0;
      std::memcpy(&version, payload.data() + sizeof kMagic, 4);
      if (version != kVersion) {
        out.note = "journal version " + std::to_string(version) +
                   " != " + std::to_string(kVersion);
        break;
      }
      std::memcpy(&out.fingerprint, payload.data() + sizeof kMagic + 4, 8);
      saw_header = true;
      out.header_ok = true;
    } else {
      JournalRecord rec;
      if (!parse_record(payload, rec)) {
        out.note = "malformed record at byte " + std::to_string(pos);
        break;
      }
      out.records.push_back(std::move(rec));
    }
    pos += 8 + len;
    out.valid_bytes = pos;
  }
  if (out.valid_bytes < data.size()) {
    out.dropped_tail = true;
    out.dropped_bytes = data.size() - out.valid_bytes;
    // Census of the dropped tail: walk frame-by-frame from the damage point
    // following each frame's claimed length, so repair can say how many
    // record frames a truncation discards instead of dropping them
    // silently. The payloads are untrusted (that is why they are dropped);
    // only the frame count is reported.
    std::size_t scan = out.valid_bytes;
    while (scan + 8 <= data.size()) {
      std::uint32_t len = 0;
      std::memcpy(&len, data.data() + scan, 4);
      if (len > kMaxFrameBytes || scan + 8 + len > data.size()) break;
      ++out.dropped_frames;
      scan += 8 + len;
    }
    out.dropped_partial_frame = scan != data.size();
    if (out.note.empty())
      out.note = "trailing garbage at byte " + std::to_string(out.valid_bytes);
    out.note += " — dropped " + std::to_string(out.dropped_bytes) +
                " trailing byte(s): " + std::to_string(out.dropped_frames) +
                " stranded frame(s)";
    if (out.dropped_partial_frame) out.note += " plus a torn partial frame";
  }
  if (!out.header_ok) out.records.clear();
  return out;
}

void rewrite_journal(const std::string& path,
                     const JournalContents& contents) {
  QFAB_CHECK(contents.header_ok);
  std::string data = frame(serialize_header(contents.fingerprint));
  for (const JournalRecord& rec : contents.records)
    data += frame(serialize_record(rec));
  atomic_write_file(path, data);
}

JournalWriter::JournalWriter(const std::string& path,
                             std::uint64_t fingerprint, bool fresh)
    : path_(path) {
  const int flags = O_WRONLY | O_CREAT | O_APPEND | (fresh ? O_TRUNC : 0);
  if (!fresh) {
    // Appends land after whatever the file currently ends with, so a
    // damaged tail must be rewound (rewrite_journal) before appending —
    // records appended behind garbage would be unreachable to every
    // reader. Fingerprint and header are re-validated for the same reason:
    // this writer's records must parse in sequence with the prefix.
    const JournalContents contents = read_journal(path);
    QFAB_CHECK_MSG(contents.header_ok,
                   "journal " << path
                              << " has no valid header; cannot append ("
                              << contents.note << ")");
    QFAB_CHECK_MSG(contents.fingerprint == fingerprint,
                   "journal " << path
                              << " belongs to a different sweep configuration"
                                 " (fingerprint mismatch); cannot append");
    QFAB_CHECK_MSG(!contents.dropped_tail,
                   "journal " << path << " has a damaged tail ("
                              << contents.note
                              << "); rewrite the valid prefix before "
                                 "appending (qfab_journal --repair)");
  }
  fd_ = ::open(path.c_str(), flags, 0644);
  QFAB_CHECK_MSG(fd_ >= 0, "cannot open journal " << path << ": "
                                                  << std::strerror(errno));
  if (fresh) {
    const std::string header = frame(serialize_header(fingerprint));
    write_all_fd(fd_, header.data(), header.size(), path_);
    QFAB_CHECK_MSG(::fsync(fd_) == 0,
                   "fsync of journal " << path_ << " failed");
  }
}

JournalWriter::~JournalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

void JournalWriter::append(const JournalRecord& record) {
  const std::string framed = frame(serialize_record(record));
  const std::lock_guard<std::mutex> lock(mu_);
  const bool counts_as_unit = record.type != JournalRecord::Type::kTimeout;
  const long unit = counts_as_unit ? units_appended_ + 1 : -1;

  if (counts_as_unit && unit == fault::torn_write_unit()) {
    // Simulated crash mid-write: persist only a prefix of the frame.
    write_all_fd(fd_, framed.data(), framed.size() / 2, path_);
    (void)::fsync(fd_);
    fault::crash_now("torn-write");
  }
  if (counts_as_unit && unit == fault::corrupt_crc_unit()) {
    const std::string bad = frame(serialize_record(record), true);
    write_all_fd(fd_, bad.data(), bad.size(), path_);
    (void)::fsync(fd_);
    fault::crash_now("corrupt-crc");
  }

  write_all_fd(fd_, framed.data(), framed.size(), path_);
  QFAB_CHECK_MSG(::fsync(fd_) == 0, "fsync of journal " << path_ << " failed");
  if (!counts_as_unit) return;
  units_appended_ = unit;
  if (unit == fault::crash_after_unit()) fault::crash_now("crash-after-unit");
  if (unit == fault::drain_after_unit()) request_shutdown();
}

}  // namespace qfab
