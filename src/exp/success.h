// The paper's success metric and error-bar statistics (Sec. IV).
//
// An instance is successful when no incorrect output out-counts any correct
// output (ties allowed). Its *margin* is min(correct counts) - max(incorrect
// counts); sigma is the standard deviation of margins across a point's
// instances, and the error bars count instances within one sigma of
// flipping.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.h"

namespace qfab {

struct InstanceOutcome {
  bool success = false;
  /// min over correct outputs of count - max over incorrect outputs of
  /// count. >= 0 iff success.
  std::int64_t margin = 0;
};

/// Evaluate one instance's shot counts (index = measured value) against the
/// sorted list of correct outputs.
InstanceOutcome evaluate_counts(const std::vector<std::uint64_t>& counts,
                                const std::vector<u64>& correct_outputs);

struct PointStats {
  int instances = 0;
  int successes = 0;
  double success_rate = 0.0;  // successes / instances
  double sigma = 0.0;         // stddev of margins (population)
  /// Successful instances with margin < sigma: would have failed within 1σ
  /// (the plot's lower error bar, as an instance count).
  int lower_flips = 0;
  /// Failed instances with margin > -sigma: would have succeeded within 1σ
  /// (upper error bar).
  int upper_flips = 0;
};

PointStats aggregate_outcomes(const std::vector<InstanceOutcome>& outcomes);

}  // namespace qfab
