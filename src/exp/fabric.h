// Fault-tolerant multi-process sweep fabric.
//
// run_sweep_durable (exp/sweep.h) makes one process crash-safe; the fabric
// spreads the same sweep over several worker *processes* on one host while
// keeping every durability guarantee — any worker can die (crash, OOM
// kill, wedge) at any instant and the merged result is still bit-identical
// to a single uninterrupted run. The design is a filesystem-backed work
// queue, chosen over pipes/sockets because the filesystem is exactly as
// durable as the journals already are, and because every piece of protocol
// state is inspectable with ls/cat (and qfab_journal --fabric) after a
// failure.
//
// Layout under the fabric directory:
//
//   MANIFEST                  config fingerprint + grid geometry (atomic
//                             write; lets inspectors and workers validate
//                             the directory against their configuration)
//   leases/u<NNNNNN>.lease    exclusive claim on one work unit, created
//                             O_CREAT|O_EXCL and fsync'd; content
//                             "pid=<p> worker=<w> host=<h> beat=<n>",
//                             rewritten (beat+1) by the holder's heartbeat
//   units/u<NNNNNN>.done      durable completion marker, written only
//                             *after* the unit's record is fsync'd into the
//                             owner's shard journal (marker => record)
//   shards/shard_<W>.journal  per-worker checkpoint journal (exp/journal.h
//                             format, same fingerprint), one per worker
//                             incarnation — ids never reused, so a
//                             respawned worker cannot clobber its
//                             predecessor's durable records
//   shards/shard_<W>.report   worker progress ("units=<n> retried=<m>
//                             drained=<0|1>"), atomically rewritten per
//                             unit; advisory only
//
// Protocol invariants:
//
//   * A unit is executed under a lease; the lease is released (unlinked)
//     only after the done marker exists. A crash at any point leaves
//     either a done marker (unit durable, never recomputed) or a lease
//     that stops heartbeating and is eventually *broken* by the
//     coordinator, after which the unit is reassigned. Reassignment can
//     duplicate a record (the crash window between fsync'd append and
//     marker, or a broken lease whose original holder was merely slow) —
//     never lose one.
//   * The merge walks every shard journal and feeds records through
//     SweepAssembler, which validates shapes against the grid and
//     deduplicates (first record per unit wins, in sorted-shard order).
//     Unit results are deterministic functions of (config, instances,
//     unit), so duplicates are bit-identical and dedup order is
//     immaterial; the assembler then aggregates in unit order, making the
//     merged SweepResult bit-identical to run_sweep_durable's.
//   * Lease staleness is judged by *content change* on a monotonic clock
//     (no cross-process clock comparison): a lease whose content has not
//     changed for lease_seconds × 2^(steals) is expired — the exponential
//     window is the back-off that keeps a repeatedly-stolen unit from
//     thrashing. Expiry SIGKILLs the holder when it is still a live child
//     (it is wedged; a drain request cannot reach it) and unlinks the
//     lease.
//   * Worker crashes (any exit other than 0/kResumableExitCode) are
//     respawned with a fresh worker id under an exponential back-off,
//     bounded by max_respawns; when the budget is exhausted the remaining
//     workers finish what they can and the merge returns an incomplete,
//     resumable result.
//
// Drain: the coordinator propagates a drain request to workers with
// SIGUSR1 (common/shutdown.h soft channel — a terminal Ctrl-C already
// delivered SIGINT to the whole process group, and a second counted signal
// would hard-exit a worker mid-unit). Workers stop claiming units, finish
// and journal the one in flight, and exit kResumableExitCode; re-running
// with resume=true picks up exactly where the fabric left off.
//
// Fault injection: the QFAB_FAULT directives (common/fault.h) all work
// inside workers, which inherit the environment wholesale; fault-worker=W
// gates the spec to one worker id, and hang-after-unit / lease-steal
// exercise the lease-expiry and duplicate-record paths specifically.
#pragma once

#include <sys/types.h>

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "exp/sweep.h"

namespace qfab {

/// Coordinator knobs for run_sweep_fabric.
struct FabricOptions {
  /// Fabric directory (created if missing). Protocol state and shard
  /// journals live here; re-running with resume=true continues from it.
  std::string dir;
  /// Worker processes to spawn (>= 1).
  int workers = 1;
  /// Keep existing done markers and shard journals (their fingerprint must
  /// match); false wipes the directory's protocol state first.
  bool resume = false;
  /// Base lease-staleness window: a lease whose content is unchanged for
  /// lease_seconds × 2^(times stolen) is expired and reassigned. Heartbeats
  /// renew at lease_seconds / 4, so a healthy-but-slow worker is never
  /// expired while its heartbeat thread lives.
  double lease_seconds = 5.0;
  /// Respawn budget for crashed workers (total across the run).
  int max_respawns = 3;
  /// Base delay before respawning a crashed worker; doubles per respawn.
  double respawn_backoff_seconds = 0.1;
  /// Coordinator supervision cadence.
  double poll_seconds = 0.05;
  /// Rewrite a done-unit count line on stderr as markers appear.
  bool progress = false;
  /// Spawn override for tests: must start a worker process executing
  /// run_sweep_worker(config, instances, dir, worker_id, lease_seconds)
  /// and return its pid. Default (unset) forks and runs the worker loop in
  /// the child directly.
  std::function<pid_t(int worker_id)> spawn;
};

/// One reaped worker process.
struct WorkerExit {
  int worker_id = -1;
  pid_t pid = -1;
  /// Exit status: 0 complete, kResumableExitCode drained, 128+signal for
  /// signal deaths (137 = SIGKILL, including coordinator kills of wedged
  /// holders), otherwise the worker's exit code.
  int exit_code = -1;
};

/// What the coordinator observed, for tests and operators.
struct FabricReport {
  int workers_spawned = 0;   ///< including respawns
  int respawns = 0;
  int lease_steals = 0;      ///< leases expired and broken
  int kills = 0;             ///< wedged live holders SIGKILLed
  bool drained = false;
  std::vector<WorkerExit> exits;  ///< in reap order
};

/// Worker loop: claim leases, execute units through the shared sweep
/// engine, journal to an own shard, heartbeat. Runs in the worker process
/// (installed by the coordinator's spawner); also callable directly for an
/// in-process single-worker reference. Returns 0 when every unit of the
/// sweep has a done marker, kResumableExitCode when a drain request
/// stopped it early. The config/instances must be the coordinator's exact
/// sweep (validated against MANIFEST's fingerprint).
int run_sweep_worker(const SweepConfig& config,
                     const std::vector<ArithInstance>& instances,
                     const std::string& dir, int worker_id,
                     double lease_seconds);

/// Coordinator: prepare the fabric directory, spawn `options.workers`
/// workers, supervise leases and child processes (expiry, respawn, drain
/// propagation), then merge the shard journals into a SweepResult
/// bit-identical to run_sweep_durable on the same (config, instances).
/// `report`, when non-null, receives the supervision accounting.
SweepResult run_sweep_fabric(const SweepConfig& config,
                             const std::vector<ArithInstance>& instances,
                             const FabricOptions& options,
                             FabricReport* report = nullptr);

/// One shard journal's health, as seen by inspection (no config needed).
struct FabricShardStatus {
  std::string file;  // name within shards/
  bool header_ok = false;
  bool fingerprint_ok = false;  // matches the MANIFEST fingerprint
  std::size_t records = 0;      // valid records (kTimeout markers included)
  bool dropped_tail = false;
  std::size_t dropped_bytes = 0;
  std::size_t dropped_frames = 0;
  std::string note;
};

/// One live lease file.
struct FabricLeaseStatus {
  std::string file;  // name within leases/
  std::string content;
};

/// Everything qfab_journal --fabric reports about a fabric directory.
struct FabricStatus {
  bool manifest_ok = false;
  std::uint64_t fingerprint = 0;
  std::size_t n_units = 0;
  std::size_t done_markers = 0;
  std::vector<FabricLeaseStatus> leases;
  std::vector<FabricShardStatus> shards;
};

/// Read-only inspection of a fabric directory.
FabricStatus inspect_fabric(const std::string& dir);

/// Repair outcome for repair_fabric.
struct FabricRepair {
  std::size_t shards_rewritten = 0;
  /// Whole record frames discarded with the damaged tails (reported, never
  /// silently dropped; the units they carried will be recomputed).
  std::size_t dropped_records = 0;
  std::size_t dropped_bytes = 0;
  std::size_t leases_cleared = 0;
};

/// Rewrite every damaged shard journal down to its valid prefix and clear
/// all lease files (only safe with no fabric running on the directory).
FabricRepair repair_fabric(const std::string& dir);

}  // namespace qfab
