#include "exp/sweep.h"

#include <algorithm>
#include <cmath>
#include <iostream>
#include <ostream>

#include "common/parallel.h"
#include "common/stopwatch.h"

namespace qfab {

namespace {

/// Deterministic per-(instance, depth, rate) RNG, independent of execution
/// order and thread scheduling.
Pcg64 point_rng(std::uint64_t seed, std::size_t instance, std::size_t depth_i,
                std::size_t rate_i) {
  const std::uint64_t salt = (static_cast<std::uint64_t>(instance) << 32) ^
                             (static_cast<std::uint64_t>(depth_i) << 16) ^
                             static_cast<std::uint64_t>(rate_i);
  Pcg64 root(seed, 0x5eedULL);
  return root.split(salt);
}

}  // namespace

const SweepPoint& SweepResult::at(int depth, double rate_percent) const {
  for (const SweepPoint& p : points)
    if (p.depth == depth && std::abs(p.rate_percent - rate_percent) < 1e-12)
      return p;
  QFAB_CHECK_MSG(false, "no sweep point for depth " << depth << " rate "
                                                    << rate_percent);
  return points.front();
}

SweepResult run_sweep(const SweepConfig& config,
                      const std::vector<ArithInstance>& instances) {
  QFAB_CHECK(!config.depths.empty());
  QFAB_CHECK(!instances.empty());
  Stopwatch watch;

  std::vector<double> rates = config.rates_percent;
  if (config.include_noise_free) rates.insert(rates.begin(), 0.0);
  const std::size_t n_depths = config.depths.size();
  const std::size_t n_rates = rates.size();
  const std::size_t n_inst = instances.size();

  // outcomes[depth][rate][instance]
  std::vector<std::vector<std::vector<InstanceOutcome>>> outcomes(
      n_depths, std::vector<std::vector<InstanceOutcome>>(
                    n_rates, std::vector<InstanceOutcome>(n_inst)));

  // Transpile and compile the execution plan once per depth (cheap next to
  // simulation, but shared by every instance and trajectory).
  std::vector<QuantumCircuit> circuits;
  std::vector<std::shared_ptr<const FusedPlan>> plans;
  circuits.reserve(n_depths);
  plans.reserve(n_depths);
  for (int depth : config.depths) {
    CircuitSpec spec = config.base;
    spec.depth = depth;
    circuits.push_back(build_transpiled_circuit(spec));
    plans.push_back(std::make_shared<const FusedPlan>(circuits.back()));
  }

  auto make_noise = [&](std::size_t r) {
    NoiseModel noise;
    (config.vary_2q ? noise.p2q : noise.p1q) = rates[r] / 100.0;
    noise.noisy_rz = config.run.noisy_rz;
    noise.noisy_id = config.run.noisy_id;
    return noise;
  };

  const int lanes = std::clamp(config.run.batch_lanes, 1,
                               BatchedStateVector::kMaxLanes);
  if (lanes > 1 && !config.run.per_shot) {
    // Batched path: groups of up to `lanes` instances share each ideal run
    // (one fused-plan pass for the whole group), and each instance's error
    // trajectories batch again inside evaluate. The final group is ragged
    // when n_inst % lanes != 0. Every point still draws from
    // point_rng(seed, i, d, r), so results are independent of grouping and
    // identical in distribution to the scalar path.
    const std::size_t B = static_cast<std::size_t>(lanes);
    const std::size_t n_groups = (n_inst + B - 1) / B;
    parallel_for_chunked(0, n_groups, [&](std::size_t glo, std::size_t ghi) {
      for (std::size_t g = glo; g < ghi; ++g) {
        const std::size_t i0 = g * B;
        const std::size_t i1 = std::min(i0 + B, n_inst);
        const std::vector<ArithInstance> group(instances.begin() + i0,
                                               instances.begin() + i1);
        for (std::size_t d = 0; d < n_depths; ++d) {
          CircuitSpec spec = config.base;
          spec.depth = config.depths[d];
          const InstanceBatch batch(circuits[d], spec, group, config.run,
                                    plans[d]);
          for (std::size_t r = 0; r < n_rates; ++r) {
            std::vector<Pcg64> rngs;
            rngs.reserve(group.size());
            for (std::size_t m = 0; m < group.size(); ++m)
              rngs.push_back(point_rng(config.seed, i0 + m, d, r));
            const std::vector<InstanceOutcome> results =
                batch.evaluate_all(make_noise(r), config.run, rngs);
            for (std::size_t m = 0; m < group.size(); ++m)
              outcomes[d][r][i0 + m] = results[m];
          }
        }
        if (config.progress)
          for (std::size_t i = i0; i < i1; ++i) std::cerr << '.' << std::flush;
      }
    });
  } else {
    parallel_for_chunked(0, n_inst, [&](std::size_t lo, std::size_t hi) {
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t d = 0; d < n_depths; ++d) {
          CircuitSpec spec = config.base;
          spec.depth = config.depths[d];
          // One ideal run (with checkpoints) serves every rate cluster.
          const InstanceContext context(circuits[d], spec, instances[i],
                                        config.run, plans[d]);
          for (std::size_t r = 0; r < n_rates; ++r) {
            Pcg64 rng = point_rng(config.seed, i, d, r);
            outcomes[d][r][i] = context.evaluate(make_noise(r), config.run, rng);
          }
        }
        if (config.progress) std::cerr << '.' << std::flush;
      }
    });
  }
  if (config.progress) std::cerr << '\n';

  SweepResult result;
  result.config = config;
  result.config.instances = static_cast<int>(n_inst);
  for (std::size_t d = 0; d < n_depths; ++d)
    for (std::size_t r = 0; r < n_rates; ++r) {
      SweepPoint point;
      point.depth = config.depths[d];
      point.rate_percent = rates[r];
      point.stats = aggregate_outcomes(outcomes[d][r]);
      result.points.push_back(point);
    }
  result.seconds = watch.seconds();
  return result;
}

std::string depth_label(int depth) {
  return depth == kFullDepth ? "full" : std::to_string(depth);
}

TextTable sweep_table(const SweepResult& result) {
  std::vector<std::string> headers = {
      result.config.vary_2q ? "P2q_err%" : "P1q_err%"};
  for (int d : result.config.depths) headers.push_back("d=" + depth_label(d));
  TextTable table(std::move(headers));

  std::vector<double> rates = result.config.rates_percent;
  if (result.config.include_noise_free) rates.insert(rates.begin(), 0.0);
  for (double rate : rates) {
    std::vector<std::string> row;
    row.push_back(rate == 0.0 ? "noise-free" : fmt_double(rate, 2));
    for (int d : result.config.depths) {
      const PointStats& s = result.at(d, rate).stats;
      row.push_back(fmt_percent(s.success_rate, 1) + "% [-" +
                    std::to_string(s.lower_flips) + "/+" +
                    std::to_string(s.upper_flips) + "]");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void print_sweep(std::ostream& os, const SweepResult& result,
                 const std::string& caption) {
  os << caption << '\n';
  os << "  instances=" << result.config.instances
     << " shots=" << result.config.run.shots << " traj="
     << result.config.run.error_trajectories
     << (result.config.run.per_shot ? " mode=per-shot" : " mode=stratified")
     << " seed=" << result.config.seed << " ("
     << fmt_double(result.seconds, 1) << " s)\n";
  os << "  cells: success% [-lower/+upper error-bar instance flips]\n";
  sweep_table(result).print(os);
  os << '\n';
}

}  // namespace qfab
