#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/parallel.h"
#include "common/shutdown.h"
#include "common/stopwatch.h"
#include "exp/journal.h"

namespace qfab {

namespace {

/// Deterministic per-(instance, depth, rate) RNG, independent of execution
/// order and thread scheduling. This is what makes checkpoint/resume exact:
/// a unit computed after a restart draws the same streams it would have
/// drawn in the uninterrupted run.
Pcg64 point_rng(std::uint64_t seed, std::size_t instance, std::size_t depth_i,
                std::size_t rate_i) {
  const std::uint64_t salt = (static_cast<std::uint64_t>(instance) << 32) ^
                             (static_cast<std::uint64_t>(depth_i) << 16) ^
                             static_cast<std::uint64_t>(rate_i);
  Pcg64 root(seed, 0x5eedULL);
  return root.split(salt);
}

NoiseModel noise_at(const SweepConfig& config, double rate_percent) {
  NoiseModel noise;
  (config.vary_2q ? noise.p2q : noise.p1q) = rate_percent / 100.0;
  noise.noisy_rz = config.run.noisy_rz;
  noise.noisy_id = config.run.noisy_id;
  return noise;
}

/// Immutable per-sweep state shared by every work unit (circuits and fused
/// plans are compiled once per depth), plus the lazily compiled scalar
/// non-fused plans that health-sentinel retries fall back to.
struct SweepContext {
  SweepContext(const SweepConfig& config_in,
               const std::vector<ArithInstance>& instances_in)
      : config(config_in), instances(instances_in) {}

  const SweepConfig& config;
  const std::vector<ArithInstance>& instances;
  std::vector<double> rates;
  std::vector<std::size_t> cluster;  // positive-rate column indices
  bool use_shared = false;
  std::size_t block = 1;  // instances per work unit
  std::vector<QuantumCircuit> circuits;
  std::vector<std::shared_ptr<const FusedPlan>> plans;

  std::mutex nonfused_mu;
  std::vector<std::shared_ptr<const FusedPlan>> nonfused;

  /// Per-gate (fusion disabled) plan for depth index `d`, compiled on first
  /// use: retries deliberately avoid the fused kernels in case the fault
  /// lives there.
  std::shared_ptr<const FusedPlan> nonfused_plan(std::size_t d) {
    const std::lock_guard<std::mutex> lock(nonfused_mu);
    if (!nonfused[d]) {
      FusionOptions opt;
      opt.enable = false;
      nonfused[d] = std::make_shared<const FusedPlan>(circuits[d], opt);
    }
    return nonfused[d];
  }
};

/// One work unit's results: outcomes[rate][member] for the instance block,
/// plus its shared-trajectory bookkeeping contribution.
struct UnitOut {
  std::vector<std::vector<InstanceOutcome>> outcomes;
  SharedEstimateStats stats;
  bool retried = false;   // sentinel tripped, scalar retry ran
  bool poisoned = false;  // sentinel tripped on the retry too
  std::string error;      // poisoned-member descriptions
};

/// Evaluate one instance on the scalar path (InstanceContext): all
/// non-shared rate columns per-rate, then the shared cluster. Used both as
/// the primary path when units are single-instance (per-shot mode or
/// batch_lanes <= 1) and per-member by health-sentinel retries.
void evaluate_member_scalar(SweepContext& sc, std::size_t i, std::size_t d,
                            const RunOptions& run,
                            std::shared_ptr<const FusedPlan> plan,
                            UnitOut& out, std::size_t m) {
  CircuitSpec spec = sc.config.base;
  spec.depth = sc.config.depths[d];
  // One ideal run (with checkpoints) serves every rate cluster.
  const InstanceContext context(sc.circuits[d], spec, sc.instances[i], run,
                                std::move(plan));
  for (std::size_t r = 0; r < sc.rates.size(); ++r) {
    if (sc.use_shared && sc.rates[r] > 0.0) continue;
    Pcg64 rng = point_rng(sc.config.seed, i, d, r);
    out.outcomes[r][m] =
        context.evaluate(noise_at(sc.config, sc.rates[r]), run, rng);
  }
  if (sc.use_shared) {
    std::vector<NoiseModel> noises;
    std::vector<Pcg64> rngs;
    noises.reserve(sc.cluster.size());
    rngs.reserve(sc.cluster.size());
    for (std::size_t r : sc.cluster) {
      noises.push_back(noise_at(sc.config, sc.rates[r]));
      rngs.push_back(point_rng(sc.config.seed, i, d, r));
    }
    const std::vector<InstanceOutcome> results =
        context.evaluate_rates(noises, run, rngs, &out.stats);
    for (std::size_t c = 0; c < sc.cluster.size(); ++c)
      out.outcomes[sc.cluster[c]][m] = results[c];
  }
}

/// Batched path: the whole instance block shares each ideal run (one
/// fused-plan pass for the group) and each instance's error trajectories
/// batch again inside evaluate. Every point still draws from
/// point_rng(seed, i, d, r), so results are independent of grouping and
/// identical in distribution to the scalar path.
void run_unit_batched(SweepContext& sc, std::size_t d, std::size_t i0,
                      std::size_t i1, const RunOptions& run, UnitOut& out) {
  const std::vector<ArithInstance> group(sc.instances.begin() + i0,
                                         sc.instances.begin() + i1);
  CircuitSpec spec = sc.config.base;
  spec.depth = sc.config.depths[d];
  const InstanceBatch batch(sc.circuits[d], spec, group, run, sc.plans[d]);
  for (std::size_t r = 0; r < sc.rates.size(); ++r) {
    if (sc.use_shared && sc.rates[r] > 0.0) continue;
    std::vector<Pcg64> rngs;
    rngs.reserve(group.size());
    for (std::size_t m = 0; m < group.size(); ++m)
      rngs.push_back(point_rng(sc.config.seed, i0 + m, d, r));
    const std::vector<InstanceOutcome> results =
        batch.evaluate_all(noise_at(sc.config, sc.rates[r]), run, rngs);
    for (std::size_t m = 0; m < group.size(); ++m)
      out.outcomes[r][m] = results[m];
  }
  if (sc.use_shared) {
    std::vector<NoiseModel> noises;
    std::vector<std::vector<Pcg64>> rngs(sc.cluster.size());
    noises.reserve(sc.cluster.size());
    for (std::size_t c = 0; c < sc.cluster.size(); ++c) {
      noises.push_back(noise_at(sc.config, sc.rates[sc.cluster[c]]));
      rngs[c].reserve(group.size());
      for (std::size_t m = 0; m < group.size(); ++m)
        rngs[c].push_back(point_rng(sc.config.seed, i0 + m, d, sc.cluster[c]));
    }
    const std::vector<std::vector<InstanceOutcome>> results =
        batch.evaluate_all_rates(noises, run, rngs, &out.stats);
    for (std::size_t c = 0; c < sc.cluster.size(); ++c)
      for (std::size_t m = 0; m < group.size(); ++m)
        out.outcomes[sc.cluster[c]][m] = results[c][m];
  }
}

/// Run one work unit: instance block [i0, i1) at depth index d, all rate
/// columns. When a numerical health sentinel trips, retry every member once
/// on the scalar non-fused path (the most conservative engine in the repo);
/// members that fail again are recorded as poisoned (outcomes stay
/// success=false) instead of crashing the sweep.
UnitOut run_unit(SweepContext& sc, std::size_t d, std::size_t i0,
                 std::size_t i1) {
  const std::size_t members = i1 - i0;
  UnitOut out;
  out.outcomes.assign(sc.rates.size(), std::vector<InstanceOutcome>(members));
  try {
    if (sc.block > 1)
      run_unit_batched(sc, d, i0, i1, sc.config.run, out);
    else
      evaluate_member_scalar(sc, i0, d, sc.config.run, sc.plans[d], out, 0);
    return out;
  } catch (const NumericalHealthError& err) {
    std::cerr << "\n[qfab] numerical health sentinel tripped (depth "
              << depth_label(sc.config.depths[d]) << ", instances [" << i0
              << "," << i1 << ")): " << err.what()
              << "; retrying on the scalar non-fused path\n";
  }
  out = UnitOut{};
  out.outcomes.assign(sc.rates.size(), std::vector<InstanceOutcome>(members));
  out.retried = true;
  RunOptions retry = sc.config.run;
  retry.batch_lanes = 1;
  // The scalar path replays in double regardless, but pin it so a future
  // scalar float tier cannot silently weaken the conservative retry.
  retry.precision = Precision::kDouble;
  const std::shared_ptr<const FusedPlan> plan = sc.nonfused_plan(d);
  for (std::size_t m = 0; m < members; ++m) {
    try {
      evaluate_member_scalar(sc, i0 + m, d, retry, plan, out, m);
    } catch (const NumericalHealthError& err) {
      out.poisoned = true;
      std::ostringstream desc;
      desc << "instance " << (i0 + m) << " at depth "
           << depth_label(sc.config.depths[d])
           << " failed the scalar non-fused retry: " << err.what();
      if (!out.error.empty()) out.error += "; ";
      out.error += desc.str();
      for (std::size_t r = 0; r < sc.rates.size(); ++r)
        out.outcomes[r][m] = InstanceOutcome{};
    }
  }
  return out;
}

/// Sweep progress, drain display, and the soft-deadline watchdog, all on
/// one watcher thread owned by run_sweep_durable (no worker-side stderr
/// writes): workers bump an atomic member counter and register in-flight
/// units; the watcher rewrites a count/percent/ETA line at a fixed cadence
/// and journals a timeout marker for units past the deadline. The thread is
/// joined on every exit path — finish() is called from the destructor too,
/// so a worker exception cannot leak a detached watcher past the sweep's
/// locals.
class SweepMonitor {
 public:
  SweepMonitor(bool progress, std::size_t total_members, double deadline,
               JournalWriter* journal)
      : progress_(progress && total_members > 0),
        total_(total_members),
        deadline_(deadline),
        journal_(journal) {
    if (progress_ || deadline_ > 0.0)
      watcher_ = std::thread([this] { watch(); });
  }
  ~SweepMonitor() { finish(); }

  void add(std::size_t n) { done_.fetch_add(n, std::memory_order_relaxed); }

  void unit_started(std::size_t unit, std::size_t depth_index, std::size_t i0,
                    std::size_t i1) {
    if (deadline_ <= 0.0) return;
    const std::lock_guard<std::mutex> lock(mu_);
    inflight_[unit] = InFlight{watch_.seconds(), depth_index, i0, i1, false};
  }
  void unit_finished(std::size_t unit) {
    if (deadline_ <= 0.0) return;
    const std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(unit);
  }

  /// Stop and join the watcher, then print the final line (idempotent,
  /// never throws: runs from the destructor during unwinding too).
  void finish() noexcept {
    try {
      if (watcher_.joinable()) {
        {
          const std::lock_guard<std::mutex> lock(mu_);
          stop_ = true;
        }
        cv_.notify_all();
        watcher_.join();
      }
      if (progress_ && !final_printed_) {
        final_printed_ = true;
        print();
        std::cerr << '\n';
      }
    } catch (...) {
      // stderr reporting is best-effort; never propagate out of a dtor.
    }
  }

 private:
  struct InFlight {
    double start = 0.0;
    std::size_t depth_index = 0;
    std::size_t i0 = 0;
    std::size_t i1 = 0;
    bool flagged = false;
  };

  void watch() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(500),
                         [this] { return stop_; })) {
      if (progress_) print();
      if (deadline_ > 0.0) check_deadlines();
    }
  }

  void print() const {
    const std::size_t done = done_.load(std::memory_order_relaxed);
    const double elapsed = watch_.seconds();
    std::ostringstream line;
    line << "\r  sweep " << done << '/' << total_ << " ("
         << 100 * done / total_ << "%)";
    if (done > 0 && done < total_) {
      const double eta = elapsed * static_cast<double>(total_ - done) /
                         static_cast<double>(done);
      line << " eta ~" << fmt_double(eta, 0) << "s";
    }
    if (shutdown_requested()) line << " [draining]";
    line << "    ";
    std::cerr << line.str() << std::flush;
  }

  // Called with mu_ held. Each overdue unit is flagged and journaled once;
  // it keeps running (simulation work is not preemptible) and its eventual
  // completion record supersedes the marker.
  void check_deadlines() {
    const double now = watch_.seconds();
    for (auto& entry : inflight_) {
      InFlight& f = entry.second;
      if (f.flagged || now - f.start <= deadline_) continue;
      f.flagged = true;
      std::cerr << "\n[qfab] work unit (depth_index=" << f.depth_index
                << ", instances [" << f.i0 << "," << f.i1
                << ")) exceeded the soft deadline of "
                << fmt_double(deadline_, 0)
                << "s; journaling a timeout marker\n";
      if (journal_ == nullptr) continue;
      JournalRecord rec;
      rec.type = JournalRecord::Type::kTimeout;
      rec.depth_index = static_cast<std::uint32_t>(f.depth_index);
      rec.block_begin = static_cast<std::uint32_t>(f.i0);
      rec.block_end = static_cast<std::uint32_t>(f.i1);
      try {
        journal_->append(rec);
      } catch (...) {
        // The marker is advisory; never fail the sweep over it.
      }
    }
  }

  const bool progress_;
  const std::size_t total_;
  const double deadline_;
  JournalWriter* const journal_;
  std::atomic<std::size_t> done_{0};
  Stopwatch watch_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::size_t, InFlight> inflight_;
  bool stop_ = false;
  bool final_printed_ = false;
  std::thread watcher_;
};

}  // namespace

std::vector<double> SweepConfig::expanded_rates() const {
  std::vector<double> rates = rates_percent;
  if (include_noise_free) rates.insert(rates.begin(), 0.0);
  return rates;
}

const SweepPoint& SweepResult::at(int depth, double rate_percent) const {
  for (const SweepPoint& p : points)
    if (p.depth == depth && std::abs(p.rate_percent - rate_percent) < 1e-12)
      return p;
  QFAB_CHECK_MSG(false, "no sweep point for depth " << depth << " rate "
                                                    << rate_percent);
  return points.front();
}

SweepResult run_sweep(const SweepConfig& config,
                      const std::vector<ArithInstance>& instances) {
  return run_sweep_durable(config, instances, DurableOptions{});
}

SweepResult run_sweep_durable(const SweepConfig& config,
                              const std::vector<ArithInstance>& instances,
                              const DurableOptions& durable) {
  QFAB_CHECK(!config.depths.empty());
  QFAB_CHECK(!instances.empty());
  Stopwatch watch;

  SweepContext sc{config, instances};
  sc.rates = config.expanded_rates();
  const std::size_t n_depths = config.depths.size();
  const std::size_t n_rates = sc.rates.size();
  const std::size_t n_inst = instances.size();

  // The positive-rate columns form one shared-trajectory cluster per
  // (instance, depth): sampled once from the proposal rate and reweighted
  // per column. Zero-rate columns (the noise-free cluster) stay on the
  // per-rate path, which short-circuits to the ideal marginal anyway.
  for (std::size_t r = 0; r < n_rates; ++r)
    if (sc.rates[r] > 0.0) sc.cluster.push_back(r);
  sc.use_shared = config.run.shared_trajectories && !config.run.per_shot &&
                  !sc.cluster.empty();

  // Work-unit granularity: an (instance-block, depth) pair covering every
  // rate column — the smallest piece whose results are self-contained,
  // because the shared estimator computes whole rate clusters and the
  // batched engine advances whole instance groups. The final block is
  // ragged when n_inst % block != 0. Unit u = group * n_depths + depth.
  const int lanes = std::clamp(config.run.batch_lanes, 1,
                               BatchedStateVector::kMaxLanes);
  sc.block = (lanes > 1 && !config.run.per_shot)
                 ? static_cast<std::size_t>(lanes)
                 : 1;
  const std::size_t n_groups = (n_inst + sc.block - 1) / sc.block;
  const std::size_t n_units = n_groups * n_depths;

  // Transpile and compile the execution plan once per depth (cheap next to
  // simulation, but shared by every instance and trajectory).
  sc.circuits.reserve(n_depths);
  sc.plans.reserve(n_depths);
  for (int depth : config.depths) {
    CircuitSpec spec = config.base;
    spec.depth = depth;
    sc.circuits.push_back(build_transpiled_circuit(spec));
    sc.plans.push_back(std::make_shared<const FusedPlan>(sc.circuits.back()));
  }
  sc.nonfused.assign(n_depths, nullptr);

  // outcomes[depth][rate][instance]
  std::vector<std::vector<std::vector<InstanceOutcome>>> outcomes(
      n_depths, std::vector<std::vector<InstanceOutcome>>(
                    n_rates, std::vector<InstanceOutcome>(n_inst)));
  std::vector<SharedEstimateStats> unit_stats(n_units);
  std::vector<std::string> unit_error(n_units);
  std::vector<char> unit_done(n_units, 0);
  std::size_t restored = 0;
  std::size_t restored_members = 0;

  std::unique_ptr<JournalWriter> journal;
  if (!durable.journal_path.empty()) {
    const std::uint64_t fp = sweep_fingerprint(config, instances);
    bool fresh = true;
    if (durable.resume) {
      const JournalContents contents = read_journal(durable.journal_path);
      if (contents.header_ok) {
        QFAB_CHECK_MSG(
            contents.fingerprint == fp,
            "journal " << durable.journal_path
                       << " was written by a different sweep configuration "
                          "(fingerprint mismatch); refusing to resume");
        if (contents.dropped_tail) {
          std::cerr << "[qfab] " << durable.journal_path << ": "
                    << contents.note << "; dropped the damaged tail, kept "
                    << contents.records.size() << " record(s)\n";
          rewrite_journal(durable.journal_path, contents);
        }
        for (const JournalRecord& rec : contents.records) {
          if (rec.type == JournalRecord::Type::kTimeout) continue;
          const std::size_t d = rec.depth_index;
          const std::size_t i0 = rec.block_begin;
          const std::size_t i1 = rec.block_end;
          const bool fits =
              d < n_depths && i0 < n_inst && i0 % sc.block == 0 &&
              i1 == std::min(i0 + sc.block, n_inst) &&
              rec.outcomes.size() == n_rates &&
              std::all_of(rec.outcomes.begin(), rec.outcomes.end(),
                          [&](const std::vector<InstanceOutcome>& row) {
                            return row.size() == i1 - i0;
                          });
          if (!fits) {
            // Should be unreachable behind the fingerprint check; skipping
            // (instead of trusting bad indices) keeps resume safe anyway.
            std::cerr << "[qfab] " << durable.journal_path
                      << ": skipped a record that does not fit the sweep "
                         "grid\n";
            continue;
          }
          const std::size_t u = (i0 / sc.block) * n_depths + d;
          for (std::size_t r = 0; r < n_rates; ++r)
            for (std::size_t m = 0; m < i1 - i0; ++m)
              outcomes[d][r][i0 + m] = rec.outcomes[r][m];
          unit_stats[u] = rec.stats;
          unit_error[u] =
              rec.type == JournalRecord::Type::kPoisoned ? rec.error : "";
          if (!unit_done[u]) {
            ++restored;
            restored_members += i1 - i0;
          }
          unit_done[u] = 1;
        }
        fresh = false;
      } else if (!contents.note.empty()) {
        std::cerr << "[qfab] " << durable.journal_path << ": "
                  << contents.note << "; starting a fresh journal\n";
      }
    }
    journal =
        std::make_unique<JournalWriter>(durable.journal_path, fp, fresh);
  }

  std::vector<std::size_t> pending;
  pending.reserve(n_units);
  for (std::size_t u = 0; u < n_units; ++u)
    if (!unit_done[u]) pending.push_back(u);

  SweepMonitor monitor(config.progress, n_inst * n_depths,
                       durable.unit_deadline_seconds, journal.get());
  monitor.add(restored_members);
  std::atomic<std::size_t> retried{0};

  parallel_for_chunked(0, pending.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      // Drain: stop claiming new units; units already running elsewhere
      // finish and journal normally.
      if (shutdown_requested()) return;
      const std::size_t u = pending[k];
      const std::size_t d = u % n_depths;
      const std::size_t i0 = (u / n_depths) * sc.block;
      const std::size_t i1 = std::min(i0 + sc.block, n_inst);
      monitor.unit_started(u, d, i0, i1);
      UnitOut out = run_unit(sc, d, i0, i1);
      monitor.unit_finished(u);
      if (out.retried) retried.fetch_add(1, std::memory_order_relaxed);
      for (std::size_t r = 0; r < n_rates; ++r)
        for (std::size_t m = 0; m < i1 - i0; ++m)
          outcomes[d][r][i0 + m] = out.outcomes[r][m];
      unit_stats[u] = out.stats;
      unit_error[u] = out.error;
      unit_done[u] = 1;
      if (journal) {
        JournalRecord rec;
        rec.type = out.poisoned ? JournalRecord::Type::kPoisoned
                                : JournalRecord::Type::kUnit;
        rec.depth_index = static_cast<std::uint32_t>(d);
        rec.block_begin = static_cast<std::uint32_t>(i0);
        rec.block_end = static_cast<std::uint32_t>(i1);
        rec.outcomes = std::move(out.outcomes);
        rec.stats = out.stats;
        rec.error = out.error;
        journal->append(rec);
      }
      monitor.add(i1 - i0);
    }
  });
  monitor.finish();

  SweepResult result;
  result.config = config;
  result.config.instances = static_cast<int>(n_inst);
  result.units_total = n_units;
  result.units_done = static_cast<std::size_t>(
      std::count(unit_done.begin(), unit_done.end(), char(1)));
  result.units_restored = restored;
  result.units_retried = retried.load(std::memory_order_relaxed);
  result.complete = result.units_done == n_units;
  for (std::size_t u = 0; u < n_units; ++u)
    if (unit_done[u] && !unit_error[u].empty())
      result.unit_errors.push_back(unit_error[u]);
  if (result.complete) {
    // Deterministic stats aggregation: merge in unit order so the float
    // sums are identical run-to-run (and across interrupt/resume), not
    // dependent on worker scheduling.
    for (std::size_t u = 0; u < n_units; ++u)
      result.shared_stats.merge(unit_stats[u]);
    for (std::size_t d = 0; d < n_depths; ++d)
      for (std::size_t r = 0; r < n_rates; ++r) {
        SweepPoint point;
        point.depth = config.depths[d];
        point.rate_percent = sc.rates[r];
        point.stats = aggregate_outcomes(outcomes[d][r]);
        result.points.push_back(point);
      }
  }
  result.seconds = watch.seconds();
  return result;
}

std::string depth_label(int depth) {
  return depth == kFullDepth ? "full" : std::to_string(depth);
}

TextTable sweep_table(const SweepResult& result) {
  std::vector<std::string> headers = {
      result.config.vary_2q ? "P2q_err%" : "P1q_err%"};
  for (int d : result.config.depths) headers.push_back("d=" + depth_label(d));
  TextTable table(std::move(headers));

  for (double rate : result.config.expanded_rates()) {
    std::vector<std::string> row;
    row.push_back(rate == 0.0 ? "noise-free" : fmt_double(rate, 2));
    for (int d : result.config.depths) {
      const PointStats& s = result.at(d, rate).stats;
      row.push_back(fmt_percent(s.success_rate, 1) + "% [-" +
                    std::to_string(s.lower_flips) + "/+" +
                    std::to_string(s.upper_flips) + "]");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void print_sweep(std::ostream& os, const SweepResult& result,
                 const std::string& caption) {
  os << caption << '\n';
  os << "  instances=" << result.config.instances
     << " shots=" << result.config.run.shots << " traj="
     << result.config.run.error_trajectories
     << (result.config.run.per_shot
             ? " mode=per-shot"
             : (result.config.run.shared_trajectories ? " mode=shared"
                                                      : " mode=stratified"))
     << " seed=" << result.config.seed << " ("
     << fmt_double(result.seconds, 1) << " s)\n";
  if (result.units_restored > 0)
    os << "  resumed: " << result.units_restored << '/' << result.units_total
       << " work units restored from the checkpoint journal\n";
  for (const std::string& err : result.unit_errors)
    os << "  WARNING poisoned unit: " << err << '\n';
  os << "  cells: success% [-lower/+upper error-bar instance flips]\n";
  sweep_table(result).print(os);
  os << '\n';
}

}  // namespace qfab
