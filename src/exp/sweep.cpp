#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <iostream>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/parallel.h"
#include "common/shutdown.h"
#include "common/stopwatch.h"
#include "exp/journal.h"

namespace qfab {

namespace {

/// Deterministic per-(instance, depth, rate) RNG, independent of execution
/// order and thread scheduling. This is what makes checkpoint/resume exact:
/// a unit computed after a restart draws the same streams it would have
/// drawn in the uninterrupted run.
Pcg64 point_rng(std::uint64_t seed, std::size_t instance, std::size_t depth_i,
                std::size_t rate_i) {
  const std::uint64_t salt = (static_cast<std::uint64_t>(instance) << 32) ^
                             (static_cast<std::uint64_t>(depth_i) << 16) ^
                             static_cast<std::uint64_t>(rate_i);
  Pcg64 root(seed, 0x5eedULL);
  return root.split(salt);
}

NoiseModel noise_at(const SweepConfig& config, double rate_percent) {
  NoiseModel noise;
  (config.vary_2q ? noise.p2q : noise.p1q) = rate_percent / 100.0;
  noise.noisy_rz = config.run.noisy_rz;
  noise.noisy_id = config.run.noisy_id;
  return noise;
}

/// Immutable per-sweep state shared by every work unit (circuits and fused
/// plans are compiled once per depth), plus the lazily compiled scalar
/// non-fused plans that health-sentinel retries fall back to.
struct SweepContext {
  SweepContext(const SweepConfig& config_in,
               const std::vector<ArithInstance>& instances_in)
      : config(config_in), instances(instances_in) {}

  const SweepConfig& config;
  const std::vector<ArithInstance>& instances;
  std::vector<double> rates;
  std::vector<std::size_t> cluster;  // positive-rate column indices
  bool use_shared = false;
  std::size_t block = 1;  // instances per work unit
  std::vector<QuantumCircuit> circuits;
  std::vector<std::shared_ptr<const FusedPlan>> plans;

  std::mutex nonfused_mu;
  std::vector<std::shared_ptr<const FusedPlan>> nonfused;

  /// Compile everything the work units share. Separate from the
  /// constructor so the context can bind its references first.
  void prepare() {
    rates = config.expanded_rates();
    // The positive-rate columns form one shared-trajectory cluster per
    // (instance, depth): sampled once from the proposal rate and reweighted
    // per column. Zero-rate columns (the noise-free cluster) stay on the
    // per-rate path, which short-circuits to the ideal marginal anyway.
    for (std::size_t r = 0; r < rates.size(); ++r)
      if (rates[r] > 0.0) cluster.push_back(r);
    use_shared = config.run.shared_trajectories && !config.run.per_shot &&
                 !cluster.empty();
    // Transpile and compile the execution plan once per depth (cheap next
    // to simulation, but shared by every instance and trajectory).
    circuits.reserve(config.depths.size());
    plans.reserve(config.depths.size());
    for (int depth : config.depths) {
      CircuitSpec spec = config.base;
      spec.depth = depth;
      circuits.push_back(build_transpiled_circuit(spec));
      plans.push_back(std::make_shared<const FusedPlan>(circuits.back()));
    }
    nonfused.assign(config.depths.size(), nullptr);
  }

  /// Per-gate (fusion disabled) plan for depth index `d`, compiled on first
  /// use: retries deliberately avoid the fused kernels in case the fault
  /// lives there.
  std::shared_ptr<const FusedPlan> nonfused_plan(std::size_t d) {
    const std::lock_guard<std::mutex> lock(nonfused_mu);
    if (!nonfused[d]) {
      FusionOptions opt;
      opt.enable = false;
      nonfused[d] = std::make_shared<const FusedPlan>(circuits[d], opt);
    }
    return nonfused[d];
  }
};

/// Evaluate one instance on the scalar path (InstanceContext): all
/// non-shared rate columns per-rate, then the shared cluster. Used both as
/// the primary path when units are single-instance (per-shot mode or
/// batch_lanes <= 1) and per-member by health-sentinel retries.
void evaluate_member_scalar(SweepContext& sc, std::size_t i, std::size_t d,
                            const RunOptions& run,
                            std::shared_ptr<const FusedPlan> plan,
                            UnitResult& out, std::size_t m) {
  CircuitSpec spec = sc.config.base;
  spec.depth = sc.config.depths[d];
  // One ideal run (with checkpoints) serves every rate cluster.
  const InstanceContext context(sc.circuits[d], spec, sc.instances[i], run,
                                std::move(plan));
  for (std::size_t r = 0; r < sc.rates.size(); ++r) {
    if (sc.use_shared && sc.rates[r] > 0.0) continue;
    Pcg64 rng = point_rng(sc.config.seed, i, d, r);
    out.outcomes[r][m] =
        context.evaluate(noise_at(sc.config, sc.rates[r]), run, rng);
  }
  if (sc.use_shared) {
    std::vector<NoiseModel> noises;
    std::vector<Pcg64> rngs;
    noises.reserve(sc.cluster.size());
    rngs.reserve(sc.cluster.size());
    for (std::size_t r : sc.cluster) {
      noises.push_back(noise_at(sc.config, sc.rates[r]));
      rngs.push_back(point_rng(sc.config.seed, i, d, r));
    }
    const std::vector<InstanceOutcome> results =
        context.evaluate_rates(noises, run, rngs, &out.stats);
    for (std::size_t c = 0; c < sc.cluster.size(); ++c)
      out.outcomes[sc.cluster[c]][m] = results[c];
  }
}

/// Batched path: the whole instance block shares each ideal run (one
/// fused-plan pass for the group) and each instance's error trajectories
/// batch again inside evaluate. Every point still draws from
/// point_rng(seed, i, d, r), so results are independent of grouping and
/// identical in distribution to the scalar path.
void run_unit_batched(SweepContext& sc, std::size_t d, std::size_t i0,
                      std::size_t i1, const RunOptions& run, UnitResult& out) {
  const std::vector<ArithInstance> group(sc.instances.begin() + i0,
                                         sc.instances.begin() + i1);
  CircuitSpec spec = sc.config.base;
  spec.depth = sc.config.depths[d];
  const InstanceBatch batch(sc.circuits[d], spec, group, run, sc.plans[d]);
  for (std::size_t r = 0; r < sc.rates.size(); ++r) {
    if (sc.use_shared && sc.rates[r] > 0.0) continue;
    std::vector<Pcg64> rngs;
    rngs.reserve(group.size());
    for (std::size_t m = 0; m < group.size(); ++m)
      rngs.push_back(point_rng(sc.config.seed, i0 + m, d, r));
    const std::vector<InstanceOutcome> results =
        batch.evaluate_all(noise_at(sc.config, sc.rates[r]), run, rngs);
    for (std::size_t m = 0; m < group.size(); ++m)
      out.outcomes[r][m] = results[m];
  }
  if (sc.use_shared) {
    std::vector<NoiseModel> noises;
    std::vector<std::vector<Pcg64>> rngs(sc.cluster.size());
    noises.reserve(sc.cluster.size());
    for (std::size_t c = 0; c < sc.cluster.size(); ++c) {
      noises.push_back(noise_at(sc.config, sc.rates[sc.cluster[c]]));
      rngs[c].reserve(group.size());
      for (std::size_t m = 0; m < group.size(); ++m)
        rngs[c].push_back(point_rng(sc.config.seed, i0 + m, d, sc.cluster[c]));
    }
    const std::vector<std::vector<InstanceOutcome>> results =
        batch.evaluate_all_rates(noises, run, rngs, &out.stats);
    for (std::size_t c = 0; c < sc.cluster.size(); ++c)
      for (std::size_t m = 0; m < group.size(); ++m)
        out.outcomes[sc.cluster[c]][m] = results[c][m];
  }
}

/// Run one work unit: instance block [i0, i1) at depth index d, all rate
/// columns. When a numerical health sentinel trips, retry every member once
/// on the scalar non-fused path (the most conservative engine in the repo);
/// members that fail again are recorded as poisoned (outcomes stay
/// success=false) instead of crashing the sweep.
UnitResult compute_unit(SweepContext& sc, std::size_t d, std::size_t i0,
                        std::size_t i1) {
  const std::size_t members = i1 - i0;
  UnitResult out;
  out.outcomes.assign(sc.rates.size(), std::vector<InstanceOutcome>(members));
  try {
    if (sc.block > 1)
      run_unit_batched(sc, d, i0, i1, sc.config.run, out);
    else
      evaluate_member_scalar(sc, i0, d, sc.config.run, sc.plans[d], out, 0);
    return out;
  } catch (const NumericalHealthError& err) {
    std::cerr << "\n[qfab] numerical health sentinel tripped (depth "
              << depth_label(sc.config.depths[d]) << ", instances [" << i0
              << "," << i1 << ")): " << err.what()
              << "; retrying on the scalar non-fused path\n";
  }
  out = UnitResult{};
  out.outcomes.assign(sc.rates.size(), std::vector<InstanceOutcome>(members));
  out.retried = true;
  RunOptions retry = sc.config.run;
  retry.batch_lanes = 1;
  // The scalar path replays in double regardless, but pin it so a future
  // scalar float tier cannot silently weaken the conservative retry.
  retry.precision = Precision::kDouble;
  const std::shared_ptr<const FusedPlan> plan = sc.nonfused_plan(d);
  for (std::size_t m = 0; m < members; ++m) {
    try {
      evaluate_member_scalar(sc, i0 + m, d, retry, plan, out, m);
    } catch (const NumericalHealthError& err) {
      out.poisoned = true;
      std::ostringstream desc;
      desc << "instance " << (i0 + m) << " at depth "
           << depth_label(sc.config.depths[d])
           << " failed the scalar non-fused retry: " << err.what();
      if (!out.error.empty()) out.error += "; ";
      out.error += desc.str();
      for (std::size_t r = 0; r < sc.rates.size(); ++r)
        out.outcomes[r][m] = InstanceOutcome{};
    }
  }
  return out;
}

/// Sweep progress, drain display, and the soft-deadline watchdog, all on
/// one watcher thread owned by run_sweep_durable (no worker-side stderr
/// writes): workers bump an atomic member counter and register in-flight
/// units; the watcher rewrites a count/percent/ETA line at a fixed cadence
/// and journals a timeout marker for units past the deadline. The thread is
/// joined on every exit path — finish() is called from the destructor too,
/// so a worker exception cannot leak a detached watcher past the sweep's
/// locals.
class SweepMonitor {
 public:
  SweepMonitor(bool progress, std::size_t total_members, double deadline,
               JournalWriter* journal)
      : progress_(progress && total_members > 0),
        total_(total_members),
        deadline_(deadline),
        journal_(journal) {
    if (progress_ || deadline_ > 0.0)
      watcher_ = std::thread([this] { watch(); });
  }
  ~SweepMonitor() { finish(); }

  void add(std::size_t n) { done_.fetch_add(n, std::memory_order_relaxed); }

  void unit_started(std::size_t unit, std::size_t depth_index, std::size_t i0,
                    std::size_t i1) {
    if (deadline_ <= 0.0) return;
    const std::lock_guard<std::mutex> lock(mu_);
    inflight_[unit] = InFlight{watch_.seconds(), depth_index, i0, i1, false};
  }
  void unit_finished(std::size_t unit) {
    if (deadline_ <= 0.0) return;
    const std::lock_guard<std::mutex> lock(mu_);
    inflight_.erase(unit);
  }

  /// Stop and join the watcher, then print the final line (idempotent,
  /// never throws: runs from the destructor during unwinding too).
  void finish() noexcept {
    try {
      if (watcher_.joinable()) {
        {
          const std::lock_guard<std::mutex> lock(mu_);
          stop_ = true;
        }
        cv_.notify_all();
        watcher_.join();
      }
      if (progress_ && !final_printed_) {
        final_printed_ = true;
        print();
        std::cerr << '\n';
      }
    } catch (...) {
      // stderr reporting is best-effort; never propagate out of a dtor.
    }
  }

 private:
  struct InFlight {
    double start = 0.0;
    std::size_t depth_index = 0;
    std::size_t i0 = 0;
    std::size_t i1 = 0;
    bool flagged = false;
  };

  void watch() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(500),
                         [this] { return stop_; })) {
      if (progress_) print();
      if (deadline_ > 0.0) check_deadlines();
    }
  }

  void print() const {
    const std::size_t done = done_.load(std::memory_order_relaxed);
    const double elapsed = watch_.seconds();
    std::ostringstream line;
    line << "\r  sweep " << done << '/' << total_ << " ("
         << 100 * done / total_ << "%)";
    if (done > 0 && done < total_) {
      const double eta = elapsed * static_cast<double>(total_ - done) /
                         static_cast<double>(done);
      line << " eta ~" << fmt_double(eta, 0) << "s";
    }
    if (shutdown_requested()) line << " [draining]";
    line << "    ";
    std::cerr << line.str() << std::flush;
  }

  // Called with mu_ held. Each overdue unit is flagged and journaled once;
  // it keeps running (simulation work is not preemptible) and its eventual
  // completion record supersedes the marker.
  void check_deadlines() {
    const double now = watch_.seconds();
    for (auto& entry : inflight_) {
      InFlight& f = entry.second;
      if (f.flagged || now - f.start <= deadline_) continue;
      f.flagged = true;
      std::cerr << "\n[qfab] work unit (depth_index=" << f.depth_index
                << ", instances [" << f.i0 << "," << f.i1
                << ")) exceeded the soft deadline of "
                << fmt_double(deadline_, 0)
                << "s; journaling a timeout marker\n";
      if (journal_ == nullptr) continue;
      JournalRecord rec;
      rec.type = JournalRecord::Type::kTimeout;
      rec.depth_index = static_cast<std::uint32_t>(f.depth_index);
      rec.block_begin = static_cast<std::uint32_t>(f.i0);
      rec.block_end = static_cast<std::uint32_t>(f.i1);
      try {
        journal_->append(rec);
      } catch (...) {
        // The marker is advisory; never fail the sweep over it.
      }
    }
  }

  const bool progress_;
  const std::size_t total_;
  const double deadline_;
  JournalWriter* const journal_;
  std::atomic<std::size_t> done_{0};
  Stopwatch watch_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::map<std::size_t, InFlight> inflight_;
  bool stop_ = false;
  bool final_printed_ = false;
  std::thread watcher_;
};

}  // namespace

std::vector<double> SweepConfig::expanded_rates() const {
  std::vector<double> rates = rates_percent;
  if (include_noise_free) rates.insert(rates.begin(), 0.0);
  return rates;
}

const SweepPoint& SweepResult::at(int depth, double rate_percent) const {
  for (const SweepPoint& p : points)
    if (p.depth == depth && std::abs(p.rate_percent - rate_percent) < 1e-12)
      return p;
  QFAB_CHECK_MSG(false, "no sweep point for depth " << depth << " rate "
                                                    << rate_percent);
  return points.front();
}

SweepGrid::SweepGrid(const SweepConfig& config, std::size_t n_instances_in) {
  n_depths = config.depths.size();
  n_rates = config.expanded_rates().size();
  n_instances = n_instances_in;
  const int lanes = std::clamp(config.run.batch_lanes, 1,
                               BatchedStateVector::kMaxLanes);
  block = (lanes > 1 && !config.run.per_shot)
              ? static_cast<std::size_t>(lanes)
              : 1;
  n_groups = (n_instances + block - 1) / block;
  n_units = n_groups * n_depths;
}

SweepGrid::UnitKey SweepGrid::key(std::size_t u) const {
  QFAB_CHECK(u < n_units);
  UnitKey k;
  k.depth_index = u % n_depths;
  k.block_begin = (u / n_depths) * block;
  k.block_end = std::min(k.block_begin + block, n_instances);
  return k;
}

std::size_t SweepGrid::unit_of(std::size_t depth_index,
                               std::size_t block_begin,
                               std::size_t block_end) const {
  if (depth_index >= n_depths || block_begin >= n_instances ||
      block_begin % block != 0 ||
      block_end != std::min(block_begin + block, n_instances))
    return npos;
  return (block_begin / block) * n_depths + depth_index;
}

struct SweepExecution::Impl {
  Impl(const SweepConfig& config_in, std::vector<ArithInstance> instances_in)
      : config(config_in),
        instances(std::move(instances_in)),
        grid(config, instances.size()),
        sc(config, instances) {
    QFAB_CHECK(!config.depths.empty());
    QFAB_CHECK(!instances.empty());
    sc.prepare();
    sc.block = grid.block;
  }

  const SweepConfig config;
  const std::vector<ArithInstance> instances;
  const SweepGrid grid;
  SweepContext sc;
};

SweepExecution::SweepExecution(const SweepConfig& config,
                               std::vector<ArithInstance> instances)
    : impl_(std::make_unique<Impl>(config, std::move(instances))) {}

SweepExecution::~SweepExecution() = default;

const SweepConfig& SweepExecution::config() const { return impl_->config; }

const std::vector<ArithInstance>& SweepExecution::instances() const {
  return impl_->instances;
}

const SweepGrid& SweepExecution::grid() const { return impl_->grid; }

UnitResult SweepExecution::run_unit(std::size_t u) {
  const SweepGrid::UnitKey k = impl_->grid.key(u);
  return compute_unit(impl_->sc, k.depth_index, k.block_begin, k.block_end);
}

SweepAssembler::SweepAssembler(const SweepConfig& config,
                               const SweepGrid& grid)
    : config_(config),
      grid_(grid),
      rates_(config.expanded_rates()),
      outcomes_(grid.n_depths,
                std::vector<std::vector<InstanceOutcome>>(
                    grid.n_rates,
                    std::vector<InstanceOutcome>(grid.n_instances))),
      unit_stats_(grid.n_units),
      unit_error_(grid.n_units),
      unit_done_(grid.n_units, 0) {}

std::size_t SweepAssembler::members_of(std::size_t u) const {
  const SweepGrid::UnitKey k = grid_.key(u);
  return k.block_end - k.block_begin;
}

SweepAssembler::Add SweepAssembler::add_record(
    std::size_t depth_index, std::size_t block_begin, std::size_t block_end,
    const std::vector<std::vector<InstanceOutcome>>& outcomes,
    const SharedEstimateStats& stats, const std::string& error) {
  const std::size_t u = grid_.unit_of(depth_index, block_begin, block_end);
  if (u == SweepGrid::npos) return Add::kMisfit;
  const std::size_t members = block_end - block_begin;
  const bool shaped =
      outcomes.size() == grid_.n_rates &&
      std::all_of(outcomes.begin(), outcomes.end(),
                  [&](const std::vector<InstanceOutcome>& row) {
                    return row.size() == members;
                  });
  if (!shaped) return Add::kMisfit;
  if (unit_done_[u]) return Add::kDuplicate;
  for (std::size_t r = 0; r < grid_.n_rates; ++r)
    for (std::size_t m = 0; m < members; ++m)
      outcomes_[depth_index][r][block_begin + m] = outcomes[r][m];
  unit_stats_[u] = stats;
  unit_error_[u] = error;
  unit_done_[u] = 1;
  return Add::kAdded;
}

void SweepAssembler::add_computed(std::size_t u, UnitResult&& out) {
  const SweepGrid::UnitKey k = grid_.key(u);
  const std::size_t members = k.block_end - k.block_begin;
  QFAB_CHECK(!unit_done_[u]);
  QFAB_CHECK(out.outcomes.size() == grid_.n_rates);
  for (std::size_t r = 0; r < grid_.n_rates; ++r) {
    QFAB_CHECK(out.outcomes[r].size() == members);
    for (std::size_t m = 0; m < members; ++m)
      outcomes_[k.depth_index][r][k.block_begin + m] = out.outcomes[r][m];
  }
  unit_stats_[u] = out.stats;
  unit_error_[u] = std::move(out.error);
  unit_done_[u] = 1;
}

std::size_t SweepAssembler::units_done() const {
  return static_cast<std::size_t>(
      std::count(unit_done_.begin(), unit_done_.end(), char(1)));
}

SweepResult SweepAssembler::finish(double seconds,
                                   std::size_t units_restored,
                                   std::size_t units_retried) const {
  SweepResult result;
  result.config = config_;
  result.config.instances = static_cast<int>(grid_.n_instances);
  result.units_total = grid_.n_units;
  result.units_done = units_done();
  result.units_restored = units_restored;
  result.units_retried = units_retried;
  result.complete = result.units_done == grid_.n_units;
  for (std::size_t u = 0; u < grid_.n_units; ++u)
    if (unit_done_[u] && !unit_error_[u].empty())
      result.unit_errors.push_back(unit_error_[u]);
  if (result.complete) {
    // Deterministic stats aggregation: merge in unit order so the float
    // sums are identical run-to-run (and across interrupt/resume or any
    // worker sharding), not dependent on execution scheduling.
    for (std::size_t u = 0; u < grid_.n_units; ++u)
      result.shared_stats.merge(unit_stats_[u]);
    for (std::size_t d = 0; d < grid_.n_depths; ++d)
      for (std::size_t r = 0; r < grid_.n_rates; ++r) {
        SweepPoint point;
        point.depth = config_.depths[d];
        point.rate_percent = rates_[r];
        point.stats = aggregate_outcomes(outcomes_[d][r]);
        result.points.push_back(point);
      }
  }
  result.seconds = seconds;
  return result;
}

SweepResult run_sweep(const SweepConfig& config,
                      const std::vector<ArithInstance>& instances) {
  return run_sweep_durable(config, instances, DurableOptions{});
}

SweepResult run_sweep_durable(const SweepConfig& config,
                              const std::vector<ArithInstance>& instances,
                              const DurableOptions& durable) {
  QFAB_CHECK(!config.depths.empty());
  QFAB_CHECK(!instances.empty());
  Stopwatch watch;

  SweepExecution exec(config, instances);
  const SweepGrid& grid = exec.grid();
  SweepAssembler assembler(config, grid);
  std::size_t restored = 0;
  std::size_t restored_members = 0;

  std::unique_ptr<JournalWriter> journal;
  if (!durable.journal_path.empty()) {
    const std::uint64_t fp = sweep_fingerprint(config, instances);
    bool fresh = true;
    if (durable.resume) {
      const JournalContents contents = read_journal(durable.journal_path);
      if (contents.header_ok) {
        QFAB_CHECK_MSG(
            contents.fingerprint == fp,
            "journal " << durable.journal_path
                       << " was written by a different sweep configuration "
                          "(fingerprint mismatch); refusing to resume");
        if (contents.dropped_tail) {
          std::cerr << "[qfab] " << durable.journal_path << ": "
                    << contents.note << "; dropped the damaged tail, kept "
                    << contents.records.size() << " record(s)\n";
          rewrite_journal(durable.journal_path, contents);
        }
        for (const JournalRecord& rec : contents.records) {
          if (rec.type == JournalRecord::Type::kTimeout) continue;
          const std::string err =
              rec.type == JournalRecord::Type::kPoisoned ? rec.error : "";
          const SweepAssembler::Add added = assembler.add_record(
              rec.depth_index, rec.block_begin, rec.block_end, rec.outcomes,
              rec.stats, err);
          if (added == SweepAssembler::Add::kMisfit) {
            // Should be unreachable behind the fingerprint check; skipping
            // (instead of trusting bad indices) keeps resume safe anyway.
            std::cerr << "[qfab] " << durable.journal_path
                      << ": skipped a record that does not fit the sweep "
                         "grid\n";
            continue;
          }
          if (added == SweepAssembler::Add::kAdded) {
            ++restored;
            restored_members +=
                static_cast<std::size_t>(rec.block_end - rec.block_begin);
          }
        }
        fresh = false;
      } else if (!contents.note.empty()) {
        std::cerr << "[qfab] " << durable.journal_path << ": "
                  << contents.note << "; starting a fresh journal\n";
      }
    }
    journal =
        std::make_unique<JournalWriter>(durable.journal_path, fp, fresh);
  }

  std::vector<std::size_t> pending;
  pending.reserve(grid.n_units);
  for (std::size_t u = 0; u < grid.n_units; ++u)
    if (!assembler.done(u)) pending.push_back(u);

  SweepMonitor monitor(config.progress, grid.n_instances * grid.n_depths,
                       durable.unit_deadline_seconds, journal.get());
  monitor.add(restored_members);
  std::atomic<std::size_t> retried{0};

  parallel_for_chunked(0, pending.size(), [&](std::size_t lo, std::size_t hi) {
    for (std::size_t k = lo; k < hi; ++k) {
      // Drain: stop claiming new units; units already running elsewhere
      // finish and journal normally.
      if (shutdown_requested()) return;
      const std::size_t u = pending[k];
      const SweepGrid::UnitKey key = grid.key(u);
      monitor.unit_started(u, key.depth_index, key.block_begin,
                           key.block_end);
      UnitResult out = exec.run_unit(u);
      monitor.unit_finished(u);
      if (out.retried) retried.fetch_add(1, std::memory_order_relaxed);
      const std::size_t members = key.block_end - key.block_begin;
      if (journal) {
        JournalRecord rec;
        rec.type = out.poisoned ? JournalRecord::Type::kPoisoned
                                : JournalRecord::Type::kUnit;
        rec.depth_index = static_cast<std::uint32_t>(key.depth_index);
        rec.block_begin = static_cast<std::uint32_t>(key.block_begin);
        rec.block_end = static_cast<std::uint32_t>(key.block_end);
        rec.outcomes = out.outcomes;  // copy: assembler still needs them
        rec.stats = out.stats;
        rec.error = out.error;
        assembler.add_computed(u, std::move(out));
        journal->append(rec);
      } else {
        assembler.add_computed(u, std::move(out));
      }
      monitor.add(members);
    }
  });
  monitor.finish();

  return assembler.finish(watch.seconds(), restored,
                          retried.load(std::memory_order_relaxed));
}

std::string depth_label(int depth) {
  return depth == kFullDepth ? "full" : std::to_string(depth);
}

TextTable sweep_table(const SweepResult& result) {
  std::vector<std::string> headers = {
      result.config.vary_2q ? "P2q_err%" : "P1q_err%"};
  for (int d : result.config.depths) headers.push_back("d=" + depth_label(d));
  TextTable table(std::move(headers));

  for (double rate : result.config.expanded_rates()) {
    std::vector<std::string> row;
    row.push_back(rate == 0.0 ? "noise-free" : fmt_double(rate, 2));
    for (int d : result.config.depths) {
      const PointStats& s = result.at(d, rate).stats;
      row.push_back(fmt_percent(s.success_rate, 1) + "% [-" +
                    std::to_string(s.lower_flips) + "/+" +
                    std::to_string(s.upper_flips) + "]");
    }
    table.add_row(std::move(row));
  }
  return table;
}

TextTable sweep_csv_table(const SweepResult& result) {
  TextTable table({"depth", "rate_percent", "success_rate", "sigma",
                   "lower_flips", "upper_flips", "instances"});
  for (const SweepPoint& p : result.points)
    table.add_row({depth_label(p.depth), fmt_double(p.rate_percent, 3),
                   fmt_double(p.stats.success_rate, 6),
                   fmt_double(p.stats.sigma, 3),
                   std::to_string(p.stats.lower_flips),
                   std::to_string(p.stats.upper_flips),
                   std::to_string(p.stats.instances)});
  return table;
}

void print_sweep(std::ostream& os, const SweepResult& result,
                 const std::string& caption) {
  os << caption << '\n';
  os << "  instances=" << result.config.instances
     << " shots=" << result.config.run.shots << " traj="
     << result.config.run.error_trajectories
     << (result.config.run.per_shot
             ? " mode=per-shot"
             : (result.config.run.shared_trajectories ? " mode=shared"
                                                      : " mode=stratified"))
     << " seed=" << result.config.seed << " ("
     << fmt_double(result.seconds, 1) << " s)\n";
  if (result.units_restored > 0)
    os << "  resumed: " << result.units_restored << '/' << result.units_total
       << " work units restored from the checkpoint journal\n";
  for (const std::string& err : result.unit_errors)
    os << "  WARNING poisoned unit: " << err << '\n';
  os << "  cells: success% [-lower/+upper error-bar instance flips]\n";
  sweep_table(result).print(os);
  os << '\n';
}

}  // namespace qfab
