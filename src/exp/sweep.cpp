#include "exp/sweep.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <condition_variable>
#include <iostream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>

#include "common/parallel.h"
#include "common/stopwatch.h"

namespace qfab {

namespace {

/// Deterministic per-(instance, depth, rate) RNG, independent of execution
/// order and thread scheduling.
Pcg64 point_rng(std::uint64_t seed, std::size_t instance, std::size_t depth_i,
                std::size_t rate_i) {
  const std::uint64_t salt = (static_cast<std::uint64_t>(instance) << 32) ^
                             (static_cast<std::uint64_t>(depth_i) << 16) ^
                             static_cast<std::uint64_t>(rate_i);
  Pcg64 root(seed, 0x5eedULL);
  return root.split(salt);
}

/// Sweep progress on stderr without worker-side writes: workers bump an
/// atomic (instance, depth) unit counter; one watcher thread owned by
/// run_sweep drains it at a fixed cadence and rewrites a single
/// count/percent/ETA line. Disabled (no thread) when progress is off.
class ProgressMeter {
 public:
  ProgressMeter(bool enabled, std::size_t total) : total_(total) {
    if (enabled && total_ > 0) watcher_ = std::thread([this] { watch(); });
  }
  ~ProgressMeter() { finish(); }

  void add(std::size_t n) { done_.fetch_add(n, std::memory_order_relaxed); }

  /// Stop and join the watcher, then print the final line (idempotent).
  void finish() {
    if (!watcher_.joinable()) return;
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    watcher_.join();
    print();
    std::cerr << '\n';
  }

 private:
  void watch() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!cv_.wait_for(lock, std::chrono::milliseconds(500),
                         [this] { return stop_; }))
      print();
  }

  void print() const {
    const std::size_t done = done_.load(std::memory_order_relaxed);
    const double elapsed = watch_.seconds();
    std::ostringstream line;
    line << "\r  sweep " << done << '/' << total_ << " ("
         << 100 * done / total_ << "%)";
    if (done > 0 && done < total_) {
      const double eta =
          elapsed * static_cast<double>(total_ - done) / static_cast<double>(done);
      line << " eta ~" << fmt_double(eta, 0) << "s";
    }
    line << "    ";
    std::cerr << line.str() << std::flush;
  }

  const std::size_t total_;
  std::atomic<std::size_t> done_{0};
  Stopwatch watch_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  std::thread watcher_;
};

}  // namespace

std::vector<double> SweepConfig::expanded_rates() const {
  std::vector<double> rates = rates_percent;
  if (include_noise_free) rates.insert(rates.begin(), 0.0);
  return rates;
}

const SweepPoint& SweepResult::at(int depth, double rate_percent) const {
  for (const SweepPoint& p : points)
    if (p.depth == depth && std::abs(p.rate_percent - rate_percent) < 1e-12)
      return p;
  QFAB_CHECK_MSG(false, "no sweep point for depth " << depth << " rate "
                                                    << rate_percent);
  return points.front();
}

SweepResult run_sweep(const SweepConfig& config,
                      const std::vector<ArithInstance>& instances) {
  QFAB_CHECK(!config.depths.empty());
  QFAB_CHECK(!instances.empty());
  Stopwatch watch;

  const std::vector<double> rates = config.expanded_rates();
  const std::size_t n_depths = config.depths.size();
  const std::size_t n_rates = rates.size();
  const std::size_t n_inst = instances.size();

  // outcomes[depth][rate][instance]
  std::vector<std::vector<std::vector<InstanceOutcome>>> outcomes(
      n_depths, std::vector<std::vector<InstanceOutcome>>(
                    n_rates, std::vector<InstanceOutcome>(n_inst)));

  // Transpile and compile the execution plan once per depth (cheap next to
  // simulation, but shared by every instance and trajectory).
  std::vector<QuantumCircuit> circuits;
  std::vector<std::shared_ptr<const FusedPlan>> plans;
  circuits.reserve(n_depths);
  plans.reserve(n_depths);
  for (int depth : config.depths) {
    CircuitSpec spec = config.base;
    spec.depth = depth;
    circuits.push_back(build_transpiled_circuit(spec));
    plans.push_back(std::make_shared<const FusedPlan>(circuits.back()));
  }

  auto make_noise = [&](std::size_t r) {
    NoiseModel noise;
    (config.vary_2q ? noise.p2q : noise.p1q) = rates[r] / 100.0;
    noise.noisy_rz = config.run.noisy_rz;
    noise.noisy_id = config.run.noisy_id;
    return noise;
  };

  // The positive-rate columns form one shared-trajectory cluster per
  // (instance, depth): sampled once from the proposal rate and reweighted
  // per column. Zero-rate columns (the noise-free cluster) stay on the
  // per-rate path, which short-circuits to the ideal marginal anyway.
  std::vector<std::size_t> cluster;
  for (std::size_t r = 0; r < n_rates; ++r)
    if (rates[r] > 0.0) cluster.push_back(r);
  const bool use_shared = config.run.shared_trajectories &&
                          !config.run.per_shot && !cluster.empty();
  SharedEstimateStats shared_stats;
  std::mutex shared_stats_mu;
  auto merge_stats = [&](const SharedEstimateStats& local) {
    if (!use_shared) return;
    const std::lock_guard<std::mutex> lock(shared_stats_mu);
    shared_stats.merge(local);
  };

  ProgressMeter progress(config.progress, n_inst * n_depths);
  const int lanes = std::clamp(config.run.batch_lanes, 1,
                               BatchedStateVector::kMaxLanes);
  if (lanes > 1 && !config.run.per_shot) {
    // Batched path: groups of up to `lanes` instances share each ideal run
    // (one fused-plan pass for the whole group), and each instance's error
    // trajectories batch again inside evaluate. The final group is ragged
    // when n_inst % lanes != 0. Every point still draws from
    // point_rng(seed, i, d, r), so results are independent of grouping and
    // identical in distribution to the scalar path.
    const std::size_t B = static_cast<std::size_t>(lanes);
    const std::size_t n_groups = (n_inst + B - 1) / B;
    parallel_for_chunked(0, n_groups, [&](std::size_t glo, std::size_t ghi) {
      SharedEstimateStats local_stats;
      for (std::size_t g = glo; g < ghi; ++g) {
        const std::size_t i0 = g * B;
        const std::size_t i1 = std::min(i0 + B, n_inst);
        const std::vector<ArithInstance> group(instances.begin() + i0,
                                               instances.begin() + i1);
        for (std::size_t d = 0; d < n_depths; ++d) {
          CircuitSpec spec = config.base;
          spec.depth = config.depths[d];
          const InstanceBatch batch(circuits[d], spec, group, config.run,
                                    plans[d]);
          for (std::size_t r = 0; r < n_rates; ++r) {
            if (use_shared && rates[r] > 0.0) continue;
            std::vector<Pcg64> rngs;
            rngs.reserve(group.size());
            for (std::size_t m = 0; m < group.size(); ++m)
              rngs.push_back(point_rng(config.seed, i0 + m, d, r));
            const std::vector<InstanceOutcome> results =
                batch.evaluate_all(make_noise(r), config.run, rngs);
            for (std::size_t m = 0; m < group.size(); ++m)
              outcomes[d][r][i0 + m] = results[m];
          }
          if (use_shared) {
            std::vector<NoiseModel> noises;
            std::vector<std::vector<Pcg64>> rngs(cluster.size());
            noises.reserve(cluster.size());
            for (std::size_t c = 0; c < cluster.size(); ++c) {
              noises.push_back(make_noise(cluster[c]));
              rngs[c].reserve(group.size());
              for (std::size_t m = 0; m < group.size(); ++m)
                rngs[c].push_back(point_rng(config.seed, i0 + m, d, cluster[c]));
            }
            const std::vector<std::vector<InstanceOutcome>> results =
                batch.evaluate_all_rates(noises, config.run, rngs,
                                         &local_stats);
            for (std::size_t c = 0; c < cluster.size(); ++c)
              for (std::size_t m = 0; m < group.size(); ++m)
                outcomes[d][cluster[c]][i0 + m] = results[c][m];
          }
          progress.add(i1 - i0);
        }
      }
      merge_stats(local_stats);
    });
  } else {
    parallel_for_chunked(0, n_inst, [&](std::size_t lo, std::size_t hi) {
      SharedEstimateStats local_stats;
      for (std::size_t i = lo; i < hi; ++i) {
        for (std::size_t d = 0; d < n_depths; ++d) {
          CircuitSpec spec = config.base;
          spec.depth = config.depths[d];
          // One ideal run (with checkpoints) serves every rate cluster.
          const InstanceContext context(circuits[d], spec, instances[i],
                                        config.run, plans[d]);
          for (std::size_t r = 0; r < n_rates; ++r) {
            if (use_shared && rates[r] > 0.0) continue;
            Pcg64 rng = point_rng(config.seed, i, d, r);
            outcomes[d][r][i] = context.evaluate(make_noise(r), config.run, rng);
          }
          if (use_shared) {
            std::vector<NoiseModel> noises;
            std::vector<Pcg64> rngs;
            noises.reserve(cluster.size());
            rngs.reserve(cluster.size());
            for (std::size_t r : cluster) {
              noises.push_back(make_noise(r));
              rngs.push_back(point_rng(config.seed, i, d, r));
            }
            const std::vector<InstanceOutcome> results =
                context.evaluate_rates(noises, config.run, rngs, &local_stats);
            for (std::size_t c = 0; c < cluster.size(); ++c)
              outcomes[d][cluster[c]][i] = results[c];
          }
          progress.add(1);
        }
      }
      merge_stats(local_stats);
    });
  }
  progress.finish();

  SweepResult result;
  result.config = config;
  result.config.instances = static_cast<int>(n_inst);
  result.shared_stats = shared_stats;
  for (std::size_t d = 0; d < n_depths; ++d)
    for (std::size_t r = 0; r < n_rates; ++r) {
      SweepPoint point;
      point.depth = config.depths[d];
      point.rate_percent = rates[r];
      point.stats = aggregate_outcomes(outcomes[d][r]);
      result.points.push_back(point);
    }
  result.seconds = watch.seconds();
  return result;
}

std::string depth_label(int depth) {
  return depth == kFullDepth ? "full" : std::to_string(depth);
}

TextTable sweep_table(const SweepResult& result) {
  std::vector<std::string> headers = {
      result.config.vary_2q ? "P2q_err%" : "P1q_err%"};
  for (int d : result.config.depths) headers.push_back("d=" + depth_label(d));
  TextTable table(std::move(headers));

  for (double rate : result.config.expanded_rates()) {
    std::vector<std::string> row;
    row.push_back(rate == 0.0 ? "noise-free" : fmt_double(rate, 2));
    for (int d : result.config.depths) {
      const PointStats& s = result.at(d, rate).stats;
      row.push_back(fmt_percent(s.success_rate, 1) + "% [-" +
                    std::to_string(s.lower_flips) + "/+" +
                    std::to_string(s.upper_flips) + "]");
    }
    table.add_row(std::move(row));
  }
  return table;
}

void print_sweep(std::ostream& os, const SweepResult& result,
                 const std::string& caption) {
  os << caption << '\n';
  os << "  instances=" << result.config.instances
     << " shots=" << result.config.run.shots << " traj="
     << result.config.run.error_trajectories
     << (result.config.run.per_shot
             ? " mode=per-shot"
             : (result.config.run.shared_trajectories ? " mode=shared"
                                                      : " mode=stratified"))
     << " seed=" << result.config.seed << " ("
     << fmt_double(result.seconds, 1) << " s)\n";
  os << "  cells: success% [-lower/+upper error-bar instance flips]\n";
  sweep_table(result).print(os);
  os << '\n';
}

}  // namespace qfab
