// Per-instance experiment execution: circuit construction for the paper's
// two operations, noise-free initialization, and noisy evaluation against
// the success metric.
#pragma once

#include <cstdint>

#include "arith/expected.h"
#include "exp/instances.h"
#include "exp/success.h"
#include "noise/estimator.h"
#include "qfb/adder.h"
#include "qfb/multiplier.h"

namespace qfab {

enum class Operation { kAdd, kMultiply };

/// Which circuit a point simulates.
struct CircuitSpec {
  Operation op = Operation::kAdd;
  /// Operand width n. QFA: x and y both n qubits (sums mod 2^n, the
  /// paper's Fig. 1 configuration); QFM: x, y n qubits, product 2n.
  int n = 8;
  /// AQFT approximation depth (kFullDepth = full).
  int depth = kFullDepth;
  /// Approximate-addition depth (0 = exact; ablation only).
  int add_depth = 0;
  /// Addition-step rotation cap; -1 selects the paper's convention
  /// (n-1 for QFA — reproducing Table I exactly — and none for QFM).
  int max_rotation_order = -1;
  /// Use the fused (Ruiz-Perez single-QFT) multiplier instead of the
  /// paper's cQFA cascade.
  bool fused_multiplier = false;
  /// Measure every register (operands included) and require the *joint*
  /// bitstring to be correct, instead of measuring only the result
  /// register. Errors that corrupt an operand register then count against
  /// the instance even when the arithmetic result survives.
  bool measure_all = false;
};

/// Resolved rotation cap for a spec (see max_rotation_order).
int resolve_rotation_cap(const CircuitSpec& spec);

/// The abstract (untranspiled) circuit: registers "x","y" (+"z" for QFM).
QuantumCircuit build_arith_circuit(const CircuitSpec& spec);

/// Basis-gate circuit (decomposed + peephole-optimized), as simulated.
QuantumCircuit build_transpiled_circuit(const CircuitSpec& spec);

/// Global indices of the measured register (y for add, z for multiply).
std::vector<int> output_qubits(const CircuitSpec& spec);
int output_bits(const CircuitSpec& spec);

/// Ground-truth correct outputs for an operand instance.
std::vector<u64> correct_outputs(const CircuitSpec& spec,
                                 const ArithInstance& inst);

/// Noise-free initial state (amplitudes written directly, per the paper).
StateVector make_initial_state(const CircuitSpec& spec,
                               const ArithInstance& inst);

struct RunOptions {
  std::uint64_t shots = 2048;
  int error_trajectories = 12;
  /// Paper-faithful per-shot trajectory sampling instead of the stratified
  /// channel estimator.
  bool per_shot = false;
  std::size_t checkpoint_interval = 64;
  bool noisy_rz = true;
  bool noisy_id = true;
  /// Measurement confusion applied to every output bit (extension; the
  /// paper's sweeps use none).
  ReadoutError readout;
};

/// All noisy-evaluation state shared across error rates for one
/// (spec, instance) pair: the transpiled circuit's ideal run (with
/// checkpoints) plus the instance's ground truth.
class InstanceContext {
 public:
  /// `plan` optionally shares one compiled FusedPlan for `transpiled`
  /// across every instance of a sweep (see run_sweep); when null the
  /// CleanRun compiles its own.
  InstanceContext(const QuantumCircuit& transpiled, const CircuitSpec& spec,
                  const ArithInstance& inst, const RunOptions& run,
                  std::shared_ptr<const FusedPlan> plan = nullptr);

  /// Evaluate the instance at one noise point.
  InstanceOutcome evaluate(const NoiseModel& noise, const RunOptions& run,
                           Pcg64& rng) const;

 private:
  CleanRun clean_;
  std::vector<int> output_qubits_;
  std::vector<u64> correct_;
};

}  // namespace qfab
