// Per-instance experiment execution: circuit construction for the paper's
// two operations, noise-free initialization, and noisy evaluation against
// the success metric.
#pragma once

#include <cstdint>
#include <stdexcept>

#include "arith/expected.h"
#include "exp/instances.h"
#include "exp/success.h"
#include "noise/estimator.h"
#include "qfb/adder.h"
#include "qfb/multiplier.h"

namespace qfab {

enum class Operation { kAdd, kMultiply };

/// Thrown by the numerical health sentinels (RunOptions::health_checks)
/// when a clean run's norm drifts off 1 or an estimated channel leaves the
/// probability simplex (NaN/Inf included). Distinct from CheckError so the
/// sweep driver can catch it and retry the work unit on the scalar
/// non-fused path before declaring the point poisoned.
class NumericalHealthError : public std::runtime_error {
 public:
  explicit NumericalHealthError(const std::string& what)
      : std::runtime_error(what) {}
};

/// Which circuit a point simulates.
struct CircuitSpec {
  Operation op = Operation::kAdd;
  /// Operand width n. QFA: x and y both n qubits (sums mod 2^n, the
  /// paper's Fig. 1 configuration); QFM: x, y n qubits, product 2n.
  int n = 8;
  /// AQFT approximation depth (kFullDepth = full).
  int depth = kFullDepth;
  /// Approximate-addition depth (0 = exact; ablation only).
  int add_depth = 0;
  /// Addition-step rotation cap; -1 selects the paper's convention
  /// (n-1 for QFA — reproducing Table I exactly — and none for QFM).
  int max_rotation_order = -1;
  /// Use the fused (Ruiz-Perez single-QFT) multiplier instead of the
  /// paper's cQFA cascade.
  bool fused_multiplier = false;
  /// Measure every register (operands included) and require the *joint*
  /// bitstring to be correct, instead of measuring only the result
  /// register. Errors that corrupt an operand register then count against
  /// the instance even when the arithmetic result survives.
  bool measure_all = false;
};

/// Resolved rotation cap for a spec (see max_rotation_order).
int resolve_rotation_cap(const CircuitSpec& spec);

/// The abstract (untranspiled) circuit: registers "x","y" (+"z" for QFM).
QuantumCircuit build_arith_circuit(const CircuitSpec& spec);

/// Basis-gate circuit (decomposed + peephole-optimized), as simulated.
QuantumCircuit build_transpiled_circuit(const CircuitSpec& spec);

/// Global indices of the measured register (y for add, z for multiply).
std::vector<int> output_qubits(const CircuitSpec& spec);
int output_bits(const CircuitSpec& spec);

/// Ground-truth correct outputs for an operand instance.
std::vector<u64> correct_outputs(const CircuitSpec& spec,
                                 const ArithInstance& inst);

/// Noise-free initial state (amplitudes written directly, per the paper).
StateVector make_initial_state(const CircuitSpec& spec,
                               const ArithInstance& inst);

struct RunOptions {
  std::uint64_t shots = 2048;
  int error_trajectories = 12;
  /// Paper-faithful per-shot trajectory sampling instead of the stratified
  /// channel estimator.
  bool per_shot = false;
  std::size_t checkpoint_interval = 64;
  bool noisy_rz = true;
  bool noisy_id = true;
  /// Lanes for the batched SIMD engine (sim/batch.h): clean runs batch up
  /// to this many instances per fused-plan pass and trajectories batch up
  /// to this many per instance. <= 1 selects the single-state scalar path
  /// (as does per_shot, which is defined shot-sequentially).
  int batch_lanes = 8;
  /// Estimate a sweep's whole positive-rate cluster from one shared set of
  /// proposal trajectories per (instance, depth), importance-reweighted per
  /// rate (noise/estimator.h: estimate_channel_marginal(s)_shared), instead
  /// of sampling fresh trajectories per rate. Ignored in per-shot mode.
  /// `--shared-trajectories=0` is the escape hatch back to per-rate
  /// sampling.
  bool shared_trajectories = true;
  /// ESS guard threshold for shared-trajectory columns
  /// (SharedEstimatorOptions::min_ess_fraction).
  double shared_min_ess = 0.25;
  /// Amplitude precision of batched trajectory replay (Precision in
  /// sim/batch.h): kDouble is the reference behavior, kFloat32 forces the
  /// narrow tier, kAuto picks per circuit via resolve_precision(). The
  /// scalar paths (batch_lanes <= 1, per_shot) always replay in double.
  Precision precision = Precision::kDouble;
  /// Drift budget of the float32 replay sentinel
  /// (EstimatorOptions::float_drift_budget); also the tolerance the kAuto
  /// policy plans against.
  double float_drift_budget = 1e-3;
  /// Cheap numerical health sentinels, amortized off the inner loops:
  /// clean-run norm drift at context construction and a probability-simplex
  /// check on every estimated channel before shots are drawn. A violation
  /// throws NumericalHealthError (see above) instead of silently sampling
  /// from garbage.
  bool health_checks = true;
  /// Measurement confusion applied to every output bit (extension; the
  /// paper's sweeps use none).
  ReadoutError readout;
};

/// Resolve a RunOptions precision request for a circuit of `gate_count`
/// transpiled gates. kDouble / kFloat32 pass through. kAuto models the
/// worst plausible float32 replay drift as ~8·eps_f32·√gate_count (rounding
/// errors accumulate like a random walk over the gate sequence; the factor
/// is headroom over the observed constant) and picks float32 whenever that
/// stays within run.float_drift_budget — deeper circuits choose double up
/// front instead of paying a sentinel-tripped re-replay on every group.
Precision resolve_precision(const RunOptions& run, std::size_t gate_count);

/// All noisy-evaluation state shared across error rates for one
/// (spec, instance) pair: the transpiled circuit's ideal run (with
/// checkpoints) plus the instance's ground truth.
class InstanceContext {
 public:
  /// `plan` optionally shares one compiled FusedPlan for `transpiled`
  /// across every instance of a sweep (see run_sweep); when null the
  /// CleanRun compiles its own.
  InstanceContext(const QuantumCircuit& transpiled, const CircuitSpec& spec,
                  const ArithInstance& inst, const RunOptions& run,
                  std::shared_ptr<const FusedPlan> plan = nullptr);

  /// Evaluate the instance at one noise point.
  InstanceOutcome evaluate(const NoiseModel& noise, const RunOptions& run,
                           Pcg64& rng) const;

  /// Evaluate the instance at a whole cluster of noise points from one
  /// shared trajectory set (estimate_channel_marginal_shared). rngs[r] is
  /// the point rng of noises[r], consumed by the shared estimator's stream
  /// protocol; each rate's shot counts are then drawn from its own stream.
  /// A single-point cluster matches evaluate() bit-for-bit.
  std::vector<InstanceOutcome> evaluate_rates(
      const std::vector<NoiseModel>& noises, const RunOptions& run,
      std::vector<Pcg64>& rngs, SharedEstimateStats* stats = nullptr) const;

 private:
  CleanRun clean_;
  std::vector<int> output_qubits_;
  std::vector<u64> correct_;
};

/// Batched counterpart of InstanceContext: one group of up to
/// BatchedStateVector::kMaxLanes operand instances whose ideal runs advance
/// in lockstep through one shared FusedPlan pass (their circuits are
/// identical; only the initial states differ). Used by run_sweep on the
/// stratified-estimator path; per-shot mode stays on InstanceContext.
class InstanceBatch {
 public:
  InstanceBatch(const QuantumCircuit& transpiled, const CircuitSpec& spec,
                const std::vector<ArithInstance>& group, const RunOptions& run,
                std::shared_ptr<const FusedPlan> plan = nullptr);

  int size() const { return clean_.lanes(); }

  /// Evaluate group member `member` at one noise point. Identical
  /// statistics to InstanceContext::evaluate on the stratified path: the
  /// rng stream per point is the same.
  InstanceOutcome evaluate(int member, const NoiseModel& noise,
                           const RunOptions& run, Pcg64& rng) const;

  /// Evaluate every member at one noise point in a single batched pass:
  /// all members' error trajectories of the same stratum replay together
  /// (estimate_channel_marginals_batched). rngs[m] is member m's point
  /// rng; each stream is consumed exactly as evaluate(m, ...) would, so
  /// results match the per-member paths to replay rounding.
  std::vector<InstanceOutcome> evaluate_all(const NoiseModel& noise,
                                            const RunOptions& run,
                                            std::vector<Pcg64>& rngs) const;

  /// Evaluate every member at a whole cluster of noise points from one
  /// shared trajectory set per member
  /// (estimate_channel_marginals_shared). rngs[r][m] is member m's point
  /// rng at noises[r]. Returns [rate][member] outcomes; a single-point
  /// cluster matches evaluate_all bit-for-bit.
  std::vector<std::vector<InstanceOutcome>> evaluate_all_rates(
      const std::vector<NoiseModel>& noises, const RunOptions& run,
      std::vector<std::vector<Pcg64>>& rngs,
      SharedEstimateStats* stats = nullptr) const;

 private:
  static std::vector<StateVector> initial_states(
      const CircuitSpec& spec, const std::vector<ArithInstance>& group);

  BatchedCleanRun clean_;
  std::vector<int> output_qubits_;
  std::vector<std::vector<u64>> correct_;
};

}  // namespace qfab
