#include "exp/instances.h"

#include <set>

namespace qfab {

namespace {

/// Uniformly sample an order-`order` qinteger on `bits` qubits with equal
/// amplitudes on distinct random values.
QInt random_qint(int bits, int order, Pcg64& rng) {
  QFAB_CHECK(order >= 1 &&
             static_cast<u64>(order) <= pow2(bits));
  const std::vector<u64> values =
      sample_without_replacement(rng, pow2(bits), static_cast<u64>(order));
  std::vector<std::int64_t> signed_values(values.begin(), values.end());
  return QInt::uniform(bits, signed_values);
}

std::vector<u64> instance_key(const ArithInstance& inst) {
  std::vector<u64> key = inst.x.support();
  key.push_back(~u64{0});  // separator
  const std::vector<u64> ys = inst.y.support();
  key.insert(key.end(), ys.begin(), ys.end());
  return key;
}

}  // namespace

std::vector<ArithInstance> generate_instances(int count, int bits_x,
                                              int bits_y,
                                              const OperandOrders& orders,
                                              Pcg64& rng) {
  QFAB_CHECK(count >= 1);
  std::vector<ArithInstance> out;
  out.reserve(static_cast<std::size_t>(count));
  std::set<std::vector<u64>> seen;
  // Cap the rejection effort: when the operand space is close to exhausted
  // (e.g. 2-bit exhaustive tests), duplicates are allowed.
  const int max_attempts_per_instance = 64;
  for (int i = 0; i < count; ++i) {
    ArithInstance inst{random_qint(bits_x, orders.order_x, rng),
                       random_qint(bits_y, orders.order_y, rng)};
    for (int attempt = 0; attempt < max_attempts_per_instance &&
                          seen.count(instance_key(inst)) != 0;
         ++attempt) {
      inst = ArithInstance{random_qint(bits_x, orders.order_x, rng),
                           random_qint(bits_y, orders.order_y, rng)};
    }
    seen.insert(instance_key(inst));
    out.push_back(std::move(inst));
  }
  return out;
}

}  // namespace qfab
