// Sweep driver: one figure panel = one sweep over (AQFT depth series ×
// gate-error-rate clusters) at fixed operation / operand orders, plus the
// noise-free cluster at the x-origin (paper Figs. 1-2).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.h"
#include "exp/experiment.h"

namespace qfab {

struct SweepConfig {
  CircuitSpec base;               // depth is overridden per series
  std::vector<int> depths;        // AQFT depth series (kFullDepth = "full")
  std::vector<double> rates_percent;  // gate error rates, in percent
  bool vary_2q = false;           // rates drive p2q (else p1q)
  OperandOrders orders;
  int instances = 12;
  RunOptions run;
  std::uint64_t seed = 0xC0FFEEULL;
  bool include_noise_free = true;
  bool progress = false;  // rate-limited count/ETA line on stderr

  /// The rate columns actually swept: rates_percent with the noise-free
  /// column (0.0) prepended when include_noise_free is set. The single
  /// source of truth for column order — run_sweep's outcome layout,
  /// sweep_table's rows, and point_rng's rate index all use it.
  std::vector<double> expanded_rates() const;
};

struct SweepPoint {
  int depth = kFullDepth;
  double rate_percent = 0.0;  // 0 = noise-free cluster
  PointStats stats;
};

struct SweepResult {
  SweepConfig config;
  std::vector<SweepPoint> points;  // ordered (depth-major, rate-minor)
  double seconds = 0.0;
  /// Shared-trajectory bookkeeping aggregated over the whole sweep (all
  /// zeros when run.shared_trajectories is off or per_shot is on).
  SharedEstimateStats shared_stats;

  /// False when a drain request (common/shutdown.h) stopped the sweep
  /// before every work unit ran: `points` is then empty and the journal (if
  /// any) holds everything needed to resume.
  bool complete = true;
  /// Work units — (instance-block, depth) pairs covering all rate columns —
  /// in this sweep, how many finished, and how many of those were restored
  /// from the checkpoint journal instead of recomputed.
  std::size_t units_total = 0;
  std::size_t units_done = 0;
  std::size_t units_restored = 0;
  /// Units whose numerical-health sentinel tripped but whose scalar
  /// non-fused retry succeeded (see DurableOptions / RunOptions::health_checks).
  std::size_t units_retried = 0;
  /// Human-readable descriptions of persistently poisoned units (sentinel
  /// tripped on the retry too); their failed members count as failures in
  /// `points`. Empty on a healthy sweep.
  std::vector<std::string> unit_errors;

  const SweepPoint& at(int depth, double rate_percent) const;
};

/// Durability knobs for run_sweep_durable. Default-constructed options mean
/// "no journal": the sweep still drains gracefully on SIGINT/SIGTERM but
/// nothing is checkpointed.
struct DurableOptions {
  /// Checkpoint journal path (exp/journal.h). Empty = no journal.
  std::string journal_path;
  /// Resume from an existing journal: restore its completed units and only
  /// compute the rest. The journal's config fingerprint must match (a
  /// mismatch is a hard error — resuming a different configuration would
  /// silently mix results). Without `resume`, an existing journal is
  /// truncated and the sweep starts fresh.
  bool resume = false;
  /// Soft per-unit deadline in seconds (0 = off). A unit exceeding it is
  /// logged and a timeout marker is journaled so an operator inspecting the
  /// journal can see where a run wedged; the unit keeps running (simulation
  /// work is not preemptible) and a later completion record supersedes the
  /// marker.
  double unit_deadline_seconds = 0.0;
};

/// Run a sweep on a fixed operand set (generate via generate_instances with
/// the row seed so both error-rate columns see identical operands).
/// Equivalent to run_sweep_durable with default DurableOptions.
SweepResult run_sweep(const SweepConfig& config,
                      const std::vector<ArithInstance>& instances);

/// run_sweep with durability: checkpoint journaling, resume, graceful
/// drain, and numerical-health retry. Point results are bit-identical to
/// run_sweep's regardless of interruption/resume history (deterministic
/// per-point RNG streams; see exp/journal.h).
SweepResult run_sweep_durable(const SweepConfig& config,
                              const std::vector<ArithInstance>& instances,
                              const DurableOptions& durable);

/// Render a panel: one row per rate cluster, one column per depth, cells
/// "succ% s=σ [-lo/+hi]" (error bars as instance counts, as in the paper).
TextTable sweep_table(const SweepResult& result);

/// Human-readable depth label ("1", "2", ..., "full").
std::string depth_label(int depth);

/// Print the panel with a caption to `os`.
void print_sweep(std::ostream& os, const SweepResult& result,
                 const std::string& caption);

}  // namespace qfab
