// Sweep driver: one figure panel = one sweep over (AQFT depth series ×
// gate-error-rate clusters) at fixed operation / operand orders, plus the
// noise-free cluster at the x-origin (paper Figs. 1-2).
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

#include "common/table.h"
#include "exp/experiment.h"

namespace qfab {

struct SweepConfig {
  CircuitSpec base;               // depth is overridden per series
  std::vector<int> depths;        // AQFT depth series (kFullDepth = "full")
  std::vector<double> rates_percent;  // gate error rates, in percent
  bool vary_2q = false;           // rates drive p2q (else p1q)
  OperandOrders orders;
  int instances = 12;
  RunOptions run;
  std::uint64_t seed = 0xC0FFEEULL;
  bool include_noise_free = true;
  bool progress = false;  // rate-limited count/ETA line on stderr

  /// The rate columns actually swept: rates_percent with the noise-free
  /// column (0.0) prepended when include_noise_free is set. The single
  /// source of truth for column order — run_sweep's outcome layout,
  /// sweep_table's rows, and point_rng's rate index all use it.
  std::vector<double> expanded_rates() const;
};

struct SweepPoint {
  int depth = kFullDepth;
  double rate_percent = 0.0;  // 0 = noise-free cluster
  PointStats stats;
};

struct SweepResult {
  SweepConfig config;
  std::vector<SweepPoint> points;  // ordered (depth-major, rate-minor)
  double seconds = 0.0;
  /// Shared-trajectory bookkeeping aggregated over the whole sweep (all
  /// zeros when run.shared_trajectories is off or per_shot is on).
  SharedEstimateStats shared_stats;

  const SweepPoint& at(int depth, double rate_percent) const;
};

/// Run a sweep on a fixed operand set (generate via generate_instances with
/// the row seed so both error-rate columns see identical operands).
SweepResult run_sweep(const SweepConfig& config,
                      const std::vector<ArithInstance>& instances);

/// Render a panel: one row per rate cluster, one column per depth, cells
/// "succ% s=σ [-lo/+hi]" (error bars as instance counts, as in the paper).
TextTable sweep_table(const SweepResult& result);

/// Human-readable depth label ("1", "2", ..., "full").
std::string depth_label(int depth);

/// Print the panel with a caption to `os`.
void print_sweep(std::ostream& os, const SweepResult& result,
                 const std::string& caption);

}  // namespace qfab
