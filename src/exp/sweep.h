// Sweep driver: one figure panel = one sweep over (AQFT depth series ×
// gate-error-rate clusters) at fixed operation / operand orders, plus the
// noise-free cluster at the x-origin (paper Figs. 1-2).
#pragma once

#include <cstddef>
#include <iosfwd>
#include <memory>
#include <string>
#include <vector>

#include "common/table.h"
#include "exp/experiment.h"

namespace qfab {

struct SweepConfig {
  CircuitSpec base;               // depth is overridden per series
  std::vector<int> depths;        // AQFT depth series (kFullDepth = "full")
  std::vector<double> rates_percent;  // gate error rates, in percent
  bool vary_2q = false;           // rates drive p2q (else p1q)
  OperandOrders orders;
  int instances = 12;
  RunOptions run;
  std::uint64_t seed = 0xC0FFEEULL;
  bool include_noise_free = true;
  bool progress = false;  // rate-limited count/ETA line on stderr

  /// The rate columns actually swept: rates_percent with the noise-free
  /// column (0.0) prepended when include_noise_free is set. The single
  /// source of truth for column order — run_sweep's outcome layout,
  /// sweep_table's rows, and point_rng's rate index all use it.
  std::vector<double> expanded_rates() const;
};

struct SweepPoint {
  int depth = kFullDepth;
  double rate_percent = 0.0;  // 0 = noise-free cluster
  PointStats stats;
};

struct SweepResult {
  SweepConfig config;
  std::vector<SweepPoint> points;  // ordered (depth-major, rate-minor)
  double seconds = 0.0;
  /// Shared-trajectory bookkeeping aggregated over the whole sweep (all
  /// zeros when run.shared_trajectories is off or per_shot is on).
  SharedEstimateStats shared_stats;

  /// False when a drain request (common/shutdown.h) stopped the sweep
  /// before every work unit ran: `points` is then empty and the journal (if
  /// any) holds everything needed to resume.
  bool complete = true;
  /// Work units — (instance-block, depth) pairs covering all rate columns —
  /// in this sweep, how many finished, and how many of those were restored
  /// from the checkpoint journal instead of recomputed.
  std::size_t units_total = 0;
  std::size_t units_done = 0;
  std::size_t units_restored = 0;
  /// Units whose numerical-health sentinel tripped but whose scalar
  /// non-fused retry succeeded (see DurableOptions / RunOptions::health_checks).
  std::size_t units_retried = 0;
  /// Human-readable descriptions of persistently poisoned units (sentinel
  /// tripped on the retry too); their failed members count as failures in
  /// `points`. Empty on a healthy sweep.
  std::vector<std::string> unit_errors;

  const SweepPoint& at(int depth, double rate_percent) const;
};

/// Durability knobs for run_sweep_durable. Default-constructed options mean
/// "no journal": the sweep still drains gracefully on SIGINT/SIGTERM but
/// nothing is checkpointed.
struct DurableOptions {
  /// Checkpoint journal path (exp/journal.h). Empty = no journal.
  std::string journal_path;
  /// Resume from an existing journal: restore its completed units and only
  /// compute the rest. The journal's config fingerprint must match (a
  /// mismatch is a hard error — resuming a different configuration would
  /// silently mix results). Without `resume`, an existing journal is
  /// truncated and the sweep starts fresh.
  bool resume = false;
  /// Soft per-unit deadline in seconds (0 = off). A unit exceeding it is
  /// logged and a timeout marker is journaled so an operator inspecting the
  /// journal can see where a run wedged; the unit keeps running (simulation
  /// work is not preemptible) and a later completion record supersedes the
  /// marker.
  double unit_deadline_seconds = 0.0;
};

/// Fixed geometry of a sweep's work units. A work unit is an
/// (instance-block, depth) pair covering every rate column — the smallest
/// self-contained piece, because the shared estimator computes whole rate
/// clusters and the batched engine advances whole instance groups. Unit
/// u = group * n_depths + depth_index; the final block is ragged when
/// n_instances % block != 0. The grid is pure arithmetic on the config, so
/// every process working the same sweep (journal resume, fabric workers,
/// the merge) derives the identical unit numbering independently.
struct SweepGrid {
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  std::size_t n_depths = 0;
  std::size_t n_rates = 0;
  std::size_t n_instances = 0;
  std::size_t block = 1;    // instances per work unit
  std::size_t n_groups = 0;
  std::size_t n_units = 0;

  SweepGrid() = default;
  SweepGrid(const SweepConfig& config, std::size_t n_instances);

  /// The (depth, instance-block) coordinates of unit `u`.
  struct UnitKey {
    std::size_t depth_index = 0;
    std::size_t block_begin = 0;
    std::size_t block_end = 0;
  };
  UnitKey key(std::size_t u) const;

  /// Inverse of key(): the unit index for these coordinates, or npos when
  /// they do not lie on the grid (wrong alignment, ragged-block mismatch,
  /// out of range). Used to validate untrusted journal records.
  std::size_t unit_of(std::size_t depth_index, std::size_t block_begin,
                      std::size_t block_end) const;
};

/// One computed work unit: outcomes[rate][member] for the instance block
/// (rate order = SweepConfig::expanded_rates(), member m = instance
/// block_begin + m), plus its shared-trajectory bookkeeping contribution.
struct UnitResult {
  std::vector<std::vector<InstanceOutcome>> outcomes;
  SharedEstimateStats stats;
  bool retried = false;   // health sentinel tripped, scalar retry ran
  bool poisoned = false;  // sentinel tripped on the retry too
  std::string error;      // poisoned-member descriptions
};

/// Compiled, immutable execution state for one sweep: transpiled circuits
/// and fused plans per depth, rate clusters, the unit grid. Owns copies of
/// the config and operand set, so it outlives the caller's arguments —
/// fabric workers build one and keep it for their whole claim loop.
/// run_unit is safe to call from multiple threads concurrently.
class SweepExecution {
 public:
  SweepExecution(const SweepConfig& config,
                 std::vector<ArithInstance> instances);
  ~SweepExecution();

  SweepExecution(const SweepExecution&) = delete;
  SweepExecution& operator=(const SweepExecution&) = delete;

  const SweepConfig& config() const;
  const std::vector<ArithInstance>& instances() const;
  const SweepGrid& grid() const;

  /// Compute unit `u` (all rate columns). Numerical-health sentinel trips
  /// retry once on the scalar non-fused path; persistent failures come back
  /// poisoned instead of throwing. Deterministic: results depend only on
  /// (config, instances, u), never on execution order or thread schedule.
  UnitResult run_unit(std::size_t u);

 private:
  struct Impl;
  std::unique_ptr<Impl> impl_;
};

/// Accumulates unit results — computed, restored from a journal, or merged
/// from fabric shards — into a SweepResult. Deduplicates (first record for
/// a unit wins; duplicates arise from crash-resume overlap and broken-lease
/// steals) and validates shapes against the grid, so a merge can never mix
/// mis-shaped records into the outcome matrix. Feeding records for every
/// unit in deterministic unit order produces a SweepResult bit-identical to
/// a single uninterrupted run_sweep (stats merge in unit order; points are
/// depth-major, rate-minor).
class SweepAssembler {
 public:
  enum class Add {
    kAdded,      ///< new unit, absorbed
    kDuplicate,  ///< unit already present; record ignored (first wins)
    kMisfit,     ///< coordinates or outcome shape off-grid; record ignored
  };

  SweepAssembler(const SweepConfig& config, const SweepGrid& grid);

  /// Absorb a journaled/shard record by coordinates. Not thread-safe.
  Add add_record(std::size_t depth_index, std::size_t block_begin,
                 std::size_t block_end,
                 const std::vector<std::vector<InstanceOutcome>>& outcomes,
                 const SharedEstimateStats& stats, const std::string& error);

  /// Absorb a freshly computed unit. Thread-safe for *distinct* units
  /// (disjoint outcome slots); the caller guarantees each unit is added
  /// at most once on this path.
  void add_computed(std::size_t u, UnitResult&& out);

  bool done(std::size_t u) const { return unit_done_[u] != 0; }
  std::size_t members_of(std::size_t u) const;
  std::size_t units_done() const;

  /// Build the final SweepResult. `complete` (and points) only when every
  /// unit was added; an incomplete result carries the unit accounting so
  /// callers can report progress and resume.
  SweepResult finish(double seconds, std::size_t units_restored,
                     std::size_t units_retried) const;

 private:
  SweepConfig config_;
  SweepGrid grid_;
  std::vector<double> rates_;
  // outcomes[depth][rate][instance]
  std::vector<std::vector<std::vector<InstanceOutcome>>> outcomes_;
  std::vector<SharedEstimateStats> unit_stats_;
  std::vector<std::string> unit_error_;
  std::vector<char> unit_done_;
};

/// Run a sweep on a fixed operand set (generate via generate_instances with
/// the row seed so both error-rate columns see identical operands).
/// Equivalent to run_sweep_durable with default DurableOptions.
SweepResult run_sweep(const SweepConfig& config,
                      const std::vector<ArithInstance>& instances);

/// run_sweep with durability: checkpoint journaling, resume, graceful
/// drain, and numerical-health retry. Point results are bit-identical to
/// run_sweep's regardless of interruption/resume history (deterministic
/// per-point RNG streams; see exp/journal.h).
SweepResult run_sweep_durable(const SweepConfig& config,
                              const std::vector<ArithInstance>& instances,
                              const DurableOptions& durable);

/// Render a panel: one row per rate cluster, one column per depth, cells
/// "succ% s=σ [-lo/+hi]" (error bars as instance counts, as in the paper).
TextTable sweep_table(const SweepResult& result);

/// Machine-readable point dump, one row per sweep point (depth,
/// rate_percent, success_rate, sigma, lower_flips, upper_flips, instances).
/// The canonical CSV layout shared by the figure benches and the fabric's
/// byte-identity checks.
TextTable sweep_csv_table(const SweepResult& result);

/// Human-readable depth label ("1", "2", ..., "full").
std::string depth_label(int depth);

/// Print the panel with a caption to `os`.
void print_sweep(std::ostream& os, const SweepResult& result,
                 const std::string& caption);

}  // namespace qfab
