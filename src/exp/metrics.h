// Distribution- and fidelity-based quality metrics — the "more advanced
// success metric, such as evaluating the quantum state fidelity [Jozsa]"
// that the paper's discussion proposes as future work, plus the standard
// distribution distances used to compare noisy outputs against ideal ones.
#pragma once

#include <cstdint>
#include <vector>

#include "common/bits.h"

namespace qfab {

/// Total-variation distance (1/2)·Σ|p_i - q_i| ∈ [0, 1].
double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q);

/// Hellinger fidelity (Σ sqrt(p_i q_i))² — the classical counterpart of
/// state fidelity, what Qiskit reports as `hellinger_fidelity`.
double hellinger_fidelity(const std::vector<double>& p,
                          const std::vector<double>& q);

/// Kullback–Leibler divergence D(p || q), natural log; q_i = 0 bins with
/// p_i > 0 contribute +inf (returned as a large finite sentinel 1e12).
double kl_divergence(const std::vector<double>& p,
                     const std::vector<double>& q);

/// Probability mass on a sorted set of correct outcomes — the simplest
/// graded alternative to the paper's win/lose metric.
double success_mass(const std::vector<double>& p,
                    const std::vector<u64>& correct_outputs);

/// Empirical distribution from shot counts.
std::vector<double> normalize_counts(const std::vector<std::uint64_t>& counts);

}  // namespace qfab
