// Checkpoint journal for durable sweeps.
//
// A paper-scale sweep (≥200 instances × 2048 shots per point, six panels)
// is hours of batch work; run_sweep alone is all-or-nothing. The journal
// makes it restartable: one record per completed *work unit* — an
// (instance-block, depth) pair covering every error-rate column at once,
// because the shared-trajectory estimator computes a whole rate cluster
// from one trajectory set and its bookkeeping is per-cluster, not per-rate
// — appended and fsync'd as units finish. A resumed run skips journaled
// units, replays nothing, and (thanks to the deterministic per-point RNG
// streams, exp/sweep.cpp point_rng) reconstructs a SweepResult bit-
// identical to an uninterrupted run.
//
// On-disk format (host-endian, not an interchange format):
//
//   frame   := u32 payload_len | u32 crc32(payload) | payload
//   file    := header_frame record_frame*
//   header  := "QFABJNL1" | u32 version | u64 fingerprint
//   record  := u8 type | u32 depth_index | u32 block_begin | u32 block_end
//              | type-specific body
//
// The fingerprint hashes everything the outcomes depend on — circuit spec,
// depth series, expanded rate columns, operand orders and values, RunOptions,
// and the sweep seed — so a journal can never be resumed against a
// different configuration and silently mix results.
//
// Robustness contract: appends are fsync'd per record, so a crash leaves at
// most one torn/corrupt trailing record. read_journal validates frames
// sequentially and *drops* everything from the first bad frame on
// (drop-and-rewind — a damaged tail must never abort a resume); the
// resuming writer first rewrites the valid prefix via atomic tmp + fsync +
// rename (common/io.h) so the file on disk is whole again before new
// records are appended.
#pragma once

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "exp/sweep.h"

namespace qfab {

/// One journaled work unit: instance block [block_begin, block_end) at
/// depth index depth_index, all rate columns.
struct JournalRecord {
  enum class Type : std::uint8_t {
    kUnit = 1,      ///< completed unit: outcomes for every rate column
    kTimeout = 2,   ///< soft-deadline marker (unit still pending; a later
                    ///< kUnit record for the same key supersedes it)
    kPoisoned = 3,  ///< unit completed with a persistent numerical-health
                    ///< failure: outcomes recorded (failed members default
                    ///< to success=false), error describes the sentinel
  };

  Type type = Type::kUnit;
  std::uint32_t depth_index = 0;
  std::uint32_t block_begin = 0;
  std::uint32_t block_end = 0;
  /// outcomes[rate][member]; rate order = SweepConfig::expanded_rates(),
  /// member i = instance block_begin + i. Empty for kTimeout.
  std::vector<std::vector<InstanceOutcome>> outcomes;
  /// This unit's shared-trajectory bookkeeping contribution.
  SharedEstimateStats stats;
  /// kPoisoned: human-readable sentinel failure description.
  std::string error;
};

/// Everything read_journal could recover from a journal file.
struct JournalContents {
  /// Header frame parsed and magic/version matched. False for a missing,
  /// empty, or unrecognizable file (records is then empty).
  bool header_ok = false;
  std::uint64_t fingerprint = 0;
  std::vector<JournalRecord> records;
  /// Byte length of the valid prefix (frames up to the first damaged one).
  std::size_t valid_bytes = 0;
  /// True when trailing bytes after the valid prefix were dropped
  /// (torn write, CRC mismatch, or truncated frame).
  bool dropped_tail = false;
  /// Best-effort census of the dropped tail, so repair can report what a
  /// truncation costs instead of discarding silently: whole frames stranded
  /// past the first damaged one (counted by following each frame's claimed
  /// length; their payloads may or may not be recoverable) and whether a
  /// torn partial frame ends the file.
  std::size_t dropped_bytes = 0;
  std::size_t dropped_frames = 0;
  bool dropped_partial_frame = false;
  /// Human-readable description of what was dropped, for logs.
  std::string note;
};

/// Hash of everything a sweep's outcomes depend on (see file comment).
std::uint64_t sweep_fingerprint(const SweepConfig& config,
                                const std::vector<ArithInstance>& instances);

/// Parse `path`. Never throws for damaged contents — damage is reported via
/// header_ok / dropped_tail; only unreadable-but-existing files throw.
/// A missing file yields header_ok=false with an explanatory note.
JournalContents read_journal(const std::string& path);

/// Rewrite `path` to exactly its records' canonical serialization via
/// atomic tmp + fsync + rename. Used on resume after read_journal dropped a
/// damaged tail, and by the repair tool.
void rewrite_journal(const std::string& path, const JournalContents& contents);

/// Append-only, fsync-per-record journal writer. Thread-safe (the sweep's
/// workers journal units as they finish). Honors the QFAB_FAULT
/// crash/torn-write/corrupt-crc/drain directives (common/fault.h) at unit
/// granularity: kTimeout markers do not advance the fault unit counter.
class JournalWriter {
 public:
  /// `fresh` truncates (or creates) the file and writes a new header;
  /// otherwise the file must already hold a valid header for `fingerprint`
  /// and new records are appended after its current end. A non-fresh open
  /// re-validates the file and *refuses* (CheckError) when a damaged tail
  /// is present: appending after a torn-tail rewind would strand the new
  /// records behind garbage, so the valid prefix must be rewritten
  /// (rewrite_journal / qfab_journal --repair) before appends resume.
  JournalWriter(const std::string& path, std::uint64_t fingerprint,
                bool fresh);
  ~JournalWriter();

  JournalWriter(const JournalWriter&) = delete;
  JournalWriter& operator=(const JournalWriter&) = delete;

  /// Serialize, append, fsync. Throws CheckError on I/O failure.
  void append(const JournalRecord& record);

  const std::string& path() const { return path_; }

 private:
  std::string path_;
  int fd_ = -1;
  std::mutex mu_;
  long units_appended_ = 0;  // kUnit/kPoisoned records, for fault ordinals
};

}  // namespace qfab
