#include "exp/fabric.h"

#include <dirent.h>
#include <fcntl.h>
#include <signal.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <mutex>
#include <sstream>
#include <thread>

#include "common/check.h"
#include "common/fault.h"
#include "common/io.h"
#include "common/shutdown.h"
#include "common/stopwatch.h"
#include "exp/journal.h"

namespace qfab {

namespace {

using Clock = std::chrono::steady_clock;

std::string unit_name(std::size_t u) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "u%06zu", u);
  return buf;
}

std::string leases_dir(const std::string& dir) { return dir + "/leases"; }
std::string units_dir(const std::string& dir) { return dir + "/units"; }
std::string shards_dir(const std::string& dir) { return dir + "/shards"; }
std::string manifest_path(const std::string& dir) {
  return dir + "/MANIFEST";
}
std::string lease_path(const std::string& dir, std::size_t u) {
  return leases_dir(dir) + "/" + unit_name(u) + ".lease";
}
std::string done_path(const std::string& dir, std::size_t u) {
  return units_dir(dir) + "/" + unit_name(u) + ".done";
}
std::string shard_path(const std::string& dir, int worker_id) {
  return shards_dir(dir) + "/shard_" + std::to_string(worker_id) +
         ".journal";
}
std::string report_path(const std::string& dir, int worker_id) {
  return shards_dir(dir) + "/shard_" + std::to_string(worker_id) + ".report";
}

/// mkdir -p: create every missing prefix of `path`.
void mkdirs(const std::string& path) {
  std::string prefix;
  std::size_t pos = 0;
  while (pos <= path.size()) {
    const std::size_t slash = path.find('/', pos);
    prefix = slash == std::string::npos ? path : path.substr(0, slash);
    pos = slash == std::string::npos ? path.size() + 1 : slash + 1;
    if (prefix.empty()) continue;
    if (::mkdir(prefix.c_str(), 0755) != 0)
      QFAB_CHECK_MSG(errno == EEXIST, "cannot create directory "
                                          << prefix << ": "
                                          << std::strerror(errno));
  }
}

/// Sorted names of the regular entries in `path` (empty when missing).
std::vector<std::string> list_dir(const std::string& path) {
  std::vector<std::string> names;
  DIR* d = ::opendir(path.c_str());
  if (d == nullptr) return names;
  while (dirent* e = ::readdir(d)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(d);
  std::sort(names.begin(), names.end());
  return names;
}

void wipe_dir_files(const std::string& path) {
  for (const std::string& name : list_dir(path))
    (void)::unlink((path + "/" + name).c_str());
}

bool file_exists(const std::string& path) {
  return ::access(path.c_str(), F_OK) == 0;
}

/// Whole-file read; empty string when the file is missing or vanishes
/// mid-read (callers treat both as "no content").
std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return "";
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

bool starts_with(const std::string& s, const std::string& prefix) {
  return s.size() >= prefix.size() &&
         s.compare(0, prefix.size(), prefix) == 0;
}

std::string manifest_text(std::uint64_t fingerprint, const SweepGrid& grid) {
  std::ostringstream out;
  out << "QFABFAB1\n"
      << "fingerprint=" << fingerprint << '\n'
      << "units=" << grid.n_units << '\n'
      << "depths=" << grid.n_depths << '\n'
      << "rates=" << grid.n_rates << '\n'
      << "instances=" << grid.n_instances << '\n'
      << "block=" << grid.block << '\n';
  return out.str();
}

/// Parse "key=<number>\n" out of a manifest body; 0 when absent.
std::uint64_t manifest_field(const std::string& text, const std::string& key) {
  const std::string needle = key + "=";
  std::size_t pos = text.find(needle);
  while (pos != std::string::npos && pos != 0 && text[pos - 1] != '\n')
    pos = text.find(needle, pos + 1);
  if (pos == std::string::npos) return 0;
  return std::strtoull(text.c_str() + pos + needle.size(), nullptr, 10);
}

std::string worker_identity(int worker_id) {
  char host[256] = "?";
  (void)::gethostname(host, sizeof(host) - 1);
  std::ostringstream out;
  out << "pid=" << ::getpid() << " worker=" << worker_id << " host=" << host;
  return out.str();
}

pid_t lease_holder_pid(const std::string& content) {
  long pid = -1;
  if (std::sscanf(content.c_str(), "pid=%ld", &pid) != 1) return -1;
  return static_cast<pid_t>(pid);
}

/// Claim `path` exclusively: O_CREAT|O_EXCL, fsync'd content and directory.
/// False when another worker holds it.
bool try_acquire_lease(const std::string& path, const std::string& identity) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    QFAB_CHECK_MSG(errno == EEXIST, "cannot create lease "
                                        << path << ": "
                                        << std::strerror(errno));
    return false;
  }
  const std::string content = identity + " beat=0\n";
  std::size_t written = 0;
  bool ok = true;
  while (ok && written < content.size()) {
    const ssize_t n = ::write(fd, content.data() + written,
                              content.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ok = false;
    } else {
      written += static_cast<std::size_t>(n);
    }
  }
  if (ok && ::fsync(fd) != 0) ok = false;
  if (::close(fd) != 0) ok = false;
  if (!ok) {
    const int err = errno;
    (void)::unlink(path.c_str());
    QFAB_CHECK_MSG(false, "cannot write lease " << path << ": "
                                                << std::strerror(err));
  }
  fsync_parent_dir(path);
  return true;
}

/// Renews the held lease on a background thread so a healthy worker is
/// never expired mid-unit, no matter how slow the unit is. Renewal first
/// re-reads the lease and verifies it still names this worker — if the
/// coordinator broke the lease (and another worker may have re-acquired
/// it), renewing would clobber the new holder's claim, so the heartbeat
/// marks the lease lost and stops instead. (The read-then-replace window
/// is a benign race: the worst outcome is one stale renewal of a lease the
/// coordinator already decided to break, which delays reassignment by one
/// expiry window, never corrupts results.)
class Heartbeat {
 public:
  explicit Heartbeat(double interval_seconds)
      : interval_(interval_seconds) {
    thread_ = std::thread([this] { loop(); });
  }
  ~Heartbeat() {
    {
      const std::lock_guard<std::mutex> lock(mu_);
      stop_ = true;
    }
    cv_.notify_all();
    thread_.join();
  }

  void hold(const std::string& path, const std::string& identity) {
    const std::lock_guard<std::mutex> lock(mu_);
    path_ = path;
    identity_ = identity;
    beat_ = 0;
    active_ = true;
    lost_ = false;
  }
  /// Stop renewing but keep the bookkeeping (lease-steal injection).
  void pause() {
    const std::lock_guard<std::mutex> lock(mu_);
    active_ = false;
  }
  void release() {
    const std::lock_guard<std::mutex> lock(mu_);
    active_ = false;
    path_.clear();
  }
  bool lost() const {
    const std::lock_guard<std::mutex> lock(mu_);
    return lost_;
  }

 private:
  void loop() {
    std::unique_lock<std::mutex> lock(mu_);
    while (!stop_) {
      cv_.wait_for(lock,
                   std::chrono::duration<double>(interval_),
                   [this] { return stop_; });
      if (stop_ || !active_) continue;
      const std::string path = path_;
      const std::string identity = identity_;
      const long beat = ++beat_;
      lock.unlock();
      const bool renewed = renew(path, identity, beat);
      lock.lock();
      if (!renewed && path == path_ && active_) {
        lost_ = true;
        active_ = false;
      }
    }
  }

  static bool renew(const std::string& path, const std::string& identity,
                    long beat) {
    try {
      if (!starts_with(read_file(path), identity)) return false;
      atomic_write_file(path,
                        identity + " beat=" + std::to_string(beat) + "\n");
      return true;
    } catch (...) {
      return false;  // treat any renewal failure as a lost lease
    }
  }

  const double interval_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::thread thread_;
  std::string path_;
  std::string identity_;
  long beat_ = 0;
  bool active_ = false;
  bool lost_ = false;
  bool stop_ = false;
};

void sleep_seconds(double s) {
  std::this_thread::sleep_for(std::chrono::duration<double>(s));
}

int decode_wait_status(int status) {
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return 128 + WTERMSIG(status);
  return -1;
}

}  // namespace

int run_sweep_worker(const SweepConfig& config,
                     const std::vector<ArithInstance>& instances,
                     const std::string& dir, int worker_id,
                     double lease_seconds) {
  install_soft_drain_handler();
  // A forked fleet inherits QFAB_FAULT wholesale; the fault-worker gate
  // restricts the spec to one member so a test can crash exactly one
  // worker (and its replacement, which gets a fresh id, runs clean).
  if (fault::fault_worker() >= 0 && fault::fault_worker() != worker_id)
    fault::set_fault_spec_for_tests("");

  const std::uint64_t fp = sweep_fingerprint(config, instances);
  const std::string manifest = read_file(manifest_path(dir));
  QFAB_CHECK_MSG(starts_with(manifest, "QFABFAB1"),
                 "fabric directory " << dir << " has no manifest");
  QFAB_CHECK_MSG(manifest_field(manifest, "fingerprint") == fp,
                 "fabric directory "
                     << dir
                     << " belongs to a different sweep configuration "
                        "(fingerprint mismatch); refusing to join");

  SweepExecution exec(config, instances);
  const SweepGrid& grid = exec.grid();
  JournalWriter shard(shard_path(dir, worker_id), fp, /*fresh=*/true);
  const std::string identity = worker_identity(worker_id);
  Heartbeat heart(std::max(0.02, lease_seconds / 4.0));

  long journaled = 0;
  long retried = 0;
  const auto write_report = [&](bool drained) {
    std::ostringstream out;
    out << "units=" << journaled << " retried=" << retried
        << " drained=" << (drained ? 1 : 0) << '\n';
    try {
      atomic_write_file(report_path(dir, worker_id), out.str());
    } catch (...) {
      // The report is advisory; a failed write must not kill the worker.
    }
  };
  write_report(false);

  const auto all_units_done = [&] {
    for (std::size_t u = 0; u < grid.n_units; ++u)
      if (!file_exists(done_path(dir, u))) return false;
    return true;
  };

  bool complete = false;
  while (true) {
    if (shutdown_requested()) {
      complete = all_units_done();
      break;
    }
    // Claim scan, offset per worker so the fleet fans out over the grid
    // instead of contending on unit 0.
    std::size_t claimed = SweepGrid::npos;
    bool any_pending = false;
    const std::size_t offset =
        grid.n_units ? static_cast<std::size_t>(worker_id) % grid.n_units
                     : 0;
    for (std::size_t k = 0; k < grid.n_units; ++k) {
      const std::size_t u = (k + offset) % grid.n_units;
      if (file_exists(done_path(dir, u))) continue;
      any_pending = true;
      if (try_acquire_lease(lease_path(dir, u), identity)) {
        claimed = u;
        break;
      }
    }
    if (!any_pending) {
      complete = true;
      break;
    }
    if (claimed == SweepGrid::npos) {
      // Every pending unit is leased elsewhere; wait for done markers to
      // appear or for the coordinator to break a stale lease.
      sleep_seconds(0.02);
      continue;
    }
    if (file_exists(done_path(dir, claimed))) {
      // Lost the race: the marker landed between our scan and acquire.
      (void)::unlink(lease_path(dir, claimed).c_str());
      continue;
    }
    heart.hold(lease_path(dir, claimed), identity);

    if (fault::hang_after_unit() >= 0 &&
        journaled == fault::hang_after_unit()) {
      // Wedge forever while holding the lease, heartbeat stopped: the
      // coordinator must expire the lease, SIGKILL this process, and
      // reassign the unit.
      heart.pause();
      std::fprintf(stderr,
                   "\nQFAB_FAULT: worker %d wedging on unit %zu "
                   "(hang-after-unit)\n",
                   worker_id, claimed);
      std::fflush(stderr);
      for (;;) sleep_seconds(0.05);
    }
    bool injected_steal = false;
    if (fault::lease_steal_unit() >= 0 &&
        journaled + 1 == fault::lease_steal_unit()) {
      // Simulate the broken-lease race: stop heartbeating, journal the
      // unit but skip its done marker and lease release, and let the
      // coordinator expire the (now stale) lease. The reassigned worker
      // recomputes the unit, so the merge sees a genuine duplicate record
      // it must deduplicate.
      heart.pause();
      std::fprintf(stderr,
                   "\nQFAB_FAULT: worker %d letting the lease of unit %zu "
                   "expire (lease-steal)\n",
                   worker_id, claimed);
      std::fflush(stderr);
      injected_steal = true;
    }

    UnitResult out = exec.run_unit(claimed);
    if (out.retried) ++retried;
    const SweepGrid::UnitKey key = grid.key(claimed);
    JournalRecord rec;
    rec.type = out.poisoned ? JournalRecord::Type::kPoisoned
                            : JournalRecord::Type::kUnit;
    rec.depth_index = static_cast<std::uint32_t>(key.depth_index);
    rec.block_begin = static_cast<std::uint32_t>(key.block_begin);
    rec.block_end = static_cast<std::uint32_t>(key.block_end);
    rec.outcomes = std::move(out.outcomes);
    rec.stats = out.stats;
    rec.error = out.error;
    shard.append(rec);  // fsync'd; crash faults fire in here
    ++journaled;
    // Marker only after the fsync'd append: marker => durable record. The
    // injected-steal path skips it (and the unlink — the lease is not ours
    // anymore) so the reassigned worker reliably recomputes the unit and
    // the merge sees a genuine duplicate.
    if (!injected_steal) {
      atomic_write_file(done_path(dir, claimed), identity + "\n");
      heart.release();
      if (!heart.lost() &&
          starts_with(read_file(lease_path(dir, claimed)), identity))
        (void)::unlink(lease_path(dir, claimed).c_str());
    } else {
      // The record is durable; now park until the coordinator breaks the
      // stale lease (possibly SIGKILLing this process — the duplicate is
      // already on disk either way) so the reassignment happens before
      // this worker claims anything else.
      while (starts_with(read_file(lease_path(dir, claimed)), identity))
        sleep_seconds(0.02);
      heart.release();
    }
    write_report(false);
  }

  write_report(!complete);
  return complete ? 0 : kResumableExitCode;
}

SweepResult run_sweep_fabric(const SweepConfig& config,
                             const std::vector<ArithInstance>& instances,
                             const FabricOptions& options,
                             FabricReport* report) {
  QFAB_CHECK(options.workers >= 1);
  QFAB_CHECK(!options.dir.empty());
  Stopwatch watch;
  FabricReport local_report;
  FabricReport& rep = report ? *report : local_report;
  rep = FabricReport{};

  const std::uint64_t fp = sweep_fingerprint(config, instances);
  const SweepGrid grid(config, instances.size());

  mkdirs(options.dir);
  mkdirs(leases_dir(options.dir));
  mkdirs(units_dir(options.dir));
  mkdirs(shards_dir(options.dir));

  const std::string manifest = read_file(manifest_path(options.dir));
  if (options.resume && starts_with(manifest, "QFABFAB1")) {
    QFAB_CHECK_MSG(manifest_field(manifest, "fingerprint") == fp,
                   "fabric directory "
                       << options.dir
                       << " was written by a different sweep configuration "
                          "(fingerprint mismatch); refusing to resume");
  }
  if (!options.resume) {
    wipe_dir_files(units_dir(options.dir));
    wipe_dir_files(shards_dir(options.dir));
  }
  // No worker is running yet, so every lease on disk is stale by
  // definition (a previous coordinator's crash or kill).
  wipe_dir_files(leases_dir(options.dir));
  atomic_write_file(manifest_path(options.dir), manifest_text(fp, grid));

  std::size_t restored = 0;
  if (options.resume)
    restored = list_dir(units_dir(options.dir)).size();

  // Worker ids start above every existing shard index: a resumed or
  // respawned worker must never truncate a predecessor's durable records.
  int next_id = 0;
  for (const std::string& name : list_dir(shards_dir(options.dir))) {
    int id = -1;
    if (std::sscanf(name.c_str(), "shard_%d.journal", &id) == 1)
      next_id = std::max(next_id, id + 1);
  }

  struct Child {
    pid_t pid = -1;
    int worker_id = -1;
    bool live = true;
  };
  std::vector<Child> children;

  // Precomputed for the forked child: divide the host's threads across the
  // fleet unless the caller already pinned QFAB_THREADS.
  const unsigned hw = std::max(1u, std::thread::hardware_concurrency());
  const std::string threads_share = std::to_string(
      std::max(1u, hw / static_cast<unsigned>(options.workers)));
  const bool threads_pinned = std::getenv("QFAB_THREADS") != nullptr;

  const auto spawn_worker = [&](int worker_id) {
    pid_t pid = -1;
    if (options.spawn) {
      pid = options.spawn(worker_id);
    } else {
      pid = ::fork();
      QFAB_CHECK_MSG(pid >= 0, "fork failed: " << std::strerror(errno));
      if (pid == 0) {
        if (!threads_pinned)
          (void)::setenv("QFAB_THREADS", threads_share.c_str(), 1);
        int code = 1;
        try {
          code = run_sweep_worker(config, instances, options.dir, worker_id,
                                  options.lease_seconds);
        } catch (const std::exception& e) {
          std::fprintf(stderr, "[qfab-fabric] worker %d failed: %s\n",
                       worker_id, e.what());
        }
        std::_Exit(code);
      }
    }
    children.push_back(Child{pid, worker_id, true});
    ++rep.workers_spawned;
  };

  for (int k = 0; k < options.workers; ++k) spawn_worker(next_id++);

  struct LeaseTrack {
    std::string content;
    Clock::time_point changed;
  };
  std::map<std::string, LeaseTrack> tracks;
  std::map<std::string, int> steals_by_lease;
  std::vector<Clock::time_point> pending_respawns;
  bool drain_propagated = false;
  std::size_t last_progress = static_cast<std::size_t>(-1);

  const auto live_count = [&] {
    std::size_t n = 0;
    for (const Child& c : children)
      if (c.live) ++n;
    return n;
  };

  while (live_count() > 0 || !pending_respawns.empty()) {
    // Reap exited workers.
    int status = 0;
    pid_t pid;
    while ((pid = ::waitpid(-1, &status, WNOHANG)) > 0) {
      const int code = decode_wait_status(status);
      for (Child& c : children) {
        if (c.pid != pid || !c.live) continue;
        c.live = false;
        rep.exits.push_back(WorkerExit{c.worker_id, pid, code});
        if (code != 0 && code != kResumableExitCode) {
          if (!shutdown_requested() && rep.respawns < options.max_respawns) {
            const double delay = options.respawn_backoff_seconds *
                                 static_cast<double>(1 << rep.respawns);
            std::fprintf(stderr,
                         "[qfab-fabric] worker %d (pid %ld) exited with "
                         "code %d; respawning in %.2fs\n",
                         c.worker_id, static_cast<long>(pid), code, delay);
            pending_respawns.push_back(
                Clock::now() + std::chrono::duration_cast<Clock::duration>(
                                   std::chrono::duration<double>(delay)));
          } else {
            std::fprintf(stderr,
                         "[qfab-fabric] worker %d (pid %ld) exited with "
                         "code %d; respawn budget exhausted — remaining "
                         "workers will finish what they can\n",
                         c.worker_id, static_cast<long>(pid), code);
          }
        }
        break;
      }
    }

    // Fire due respawns (cancelled by a drain: no point restarting work
    // we are about to stop).
    if (shutdown_requested()) {
      pending_respawns.clear();
    } else {
      const Clock::time_point now = Clock::now();
      for (auto it = pending_respawns.begin();
           it != pending_respawns.end();) {
        if (*it <= now) {
          ++rep.respawns;
          spawn_worker(next_id++);
          it = pending_respawns.erase(it);
        } else {
          ++it;
        }
      }
    }

    // Propagate a drain once, via the soft channel (never a counted
    // signal: a terminal Ctrl-C already reached the whole process group).
    if (shutdown_requested() && !drain_propagated) {
      drain_propagated = true;
      for (const Child& c : children)
        if (c.live) (void)::kill(c.pid, SIGUSR1);
    }

    // Lease supervision: expire leases whose content stopped changing.
    const std::vector<std::string> lease_files =
        list_dir(leases_dir(options.dir));
    for (auto it = tracks.begin(); it != tracks.end();) {
      if (std::find(lease_files.begin(), lease_files.end(), it->first) ==
          lease_files.end())
        it = tracks.erase(it);
      else
        ++it;
    }
    const Clock::time_point now = Clock::now();
    for (const std::string& name : lease_files) {
      const std::string path = leases_dir(options.dir) + "/" + name;
      const std::string content = read_file(path);
      auto [it, fresh] = tracks.try_emplace(name);
      if (fresh || it->second.content != content) {
        it->second.content = content;
        it->second.changed = now;
        continue;
      }
      const int steals = steals_by_lease[name];
      const double window =
          options.lease_seconds *
          static_cast<double>(1 << std::min(steals, 10));
      const double idle =
          std::chrono::duration<double>(now - it->second.changed).count();
      if (idle <= window) continue;
      // Expired: kill the holder if it is a live child (it is wedged — a
      // drain request cannot reach it), break the lease, and let the
      // surviving workers reacquire the unit.
      const pid_t holder = lease_holder_pid(content);
      for (Child& c : children) {
        if (!c.live || c.pid != holder) continue;
        std::fprintf(stderr,
                     "[qfab-fabric] lease %s stale for %.1fs; killing "
                     "wedged worker %d (pid %ld)\n",
                     name.c_str(), idle, c.worker_id,
                     static_cast<long>(holder));
        (void)::kill(holder, SIGKILL);
        ++rep.kills;
        break;
      }
      std::fprintf(stderr, "[qfab-fabric] breaking stale lease %s\n",
                   name.c_str());
      (void)::unlink(path.c_str());
      tracks.erase(name);
      steals_by_lease[name] = steals + 1;
      ++rep.lease_steals;
    }

    if (options.progress) {
      const std::size_t done = list_dir(units_dir(options.dir)).size();
      if (done != last_progress) {
        last_progress = done;
        std::fprintf(stderr, "\r[qfab-fabric] %zu/%zu units done    ", done,
                     grid.n_units);
        std::fflush(stderr);
      }
    }
    sleep_seconds(options.poll_seconds);
  }
  if (options.progress) std::fprintf(stderr, "\n");

  // Merge: every shard journal, sorted, first record per unit wins. Unit
  // results are deterministic, so duplicates (crash windows, broken
  // leases) are bit-identical and the dedup order cannot matter; the
  // assembler then aggregates in unit order, matching run_sweep_durable
  // bit for bit.
  SweepAssembler assembler(config, grid);
  std::size_t duplicates = 0;
  for (const std::string& name : list_dir(shards_dir(options.dir))) {
    if (name.find(".journal") == std::string::npos) continue;
    const std::string path = shards_dir(options.dir) + "/" + name;
    const JournalContents contents = read_journal(path);
    if (!contents.header_ok) {
      std::fprintf(stderr, "[qfab-fabric] skipping unreadable shard %s\n",
                   name.c_str());
      continue;
    }
    if (contents.fingerprint != fp) {
      std::fprintf(stderr,
                   "[qfab-fabric] skipping shard %s (fingerprint "
                   "mismatch)\n",
                   name.c_str());
      continue;
    }
    if (contents.dropped_tail)
      std::fprintf(stderr, "[qfab-fabric] shard %s: %s\n", name.c_str(),
                   contents.note.c_str());
    for (const JournalRecord& rec : contents.records) {
      if (rec.type == JournalRecord::Type::kTimeout) continue;
      const std::string err =
          rec.type == JournalRecord::Type::kPoisoned ? rec.error : "";
      const SweepAssembler::Add added =
          assembler.add_record(rec.depth_index, rec.block_begin,
                               rec.block_end, rec.outcomes, rec.stats, err);
      if (added == SweepAssembler::Add::kDuplicate) ++duplicates;
      if (added == SweepAssembler::Add::kMisfit)
        std::fprintf(stderr,
                     "[qfab-fabric] shard %s: skipped a record that does "
                     "not fit the sweep grid\n",
                     name.c_str());
    }
  }
  if (duplicates > 0)
    std::fprintf(stderr,
                 "[qfab-fabric] merge deduplicated %zu record(s) "
                 "(reassigned or re-journaled units)\n",
                 duplicates);

  std::size_t retried = 0;
  for (const std::string& name : list_dir(shards_dir(options.dir))) {
    if (name.find(".report") == std::string::npos) continue;
    std::size_t units = 0, r = 0;
    int drained = 0;
    const std::string content =
        read_file(shards_dir(options.dir) + "/" + name);
    if (std::sscanf(content.c_str(), "units=%zu retried=%zu drained=%d",
                    &units, &r, &drained) >= 2)
      retried += r;
  }

  rep.drained = shutdown_requested();
  return assembler.finish(watch.seconds(), restored, retried);
}

FabricStatus inspect_fabric(const std::string& dir) {
  FabricStatus status;
  const std::string manifest = read_file(manifest_path(dir));
  status.manifest_ok = starts_with(manifest, "QFABFAB1");
  if (status.manifest_ok) {
    status.fingerprint = manifest_field(manifest, "fingerprint");
    status.n_units =
        static_cast<std::size_t>(manifest_field(manifest, "units"));
  }
  status.done_markers = list_dir(units_dir(dir)).size();
  for (const std::string& name : list_dir(leases_dir(dir))) {
    FabricLeaseStatus lease;
    lease.file = name;
    std::string content = read_file(leases_dir(dir) + "/" + name);
    while (!content.empty() && content.back() == '\n') content.pop_back();
    lease.content = content;
    status.leases.push_back(std::move(lease));
  }
  for (const std::string& name : list_dir(shards_dir(dir))) {
    if (name.find(".journal") == std::string::npos) continue;
    const JournalContents contents =
        read_journal(shards_dir(dir) + "/" + name);
    FabricShardStatus shard;
    shard.file = name;
    shard.header_ok = contents.header_ok;
    shard.fingerprint_ok =
        contents.header_ok && contents.fingerprint == status.fingerprint;
    shard.records = contents.records.size();
    shard.dropped_tail = contents.dropped_tail;
    shard.dropped_bytes = contents.dropped_bytes;
    shard.dropped_frames = contents.dropped_frames;
    shard.note = contents.note;
    status.shards.push_back(std::move(shard));
  }
  return status;
}

FabricRepair repair_fabric(const std::string& dir) {
  FabricRepair repair;
  for (const std::string& name : list_dir(shards_dir(dir))) {
    if (name.find(".journal") == std::string::npos) continue;
    const std::string path = shards_dir(dir) + "/" + name;
    const JournalContents contents = read_journal(path);
    if (!contents.header_ok || !contents.dropped_tail) continue;
    rewrite_journal(path, contents);
    ++repair.shards_rewritten;
    repair.dropped_records += contents.dropped_frames;
    repair.dropped_bytes += contents.dropped_bytes;
  }
  for (const std::string& name : list_dir(leases_dir(dir))) {
    if (::unlink((leases_dir(dir) + "/" + name).c_str()) == 0)
      ++repair.leases_cleared;
  }
  return repair;
}

}  // namespace qfab
