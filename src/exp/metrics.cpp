#include "exp/metrics.h"

#include <algorithm>
#include <cmath>

namespace qfab {

namespace {
void check_same_size(const std::vector<double>& p,
                     const std::vector<double>& q) {
  QFAB_CHECK_MSG(p.size() == q.size() && !p.empty(),
                 "metric requires equal-size distributions");
}
}  // namespace

double total_variation(const std::vector<double>& p,
                       const std::vector<double>& q) {
  check_same_size(p, q);
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) d += std::abs(p[i] - q[i]);
  return d / 2.0;
}

double hellinger_fidelity(const std::vector<double>& p,
                          const std::vector<double>& q) {
  check_same_size(p, q);
  double bc = 0.0;  // Bhattacharyya coefficient
  for (std::size_t i = 0; i < p.size(); ++i)
    bc += std::sqrt(std::max(0.0, p[i]) * std::max(0.0, q[i]));
  return bc * bc;
}

double kl_divergence(const std::vector<double>& p,
                     const std::vector<double>& q) {
  check_same_size(p, q);
  double d = 0.0;
  for (std::size_t i = 0; i < p.size(); ++i) {
    if (p[i] <= 0.0) continue;
    if (q[i] <= 0.0) return 1e12;
    d += p[i] * std::log(p[i] / q[i]);
  }
  return d;
}

double success_mass(const std::vector<double>& p,
                    const std::vector<u64>& correct_outputs) {
  QFAB_CHECK(std::is_sorted(correct_outputs.begin(), correct_outputs.end()));
  double mass = 0.0;
  for (u64 v : correct_outputs) {
    QFAB_CHECK(v < p.size());
    mass += p[v];
  }
  return mass;
}

std::vector<double> normalize_counts(
    const std::vector<std::uint64_t>& counts) {
  std::uint64_t total = 0;
  for (auto c : counts) total += c;
  QFAB_CHECK(total > 0);
  std::vector<double> out(counts.size());
  for (std::size_t i = 0; i < counts.size(); ++i)
    out[i] = static_cast<double>(counts[i]) / static_cast<double>(total);
  return out;
}

}  // namespace qfab
