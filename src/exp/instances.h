// Random operand-instance generation (paper Sec. IV: each point averages
// >= 200 instances over "a random, unique choice of qintegers"; superposed
// operands have evenly distributed amplitudes; each figure row reuses one
// operand set across both error-rate columns).
#pragma once

#include <vector>

#include "arith/qint.h"
#include "common/rng.h"

namespace qfab {

struct OperandOrders {
  int order_x = 1;  // number of superposed basis states in x
  int order_y = 1;  // ... in y (the updated register for addition)
};

struct ArithInstance {
  QInt x;
  QInt y;
};

/// Generate `count` instances with x on `bits_x` qubits and y on `bits_y`,
/// uniform amplitudes, supports sampled uniformly at random without
/// repetition of the full (x, y) pair across instances (falls back to
/// allowing repeats when the operand space is smaller than `count`).
std::vector<ArithInstance> generate_instances(int count, int bits_x,
                                              int bits_y,
                                              const OperandOrders& orders,
                                              Pcg64& rng);

}  // namespace qfab
