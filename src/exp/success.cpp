#include "exp/success.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"

namespace qfab {

InstanceOutcome evaluate_counts(const std::vector<std::uint64_t>& counts,
                                const std::vector<u64>& correct_outputs) {
  QFAB_CHECK(!correct_outputs.empty());
  QFAB_CHECK(std::is_sorted(correct_outputs.begin(), correct_outputs.end()));
  std::int64_t min_correct = -1;
  std::int64_t max_incorrect = 0;
  std::size_t ci = 0;
  for (std::size_t value = 0; value < counts.size(); ++value) {
    const auto c = static_cast<std::int64_t>(counts[value]);
    if (ci < correct_outputs.size() && correct_outputs[ci] == value) {
      min_correct = (min_correct < 0) ? c : std::min(min_correct, c);
      ++ci;
    } else {
      max_incorrect = std::max(max_incorrect, c);
    }
  }
  QFAB_CHECK_MSG(ci == correct_outputs.size(),
                 "correct output beyond count range");
  InstanceOutcome out;
  out.margin = min_correct - max_incorrect;
  out.success = out.margin >= 0;
  return out;
}

PointStats aggregate_outcomes(const std::vector<InstanceOutcome>& outcomes) {
  PointStats stats;
  stats.instances = static_cast<int>(outcomes.size());
  if (outcomes.empty()) return stats;

  double mean = 0.0;
  for (const InstanceOutcome& o : outcomes) {
    if (o.success) ++stats.successes;
    mean += static_cast<double>(o.margin);
  }
  mean /= static_cast<double>(outcomes.size());
  stats.success_rate =
      static_cast<double>(stats.successes) / static_cast<double>(outcomes.size());

  double var = 0.0;
  for (const InstanceOutcome& o : outcomes) {
    const double d = static_cast<double>(o.margin) - mean;
    var += d * d;
  }
  stats.sigma = std::sqrt(var / static_cast<double>(outcomes.size()));

  for (const InstanceOutcome& o : outcomes) {
    const auto m = static_cast<double>(o.margin);
    if (o.success && m < stats.sigma) ++stats.lower_flips;
    if (!o.success && m > -stats.sigma) ++stats.upper_flips;
  }
  return stats;
}

}  // namespace qfab
