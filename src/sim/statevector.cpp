#include "sim/statevector.h"

#include <algorithm>
#include <cmath>

namespace qfab {

namespace {
constexpr int kMaxQubits = 30;

cplx expi(double t) { return {std::cos(t), std::sin(t)}; }
}  // namespace

StateVector::StateVector(int num_qubits) : num_qubits_(num_qubits) {
  QFAB_CHECK_MSG(num_qubits >= 1 && num_qubits <= kMaxQubits,
                 "unsupported qubit count " << num_qubits);
  amps_.assign(pow2(num_qubits), cplx{0.0, 0.0});
  amps_[0] = 1.0;
}

StateVector StateVector::from_amplitudes(std::vector<cplx> amps) {
  const int n = ceil_log2(amps.size());
  QFAB_CHECK_MSG(!amps.empty() && pow2(n) == amps.size(),
                 "amplitude count must be a power of two");
  StateVector sv(n);
  sv.amps_ = std::move(amps);
  QFAB_CHECK_MSG(std::abs(sv.norm() - 1.0) < 1e-8, "state not normalized");
  return sv;
}

void StateVector::flush_pending_phase() const {
  if (pending_phase_ == 0.0) return;
  const cplx ph = expi(pending_phase_);
  for (cplx& a : amps_) a *= ph;
  pending_phase_ = 0.0;
}

void StateVector::reset() {
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[0] = 1.0;
  pending_phase_ = 0.0;
}

void StateVector::set_basis_state(u64 value) {
  QFAB_CHECK(value < dim());
  std::fill(amps_.begin(), amps_.end(), cplx{0.0, 0.0});
  amps_[value] = 1.0;
  pending_phase_ = 0.0;
}

void StateVector::set_amplitude(u64 index, cplx a) {
  QFAB_CHECK(index < dim());
  flush_pending_phase();
  amps_[index] = a;
}

cplx StateVector::amplitude(u64 index) const {
  QFAB_CHECK(index < dim());
  flush_pending_phase();
  return amps_[index];
}

const std::vector<cplx>& StateVector::amplitudes() const {
  flush_pending_phase();
  return amps_;
}

double StateVector::norm() const {
  double s = 0.0;
  for (const cplx& a : amps_) s += std::norm(a);
  return std::sqrt(s);
}

void StateVector::apply_matrix1(const cplx m[2][2], int q) {
  QFAB_CHECK(q >= 0 && q < num_qubits_);
  cplx* a = amps_.data();
  const u64 bit = u64{1} << q;
  const u64 n = dim();
  const cplx m00 = m[0][0], m01 = m[0][1], m10 = m[1][0], m11 = m[1][1];
  for (u64 base = 0; base < n; base += 2 * bit) {
    for (u64 off = 0; off < bit; ++off) {
      const u64 i0 = base + off;
      const u64 i1 = i0 | bit;
      const cplx v0 = a[i0], v1 = a[i1];
      a[i0] = m00 * v0 + m01 * v1;
      a[i1] = m10 * v0 + m11 * v1;
    }
  }
}

void StateVector::apply_phase_on_bit(int q, cplx phase) {
  cplx* a = amps_.data();
  const u64 bit = u64{1} << q;
  const u64 n = dim();
  for (u64 base = bit; base < n; base += 2 * bit)
    for (u64 off = 0; off < bit; ++off) a[base + off] *= phase;
}

void StateVector::apply_matrix2(const Matrix& u, int q0, int q1) {
  // Gate-local bit 0 = q0, bit 1 = q1.
  QFAB_CHECK(u.rows() == 4 && u.cols() == 4);
  const int lo = std::min(q0, q1), hi = std::max(q0, q1);
  cplx* a = amps_.data();
  const u64 quarter = dim() >> 2;
  for (u64 g = 0; g < quarter; ++g) {
    const u64 base = insert_two_zero_bits(g, lo, hi);
    u64 idx[4];
    for (int loc = 0; loc < 4; ++loc) {
      u64 i = base;
      if (loc & 1) i |= u64{1} << q0;
      if (loc & 2) i |= u64{1} << q1;
      idx[loc] = i;
    }
    cplx v[4] = {a[idx[0]], a[idx[1]], a[idx[2]], a[idx[3]]};
    for (int r = 0; r < 4; ++r) {
      cplx acc{0.0, 0.0};
      for (int c = 0; c < 4; ++c) acc += u.at(r, c) * v[c];
      a[idx[r]] = acc;
    }
  }
}

void StateVector::apply_pauli(Pauli p, int q) {
  QFAB_CHECK(q >= 0 && q < num_qubits_);
  cplx* a = amps_.data();
  const u64 bit = u64{1} << q;
  const u64 n = dim();
  switch (p) {
    case Pauli::kI:
      return;
    case Pauli::kX:
      for (u64 base = 0; base < n; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off)
          std::swap(a[base + off], a[base + off + bit]);
      return;
    case Pauli::kY:
      for (u64 base = 0; base < n; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i0 = base + off;
          const u64 i1 = i0 + bit;
          const cplx v0 = a[i0], v1 = a[i1];
          a[i0] = cplx{v1.imag(), -v1.real()};   // -i * v1
          a[i1] = cplx{-v0.imag(), v0.real()};   //  i * v0
        }
      return;
    case Pauli::kZ:
      apply_phase_on_bit(q, cplx{-1.0, 0.0});
      return;
  }
}

void StateVector::apply_gate(const Gate& g) {
  cplx* a = amps_.data();
  const u64 n = dim();
  switch (g.kind) {
    case GateKind::kId:
      return;
    case GateKind::kX:
      apply_pauli(Pauli::kX, g.qubits[0]);
      return;
    case GateKind::kY:
      apply_pauli(Pauli::kY, g.qubits[0]);
      return;
    case GateKind::kZ:
      apply_pauli(Pauli::kZ, g.qubits[0]);
      return;
    case GateKind::kRZ:
      // diag(e^{-iθ/2}, e^{iθ/2}) = e^{-iθ/2} diag(1, e^{iθ}): the scalar
      // goes to the pending phase, halving the touched amplitudes.
      pending_phase_ += -g.params[0] / 2;
      apply_phase_on_bit(g.qubits[0], expi(g.params[0]));
      return;
    case GateKind::kP:
      apply_phase_on_bit(g.qubits[0], expi(g.params[0]));
      return;
    case GateKind::kCX: {
      const u64 cbit = u64{1} << g.qubits[1];
      const u64 tbit = u64{1} << g.qubits[0];
      const int lo = std::min(g.qubits[0], g.qubits[1]);
      const int hi = std::max(g.qubits[0], g.qubits[1]);
      const u64 quarter = n >> 2;
      for (u64 gidx = 0; gidx < quarter; ++gidx) {
        const u64 i0 = insert_two_zero_bits(gidx, lo, hi) | cbit;
        std::swap(a[i0], a[i0 | tbit]);
      }
      return;
    }
    case GateKind::kCZ:
    case GateKind::kCP: {
      const cplx ph = g.kind == GateKind::kCZ ? cplx{-1.0, 0.0}
                                              : expi(g.params[0]);
      const int lo = std::min(g.qubits[0], g.qubits[1]);
      const int hi = std::max(g.qubits[0], g.qubits[1]);
      const u64 mask = (u64{1} << g.qubits[0]) | (u64{1} << g.qubits[1]);
      const u64 quarter = n >> 2;
      for (u64 gidx = 0; gidx < quarter; ++gidx)
        a[insert_two_zero_bits(gidx, lo, hi) | mask] *= ph;
      return;
    }
    case GateKind::kCCP: {
      const cplx ph = expi(g.params[0]);
      int qs[3] = {g.qubits[0], g.qubits[1], g.qubits[2]};
      std::sort(qs, qs + 3);
      const u64 mask = (u64{1} << qs[0]) | (u64{1} << qs[1]) |
                       (u64{1} << qs[2]);
      const u64 eighth = n >> 3;
      for (u64 gidx = 0; gidx < eighth; ++gidx) {
        const u64 i =
            insert_zero_bit(insert_two_zero_bits(gidx, qs[0], qs[1]), qs[2]);
        a[i | mask] *= ph;
      }
      return;
    }
    case GateKind::kSWAP: {
      const int lo = std::min(g.qubits[0], g.qubits[1]);
      const int hi = std::max(g.qubits[0], g.qubits[1]);
      const u64 lobit = u64{1} << lo, hibit = u64{1} << hi;
      const u64 quarter = n >> 2;
      for (u64 gidx = 0; gidx < quarter; ++gidx) {
        const u64 base = insert_two_zero_bits(gidx, lo, hi);
        std::swap(a[base | lobit], a[base | hibit]);
      }
      return;
    }
    case GateKind::kH:
    case GateKind::kSX:
    case GateKind::kSXdg:
    case GateKind::kRY:
    case GateKind::kRX:
    case GateKind::kU: {
      const Matrix m = g.matrix();
      const cplx m2[2][2] = {{m.at(0, 0), m.at(0, 1)},
                             {m.at(1, 0), m.at(1, 1)}};
      apply_matrix1(m2, g.qubits[0]);
      return;
    }
    case GateKind::kCH: {
      apply_matrix2(g.matrix(), g.qubits[0], g.qubits[1]);
      return;
    }
    case GateKind::kCCX: {
      const u64 cmask = (u64{1} << g.qubits[1]) | (u64{1} << g.qubits[2]);
      const u64 tbit = u64{1} << g.qubits[0];
      for (u64 i = 0; i < n; ++i)
        if ((i & cmask) == cmask && !(i & tbit)) std::swap(a[i], a[i | tbit]);
      return;
    }
  }
  QFAB_CHECK_MSG(false, "unhandled gate " << g.to_string());
}

void StateVector::apply_circuit(const QuantumCircuit& qc) {
  QFAB_CHECK(qc.num_qubits() == num_qubits_);
  for (const Gate& g : qc.gates()) apply_gate(g);
  apply_global_phase(qc.global_phase());
}

void StateVector::apply_circuit_range(const QuantumCircuit& qc,
                                      std::size_t begin, std::size_t end) {
  QFAB_CHECK(qc.num_qubits() == num_qubits_);
  QFAB_CHECK(begin <= end && end <= qc.gates().size());
  for (std::size_t i = begin; i < end; ++i) apply_gate(qc.gates()[i]);
}

void StateVector::apply_global_phase(double phase) {
  pending_phase_ += phase;
}

void StateVector::apply_matrix(const Matrix& u,
                               const std::vector<int>& targets) {
  const int k = ceil_log2(u.rows());
  QFAB_CHECK(pow2(k) == u.rows() && u.rows() == u.cols());
  QFAB_CHECK(static_cast<int>(targets.size()) == k);
  const u64 gd = u.rows();
  std::vector<cplx> scratch(gd);
  std::vector<u64> idx(gd);
  // Enumerate all assignments of the non-target bits.
  std::vector<int> sorted = targets;
  std::sort(sorted.begin(), sorted.end());
  const u64 outer = dim() >> k;
  for (u64 g = 0; g < outer; ++g) {
    u64 base = g;
    for (int b : sorted) base = insert_zero_bit(base, b);
    for (u64 loc = 0; loc < gd; ++loc) {
      u64 i = base;
      for (int b = 0; b < k; ++b)
        if (loc & (u64{1} << b)) i |= u64{1} << targets[b];
      idx[loc] = i;
      scratch[loc] = amps_[i];
    }
    for (u64 r = 0; r < gd; ++r) {
      cplx acc{0.0, 0.0};
      for (u64 c = 0; c < gd; ++c) acc += u.at(r, c) * scratch[c];
      amps_[idx[r]] = acc;
    }
  }
}

std::vector<double> StateVector::probabilities() const {
  std::vector<double> p(amps_.size());
  for (std::size_t i = 0; i < amps_.size(); ++i) p[i] = std::norm(amps_[i]);
  return p;
}

std::vector<double> StateVector::marginal_probabilities(
    const std::vector<int>& qubits) const {
  std::vector<double> out;
  marginal_probabilities(qubits, out);
  return out;
}

void StateVector::marginal_probabilities(const std::vector<int>& qubits,
                                         std::vector<double>& out) const {
  QFAB_CHECK(!qubits.empty() &&
             qubits.size() <= static_cast<std::size_t>(num_qubits_));
  for (int q : qubits) QFAB_CHECK(q >= 0 && q < num_qubits_);
  out.assign(pow2(static_cast<int>(qubits.size())), 0.0);
  const u64 n = dim();
  // Contiguous ascending ranges (the experiment's output registers) need no
  // per-amplitude bit gather: the key is one shift and mask.
  bool contiguous = true;
  for (std::size_t b = 0; b < qubits.size(); ++b)
    if (qubits[b] != qubits[0] + static_cast<int>(b)) {
      contiguous = false;
      break;
    }
  if (contiguous) {
    const int shift = qubits[0];
    const u64 mask = static_cast<u64>(out.size()) - 1;
    for (u64 i = 0; i < n; ++i) out[(i >> shift) & mask] += std::norm(amps_[i]);
    return;
  }
  for (u64 i = 0; i < n; ++i) {
    const double pr = std::norm(amps_[i]);
    if (pr == 0.0) continue;
    u64 key = 0;
    for (std::size_t b = 0; b < qubits.size(); ++b)
      key |= static_cast<u64>(get_bit(i, qubits[b])) << b;
    out[key] += pr;
  }
}

u64 StateVector::sample(Pcg64& rng) const {
  return CdfSampler(probabilities()).draw(rng);
}

std::vector<std::uint64_t> StateVector::sample_counts(
    const std::vector<int>& qubits, std::uint64_t shots, Pcg64& rng) const {
  // One cumulative table, then O(log n) per shot (shots is typically 2048
  // against a 2^|qubits| table).
  const CdfSampler sampler(marginal_probabilities(qubits));
  std::vector<std::uint64_t> counts(sampler.size(), 0);
  for (std::uint64_t s = 0; s < shots; ++s) ++counts[sampler.draw(rng)];
  return counts;
}

}  // namespace qfab
