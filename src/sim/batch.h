// Batched SIMD state-vector engine.
//
// Every data point of the paper's sweeps replays the *same* fused execution
// plan over hundreds of operand instances and many noise trajectories; only
// the initial states and the Pauli injection sites differ. The single-state
// path walks each 2^n vector alone, so vector units run half-empty and
// every op's decode (matrix loads, phase-table key gathers) is repaid per
// state. BatchedStateVectorT<Real> runs B such states ("lanes") through one
// plan pass in a structure-of-arrays layout:
//
//     re[amp * B + lane],  im[amp * B + lane]
//
// — amplitude-major, lane-minor, split real/imaginary planes — so every
// kernel's inner loop is a unit-stride stream of B reals: the shape that
// autovectorizes to full-width FMAs with no shuffles, and that amortizes
// per-amplitude op decode (diagonal key gathers, matrix broadcast) across
// all lanes.
//
// Precision tiers: the engine is templated on the amplitude scalar `Real`.
//   BatchedStateVector  (double)  — the bitwise reference tier; matches the
//                                   scalar StateVector path to rounding.
//   BatchedStateVectorF (float)   — half the working set, twice the lanes
//                                   per vector register; used by the noise
//                                   trajectory estimators when the precision
//                                   policy (exp/experiment.h) decides the
//                                   replay drift budget allows it. Gate
//                                   matrices, phase tables and marginal
//                                   accumulators stay double; only the
//                                   amplitude planes are narrowed.
//
// Kernels are compiled per (ISA, precision): a portable scalar build, an
// AVX2+FMA build, and an AVX-512 build ("target" function attributes), each
// instantiated for double and float. One table per precision is selected at
// startup by CPUID (overridable via the QFAB_SIMD environment variable or
// set_simd_mode(); the QFAB_SIMD CMake option pins the choice at build
// time). The scalar table is the reference fallback CI runs under
// sanitizers.
//
// Lane divergence: shared plan segments execute batched; per-lane Pauli
// injections (apply_pauli with a lane index) land at their exact gate sites
// between apply_plan_range calls, exactly mirroring the scalar trajectory
// split-point protocol, then batched execution resumes. See
// noise/trajectory.h for the batched trajectory driver built on top.
//
// Cache blocking: the fused-op apply loop executes runs of tile-eligible
// ops as full-width amp-tile blocks whose height shrinks with lanes ×
// sizeof(Real) so a tile is always L1-sized; wide ops stream plain
// full-width passes (see apply_ops_batched in batch.cpp — lane-subset
// passes measured slower, since the interleaved layout makes them
// strided). Diagonal ops are tile-eligible at any qubit span because
// their phase-key gather needs only the global row index, which the tile
// walk supplies.
#pragma once

#include <cstddef>
#include <vector>

#include "sim/fusion.h"
#include "sim/statevector.h"

namespace qfab {

/// Which kernel table executes batched ops.
enum class SimdMode {
  kAuto,    // detect at startup: widest tier the CPU supports
  kAvx512,  // force the AVX-512 table (falls back if unavailable)
  kAvx2,    // force the AVX2+FMA table (falls back if unavailable)
  kScalar,  // force the portable table
};

/// The resolved mode (never kAuto): what batched kernels actually run.
/// Resolution order: set_simd_mode() override, else the QFAB_SIMD
/// environment variable ("auto" | "avx512" | "avx2" | "scalar"), else the
/// build's QFAB_SIMD CMake default, else CPUID.
SimdMode simd_mode();

/// Override the dispatch (tests and benches; kAuto restores detection).
/// Affects every precision's table.
void set_simd_mode(SimdMode mode);

/// "avx512", "avx2" or "scalar" for the resolved mode.
const char* simd_mode_name();

/// Amplitude precision for batched trajectory replay (see the precision
/// policy in exp/experiment.h; kAuto resolves per run against a drift
/// budget).
enum class Precision {
  kDouble,   // bitwise reference tier
  kFloat32,  // narrow tier: half the bytes, twice the SIMD lanes
  kAuto,     // policy decides per (n, depth, rate); falls back on drift
};

/// "double", "float32" or "auto".
const char* precision_name(Precision p);

namespace detail {
/// Fault-injection hook for the differential verifier's self-test ONLY
/// (tools/qfab_verify --inject-kernel-bug): when enabled, the batched
/// kMatrix1 dispatch flips the sign of one matrix entry, emulating a
/// batched-kernel regression that the verify harness must catch and shrink
/// to a repro. Applies to every (ISA, precision) kernel tier. Never enable
/// outside tests.
void set_batch_fault_injection(bool on);
bool batch_fault_injection();
}  // namespace detail

/// B state vectors advanced in lockstep through shared plan segments.
/// `Real` is the amplitude scalar (double or float); the double
/// instantiation is bitwise-stable against the scalar StateVector path,
/// the float instantiation carries a bounded replay drift (see DESIGN.md
/// §11).
template <typename Real>
class BatchedStateVectorT {
 public:
  /// Lanes start as |0...0>. 1 <= lanes <= kMaxLanes; ragged final batches
  /// of a sweep simply construct with fewer lanes.
  BatchedStateVectorT(int num_qubits, int lanes);

  static constexpr int kMaxLanes = 64;

  int num_qubits() const { return num_qubits_; }
  int lanes() const { return lanes_; }
  u64 dim() const { return pow2(num_qubits_); }

  /// Re-dimension to (num_qubits, lanes) reusing the existing heap
  /// storage; lane contents are unspecified until set via broadcast /
  /// set_lane / assign_permuted. This is the trajectory estimators'
  /// per-group workspace path: one BatchedStateVectorT per thread instead
  /// of one allocation per replay group.
  void reset(int num_qubits, int lanes);

  /// Copy a state into one lane (pending phase folded in; amplitudes
  /// rounded to Real).
  void set_lane(int lane, const StateVector& sv);
  /// Copy one state into every lane (trajectory batches of one instance).
  void broadcast(const StateVector& sv);
  /// Extract one lane as a StateVector (lane pending phase folded in).
  StateVector lane_state(int lane) const;
  /// Reload this vector from `src` with lanes permuted: lane j becomes
  /// src lane lane_map[j] (repeats allowed, so several trajectories of one
  /// member can occupy their own lanes). Reuses this vector's storage —
  /// the allocation-free way to seed a trajectory group from a batched
  /// checkpoint. `src` may be of a different precision (the float replay
  /// tier seeds from double checkpoints; amplitudes are rounded once here).
  template <typename SrcReal>
  void assign_permuted(const BatchedStateVectorT<SrcReal>& src,
                       const std::vector<int>& lane_map);

  /// Per-lane divergence: apply a Pauli to one lane only (noise injection
  /// between batched segments).
  void apply_pauli(int lane, Pauli p, int q);
  /// Accumulate a global phase on every lane (lazy, like StateVector).
  void apply_global_phase(double phase);
  /// ... or on one lane.
  void apply_lane_global_phase(int lane, double phase);

  /// One lane's accumulated pending global phase (radians). The raw
  /// planes represent the lane state up to this factor: two replays that
  /// route scalar phase work differently (fused table vs pending) hold
  /// bitwise-different planes for the same state, so plane-level
  /// comparisons must fold this in (lane_state already does).
  double lane_pending_phase(int lane) const {
    return pending_[static_cast<std::size_t>(lane)];
  }

  /// |amp|^2 of one lane (phase-free; pending phase is irrelevant).
  /// Accumulation is always double, whatever Real is.
  std::vector<double> lane_probabilities(int lane) const;
  /// Marginal distribution of `qubits` for one lane (see
  /// StateVector::marginal_probabilities).
  std::vector<double> lane_marginal_probabilities(
      int lane, const std::vector<int>& qubits) const;
  /// Marginal distribution of `qubits` for every lane in one pass over the
  /// planes (one key decode per amplitude row, unit-stride accumulation
  /// across lanes). Per lane, the sums are bitwise equal to
  /// lane_marginal_probabilities.
  std::vector<std::vector<double>> all_lane_marginal_probabilities(
      const std::vector<int>& qubits) const;
  /// Allocation-reusing form: `out` is resized to lanes() (inner vectors
  /// reuse capacity) and `scratch` holds the lane-minor accumulation
  /// plane between calls. Identical sums to the allocating overload.
  void all_lane_marginal_probabilities(const std::vector<int>& qubits,
                                       std::vector<std::vector<double>>& out,
                                       std::vector<double>& scratch) const;
  double lane_norm(int lane) const;

  /// Raw planes for the batched kernels (amp-major, lane-minor).
  Real* re() { return re_.data(); }
  Real* im() { return im_.data(); }
  const Real* re() const { return re_.data(); }
  const Real* im() const { return im_.data(); }

 private:
  template <typename OtherReal>
  friend class BatchedStateVectorT;

  int num_qubits_ = 0;
  int lanes_ = 1;
  std::vector<Real> re_, im_;
  std::vector<double> pending_;  // per-lane lazy global phase (radians)
};

/// The bitwise-reference double tier (the pre-existing engine name; all
/// exact-path consumers use this alias).
using BatchedStateVector = BatchedStateVectorT<double>;
/// The narrow trajectory-replay tier.
using BatchedStateVectorF = BatchedStateVectorT<float>;

extern template class BatchedStateVectorT<double>;
extern template class BatchedStateVectorT<float>;

/// Apply the full plan to every lane, including the circuit's global phase
/// (mirrors FusedPlan::apply).
template <typename Real>
void apply_plan(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv);

/// Apply original gates [gate_begin, gate_end) to every lane; global phase
/// NOT applied (mirrors FusedPlan::apply_range). Boundaries may fall inside
/// fused ops — partially covered gates run on batched per-gate kernels — so
/// per-lane noise injection can split anywhere.
template <typename Real>
void apply_plan_range(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
                      std::size_t gate_begin, std::size_t gate_end);

extern template void apply_plan<double>(const FusedPlan&, BatchedStateVector&);
extern template void apply_plan<float>(const FusedPlan&, BatchedStateVectorF&);
extern template void apply_plan_range<double>(const FusedPlan&,
                                              BatchedStateVector&, std::size_t,
                                              std::size_t);
extern template void apply_plan_range<float>(const FusedPlan&,
                                             BatchedStateVectorF&, std::size_t,
                                             std::size_t);

/// Rows-per-tile exponent of the lane-aware cache blocking at `lanes`
/// lanes of `real_size`-byte amplitudes: 2^result rows × lanes × 2 planes
/// matches the scalar path's 2^tile_bits-amplitude L1 budget, clamped to
/// [4, num_qubits]. Shared by apply_ops_batched and apply_batch_walk so
/// walk-step eligibility agrees with the plan apply loop.
int batched_tile_rows_log2(const FusionOptions& options, int lanes,
                           int num_qubits, std::size_t real_size);

/// One step of a fused trajectory walk (see apply_batch_walk): either a
/// fused op of some plan — the trajectory's root plan or one of its cached
/// subrange plans — applied to a contiguous lane span, or a single-lane
/// Pauli injection. Op steps keep `plan` non-null; the plan must outlive
/// the walk (subrange plans are owned by their root plan's cache, so
/// holding the root alive suffices).
///
/// The lane span is how the walk prices per-lane schedule divergence: in
/// the amp-major lane-minor layout, "lanes [b, b+c) of every row" is just
/// the kernel's unit-stride inner loop shortened to c entries at column
/// offset b, so an op-interior split needed by ONE lane costs 1/L of a
/// pass (its slices run with c = 1) while the uninvolved lanes take the
/// fused op in bystander spans. lane_count = -1 means every lane.
struct BatchWalkStep {
  const FusedPlan* plan = nullptr;  // null = Pauli step
  std::size_t op = 0;               // op index within *plan
  int lane = -1;                    // Pauli steps only
  Pauli pauli = Pauli::kI;
  int qubit = -1;
  int lane_begin = 0;               // op steps: first lane of the span
  int lane_count = -1;              // op steps: span width (-1 = all lanes)

  static BatchWalkStep op_step(const FusedPlan* plan, std::size_t op) {
    BatchWalkStep s;
    s.plan = plan;
    s.op = op;
    return s;
  }
  static BatchWalkStep op_span_step(const FusedPlan* plan, std::size_t op,
                                    int lane_begin, int lane_count) {
    BatchWalkStep s;
    s.plan = plan;
    s.op = op;
    s.lane_begin = lane_begin;
    s.lane_count = lane_count;
    return s;
  }
  static BatchWalkStep pauli_step(int lane, Pauli pauli, int qubit) {
    BatchWalkStep s;
    s.lane = lane;
    s.pauli = pauli;
    s.qubit = qubit;
    return s;
  }
};

/// Execute a fused trajectory walk: maximal runs of steps whose high
/// coupling bits fit the XOR-group cap load each L1-sized amplitude tile
/// (plus its coupled sibling tiles) once and apply the whole interleaved
/// sequence — op spans and lane Paulis alike — to it before the next
/// group streams in, so a replay's memory traffic no longer multiplies
/// with the number of injection sites. High-qubit ops run through the
/// group kernel variants, which address partner rows absolutely in the
/// co-resident siblings instead of forcing a full-width pass.
///
/// Within one lane, per-amplitude arithmetic, kernel selection, and
/// pending-phase accumulation order are exactly those of the step
/// sequence scoped to that lane's spans — a lane's amplitudes never
/// depend on which other lanes share the batch (the walk's determinism
/// contract; see run_trajectories_batched for the per-lane schedule it
/// builds on top). `plan` supplies the tiling options and qubit count;
/// op steps may reference it or any plan compiled with the same options.
/// Global phase is NOT applied (mirrors apply_plan_range).
template <typename Real>
void apply_batch_walk(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
                      const BatchWalkStep* steps, std::size_t count);

extern template void apply_batch_walk<double>(const FusedPlan&,
                                              BatchedStateVector&,
                                              const BatchWalkStep*,
                                              std::size_t);
extern template void apply_batch_walk<float>(const FusedPlan&,
                                             BatchedStateVectorF&,
                                             const BatchWalkStep*,
                                             std::size_t);

}  // namespace qfab
