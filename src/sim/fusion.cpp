#include "sim/fusion.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <limits>
#include <mutex>
#include <shared_mutex>
#include <unordered_map>

#include "common/fault.h"

namespace qfab {

namespace {

cplx expi(double t) { return {std::cos(t), std::sin(t)}; }

int index_of(const std::vector<int>& v, int q) {
  for (std::size_t i = 0; i < v.size(); ++i)
    if (v[i] == q) return static_cast<int>(i);
  return -1;
}

/// Row-major flattening of a square Matrix.
std::vector<cplx> to_flat(const Matrix& m) {
  std::vector<cplx> out(m.rows() * m.cols());
  for (std::size_t r = 0; r < m.rows(); ++r)
    for (std::size_t c = 0; c < m.cols(); ++c) out[r * m.cols() + c] = m.at(r, c);
  return out;
}

/// Row-major product a*b of two d x d flats (b applied first).
std::vector<cplx> matmul_flat(const std::vector<cplx>& a,
                              const std::vector<cplx>& b, std::size_t d) {
  std::vector<cplx> out(d * d, cplx{0.0, 0.0});
  for (std::size_t r = 0; r < d; ++r)
    for (std::size_t k = 0; k < d; ++k) {
      const cplx ark = a[r * d + k];
      for (std::size_t c = 0; c < d; ++c) out[r * d + c] += ark * b[k * d + c];
    }
  return out;
}

/// Diagonal entries of a diagonal gate over its local bits.
std::vector<cplx> gate_diagonal(const Gate& g) {
  const Matrix m = g.matrix();
  std::vector<cplx> d(m.rows());
  for (std::size_t i = 0; i < m.rows(); ++i) d[i] = m.at(i, i);
  return d;
}

int gate_max_qubit(const Gate& g) {
  int mx = -1;
  for (int b = 0; b < g.arity(); ++b) mx = std::max(mx, g.qubits[b]);
  return mx;
}

// ---------------------------------------------------------------------------
// Chunk kernels. Every kernel operates on a contiguous power-of-two slice
// `a[0, len)` whose base index is tile-aligned, so a qubit q with
// 2^q < len addresses bits of the in-chunk offset directly. The full
// vector is just the largest chunk.
// ---------------------------------------------------------------------------

void k_matrix1(cplx* a, u64 len, int q, const cplx* m) {
  const u64 bit = u64{1} << q;
  const cplx m00 = m[0], m01 = m[1], m10 = m[2], m11 = m[3];
  for (u64 base = 0; base < len; base += 2 * bit)
    for (u64 off = 0; off < bit; ++off) {
      const u64 i0 = base + off;
      const u64 i1 = i0 | bit;
      const cplx v0 = a[i0], v1 = a[i1];
      a[i0] = m00 * v0 + m01 * v1;
      a[i1] = m10 * v0 + m11 * v1;
    }
}

void k_matrix2(cplx* a, u64 len, int q0, int q1, const cplx* m) {
  const int lo = std::min(q0, q1), hi = std::max(q0, q1);
  const u64 b0 = u64{1} << q0, b1 = u64{1} << q1;
  const u64 quarter = len >> 2;
  for (u64 g = 0; g < quarter; ++g) {
    const u64 base = insert_two_zero_bits(g, lo, hi);
    const u64 i0 = base, i1 = base | b0, i2 = base | b1, i3 = base | b0 | b1;
    const cplx v0 = a[i0], v1 = a[i1], v2 = a[i2], v3 = a[i3];
    a[i0] = m[0] * v0 + m[1] * v1 + m[2] * v2 + m[3] * v3;
    a[i1] = m[4] * v0 + m[5] * v1 + m[6] * v2 + m[7] * v3;
    a[i2] = m[8] * v0 + m[9] * v1 + m[10] * v2 + m[11] * v3;
    a[i3] = m[12] * v0 + m[13] * v1 + m[14] * v2 + m[15] * v3;
  }
}

void k_phase_on_bit(cplx* a, u64 len, int q, cplx phase) {
  const u64 bit = u64{1} << q;
  for (u64 base = bit; base < len; base += 2 * bit)
    for (u64 off = 0; off < bit; ++off) a[base + off] *= phase;
}

void k_diag1(cplx* a, u64 len, int q, const cplx* table) {
  // Strided two-phase pass — no gather needed.
  const u64 bit = u64{1} << q;
  const cplx p0 = table[0], p1 = table[1];
  for (u64 base = 0; base < len; base += 2 * bit)
    for (u64 off = 0; off < bit; ++off) {
      a[base + off] *= p0;
      a[base + off + bit] *= p1;
    }
}

void k_diag(cplx* a, u64 len, const FusedOp::DiagShift* ss, int ns,
            const cplx* table) {
  if (ns == 1) {
    // One contiguous qubit run: key = (i >> shift) & mask.
    const int sh = ss[0].shift;
    const u64 m = ss[0].mask;
    for (u64 i = 0; i < len; ++i) a[i] *= table[(i >> sh) & m];
    return;
  }
  if (ns == 2) {
    const int sh0 = ss[0].shift, sh1 = ss[1].shift, out1 = ss[1].out;
    const u64 m0 = ss[0].mask, m1 = ss[1].mask;
    for (u64 i = 0; i < len; ++i)
      a[i] *= table[((i >> sh0) & m0) | (((i >> sh1) & m1) << out1)];
    return;
  }
  for (u64 i = 0; i < len; ++i) {
    u64 key = 0;
    for (int s = 0; s < ns; ++s)
      key |= ((i >> ss[s].shift) & ss[s].mask) << ss[s].out;
    a[i] *= table[key];
  }
}

/// Per-gate chunk kernel mirroring StateVector::apply_gate, with one
/// deliberate difference: RZ applies only diag(1, e^{i.theta}) — the
/// e^{-i.theta/2} scalar is accumulated by the *caller* into the state's
/// pending global phase, once per gate (not once per tile).
void k_gate(cplx* a, u64 len, const Gate& g) {
  switch (g.kind) {
    case GateKind::kId:
      return;
    case GateKind::kX: {
      const u64 bit = u64{1} << g.qubits[0];
      for (u64 base = 0; base < len; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off)
          std::swap(a[base + off], a[base + off + bit]);
      return;
    }
    case GateKind::kY: {
      const u64 bit = u64{1} << g.qubits[0];
      for (u64 base = 0; base < len; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i0 = base + off;
          const u64 i1 = i0 + bit;
          const cplx v0 = a[i0], v1 = a[i1];
          a[i0] = cplx{v1.imag(), -v1.real()};  // -i * v1
          a[i1] = cplx{-v0.imag(), v0.real()};  //  i * v0
        }
      return;
    }
    case GateKind::kZ:
      k_phase_on_bit(a, len, g.qubits[0], cplx{-1.0, 0.0});
      return;
    case GateKind::kRZ:
      k_phase_on_bit(a, len, g.qubits[0], expi(g.params[0]));
      return;
    case GateKind::kP:
      k_phase_on_bit(a, len, g.qubits[0], expi(g.params[0]));
      return;
    case GateKind::kCX: {
      const u64 cbit = u64{1} << g.qubits[1];
      const u64 tbit = u64{1} << g.qubits[0];
      const int lo = std::min(g.qubits[0], g.qubits[1]);
      const int hi = std::max(g.qubits[0], g.qubits[1]);
      const u64 quarter = len >> 2;
      for (u64 gi = 0; gi < quarter; ++gi) {
        const u64 i0 = insert_two_zero_bits(gi, lo, hi) | cbit;
        std::swap(a[i0], a[i0 | tbit]);
      }
      return;
    }
    case GateKind::kCZ:
    case GateKind::kCP: {
      const cplx ph =
          g.kind == GateKind::kCZ ? cplx{-1.0, 0.0} : expi(g.params[0]);
      const int lo = std::min(g.qubits[0], g.qubits[1]);
      const int hi = std::max(g.qubits[0], g.qubits[1]);
      const u64 mask = (u64{1} << g.qubits[0]) | (u64{1} << g.qubits[1]);
      const u64 quarter = len >> 2;
      for (u64 gi = 0; gi < quarter; ++gi)
        a[insert_two_zero_bits(gi, lo, hi) | mask] *= ph;
      return;
    }
    case GateKind::kCCP: {
      const cplx ph = expi(g.params[0]);
      int qs[3] = {g.qubits[0], g.qubits[1], g.qubits[2]};
      std::sort(qs, qs + 3);
      const u64 mask =
          (u64{1} << qs[0]) | (u64{1} << qs[1]) | (u64{1} << qs[2]);
      const u64 eighth = len >> 3;
      for (u64 gi = 0; gi < eighth; ++gi) {
        const u64 i =
            insert_zero_bit(insert_two_zero_bits(gi, qs[0], qs[1]), qs[2]);
        a[i | mask] *= ph;
      }
      return;
    }
    case GateKind::kSWAP: {
      const int lo = std::min(g.qubits[0], g.qubits[1]);
      const int hi = std::max(g.qubits[0], g.qubits[1]);
      const u64 lobit = u64{1} << lo, hibit = u64{1} << hi;
      const u64 quarter = len >> 2;
      for (u64 gi = 0; gi < quarter; ++gi) {
        const u64 base = insert_two_zero_bits(gi, lo, hi);
        std::swap(a[base | lobit], a[base | hibit]);
      }
      return;
    }
    case GateKind::kCCX: {
      const u64 cmask = (u64{1} << g.qubits[1]) | (u64{1} << g.qubits[2]);
      const u64 tbit = u64{1} << g.qubits[0];
      for (u64 i = 0; i < len; ++i)
        if ((i & cmask) == cmask && !(i & tbit)) std::swap(a[i], a[i | tbit]);
      return;
    }
    case GateKind::kH:
    case GateKind::kSX:
    case GateKind::kSXdg:
    case GateKind::kRY:
    case GateKind::kRX:
    case GateKind::kU: {
      const std::vector<cplx> m = to_flat(g.matrix());
      k_matrix1(a, len, g.qubits[0], m.data());
      return;
    }
    case GateKind::kCH: {
      const std::vector<cplx> m = to_flat(g.matrix());
      k_matrix2(a, len, g.qubits[0], g.qubits[1], m.data());
      return;
    }
  }
  QFAB_CHECK_MSG(false, "unhandled gate " << g.to_string());
}

// ---------------------------------------------------------------------------
// Compilation.
//
// Gates are converted 1:1 into ops, then rewritten to a fixpoint by three
// passes:
//  * merge:    cost-gated pairwise fusion of adjacent ops (the gate only
//              accepts merges whose fused kernel is no more expensive than
//              running the two ops separately — a dense 4x4 must not
//              swallow a cheap CX quarter-swap and an RZ half-pass),
//  * sandwich: detects runs on one qubit pair whose 4x4 product is
//              *exactly* diagonal (CX·D·CX conjugation yields structural
//              zeros, so each transpiled CP block collapses) and replaces
//              them with a phase-table op — the one rewrite that has to
//              pass through an intermediate more-expensive form,
//  * simplify: converts dense ops with exactly zero off-diagonals to
//              kDiagonal, drops diagonal qubits the table does not depend
//              on, and reduces constant tables to scalar (k = 0) ops that
//              execute as pending global phase.
// All rewrites are exact: off-diagonals are dropped only when they are
// IEEE zeros (products of permutation and diagonal factors), so fused
// execution stays bit-compatible with the reference path.
// ---------------------------------------------------------------------------

/// Relative kernel cost per amplitude of a fused op of the given kind
/// (`diag_k` = table qubits, ignored for dense kinds).
double kind_cost(FusedOp::Kind kind, std::size_t diag_k) {
  switch (kind) {
    case FusedOp::Kind::kDiagonal:
      if (diag_k == 0) return 0.05;  // executes as pending global phase
      if (diag_k == 1) return 0.7;
      return 1.0 + 0.1 * static_cast<double>(diag_k);
    case FusedOp::Kind::kMatrix1:
      return 2.0;
    case FusedOp::Kind::kMatrix2:
      return 4.0;
    case FusedOp::Kind::kGate:
      return 1.0;  // CCX is the only multi-gate-incapable passthrough
  }
  return 1.0;
}

/// Relative kernel cost per amplitude of an op, used to gate merges.
/// Single-gate ops are priced at their demoted per-gate kernel (a lone CX
/// is a quarter-swap, not a dense 4x4).
double op_cost(const FusedOp& op, const std::vector<Gate>& gates) {
  if (op.gate_count() == 1) {
    switch (gates[op.gate_begin].kind) {
      case GateKind::kId:
        return 0.0;
      case GateKind::kH:
      case GateKind::kSX:
      case GateKind::kSXdg:
      case GateKind::kRY:
      case GateKind::kRX:
      case GateKind::kU:
        return 2.0;  // dense 2x2
      case GateKind::kCH:
        return 4.0;  // dense 4x4
      case GateKind::kCCX:
        return 1.0;
      default:
        return 0.6;  // swap / phase strided kernels
    }
  }
  return kind_cost(op.kind, op.qubits.size());
}

/// The qubits an op acts on (empty for scalar diagonals).
std::vector<int> op_qubits(const FusedOp& op) {
  switch (op.kind) {
    case FusedOp::Kind::kMatrix1:
      return {op.q0};
    case FusedOp::Kind::kMatrix2:
      return {op.q0, op.q1};
    case FusedOp::Kind::kDiagonal:
      return op.qubits;
    case FusedOp::Kind::kGate:
      return {};  // treated as unmergeable by callers
  }
  return {};
}

/// Extend a diagonal table from `qubits` to the sorted superset
/// `new_qubits`.
void extend_diagonal(std::vector<int>& qubits, std::vector<cplx>& phases,
                     const std::vector<int>& new_qubits) {
  if (qubits == new_qubits) return;
  std::vector<int> oldpos(qubits.size());
  for (std::size_t b = 0; b < qubits.size(); ++b)
    oldpos[b] = index_of(new_qubits, qubits[b]);
  std::vector<cplx> np(pow2(static_cast<int>(new_qubits.size())));
  for (u64 key = 0; key < np.size(); ++key) {
    u64 okey = 0;
    for (std::size_t b = 0; b < oldpos.size(); ++b)
      okey |= ((key >> oldpos[b]) & u64{1}) << b;
    np[key] = phases[okey];
  }
  qubits = new_qubits;
  phases = std::move(np);
}

/// Sorted union of two qubit lists.
std::vector<int> qubit_union(const std::vector<int>& a,
                             const std::vector<int>& b) {
  std::vector<int> u = a;
  for (int q : b)
    if (index_of(u, q) < 0)
      u.insert(std::upper_bound(u.begin(), u.end(), q), q);
  return u;
}

/// An op's dense matrix in the local basis where bit b is global qubit
/// `qs[b]`. Requires op_qubits(op) to be a subset of `qs`.
std::vector<cplx> op_matrix_on(const FusedOp& op, const std::vector<int>& qs) {
  const int k = static_cast<int>(qs.size());
  const std::size_t d = pow2(k);
  switch (op.kind) {
    case FusedOp::Kind::kMatrix1:
      return to_flat(embed_gate(Matrix{{op.m[0], op.m[1]}, {op.m[2], op.m[3]}},
                                {index_of(qs, op.q0)}, k));
    case FusedOp::Kind::kMatrix2: {
      Matrix m(4, 4);
      for (std::size_t r = 0; r < 4; ++r)
        for (std::size_t c = 0; c < 4; ++c) m.at(r, c) = op.m[r * 4 + c];
      return to_flat(
          embed_gate(m, {index_of(qs, op.q0), index_of(qs, op.q1)}, k));
    }
    case FusedOp::Kind::kDiagonal: {
      std::vector<cplx> m(d * d, cplx{0.0, 0.0});
      std::vector<int> pos(op.qubits.size());
      for (std::size_t b = 0; b < op.qubits.size(); ++b)
        pos[b] = index_of(qs, op.qubits[b]);
      for (u64 key = 0; key < d; ++key) {
        u64 dk = 0;
        for (std::size_t b = 0; b < pos.size(); ++b)
          dk |= ((key >> pos[b]) & u64{1}) << b;
        m[key * d + key] = op.phases[dk];
      }
      return m;
    }
    case FusedOp::Kind::kGate:
      break;
  }
  QFAB_CHECK_MSG(false, "op has no dense form");
  return {};
}

bool exactly_diagonal(const std::vector<cplx>& m, std::size_t d) {
  for (std::size_t r = 0; r < d; ++r)
    for (std::size_t c = 0; c < d; ++c)
      if (r != c && !(m[r * d + c] == cplx{0.0, 0.0})) return false;
  return true;
}

/// Convert a dense op with exactly zero off-diagonals to kDiagonal.
void dense_to_diagonal(FusedOp& op) {
  if (op.kind == FusedOp::Kind::kMatrix1) {
    op.kind = FusedOp::Kind::kDiagonal;
    op.qubits = {op.q0};
    op.phases = {op.m[0], op.m[3]};
  } else {
    QFAB_CHECK(op.kind == FusedOp::Kind::kMatrix2);
    const int lo = std::min(op.q0, op.q1), hi = std::max(op.q0, op.q1);
    op.kind = FusedOp::Kind::kDiagonal;
    op.qubits = {lo, hi};
    op.phases.assign(4, cplx{0.0, 0.0});
    for (u64 d = 0; d < 4; ++d) {
      // Local key d has bit 0 = q0; map to sorted (lo, hi) order.
      const u64 key = op.q0 == lo ? d : ((d >> 1) | ((d & 1) << 1));
      op.phases[key] = op.m[d * 4 + d];
    }
  }
  op.q0 = op.q1 = -1;
  op.m.clear();
}

/// Drop diagonal qubits the table does not depend on (exact equality) and
/// collapse all-constant tables to scalar (k = 0) ops.
bool reduce_diagonal(FusedOp& op) {
  bool changed = false;
  for (std::size_t b = 0; b < op.qubits.size();) {
    const u64 bit = u64{1} << b;
    bool relevant = false;
    for (u64 key = 0; key < op.phases.size() && !relevant; ++key)
      if (!(key & bit) && !(op.phases[key] == op.phases[key | bit]))
        relevant = true;
    if (relevant) {
      ++b;
      continue;
    }
    std::vector<cplx> np(op.phases.size() / 2);
    for (u64 key = 0; key < np.size(); ++key) {
      const u64 low = key & (bit - 1);
      np[key] = op.phases[((key ^ low) << 1) | low];
    }
    op.phases = std::move(np);
    op.qubits.erase(op.qubits.begin() + static_cast<std::ptrdiff_t>(b));
    changed = true;
  }
  if (changed)
    op.max_qubit = op.qubits.empty() ? -1 : op.qubits.back();
  return changed;
}

/// Try to fuse `B` (applied after `A`) into `A`. Accepts only merges whose
/// fused kernel is no more expensive than running the two ops separately.
bool try_merge_ops(FusedOp& A, const FusedOp& B,
                   const std::vector<Gate>& gates, int cap) {
  using K = FusedOp::Kind;
  if (A.kind == K::kGate || B.kind == K::kGate) return false;
  const double budget = op_cost(A, gates) + op_cost(B, gates) + 1e-9;
  const auto finish = [&](K kind) {
    A.kind = kind;
    A.gate_end = B.gate_end;
    A.max_qubit = std::max(A.max_qubit, B.max_qubit);
  };

  // Diagonal x diagonal: pointwise product over the qubit union.
  if (A.kind == K::kDiagonal && B.kind == K::kDiagonal) {
    const std::vector<int> u = qubit_union(A.qubits, B.qubits);
    if (static_cast<int>(u.size()) > cap) return false;
    if (kind_cost(K::kDiagonal, u.size()) > budget) return false;
    extend_diagonal(A.qubits, A.phases, u);
    std::vector<int> bq = B.qubits;
    std::vector<cplx> bp = B.phases;
    extend_diagonal(bq, bp, u);
    for (std::size_t k = 0; k < A.phases.size(); ++k) A.phases[k] *= bp[k];
    finish(K::kDiagonal);
    return true;
  }

  // Anything on a kMatrix2's pair folds into the dense 4x4.
  if (A.kind == K::kMatrix2 || B.kind == K::kMatrix2) {
    const FusedOp& m2 = A.kind == K::kMatrix2 ? A : B;
    const int pq0 = m2.q0, pq1 = m2.q1;
    for (const FusedOp* op : {static_cast<const FusedOp*>(&A), &B})
      for (int q : op_qubits(*op))
        if (q != pq0 && q != pq1) return false;
    if (kind_cost(K::kMatrix2, 0) > budget) return false;
    A.m = matmul_flat(op_matrix_on(B, {pq0, pq1}),
                      op_matrix_on(A, {pq0, pq1}), 4);
    A.q0 = pq0;
    A.q1 = pq1;
    A.qubits.clear();
    A.phases.clear();
    finish(K::kMatrix2);
    return true;
  }

  // 1-qubit dense chains: kMatrix1 with kMatrix1 / single-qubit diagonal /
  // scalar diagonal, all on one qubit.
  if (A.kind != K::kMatrix1 && B.kind != K::kMatrix1) return false;
  int q = -1;
  for (const FusedOp* op : {static_cast<const FusedOp*>(&A), &B})
    for (int oq : op_qubits(*op)) {
      if (q < 0) q = oq;
      else if (q != oq) return false;
    }
  if (q < 0 || kind_cost(K::kMatrix1, 0) > budget) return false;
  const auto to2 = [&](const FusedOp& op) -> std::vector<cplx> {
    if (op.kind == K::kMatrix1) return op.m;
    if (op.qubits.empty())
      return {op.phases[0], cplx{0.0, 0.0}, cplx{0.0, 0.0}, op.phases[0]};
    return {op.phases[0], cplx{0.0, 0.0}, cplx{0.0, 0.0}, op.phases[1]};
  };
  A.m = matmul_flat(to2(B), to2(A), 2);
  A.q0 = q;
  A.qubits.clear();
  A.phases.clear();
  finish(K::kMatrix1);
  return true;
}

bool merge_pass(std::vector<FusedOp>& ops, const std::vector<Gate>& gates,
                int cap) {
  bool changed = false;
  std::size_t i = 0;
  while (i + 1 < ops.size()) {
    if (try_merge_ops(ops[i], ops[i + 1], gates, cap)) {
      ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i) + 1);
      changed = true;
      if (i > 0) --i;  // the grown op may now merge with its left neighbor
    } else {
      ++i;
    }
  }
  return changed;
}

/// Collapse runs confined to a small qubit set (up to 3 qubits, greedily
/// grown from a kMatrix2's pair) whose product is *exactly* diagonal
/// (CX·D·CX conjugation yields structural IEEE zeros) into a phase-table
/// op. Each transpiled CP block collapses on its pair; transpiled CCP
/// blocks, whose CX sandwiches straddle three qubits, collapse on a
/// triple. This is the rewrite the pairwise cost gate cannot reach: it
/// must pass through an intermediate dense matrix that is more expensive
/// than its parts.
bool sandwich_pass(std::vector<FusedOp>& ops, const std::vector<Gate>& gates) {
  constexpr std::size_t kMaxSet = 3;
  bool changed = false;
  for (std::size_t i = 0; i + 1 < ops.size(); ++i) {
    if (ops[i].kind != FusedOp::Kind::kMatrix2) continue;
    // Greedily grow the qubit set over the following ops.
    std::vector<int> set = {std::min(ops[i].q0, ops[i].q1),
                            std::max(ops[i].q0, ops[i].q1)};
    std::size_t j = i + 1;
    while (j < ops.size() && ops[j].kind != FusedOp::Kind::kGate) {
      std::vector<int> grown = qubit_union(set, op_qubits(ops[j]));
      if (grown.size() > kMaxSet) break;
      set = std::move(grown);
      ++j;
    }
    if (j < i + 2) continue;
    // Longest prefix of the run with an exactly diagonal product.
    const std::size_t d = pow2(static_cast<int>(set.size()));
    std::vector<cplx> prod = op_matrix_on(ops[i], set);
    double sum = op_cost(ops[i], gates);
    std::size_t best_end = 0;
    std::vector<cplx> best_prod;
    double best_sum = 0.0;
    for (std::size_t t = i + 1; t < j; ++t) {
      prod = matmul_flat(op_matrix_on(ops[t], set), prod, d);
      sum += op_cost(ops[t], gates);
      if (exactly_diagonal(prod, d)) {
        best_end = t + 1;
        best_prod = prod;
        best_sum = sum;
      }
    }
    if (best_end == 0) continue;
    FusedOp rep;
    rep.kind = FusedOp::Kind::kDiagonal;
    rep.gate_begin = ops[i].gate_begin;
    rep.gate_end = ops[best_end - 1].gate_end;
    rep.qubits = set;  // sorted; local bit b of the product is set[b]
    rep.max_qubit = set.back();
    rep.phases.resize(d);
    for (u64 key = 0; key < d; ++key) rep.phases[key] = best_prod[key * d + key];
    reduce_diagonal(rep);
    if (op_cost(rep, gates) > best_sum) continue;
    ops.erase(ops.begin() + static_cast<std::ptrdiff_t>(i) + 1,
              ops.begin() + static_cast<std::ptrdiff_t>(best_end));
    ops[i] = std::move(rep);
    changed = true;
  }
  return changed;
}

/// Compile a kDiagonal op's key-extraction plan: one DiagShift per
/// contiguous run of its (sorted) qubits.
void build_diag_shifts(FusedOp& op) {
  op.shifts.clear();
  std::size_t b = 0;
  while (b < op.qubits.size()) {
    std::size_t e = b + 1;
    while (e < op.qubits.size() && op.qubits[e] == op.qubits[e - 1] + 1) ++e;
    FusedOp::DiagShift s;
    s.shift = op.qubits[b];
    s.mask = (u64{1} << (e - b)) - 1;
    s.out = static_cast<int>(b);
    op.shifts.push_back(s);
    b = e;
  }
}

bool simplify_pass(std::vector<FusedOp>& ops) {
  bool changed = false;
  for (FusedOp& op : ops) {
    if ((op.kind == FusedOp::Kind::kMatrix1 && exactly_diagonal(op.m, 2)) ||
        (op.kind == FusedOp::Kind::kMatrix2 && exactly_diagonal(op.m, 4))) {
      dense_to_diagonal(op);
      changed = true;
    }
    if (op.kind == FusedOp::Kind::kDiagonal) changed |= reduce_diagonal(op);
  }
  return changed;
}

}  // namespace

/// Read-mostly: a sweep's worker threads look up the same few split keys
/// over and over, so hits take only the shared lock (concurrent, no
/// serialization); compiling a missing slice happens outside any lock and
/// the first thread to publish under the exclusive lock wins (losers drop
/// their duplicate). Mapped plans are heap-owned, so references returned to
/// callers stay valid across rehashes and later inserts.
struct FusedPlan::SubrangeCache {
  std::shared_mutex mutex;
  std::unordered_map<std::uint64_t, std::unique_ptr<const FusedPlan>> plans;
};

FusedPlan::FusedPlan(const QuantumCircuit& qc, const FusionOptions& options)
    : circuit_(qc),
      options_(options),
      subranges_(std::make_shared<SubrangeCache>()) {
  QFAB_CHECK(options_.max_diagonal_qubits >= 3);
  QFAB_CHECK(options_.tile_bits >= 2);
  compile();
}

const FusedPlan& FusedPlan::subrange_plan(std::size_t gate_begin,
                                          std::size_t gate_end) const {
  QFAB_CHECK(gate_begin <= gate_end && gate_end <= gate_count());
  const std::uint64_t key =
      (static_cast<std::uint64_t>(gate_begin) << 32) | gate_end;
  {
    std::shared_lock<std::shared_mutex> lock(subranges_->mutex);
    const auto it = subranges_->plans.find(key);
    if (it != subranges_->plans.end()) return *it->second;
  }
  QuantumCircuit sub = QuantumCircuit::same_shape(circuit_);
  for (std::size_t g = gate_begin; g < gate_end; ++g)
    sub.append(circuit_.gates()[g]);
  auto built = std::make_unique<const FusedPlan>(sub, options_);
  std::unique_lock<std::shared_mutex> lock(subranges_->mutex);
  const auto [it, inserted] =
      subranges_->plans.try_emplace(key, std::move(built));
  return *it->second;
}

bool FusedPlan::op_tile_eligible(std::size_t op_index,
                                 int tile_rows_log2) const {
  QFAB_CHECK(op_index < ops_.size());
  const FusedOp& op = ops_[op_index];
  return op.kind == FusedOp::Kind::kDiagonal || op.max_qubit < tile_rows_log2;
}

u64 FusedPlan::op_coupling_mask(std::size_t op_index) const {
  QFAB_CHECK(op_index < ops_.size());
  const FusedOp& op = ops_[op_index];
  switch (op.kind) {
    case FusedOp::Kind::kDiagonal:
      return 0;
    case FusedOp::Kind::kMatrix1:
      return u64{1} << op.q0;
    case FusedOp::Kind::kMatrix2:
      return (u64{1} << op.q0) | (u64{1} << op.q1);
    case FusedOp::Kind::kGate: {
      const Gate& g = circuit_.gates()[op.gate_begin];
      if (gate_is_diagonal(g.kind)) return 0;
      switch (g.kind) {
        case GateKind::kCX:
        case GateKind::kCCX:
          // qubits[0] is the target; controls only select rows.
          return u64{1} << g.qubits[0];
        case GateKind::kSWAP:
        case GateKind::kCH:
          return (u64{1} << g.qubits[0]) | (u64{1} << g.qubits[1]);
        default:
          return u64{1} << g.qubits[0];
      }
    }
  }
  return 0;
}

std::size_t FusedPlan::op_of_gate(std::size_t gate_index) const {
  QFAB_CHECK(gate_index < op_of_gate_.size());
  return op_of_gate_[gate_index];
}

void FusedPlan::compile() {
  const auto& gates = circuit_.gates();
  ops_.reserve(gates.size());

  // Convert gates 1:1 into ops; all fusion happens in the rewrite passes.
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const Gate& g = gates[i];
    const bool diag = gate_is_diagonal(g.kind);
    const int arity = g.arity();

    FusedOp op;
    op.gate_begin = i;
    op.gate_end = i + 1;
    op.max_qubit = gate_max_qubit(g);
    if (!options_.enable) {
      op.kind = FusedOp::Kind::kGate;
    } else if (diag) {
      op.kind = FusedOp::Kind::kDiagonal;
      for (int b = 0; b < arity; ++b) op.qubits.push_back(g.qubits[b]);
      std::sort(op.qubits.begin(), op.qubits.end());
      op.phases.assign(pow2(arity), cplx{1.0, 0.0});
      const std::vector<cplx> gd = gate_diagonal(g);
      int gpos[3] = {0, 0, 0};
      for (int b = 0; b < arity; ++b)
        gpos[b] = index_of(op.qubits, g.qubits[b]);
      for (u64 key = 0; key < op.phases.size(); ++key) {
        u64 gk = 0;
        for (int b = 0; b < arity; ++b)
          gk |= ((key >> gpos[b]) & u64{1}) << b;
        op.phases[key] = gd[gk];
      }
    } else if (arity == 1) {
      op.kind = FusedOp::Kind::kMatrix1;
      op.q0 = g.qubits[0];
      op.m = to_flat(g.matrix());
    } else if (arity == 2) {
      op.kind = FusedOp::Kind::kMatrix2;
      op.q0 = g.qubits[0];
      op.q1 = g.qubits[1];
      op.m = to_flat(g.matrix());
    } else {
      op.kind = FusedOp::Kind::kGate;  // CCX
    }
    ops_.push_back(std::move(op));
  }

  if (options_.enable) {
    // Rewrite to a fixpoint. Each pass either shrinks the op list or
    // strictly simplifies an op's representation, so this terminates.
    const int cap = options_.max_diagonal_qubits;
    bool changed = true;
    while (changed) {
      changed = merge_pass(ops_, gates, cap);
      changed |= sandwich_pass(ops_, gates);
      changed |= simplify_pass(ops_);
    }
  }

  // Ops that ended up covering a single gate run faster on the specialized
  // per-gate kernels (a lone CX is a quarter-swap, not a dense 4x4).
  for (FusedOp& op : ops_)
    if (op.gate_count() == 1 && op.kind != FusedOp::Kind::kGate) {
      op.kind = FusedOp::Kind::kGate;
      op.m.clear();
      op.qubits.clear();
      op.phases.clear();
    }

  for (FusedOp& op : ops_)
    if (op.kind == FusedOp::Kind::kDiagonal && op.qubits.size() >= 2)
      build_diag_shifts(op);

  op_of_gate_.assign(gates.size(), 0);
  for (std::size_t o = 0; o < ops_.size(); ++o)
    for (std::size_t g = ops_[o].gate_begin; g < ops_[o].gate_end; ++g)
      op_of_gate_[g] = static_cast<std::uint32_t>(o);
}

namespace {

// QFAB_FAULT nan-at-gate hook: after a pass that executed the targeted
// gate, poison one amplitude with a quiet NaN. Exercises the numerical
// health sentinels end to end (exp/experiment.cpp); inert without the env
// directive.
void maybe_inject_nan(StateVector& sv, std::size_t gate_begin,
                      std::size_t gate_end) {
  if (fault::nan_fault_active() && fault::take_nan_charge(gate_begin, gate_end))
    sv.raw_amplitudes()[0] = cplx(std::numeric_limits<double>::quiet_NaN(), 0.0);
}

}  // namespace

void FusedPlan::apply(StateVector& sv) const {
  QFAB_CHECK(sv.num_qubits() == circuit_.num_qubits());
  apply_ops(sv, 0, ops_.size());
  sv.apply_global_phase(circuit_.global_phase());
  maybe_inject_nan(sv, 0, gate_count());
}

void FusedPlan::apply_range(StateVector& sv, std::size_t gate_begin,
                            std::size_t gate_end) const {
  QFAB_CHECK(sv.num_qubits() == circuit_.num_qubits());
  QFAB_CHECK(gate_begin <= gate_end && gate_end <= gate_count());
  std::size_t g = gate_begin;
  while (g < gate_end) {
    const std::size_t oi = op_of_gate_[g];
    const FusedOp& op = ops_[oi];
    if (op.gate_begin == g && op.gate_end <= gate_end) {
      // Maximal run of fully covered ops, executed fused (cache-blocked).
      std::size_t oj = oi;
      while (oj < ops_.size() && ops_[oj].gate_end <= gate_end) ++oj;
      apply_ops(sv, oi, oj);
      g = ops_[oj - 1].gate_end;
    } else {
      // The split lands inside this op: per-gate fallback for the covered
      // slice (this is what lets noise inject at arbitrary gate sites).
      const std::size_t stop = std::min(gate_end, op.gate_end);
      apply_gates(sv, g, stop);
      g = stop;
    }
  }
  maybe_inject_nan(sv, gate_begin, gate_end);
}

void FusedPlan::apply_ops(StateVector& sv, std::size_t op_lo,
                          std::size_t op_hi) const {
  cplx* a = sv.raw_amplitudes();
  const u64 n = sv.dim();
  const int tb = std::min(options_.tile_bits, sv.num_qubits());
  const u64 tile = u64{1} << tb;

  // Scalar work goes to the state's pending phase exactly once per op,
  // never per tile: the RZ prefactor of passthrough gates, and scalar
  // (k = 0) diagonal ops — identity-up-to-phase products like CX·CX.
  auto add_pending = [&](const FusedOp& op) {
    if (op.kind == FusedOp::Kind::kGate) {
      const Gate& gate = circuit_.gates()[op.gate_begin];
      if (gate.kind == GateKind::kRZ)
        sv.apply_global_phase(-gate.params[0] / 2);
    } else if (op.kind == FusedOp::Kind::kDiagonal && op.qubits.empty()) {
      sv.apply_global_phase(std::arg(op.phases[0]));
    }
  };
  auto apply_chunk = [&](cplx* chunk, u64 len, const FusedOp& op) {
    switch (op.kind) {
      case FusedOp::Kind::kMatrix1:
        k_matrix1(chunk, len, op.q0, op.m.data());
        return;
      case FusedOp::Kind::kMatrix2:
        k_matrix2(chunk, len, op.q0, op.q1, op.m.data());
        return;
      case FusedOp::Kind::kDiagonal:
        if (op.qubits.empty()) return;  // handled by add_pending
        if (op.qubits.size() == 1)
          k_diag1(chunk, len, op.qubits[0], op.phases.data());
        else
          k_diag(chunk, len, op.shifts.data(),
                 static_cast<int>(op.shifts.size()), op.phases.data());
        return;
      case FusedOp::Kind::kGate:
        k_gate(chunk, len, circuit_.gates()[op.gate_begin]);
        return;
    }
  };

  std::size_t i = op_lo;
  while (i < op_hi) {
    if (ops_[i].max_qubit < tb) {
      std::size_t j = i;
      while (j < op_hi && ops_[j].max_qubit < tb) ++j;
      for (std::size_t k = i; k < j; ++k) add_pending(ops_[k]);
      for (u64 base = 0; base < n; base += tile)
        for (std::size_t k = i; k < j; ++k)
          apply_chunk(a + base, tile, ops_[k]);
      i = j;
    } else {
      add_pending(ops_[i]);
      apply_chunk(a, n, ops_[i]);
      ++i;
    }
  }
}

void FusedPlan::apply_gates(StateVector& sv, std::size_t gate_begin,
                            std::size_t gate_end) const {
  cplx* a = sv.raw_amplitudes();
  const u64 n = sv.dim();
  for (std::size_t g = gate_begin; g < gate_end; ++g) {
    const Gate& gate = circuit_.gates()[g];
    if (gate.kind == GateKind::kRZ)
      sv.apply_global_phase(-gate.params[0] / 2);
    k_gate(a, n, gate);
  }
}

}  // namespace qfab
