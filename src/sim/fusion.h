// Fused gate execution plans.
//
// A FusedPlan is compiled once per (transpiled) circuit and replayed many
// times — once per operand instance and again per error trajectory — so the
// compile cost is amortized over thousands of 2^n-amplitude passes. The
// plan collapses the gate stream into fewer, cheaper ops:
//
//  * runs of consecutive 1q gates on the same qubit fuse into one 2x2
//    matrix (the transpiled RZ·SX·RZ Euler chains),
//  * runs confined to <= 3 qubits whose product is *exactly* diagonal
//    (CX·D·CX conjugation yields structural IEEE zeros) collapse into one
//    phase-table op — each transpiled CP block (CX·RZ·CX·RZ) and CCP
//    block becomes a single diagonal pass,
//  * adjacent diagonal ops (Id/Z/RZ/P/CZ/CP/CCP and collapsed blocks)
//    merge into one phase table over the union of their qubits (whole QFT
//    ladders between Hadamard layers), applied with a precompiled
//    shift/mask key gather.
//
// Every rewrite is gated by a kernel cost model: at simulation sizes the
// amplitude vector is cache-resident and the workload is flop-bound, so a
// merge is accepted only when the fused pass is estimated no more
// expensive than its parts (a dense 4x4 must not swallow a CX
// quarter-swap plus an RZ half-pass).
//
// Execution is cache-blocked: consecutive ops that act only on qubits below
// `tile_bits` are applied tile-by-tile, so every gate of the block touches
// an L1-resident slice of the amplitude vector before moving on.
//
// Noise compatibility is the load-bearing invariant: the ops partition the
// original gate index range, `op_of_gate` maps every gate index to its op,
// and `apply_range` accepts *arbitrary* gate boundaries — partially covered
// ops fall back to per-gate kernels — so CleanRun checkpoints and
// trajectory Pauli injections land at exact gate sites while fused segments
// run on either side. Fused execution matches the per-gate reference path
// (StateVector::apply_circuit_range) to ~1e-12 in the final amplitudes;
// tests/test_fusion.cpp property-tests this, including splits at every
// gate index.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <vector>

#include "circuit/circuit.h"
#include "sim/statevector.h"

namespace qfab {

struct FusionOptions {
  /// false compiles every gate as its own op (per-gate kernels through the
  /// plan machinery) — the A/B baseline used by bench_fusion.
  bool enable = true;
  /// Cap on the qubit count of a fused diagonal op (phase table has 2^k
  /// entries); a diagonal gate that would push a run past the cap starts a
  /// new op instead.
  int max_diagonal_qubits = 10;
  /// Tile size for cache-blocked execution: 2^tile_bits amplitudes
  /// (default 2^11 * 16 B = 32 KiB, sized for L1).
  int tile_bits = 11;
};

/// One compiled op covering the contiguous original-gate range
/// [gate_begin, gate_end).
struct FusedOp {
  enum class Kind : std::uint8_t {
    kGate,      // single original gate, specialized per-kind kernel
    kMatrix1,   // fused 2x2 on qubit q0
    kMatrix2,   // fused 4x4 on (q0, q1); gate-local bit 0 = q0
    kDiagonal,  // fused phase table over `qubits` (sorted ascending)
  };

  /// One contiguous run of kDiagonal qubits: contributes
  /// ((index >> shift) & mask) << out to the phase-table key. Compiled so
  /// the per-amplitude key gather is a few shifts instead of a per-bit
  /// loop (QFT ladder unions are contiguous register ranges).
  struct DiagShift {
    int shift = 0;
    u64 mask = 0;
    int out = 0;
  };

  Kind kind = Kind::kGate;
  std::size_t gate_begin = 0;
  std::size_t gate_end = 0;
  int q0 = -1;
  int q1 = -1;
  int max_qubit = -1;        // highest qubit touched (tiling eligibility)
  std::vector<cplx> m;       // kMatrix1: 4 entries row-major; kMatrix2: 16
  std::vector<int> qubits;   // kDiagonal: sorted qubit list
  std::vector<cplx> phases;  // kDiagonal: 2^qubits.size() diagonal entries
  std::vector<DiagShift> shifts;  // kDiagonal k >= 2: key extraction plan

  std::size_t gate_count() const { return gate_end - gate_begin; }
};

class FusedPlan {
 public:
  explicit FusedPlan(const QuantumCircuit& qc,
                     const FusionOptions& options = {});

  /// The compiled circuit (the plan owns a copy).
  const QuantumCircuit& circuit() const { return circuit_; }
  const FusionOptions& options() const { return options_; }
  const std::vector<FusedOp>& ops() const { return ops_; }

  std::size_t gate_count() const { return circuit_.gates().size(); }
  std::size_t op_count() const { return ops_.size(); }

  /// Index of the op covering original gate `gate_index` (O(1)).
  std::size_t op_of_gate(std::size_t gate_index) const;

  /// Whether op `op_index` may execute on an amplitude tile of
  /// 2^tile_rows_log2 rows: diagonal ops tile at ANY qubit span (their
  /// phase-key gather needs only the global row index, which every tiled
  /// kernel receives as `base`), everything else must fit the tile. This is
  /// the single eligibility rule shared by the batched tile loop
  /// (apply_ops_batched) and the fused trajectory walk (apply_batch_walk),
  /// so both block the cache identically.
  bool op_tile_eligible(std::size_t op_index, int tile_rows_log2) const;

  /// Bitmask of qubits across which op `op_index` mixes amplitude rows:
  /// row r only ever combines with rows r ^ m for m in the span of this
  /// mask. Diagonal ops (and diagonal kGates) couple nothing; a fused 2x2
  /// couples its qubit; CX/CCX couple only their target (controls gate
  /// participation but never pair rows across themselves); SWAP and kCH
  /// couple both qubits. The batched group walk uses this to co-schedule
  /// the XOR-partner tiles of high-qubit ops instead of dropping to a
  /// full-width pass.
  u64 op_coupling_mask(std::size_t op_index) const;

  /// Apply the full circuit, including its global phase (mirrors
  /// StateVector::apply_circuit).
  void apply(StateVector& sv) const;

  /// Apply original gates [gate_begin, gate_end); global phase is NOT
  /// applied (mirrors StateVector::apply_circuit_range). Boundaries may
  /// fall inside fused ops: the partially covered gates run on the
  /// per-gate kernels, so noise injection can split anywhere.
  void apply_range(StateVector& sv, std::size_t gate_begin,
                   std::size_t gate_end) const;

  /// Lazily compiled fused plan for the original-gate subrange
  /// [gate_begin, gate_end), cached (thread-safe) for the plan's lifetime
  /// and shared across copies. Noise injection splits the same few sites
  /// over and over across a sweep's trajectories; compiling the partial
  /// slice of a big fused op once turns its per-gate fallback (one full
  /// amplitude pass per gate) back into a handful of fused passes.
  const FusedPlan& subrange_plan(std::size_t gate_begin,
                                 std::size_t gate_end) const;

 private:
  void compile();
  /// Apply whole ops [op_lo, op_hi), cache-blocked.
  void apply_ops(StateVector& sv, std::size_t op_lo, std::size_t op_hi) const;
  /// Per-gate fallback for partially covered ops.
  void apply_gates(StateVector& sv, std::size_t gate_begin,
                   std::size_t gate_end) const;

  QuantumCircuit circuit_;
  FusionOptions options_;
  std::vector<FusedOp> ops_;                // partition of [0, gate_count)
  std::vector<std::uint32_t> op_of_gate_;   // gate index -> op index
  struct SubrangeCache;                     // lazily compiled subrange plans
  std::shared_ptr<SubrangeCache> subranges_;
};

}  // namespace qfab
