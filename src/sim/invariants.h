// Numerical invariant checks shared by the tests and the differential
// verification harness (src/verify).
//
// Every engine in the repo advances a normalized state through unitary (or
// trace-preserving) segments, so these properties must hold after *every*
// executed segment, not just at the end: a kernel that corrupts the norm
// mid-circuit can still produce a plausible-looking final distribution.
// The checks return a human-readable violation description instead of
// throwing so the verifier can fold them into its failure report (and the
// shrinker can re-evaluate them thousands of times cheaply).
#pragma once

#include <string>
#include <vector>

#include "sim/batch.h"
#include "sim/statevector.h"

namespace qfab {

/// "" when `probs` lies on the probability simplex to tolerance `tol`
/// (every entry within [-tol, 1 + tol], sum within tol of 1); otherwise a
/// description of the first violation.
std::string check_probability_simplex(const std::vector<double>& probs,
                                      double tol);

/// Norm preservation: "" when | ||psi|| - 1 | <= tol.
std::string check_norm(const StateVector& sv, double tol);

/// Per-lane norm preservation of a batched state (either precision tier);
/// reports the worst lane.
template <typename Real>
std::string check_lane_norms(const BatchedStateVectorT<Real>& bsv, double tol);

extern template std::string check_lane_norms<double>(const BatchedStateVector&,
                                                     double);
extern template std::string check_lane_norms<float>(const BatchedStateVectorF&,
                                                    double);

}  // namespace qfab
