// Dense state-vector simulator.
//
// Performance notes: every trajectory of the noisy sweeps replays a
// transpiled circuit (thousands of gates) against a 2^n vector, so each gate
// kind gets a dedicated in-place kernel; diagonal gates (RZ/P/CP/CCP/Z/CZ)
// touch only phases and CX/X/SWAP only permute amplitudes. Generic dense
// application exists as a fallback and as the reference the kernels are
// tested against.
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "common/rng.h"
#include "linalg/matrix.h"

namespace qfab {

/// Pauli labels used by the noise layer.
enum class Pauli : std::uint8_t { kI = 0, kX = 1, kY = 2, kZ = 3 };

class StateVector {
 public:
  /// |0...0> on n qubits. n <= 30 (memory guard).
  explicit StateVector(int num_qubits);

  /// Take ownership of explicit amplitudes (size must be a power of two).
  /// Callers are responsible for normalization (checked to 1e-8).
  static StateVector from_amplitudes(std::vector<cplx> amps);

  int num_qubits() const { return num_qubits_; }
  u64 dim() const { return pow2(num_qubits_); }
  /// Amplitudes with any pending global phase folded in.
  const std::vector<cplx>& amplitudes() const;

  /// Reset to |0...0>.
  void reset();
  /// Reset to the computational basis state |value>.
  void set_basis_state(u64 value);
  /// Overwrite the amplitude of |index> (used by noise-free initialization;
  /// caller must keep the state normalized).
  void set_amplitude(u64 index, cplx a);

  cplx amplitude(u64 index) const;
  double norm() const;

  /// Raw mutable amplitude storage for execution-plan kernels
  /// (sim/fusion). The pending RZ global phase is deliberately NOT
  /// flushed: plan ops are linear, so the lazy scalar commutes with them.
  cplx* raw_amplitudes() { return amps_.data(); }

  // -- gate application --
  void apply_gate(const Gate& g);
  /// Apply gates [begin, end) of the circuit; applies the circuit's global
  /// phase only when the full range [0, size) is requested in one call.
  void apply_circuit(const QuantumCircuit& qc);
  void apply_circuit_range(const QuantumCircuit& qc, std::size_t begin,
                           std::size_t end);
  void apply_global_phase(double phase);
  /// Apply a Pauli operator to one qubit (noise injection).
  void apply_pauli(Pauli p, int q);

  /// Dense application of an arbitrary k-qubit matrix (reference path).
  void apply_matrix(const Matrix& u, const std::vector<int>& targets);

  // -- measurement --
  /// |amp|^2 for every basis state.
  std::vector<double> probabilities() const;
  /// Distribution of the measured value of `qubits` (qubits[0] = output
  /// bit 0), marginalized over the rest. Size 2^{qubits.size()}.
  std::vector<double> marginal_probabilities(
      const std::vector<int>& qubits) const;
  /// Allocation-reusing form: assigns the marginal into `out` (resized to
  /// 2^{qubits.size()}, reusing its capacity). Estimator scratch path.
  void marginal_probabilities(const std::vector<int>& qubits,
                              std::vector<double>& out) const;
  /// Sample one full-width measurement outcome.
  u64 sample(Pcg64& rng) const;
  /// Sample `shots` outcomes of the given qubit subset, returning a count
  /// per outcome (size 2^{qubits.size()}). Equivalent to repeated
  /// measure-and-reprepare; each shot binary-searches one cumulative table
  /// of the marginal (CdfSampler).
  std::vector<std::uint64_t> sample_counts(const std::vector<int>& qubits,
                                           std::uint64_t shots,
                                           Pcg64& rng) const;

 private:
  void apply_matrix1(const cplx m[2][2], int q);
  void apply_matrix2(const Matrix& u, int q0, int q1);
  /// Multiply amplitudes whose `q` bit is set by `phase` (strided loop).
  void apply_phase_on_bit(int q, cplx phase);
  /// Fold the lazily-accumulated RZ global phase into the amplitudes.
  void flush_pending_phase() const;

  int num_qubits_ = 0;
  // RZ(θ) = e^{-iθ/2} · diag(1, e^{iθ}): the diagonal part is applied
  // eagerly (half the vector), the scalar prefactor accumulates here and
  // is folded in only when amplitudes are observed. Probabilities never
  // need it. Mutable: folding from a const accessor is observationally
  // pure (not thread-safe against concurrent reads of the same object).
  mutable double pending_phase_ = 0.0;
  mutable std::vector<cplx> amps_;
};

}  // namespace qfab
