#include "sim/invariants.h"

#include <cmath>
#include <sstream>

namespace qfab {

std::string check_probability_simplex(const std::vector<double>& probs,
                                      double tol) {
  double sum = 0.0;
  for (std::size_t i = 0; i < probs.size(); ++i) {
    const double p = probs[i];
    if (!std::isfinite(p) || p < -tol || p > 1.0 + tol) {
      std::ostringstream os;
      os << "probability[" << i << "] = " << p << " outside [0, 1] (tol "
         << tol << ")";
      return os.str();
    }
    sum += p;
  }
  if (std::abs(sum - 1.0) > tol) {
    std::ostringstream os;
    os << "probabilities sum to " << sum << " (|sum - 1| > " << tol << ")";
    return os.str();
  }
  return {};
}

std::string check_norm(const StateVector& sv, double tol) {
  const double norm = sv.norm();
  if (std::abs(norm - 1.0) <= tol) return {};
  std::ostringstream os;
  os << "state norm " << norm << " drifted from 1 by " << std::abs(norm - 1.0)
     << " (tol " << tol << ")";
  return os.str();
}

template <typename Real>
std::string check_lane_norms(const BatchedStateVectorT<Real>& bsv, double tol) {
  double worst = 0.0;
  int worst_lane = -1;
  for (int l = 0; l < bsv.lanes(); ++l) {
    const double drift = std::abs(bsv.lane_norm(l) - 1.0);
    if (drift > worst) {
      worst = drift;
      worst_lane = l;
    }
  }
  if (worst <= tol) return {};
  std::ostringstream os;
  os << "lane " << worst_lane << " norm drifted from 1 by " << worst
     << " (tol " << tol << ")";
  return os.str();
}

template std::string check_lane_norms<double>(const BatchedStateVector&,
                                              double);
template std::string check_lane_norms<float>(const BatchedStateVectorF&,
                                             double);

}  // namespace qfab
