#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <type_traits>

#include "common/bits.h"
#include "common/check.h"
#include "common/fault.h"

namespace qfab {

namespace detail {

namespace {
std::atomic<bool> g_batch_fault{false};
}  // namespace

void set_batch_fault_injection(bool on) {
  g_batch_fault.store(on, std::memory_order_relaxed);
}

bool batch_fault_injection() {
  return g_batch_fault.load(std::memory_order_relaxed);
}

}  // namespace detail

namespace {

cplx expi(double t) { return {std::cos(t), std::sin(t)}; }

/// One resolved set of batched kernels: a (ISA tier, amplitude precision)
/// build of the same bodies. One table per precision is selected at
/// startup, swappable via set_simd_mode(). All kernels take the chunk's
/// global base row (diagonal key gathers need it), the full lane stride L
/// and the active lane-group width G <= L.
template <typename Real>
struct BatchKernelTable {
  void (*matrix1)(Real*, Real*, u64, u64, u64, u64, int, const cplx*);
  void (*matrix2)(Real*, Real*, u64, u64, u64, u64, int, int, const cplx*);
  void (*diag1)(Real*, Real*, u64, u64, u64, u64, int, const cplx*);
  void (*diag)(Real*, Real*, u64, u64, u64, u64, const FusedOp::DiagShift*,
               int, const cplx*);
  void (*phase_on_bit)(Real*, Real*, u64, u64, u64, u64, int, cplx);
  void (*gate)(Real*, Real*, u64, u64, u64, u64, const Gate&);
  // Group-walk variants: correct at any qubit span relative to the chunk,
  // pairing with XOR-sibling tiles through absolute row offsets (the group
  // walk in apply_batch_walk keeps those tiles resident). Same row bodies
  // as the contiguous kernels, so results are bitwise identical.
  void (*matrix1g)(Real*, Real*, u64, u64, u64, u64, int, const cplx*);
  void (*matrix2g)(Real*, Real*, u64, u64, u64, u64, int, int, const cplx*);
  void (*gateg)(Real*, Real*, u64, u64, u64, u64, const Gate&);
};

#define QFAB_RESTRICT __restrict__

// Portable builds of the kernel bodies: plain C++, autovectorized for the
// baseline ISA. These are the fallback CI pins with QFAB_SIMD=scalar.
namespace ker_scalar_f64 {
using kreal = double;
#define QFAB_KERNEL_ATTR
#include "sim/batch_kernels.inc"
#undef QFAB_KERNEL_ATTR
}  // namespace ker_scalar_f64

namespace ker_scalar_f32 {
using kreal = float;
#define QFAB_KERNEL_ATTR
#include "sim/batch_kernels.inc"
#undef QFAB_KERNEL_ATTR
}  // namespace ker_scalar_f32

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(QFAB_SIMD_SCALAR_ONLY)
#define QFAB_HAVE_X86_TABLES 1
// AVX2+FMA builds of the same bodies: the target attribute lets the
// compiler emit 256-bit FMA code for exactly these functions, so the
// binary stays runnable on any x86-64 host.
namespace ker_avx2_f64 {
using kreal = double;
#define QFAB_KERNEL_ATTR __attribute__((target("avx2,fma")))
#include "sim/batch_kernels.inc"
#undef QFAB_KERNEL_ATTR
}  // namespace ker_avx2_f64

namespace ker_avx2_f32 {
using kreal = float;
#define QFAB_KERNEL_ATTR __attribute__((target("avx2,fma")))
#include "sim/batch_kernels.inc"
#undef QFAB_KERNEL_ATTR
}  // namespace ker_avx2_f32

// AVX-512 builds: 512-bit vectors, 8 doubles / 16 floats per register.
// prefer-vector-width=512 overrides the 256-bit tuning default so the
// autovectorizer actually uses zmm for these unit-stride lane loops.
#define QFAB_AVX512_TARGET                                      \
  __attribute__((target("avx512f,avx512dq,avx512bw,avx512vl," \
                        "prefer-vector-width=512")))
namespace ker_avx512_f64 {
using kreal = double;
#define QFAB_KERNEL_ATTR QFAB_AVX512_TARGET
#include "sim/batch_kernels.inc"
#undef QFAB_KERNEL_ATTR
}  // namespace ker_avx512_f64

namespace ker_avx512_f32 {
using kreal = float;
#define QFAB_KERNEL_ATTR QFAB_AVX512_TARGET
#include "sim/batch_kernels.inc"
#undef QFAB_KERNEL_ATTR
}  // namespace ker_avx512_f32
#else
#define QFAB_HAVE_X86_TABLES 0
#endif

const BatchKernelTable<double> kScalarF64 = ker_scalar_f64::kernel_table();
const BatchKernelTable<float> kScalarF32 = ker_scalar_f32::kernel_table();
#if QFAB_HAVE_X86_TABLES
const BatchKernelTable<double> kAvx2F64 = ker_avx2_f64::kernel_table();
const BatchKernelTable<float> kAvx2F32 = ker_avx2_f32::kernel_table();
const BatchKernelTable<double> kAvx512F64 = ker_avx512_f64::kernel_table();
const BatchKernelTable<float> kAvx512F32 = ker_avx512_f32::kernel_table();
#endif

bool cpu_has_avx2() {
#if QFAB_HAVE_X86_TABLES
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

bool cpu_has_avx512() {
#if QFAB_HAVE_X86_TABLES
  return __builtin_cpu_supports("avx512f") &&
         __builtin_cpu_supports("avx512dq") &&
         __builtin_cpu_supports("avx512bw") &&
         __builtin_cpu_supports("avx512vl");
#else
  return false;
#endif
}

/// The requested mode before resolution: build default, then environment.
SimdMode requested_mode() {
#if defined(QFAB_SIMD_SCALAR_ONLY)
  SimdMode mode = SimdMode::kScalar;
#elif defined(QFAB_SIMD_FORCE_AVX512)
  SimdMode mode = SimdMode::kAvx512;
#elif defined(QFAB_SIMD_FORCE_AVX2)
  SimdMode mode = SimdMode::kAvx2;
#else
  SimdMode mode = SimdMode::kAuto;
#endif
  if (const char* env = std::getenv("QFAB_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) mode = SimdMode::kScalar;
    else if (std::strcmp(env, "avx2") == 0) mode = SimdMode::kAvx2;
    else if (std::strcmp(env, "avx512") == 0) mode = SimdMode::kAvx512;
    else if (std::strcmp(env, "auto") == 0) mode = SimdMode::kAuto;
  }
  return mode;
}

/// Resolve kAuto by CPUID and degrade forced modes the CPU lacks.
SimdMode resolve_mode(SimdMode mode) {
  const bool a2 = cpu_has_avx2();
  const bool a5 = cpu_has_avx512();
  if (mode == SimdMode::kAuto)
    return a5 ? SimdMode::kAvx512 : a2 ? SimdMode::kAvx2 : SimdMode::kScalar;
  if (mode == SimdMode::kAvx512 && !a5)
    return a2 ? SimdMode::kAvx2 : SimdMode::kScalar;
  if (mode == SimdMode::kAvx2 && !a2) return SimdMode::kScalar;
  return mode;
}

std::atomic<SimdMode>& mode_slot() {
  static std::atomic<SimdMode> slot{resolve_mode(requested_mode())};
  return slot;
}

template <typename Real>
const BatchKernelTable<Real>& table_for(SimdMode resolved) {
  if constexpr (std::is_same_v<Real, double>) {
#if QFAB_HAVE_X86_TABLES
    if (resolved == SimdMode::kAvx512) return kAvx512F64;
    if (resolved == SimdMode::kAvx2) return kAvx2F64;
#endif
    (void)resolved;
    return kScalarF64;
  } else {
#if QFAB_HAVE_X86_TABLES
    if (resolved == SimdMode::kAvx512) return kAvx512F32;
    if (resolved == SimdMode::kAvx2) return kAvx2F32;
#endif
    (void)resolved;
    return kScalarF32;
  }
}

template <typename Real>
const BatchKernelTable<Real>& active_table() {
  return table_for<Real>(mode_slot().load(std::memory_order_relaxed));
}

}  // namespace

SimdMode simd_mode() { return mode_slot().load(std::memory_order_relaxed); }

void set_simd_mode(SimdMode mode) {
  mode_slot().store(resolve_mode(mode), std::memory_order_relaxed);
}

const char* simd_mode_name() {
  switch (simd_mode()) {
    case SimdMode::kAvx512: return "avx512";
    case SimdMode::kAvx2: return "avx2";
    default: return "scalar";
  }
}

const char* precision_name(Precision p) {
  switch (p) {
    case Precision::kDouble: return "double";
    case Precision::kFloat32: return "float32";
    default: return "auto";
  }
}

// ---------------------------------------------------------------------------
// BatchedStateVectorT
// ---------------------------------------------------------------------------

template <typename Real>
BatchedStateVectorT<Real>::BatchedStateVectorT(int num_qubits, int lanes)
    : num_qubits_(num_qubits), lanes_(lanes) {
  QFAB_CHECK_MSG(num_qubits >= 1 && num_qubits <= 30,
                 "unsupported qubit count " << num_qubits);
  QFAB_CHECK_MSG(lanes >= 1 && lanes <= kMaxLanes,
                 "unsupported lane count " << lanes);
  const std::size_t total = dim() * static_cast<std::size_t>(lanes_);
  re_.assign(total, Real{0});
  im_.assign(total, Real{0});
  pending_.assign(static_cast<std::size_t>(lanes_), 0.0);
  for (int l = 0; l < lanes_; ++l) re_[static_cast<std::size_t>(l)] = Real{1};
}

template <typename Real>
void BatchedStateVectorT<Real>::reset(int num_qubits, int lanes) {
  QFAB_CHECK_MSG(num_qubits >= 1 && num_qubits <= 30,
                 "unsupported qubit count " << num_qubits);
  QFAB_CHECK_MSG(lanes >= 1 && lanes <= kMaxLanes,
                 "unsupported lane count " << lanes);
  num_qubits_ = num_qubits;
  lanes_ = lanes;
  const std::size_t total = dim() * static_cast<std::size_t>(lanes_);
  re_.resize(total);
  im_.resize(total);
  pending_.resize(static_cast<std::size_t>(lanes_));
}

template <typename Real>
void BatchedStateVectorT<Real>::set_lane(int lane, const StateVector& sv) {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  QFAB_CHECK(sv.num_qubits() == num_qubits_);
  const std::vector<cplx>& a = sv.amplitudes();
  const u64 L = static_cast<u64>(lanes_);
  for (u64 i = 0; i < a.size(); ++i) {
    re_[i * L + static_cast<u64>(lane)] = static_cast<Real>(a[i].real());
    im_[i * L + static_cast<u64>(lane)] = static_cast<Real>(a[i].imag());
  }
  pending_[static_cast<std::size_t>(lane)] = 0.0;
}

template <typename Real>
void BatchedStateVectorT<Real>::broadcast(const StateVector& sv) {
  QFAB_CHECK(sv.num_qubits() == num_qubits_);
  const std::vector<cplx>& a = sv.amplitudes();
  const u64 L = static_cast<u64>(lanes_);
  for (u64 i = 0; i < a.size(); ++i) {
    const Real ar = static_cast<Real>(a[i].real());
    const Real ai = static_cast<Real>(a[i].imag());
    Real* r = re_.data() + i * L;
    Real* m = im_.data() + i * L;
    for (u64 l = 0; l < L; ++l) {
      r[l] = ar;
      m[l] = ai;
    }
  }
  std::fill(pending_.begin(), pending_.end(), 0.0);
}

template <typename Real>
StateVector BatchedStateVectorT<Real>::lane_state(int lane) const {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  const u64 L = static_cast<u64>(lanes_);
  const cplx ph = expi(pending_[static_cast<std::size_t>(lane)]);
  std::vector<cplx> amps(dim());
  for (u64 i = 0; i < amps.size(); ++i)
    amps[i] =
        cplx{static_cast<double>(re_[i * L + static_cast<u64>(lane)]),
             static_cast<double>(im_[i * L + static_cast<u64>(lane)])} *
        ph;
  return StateVector::from_amplitudes(std::move(amps));
}

template <typename Real>
template <typename SrcReal>
void BatchedStateVectorT<Real>::assign_permuted(
    const BatchedStateVectorT<SrcReal>& src, const std::vector<int>& lane_map) {
  QFAB_CHECK(static_cast<const void*>(this) != static_cast<const void*>(&src));
  QFAB_CHECK(!lane_map.empty() &&
             lane_map.size() <= static_cast<std::size_t>(kMaxLanes));
  for (int l : lane_map) QFAB_CHECK(l >= 0 && l < src.lanes_);
  num_qubits_ = src.num_qubits_;
  lanes_ = static_cast<int>(lane_map.size());
  const u64 L = static_cast<u64>(lanes_);
  const u64 S = static_cast<u64>(src.lanes_);
  const u64 n = dim();
  re_.resize(n * L);
  im_.resize(n * L);
  pending_.resize(L);
  for (u64 j = 0; j < L; ++j)
    pending_[j] = src.pending_[static_cast<std::size_t>(lane_map[j])];
  for (u64 i = 0; i < n; ++i) {
    const SrcReal* sr = src.re_.data() + i * S;
    const SrcReal* sm = src.im_.data() + i * S;
    Real* dr = re_.data() + i * L;
    Real* dm = im_.data() + i * L;
    for (u64 j = 0; j < L; ++j) {
      const u64 s = static_cast<u64>(lane_map[j]);
      dr[j] = static_cast<Real>(sr[s]);
      dm[j] = static_cast<Real>(sm[s]);
    }
  }
}

template <typename Real>
void BatchedStateVectorT<Real>::apply_pauli(int lane, Pauli p, int q) {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  QFAB_CHECK(q >= 0 && q < num_qubits_);
  const u64 L = static_cast<u64>(lanes_);
  const u64 col = static_cast<u64>(lane);
  const u64 bit = u64{1} << q;
  const u64 n = dim();
  Real* r = re_.data();
  Real* m = im_.data();
  switch (p) {
    case Pauli::kI:
      return;
    case Pauli::kX:
      for (u64 base = 0; base < n; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i0 = (base + off) * L + col;
          const u64 i1 = (base + off + bit) * L + col;
          std::swap(r[i0], r[i1]);
          std::swap(m[i0], m[i1]);
        }
      return;
    case Pauli::kY:
      for (u64 base = 0; base < n; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i0 = (base + off) * L + col;
          const u64 i1 = (base + off + bit) * L + col;
          const Real v0r = r[i0], v0i = m[i0];
          const Real v1r = r[i1], v1i = m[i1];
          r[i0] = v1i;   // -i * v1
          m[i0] = -v1r;
          r[i1] = -v0i;  //  i * v0
          m[i1] = v0r;
        }
      return;
    case Pauli::kZ:
      for (u64 base = bit; base < n; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i = (base + off) * L + col;
          r[i] = -r[i];
          m[i] = -m[i];
        }
      return;
  }
}

template <typename Real>
void BatchedStateVectorT<Real>::apply_global_phase(double phase) {
  for (double& p : pending_) p += phase;
}

template <typename Real>
void BatchedStateVectorT<Real>::apply_lane_global_phase(int lane,
                                                        double phase) {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  pending_[static_cast<std::size_t>(lane)] += phase;
}

template <typename Real>
std::vector<double> BatchedStateVectorT<Real>::lane_probabilities(
    int lane) const {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  const u64 L = static_cast<u64>(lanes_);
  const u64 col = static_cast<u64>(lane);
  std::vector<double> p(dim());
  for (u64 i = 0; i < p.size(); ++i) {
    const double ar = re_[i * L + col], ai = im_[i * L + col];
    p[i] = ar * ar + ai * ai;
  }
  return p;
}

template <typename Real>
std::vector<double> BatchedStateVectorT<Real>::lane_marginal_probabilities(
    int lane, const std::vector<int>& qubits) const {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  QFAB_CHECK(!qubits.empty() &&
             qubits.size() <= static_cast<std::size_t>(num_qubits_));
  for (int q : qubits) QFAB_CHECK(q >= 0 && q < num_qubits_);
  std::vector<double> out(pow2(static_cast<int>(qubits.size())), 0.0);
  const u64 L = static_cast<u64>(lanes_);
  const u64 col = static_cast<u64>(lane);
  const u64 n = dim();
  bool contiguous = true;
  for (std::size_t b = 0; b < qubits.size(); ++b)
    if (qubits[b] != qubits[0] + static_cast<int>(b)) {
      contiguous = false;
      break;
    }
  if (contiguous) {
    const int shift = qubits[0];
    const u64 mask = static_cast<u64>(out.size()) - 1;
    for (u64 i = 0; i < n; ++i) {
      const double ar = re_[i * L + col], ai = im_[i * L + col];
      out[(i >> shift) & mask] += ar * ar + ai * ai;
    }
    return out;
  }
  for (u64 i = 0; i < n; ++i) {
    const double ar = re_[i * L + col], ai = im_[i * L + col];
    const double pr = ar * ar + ai * ai;
    if (pr == 0.0) continue;
    u64 key = 0;
    for (std::size_t b = 0; b < qubits.size(); ++b)
      key |= static_cast<u64>(get_bit(i, qubits[b])) << b;
    out[key] += pr;
  }
  return out;
}

template <typename Real>
std::vector<std::vector<double>>
BatchedStateVectorT<Real>::all_lane_marginal_probabilities(
    const std::vector<int>& qubits) const {
  std::vector<std::vector<double>> out;
  std::vector<double> scratch;
  all_lane_marginal_probabilities(qubits, out, scratch);
  return out;
}

template <typename Real>
void BatchedStateVectorT<Real>::all_lane_marginal_probabilities(
    const std::vector<int>& qubits, std::vector<std::vector<double>>& out,
    std::vector<double>& scratch) const {
  QFAB_CHECK(!qubits.empty() &&
             qubits.size() <= static_cast<std::size_t>(num_qubits_));
  for (int q : qubits) QFAB_CHECK(q >= 0 && q < num_qubits_);
  const u64 L = static_cast<u64>(lanes_);
  const u64 n = dim();
  const u64 out_size = pow2(static_cast<int>(qubits.size()));
  bool contiguous = true;
  for (std::size_t b = 0; b < qubits.size(); ++b)
    if (qubits[b] != qubits[0] + static_cast<int>(b)) {
      contiguous = false;
      break;
    }
  // acc[key * L + lane]: per amplitude row the accumulation is one
  // unit-stride fused multiply-add over the lanes (always in double, so
  // the float tier loses precision only in the amplitudes themselves, not
  // the reduction). Additions land per (lane, key) in ascending amplitude
  // order — exactly the order lane_marginal_probabilities uses — so the
  // results are bitwise equal.
  scratch.assign(out_size * L, 0.0);
  double* acc = scratch.data();
  const int shift = qubits[0];
  const u64 mask = out_size - 1;
  for (u64 i = 0; i < n; ++i) {
    u64 key;
    if (contiguous) {
      key = (i >> shift) & mask;
    } else {
      key = 0;
      for (std::size_t b = 0; b < qubits.size(); ++b)
        key |= static_cast<u64>(get_bit(i, qubits[b])) << b;
    }
    const Real* r = re_.data() + i * L;
    const Real* m = im_.data() + i * L;
    double* a = acc + key * L;
    for (u64 l = 0; l < L; ++l) {
      const double ar = r[l], ai = m[l];
      a[l] += ar * ar + ai * ai;
    }
  }
  out.resize(static_cast<std::size_t>(lanes_));
  for (u64 l = 0; l < L; ++l) {
    out[l].resize(out_size);
    for (u64 k = 0; k < out_size; ++k) out[l][k] = acc[k * L + l];
  }
}

template <typename Real>
double BatchedStateVectorT<Real>::lane_norm(int lane) const {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  const u64 L = static_cast<u64>(lanes_);
  const u64 col = static_cast<u64>(lane);
  double s = 0.0;
  for (u64 i = 0; i < dim(); ++i) {
    const double ar = re_[i * L + col], ai = im_[i * L + col];
    s += ar * ar + ai * ai;
  }
  return std::sqrt(s);
}

template class BatchedStateVectorT<double>;
template class BatchedStateVectorT<float>;

template void BatchedStateVectorT<double>::assign_permuted<double>(
    const BatchedStateVectorT<double>&, const std::vector<int>&);
template void BatchedStateVectorT<double>::assign_permuted<float>(
    const BatchedStateVectorT<float>&, const std::vector<int>&);
template void BatchedStateVectorT<float>::assign_permuted<double>(
    const BatchedStateVectorT<double>&, const std::vector<int>&);
template void BatchedStateVectorT<float>::assign_permuted<float>(
    const BatchedStateVectorT<float>&, const std::vector<int>&);

// ---------------------------------------------------------------------------
// Batched plan execution
// ---------------------------------------------------------------------------

namespace {

/// Scalar op work routed to the lanes' pending phases exactly once per op
/// (never per tile): RZ prefactors of passthrough gates and k = 0 diagonal
/// ops (identity-up-to-phase products).
template <typename Real>
void add_pending(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
                 const FusedOp& op) {
  if (op.kind == FusedOp::Kind::kGate) {
    const Gate& gate = plan.circuit().gates()[op.gate_begin];
    if (gate.kind == GateKind::kRZ)
      bsv.apply_global_phase(-gate.params[0] / 2);
  } else if (op.kind == FusedOp::Kind::kDiagonal && op.qubits.empty()) {
    bsv.apply_global_phase(std::arg(op.phases[0]));
  }
}

/// add_pending scoped to a contiguous lane span (walk op steps carry one):
/// the same per-lane `+=` the full-width overload performs, restricted to
/// lanes [lane_begin, lane_begin + lane_count).
template <typename Real>
void add_pending_span(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
                      const FusedOp& op, int lane_begin, int lane_count) {
  if (op.kind == FusedOp::Kind::kGate) {
    const Gate& gate = plan.circuit().gates()[op.gate_begin];
    if (gate.kind != GateKind::kRZ) return;
    for (int l = lane_begin; l < lane_begin + lane_count; ++l)
      bsv.apply_lane_global_phase(l, -gate.params[0] / 2);
  } else if (op.kind == FusedOp::Kind::kDiagonal && op.qubits.empty()) {
    for (int l = lane_begin; l < lane_begin + lane_count; ++l)
      bsv.apply_lane_global_phase(l, std::arg(op.phases[0]));
  }
}

template <typename Real>
void apply_chunk(const BatchKernelTable<Real>& K, const FusedPlan& plan,
                 Real* re, Real* im, u64 base, u64 len, u64 L, u64 G,
                 const FusedOp& op) {
  switch (op.kind) {
    case FusedOp::Kind::kMatrix1:
      if (detail::batch_fault_injection()) {
        // Emulated kernel regression (see batch.h): one flipped sign.
        const cplx m[4] = {op.m[0], op.m[1], op.m[2], -op.m[3]};
        K.matrix1(re, im, base, len, L, G, op.q0, m);
        return;
      }
      K.matrix1(re, im, base, len, L, G, op.q0, op.m.data());
      return;
    case FusedOp::Kind::kMatrix2:
      K.matrix2(re, im, base, len, L, G, op.q0, op.q1, op.m.data());
      return;
    case FusedOp::Kind::kDiagonal:
      if (op.qubits.empty()) return;  // handled by add_pending
      if (op.qubits.size() == 1)
        K.diag1(re, im, base, len, L, G, op.qubits[0], op.phases.data());
      else
        K.diag(re, im, base, len, L, G, op.shifts.data(),
               static_cast<int>(op.shifts.size()), op.phases.data());
      return;
    case FusedOp::Kind::kGate:
      K.gate(re, im, base, len, L, G, plan.circuit().gates()[op.gate_begin]);
      return;
  }
}

/// Group-walk chunk dispatch for ops whose coupling mask reaches at or
/// above the tile: routes through the *g kernel variants, which address
/// the XOR-partner rows absolutely in the sibling tiles the group walk
/// keeps resident. Diagonal ops never couple rows and stay on the
/// ordinary global-keyed kernels.
template <typename Real>
void apply_chunk_group(const BatchKernelTable<Real>& K, const FusedPlan& plan,
                       Real* re, Real* im, u64 base, u64 len, u64 L, u64 G,
                       const FusedOp& op) {
  switch (op.kind) {
    case FusedOp::Kind::kMatrix1:
      if (detail::batch_fault_injection()) {
        // Emulated kernel regression (see batch.h): one flipped sign.
        const cplx m[4] = {op.m[0], op.m[1], op.m[2], -op.m[3]};
        K.matrix1g(re, im, base, len, L, G, op.q0, m);
        return;
      }
      K.matrix1g(re, im, base, len, L, G, op.q0, op.m.data());
      return;
    case FusedOp::Kind::kMatrix2:
      K.matrix2g(re, im, base, len, L, G, op.q0, op.q1, op.m.data());
      return;
    case FusedOp::Kind::kDiagonal:
      apply_chunk(K, plan, re, im, base, len, L, G, op);
      return;
    case FusedOp::Kind::kGate:
      K.gateg(re, im, base, len, L, G, plan.circuit().gates()[op.gate_begin]);
      return;
  }
}

/// Apply whole ops [op_lo, op_hi), cache-blocked lane-aware:
///
///  - Runs of tile-eligible ops execute as full-width amp-tile blocks, ops
///    inner, with the tile height shrunk so 2^tb rows × L lanes × 2 planes
///    stays on the scalar path's 2^tile_bits-amplitude (32 KiB) L1 budget
///    at every (L, precision). One tile of rows takes the whole run before
///    the next tile streams in.
///
///  - Wide (non-eligible) ops execute as plain full-width passes.
///
/// Both always cover all L lanes of a row at once: lanes are interleaved,
/// so any lane-subset pass is strided (touch part of a row, skip the
/// rest), and measurement showed that costs ~2x at batch=16 double — the
/// adjacent-line prefetch pulls the skipped lanes anyway, doubling the
/// effective traffic. Contiguous full-width streaming is what keeps
/// ms/lane flat from batch=4 through batch=16.
template <typename Real>
void apply_ops_batched(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
                       std::size_t op_lo, std::size_t op_hi) {
  const BatchKernelTable<Real>& K = active_table<Real>();
  const auto& ops = plan.ops();
  Real* re = bsv.re();
  Real* im = bsv.im();
  const u64 L = static_cast<u64>(bsv.lanes());
  const u64 n = bsv.dim();
  const int tb = batched_tile_rows_log2(plan.options(), bsv.lanes(),
                                        bsv.num_qubits(), sizeof(Real));
  const u64 tile = u64{1} << tb;

  std::size_t i = op_lo;
  while (i < op_hi) {
    if (plan.op_tile_eligible(i, tb)) {
      std::size_t j = i;
      while (j < op_hi && plan.op_tile_eligible(j, tb)) ++j;
      for (std::size_t k = i; k < j; ++k) add_pending(plan, bsv, ops[k]);
      for (u64 base = 0; base < n; base += tile)
        for (std::size_t k = i; k < j; ++k)
          apply_chunk(K, plan, re + base * L, im + base * L, base, tile, L, L,
                      ops[k]);
      i = j;
    } else {
      std::size_t j = i;
      while (j < op_hi && !plan.op_tile_eligible(j, tb)) ++j;
      for (std::size_t k = i; k < j; ++k) add_pending(plan, bsv, ops[k]);
      for (std::size_t k = i; k < j; ++k)
        apply_chunk(K, plan, re, im, 0, n, L, L, ops[k]);
      i = j;
    }
  }
}

/// Batched per-gate fallback for partially covered ops.
template <typename Real>
void apply_gates_batched(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
                         std::size_t gate_begin, std::size_t gate_end) {
  const BatchKernelTable<Real>& K = active_table<Real>();
  Real* re = bsv.re();
  Real* im = bsv.im();
  const u64 L = static_cast<u64>(bsv.lanes());
  const u64 n = bsv.dim();
  for (std::size_t g = gate_begin; g < gate_end; ++g) {
    const Gate& gate = plan.circuit().gates()[g];
    if (gate.kind == GateKind::kRZ)
      bsv.apply_global_phase(-gate.params[0] / 2);
    K.gate(re, im, 0, n, L, L, gate);
  }
}

/// Single-lane Pauli on the amplitude rows [base, base + len) of the
/// global vector, with re/im already offset to base * L (the tile walk's
/// chunk contract). The arithmetic per amplitude is exactly
/// BatchedStateVectorT::apply_pauli's — swaps, negations and sign flips,
/// all exact — only restricted to the tile:
///  - X/Y pair rows within the chunk when 2^q < len; at or above the
///    chunk they pair with the XOR-sibling tile 2^q rows up (the group
///    walk keeps it resident), the clear tile writing both sides;
///  - Z keys off the GLOBAL row index, so a bit at or above the chunk
///    negates the whole tile or leaves it untouched (base decides), which
///    is what makes Z tile-eligible at any qubit span.
template <typename Real>
void apply_pauli_rows(Real* re, Real* im, u64 base, u64 len, u64 L, int lane,
                      Pauli p, int q) {
  const u64 col = static_cast<u64>(lane);
  const u64 bit = u64{1} << q;
  switch (p) {
    case Pauli::kI:
      return;
    case Pauli::kX:
      if (bit >= len) {
        if (base & bit) return;  // partner side; the clear tile does both
        for (u64 off = 0; off < len; ++off) {
          const u64 i0 = off * L + col;
          const u64 i1 = (off + bit) * L + col;
          std::swap(re[i0], re[i1]);
          std::swap(im[i0], im[i1]);
        }
        return;
      }
      for (u64 lo = 0; lo < len; lo += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i0 = (lo + off) * L + col;
          const u64 i1 = (lo + off + bit) * L + col;
          std::swap(re[i0], re[i1]);
          std::swap(im[i0], im[i1]);
        }
      return;
    case Pauli::kY:
      if (bit >= len) {
        if (base & bit) return;  // partner side; the clear tile does both
        for (u64 off = 0; off < len; ++off) {
          const u64 i0 = off * L + col;
          const u64 i1 = (off + bit) * L + col;
          const Real v0r = re[i0], v0i = im[i0];
          const Real v1r = re[i1], v1i = im[i1];
          re[i0] = v1i;   // -i * v1
          im[i0] = -v1r;
          re[i1] = -v0i;  //  i * v0
          im[i1] = v0r;
        }
        return;
      }
      for (u64 lo = 0; lo < len; lo += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i0 = (lo + off) * L + col;
          const u64 i1 = (lo + off + bit) * L + col;
          const Real v0r = re[i0], v0i = im[i0];
          const Real v1r = re[i1], v1i = im[i1];
          re[i0] = v1i;   // -i * v1
          im[i0] = -v1r;
          re[i1] = -v0i;  //  i * v0
          im[i1] = v0r;
        }
      return;
    case Pauli::kZ:
      if (bit >= len) {
        if (!(base & bit)) return;
        for (u64 i = 0; i < len; ++i) {
          const u64 k = i * L + col;
          re[k] = -re[k];
          im[k] = -im[k];
        }
        return;
      }
      for (u64 lo = bit; lo < len; lo += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 k = (lo + off) * L + col;
          re[k] = -re[k];
          im[k] = -im[k];
        }
      return;
  }
}

// QFAB_FAULT nan-at-gate hook, batched counterpart of the one in
// fusion.cpp: after a pass that executed the targeted gate, poison lane 0's
// first amplitude with a quiet NaN. Inert without the env directive.
template <typename Real>
void maybe_inject_nan(BatchedStateVectorT<Real>& bsv, std::size_t gate_begin,
                      std::size_t gate_end) {
  if (fault::nan_fault_active() && fault::take_nan_charge(gate_begin, gate_end))
    bsv.re()[0] = std::numeric_limits<Real>::quiet_NaN();
}

}  // namespace

template <typename Real>
void apply_plan(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv) {
  QFAB_CHECK(bsv.num_qubits() == plan.circuit().num_qubits());
  apply_ops_batched(plan, bsv, 0, plan.op_count());
  bsv.apply_global_phase(plan.circuit().global_phase());
  maybe_inject_nan(bsv, 0, plan.gate_count());
}

template <typename Real>
void apply_plan_range(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
                      std::size_t gate_begin, std::size_t gate_end) {
  QFAB_CHECK(bsv.num_qubits() == plan.circuit().num_qubits());
  QFAB_CHECK(gate_begin <= gate_end && gate_end <= plan.gate_count());
  const auto& ops = plan.ops();
  std::size_t g = gate_begin;
  while (g < gate_end) {
    const std::size_t oi = plan.op_of_gate(g);
    const FusedOp& op = ops[oi];
    if (op.gate_begin == g && op.gate_end <= gate_end) {
      // Maximal run of fully covered ops, executed fused (cache-blocked).
      std::size_t oj = oi;
      while (oj < ops.size() && ops[oj].gate_end <= gate_end) ++oj;
      apply_ops_batched(plan, bsv, oi, oj);
      g = ops[oj - 1].gate_end;
    } else {
      // The split lands inside this op (per-lane noise injection can split
      // anywhere). Multi-gate slices run through a cached fused plan of
      // the slice itself — a handful of passes instead of one full pass
      // per gate, which dominates trajectory replay when a split lands in
      // a big collapsed diagonal.
      const std::size_t stop = std::min(gate_end, op.gate_end);
      if (stop - g >= 2) {
        const FusedPlan& sub = plan.subrange_plan(g, stop);
        apply_ops_batched(sub, bsv, 0, sub.op_count());
      } else {
        apply_gates_batched(plan, bsv, g, stop);
      }
      g = stop;
    }
  }
  maybe_inject_nan(bsv, gate_begin, gate_end);
}

template void apply_plan<double>(const FusedPlan&, BatchedStateVector&);
template void apply_plan<float>(const FusedPlan&, BatchedStateVectorF&);
template void apply_plan_range<double>(const FusedPlan&, BatchedStateVector&,
                                       std::size_t, std::size_t);
template void apply_plan_range<float>(const FusedPlan&, BatchedStateVectorF&,
                                      std::size_t, std::size_t);

int batched_tile_rows_log2(const FusionOptions& options, int lanes,
                           int num_qubits, std::size_t real_size) {
  // Rows per tile: keep rows × lanes × 2 planes × sizeof(Real) equal to
  // the scalar path's 2^tile_bits × sizeof(cplx) L1 budget.
  int tb = options.tile_bits + 4 -
           ceil_log2(2 * static_cast<u64>(lanes) * static_cast<u64>(real_size));
  tb = std::max(tb, 4);
  tb = std::min(tb, num_qubits);
  return tb;
}

template <typename Real>
void apply_batch_walk(const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
                      const BatchWalkStep* steps, std::size_t count) {
  QFAB_CHECK(bsv.num_qubits() == plan.circuit().num_qubits());
  const BatchKernelTable<Real>& K = active_table<Real>();
  Real* re = bsv.re();
  Real* im = bsv.im();
  const u64 L = static_cast<u64>(bsv.lanes());
  const u64 n = bsv.dim();
  const int tb = batched_tile_rows_log2(plan.options(), bsv.lanes(),
                                        bsv.num_qubits(), sizeof(Real));
  const u64 tile = u64{1} << tb;
  const u64 low = tile - 1;

  // Every step couples row r only with rows r ^ m for m in the span of its
  // coupling mask (ops: FusedPlan::op_coupling_mask; lane X/Y: their
  // qubit; Z/I and diagonals: nothing). A run therefore never needs a
  // full-width pass: tiles walk in XOR-groups — the 2^|B| sibling tiles
  // reached by the run's high coupling bits B stay resident together, and
  // high-coupling steps address their partner rows absolutely in those
  // siblings. The cap bounds the co-resident set to 8 tiles (L2-sized at
  // the L1 tile budget); a run ends only when admitting the next step
  // would push |B| past it, which replaces the old per-step full-width
  // fallback — the measured cause of the batch=16 lane-scaling inversion,
  // since every injection split used to shed high-qubit sub-ops that broke
  // the walk into full-vector passes.
  constexpr int kGroupBitsCap = 3;

  const auto coupling_high = [&](const BatchWalkStep& s) -> u64 {
    if (s.plan != nullptr) return s.plan->op_coupling_mask(s.op) & ~low;
    if (s.pauli == Pauli::kX || s.pauli == Pauli::kY)
      return (u64{1} << s.qubit) & ~low;
    return 0;
  };

  std::size_t i = 0;
  while (i < count) {
    // Maximal run whose union of high coupling bits fits the group cap.
    u64 B = 0;
    std::size_t j = i;
    while (j < count) {
      const u64 nb = B | coupling_high(steps[j]);
      if (std::popcount(nb) > kGroupBitsCap) break;
      B = nb;
      ++j;
    }
    // Lane span of an op step: [sb, sb + sc) columns of every row.
    const auto span_of = [&](const BatchWalkStep& s, int& sb, int& sc) {
      sb = s.lane_begin;
      sc = s.lane_count < 0 ? bsv.lanes() - sb : s.lane_count;
    };
    if (j == i) {
      // Lone step with more high coupling bits than the cap (cannot occur
      // with today's ops, which couple at most two qubits): full width.
      const BatchWalkStep& s = steps[i];
      if (s.plan != nullptr) {
        int sb, sc;
        span_of(s, sb, sc);
        const FusedOp& op = s.plan->ops()[s.op];
        add_pending_span(*s.plan, bsv, op, sb, sc);
        apply_chunk(K, *s.plan, re + sb, im + sb, 0, n, L,
                    static_cast<u64>(sc), op);
      } else {
        bsv.apply_pauli(s.lane, s.pauli, s.qubit);
      }
      ++i;
      continue;
    }
    // Pending phases land once per op span in step order (never per
    // tile), matching the per-lane schedule's accumulation sequence.
    for (std::size_t k = i; k < j; ++k)
      if (steps[k].plan != nullptr) {
        int sb, sc;
        span_of(steps[k], sb, sc);
        add_pending_span(*steps[k].plan, bsv,
                         steps[k].plan->ops()[steps[k].op], sb, sc);
      }
    // Tile-base offsets of the group: every subset of B.
    u64 bits[kGroupBitsCap];
    int gbits = 0;
    for (u64 m = B; m != 0; m &= m - 1) bits[gbits++] = m & (0 - m);
    const int nsub = 1 << gbits;
    u64 suboff[std::size_t{1} << kGroupBitsCap];
    for (int sub = 0; sub < nsub; ++sub) {
      u64 off = 0;
      for (int b = 0; b < gbits; ++b)
        if (sub & (1 << b)) off |= bits[b];
      suboff[sub] = off;
    }
    for (u64 gb = 0; gb < n; gb += tile) {
      if (gb & B) continue;  // visited as a sibling of its clear base
      for (std::size_t k = i; k < j; ++k) {
        const BatchWalkStep& s = steps[k];
        int sb, sc;
        span_of(s, sb, sc);
        for (int sub = 0; sub < nsub; ++sub) {
          const u64 tbase = gb | suboff[sub];
          Real* tre = re + tbase * L + sb;
          Real* tim = im + tbase * L + sb;
          if (s.plan != nullptr) {
            const FusedOp& op = s.plan->ops()[s.op];
            // Group kernels whenever ANY op qubit is above the tile — not
            // just coupled ones: a high CX control never pairs rows across
            // tiles (so it adds nothing to B) but still overruns the plain
            // in-chunk kernel's index space.
            if (op.kind != FusedOp::Kind::kDiagonal && op.max_qubit >= tb)
              apply_chunk_group(K, *s.plan, tre, tim, tbase, tile, L,
                                static_cast<u64>(sc), op);
            else
              apply_chunk(K, *s.plan, tre, tim, tbase, tile, L,
                          static_cast<u64>(sc), op);
          } else {
            apply_pauli_rows(tre - sb, tim - sb, tbase, tile, L, s.lane,
                             s.pauli, s.qubit);
          }
        }
      }
    }
    i = j;
  }
}

template void apply_batch_walk<double>(const FusedPlan&, BatchedStateVector&,
                                       const BatchWalkStep*, std::size_t);
template void apply_batch_walk<float>(const FusedPlan&, BatchedStateVectorF&,
                                      const BatchWalkStep*, std::size_t);

}  // namespace qfab
