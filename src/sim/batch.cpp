#include "sim/batch.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <limits>

#include "common/bits.h"
#include "common/check.h"
#include "common/fault.h"

namespace qfab {

namespace detail {

namespace {
std::atomic<bool> g_batch_fault{false};
}  // namespace

void set_batch_fault_injection(bool on) {
  g_batch_fault.store(on, std::memory_order_relaxed);
}

bool batch_fault_injection() {
  return g_batch_fault.load(std::memory_order_relaxed);
}

}  // namespace detail

namespace {

cplx expi(double t) { return {std::cos(t), std::sin(t)}; }

/// One resolved set of batched kernels (scalar or AVX2 build of the same
/// bodies). Selected once at startup, swappable via set_simd_mode().
struct BatchKernelTable {
  void (*matrix1)(double*, double*, u64, u64, int, const cplx*);
  void (*matrix2)(double*, double*, u64, u64, int, int, const cplx*);
  void (*diag1)(double*, double*, u64, u64, int, const cplx*);
  void (*diag)(double*, double*, u64, u64, const FusedOp::DiagShift*, int,
               const cplx*);
  void (*phase_on_bit)(double*, double*, u64, u64, int, cplx);
  void (*gate)(double*, double*, u64, u64, const Gate&);
};

#define QFAB_RESTRICT __restrict__

// Portable build of the kernel bodies: plain C++, autovectorized for the
// baseline ISA. This is the fallback CI pins with QFAB_SIMD=scalar.
namespace ker_scalar {
#define QFAB_KERNEL_ATTR
#include "sim/batch_kernels.inc"
#undef QFAB_KERNEL_ATTR
}  // namespace ker_scalar

#if (defined(__x86_64__) || defined(__i386__)) && \
    (defined(__GNUC__) || defined(__clang__)) && !defined(QFAB_SIMD_SCALAR_ONLY)
#define QFAB_HAVE_AVX2_TABLE 1
// AVX2+FMA build of the same bodies: the target attribute lets the
// compiler emit 256-bit FMA code for exactly these functions, so the
// binary stays runnable on any x86-64 host.
namespace ker_avx2 {
#define QFAB_KERNEL_ATTR __attribute__((target("avx2,fma")))
#include "sim/batch_kernels.inc"
#undef QFAB_KERNEL_ATTR
}  // namespace ker_avx2
#else
#define QFAB_HAVE_AVX2_TABLE 0
#endif

const BatchKernelTable kScalarTable = ker_scalar::kernel_table();
#if QFAB_HAVE_AVX2_TABLE
const BatchKernelTable kAvx2Table = ker_avx2::kernel_table();
#endif

bool cpu_has_avx2() {
#if QFAB_HAVE_AVX2_TABLE
  return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
#else
  return false;
#endif
}

/// The requested mode before resolution: build default, then environment.
SimdMode requested_mode() {
#if defined(QFAB_SIMD_SCALAR_ONLY)
  SimdMode mode = SimdMode::kScalar;
#elif defined(QFAB_SIMD_FORCE_AVX2)
  SimdMode mode = SimdMode::kAvx2;
#else
  SimdMode mode = SimdMode::kAuto;
#endif
  if (const char* env = std::getenv("QFAB_SIMD")) {
    if (std::strcmp(env, "scalar") == 0) mode = SimdMode::kScalar;
    else if (std::strcmp(env, "avx2") == 0) mode = SimdMode::kAvx2;
    else if (std::strcmp(env, "auto") == 0) mode = SimdMode::kAuto;
  }
  return mode;
}

const BatchKernelTable* resolve(SimdMode mode) {
  if (mode == SimdMode::kAuto)
    mode = cpu_has_avx2() ? SimdMode::kAvx2 : SimdMode::kScalar;
#if QFAB_HAVE_AVX2_TABLE
  if (mode == SimdMode::kAvx2 && cpu_has_avx2()) return &kAvx2Table;
#endif
  return &kScalarTable;
}

std::atomic<const BatchKernelTable*>& table_slot() {
  static std::atomic<const BatchKernelTable*> slot{resolve(requested_mode())};
  return slot;
}

const BatchKernelTable& active_table() {
  return *table_slot().load(std::memory_order_relaxed);
}

}  // namespace

SimdMode simd_mode() {
#if QFAB_HAVE_AVX2_TABLE
  if (&active_table() == &kAvx2Table) return SimdMode::kAvx2;
#endif
  return SimdMode::kScalar;
}

void set_simd_mode(SimdMode mode) {
  table_slot().store(resolve(mode), std::memory_order_relaxed);
}

const char* simd_mode_name() {
  return simd_mode() == SimdMode::kAvx2 ? "avx2" : "scalar";
}

// ---------------------------------------------------------------------------
// BatchedStateVector
// ---------------------------------------------------------------------------

BatchedStateVector::BatchedStateVector(int num_qubits, int lanes)
    : num_qubits_(num_qubits), lanes_(lanes) {
  QFAB_CHECK_MSG(num_qubits >= 1 && num_qubits <= 30,
                 "unsupported qubit count " << num_qubits);
  QFAB_CHECK_MSG(lanes >= 1 && lanes <= kMaxLanes,
                 "unsupported lane count " << lanes);
  const std::size_t total = dim() * static_cast<std::size_t>(lanes_);
  re_.assign(total, 0.0);
  im_.assign(total, 0.0);
  pending_.assign(static_cast<std::size_t>(lanes_), 0.0);
  for (int l = 0; l < lanes_; ++l) re_[static_cast<std::size_t>(l)] = 1.0;
}

void BatchedStateVector::reset(int num_qubits, int lanes) {
  QFAB_CHECK_MSG(num_qubits >= 1 && num_qubits <= 30,
                 "unsupported qubit count " << num_qubits);
  QFAB_CHECK_MSG(lanes >= 1 && lanes <= kMaxLanes,
                 "unsupported lane count " << lanes);
  num_qubits_ = num_qubits;
  lanes_ = lanes;
  const std::size_t total = dim() * static_cast<std::size_t>(lanes_);
  re_.resize(total);
  im_.resize(total);
  pending_.resize(static_cast<std::size_t>(lanes_));
}

void BatchedStateVector::set_lane(int lane, const StateVector& sv) {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  QFAB_CHECK(sv.num_qubits() == num_qubits_);
  const std::vector<cplx>& a = sv.amplitudes();
  const u64 L = static_cast<u64>(lanes_);
  for (u64 i = 0; i < a.size(); ++i) {
    re_[i * L + static_cast<u64>(lane)] = a[i].real();
    im_[i * L + static_cast<u64>(lane)] = a[i].imag();
  }
  pending_[static_cast<std::size_t>(lane)] = 0.0;
}

void BatchedStateVector::broadcast(const StateVector& sv) {
  QFAB_CHECK(sv.num_qubits() == num_qubits_);
  const std::vector<cplx>& a = sv.amplitudes();
  const u64 L = static_cast<u64>(lanes_);
  for (u64 i = 0; i < a.size(); ++i) {
    const double ar = a[i].real(), ai = a[i].imag();
    double* r = re_.data() + i * L;
    double* m = im_.data() + i * L;
    for (u64 l = 0; l < L; ++l) {
      r[l] = ar;
      m[l] = ai;
    }
  }
  std::fill(pending_.begin(), pending_.end(), 0.0);
}

StateVector BatchedStateVector::lane_state(int lane) const {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  const u64 L = static_cast<u64>(lanes_);
  const cplx ph = expi(pending_[static_cast<std::size_t>(lane)]);
  std::vector<cplx> amps(dim());
  for (u64 i = 0; i < amps.size(); ++i)
    amps[i] = cplx{re_[i * L + static_cast<u64>(lane)],
                   im_[i * L + static_cast<u64>(lane)]} *
              ph;
  return StateVector::from_amplitudes(std::move(amps));
}

void BatchedStateVector::assign_permuted(const BatchedStateVector& src,
                                         const std::vector<int>& lane_map) {
  QFAB_CHECK(this != &src);
  QFAB_CHECK(!lane_map.empty() &&
             lane_map.size() <= static_cast<std::size_t>(kMaxLanes));
  for (int l : lane_map) QFAB_CHECK(l >= 0 && l < src.lanes_);
  num_qubits_ = src.num_qubits_;
  lanes_ = static_cast<int>(lane_map.size());
  const u64 L = static_cast<u64>(lanes_);
  const u64 S = static_cast<u64>(src.lanes_);
  const u64 n = dim();
  re_.resize(n * L);
  im_.resize(n * L);
  pending_.resize(L);
  for (u64 j = 0; j < L; ++j)
    pending_[j] = src.pending_[static_cast<std::size_t>(lane_map[j])];
  for (u64 i = 0; i < n; ++i) {
    const double* sr = src.re_.data() + i * S;
    const double* sm = src.im_.data() + i * S;
    double* dr = re_.data() + i * L;
    double* dm = im_.data() + i * L;
    for (u64 j = 0; j < L; ++j) {
      const u64 s = static_cast<u64>(lane_map[j]);
      dr[j] = sr[s];
      dm[j] = sm[s];
    }
  }
}

void BatchedStateVector::apply_pauli(int lane, Pauli p, int q) {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  QFAB_CHECK(q >= 0 && q < num_qubits_);
  const u64 L = static_cast<u64>(lanes_);
  const u64 col = static_cast<u64>(lane);
  const u64 bit = u64{1} << q;
  const u64 n = dim();
  double* r = re_.data();
  double* m = im_.data();
  switch (p) {
    case Pauli::kI:
      return;
    case Pauli::kX:
      for (u64 base = 0; base < n; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i0 = (base + off) * L + col;
          const u64 i1 = (base + off + bit) * L + col;
          std::swap(r[i0], r[i1]);
          std::swap(m[i0], m[i1]);
        }
      return;
    case Pauli::kY:
      for (u64 base = 0; base < n; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i0 = (base + off) * L + col;
          const u64 i1 = (base + off + bit) * L + col;
          const double v0r = r[i0], v0i = m[i0];
          const double v1r = r[i1], v1i = m[i1];
          r[i0] = v1i;   // -i * v1
          m[i0] = -v1r;
          r[i1] = -v0i;  //  i * v0
          m[i1] = v0r;
        }
      return;
    case Pauli::kZ:
      for (u64 base = bit; base < n; base += 2 * bit)
        for (u64 off = 0; off < bit; ++off) {
          const u64 i = (base + off) * L + col;
          r[i] = -r[i];
          m[i] = -m[i];
        }
      return;
  }
}

void BatchedStateVector::apply_global_phase(double phase) {
  for (double& p : pending_) p += phase;
}

void BatchedStateVector::apply_lane_global_phase(int lane, double phase) {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  pending_[static_cast<std::size_t>(lane)] += phase;
}

std::vector<double> BatchedStateVector::lane_probabilities(int lane) const {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  const u64 L = static_cast<u64>(lanes_);
  const u64 col = static_cast<u64>(lane);
  std::vector<double> p(dim());
  for (u64 i = 0; i < p.size(); ++i) {
    const double ar = re_[i * L + col], ai = im_[i * L + col];
    p[i] = ar * ar + ai * ai;
  }
  return p;
}

std::vector<double> BatchedStateVector::lane_marginal_probabilities(
    int lane, const std::vector<int>& qubits) const {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  QFAB_CHECK(!qubits.empty() &&
             qubits.size() <= static_cast<std::size_t>(num_qubits_));
  for (int q : qubits) QFAB_CHECK(q >= 0 && q < num_qubits_);
  std::vector<double> out(pow2(static_cast<int>(qubits.size())), 0.0);
  const u64 L = static_cast<u64>(lanes_);
  const u64 col = static_cast<u64>(lane);
  const u64 n = dim();
  bool contiguous = true;
  for (std::size_t b = 0; b < qubits.size(); ++b)
    if (qubits[b] != qubits[0] + static_cast<int>(b)) {
      contiguous = false;
      break;
    }
  if (contiguous) {
    const int shift = qubits[0];
    const u64 mask = static_cast<u64>(out.size()) - 1;
    for (u64 i = 0; i < n; ++i) {
      const double ar = re_[i * L + col], ai = im_[i * L + col];
      out[(i >> shift) & mask] += ar * ar + ai * ai;
    }
    return out;
  }
  for (u64 i = 0; i < n; ++i) {
    const double ar = re_[i * L + col], ai = im_[i * L + col];
    const double pr = ar * ar + ai * ai;
    if (pr == 0.0) continue;
    u64 key = 0;
    for (std::size_t b = 0; b < qubits.size(); ++b)
      key |= static_cast<u64>(get_bit(i, qubits[b])) << b;
    out[key] += pr;
  }
  return out;
}

std::vector<std::vector<double>>
BatchedStateVector::all_lane_marginal_probabilities(
    const std::vector<int>& qubits) const {
  std::vector<std::vector<double>> out;
  std::vector<double> scratch;
  all_lane_marginal_probabilities(qubits, out, scratch);
  return out;
}

void BatchedStateVector::all_lane_marginal_probabilities(
    const std::vector<int>& qubits, std::vector<std::vector<double>>& out,
    std::vector<double>& scratch) const {
  QFAB_CHECK(!qubits.empty() &&
             qubits.size() <= static_cast<std::size_t>(num_qubits_));
  for (int q : qubits) QFAB_CHECK(q >= 0 && q < num_qubits_);
  const u64 L = static_cast<u64>(lanes_);
  const u64 n = dim();
  const u64 out_size = pow2(static_cast<int>(qubits.size()));
  bool contiguous = true;
  for (std::size_t b = 0; b < qubits.size(); ++b)
    if (qubits[b] != qubits[0] + static_cast<int>(b)) {
      contiguous = false;
      break;
    }
  // acc[key * L + lane]: per amplitude row the accumulation is one
  // unit-stride fused multiply-add over the lanes. Additions land per
  // (lane, key) in ascending amplitude order — exactly the order
  // lane_marginal_probabilities uses — so the results are bitwise equal.
  scratch.assign(out_size * L, 0.0);
  double* acc = scratch.data();
  const int shift = qubits[0];
  const u64 mask = out_size - 1;
  for (u64 i = 0; i < n; ++i) {
    u64 key;
    if (contiguous) {
      key = (i >> shift) & mask;
    } else {
      key = 0;
      for (std::size_t b = 0; b < qubits.size(); ++b)
        key |= static_cast<u64>(get_bit(i, qubits[b])) << b;
    }
    const double* r = re_.data() + i * L;
    const double* m = im_.data() + i * L;
    double* a = acc + key * L;
    for (u64 l = 0; l < L; ++l) a[l] += r[l] * r[l] + m[l] * m[l];
  }
  out.resize(static_cast<std::size_t>(lanes_));
  for (u64 l = 0; l < L; ++l) {
    out[l].resize(out_size);
    for (u64 k = 0; k < out_size; ++k) out[l][k] = acc[k * L + l];
  }
}

double BatchedStateVector::lane_norm(int lane) const {
  QFAB_CHECK(lane >= 0 && lane < lanes_);
  const u64 L = static_cast<u64>(lanes_);
  const u64 col = static_cast<u64>(lane);
  double s = 0.0;
  for (u64 i = 0; i < dim(); ++i) {
    const double ar = re_[i * L + col], ai = im_[i * L + col];
    s += ar * ar + ai * ai;
  }
  return std::sqrt(s);
}

// ---------------------------------------------------------------------------
// Batched plan execution
// ---------------------------------------------------------------------------

namespace {

/// Scalar op work routed to the lanes' pending phases exactly once per op
/// (never per tile): RZ prefactors of passthrough gates and k = 0 diagonal
/// ops (identity-up-to-phase products).
void add_pending(const FusedPlan& plan, BatchedStateVector& bsv,
                 const FusedOp& op) {
  if (op.kind == FusedOp::Kind::kGate) {
    const Gate& gate = plan.circuit().gates()[op.gate_begin];
    if (gate.kind == GateKind::kRZ)
      bsv.apply_global_phase(-gate.params[0] / 2);
  } else if (op.kind == FusedOp::Kind::kDiagonal && op.qubits.empty()) {
    bsv.apply_global_phase(std::arg(op.phases[0]));
  }
}

void apply_chunk(const BatchKernelTable& K, const FusedPlan& plan, double* re,
                 double* im, u64 len, u64 L, const FusedOp& op) {
  switch (op.kind) {
    case FusedOp::Kind::kMatrix1:
      if (detail::batch_fault_injection()) {
        // Emulated kernel regression (see batch.h): one flipped sign.
        const cplx m[4] = {op.m[0], op.m[1], op.m[2], -op.m[3]};
        K.matrix1(re, im, len, L, op.q0, m);
        return;
      }
      K.matrix1(re, im, len, L, op.q0, op.m.data());
      return;
    case FusedOp::Kind::kMatrix2:
      K.matrix2(re, im, len, L, op.q0, op.q1, op.m.data());
      return;
    case FusedOp::Kind::kDiagonal:
      if (op.qubits.empty()) return;  // handled by add_pending
      if (op.qubits.size() == 1)
        K.diag1(re, im, len, L, op.qubits[0], op.phases.data());
      else
        K.diag(re, im, len, L, op.shifts.data(),
               static_cast<int>(op.shifts.size()), op.phases.data());
      return;
    case FusedOp::Kind::kGate:
      K.gate(re, im, len, L, plan.circuit().gates()[op.gate_begin]);
      return;
  }
}

/// Apply whole ops [op_lo, op_hi), cache-blocked. A batched tile row is L
/// amplitudes wide, so the tile shrinks by log2(L) to keep the same L1
/// footprint as the scalar path.
void apply_ops_batched(const FusedPlan& plan, BatchedStateVector& bsv,
                       std::size_t op_lo, std::size_t op_hi) {
  const BatchKernelTable& K = active_table();
  const auto& ops = plan.ops();
  double* re = bsv.re();
  double* im = bsv.im();
  const u64 L = static_cast<u64>(bsv.lanes());
  const u64 n = bsv.dim();
  int tb = plan.options().tile_bits - ceil_log2(L);
  tb = std::max(tb, 4);
  tb = std::min(tb, bsv.num_qubits());
  const u64 tile = u64{1} << tb;

  std::size_t i = op_lo;
  while (i < op_hi) {
    if (ops[i].max_qubit < tb) {
      std::size_t j = i;
      while (j < op_hi && ops[j].max_qubit < tb) ++j;
      for (std::size_t k = i; k < j; ++k) add_pending(plan, bsv, ops[k]);
      for (u64 base = 0; base < n; base += tile)
        for (std::size_t k = i; k < j; ++k)
          apply_chunk(K, plan, re + base * L, im + base * L, tile, L, ops[k]);
      i = j;
    } else {
      add_pending(plan, bsv, ops[i]);
      apply_chunk(K, plan, re, im, n, L, ops[i]);
      ++i;
    }
  }
}

/// Batched per-gate fallback for partially covered ops.
void apply_gates_batched(const FusedPlan& plan, BatchedStateVector& bsv,
                         std::size_t gate_begin, std::size_t gate_end) {
  const BatchKernelTable& K = active_table();
  double* re = bsv.re();
  double* im = bsv.im();
  const u64 L = static_cast<u64>(bsv.lanes());
  const u64 n = bsv.dim();
  for (std::size_t g = gate_begin; g < gate_end; ++g) {
    const Gate& gate = plan.circuit().gates()[g];
    if (gate.kind == GateKind::kRZ)
      bsv.apply_global_phase(-gate.params[0] / 2);
    K.gate(re, im, n, L, gate);
  }
}

// QFAB_FAULT nan-at-gate hook, batched counterpart of the one in
// fusion.cpp: after a pass that executed the targeted gate, poison lane 0's
// first amplitude with a quiet NaN. Inert without the env directive.
void maybe_inject_nan(BatchedStateVector& bsv, std::size_t gate_begin,
                      std::size_t gate_end) {
  if (fault::nan_fault_active() && fault::take_nan_charge(gate_begin, gate_end))
    bsv.re()[0] = std::numeric_limits<double>::quiet_NaN();
}

}  // namespace

void apply_plan(const FusedPlan& plan, BatchedStateVector& bsv) {
  QFAB_CHECK(bsv.num_qubits() == plan.circuit().num_qubits());
  apply_ops_batched(plan, bsv, 0, plan.op_count());
  bsv.apply_global_phase(plan.circuit().global_phase());
  maybe_inject_nan(bsv, 0, plan.gate_count());
}

void apply_plan_range(const FusedPlan& plan, BatchedStateVector& bsv,
                      std::size_t gate_begin, std::size_t gate_end) {
  QFAB_CHECK(bsv.num_qubits() == plan.circuit().num_qubits());
  QFAB_CHECK(gate_begin <= gate_end && gate_end <= plan.gate_count());
  const auto& ops = plan.ops();
  std::size_t g = gate_begin;
  while (g < gate_end) {
    const std::size_t oi = plan.op_of_gate(g);
    const FusedOp& op = ops[oi];
    if (op.gate_begin == g && op.gate_end <= gate_end) {
      // Maximal run of fully covered ops, executed fused (cache-blocked).
      std::size_t oj = oi;
      while (oj < ops.size() && ops[oj].gate_end <= gate_end) ++oj;
      apply_ops_batched(plan, bsv, oi, oj);
      g = ops[oj - 1].gate_end;
    } else {
      // The split lands inside this op (per-lane noise injection can split
      // anywhere). Multi-gate slices run through a cached fused plan of
      // the slice itself — a handful of passes instead of one full pass
      // per gate, which dominates trajectory replay when a split lands in
      // a big collapsed diagonal.
      const std::size_t stop = std::min(gate_end, op.gate_end);
      if (stop - g >= 2) {
        const FusedPlan& sub = plan.subrange_plan(g, stop);
        apply_ops_batched(sub, bsv, 0, sub.op_count());
      } else {
        apply_gates_batched(plan, bsv, g, stop);
      }
      g = stop;
    }
  }
  maybe_inject_nan(bsv, gate_begin, gate_end);
}

}  // namespace qfab
