// Peephole optimization of basis circuits.
//
// Mirrors what Qiskit's level-1 transpiler does to the paper's circuits:
// merge RZ runs (using commutation with CX controls and diagonal gates),
// drop full-turn rotations, and cancel adjacent CX pairs. All rewrites are
// exactly phase-tracked, so optimized circuits remain unitarily identical —
// a property the test suite checks on random circuits.
#pragma once

#include "circuit/circuit.h"

namespace qfab {

struct OptimizeStats {
  std::size_t rz_merged = 0;      // RZ gates folded into a neighbor
  std::size_t rz_removed = 0;     // RZ gates that became (-)identity
  std::size_t cx_cancelled = 0;   // CX gates removed (counts both of a pair)
  std::size_t passes = 0;
};

struct OptimizeOptions {
  /// Allow rewrites to look *through* commuting gates (RZ slides over CX
  /// controls and diagonals; CX pairs cancel across commuting neighbors).
  /// false reproduces Qiskit 0.31's run-based level-1 behavior (merges and
  /// cancellations only across literally adjacent gates on a wire), which
  /// is what the paper's Table I counts correspond to.
  bool commute = true;
};

/// Optimize in place; returns rewrite statistics. Requires a basis circuit
/// (every gate in {id, x, sx, rz, cx}).
OptimizeStats optimize_basis_circuit(QuantumCircuit& qc,
                                     const OptimizeOptions& options = {});

}  // namespace qfab
