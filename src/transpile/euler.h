// Euler-angle decompositions of single-qubit unitaries, used by the basis
// decomposer for generic 1q gates and for controlled-U (ABC) synthesis.
#pragma once

#include "linalg/matrix.h"

namespace qfab {

/// U = e^{iα} RZ(β) RY(γ) RZ(δ)  (matrix product order: RZ(δ) applied first).
struct ZyzAngles {
  double alpha = 0.0;  // global phase
  double beta = 0.0;
  double gamma = 0.0;
  double delta = 0.0;
};

/// Decompose an arbitrary 2x2 unitary. Throws CheckError when `u` is not
/// unitary to 1e-9.
ZyzAngles zyz_decompose(const Matrix& u);

}  // namespace qfab
