// Decomposition of the abstract gate alphabet into the IBM superconducting
// basis {Id, X, SX, RZ, CX} (the paper's target gate set), with exact
// global-phase tracking so transpiled circuits stay unitarily identical.
#pragma once

#include "circuit/circuit.h"

namespace qfab {

/// True when `kind` is one of the IBM basis gates.
bool is_basis_gate(GateKind kind);

/// True when every gate of `qc` is a basis gate.
bool is_basis_circuit(const QuantumCircuit& qc);

/// Append the basis-gate expansion of `g` (which may already be a basis
/// gate) to `out`, updating out's global phase.
void decompose_gate(const Gate& g, QuantumCircuit& out);

/// Decompose a whole circuit. Registers and width are preserved.
QuantumCircuit decompose_to_basis(const QuantumCircuit& qc);

/// Append the two-CX "ABC" decomposition of controlled-U for an arbitrary
/// 2x2 unitary `u` (Nielsen & Chuang 4.2), fully expanded to basis gates.
void emit_controlled_unitary(const Matrix& u, int control, int target,
                             QuantumCircuit& out);

}  // namespace qfab
