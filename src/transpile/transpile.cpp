#include "transpile/transpile.h"

namespace qfab {

TranspileReport transpile(const QuantumCircuit& qc,
                          const TranspileOptions& options) {
  TranspileReport report;
  report.circuit = decompose_to_basis(qc);
  if (options.optimization_level >= 1) {
    OptimizeOptions opt;
    opt.commute = options.optimization_level >= 2;
    report.optimize = optimize_basis_circuit(report.circuit, opt);
  }
  report.counts = report.circuit.counts();
  return report;
}

QuantumCircuit transpile_to_basis(const QuantumCircuit& qc,
                                  int optimization_level) {
  return transpile(qc, {optimization_level}).circuit;
}

}  // namespace qfab
