#include "transpile/optimize.h"

#include <cmath>
#include <numbers>

#include "transpile/decompose.h"

namespace qfab {

namespace {

constexpr double kPi = std::numbers::pi;
constexpr double kEps = 1e-12;

bool touches(const Gate& g, int q) {
  for (int i = 0; i < g.arity(); ++i)
    if (g.qubits[i] == q) return true;
  return false;
}

/// Does `g` commute with an RZ rotation on qubit `q`? (g is a basis gate.)
bool commutes_with_rz(const Gate& g, int q) {
  if (!touches(g, q)) return true;
  switch (g.kind) {
    case GateKind::kId:
    case GateKind::kRZ:
      return true;
    case GateKind::kCX:
      return g.qubits[1] == q;  // RZ on the control commutes
    default:
      return false;
  }
}

/// Does `g` commute with CX(control c, target t)?
bool commutes_with_cx(const Gate& g, int c, int t) {
  if (!touches(g, c) && !touches(g, t)) return true;
  switch (g.kind) {
    case GateKind::kId:
      return true;
    case GateKind::kRZ:
      return g.qubits[0] == c;  // diagonal on the control
    case GateKind::kX:
      return g.qubits[0] == t;  // X on the target
    case GateKind::kCX: {
      const int gc = g.qubits[1], gt = g.qubits[0];
      if (gc == c && gt == t) return true;  // identical (handled as a pair)
      if (gc == c && gt != t && gt != c) return true;   // shared control
      if (gt == t && gc != c && gc != t) return true;   // shared target
      return false;
    }
    default:
      return false;
  }
}

}  // namespace

OptimizeStats optimize_basis_circuit(QuantumCircuit& qc,
                                     const OptimizeOptions& options) {
  QFAB_CHECK_MSG(is_basis_circuit(qc),
                 "optimize_basis_circuit requires a basis circuit");
  OptimizeStats stats;
  std::vector<Gate> gates = qc.gates();
  double phase = qc.global_phase();

  bool changed = true;
  while (changed) {
    changed = false;
    ++stats.passes;
    QFAB_CHECK_MSG(stats.passes < 10000, "optimizer failed to converge");
    std::vector<bool> dead(gates.size(), false);

    for (std::size_t i = 0; i < gates.size(); ++i) {
      if (dead[i]) continue;
      Gate& gi = gates[i];

      if (gi.kind == GateKind::kRZ) {
        const int q = gi.qubits[0];
        for (std::size_t j = i + 1; j < gates.size(); ++j) {
          if (dead[j]) continue;
          const Gate& gj = gates[j];
          if (gj.kind == GateKind::kRZ && gj.qubits[0] == q) {
            gi.params[0] += gj.params[0];
            dead[j] = true;
            ++stats.rz_merged;
            changed = true;
            continue;  // keep absorbing further rotations
          }
          const bool passable = options.commute ? commutes_with_rz(gj, q)
                                                : !touches(gj, q);
          if (!passable) break;
        }
        // Canonicalize the angle into (-π, π]; each 2π turn is a -1 phase.
        // ceil((θ-π)/2π) maps θ = π to k = 0 (stable fixed point — a
        // round() here would ping-pong ±π between passes forever).
        const double k = std::ceil((gi.params[0] - kPi) / (2 * kPi));
        if (k != 0.0) {
          gi.params[0] -= 2 * kPi * k;
          phase += kPi * k;
          changed = true;
        }
        if (std::abs(gi.params[0]) < kEps) {
          dead[i] = true;
          ++stats.rz_removed;
          changed = true;
        }
        continue;
      }

      if (gi.kind == GateKind::kCX) {
        const int t = gi.qubits[0], c = gi.qubits[1];
        for (std::size_t j = i + 1; j < gates.size(); ++j) {
          if (dead[j]) continue;
          const Gate& gj = gates[j];
          if (gj.kind == GateKind::kCX && gj.qubits[0] == t &&
              gj.qubits[1] == c) {
            dead[i] = dead[j] = true;
            stats.cx_cancelled += 2;
            changed = true;
            break;
          }
          const bool passable = options.commute
                                    ? commutes_with_cx(gj, c, t)
                                    : (!touches(gj, c) && !touches(gj, t));
          if (!passable) break;
        }
        continue;
      }

      if (gi.kind == GateKind::kX || gi.kind == GateKind::kSX) {
        // Fold adjacent X·X -> I and SX·SX -> X (literal adjacency on the
        // qubit: the next alive gate touching q must be the partner).
        const int q = gi.qubits[0];
        for (std::size_t j = i + 1; j < gates.size(); ++j) {
          if (dead[j]) continue;
          const Gate& gj = gates[j];
          if (!touches(gj, q)) continue;
          if (gj.kind == gi.kind && gj.qubits[0] == q) {
            if (gi.kind == GateKind::kX) {
              dead[i] = true;
            } else {
              gi.kind = GateKind::kX;  // SX² = X exactly
            }
            dead[j] = true;
            changed = true;
          }
          break;
        }
        continue;
      }
    }

    if (changed) {
      std::vector<Gate> next;
      next.reserve(gates.size());
      for (std::size_t i = 0; i < gates.size(); ++i)
        if (!dead[i]) next.push_back(gates[i]);
      gates = std::move(next);
    }
  }

  QuantumCircuit out = QuantumCircuit::same_shape(qc);
  out.add_global_phase(phase);
  for (const Gate& g : gates) out.append(g);
  qc = std::move(out);
  return stats;
}

}  // namespace qfab
