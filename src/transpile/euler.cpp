#include "transpile/euler.h"

#include <cmath>

#include "linalg/gates.h"

namespace qfab {

ZyzAngles zyz_decompose(const Matrix& u) {
  QFAB_CHECK(u.rows() == 2 && u.cols() == 2);
  QFAB_CHECK_MSG(u.is_unitary(1e-9), "zyz_decompose: matrix is not unitary");

  const cplx det = u.at(0, 0) * u.at(1, 1) - u.at(0, 1) * u.at(1, 0);
  ZyzAngles out;
  out.alpha = 0.5 * std::arg(det);
  // V = e^{-iα} U is special-unitary: V = [[a, -conj(b)], [b, conj(a)]].
  const cplx phase{std::cos(-out.alpha), std::sin(-out.alpha)};
  const cplx a = u.at(0, 0) * phase;
  const cplx b = u.at(1, 0) * phase;

  const double abs_a = std::abs(a), abs_b = std::abs(b);
  out.gamma = 2.0 * std::atan2(abs_b, abs_a);
  constexpr double kEps = 1e-12;
  if (abs_b < kEps) {
    out.delta = 0.0;
    out.beta = -2.0 * std::arg(a);
  } else if (abs_a < kEps) {
    out.delta = 0.0;
    out.beta = 2.0 * std::arg(b);
  } else {
    out.beta = -std::arg(a) + std::arg(b);
    out.delta = -std::arg(a) - std::arg(b);
  }

  // Verify: a wrong branch here would silently corrupt every controlled-U.
  const Matrix rebuilt = gates::RZ(out.beta) * gates::RY(out.gamma) *
                         gates::RZ(out.delta) *
                         cplx{std::cos(out.alpha), std::sin(out.alpha)};
  QFAB_CHECK_MSG(rebuilt.approx_equal(u, 1e-8), "zyz_decompose self-check");
  return out;
}

}  // namespace qfab
