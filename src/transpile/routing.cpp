#include "transpile/routing.h"

#include <numeric>

namespace qfab {

RoutedCircuit route_linear(const QuantumCircuit& qc) {
  const int n = qc.num_qubits();
  RoutedCircuit out;
  out.circuit = QuantumCircuit::same_shape(qc);
  out.circuit.add_global_phase(qc.global_phase());

  // position[logical] = physical chain slot; holder[physical] = logical.
  std::vector<int> position(static_cast<std::size_t>(n));
  std::vector<int> holder(static_cast<std::size_t>(n));
  std::iota(position.begin(), position.end(), 0);
  std::iota(holder.begin(), holder.end(), 0);

  auto swap_physical = [&](int p) {
    // Swap chain slots p and p+1.
    out.circuit.swap(p, p + 1);
    ++out.swaps_inserted;
    const int a = holder[static_cast<std::size_t>(p)];
    const int b = holder[static_cast<std::size_t>(p + 1)];
    std::swap(holder[static_cast<std::size_t>(p)],
              holder[static_cast<std::size_t>(p + 1)]);
    position[static_cast<std::size_t>(a)] = p + 1;
    position[static_cast<std::size_t>(b)] = p;
  };

  for (Gate g : qc.gates()) {
    QFAB_CHECK_MSG(g.arity() <= 2,
                   "route_linear requires <= 2q gates; transpile first");
    if (g.arity() == 2) {
      // Walk the two operands together, moving each one step at a time
      // from both ends (balanced, halves worst-case depth vs one-sided).
      int pa = position[static_cast<std::size_t>(g.qubits[0])];
      int pb = position[static_cast<std::size_t>(g.qubits[1])];
      while (std::abs(pa - pb) > 1) {
        if (pa < pb) {
          swap_physical(pa);
          pa = position[static_cast<std::size_t>(g.qubits[0])];
          pb = position[static_cast<std::size_t>(g.qubits[1])];
          if (std::abs(pa - pb) > 1) {
            swap_physical(pb - 1);
            pa = position[static_cast<std::size_t>(g.qubits[0])];
            pb = position[static_cast<std::size_t>(g.qubits[1])];
          }
        } else {
          swap_physical(pb);
          pa = position[static_cast<std::size_t>(g.qubits[0])];
          pb = position[static_cast<std::size_t>(g.qubits[1])];
          if (std::abs(pa - pb) > 1) {
            swap_physical(pa - 1);
            pa = position[static_cast<std::size_t>(g.qubits[0])];
            pb = position[static_cast<std::size_t>(g.qubits[1])];
          }
        }
      }
    }
    for (int i = 0; i < g.arity(); ++i)
      g.qubits[i] = position[static_cast<std::size_t>(g.qubits[i])];
    out.circuit.append(g);
  }
  out.final_layout = position;
  return out;
}

std::vector<int> routed_qubits(const RoutedCircuit& routed,
                               const std::vector<int>& logical) {
  std::vector<int> out;
  out.reserve(logical.size());
  for (int q : logical) {
    QFAB_CHECK(q >= 0 &&
               q < static_cast<int>(routed.final_layout.size()));
    out.push_back(routed.final_layout[static_cast<std::size_t>(q)]);
  }
  return out;
}

}  // namespace qfab
