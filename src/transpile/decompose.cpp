#include "transpile/decompose.h"

#include <cmath>
#include <numbers>

#include "linalg/gates.h"
#include "transpile/euler.h"

namespace qfab {

namespace {

constexpr double kPi = std::numbers::pi;

void emit_p(QuantumCircuit& out, int q, double lambda) {
  // P(λ) = e^{iλ/2} RZ(λ)
  out.rz(q, lambda);
  out.add_global_phase(lambda / 2);
}

void emit_h(QuantumCircuit& out, int q) {
  // H = e^{iπ/4} RZ(π/2) SX RZ(π/2)
  out.rz(q, kPi / 2);
  out.sx(q);
  out.rz(q, kPi / 2);
  out.add_global_phase(kPi / 4);
}

void emit_sxdg(QuantumCircuit& out, int q) {
  // SX† = e^{iπ/2} RZ(π) SX RZ(π)
  out.rz(q, kPi);
  out.sx(q);
  out.rz(q, kPi);
  out.add_global_phase(kPi / 2);
}

void emit_cp(QuantumCircuit& out, int control, int target, double lambda) {
  emit_p(out, control, lambda / 2);
  out.cx(control, target);
  emit_p(out, target, -lambda / 2);
  out.cx(control, target);
  emit_p(out, target, lambda / 2);
}

void emit_ccp(QuantumCircuit& out, int c1, int c2, int target,
              double lambda) {
  emit_cp(out, c2, target, lambda / 2);
  out.cx(c1, c2);
  emit_cp(out, c2, target, -lambda / 2);
  out.cx(c1, c2);
  emit_cp(out, c1, target, lambda / 2);
}

/// Emit an arbitrary 1q unitary as RZ·SX·RZ·SX·RZ (Qiskit "ZSX" basis):
/// U = e^{iγ} RZ(φ+π) SX RZ(θ+π) SX RZ(λ), with γ recovered numerically
/// and the construction verified against `u`.
void emit_unitary1(QuantumCircuit& out, int q, const Matrix& u) {
  const ZyzAngles zyz = zyz_decompose(u);
  // ZYZ -> U(θ, φ, λ) parameters: U(θ,φ,λ) = e^{i(φ+λ)/2} RZ(β=φ) RY(θ) RZ(λ).
  const double theta = zyz.gamma;
  const double phi = zyz.beta;
  const double lambda = zyz.delta;

  const Matrix candidate = gates::RZ(phi + kPi) * gates::SX() *
                           gates::RZ(theta + kPi) * gates::SX() *
                           gates::RZ(lambda);
  // Extract the global phase from the largest entry.
  std::size_t bi = 0, bj = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < 2; ++i)
    for (std::size_t j = 0; j < 2; ++j)
      if (std::abs(candidate.at(i, j)) > best) {
        best = std::abs(candidate.at(i, j));
        bi = i;
        bj = j;
      }
  const cplx ratio = u.at(bi, bj) / candidate.at(bi, bj);
  QFAB_CHECK_MSG(std::abs(std::abs(ratio) - 1.0) < 1e-8,
                 "ZSX decomposition failed (non-unimodular ratio)");
  const double gamma = std::arg(ratio);
  QFAB_CHECK_MSG(
      (candidate * cplx{std::cos(gamma), std::sin(gamma)}).approx_equal(u,
                                                                        1e-8),
      "ZSX decomposition failed (structure mismatch)");

  out.rz(q, lambda);
  out.sx(q);
  out.rz(q, theta + kPi);
  out.sx(q);
  out.rz(q, phi + kPi);
  out.add_global_phase(gamma);
}

/// RZ(β)·RY(γ) chains used by the ABC construction, expanded to basis.
/// Emits first `pre_rz`, then RY(gamma), then `post_rz` (circuit order).
void emit_rz_ry_rz(QuantumCircuit& out, int q, double pre_rz, double gamma,
                   double post_rz) {
  const Matrix u =
      gates::RZ(post_rz) * gates::RY(gamma) * gates::RZ(pre_rz);
  emit_unitary1(out, q, u);
}

}  // namespace

bool is_basis_gate(GateKind kind) {
  switch (kind) {
    case GateKind::kId:
    case GateKind::kX:
    case GateKind::kSX:
    case GateKind::kRZ:
    case GateKind::kCX:
      return true;
    default:
      return false;
  }
}

bool is_basis_circuit(const QuantumCircuit& qc) {
  for (const Gate& g : qc.gates())
    if (!is_basis_gate(g.kind)) return false;
  return true;
}

void emit_controlled_unitary(const Matrix& u, int control, int target,
                             QuantumCircuit& out) {
  const ZyzAngles zyz = zyz_decompose(u);
  const double beta = zyz.beta, gamma = zyz.gamma, delta = zyz.delta;
  // CU = P(α) on control · A X B X C on target, where
  //   A = RZ(β) RY(γ/2), B = RY(-γ/2) RZ(-(δ+β)/2), C = RZ((δ-β)/2),
  // X's realized as CX(control, target). Circuit order: C, CX, B, CX, A.
  emit_rz_ry_rz(out, target, (delta - beta) / 2, 0.0, 0.0);  // C
  out.cx(control, target);
  emit_rz_ry_rz(out, target, -(delta + beta) / 2, -gamma / 2, 0.0);  // B
  out.cx(control, target);
  emit_rz_ry_rz(out, target, 0.0, gamma / 2, beta);  // A
  if (zyz.alpha != 0.0) emit_p(out, control, zyz.alpha);
}

void decompose_gate(const Gate& g, QuantumCircuit& out) {
  constexpr double pi = kPi;
  switch (g.kind) {
    case GateKind::kId:
    case GateKind::kX:
    case GateKind::kSX:
    case GateKind::kRZ:
    case GateKind::kCX:
      out.append(g);
      return;
    case GateKind::kZ:
      emit_p(out, g.qubits[0], pi);
      return;
    case GateKind::kY:
      // Y = e^{iπ/2} X·Z (matrix order): circuit applies Z then X.
      emit_p(out, g.qubits[0], pi);
      out.x(g.qubits[0]);
      out.add_global_phase(pi / 2);
      return;
    case GateKind::kH:
      emit_h(out, g.qubits[0]);
      return;
    case GateKind::kSXdg:
      emit_sxdg(out, g.qubits[0]);
      return;
    case GateKind::kP:
      emit_p(out, g.qubits[0], g.params[0]);
      return;
    case GateKind::kRY:
    case GateKind::kRX:
    case GateKind::kU:
      emit_unitary1(out, g.qubits[0], g.matrix());
      return;
    case GateKind::kCZ:
      emit_cp(out, g.qubits[1], g.qubits[0], pi);
      return;
    case GateKind::kCP:
      emit_cp(out, g.qubits[1], g.qubits[0], g.params[0]);
      return;
    case GateKind::kCH: {
      // Qiskit's 1-CX construction: CH = (S·H·T on t) · CX · (T†·H†·S† on t)
      // in circuit order s, h, t, cx, tdg, h, sdg — H = V X V† with
      // V = S·H·T (exact, no phase correction needed).
      const int t = g.qubits[0], c = g.qubits[1];
      emit_p(out, t, pi / 2);   // s
      emit_h(out, t);
      emit_p(out, t, pi / 4);   // t
      out.cx(c, t);
      emit_p(out, t, -pi / 4);  // tdg
      emit_h(out, t);
      emit_p(out, t, -pi / 2);  // sdg
      return;
    }
    case GateKind::kSWAP:
      out.cx(g.qubits[0], g.qubits[1]);
      out.cx(g.qubits[1], g.qubits[0]);
      out.cx(g.qubits[0], g.qubits[1]);
      return;
    case GateKind::kCCP:
      emit_ccp(out, g.qubits[1], g.qubits[2], g.qubits[0], g.params[0]);
      return;
    case GateKind::kCCX:
      emit_h(out, g.qubits[0]);
      emit_ccp(out, g.qubits[1], g.qubits[2], g.qubits[0], pi);
      emit_h(out, g.qubits[0]);
      return;
  }
  QFAB_CHECK_MSG(false, "cannot decompose " << g.to_string());
}

QuantumCircuit decompose_to_basis(const QuantumCircuit& qc) {
  QuantumCircuit dst = QuantumCircuit::same_shape(qc);
  dst.add_global_phase(qc.global_phase());
  for (const Gate& g : qc.gates()) decompose_gate(g, dst);
  return dst;
}

}  // namespace qfab
