// Qubit routing for restricted connectivity.
//
// The paper's simulations assume "an idealized layout with complete qubit
// connectivity" and list connectivity/SWAP noise among the excluded
// factors. This pass quantifies exactly that exclusion: it maps a basis
// circuit onto a 1-D nearest-neighbor chain (the worst common
// superconducting constraint) by greedily swapping interacting qubits
// together, leaving the logical-to-physical mapping wherever the last gate
// put it (no swap-back), which is how production routers minimize depth.
#pragma once

#include <vector>

#include "circuit/circuit.h"

namespace qfab {

struct RoutedCircuit {
  /// Physical circuit: every 2q gate acts on adjacent chain positions.
  /// SWAPs are emitted as explicit kSWAP gates; call decompose/optimize
  /// afterwards to count them as 3 CX each.
  QuantumCircuit circuit;
  /// final_layout[logical] = physical position after the last gate.
  std::vector<int> final_layout;
  std::size_t swaps_inserted = 0;
};

/// Route onto a linear chain of the same width. Accepts any circuit whose
/// gates touch at most two qubits (transpile first: CCP etc. are 3q).
/// The initial layout is the identity.
RoutedCircuit route_linear(const QuantumCircuit& qc);

/// Helper for interpreting measurements of a routed circuit: physical
/// qubit indices that carry the given logical qubits.
std::vector<int> routed_qubits(const RoutedCircuit& routed,
                               const std::vector<int>& logical);

}  // namespace qfab
