// Transpilation entry point: abstract circuit -> IBM basis circuit,
// optionally peephole-optimized (level 1 ~ the paper's Qiskit settings).
#pragma once

#include "circuit/circuit.h"
#include "transpile/decompose.h"
#include "transpile/optimize.h"

namespace qfab {

struct TranspileOptions {
  /// 0 = decompose only;
  /// 1 = Qiskit-0.31-compatible peephole (literal-adjacency RZ merges and
  ///     CX cancellation) — reproduces the paper's Table I counts;
  /// 2 = aggressive (commutation-aware) peephole.
  int optimization_level = 1;
};

struct TranspileReport {
  QuantumCircuit circuit;
  GateCounts counts;          // of the final circuit
  OptimizeStats optimize;     // zeroes at level 0
};

/// Decompose `qc` into {id, x, sx, rz, cx} and optimize per options.
/// The result is unitarily identical to `qc` (global phase included).
TranspileReport transpile(const QuantumCircuit& qc,
                          const TranspileOptions& options = {});

/// Shorthand returning just the circuit.
QuantumCircuit transpile_to_basis(const QuantumCircuit& qc,
                                  int optimization_level = 1);

}  // namespace qfab
