// Output-distribution estimators for noisy circuits.
//
// Shots of a noisy circuit are i.i.d.: each samples a Pauli trajectory and
// then a measurement outcome, so the S-shot count vector is exactly
// Multinomial(S, p_channel) with p_channel the channel-averaged output
// distribution. Two estimators of that law are provided:
//
//  * estimate_channel_marginal — the default: p̂ = w0·p_ideal +
//    (1-w0)·mean(T error trajectories), with the clean weight
//    w0 = Π(1-q_i) computed analytically and trajectories conditioned on
//    at least one error. Unbiased in expectation and far lower-variance
//    per unit work than per-shot simulation (each trajectory yields the
//    *entire* conditional distribution, not one sample). Counts are then
//    drawn multinomially.
//
//  * sample_counts_per_shot — the paper-faithful (Qiskit Aer) mode: every
//    shot simulates its own trajectory and samples a single outcome.
//    Shots whose trajectory has no error reuse the cached ideal marginal.
//
// The ablation bench (bench/ablation_estimator) cross-validates the two.
#pragma once

#include <vector>

#include "common/rng.h"
#include "noise/readout.h"
#include "noise/trajectory.h"

namespace qfab {

struct EstimatorOptions {
  /// Trajectories (conditioned on >= 1 error) averaged per estimate.
  int error_trajectories = 12;
  /// Amplitude precision for batched trajectory replay. Must be resolved
  /// (kDouble or kFloat32) by the time an estimator runs — kAuto is
  /// decided upstream by the precision policy in exp/experiment.h. The
  /// scalar (non-batched) replay path is always double.
  Precision precision = Precision::kDouble;
  /// Float32 drift sentinel: after a float32 group replay, any lane whose
  /// norm² (the sum of its output marginal) drifts from 1 by more than
  /// this budget causes the whole group to be re-replayed in double —
  /// bit-for-bit what the double path computes for those trajectories.
  /// Surviving float32 marginals are normalized per lane, so downstream
  /// simplex invariants hold at double tolerances. See DESIGN.md §11.
  double float_drift_budget = 1e-3;
};

/// Process-wide count of float32 replay groups that tripped the drift
/// sentinel and were re-replayed in double. Figures report it so a sweep
/// can assert "zero unexplained fallbacks"; tests reset it.
long precision_fallback_count();
void reset_precision_fallback_count();

/// Toggle reuse of the estimators' thread-local replay workspaces (batched
/// state vector, scalar trajectory state, marginal accumulation buffers).
/// On by default; bench_sweep flips it off for a before/after allocation-
/// cost note. Global: flip only from single-threaded regions.
void set_estimator_scratch_reuse(bool on);
bool estimator_scratch_reuse();

struct SharedEstimatorOptions {
  /// Proposal trajectories (conditioned on >= 1 error) shared by the whole
  /// rate cluster.
  int error_trajectories = 12;
  /// Effective-sample-size guard: a non-proposal rate column whose
  /// reweighted ESS = (Σ w)²/Σ w² falls below this fraction of
  /// error_trajectories is re-estimated by per-rate stratified sampling
  /// from its own (still untouched) rng stream — exactly the call the
  /// per-rate path would have made, so the fallback is bit-for-bit
  /// reproducible. The proposal column never falls back (its weights are
  /// uniform, ESS = T exactly).
  double min_ess_fraction = 0.25;
  /// Replay precision and drift sentinel, as in EstimatorOptions (the ESS
  /// fallback columns inherit both, so fallbacks stay bit-for-bit matches
  /// of the per-rate path at the same precision).
  Precision precision = Precision::kDouble;
  double float_drift_budget = 1e-3;
};

/// Bookkeeping of one shared-trajectory estimate (merged across a sweep for
/// bench reporting).
struct SharedEstimateStats {
  long proposal_trajectories = 0;  ///< sampled from the proposal rate
  long unique_trajectories = 0;    ///< replayed after event-list dedup
  long fallback_trajectories = 0;  ///< extra replays spent on ESS fallbacks
  long rate_columns = 0;           ///< (rate, member) estimates produced
  long fallback_columns = 0;       ///< of which re-estimated per-rate
  double ess_fraction_min = 1.0;   ///< min ESS/T over non-proposal columns
  double ess_fraction_sum = 0.0;   ///< Σ ESS/T; mean = sum / count
  long ess_fraction_count = 0;

  void merge(const SharedEstimateStats& other);
};

/// Shared-trajectory estimator for a *cluster* of error-rate columns of one
/// instance. Instead of sampling T trajectories per rate, T trajectories
/// are sampled once from the proposal — the cluster member with the largest
/// expected event count — deduplicated by (fired sites, event list), and
/// each unique trajectory is replayed once. Every rate's estimate is then a
/// self-normalized importance-weighted mixture
///
///     p̂(rate) = w0(rate)·p_ideal + (1 − w0(rate)) · Σ_t w̃_t(rate)·p_t
///
/// with w0 = Π(1 − q_i) analytic as in the per-rate estimator, and the
/// trajectory weights derived from per-site event probabilities: a
/// trajectory that fired locations F has likelihood ratio
/// Π_{i∈F} q'_i/q_i · Π_{i∉F} (1−q'_i)/(1−q_i); the non-fired product is a
/// trajectory-independent constant, so log w_t = Σ_{i∈F} [log-odds'_i −
/// log-odds_i] up to a constant that cancels under self-normalization
/// (Σ_t w̃_t = 1). All cluster members must be reweightable_to each other
/// (same location sites/kinds; rate columns of one noise-model family are).
///
/// rngs has one stream per rate, consumed by this exact protocol: the
/// proposal's stream is consumed identically to the per-rate estimator
/// (T sequential sample_at_least_one calls), every other stream is left
/// untouched unless its column's ESS guard trips, in which case that
/// column is produced by the per-rate estimator from its own stream —
/// bit-for-bit what the per-rate path computes. A single-rate cluster
/// delegates to the per-rate estimator outright (exact stream-for-stream
/// match). Replay is batched up to `max_lanes` trajectories per plan pass
/// (max_lanes == 1 replays scalar; fallback columns then also use the
/// scalar per-rate estimator).
///
/// Returns one output-marginal estimate per rate, aligned with rate_errors.
std::vector<std::vector<double>> estimate_channel_marginal_shared(
    const CleanRun& clean, const std::vector<ErrorLocations>& rate_errors,
    const std::vector<int>& output_qubits,
    const SharedEstimatorOptions& options, int max_lanes,
    std::vector<Pcg64>& rngs, SharedEstimateStats* stats = nullptr);

/// All-members form of estimate_channel_marginal_shared for a batched group
/// of clean runs: per member, T proposal trajectories are sampled
/// (member-major, matching estimate_channel_marginals_batched's stream
/// order) and deduplicated; ALL members' unique trajectories are pooled,
/// sorted by first-error site, and replayed lanes-at-a-time through one
/// shared plan pass. rngs[rate][member]; an ESS fallback re-estimates one
/// (rate, member) column via the single-lane per-rate estimator from
/// rngs[rate][member]. Returns [rate][member] marginal estimates.
std::vector<std::vector<std::vector<double>>> estimate_channel_marginals_shared(
    const BatchedCleanRun& clean, const std::vector<ErrorLocations>& rate_errors,
    const std::vector<int>& output_qubits,
    const SharedEstimatorOptions& options,
    std::vector<std::vector<Pcg64>>& rngs,
    SharedEstimateStats* stats = nullptr);

/// Channel-averaged distribution of `output_qubits`.
std::vector<double> estimate_channel_marginal(const CleanRun& clean,
                                              const ErrorLocations& errors,
                                              const std::vector<int>& output_qubits,
                                              const EstimatorOptions& options,
                                              Pcg64& rng);

/// Batched-engine variant of estimate_channel_marginal: the T trajectories
/// are stratified by first-error site and run up to `max_lanes` at a time
/// through one shared plan pass (sim/batch.h). Statistically identical to
/// the scalar estimator — event lists are pre-sampled sequentially so the
/// rng stream matches exactly, and trajectory marginals are accumulated in
/// their original sample order, so the result is independent of how
/// trajectories were packed into lanes.
std::vector<double> estimate_channel_marginal_batched(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng);

/// Same, for one lane (instance) of a batched group of clean runs.
std::vector<double> estimate_channel_marginal_batched(
    const BatchedCleanRun& clean, int lane, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng);

/// Estimate every lane of a batched group at once — the highest-throughput
/// path. Member i's event lists are pre-sampled from rngs[i] (one stream
/// per member, consumed exactly as the scalar estimator would), then ALL
/// members' trajectories are pooled, sorted by first-error site, and
/// packed lanes-at-a-time: each batched pass replays one tight band of
/// sites, so the lanes share almost all of their ideal suffix and the
/// injection splits cluster into few fused ops. The fused walk gives each
/// lane exactly the decomposition its trajectory would get replayed solo
/// from the group's resume gate — only that resume point varies with the
/// packing — so each member's estimate is independent of the packing up
/// to replay rounding, and within replay rounding of its scalar estimate.
/// rngs.size() must equal clean.lanes().
std::vector<std::vector<double>> estimate_channel_marginals_batched(
    const BatchedCleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    std::vector<Pcg64>& rngs);

/// Multinomial counts of `shots` draws from `distribution`.
std::vector<std::uint64_t> sample_shot_counts(
    const std::vector<double>& distribution, std::uint64_t shots, Pcg64& rng);

/// Paper-faithful per-shot trajectory sampling: counts over the outcomes of
/// `output_qubits` for `shots` independent noisy executions. When `readout`
/// is enabled each shot's measured bits are flipped independently through
/// the confusion matrix.
std::vector<std::uint64_t> sample_counts_per_shot(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, std::uint64_t shots, Pcg64& rng,
    const ReadoutError& readout = {});

}  // namespace qfab
