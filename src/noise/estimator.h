// Output-distribution estimators for noisy circuits.
//
// Shots of a noisy circuit are i.i.d.: each samples a Pauli trajectory and
// then a measurement outcome, so the S-shot count vector is exactly
// Multinomial(S, p_channel) with p_channel the channel-averaged output
// distribution. Two estimators of that law are provided:
//
//  * estimate_channel_marginal — the default: p̂ = w0·p_ideal +
//    (1-w0)·mean(T error trajectories), with the clean weight
//    w0 = Π(1-q_i) computed analytically and trajectories conditioned on
//    at least one error. Unbiased in expectation and far lower-variance
//    per unit work than per-shot simulation (each trajectory yields the
//    *entire* conditional distribution, not one sample). Counts are then
//    drawn multinomially.
//
//  * sample_counts_per_shot — the paper-faithful (Qiskit Aer) mode: every
//    shot simulates its own trajectory and samples a single outcome.
//    Shots whose trajectory has no error reuse the cached ideal marginal.
//
// The ablation bench (bench/ablation_estimator) cross-validates the two.
#pragma once

#include <vector>

#include "common/rng.h"
#include "noise/readout.h"
#include "noise/trajectory.h"

namespace qfab {

struct EstimatorOptions {
  /// Trajectories (conditioned on >= 1 error) averaged per estimate.
  int error_trajectories = 12;
};

/// Channel-averaged distribution of `output_qubits`.
std::vector<double> estimate_channel_marginal(const CleanRun& clean,
                                              const ErrorLocations& errors,
                                              const std::vector<int>& output_qubits,
                                              const EstimatorOptions& options,
                                              Pcg64& rng);

/// Batched-engine variant of estimate_channel_marginal: the T trajectories
/// are stratified by first-error site and run up to `max_lanes` at a time
/// through one shared plan pass (sim/batch.h). Statistically identical to
/// the scalar estimator — event lists are pre-sampled sequentially so the
/// rng stream matches exactly, and trajectory marginals are accumulated in
/// their original sample order, so the result is independent of how
/// trajectories were packed into lanes.
std::vector<double> estimate_channel_marginal_batched(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng);

/// Same, for one lane (instance) of a batched group of clean runs.
std::vector<double> estimate_channel_marginal_batched(
    const BatchedCleanRun& clean, int lane, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng);

/// Estimate every lane of a batched group at once — the highest-throughput
/// path. Member i's event lists are pre-sampled from rngs[i] (one stream
/// per member, consumed exactly as the scalar estimator would), then ALL
/// members' trajectories are pooled, sorted by first-error site, and
/// packed lanes-at-a-time: each batched pass replays one tight band of
/// sites, so the lanes share almost all of their ideal suffix and the
/// injection splits cluster into few fused ops. Each member's estimate is
/// within replay rounding of its scalar estimate and independent of the
/// packing. rngs.size() must equal clean.lanes().
std::vector<std::vector<double>> estimate_channel_marginals_batched(
    const BatchedCleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    std::vector<Pcg64>& rngs);

/// Multinomial counts of `shots` draws from `distribution`.
std::vector<std::uint64_t> sample_shot_counts(
    const std::vector<double>& distribution, std::uint64_t shots, Pcg64& rng);

/// Paper-faithful per-shot trajectory sampling: counts over the outcomes of
/// `output_qubits` for `shots` independent noisy executions. When `readout`
/// is enabled each shot's measured bits are flipped independently through
/// the confusion matrix.
std::vector<std::uint64_t> sample_counts_per_shot(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, std::uint64_t shots, Pcg64& rng,
    const ReadoutError& readout = {});

}  // namespace qfab
