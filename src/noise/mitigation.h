// Error mitigation — "the impact of error mitigation ... deferred to a
// future work" (paper Sec. I). Two standard techniques that operate purely
// on measured distributions, so they compose with any backend here:
//
//  * Readout-error inversion: apply the inverse of the per-qubit confusion
//    matrix (exact tensor inverse), then clip negatives / renormalize —
//    the matrix-free analogue of Qiskit's measurement calibration.
//
//  * Zero-noise (Richardson) extrapolation: evaluate the distribution at
//    several noise-scale factors c >= 1 and extrapolate each outcome's
//    probability to c = 0 with the Lagrange polynomial through the
//    sampled scales, then clip / renormalize. Our noise models scale
//    exactly (multiply p1q/p2q), so no pulse-stretching surrogate needed.
#pragma once

#include <vector>

#include "noise/readout.h"

namespace qfab {

/// Invert the (uniform per-bit) readout confusion on a distribution.
/// Requires p01 + p10 < 1 (an invertible confusion matrix).
std::vector<double> invert_readout(const std::vector<double>& dist,
                                   const ReadoutError& err);

/// Richardson-extrapolate distributions measured at noise scales
/// `scales` (all distinct, typically {1, 2, 3}) to scale 0, outcome-wise.
/// Returns a clipped, renormalized distribution.
std::vector<double> richardson_extrapolate(
    const std::vector<std::vector<double>>& dists,
    const std::vector<double>& scales);

/// Lagrange weights w_i with Σ w_i f(scale_i) = extrapolation of f to 0.
std::vector<double> richardson_weights(const std::vector<double>& scales);

/// Clip negatives to zero and renormalize to a probability vector.
std::vector<double> clip_to_probabilities(std::vector<double> dist);

}  // namespace qfab
