#include "noise/noise_model.h"

namespace qfab {

double NoiseModel::depolarizing_param(const Gate& g) const {
  switch (g.arity()) {
    case 1:
      if (g.kind == GateKind::kRZ && !noisy_rz) return 0.0;
      if (g.kind == GateKind::kId && !noisy_id) return 0.0;
      return p1q;
    case 2:
      return p2q;
    default:
      // The transpiled basis has no 3q gates; abstract circuits are never
      // simulated with noise.
      QFAB_CHECK_MSG(false, "noise model applied to a non-basis gate");
      return 0.0;
  }
}

double NoiseModel::error_event_prob(const Gate& g) const {
  const double p = depolarizing_param(g);
  return g.arity() == 1 ? p * 3.0 / 4.0 : p * 15.0 / 16.0;
}

int pauli_alternatives(const Gate& g) {
  return g.arity() == 1 ? 3 : 15;
}

double NoiseModel::gate_duration(const Gate& g) const {
  if (g.kind == GateKind::kRZ) return 0.0;  // virtual on IBM hardware
  return g.arity() == 1 ? time_1q : time_2q;
}

PauliProbs NoiseModel::thermal_probs(const Gate& g) const {
  if (!thermal_enabled()) return {};
  return thermal_pauli_twirl(t1, t2, gate_duration(g));
}

}  // namespace qfab
