#include "noise/estimator.h"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <limits>
#include <memory>
#include <numeric>
#include <unordered_map>

namespace qfab {

namespace {

std::atomic<bool> g_scratch_reuse{true};
std::atomic<long> g_precision_fallbacks{0};

/// Per-thread replay scratch: the batched state vectors (one per replay
/// precision), the scalar trajectory state, and the marginal accumulation
/// buffers that every estimate would otherwise allocate per replay group.
/// With reuse disabled (bench ablation) each call gets a fresh local
/// workspace instead.
struct ReplayWorkspace {
  StateVector sv{1};
  BatchedStateVector bsv{1, 1};
  BatchedStateVectorF bsf{1, 1};           // float32 replay tier
  std::vector<std::vector<double>> margs;  // per-lane group marginals
  std::vector<double> acc;                 // lane-minor accumulation plane
  std::vector<double> marg;                // scalar-path marginal
  std::vector<double> lane_sums;           // per-lane marginal sums (norm²)
};

ReplayWorkspace& replay_workspace(std::unique_ptr<ReplayWorkspace>& local) {
  if (estimator_scratch_reuse()) {
    thread_local ReplayWorkspace ws;
    return ws;
  }
  local = std::make_unique<ReplayWorkspace>();
  return *local;
}

/// Replay one trajectory group at the requested precision and leave the
/// per-lane output marginals in ws.margs. `seed` is a generic callback
/// that loads the group's start states into a batched vector of either
/// precision (broadcast of one ideal state, or a lane-permuted checkpoint
/// load).
///
/// Float32 groups run the drift sentinel afterwards: every lane's norm² is
/// the sum of its marginal, so a lane that drifted from 1 beyond the
/// budget (or went non-finite) is detected without an extra pass. A
/// tripped sentinel re-replays the whole group in double — bit-for-bit the
/// double path for these trajectories — and bumps the process-wide
/// fallback counter. Surviving float32 marginals are normalized per lane:
/// the residual drift is pure replay rounding, and normalizing keeps every
/// downstream simplex invariant at double tolerances.
template <typename Seed>
void replay_group_marginals(const FusedPlan& plan, std::size_t g0,
                            const std::vector<std::vector<ErrorEvent>>& events,
                            const std::vector<int>& output_qubits,
                            Precision precision, double drift_budget,
                            ReplayWorkspace& ws, Seed&& seed) {
  if (precision == Precision::kFloat32) {
    seed(ws.bsf);
    run_trajectories_batched(plan, ws.bsf, g0, events);
    ws.bsf.all_lane_marginal_probabilities(output_qubits, ws.margs, ws.acc);
    // One pass over the marginal planes serves both the sentinel and the
    // normalization: each lane's sum is computed once, checked against the
    // drift budget, and reused as the normalizer.
    ws.lane_sums.resize(ws.margs.size());
    bool ok = true;
    for (std::size_t l = 0; l < ws.margs.size(); ++l) {
      double s = 0.0;
      for (double v : ws.margs[l]) s += v;
      ws.lane_sums[l] = s;
      if (!(std::abs(s - 1.0) <= drift_budget)) {  // catches NaN too
        ok = false;
        break;
      }
    }
    if (ok) {
      for (std::size_t l = 0; l < ws.margs.size(); ++l) {
        const double inv = 1.0 / ws.lane_sums[l];
        for (double& v : ws.margs[l]) v *= inv;
      }
      return;
    }
    g_precision_fallbacks.fetch_add(1, std::memory_order_relaxed);
  }
  seed(ws.bsv);
  run_trajectories_batched(plan, ws.bsv, g0, events);
  ws.bsv.all_lane_marginal_probabilities(output_qubits, ws.margs, ws.acc);
}

/// Shared body of the two batched-estimator overloads. `state_at(g)` must
/// return the ideal state after g gates for the instance being estimated.
template <typename StateAt>
std::vector<double> channel_marginal_batched_impl(
    const FusedPlan& plan, const std::vector<double>& ideal,
    StateAt&& state_at, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng) {
  const double w0 = errors.clean_probability();
  if (errors.noisy_gate_count() == 0 || w0 >= 1.0) return ideal;
  QFAB_CHECK(options.error_trajectories >= 1);
  QFAB_CHECK(max_lanes >= 1 && max_lanes <= BatchedStateVector::kMaxLanes);
  const int T = options.error_trajectories;
  std::unique_ptr<ReplayWorkspace> local;
  ReplayWorkspace& ws = replay_workspace(local);

  // Pre-sample every trajectory's event list sequentially: the rng stream
  // is identical to the scalar estimator's and independent of lane packing.
  std::vector<std::vector<ErrorEvent>> all_events(T);
  for (int t = 0; t < T; ++t) all_events[t] = errors.sample_at_least_one(rng);

  // Stratify: sort trajectory indices by first-error site so lanes batched
  // together share (almost) all of their ideal prefix and the broadcast
  // start state wastes little replay.
  std::vector<int> order(static_cast<std::size_t>(T));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return all_events[a].front().gate_index < all_events[b].front().gate_index;
  });

  std::vector<std::vector<double>> margs(static_cast<std::size_t>(T));
  for (int lo = 0; lo < T; lo += max_lanes) {
    const int lanes = std::min(max_lanes, T - lo);
    // Scalar run_trajectory resumes at first_gate_index + 1; the group
    // resumes at the earliest such site and the later lanes replay the
    // few extra ideal gates batched.
    const std::size_t g0 = all_events[order[lo]].front().gate_index + 1;
    std::vector<std::vector<ErrorEvent>> lane_events(lanes);
    for (int l = 0; l < lanes; ++l) lane_events[l] = all_events[order[lo + l]];
    const StateVector start = state_at(g0);  // shared by a double redo
    replay_group_marginals(plan, g0, lane_events, output_qubits,
                           options.precision, options.float_drift_budget, ws,
                           [&](auto& bsv) {
                             bsv.reset(plan.circuit().num_qubits(), lanes);
                             bsv.broadcast(start);
                           });
    for (int l = 0; l < lanes; ++l)
      margs[order[lo + l]] = ws.margs[static_cast<std::size_t>(l)];
  }

  // Accumulate in original sample order, not lane order, so the estimate
  // does not depend on the stratified packing.
  std::vector<double> err_mean(ideal.size(), 0.0);
  for (int t = 0; t < T; ++t)
    for (std::size_t i = 0; i < err_mean.size(); ++i)
      err_mean[i] += margs[t][i];
  const double scale = (1.0 - w0) / static_cast<double>(T);
  std::vector<double> out(ideal.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = w0 * ideal[i] + scale * err_mean[i];
  return out;
}

/// T proposal trajectories after dedup: unique (fired set, event list)
/// pairs with multiplicities. The event list alone is not a sufficient key:
/// with thermal (kWeighted) locations alongside depolarizing ones, two
/// different fired sets can emit identical event lists but carry different
/// importance weights.
struct UniqueTrajectories {
  std::vector<std::vector<ErrorEvent>> events;    // per unique
  std::vector<std::vector<std::uint32_t>> fired;  // per unique
  std::vector<int> multiplicity;                  // per unique
  int total = 0;                                  // trajectories sampled
};

std::uint64_t hash_fired(std::uint64_t h,
                         const std::vector<std::uint32_t>& fired) {
  for (std::uint32_t f : fired) {
    h ^= f;
    h *= 0x100000001b3ULL;
  }
  return h;
}

UniqueTrajectories sample_unique_trajectories(const ErrorLocations& proposal,
                                              int T, Pcg64& rng) {
  UniqueTrajectories uniq;
  uniq.total = T;
  std::unordered_map<std::uint64_t, std::vector<std::size_t>> buckets;
  std::vector<std::uint32_t> fired;
  for (int t = 0; t < T; ++t) {
    std::vector<ErrorEvent> events = proposal.sample_at_least_one(rng, &fired);
    const std::uint64_t h = hash_fired(hash_events(events), fired);
    std::vector<std::size_t>& bucket = buckets[h];
    bool merged = false;
    for (std::size_t u : bucket) {
      if (uniq.events[u] == events && uniq.fired[u] == fired) {
        ++uniq.multiplicity[u];
        merged = true;
        break;
      }
    }
    if (!merged) {
      bucket.push_back(uniq.events.size());
      uniq.events.push_back(std::move(events));
      uniq.fired.push_back(fired);
      uniq.multiplicity.push_back(1);
    }
  }
  return uniq;
}

/// Self-normalized importance weights of the unique trajectories for one
/// target rate. `delta_log_odds[i]` = target log-odds − proposal log-odds
/// of location i; log w_u = Σ_{i ∈ fired_u} delta. Returned weights sum to
/// 1 over uniques (multiplicity folded in); `ess` is in trajectory units:
/// (Σ_t w_t)² / Σ_t w_t² over the T originals, computed from the uniques as
/// S² / Σ_u mult_u·e_u² with e_u = exp(log w_u − max) and S = Σ_u mult_u·e_u.
struct RateWeights {
  std::vector<double> w;
  double ess = 0.0;
};

RateWeights reweight(const UniqueTrajectories& uniq,
                     const std::vector<double>& delta_log_odds) {
  const std::size_t U = uniq.events.size();
  RateWeights rw;
  rw.w.resize(U);
  double max_ell = -std::numeric_limits<double>::infinity();
  for (std::size_t u = 0; u < U; ++u) {
    double ell = 0.0;
    for (std::uint32_t f : uniq.fired[u]) ell += delta_log_odds[f];
    rw.w[u] = ell;
    max_ell = std::max(max_ell, ell);
  }
  double sum = 0.0, sum_sq = 0.0;
  for (std::size_t u = 0; u < U; ++u) {
    const double e = std::exp(rw.w[u] - max_ell);
    const double m = static_cast<double>(uniq.multiplicity[u]);
    rw.w[u] = m * e;
    sum += m * e;
    sum_sq += m * e * e;
  }
  for (double& w : rw.w) w /= sum;
  rw.ess = sum * sum / sum_sq;
  return rw;
}

/// Proposal = the cluster member with the largest expected event count:
/// heavier trajectories downweight cleanly, while a light proposal starves
/// the heavy columns of multi-event trajectories.
std::size_t pick_proposal(const std::vector<ErrorLocations>& rate_errors) {
  std::size_t best = 0;
  for (std::size_t r = 1; r < rate_errors.size(); ++r)
    if (rate_errors[r].expected_events() >
        rate_errors[best].expected_events())
      best = r;
  return best;
}

/// Per-location log-odds deltas from `proposal` to each rate (the
/// proposal's own row is all zeros, so its weights are uniform).
std::vector<std::vector<double>> delta_log_odds_per_rate(
    const std::vector<ErrorLocations>& rate_errors, std::size_t proposal) {
  const ErrorLocations& prop = rate_errors[proposal];
  std::vector<std::vector<double>> deltas(rate_errors.size());
  for (std::size_t r = 0; r < rate_errors.size(); ++r) {
    deltas[r].resize(prop.location_count());
    for (std::size_t i = 0; i < prop.location_count(); ++i)
      deltas[r][i] =
          rate_errors[r].location_log_odds(i) - prop.location_log_odds(i);
  }
  return deltas;
}

void note_ess(SharedEstimateStats* stats, double ess_fraction) {
  if (!stats) return;
  stats->ess_fraction_min = std::min(stats->ess_fraction_min, ess_fraction);
  stats->ess_fraction_sum += ess_fraction;
  ++stats->ess_fraction_count;
}

/// Blend one rate column: w0·ideal + (1−w0)·Σ_u w_u·marg_u.
std::vector<double> blend_weighted(const std::vector<double>& ideal, double w0,
                                   const RateWeights& rw,
                                   const std::vector<std::vector<double>>& margs) {
  std::vector<double> out(ideal.size());
  for (std::size_t b = 0; b < out.size(); ++b) out[b] = w0 * ideal[b];
  const double err_w = 1.0 - w0;
  for (std::size_t u = 0; u < rw.w.size(); ++u) {
    const double wu = err_w * rw.w[u];
    const std::vector<double>& m = margs[u];
    for (std::size_t b = 0; b < out.size(); ++b) out[b] += wu * m[b];
  }
  return out;
}

}  // namespace

void set_estimator_scratch_reuse(bool on) {
  g_scratch_reuse.store(on, std::memory_order_relaxed);
}

bool estimator_scratch_reuse() {
  return g_scratch_reuse.load(std::memory_order_relaxed);
}

long precision_fallback_count() {
  return g_precision_fallbacks.load(std::memory_order_relaxed);
}

void reset_precision_fallback_count() {
  g_precision_fallbacks.store(0, std::memory_order_relaxed);
}

void SharedEstimateStats::merge(const SharedEstimateStats& other) {
  proposal_trajectories += other.proposal_trajectories;
  unique_trajectories += other.unique_trajectories;
  fallback_trajectories += other.fallback_trajectories;
  rate_columns += other.rate_columns;
  fallback_columns += other.fallback_columns;
  ess_fraction_min = std::min(ess_fraction_min, other.ess_fraction_min);
  ess_fraction_sum += other.ess_fraction_sum;
  ess_fraction_count += other.ess_fraction_count;
}

std::vector<double> estimate_channel_marginal(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    Pcg64& rng) {
  const std::vector<double> ideal = clean.ideal_marginal(output_qubits);
  const double w0 = errors.clean_probability();
  if (errors.noisy_gate_count() == 0 || w0 >= 1.0) return ideal;
  QFAB_CHECK(options.error_trajectories >= 1);

  std::unique_ptr<ReplayWorkspace> local;
  ReplayWorkspace& ws = replay_workspace(local);
  std::vector<double> err_mean(ideal.size(), 0.0);
  for (int t = 0; t < options.error_trajectories; ++t) {
    const std::vector<ErrorEvent> events = errors.sample_at_least_one(rng);
    run_trajectory(clean, events, ws.sv);
    ws.sv.marginal_probabilities(output_qubits, ws.marg);
    for (std::size_t i = 0; i < err_mean.size(); ++i) err_mean[i] += ws.marg[i];
  }
  const double scale =
      (1.0 - w0) / static_cast<double>(options.error_trajectories);
  std::vector<double> out(ideal.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = w0 * ideal[i] + scale * err_mean[i];
  return out;
}

std::vector<double> estimate_channel_marginal_batched(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng) {
  return channel_marginal_batched_impl(
      clean.plan(), clean.ideal_marginal(output_qubits),
      [&clean](std::size_t g) { return clean.state_at(g); }, errors,
      output_qubits, options, max_lanes, rng);
}

std::vector<double> estimate_channel_marginal_batched(
    const BatchedCleanRun& clean, int lane, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng) {
  return channel_marginal_batched_impl(
      clean.plan(), clean.lane_ideal_marginal(lane, output_qubits),
      [&clean, lane](std::size_t g) { return clean.lane_state_at(lane, g); },
      errors, output_qubits, options, max_lanes, rng);
}

std::vector<std::vector<double>> estimate_channel_marginals_batched(
    const BatchedCleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    std::vector<Pcg64>& rngs) {
  const std::size_t L = static_cast<std::size_t>(clean.lanes());
  QFAB_CHECK(rngs.size() == L);
  std::vector<std::vector<double>> ideals(L);
  for (std::size_t i = 0; i < L; ++i)
    ideals[i] = clean.lane_ideal_marginal(static_cast<int>(i), output_qubits);
  const double w0 = errors.clean_probability();
  if (errors.noisy_gate_count() == 0 || w0 >= 1.0) return ideals;
  QFAB_CHECK(options.error_trajectories >= 1);
  const std::size_t T = static_cast<std::size_t>(options.error_trajectories);

  // Pre-sample every member's trajectories from its own stream (identical
  // rng consumption to the per-member estimator), then pool all L*T
  // trajectories across members and sort by first-error site. Groups of L
  // consecutive pooled trajectories — whichever members they came from —
  // share nearly all of their ideal prefix, so each group's batched replay
  // from the common resume point wastes little work and its injection
  // sites cluster into few fused ops. Marginals are written back per
  // (member, original sample index), and the fused walk replays each
  // lane with exactly the decomposition its trajectory would get solo
  // from the same resume point (see run_trajectories_batched) — what
  // varies with the packing is only the group resume gate, so the
  // estimate is packing-independent up to replay rounding on that
  // shared prefix.
  std::vector<std::vector<std::vector<ErrorEvent>>> all_events(
      L, std::vector<std::vector<ErrorEvent>>(T));
  struct Traj {
    std::size_t site;  // first-error gate index
    std::size_t member;
    std::size_t t;  // original sample index within the member
  };
  std::vector<Traj> pool;
  pool.reserve(L * T);
  for (std::size_t i = 0; i < L; ++i)
    for (std::size_t t = 0; t < T; ++t) {
      all_events[i][t] = errors.sample_at_least_one(rngs[i]);
      pool.push_back(Traj{all_events[i][t].front().gate_index, i, t});
    }
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Traj& a, const Traj& b) { return a.site < b.site; });

  std::vector<std::vector<std::vector<double>>> margs(
      L, std::vector<std::vector<double>>(T));
  std::unique_ptr<ReplayWorkspace> local;
  ReplayWorkspace& ws = replay_workspace(local);
  for (std::size_t lo = 0; lo < pool.size(); lo += L) {
    const std::size_t lanes = std::min(L, pool.size() - lo);
    std::vector<int> lane_map(lanes);
    std::vector<std::vector<ErrorEvent>> lane_events(lanes);
    for (std::size_t j = 0; j < lanes; ++j) {
      const Traj& traj = pool[lo + j];
      lane_map[j] = static_cast<int>(traj.member);
      lane_events[j] = all_events[traj.member][traj.t];
    }
    // Scalar run_trajectory resumes at first_gate_index + 1; the group
    // resumes at its earliest such site (pool is sorted, so that is the
    // first entry) and later lanes replay the few extra ideal gates
    // batched.
    const std::size_t g0 = pool[lo].site + 1;
    replay_group_marginals(
        clean.plan(), g0, lane_events, output_qubits, options.precision,
        options.float_drift_budget, ws,
        [&](auto& bsv) { clean.load_states_at(g0, lane_map, bsv); });
    for (std::size_t j = 0; j < lanes; ++j)
      margs[pool[lo + j].member][pool[lo + j].t] = ws.margs[j];
  }

  // Per member, accumulate in the original sample order (grouping-
  // independent) and blend with the analytic clean weight.
  const double scale = (1.0 - w0) / static_cast<double>(T);
  std::vector<std::vector<double>> out(L);
  for (std::size_t i = 0; i < L; ++i) {
    const std::vector<double>& ideal = ideals[i];
    std::vector<double> err_mean(ideal.size(), 0.0);
    for (std::size_t t = 0; t < T; ++t)
      for (std::size_t b = 0; b < err_mean.size(); ++b)
        err_mean[b] += margs[i][t][b];
    out[i].resize(ideal.size());
    for (std::size_t b = 0; b < out[i].size(); ++b)
      out[i][b] = w0 * ideal[b] + scale * err_mean[b];
  }
  return out;
}

std::vector<std::vector<double>> estimate_channel_marginal_shared(
    const CleanRun& clean, const std::vector<ErrorLocations>& rate_errors,
    const std::vector<int>& output_qubits,
    const SharedEstimatorOptions& options, int max_lanes,
    std::vector<Pcg64>& rngs, SharedEstimateStats* stats) {
  const std::size_t R = rate_errors.size();
  QFAB_CHECK(R >= 1 && rngs.size() == R);
  QFAB_CHECK(options.error_trajectories >= 1);
  QFAB_CHECK(max_lanes >= 1 && max_lanes <= BatchedStateVector::kMaxLanes);
  const int T = options.error_trajectories;
  const EstimatorOptions eopt{T, options.precision,
                              options.float_drift_budget};
  auto per_rate = [&](std::size_t r) {
    return max_lanes > 1
               ? estimate_channel_marginal_batched(clean, rate_errors[r],
                                                   output_qubits, eopt,
                                                   max_lanes, rngs[r])
               : estimate_channel_marginal(clean, rate_errors[r],
                                           output_qubits, eopt, rngs[r]);
  };
  if (stats) stats->rate_columns += static_cast<long>(R);

  // A single-rate cluster has nothing to share: delegate to the per-rate
  // estimator (exact stream-for-stream match).
  if (R == 1) {
    if (stats && rate_errors[0].noisy_gate_count() > 0) {
      stats->proposal_trajectories += T;
      stats->unique_trajectories += T;
    }
    return {per_rate(0)};
  }

  const std::vector<double> ideal = clean.ideal_marginal(output_qubits);
  const std::size_t p = pick_proposal(rate_errors);
  if (rate_errors[p].noisy_gate_count() == 0)
    return std::vector<std::vector<double>>(R, ideal);
  for (std::size_t r = 0; r < R; ++r)
    QFAB_CHECK_MSG(rate_errors[p].reweightable_to(rate_errors[r]),
                   "shared-trajectory cluster rates are not reweightable");

  const UniqueTrajectories uniq =
      sample_unique_trajectories(rate_errors[p], T, rngs[p]);
  const std::size_t U = uniq.events.size();
  if (stats) {
    stats->proposal_trajectories += T;
    stats->unique_trajectories += static_cast<long>(U);
  }

  // Replay each unique trajectory once, stratified by first-error site.
  std::vector<std::size_t> order(U);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return uniq.events[a].front().gate_index < uniq.events[b].front().gate_index;
  });
  std::unique_ptr<ReplayWorkspace> local;
  ReplayWorkspace& ws = replay_workspace(local);
  std::vector<std::vector<double>> umargs(U);
  if (max_lanes > 1) {
    for (std::size_t lo = 0; lo < U; lo += static_cast<std::size_t>(max_lanes)) {
      const int lanes =
          static_cast<int>(std::min<std::size_t>(max_lanes, U - lo));
      const std::size_t g0 = uniq.events[order[lo]].front().gate_index + 1;
      clean.state_at(g0, ws.sv);
      std::vector<std::vector<ErrorEvent>> lane_events(lanes);
      for (int l = 0; l < lanes; ++l)
        lane_events[l] = uniq.events[order[lo + static_cast<std::size_t>(l)]];
      replay_group_marginals(clean.plan(), g0, lane_events, output_qubits,
                             options.precision, options.float_drift_budget, ws,
                             [&](auto& bsv) {
                               bsv.reset(clean.circuit().num_qubits(), lanes);
                               bsv.broadcast(ws.sv);
                             });
      for (int l = 0; l < lanes; ++l)
        umargs[order[lo + static_cast<std::size_t>(l)]] =
            ws.margs[static_cast<std::size_t>(l)];
    }
  } else {
    for (std::size_t u = 0; u < U; ++u) {
      run_trajectory(clean, uniq.events[u], ws.sv);
      ws.sv.marginal_probabilities(output_qubits, umargs[u]);
    }
  }

  const std::vector<std::vector<double>> deltas =
      delta_log_odds_per_rate(rate_errors, p);
  const double min_ess =
      options.min_ess_fraction * static_cast<double>(T);
  std::vector<std::vector<double>> out(R);
  for (std::size_t r = 0; r < R; ++r) {
    const RateWeights rw = reweight(uniq, deltas[r]);
    if (r != p) note_ess(stats, rw.ess / static_cast<double>(T));
    if (r != p && rw.ess < min_ess) {
      // Weight degeneracy: this column is re-estimated from its own
      // stream by exactly the call the per-rate path would have made.
      if (stats) {
        ++stats->fallback_columns;
        stats->fallback_trajectories += T;
      }
      out[r] = per_rate(r);
      continue;
    }
    out[r] = blend_weighted(ideal, rate_errors[r].clean_probability(), rw,
                            umargs);
  }
  return out;
}

std::vector<std::vector<std::vector<double>>> estimate_channel_marginals_shared(
    const BatchedCleanRun& clean, const std::vector<ErrorLocations>& rate_errors,
    const std::vector<int>& output_qubits,
    const SharedEstimatorOptions& options,
    std::vector<std::vector<Pcg64>>& rngs, SharedEstimateStats* stats) {
  const std::size_t L = static_cast<std::size_t>(clean.lanes());
  const std::size_t R = rate_errors.size();
  QFAB_CHECK(R >= 1 && rngs.size() == R);
  for (const std::vector<Pcg64>& r : rngs) QFAB_CHECK(r.size() == L);
  QFAB_CHECK(options.error_trajectories >= 1);
  const int T = options.error_trajectories;
  const EstimatorOptions eopt{T, options.precision,
                              options.float_drift_budget};
  if (stats) stats->rate_columns += static_cast<long>(R * L);

  // Single-rate cluster: the pooled per-rate estimator outright.
  if (R == 1) {
    if (stats && rate_errors[0].noisy_gate_count() > 0) {
      stats->proposal_trajectories += static_cast<long>(L) * T;
      stats->unique_trajectories += static_cast<long>(L) * T;
    }
    std::vector<std::vector<std::vector<double>>> out(1);
    out[0] = estimate_channel_marginals_batched(clean, rate_errors[0],
                                                output_qubits, eopt, rngs[0]);
    return out;
  }

  std::vector<std::vector<double>> ideals(L);
  for (std::size_t m = 0; m < L; ++m)
    ideals[m] = clean.lane_ideal_marginal(static_cast<int>(m), output_qubits);
  const std::size_t p = pick_proposal(rate_errors);
  if (rate_errors[p].noisy_gate_count() == 0)
    return std::vector<std::vector<std::vector<double>>>(R, ideals);
  for (std::size_t r = 0; r < R; ++r)
    QFAB_CHECK_MSG(rate_errors[p].reweightable_to(rate_errors[r]),
                   "shared-trajectory cluster rates are not reweightable");

  // Member-major sampling from the proposal streams (the order the pooled
  // per-rate estimator consumes them), each member deduplicated on its own.
  std::vector<UniqueTrajectories> uniq;
  uniq.reserve(L);
  for (std::size_t m = 0; m < L; ++m)
    uniq.push_back(sample_unique_trajectories(rate_errors[p], T, rngs[p][m]));
  if (stats)
    for (const UniqueTrajectories& u : uniq) {
      stats->proposal_trajectories += u.total;
      stats->unique_trajectories += static_cast<long>(u.events.size());
    }

  // Pool every member's unique trajectories, sort by first-error site, and
  // replay lanes-at-a-time from the batched checkpoints (see
  // estimate_channel_marginals_batched for why the bands are tight).
  struct Traj {
    std::size_t site;
    std::size_t member;
    std::size_t u;  // unique index within the member
  };
  std::vector<Traj> pool;
  for (std::size_t m = 0; m < L; ++m)
    for (std::size_t u = 0; u < uniq[m].events.size(); ++u)
      pool.push_back(Traj{uniq[m].events[u].front().gate_index, m, u});
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Traj& a, const Traj& b) { return a.site < b.site; });

  std::unique_ptr<ReplayWorkspace> local;
  ReplayWorkspace& ws = replay_workspace(local);
  std::vector<std::vector<std::vector<double>>> umargs(L);
  for (std::size_t m = 0; m < L; ++m) umargs[m].resize(uniq[m].events.size());
  for (std::size_t lo = 0; lo < pool.size(); lo += L) {
    const std::size_t lanes = std::min(L, pool.size() - lo);
    std::vector<int> lane_map(lanes);
    std::vector<std::vector<ErrorEvent>> lane_events(lanes);
    for (std::size_t j = 0; j < lanes; ++j) {
      const Traj& traj = pool[lo + j];
      lane_map[j] = static_cast<int>(traj.member);
      lane_events[j] = uniq[traj.member].events[traj.u];
    }
    const std::size_t g0 = pool[lo].site + 1;
    replay_group_marginals(
        clean.plan(), g0, lane_events, output_qubits, options.precision,
        options.float_drift_budget, ws,
        [&](auto& bsv) { clean.load_states_at(g0, lane_map, bsv); });
    for (std::size_t j = 0; j < lanes; ++j)
      umargs[pool[lo + j].member][pool[lo + j].u] = ws.margs[j];
  }

  const std::vector<std::vector<double>> deltas =
      delta_log_odds_per_rate(rate_errors, p);
  const double min_ess = options.min_ess_fraction * static_cast<double>(T);
  const int fallback_lanes =
      std::min<int>(clean.lanes(), BatchedStateVector::kMaxLanes);
  std::vector<std::vector<std::vector<double>>> out(
      R, std::vector<std::vector<double>>(L));
  for (std::size_t r = 0; r < R; ++r) {
    const double w0 = rate_errors[r].clean_probability();
    for (std::size_t m = 0; m < L; ++m) {
      const RateWeights rw = reweight(uniq[m], deltas[r]);
      if (r != p) note_ess(stats, rw.ess / static_cast<double>(T));
      if (r != p && rw.ess < min_ess) {
        if (stats) {
          ++stats->fallback_columns;
          stats->fallback_trajectories += T;
        }
        out[r][m] = estimate_channel_marginal_batched(
            clean, static_cast<int>(m), rate_errors[r], output_qubits, eopt,
            fallback_lanes, rngs[r][m]);
        continue;
      }
      out[r][m] = blend_weighted(ideals[m], w0, rw, umargs[m]);
    }
  }
  return out;
}

std::vector<std::uint64_t> sample_shot_counts(
    const std::vector<double>& distribution, std::uint64_t shots,
    Pcg64& rng) {
  return multinomial(rng, shots, distribution);
}

std::vector<std::uint64_t> sample_counts_per_shot(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, std::uint64_t shots, Pcg64& rng,
    const ReadoutError& readout) {
  const std::vector<double> ideal = clean.ideal_marginal(output_qubits);
  const int bits = static_cast<int>(output_qubits.size());
  std::vector<std::uint64_t> counts(ideal.size(), 0);

  // Clean shots all draw from the ideal marginal: build its cumulative
  // table once and binary-search per shot. Noisy shots get a fresh
  // single-draw sampler for their own trajectory's marginal.
  const CdfSampler ideal_sampler(ideal);
  // Flip each measured bit through the confusion matrix.
  auto misread = [&rng, &readout, bits](std::size_t v) {
    if (!readout.enabled()) return v;
    for (int b = 0; b < bits; ++b) {
      const bool one = (v >> b) & 1u;
      const double flip = one ? readout.p10 : readout.p01;
      if (flip > 0.0 && rng.bernoulli(flip)) v ^= std::size_t{1} << b;
    }
    return v;
  };

  for (std::uint64_t s = 0; s < shots; ++s) {
    const std::vector<ErrorEvent> events = errors.sample(rng);
    if (events.empty()) {
      ++counts[misread(ideal_sampler.draw(rng))];
      continue;
    }
    const StateVector sv = run_trajectory(clean, events);
    const CdfSampler sampler(sv.marginal_probabilities(output_qubits));
    ++counts[misread(sampler.draw(rng))];
  }
  return counts;
}

}  // namespace qfab
