#include "noise/estimator.h"

namespace qfab {

std::vector<double> estimate_channel_marginal(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    Pcg64& rng) {
  const std::vector<double> ideal = clean.ideal_marginal(output_qubits);
  const double w0 = errors.clean_probability();
  if (errors.noisy_gate_count() == 0 || w0 >= 1.0) return ideal;
  QFAB_CHECK(options.error_trajectories >= 1);

  std::vector<double> err_mean(ideal.size(), 0.0);
  for (int t = 0; t < options.error_trajectories; ++t) {
    const std::vector<ErrorEvent> events = errors.sample_at_least_one(rng);
    const StateVector sv = run_trajectory(clean, events);
    const std::vector<double> marg = sv.marginal_probabilities(output_qubits);
    for (std::size_t i = 0; i < err_mean.size(); ++i) err_mean[i] += marg[i];
  }
  const double scale =
      (1.0 - w0) / static_cast<double>(options.error_trajectories);
  std::vector<double> out(ideal.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = w0 * ideal[i] + scale * err_mean[i];
  return out;
}

std::vector<std::uint64_t> sample_shot_counts(
    const std::vector<double>& distribution, std::uint64_t shots,
    Pcg64& rng) {
  return multinomial(rng, shots, distribution);
}

std::vector<std::uint64_t> sample_counts_per_shot(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, std::uint64_t shots, Pcg64& rng,
    const ReadoutError& readout) {
  const std::vector<double> ideal = clean.ideal_marginal(output_qubits);
  const int bits = static_cast<int>(output_qubits.size());
  std::vector<std::uint64_t> counts(ideal.size(), 0);

  // Draw one outcome from a cumulative scan of `dist`.
  auto draw = [&rng](const std::vector<double>& dist) {
    const double u = rng.uniform();
    double acc = 0.0;
    for (std::size_t i = 0; i < dist.size(); ++i) {
      acc += dist[i];
      if (u < acc) return i;
    }
    return dist.size() - 1;
  };
  // Flip each measured bit through the confusion matrix.
  auto misread = [&rng, &readout, bits](std::size_t v) {
    if (!readout.enabled()) return v;
    for (int b = 0; b < bits; ++b) {
      const bool one = (v >> b) & 1u;
      const double flip = one ? readout.p10 : readout.p01;
      if (flip > 0.0 && rng.bernoulli(flip)) v ^= std::size_t{1} << b;
    }
    return v;
  };

  for (std::uint64_t s = 0; s < shots; ++s) {
    const std::vector<ErrorEvent> events = errors.sample(rng);
    if (events.empty()) {
      ++counts[misread(draw(ideal))];
      continue;
    }
    const StateVector sv = run_trajectory(clean, events);
    ++counts[misread(draw(sv.marginal_probabilities(output_qubits)))];
  }
  return counts;
}

}  // namespace qfab
