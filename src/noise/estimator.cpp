#include "noise/estimator.h"

#include <algorithm>
#include <numeric>

namespace qfab {

namespace {

/// Shared body of the two batched-estimator overloads. `state_at(g)` must
/// return the ideal state after g gates for the instance being estimated.
template <typename StateAt>
std::vector<double> channel_marginal_batched_impl(
    const FusedPlan& plan, const std::vector<double>& ideal,
    StateAt&& state_at, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng) {
  const double w0 = errors.clean_probability();
  if (errors.noisy_gate_count() == 0 || w0 >= 1.0) return ideal;
  QFAB_CHECK(options.error_trajectories >= 1);
  QFAB_CHECK(max_lanes >= 1 && max_lanes <= BatchedStateVector::kMaxLanes);
  const int T = options.error_trajectories;

  // Pre-sample every trajectory's event list sequentially: the rng stream
  // is identical to the scalar estimator's and independent of lane packing.
  std::vector<std::vector<ErrorEvent>> all_events(T);
  for (int t = 0; t < T; ++t) all_events[t] = errors.sample_at_least_one(rng);

  // Stratify: sort trajectory indices by first-error site so lanes batched
  // together share (almost) all of their ideal prefix and the broadcast
  // start state wastes little replay.
  std::vector<int> order(static_cast<std::size_t>(T));
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return all_events[a].front().gate_index < all_events[b].front().gate_index;
  });

  std::vector<std::vector<double>> margs(static_cast<std::size_t>(T));
  for (int lo = 0; lo < T; lo += max_lanes) {
    const int lanes = std::min(max_lanes, T - lo);
    // Scalar run_trajectory resumes at first_gate_index + 1; the group
    // resumes at the earliest such site and the later lanes replay the
    // few extra ideal gates batched.
    const std::size_t g0 = all_events[order[lo]].front().gate_index + 1;
    BatchedStateVector bsv(plan.circuit().num_qubits(), lanes);
    bsv.broadcast(state_at(g0));
    std::vector<std::vector<ErrorEvent>> lane_events(lanes);
    for (int l = 0; l < lanes; ++l) lane_events[l] = all_events[order[lo + l]];
    run_trajectories_batched(plan, bsv, g0, lane_events);
    std::vector<std::vector<double>> group_margs =
        bsv.all_lane_marginal_probabilities(output_qubits);
    for (int l = 0; l < lanes; ++l)
      margs[order[lo + l]] = std::move(group_margs[static_cast<std::size_t>(l)]);
  }

  // Accumulate in original sample order, not lane order, so the estimate
  // does not depend on the stratified packing.
  std::vector<double> err_mean(ideal.size(), 0.0);
  for (int t = 0; t < T; ++t)
    for (std::size_t i = 0; i < err_mean.size(); ++i)
      err_mean[i] += margs[t][i];
  const double scale = (1.0 - w0) / static_cast<double>(T);
  std::vector<double> out(ideal.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = w0 * ideal[i] + scale * err_mean[i];
  return out;
}

}  // namespace

std::vector<double> estimate_channel_marginal(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    Pcg64& rng) {
  const std::vector<double> ideal = clean.ideal_marginal(output_qubits);
  const double w0 = errors.clean_probability();
  if (errors.noisy_gate_count() == 0 || w0 >= 1.0) return ideal;
  QFAB_CHECK(options.error_trajectories >= 1);

  std::vector<double> err_mean(ideal.size(), 0.0);
  for (int t = 0; t < options.error_trajectories; ++t) {
    const std::vector<ErrorEvent> events = errors.sample_at_least_one(rng);
    const StateVector sv = run_trajectory(clean, events);
    const std::vector<double> marg = sv.marginal_probabilities(output_qubits);
    for (std::size_t i = 0; i < err_mean.size(); ++i) err_mean[i] += marg[i];
  }
  const double scale =
      (1.0 - w0) / static_cast<double>(options.error_trajectories);
  std::vector<double> out(ideal.size());
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = w0 * ideal[i] + scale * err_mean[i];
  return out;
}

std::vector<double> estimate_channel_marginal_batched(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng) {
  return channel_marginal_batched_impl(
      clean.plan(), clean.ideal_marginal(output_qubits),
      [&clean](std::size_t g) { return clean.state_at(g); }, errors,
      output_qubits, options, max_lanes, rng);
}

std::vector<double> estimate_channel_marginal_batched(
    const BatchedCleanRun& clean, int lane, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    int max_lanes, Pcg64& rng) {
  return channel_marginal_batched_impl(
      clean.plan(), clean.lane_ideal_marginal(lane, output_qubits),
      [&clean, lane](std::size_t g) { return clean.lane_state_at(lane, g); },
      errors, output_qubits, options, max_lanes, rng);
}

std::vector<std::vector<double>> estimate_channel_marginals_batched(
    const BatchedCleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, const EstimatorOptions& options,
    std::vector<Pcg64>& rngs) {
  const std::size_t L = static_cast<std::size_t>(clean.lanes());
  QFAB_CHECK(rngs.size() == L);
  std::vector<std::vector<double>> ideals(L);
  for (std::size_t i = 0; i < L; ++i)
    ideals[i] = clean.lane_ideal_marginal(static_cast<int>(i), output_qubits);
  const double w0 = errors.clean_probability();
  if (errors.noisy_gate_count() == 0 || w0 >= 1.0) return ideals;
  QFAB_CHECK(options.error_trajectories >= 1);
  const std::size_t T = static_cast<std::size_t>(options.error_trajectories);

  // Pre-sample every member's trajectories from its own stream (identical
  // rng consumption to the per-member estimator), then pool all L*T
  // trajectories across members and sort by first-error site. Groups of L
  // consecutive pooled trajectories — whichever members they came from —
  // share nearly all of their ideal prefix, so each group's batched replay
  // from the common resume point wastes little work and its injection
  // sites cluster into few fused ops. Marginals are written back per
  // (member, original sample index), so the estimate is packing-
  // independent up to replay rounding.
  std::vector<std::vector<std::vector<ErrorEvent>>> all_events(
      L, std::vector<std::vector<ErrorEvent>>(T));
  struct Traj {
    std::size_t site;  // first-error gate index
    std::size_t member;
    std::size_t t;  // original sample index within the member
  };
  std::vector<Traj> pool;
  pool.reserve(L * T);
  for (std::size_t i = 0; i < L; ++i)
    for (std::size_t t = 0; t < T; ++t) {
      all_events[i][t] = errors.sample_at_least_one(rngs[i]);
      pool.push_back(Traj{all_events[i][t].front().gate_index, i, t});
    }
  std::stable_sort(pool.begin(), pool.end(),
                   [](const Traj& a, const Traj& b) { return a.site < b.site; });

  std::vector<std::vector<std::vector<double>>> margs(
      L, std::vector<std::vector<double>>(T));
  BatchedStateVector bsv(clean.circuit().num_qubits(), clean.lanes());
  for (std::size_t lo = 0; lo < pool.size(); lo += L) {
    const std::size_t lanes = std::min(L, pool.size() - lo);
    std::vector<int> lane_map(lanes);
    std::vector<std::vector<ErrorEvent>> lane_events(lanes);
    for (std::size_t j = 0; j < lanes; ++j) {
      const Traj& traj = pool[lo + j];
      lane_map[j] = static_cast<int>(traj.member);
      lane_events[j] = all_events[traj.member][traj.t];
    }
    // Scalar run_trajectory resumes at first_gate_index + 1; the group
    // resumes at its earliest such site (pool is sorted, so that is the
    // first entry) and later lanes replay the few extra ideal gates
    // batched.
    const std::size_t g0 = pool[lo].site + 1;
    clean.load_states_at(g0, lane_map, bsv);
    run_trajectories_batched(clean.plan(), bsv, g0, lane_events);
    std::vector<std::vector<double>> group_margs =
        bsv.all_lane_marginal_probabilities(output_qubits);
    for (std::size_t j = 0; j < lanes; ++j)
      margs[pool[lo + j].member][pool[lo + j].t] = std::move(group_margs[j]);
  }

  // Per member, accumulate in the original sample order (grouping-
  // independent) and blend with the analytic clean weight.
  const double scale = (1.0 - w0) / static_cast<double>(T);
  std::vector<std::vector<double>> out(L);
  for (std::size_t i = 0; i < L; ++i) {
    const std::vector<double>& ideal = ideals[i];
    std::vector<double> err_mean(ideal.size(), 0.0);
    for (std::size_t t = 0; t < T; ++t)
      for (std::size_t b = 0; b < err_mean.size(); ++b)
        err_mean[b] += margs[i][t][b];
    out[i].resize(ideal.size());
    for (std::size_t b = 0; b < out[i].size(); ++b)
      out[i][b] = w0 * ideal[b] + scale * err_mean[b];
  }
  return out;
}

std::vector<std::uint64_t> sample_shot_counts(
    const std::vector<double>& distribution, std::uint64_t shots,
    Pcg64& rng) {
  return multinomial(rng, shots, distribution);
}

std::vector<std::uint64_t> sample_counts_per_shot(
    const CleanRun& clean, const ErrorLocations& errors,
    const std::vector<int>& output_qubits, std::uint64_t shots, Pcg64& rng,
    const ReadoutError& readout) {
  const std::vector<double> ideal = clean.ideal_marginal(output_qubits);
  const int bits = static_cast<int>(output_qubits.size());
  std::vector<std::uint64_t> counts(ideal.size(), 0);

  // Clean shots all draw from the ideal marginal: build its cumulative
  // table once and binary-search per shot. Noisy shots get a fresh
  // single-draw sampler for their own trajectory's marginal.
  const CdfSampler ideal_sampler(ideal);
  // Flip each measured bit through the confusion matrix.
  auto misread = [&rng, &readout, bits](std::size_t v) {
    if (!readout.enabled()) return v;
    for (int b = 0; b < bits; ++b) {
      const bool one = (v >> b) & 1u;
      const double flip = one ? readout.p10 : readout.p01;
      if (flip > 0.0 && rng.bernoulli(flip)) v ^= std::size_t{1} << b;
    }
    return v;
  };

  for (std::uint64_t s = 0; s < shots; ++s) {
    const std::vector<ErrorEvent> events = errors.sample(rng);
    if (events.empty()) {
      ++counts[misread(ideal_sampler.draw(rng))];
      continue;
    }
    const StateVector sv = run_trajectory(clean, events);
    const CdfSampler sampler(sv.marginal_probabilities(output_qubits));
    ++counts[misread(sampler.draw(rng))];
  }
  return counts;
}

}  // namespace qfab
