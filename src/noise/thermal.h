// Thermal relaxation (T1/T2) as a Pauli channel — the other noise source
// the paper defers to future work.
//
// The exact thermal-relaxation channel (amplitude damping γ = 1 - e^{-t/T1}
// composed with pure dephasing 1/Tφ = 1/T2 - 1/(2 T1), zero excited-state
// population) is not a Pauli channel, so it cannot be injected by our
// Pauli-trajectory machinery directly. We use its *Pauli-twirled
// approximation* (PTA), the standard device-modeling surrogate:
//
//   p_x = p_y = γ / 4,
//   p_z  = (1 - γ/2 - sqrt(1-γ) · e^{-t/Tφ}) / 2.
//
// Limits: γ→0 gives the pure-dephasing channel p_z = (1 - e^{-t/Tφ})/2;
// Tφ→∞ gives the twirled amplitude damper. Requires T2 <= 2 T1.
#pragma once

#include "common/check.h"

namespace qfab {

struct PauliProbs {
  double px = 0.0;
  double py = 0.0;
  double pz = 0.0;

  double total() const { return px + py + pz; }
};

/// Pauli-twirled thermal relaxation for a gate of length `duration`
/// (same time units as t1/t2). t1/t2 <= 0 disables the respective decay.
PauliProbs thermal_pauli_twirl(double t1, double t2, double duration);

}  // namespace qfab
