#include "noise/densitymatrix.h"

#include <algorithm>
#include <cmath>

namespace qfab {

namespace {
constexpr int kMaxQubits = 12;

Matrix conj_matrix(const Matrix& u) {
  Matrix out(u.rows(), u.cols());
  for (std::size_t r = 0; r < u.rows(); ++r)
    for (std::size_t c = 0; c < u.cols(); ++c)
      out.at(r, c) = std::conj(u.at(r, c));
  return out;
}

Matrix pauli_matrix(Pauli p) {
  switch (p) {
    case Pauli::kX: return Matrix{{0.0, 1.0}, {1.0, 0.0}};
    case Pauli::kY: return Matrix{{0.0, cplx{0.0, -1.0}},
                                  {cplx{0.0, 1.0}, 0.0}};
    case Pauli::kZ: return Matrix{{1.0, 0.0}, {0.0, -1.0}};
    case Pauli::kI: break;
  }
  return Matrix::identity(2);
}

}  // namespace

DensityMatrix::DensityMatrix(int num_qubits) : num_qubits_(num_qubits) {
  QFAB_CHECK_MSG(num_qubits >= 1 && num_qubits <= kMaxQubits,
                 "density matrix limited to " << kMaxQubits << " qubits");
  rho_.assign(pow2(2 * num_qubits), cplx{0.0, 0.0});
  rho_[0] = 1.0;
}

DensityMatrix DensityMatrix::from_statevector(const StateVector& sv) {
  DensityMatrix dm(sv.num_qubits());
  dm.rho_[0] = 0.0;  // clear the constructor's |0><0|
  const auto& amps = sv.amplitudes();
  const u64 d = dm.dim();
  for (u64 c = 0; c < d; ++c) {
    const cplx col = std::conj(amps[c]);
    if (col == cplx{0.0, 0.0}) continue;
    for (u64 r = 0; r < d; ++r) dm.rho_[r | (c << dm.num_qubits_)] =
        amps[r] * col;
  }
  return dm;
}

cplx DensityMatrix::at(u64 row, u64 col) const {
  QFAB_CHECK(row < dim() && col < dim());
  return rho_[row | (col << num_qubits_)];
}

void DensityMatrix::apply_buffer_matrix(const Matrix& u,
                                        const std::vector<int>& targets) {
  const int k = ceil_log2(u.rows());
  QFAB_CHECK(pow2(k) == u.rows() && u.rows() == u.cols());
  const u64 gd = u.rows();
  std::vector<cplx> scratch(gd);
  std::vector<u64> idx(gd);
  std::vector<int> sorted = targets;
  std::sort(sorted.begin(), sorted.end());
  const u64 outer = rho_.size() >> k;
  for (u64 g = 0; g < outer; ++g) {
    u64 base = g;
    for (int b : sorted) base = insert_zero_bit(base, b);
    for (u64 loc = 0; loc < gd; ++loc) {
      u64 i = base;
      for (int b = 0; b < k; ++b)
        if (loc & (u64{1} << b)) i |= u64{1} << targets[static_cast<std::size_t>(b)];
      idx[loc] = i;
      scratch[loc] = rho_[i];
    }
    for (u64 r = 0; r < gd; ++r) {
      cplx acc{0.0, 0.0};
      for (u64 c = 0; c < gd; ++c) acc += u.at(r, c) * scratch[c];
      rho_[idx[r]] = acc;
    }
  }
}

void DensityMatrix::apply_gate(const Gate& g) {
  const Matrix m = g.matrix();
  std::vector<int> row_targets, col_targets;
  for (int i = 0; i < g.arity(); ++i) {
    QFAB_CHECK(g.qubits[i] >= 0 && g.qubits[i] < num_qubits_);
    row_targets.push_back(g.qubits[i]);
    col_targets.push_back(g.qubits[i] + num_qubits_);
  }
  // vec(U ρ U†) = (conj(U) ⊗ U) vec(ρ) with the row index in the low bits.
  apply_buffer_matrix(m, row_targets);
  apply_buffer_matrix(conj_matrix(m), col_targets);
}

void DensityMatrix::apply_circuit(const QuantumCircuit& qc) {
  QFAB_CHECK(qc.num_qubits() == num_qubits_);
  for (const Gate& g : qc.gates()) apply_gate(g);
  // Global phase cancels in ρ.
}

void DensityMatrix::conjugate_pauli(int q, Pauli p) {
  if (p == Pauli::kI) return;
  const Matrix m = pauli_matrix(p);
  apply_buffer_matrix(m, {q});
  apply_buffer_matrix(conj_matrix(m), {q + num_qubits_});
}

void DensityMatrix::apply_pauli_channel(int q, const PauliProbs& probs) {
  QFAB_CHECK(q >= 0 && q < num_qubits_);
  const double total = probs.total();
  QFAB_CHECK(total >= 0.0 && total <= 1.0);
  if (total == 0.0) return;
  const std::vector<cplx> original = rho_;
  std::vector<cplx> acc(rho_.size());
  for (std::size_t i = 0; i < rho_.size(); ++i)
    acc[i] = (1.0 - total) * original[i];
  const std::pair<Pauli, double> terms[] = {
      {Pauli::kX, probs.px}, {Pauli::kY, probs.py}, {Pauli::kZ, probs.pz}};
  for (const auto& [pauli, w] : terms) {
    if (w <= 0.0) continue;
    rho_ = original;
    conjugate_pauli(q, pauli);
    for (std::size_t i = 0; i < rho_.size(); ++i) acc[i] += w * rho_[i];
  }
  rho_ = std::move(acc);
}

void DensityMatrix::apply_depolarizing1(int q, double p) {
  QFAB_CHECK(p >= 0.0 && p <= 1.0);
  apply_pauli_channel(q, PauliProbs{p / 4, p / 4, p / 4});
}

void DensityMatrix::apply_depolarizing2(int q0, int q1, double p) {
  QFAB_CHECK(p >= 0.0 && p <= 1.0);
  QFAB_CHECK(q0 != q1);
  if (p == 0.0) return;
  const double w = p / 16.0;
  const std::vector<cplx> original = rho_;
  std::vector<cplx> acc(rho_.size());
  for (std::size_t i = 0; i < rho_.size(); ++i)
    acc[i] = (1.0 - 15.0 * w) * original[i];
  for (int c0 = 0; c0 < 4; ++c0)
    for (int c1 = 0; c1 < 4; ++c1) {
      if (c0 == 0 && c1 == 0) continue;
      rho_ = original;
      conjugate_pauli(q0, static_cast<Pauli>(c0));
      conjugate_pauli(q1, static_cast<Pauli>(c1));
      for (std::size_t i = 0; i < rho_.size(); ++i) acc[i] += w * rho_[i];
    }
  rho_ = std::move(acc);
}

void DensityMatrix::apply_noisy_circuit(const QuantumCircuit& qc,
                                        const NoiseModel& noise) {
  QFAB_CHECK(qc.num_qubits() == num_qubits_);
  for (const Gate& g : qc.gates()) {
    apply_gate(g);
    const double p = noise.depolarizing_param(g);
    if (p > 0.0) {
      if (g.arity() == 1) apply_depolarizing1(g.qubits[0], p);
      else apply_depolarizing2(g.qubits[0], g.qubits[1], p);
    }
    if (noise.thermal_enabled()) {
      const PauliProbs t = noise.thermal_probs(g);
      if (t.total() > 0.0)
        for (int i = 0; i < g.arity() && i < 2; ++i)
          apply_pauli_channel(g.qubits[i], t);
    }
  }
}

std::vector<double> DensityMatrix::probabilities() const {
  std::vector<double> out(dim());
  for (u64 i = 0; i < dim(); ++i)
    out[i] = rho_[i | (i << num_qubits_)].real();
  return out;
}

std::vector<double> DensityMatrix::marginal_probabilities(
    const std::vector<int>& qubits) const {
  QFAB_CHECK(!qubits.empty());
  for (int q : qubits) QFAB_CHECK(q >= 0 && q < num_qubits_);
  std::vector<double> out(pow2(static_cast<int>(qubits.size())), 0.0);
  const std::vector<double> diag = probabilities();
  for (u64 i = 0; i < diag.size(); ++i) {
    u64 key = 0;
    for (std::size_t b = 0; b < qubits.size(); ++b)
      key |= static_cast<u64>(get_bit(i, qubits[b])) << b;
    out[key] += diag[i];
  }
  return out;
}

double DensityMatrix::trace() const {
  double t = 0.0;
  for (u64 i = 0; i < dim(); ++i)
    t += rho_[i | (i << num_qubits_)].real();
  return t;
}

double DensityMatrix::purity() const {
  // tr(ρ²) = Σ_{r,c} ρ_{rc} ρ_{cr} = Σ |ρ_{rc}|² for Hermitian ρ.
  double p = 0.0;
  for (const cplx& v : rho_) p += std::norm(v);
  return p;
}

double DensityMatrix::fidelity(const StateVector& psi) const {
  QFAB_CHECK(psi.num_qubits() == num_qubits_);
  const auto& amps = psi.amplitudes();
  cplx acc{0.0, 0.0};
  const u64 d = dim();
  for (u64 r = 0; r < d; ++r) {
    if (amps[r] == cplx{0.0, 0.0}) continue;
    for (u64 c = 0; c < d; ++c)
      acc += std::conj(amps[r]) * rho_[r | (c << num_qubits_)] * amps[c];
  }
  return acc.real();
}

}  // namespace qfab
