// Pauli-trajectory machinery.
//
// A *trajectory* is one stochastic unraveling of the depolarizing channel:
// the ideal circuit with a sampled set of Pauli insertions (each directly
// after its gate, matching Qiskit Aer's gate-error composition). Averaging
// |ψ|² over trajectories reproduces the channel's output distribution.
//
// CleanRun caches the ideal evolution with periodic state checkpoints so a
// trajectory only replays gates from its first error onward — on the
// paper's circuits that halves the per-trajectory cost on average.
//
// All circuit replay (checkpoint construction, state_at, trajectory
// resumption) runs through a FusedPlan (sim/fusion.h): segments between
// checkpoints and error-injection sites execute fused, and the plan's
// per-gate fallback handles boundaries that land inside a fused op. The
// plan is shareable across CleanRuns of the same circuit (one compile per
// transpiled circuit, not per operand instance).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "noise/noise_model.h"
#include "sim/batch.h"
#include "sim/fusion.h"
#include "sim/statevector.h"

namespace qfab {

/// One sampled Pauli insertion. For 1q gates pauli0 hits the gate's qubit;
/// for CX, pauli0 hits the target (qubits[0]) and pauli1 the control.
struct ErrorEvent {
  std::size_t gate_index = 0;  // error applied after this gate
  Pauli pauli0 = Pauli::kI;
  Pauli pauli1 = Pauli::kI;

  friend bool operator==(const ErrorEvent&, const ErrorEvent&) = default;
};

/// FNV-1a hash of an event list (gate sites and Pauli choices): the
/// trajectory-dedup key used by the shared-trajectory estimator. Confirm
/// collisions with element-wise equality before merging.
std::uint64_t hash_events(const std::vector<ErrorEvent>& events);

/// The ideal run of a (transpiled) circuit from a fixed initial state,
/// with checkpoints every `checkpoint_interval` gates.
class CleanRun {
 public:
  /// `plan` optionally shares a pre-compiled FusedPlan for `circuit`
  /// (must match it gate-for-gate); when null a plan is compiled here.
  CleanRun(const QuantumCircuit& circuit, StateVector initial,
           std::size_t checkpoint_interval = 64,
           std::shared_ptr<const FusedPlan> plan = nullptr);

  const QuantumCircuit& circuit() const { return plan_->circuit(); }
  const FusedPlan& plan() const { return *plan_; }
  /// State after the full circuit (global phase *not* applied — it never
  /// affects probabilities).
  const StateVector& final_state() const { return checkpoints_.back(); }
  /// Ideal output distribution of `qubits`.
  std::vector<double> ideal_marginal(const std::vector<int>& qubits) const;

  /// State after the first `gate_count` gates (copies the nearest
  /// checkpoint and replays the remainder).
  StateVector state_at(std::size_t gate_count) const;
  /// In-place form of state_at: assigns into `out` (redimensioning it,
  /// reusing its storage when sizes match) instead of constructing a
  /// fresh vector.
  void state_at(std::size_t gate_count, StateVector& out) const;

 private:
  std::shared_ptr<const FusedPlan> plan_;
  std::size_t interval_;
  std::vector<StateVector> checkpoints_;  // checkpoints_[k] = after k*interval
                                          // gates; last = final state
  std::size_t last_checkpoint_gates_ = 0;
};

/// Per-gate error-event probabilities of a circuit under a noise model,
/// with samplers for trajectory generation.
class ErrorLocations {
 public:
  ErrorLocations(const QuantumCircuit& circuit, const NoiseModel& noise);

  /// Π (1 - q_i): probability a shot sees no error anywhere.
  double clean_probability() const { return clean_prob_; }
  /// Number of gates with q_i > 0.
  std::size_t noisy_gate_count() const { return locations_.size(); }
  /// Expected number of error events per shot.
  double expected_events() const { return expected_events_; }

  /// Unconditional sample (may be empty), in gate order.
  std::vector<ErrorEvent> sample(Pcg64& rng) const;
  /// Sample conditioned on at least one event (exact sequential method).
  /// When `fired` is non-null it receives the index of the location behind
  /// each returned event (aligned with the result); the rng stream is
  /// consumed identically either way.
  std::vector<ErrorEvent> sample_at_least_one(
      Pcg64& rng, std::vector<std::uint32_t>* fired = nullptr) const;

  /// Number of error locations (noisy gate × slot entries).
  std::size_t location_count() const { return locations_.size(); }
  /// Event probability q_i of location i.
  double location_prob(std::size_t i) const { return locations_[i].prob; }
  /// log(q_i / (1 - q_i)): the per-site log odds. A trajectory sampled
  /// from a proposal location set reweights to a target set by
  /// exp(Σ_{i fired} [target odds_i − proposal odds_i]) up to a constant
  /// that cancels under self-normalization (see estimator.h).
  double location_log_odds(std::size_t i) const;

  /// Whether trajectories sampled from this location set can be
  /// importance-reweighted to `other` by per-site event probabilities
  /// alone: same gate sites, kinds, slots, and within-location Pauli
  /// distributions (the Pauli pick factors then cancel in the importance
  /// ratio), with every event probability positive on both sides.
  bool reweightable_to(const ErrorLocations& other) const;

 private:
  ErrorEvent make_event(std::size_t loc, Pcg64& rng) const;

  struct Location {
    std::size_t gate_index;
    double prob;
    enum class Kind {
      kDepol1q,   // uniform over {X, Y, Z} on the gate's qubit
      kDepol2q,   // uniform over the 15 non-identity Pauli pairs
      kWeighted,  // weighted 1q Pauli on gate qubit `slot` (thermal PTA)
    } kind;
    int slot;                  // kWeighted: 0 = target, 1 = control
    double wx, wy, wz;         // kWeighted: relative Pauli weights
  };
  std::vector<Location> locations_;
  std::vector<double> suffix_clean_;  // Π_{j>=i} (1 - q_j)
  double clean_prob_ = 1.0;
  double expected_events_ = 0.0;
};

/// Run one trajectory: replay `clean` from the first event, injecting all
/// events. Events must be sorted by gate_index. Returns the final state.
StateVector run_trajectory(const CleanRun& clean,
                           const std::vector<ErrorEvent>& events);

/// In-place form of run_trajectory: writes the trajectory's final state
/// into `out`, reusing its storage — the scalar estimator's per-trajectory
/// scratch path (no state-vector allocation per trajectory).
void run_trajectory(const CleanRun& clean,
                    const std::vector<ErrorEvent>& events, StateVector& out);

/// The ideal runs of one circuit from up to kMaxLanes *different* initial
/// states (a group of operand instances), advanced in lockstep through one
/// shared FusedPlan on the batched engine. Checkpoints are stored batched;
/// per-lane queries extract a lane and (for state_at) replay the remainder
/// on the scalar path.
class BatchedCleanRun {
 public:
  BatchedCleanRun(std::shared_ptr<const FusedPlan> plan,
                  const std::vector<StateVector>& initials,
                  std::size_t checkpoint_interval = 64);

  int lanes() const { return checkpoints_.front().lanes(); }
  const FusedPlan& plan() const { return *plan_; }
  const QuantumCircuit& circuit() const { return plan_->circuit(); }

  /// Lane's state after the full circuit (lane pending phase folded in;
  /// circuit global phase NOT applied, mirroring CleanRun::final_state).
  StateVector lane_final_state(int lane) const;
  /// All lanes' final states, batched, without extraction (lane pending
  /// phases not folded in — norms are phase-invariant, which is what the
  /// health sentinels need this for).
  const BatchedStateVector& final_states() const { return checkpoints_.back(); }
  /// Ideal output distribution of `qubits` for one lane.
  std::vector<double> lane_ideal_marginal(int lane,
                                          const std::vector<int>& qubits) const;
  /// Lane's state after the first `gate_count` gates (nearest batched
  /// checkpoint, lane extracted, remainder replayed scalar).
  StateVector lane_state_at(int lane, std::size_t gate_count) const;
  /// Every lane's state after the first `gate_count` gates, as one batched
  /// vector: nearest checkpoint copied, remainder replayed batched (fused
  /// via subrange plans). Feeds group trajectory replays directly.
  BatchedStateVector states_at(std::size_t gate_count) const;
  /// Allocation-free, lane-permuted form of states_at: `out` lane j
  /// becomes member lane_map[j]'s state after `gate_count` gates (members
  /// may repeat, so one group can carry several trajectories of the same
  /// member). Reuses `out`'s storage across calls. The float32 replay tier
  /// passes a BatchedStateVectorF: checkpoints stay double (the ideal run
  /// is always reference precision) and amplitudes are rounded once here,
  /// then the checkpoint-to-site replay runs at the narrow precision.
  template <typename Real>
  void load_states_at(std::size_t gate_count, const std::vector<int>& lane_map,
                      BatchedStateVectorT<Real>& out) const;

 private:
  /// Index of the last checkpoint at or before `gate_count` gates.
  std::size_t checkpoint_before(std::size_t gate_count) const;

  std::shared_ptr<const FusedPlan> plan_;
  std::size_t interval_;
  /// Checkpoints land on fused-op boundaries at (or just past) every
  /// `interval_` gates, so building and resuming from them never splits an
  /// op. boundaries_[k] is the gate count of checkpoints_[k]; the last
  /// checkpoint is the final state.
  std::vector<std::size_t> boundaries_;
  std::vector<BatchedStateVector> checkpoints_;
};

/// Advance every lane of `bsv` — pre-loaded with its trajectory's state
/// after `start_gates` gates — through the rest of the plan, injecting
/// lane_events[l] into lane l at the exact gate sites. Each lane's events
/// must be sorted by gate_index with first site >= start_gates (site =
/// gate_index + 1). The circuit global phase is NOT applied (mirrors
/// run_trajectory). Instantiated for both replay precisions (see Precision
/// in sim/batch.h).
///
/// Execution is a fused tile walk (apply_batch_walk in sim/batch.h): the
/// shared gate segments and the per-lane Paulis between them flatten into
/// one step sequence, and every maximal run of tile-eligible steps takes a
/// single pass over the amplitude tiles — so the replay cost no longer
/// grows with the number of distinct injection sites (which is ~lanes ×
/// events/lane for a batched group). Op-interior sites decompose the host
/// op per lane: each lane's arithmetic is exactly the scalar
/// run_trajectory decomposition of its own trajectory, so a lane's replay
/// is bitwise independent of which trajectories share the batch, and
/// agreement with the per-split reference below is at re-association
/// level (<= 1e-12 double) rather than bitwise. Raw-plane comparisons
/// must fold each lane's pending phase (lane_pending_phase): fused tables
/// carry absolute phases in the amplitudes while sliced application
/// routes the same phase through the deferred accumulator.
template <typename Real>
void run_trajectories_batched(
    const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
    std::size_t start_gates,
    const std::vector<std::vector<ErrorEvent>>& lane_events);

/// The pre-walk reference driver: one apply_plan_range pass per distinct
/// injection site, per-lane Paulis full-width between passes. Same
/// contract; kept as the equivalence oracle for tests and the
/// before/after bench comparison (states agree to re-association
/// rounding — it slices every lane at the merged schedule's sites, the
/// walk only at each lane's own). Its full-vector traffic scales with the
/// merged schedule length, which is the lane-scaling regression the walk
/// driver removes.
template <typename Real>
void run_trajectories_batched_split(
    const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
    std::size_t start_gates,
    const std::vector<std::vector<ErrorEvent>>& lane_events);

extern template void run_trajectories_batched<double>(
    const FusedPlan&, BatchedStateVector&, std::size_t,
    const std::vector<std::vector<ErrorEvent>>&);
extern template void run_trajectories_batched<float>(
    const FusedPlan&, BatchedStateVectorF&, std::size_t,
    const std::vector<std::vector<ErrorEvent>>&);
extern template void run_trajectories_batched_split<double>(
    const FusedPlan&, BatchedStateVector&, std::size_t,
    const std::vector<std::vector<ErrorEvent>>&);
extern template void run_trajectories_batched_split<float>(
    const FusedPlan&, BatchedStateVectorF&, std::size_t,
    const std::vector<std::vector<ErrorEvent>>&);

}  // namespace qfab
