#include "noise/thermal.h"

#include <cmath>

namespace qfab {

PauliProbs thermal_pauli_twirl(double t1, double t2, double duration) {
  QFAB_CHECK(duration >= 0.0);
  PauliProbs out;
  if (duration == 0.0) return out;
  const double inv_t1 = t1 > 0.0 ? 1.0 / t1 : 0.0;
  const double inv_t2 = t2 > 0.0 ? 1.0 / t2 : 0.0;
  QFAB_CHECK_MSG(inv_t2 + 1e-15 >= inv_t1 / 2.0,
                 "thermal relaxation requires T2 <= 2*T1");
  const double gamma = inv_t1 > 0.0 ? 1.0 - std::exp(-duration * inv_t1) : 0.0;
  const double inv_tphi = inv_t2 - inv_t1 / 2.0;
  const double dephase =
      inv_tphi > 0.0 ? std::exp(-duration * inv_tphi) : 1.0;

  out.px = gamma / 4.0;
  out.py = gamma / 4.0;
  out.pz = 0.5 * (1.0 - gamma / 2.0 - std::sqrt(1.0 - gamma) * dephase);
  QFAB_CHECK(out.pz >= -1e-12);
  if (out.pz < 0.0) out.pz = 0.0;
  QFAB_CHECK(out.total() <= 1.0);
  return out;
}

}  // namespace qfab
