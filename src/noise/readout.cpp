#include "noise/readout.h"

#include "common/bits.h"

namespace qfab {

namespace {

void apply_bit_confusion(std::vector<double>& dist, int bit,
                         const ReadoutError& err) {
  QFAB_CHECK(err.p01 >= 0.0 && err.p01 <= 1.0);
  QFAB_CHECK(err.p10 >= 0.0 && err.p10 <= 1.0);
  if (!err.enabled()) return;
  const u64 b = u64{1} << bit;
  const u64 n = dist.size();
  for (u64 base = 0; base < n; base += 2 * b)
    for (u64 off = 0; off < b; ++off) {
      const u64 i0 = base + off;
      const u64 i1 = i0 | b;
      const double d0 = dist[i0], d1 = dist[i1];
      dist[i0] = (1.0 - err.p01) * d0 + err.p10 * d1;
      dist[i1] = err.p01 * d0 + (1.0 - err.p10) * d1;
    }
}

}  // namespace

void apply_readout_error(std::vector<double>& dist, const ReadoutError& err) {
  const int k = ceil_log2(dist.size());
  QFAB_CHECK(pow2(k) == dist.size());
  for (int bit = 0; bit < k; ++bit) apply_bit_confusion(dist, bit, err);
}

void apply_readout_error(std::vector<double>& dist,
                         const std::vector<ReadoutError>& errs) {
  const int k = ceil_log2(dist.size());
  QFAB_CHECK(pow2(k) == dist.size());
  QFAB_CHECK(static_cast<int>(errs.size()) == k);
  for (int bit = 0; bit < k; ++bit) apply_bit_confusion(dist, bit, errs[bit]);
}

}  // namespace qfab
