#include "noise/mitigation.h"

#include <cmath>

#include "common/bits.h"

namespace qfab {

std::vector<double> invert_readout(const std::vector<double>& dist,
                                   const ReadoutError& err) {
  const int k = ceil_log2(dist.size());
  QFAB_CHECK(pow2(k) == dist.size());
  const double det = 1.0 - err.p01 - err.p10;
  QFAB_CHECK_MSG(det > 1e-12, "confusion matrix is not invertible");
  // Inverse of [[1-p01, p10], [p01, 1-p10]] is
  // (1/det) [[1-p10, -p10], [-p01, 1-p01]].
  const double a = (1.0 - err.p10) / det, b = -err.p10 / det;
  const double c = -err.p01 / det, d = (1.0 - err.p01) / det;

  std::vector<double> out = dist;
  for (int bit = 0; bit < k; ++bit) {
    const u64 bmask = u64{1} << bit;
    for (u64 base = 0; base < out.size(); base += 2 * bmask)
      for (u64 off = 0; off < bmask; ++off) {
        const u64 i0 = base + off;
        const u64 i1 = i0 | bmask;
        const double d0 = out[i0], d1 = out[i1];
        out[i0] = a * d0 + b * d1;
        out[i1] = c * d0 + d * d1;
      }
  }
  return clip_to_probabilities(std::move(out));
}

std::vector<double> richardson_weights(const std::vector<double>& scales) {
  QFAB_CHECK(!scales.empty());
  std::vector<double> w(scales.size(), 1.0);
  for (std::size_t i = 0; i < scales.size(); ++i) {
    for (std::size_t j = 0; j < scales.size(); ++j) {
      if (i == j) continue;
      const double denom = scales[j] - scales[i];
      QFAB_CHECK_MSG(std::abs(denom) > 1e-12, "scales must be distinct");
      // Lagrange basis evaluated at 0: Π_j (0 - s_j) / (s_i - s_j).
      w[i] *= scales[j] / denom;
    }
  }
  return w;
}

std::vector<double> richardson_extrapolate(
    const std::vector<std::vector<double>>& dists,
    const std::vector<double>& scales) {
  QFAB_CHECK(dists.size() == scales.size() && !dists.empty());
  const std::vector<double> w = richardson_weights(scales);
  std::vector<double> out(dists[0].size(), 0.0);
  for (std::size_t s = 0; s < dists.size(); ++s) {
    QFAB_CHECK(dists[s].size() == out.size());
    for (std::size_t i = 0; i < out.size(); ++i)
      out[i] += w[s] * dists[s][i];
  }
  return clip_to_probabilities(std::move(out));
}

std::vector<double> clip_to_probabilities(std::vector<double> dist) {
  double total = 0.0;
  for (double& p : dist) {
    if (p < 0.0) p = 0.0;
    total += p;
  }
  QFAB_CHECK_MSG(total > 0.0, "distribution vanished after clipping");
  for (double& p : dist) p /= total;
  return dist;
}

}  // namespace qfab
