// Readout (measurement) error — one of the noise sources the paper
// explicitly defers to future work (Sec. I). Modeled as an independent
// per-qubit confusion matrix applied to the output distribution:
//   P(read 1 | actual 0) = p01,  P(read 0 | actual 1) = p10.
// Because shots are i.i.d., applying the tensor-product confusion to the
// channel marginal before multinomial sampling is exactly equivalent to
// flipping each shot's bits independently.
#pragma once

#include <vector>

namespace qfab {

struct ReadoutError {
  double p01 = 0.0;  // P(measured 1 | prepared 0)
  double p10 = 0.0;  // P(measured 0 | prepared 1)

  bool enabled() const { return p01 > 0.0 || p10 > 0.0; }
};

/// Apply the same confusion matrix to every bit of a distribution over
/// k-bit outcomes (dist.size() must be a power of two). In place, O(k 2^k).
void apply_readout_error(std::vector<double>& dist, const ReadoutError& err);

/// Heterogeneous per-qubit version; errs.size() must equal log2(dist size).
void apply_readout_error(std::vector<double>& dist,
                         const std::vector<ReadoutError>& errs);

}  // namespace qfab
