#include "noise/trajectory.h"

#include <algorithm>
#include <cmath>

namespace qfab {

CleanRun::CleanRun(const QuantumCircuit& circuit, StateVector initial,
                   std::size_t checkpoint_interval,
                   std::shared_ptr<const FusedPlan> plan)
    : plan_(std::move(plan)), interval_(checkpoint_interval) {
  QFAB_CHECK(circuit.num_qubits() == initial.num_qubits());
  QFAB_CHECK(interval_ >= 1);
  if (!plan_) {
    plan_ = std::make_shared<const FusedPlan>(circuit);
  } else {
    // A shared plan must describe this exact circuit: trajectory injection
    // addresses gates by index through the plan's mapping.
    QFAB_CHECK(plan_->circuit().num_qubits() == circuit.num_qubits());
    QFAB_CHECK(plan_->gate_count() == circuit.gates().size());
  }
  const std::size_t total = circuit.gates().size();
  checkpoints_.reserve(total / interval_ + 2);
  checkpoints_.push_back(initial);  // after 0 gates
  StateVector sv = std::move(initial);
  std::size_t applied = 0;
  while (applied < total) {
    const std::size_t next = std::min(applied + interval_, total);
    plan_->apply_range(sv, applied, next);
    applied = next;
    checkpoints_.push_back(sv);
    last_checkpoint_gates_ = applied;
  }
  // When total is a multiple of interval the final state is the last
  // checkpoint; otherwise the loop above already pushed it.
}

std::vector<double> CleanRun::ideal_marginal(
    const std::vector<int>& qubits) const {
  return final_state().marginal_probabilities(qubits);
}

StateVector CleanRun::state_at(std::size_t gate_count) const {
  QFAB_CHECK(gate_count <= plan_->gate_count());
  const std::size_t k = std::min(gate_count / interval_,
                                 checkpoints_.size() - 1);
  const std::size_t base_gates = std::min(k * interval_, gate_count);
  StateVector sv = checkpoints_[k];
  plan_->apply_range(sv, base_gates, gate_count);
  return sv;
}

ErrorLocations::ErrorLocations(const QuantumCircuit& circuit,
                               const NoiseModel& noise) {
  const auto& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const double q = noise.error_event_prob(gates[i]);
    QFAB_CHECK(q >= 0.0 && q < 1.0);
    if (q > 0.0) {
      const auto kind = gates[i].arity() == 2 ? Location::Kind::kDepol2q
                                              : Location::Kind::kDepol1q;
      locations_.push_back(Location{i, q, kind, 0, 0.0, 0.0, 0.0});
    }
    if (noise.thermal_enabled()) {
      const PauliProbs t = noise.thermal_probs(gates[i]);
      if (t.total() > 0.0)
        for (int slot = 0; slot < gates[i].arity() && slot < 2; ++slot)
          locations_.push_back(Location{i, t.total(),
                                        Location::Kind::kWeighted, slot,
                                        t.px, t.py, t.pz});
    }
  }
  suffix_clean_.assign(locations_.size() + 1, 1.0);
  for (std::size_t i = locations_.size(); i-- > 0;)
    suffix_clean_[i] = suffix_clean_[i + 1] * (1.0 - locations_[i].prob);
  clean_prob_ = suffix_clean_.empty() ? 1.0 : suffix_clean_[0];
  for (const Location& loc : locations_) expected_events_ += loc.prob;
}

ErrorEvent ErrorLocations::make_event(std::size_t loc, Pcg64& rng) const {
  const Location& l = locations_[loc];
  ErrorEvent ev;
  ev.gate_index = l.gate_index;
  switch (l.kind) {
    case Location::Kind::kDepol2q: {
      // Uniform over the 15 non-identity Pauli pairs.
      const auto code = static_cast<std::uint32_t>(rng.uniform_int(15) + 1);
      ev.pauli0 = static_cast<Pauli>(code & 3u);
      ev.pauli1 = static_cast<Pauli>(code >> 2);
      break;
    }
    case Location::Kind::kDepol1q:
      ev.pauli0 = static_cast<Pauli>(rng.uniform_int(3) + 1);
      break;
    case Location::Kind::kWeighted: {
      const double u = rng.uniform() * (l.wx + l.wy + l.wz);
      Pauli p = Pauli::kZ;
      if (u < l.wx) p = Pauli::kX;
      else if (u < l.wx + l.wy) p = Pauli::kY;
      if (l.slot == 0) ev.pauli0 = p;
      else ev.pauli1 = p;
      break;
    }
  }
  return ev;
}

std::vector<ErrorEvent> ErrorLocations::sample(Pcg64& rng) const {
  std::vector<ErrorEvent> events;
  for (std::size_t i = 0; i < locations_.size(); ++i)
    if (rng.bernoulli(locations_[i].prob)) events.push_back(make_event(i, rng));
  return events;
}

std::vector<ErrorEvent> ErrorLocations::sample_at_least_one(
    Pcg64& rng) const {
  QFAB_CHECK_MSG(!locations_.empty() && clean_prob_ < 1.0,
                 "cannot condition on an error with no noisy gates");
  std::vector<ErrorEvent> events;
  // Sequential conditional Bernoulli: while no event has occurred yet,
  // location i fires with probability q_i / (1 - S_i) where S_i is the
  // probability that all of [i, end) stay clean. Once one event exists the
  // remaining locations are unconditioned.
  bool have_event = false;
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    double p = locations_[i].prob;
    if (!have_event) {
      const double denom = 1.0 - suffix_clean_[i];
      QFAB_CHECK(denom > 0.0);
      p = p / denom;
      // The last location, if still unconditioned, must fire (p -> 1).
      if (p > 1.0) p = 1.0;
    }
    if (rng.bernoulli(p)) {
      events.push_back(make_event(i, rng));
      have_event = true;
    }
  }
  QFAB_CHECK(!events.empty());
  return events;
}

StateVector run_trajectory(const CleanRun& clean,
                           const std::vector<ErrorEvent>& events) {
  const QuantumCircuit& qc = clean.circuit();
  const std::size_t total = qc.gates().size();
  if (events.empty()) return clean.final_state();
  QFAB_CHECK(std::is_sorted(events.begin(), events.end(),
                            [](const ErrorEvent& a, const ErrorEvent& b) {
                              return a.gate_index < b.gate_index;
                            }));
  // Resume the ideal run just after the first faulty gate.
  StateVector sv = clean.state_at(events.front().gate_index + 1);
  std::size_t applied = events.front().gate_index + 1;
  for (std::size_t e = 0; e < events.size(); ++e) {
    const ErrorEvent& ev = events[e];
    QFAB_CHECK(ev.gate_index < total);
    // Replay ideal gates up to and including the faulty one.
    if (ev.gate_index + 1 > applied) {
      clean.plan().apply_range(sv, applied, ev.gate_index + 1);
      applied = ev.gate_index + 1;
    }
    const Gate& g = qc.gates()[ev.gate_index];
    if (ev.pauli0 != Pauli::kI) sv.apply_pauli(ev.pauli0, g.qubits[0]);
    if (ev.pauli1 != Pauli::kI) {
      QFAB_CHECK(g.arity() >= 2);
      sv.apply_pauli(ev.pauli1, g.qubits[1]);
    }
  }
  clean.plan().apply_range(sv, applied, total);
  return sv;
}

}  // namespace qfab
