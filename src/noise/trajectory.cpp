#include "noise/trajectory.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/fault.h"

namespace qfab {

std::uint64_t hash_events(const std::vector<ErrorEvent>& events) {
  std::uint64_t h = 0xcbf29ce484222325ULL;
  auto mix = [&h](std::uint64_t v) {
    h ^= v;
    h *= 0x100000001b3ULL;
  };
  for (const ErrorEvent& ev : events) {
    mix(ev.gate_index);
    mix(static_cast<std::uint64_t>(ev.pauli0) |
        (static_cast<std::uint64_t>(ev.pauli1) << 2));
  }
  return h;
}

CleanRun::CleanRun(const QuantumCircuit& circuit, StateVector initial,
                   std::size_t checkpoint_interval,
                   std::shared_ptr<const FusedPlan> plan)
    : plan_(std::move(plan)), interval_(checkpoint_interval) {
  QFAB_CHECK(circuit.num_qubits() == initial.num_qubits());
  QFAB_CHECK(interval_ >= 1);
  if (!plan_) {
    plan_ = std::make_shared<const FusedPlan>(circuit);
  } else {
    // A shared plan must describe this exact circuit: trajectory injection
    // addresses gates by index through the plan's mapping.
    QFAB_CHECK(plan_->circuit().num_qubits() == circuit.num_qubits());
    QFAB_CHECK(plan_->gate_count() == circuit.gates().size());
  }
  const std::size_t total = circuit.gates().size();
  checkpoints_.reserve(total / interval_ + 2);
  checkpoints_.push_back(initial);  // after 0 gates
  StateVector sv = std::move(initial);
  std::size_t applied = 0;
  while (applied < total) {
    const std::size_t next = std::min(applied + interval_, total);
    plan_->apply_range(sv, applied, next);
    applied = next;
    checkpoints_.push_back(sv);
    last_checkpoint_gates_ = applied;
  }
  // When total is a multiple of interval the final state is the last
  // checkpoint; otherwise the loop above already pushed it.
}

std::vector<double> CleanRun::ideal_marginal(
    const std::vector<int>& qubits) const {
  return final_state().marginal_probabilities(qubits);
}

StateVector CleanRun::state_at(std::size_t gate_count) const {
  QFAB_CHECK(gate_count <= plan_->gate_count());
  const std::size_t k = std::min(gate_count / interval_,
                                 checkpoints_.size() - 1);
  const std::size_t base_gates = std::min(k * interval_, gate_count);
  StateVector sv = checkpoints_[k];
  plan_->apply_range(sv, base_gates, gate_count);
  return sv;
}

void CleanRun::state_at(std::size_t gate_count, StateVector& out) const {
  QFAB_CHECK(gate_count <= plan_->gate_count());
  const std::size_t k = std::min(gate_count / interval_,
                                 checkpoints_.size() - 1);
  const std::size_t base_gates = std::min(k * interval_, gate_count);
  out = checkpoints_[k];  // vector assignment reuses out's heap storage
  plan_->apply_range(out, base_gates, gate_count);
}

ErrorLocations::ErrorLocations(const QuantumCircuit& circuit,
                               const NoiseModel& noise) {
  const auto& gates = circuit.gates();
  for (std::size_t i = 0; i < gates.size(); ++i) {
    const double q = noise.error_event_prob(gates[i]);
    QFAB_CHECK(q >= 0.0 && q < 1.0);
    if (q > 0.0) {
      const auto kind = gates[i].arity() == 2 ? Location::Kind::kDepol2q
                                              : Location::Kind::kDepol1q;
      locations_.push_back(Location{i, q, kind, 0, 0.0, 0.0, 0.0});
    }
    if (noise.thermal_enabled()) {
      const PauliProbs t = noise.thermal_probs(gates[i]);
      if (t.total() > 0.0)
        for (int slot = 0; slot < gates[i].arity() && slot < 2; ++slot)
          locations_.push_back(Location{i, t.total(),
                                        Location::Kind::kWeighted, slot,
                                        t.px, t.py, t.pz});
    }
  }
  suffix_clean_.assign(locations_.size() + 1, 1.0);
  for (std::size_t i = locations_.size(); i-- > 0;)
    suffix_clean_[i] = suffix_clean_[i + 1] * (1.0 - locations_[i].prob);
  clean_prob_ = suffix_clean_.empty() ? 1.0 : suffix_clean_[0];
  for (const Location& loc : locations_) expected_events_ += loc.prob;
}

ErrorEvent ErrorLocations::make_event(std::size_t loc, Pcg64& rng) const {
  const Location& l = locations_[loc];
  ErrorEvent ev;
  ev.gate_index = l.gate_index;
  switch (l.kind) {
    case Location::Kind::kDepol2q: {
      // Uniform over the 15 non-identity Pauli pairs.
      const auto code = static_cast<std::uint32_t>(rng.uniform_int(15) + 1);
      ev.pauli0 = static_cast<Pauli>(code & 3u);
      ev.pauli1 = static_cast<Pauli>(code >> 2);
      break;
    }
    case Location::Kind::kDepol1q:
      ev.pauli0 = static_cast<Pauli>(rng.uniform_int(3) + 1);
      break;
    case Location::Kind::kWeighted: {
      const double u = rng.uniform() * (l.wx + l.wy + l.wz);
      Pauli p = Pauli::kZ;
      if (u < l.wx) p = Pauli::kX;
      else if (u < l.wx + l.wy) p = Pauli::kY;
      if (l.slot == 0) ev.pauli0 = p;
      else ev.pauli1 = p;
      break;
    }
  }
  return ev;
}

std::vector<ErrorEvent> ErrorLocations::sample(Pcg64& rng) const {
  std::vector<ErrorEvent> events;
  for (std::size_t i = 0; i < locations_.size(); ++i)
    if (rng.bernoulli(locations_[i].prob)) events.push_back(make_event(i, rng));
  return events;
}

std::vector<ErrorEvent> ErrorLocations::sample_at_least_one(
    Pcg64& rng, std::vector<std::uint32_t>* fired) const {
  QFAB_CHECK_MSG(!locations_.empty() && clean_prob_ < 1.0,
                 "cannot condition on an error with no noisy gates");
  std::vector<ErrorEvent> events;
  if (fired) fired->clear();
  // Sequential conditional Bernoulli: while no event has occurred yet,
  // location i fires with probability q_i / (1 - S_i) where S_i is the
  // probability that all of [i, end) stay clean. Once one event exists the
  // remaining locations are unconditioned.
  bool have_event = false;
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    double p = locations_[i].prob;
    if (!have_event) {
      const double denom = 1.0 - suffix_clean_[i];
      QFAB_CHECK(denom > 0.0);
      p = p / denom;
      // The last location, if still unconditioned, must fire (p -> 1).
      if (p > 1.0) p = 1.0;
    }
    if (rng.bernoulli(p)) {
      events.push_back(make_event(i, rng));
      if (fired) fired->push_back(static_cast<std::uint32_t>(i));
      have_event = true;
    }
  }
  QFAB_CHECK(!events.empty());
  return events;
}

double ErrorLocations::location_log_odds(std::size_t i) const {
  QFAB_CHECK(i < locations_.size());
  const double q = locations_[i].prob;
  return std::log(q) - std::log1p(-q);
}

bool ErrorLocations::reweightable_to(const ErrorLocations& other) const {
  if (locations_.size() != other.locations_.size()) return false;
  for (std::size_t i = 0; i < locations_.size(); ++i) {
    const Location& a = locations_[i];
    const Location& b = other.locations_[i];
    if (a.gate_index != b.gate_index || a.kind != b.kind || a.slot != b.slot)
      return false;
    if (a.prob <= 0.0 || b.prob <= 0.0) return false;
    // The Pauli pick distribution must match so it cancels in the ratio;
    // for depolarizing kinds it is uniform by construction.
    if (a.kind == Location::Kind::kWeighted &&
        (a.wx != b.wx || a.wy != b.wy || a.wz != b.wz))
      return false;
  }
  return true;
}

StateVector run_trajectory(const CleanRun& clean,
                           const std::vector<ErrorEvent>& events) {
  StateVector sv(clean.circuit().num_qubits());
  run_trajectory(clean, events, sv);
  return sv;
}

void run_trajectory(const CleanRun& clean,
                    const std::vector<ErrorEvent>& events, StateVector& out) {
  const QuantumCircuit& qc = clean.circuit();
  const std::size_t total = qc.gates().size();
  if (events.empty()) {
    out = clean.final_state();
    return;
  }
  QFAB_CHECK(std::is_sorted(events.begin(), events.end(),
                            [](const ErrorEvent& a, const ErrorEvent& b) {
                              return a.gate_index < b.gate_index;
                            }));
  // Resume the ideal run just after the first faulty gate.
  clean.state_at(events.front().gate_index + 1, out);
  std::size_t applied = events.front().gate_index + 1;
  for (std::size_t e = 0; e < events.size(); ++e) {
    const ErrorEvent& ev = events[e];
    QFAB_CHECK(ev.gate_index < total);
    // Replay ideal gates up to and including the faulty one.
    if (ev.gate_index + 1 > applied) {
      clean.plan().apply_range(out, applied, ev.gate_index + 1);
      applied = ev.gate_index + 1;
    }
    const Gate& g = qc.gates()[ev.gate_index];
    if (ev.pauli0 != Pauli::kI) out.apply_pauli(ev.pauli0, g.qubits[0]);
    if (ev.pauli1 != Pauli::kI) {
      QFAB_CHECK(g.arity() >= 2);
      out.apply_pauli(ev.pauli1, g.qubits[1]);
    }
  }
  clean.plan().apply_range(out, applied, total);
}

BatchedCleanRun::BatchedCleanRun(std::shared_ptr<const FusedPlan> plan,
                                 const std::vector<StateVector>& initials,
                                 std::size_t checkpoint_interval)
    : plan_(std::move(plan)), interval_(checkpoint_interval) {
  QFAB_CHECK(plan_ != nullptr);
  QFAB_CHECK(!initials.empty() &&
             initials.size() <=
                 static_cast<std::size_t>(BatchedStateVector::kMaxLanes));
  QFAB_CHECK(interval_ >= 1);
  const int nq = plan_->circuit().num_qubits();
  BatchedStateVector bsv(nq, static_cast<int>(initials.size()));
  for (std::size_t l = 0; l < initials.size(); ++l) {
    QFAB_CHECK(initials[l].num_qubits() == nq);
    bsv.set_lane(static_cast<int>(l), initials[l]);
  }
  const std::size_t total = plan_->gate_count();
  checkpoints_.reserve(total / interval_ + 2);
  boundaries_.reserve(total / interval_ + 2);
  checkpoints_.push_back(bsv);
  boundaries_.push_back(0);
  std::size_t applied = 0;
  while (applied < total) {
    std::size_t next = std::min(applied + interval_, total);
    if (next < total) {
      // Snap forward to the next fused-op boundary: an interval boundary
      // inside an op would force a partial-op pass both here and on every
      // resume from the checkpoint.
      const FusedOp& op = plan_->ops()[plan_->op_of_gate(next)];
      if (op.gate_begin != next) next = std::min(op.gate_end, total);
    }
    apply_plan_range(*plan_, bsv, applied, next);
    applied = next;
    checkpoints_.push_back(bsv);
    boundaries_.push_back(applied);
  }
}

StateVector BatchedCleanRun::lane_final_state(int lane) const {
  return checkpoints_.back().lane_state(lane);
}

std::vector<double> BatchedCleanRun::lane_ideal_marginal(
    int lane, const std::vector<int>& qubits) const {
  return checkpoints_.back().lane_marginal_probabilities(lane, qubits);
}

std::size_t BatchedCleanRun::checkpoint_before(std::size_t gate_count) const {
  const auto it = std::upper_bound(boundaries_.begin(), boundaries_.end(),
                                   gate_count);
  return static_cast<std::size_t>(it - boundaries_.begin()) - 1;
}

StateVector BatchedCleanRun::lane_state_at(int lane,
                                           std::size_t gate_count) const {
  QFAB_CHECK(gate_count <= plan_->gate_count());
  const std::size_t k = checkpoint_before(gate_count);
  StateVector sv = checkpoints_[k].lane_state(lane);
  plan_->apply_range(sv, boundaries_[k], gate_count);
  return sv;
}

BatchedStateVector BatchedCleanRun::states_at(std::size_t gate_count) const {
  QFAB_CHECK(gate_count <= plan_->gate_count());
  const std::size_t k = checkpoint_before(gate_count);
  BatchedStateVector bsv = checkpoints_[k];
  apply_plan_range(*plan_, bsv, boundaries_[k], gate_count);
  return bsv;
}

template <typename Real>
void BatchedCleanRun::load_states_at(std::size_t gate_count,
                                     const std::vector<int>& lane_map,
                                     BatchedStateVectorT<Real>& out) const {
  QFAB_CHECK(gate_count <= plan_->gate_count());
  const std::size_t k = checkpoint_before(gate_count);
  out.assign_permuted(checkpoints_[k], lane_map);
  apply_plan_range(*plan_, out, boundaries_[k], gate_count);
}

template void BatchedCleanRun::load_states_at<double>(
    std::size_t, const std::vector<int>&, BatchedStateVector&) const;
template void BatchedCleanRun::load_states_at<float>(
    std::size_t, const std::vector<int>&, BatchedStateVectorF&) const;

namespace {

/// One merged per-lane Pauli insertion of a batched trajectory group.
struct Injection {
  std::size_t site;  // gate count at which the Pauli lands (index + 1)
  int lane;
  std::size_t gate_index;
  Pauli pauli0, pauli1;
};

/// Merge every lane's events into one ascending injection schedule; the
/// stable sort keeps same-site injections in lane order (the order never
/// matters physically — Paulis on different lanes commute — but it keeps
/// the execution deterministic).
std::vector<Injection> merge_schedule(
    const std::vector<std::vector<ErrorEvent>>& lane_events,
    std::size_t start_gates, std::size_t total) {
  std::vector<Injection> schedule;
  for (std::size_t l = 0; l < lane_events.size(); ++l) {
    QFAB_CHECK(std::is_sorted(lane_events[l].begin(), lane_events[l].end(),
                              [](const ErrorEvent& a, const ErrorEvent& b) {
                                return a.gate_index < b.gate_index;
                              }));
    for (const ErrorEvent& ev : lane_events[l]) {
      QFAB_CHECK(ev.gate_index < total);
      QFAB_CHECK(ev.gate_index + 1 >= start_gates);
      schedule.push_back(Injection{ev.gate_index + 1, static_cast<int>(l),
                                   ev.gate_index, ev.pauli0, ev.pauli1});
    }
  }
  std::stable_sort(schedule.begin(), schedule.end(),
                   [](const Injection& a, const Injection& b) {
                     return a.site < b.site;
                   });
  return schedule;
}

/// Append walk steps covering original gates [gate_begin, gate_end) for
/// lanes [lane_begin, lane_begin + lane_count), decomposed exactly as
/// apply_range does: maximal runs of fully covered ops come from the root
/// plan, and op-interior slices come from its cached subrange plans (a
/// 1-gate slice compiles to a demoted kGate op, the same per-gate kernel
/// the per-gate fallback ran, so each lane's decomposition stays bitwise
/// aligned with the scalar reference replay of its own trajectory). The
/// subrange plans are owned by the root plan's cache, which outlives the
/// walk.
void append_range_steps(const FusedPlan& plan, std::size_t gate_begin,
                        std::size_t gate_end, int lane_begin, int lane_count,
                        std::vector<BatchWalkStep>& steps) {
  const auto& ops = plan.ops();
  std::size_t g = gate_begin;
  while (g < gate_end) {
    const std::size_t oi = plan.op_of_gate(g);
    const FusedOp& op = ops[oi];
    if (op.gate_begin == g && op.gate_end <= gate_end) {
      std::size_t oj = oi;
      while (oj < ops.size() && ops[oj].gate_end <= gate_end) {
        steps.push_back(
            BatchWalkStep::op_span_step(&plan, oj, lane_begin, lane_count));
        ++oj;
      }
      g = ops[oj - 1].gate_end;
    } else {
      const std::size_t stop = std::min(gate_end, op.gate_end);
      const FusedPlan& sub = plan.subrange_plan(g, stop);
      for (std::size_t k = 0; k < sub.op_count(); ++k)
        steps.push_back(
            BatchWalkStep::op_span_step(&sub, k, lane_begin, lane_count));
      g = stop;
    }
  }
}

// Batched counterpart of the QFAB_FAULT nan-at-gate hook in
// apply_plan_range: the walk replaces the per-split passes, so it takes
// the (single) charge for the whole replayed range itself.
template <typename Real>
void maybe_inject_nan(BatchedStateVectorT<Real>& bsv, std::size_t gate_begin,
                      std::size_t gate_end) {
  if (fault::nan_fault_active() && fault::take_nan_charge(gate_begin, gate_end))
    bsv.re()[0] = std::numeric_limits<Real>::quiet_NaN();
}

}  // namespace

template <typename Real>
void run_trajectories_batched(
    const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
    std::size_t start_gates,
    const std::vector<std::vector<ErrorEvent>>& lane_events) {
  QFAB_CHECK(lane_events.size() == static_cast<std::size_t>(bsv.lanes()));
  const auto& gates = plan.circuit().gates();
  const std::size_t total = plan.gate_count();
  const std::vector<Injection> schedule =
      merge_schedule(lane_events, start_gates, total);

  // Fused tile walk over a PER-LANE schedule: the whole replay — shared
  // gate segments, per-lane op slices, and the Paulis between them —
  // flattens into one step sequence, and apply_batch_walk loads each
  // L1-sized amplitude tile once per maximal run instead of once per
  // injection site. Two properties remove the lane-scaling regression of
  // the per-split driver (kept as run_trajectories_batched_split, whose
  // full-vector traffic grew with the merged schedule length):
  //
  //  * op-interior splits are priced per lane, not per batch: only the
  //    lane whose Pauli lands inside a fused op takes that op as subrange
  //    slices (single-lane spans, 1/L of a pass each); every other lane
  //    takes the fused op whole in bystander spans. The per-trajectory
  //    replay cost is therefore flat in the lane count, and each lane's
  //    arithmetic is exactly the decomposition the scalar reference
  //    (run_trajectory) performs for that trajectory alone — independent
  //    of which trajectories share the batch (packing-invariant bitwise;
  //    the split driver's merged decomposition deviates from this at the
  //    re-association level, ~1e-15 in double).
  //  * tiles walk in XOR-groups (see apply_batch_walk), so high-qubit ops
  //    and Paulis never force full-width passes between runs.
  const int L = bsv.lanes();
  std::vector<BatchWalkStep> steps;
  steps.reserve(plan.op_count() + 4 * schedule.size());
  const auto& ops = plan.ops();
  const auto emit_paulis = [&](const Injection& inj) {
    const Gate& g = gates[inj.gate_index];
    if (inj.pauli0 != Pauli::kI)
      steps.push_back(
          BatchWalkStep::pauli_step(inj.lane, inj.pauli0, g.qubits[0]));
    if (inj.pauli1 != Pauli::kI) {
      QFAB_CHECK(g.arity() >= 2);
      steps.push_back(
          BatchWalkStep::pauli_step(inj.lane, inj.pauli1, g.qubits[1]));
    }
  };

  std::size_t applied = start_gates;
  std::size_t si = 0;
  // Paulis at the resume point precede every replayed gate.
  while (si < schedule.size() && schedule[si].site <= applied) {
    emit_paulis(schedule[si]);
    ++si;
  }
  std::vector<std::vector<std::size_t>> lane_injs(
      static_cast<std::size_t>(L));
  while (applied < total) {
    if (si >= schedule.size()) {  // no more injections: clean tail
      append_range_steps(plan, applied, total, 0, L, steps);
      applied = total;
      break;
    }
    const std::size_t site = schedule[si].site;
    // Is the next site interior to a fused op, or on an op boundary?
    const FusedOp* host =
        site < total ? &ops[plan.op_of_gate(site)] : nullptr;
    if (host == nullptr || host->gate_begin == site) {
      // Boundary site: shared clean segment up to it, then its Paulis in
      // schedule order.
      append_range_steps(plan, applied, site, 0, L, steps);
      applied = site;
      while (si < schedule.size() && schedule[si].site == applied) {
        emit_paulis(schedule[si]);
        ++si;
      }
      continue;
    }
    // Interior site: shared clean segment up to its host op, then the
    // host op decomposed per lane.
    const std::size_t he = host->gate_end;
    const std::size_t op_lo = std::max(host->gate_begin, applied);
    if (op_lo > applied) {
      append_range_steps(plan, applied, op_lo, 0, L, steps);
      applied = op_lo;
    }
    std::size_t sj = si;
    while (sj < schedule.size() && schedule[sj].site < he) ++sj;
    for (auto& v : lane_injs) v.clear();
    for (std::size_t k = si; k < sj; ++k)
      lane_injs[static_cast<std::size_t>(schedule[k].lane)].push_back(k);
    // Bystander lanes (no split inside this op) take it fused, in
    // maximal contiguous spans.
    int seg = 0;
    for (int l = 0; l <= L; ++l) {
      const bool event_lane =
          l < L && !lane_injs[static_cast<std::size_t>(l)].empty();
      if (l == L || event_lane) {
        if (l > seg)
          append_range_steps(plan, applied, he, seg, l - seg, steps);
        seg = l + 1;
      }
    }
    // Each event lane replays the op as its own slices with its Paulis
    // interleaved — the scalar reference decomposition for that lane's
    // sites alone.
    for (int l = 0; l < L; ++l) {
      const auto& inj_idx = lane_injs[static_cast<std::size_t>(l)];
      if (inj_idx.empty()) continue;
      std::size_t a = applied;
      for (const std::size_t k : inj_idx) {
        if (schedule[k].site > a) {
          append_range_steps(plan, a, schedule[k].site, l, 1, steps);
          a = schedule[k].site;
        }
        emit_paulis(schedule[k]);
      }
      if (a < he) append_range_steps(plan, a, he, l, 1, steps);
    }
    si = sj;
    applied = he;
  }
  // Site `total` (an error on the last gate, whose Paulis land after the
  // whole circuit) is reached without a boundary visit when the final
  // fused op ends at `total` and the interior branch above consumed it:
  // that branch only collects sites < gate_end, so flush the remainder.
  for (; si < schedule.size(); ++si) {
    QFAB_CHECK(schedule[si].site == total);
    emit_paulis(schedule[si]);
  }
  apply_batch_walk(plan, bsv, steps.data(), steps.size());
  maybe_inject_nan(bsv, start_gates, total);
}

template void run_trajectories_batched<double>(
    const FusedPlan&, BatchedStateVector&, std::size_t,
    const std::vector<std::vector<ErrorEvent>>&);
template void run_trajectories_batched<float>(
    const FusedPlan&, BatchedStateVectorF&, std::size_t,
    const std::vector<std::vector<ErrorEvent>>&);

template <typename Real>
void run_trajectories_batched_split(
    const FusedPlan& plan, BatchedStateVectorT<Real>& bsv,
    std::size_t start_gates,
    const std::vector<std::vector<ErrorEvent>>& lane_events) {
  QFAB_CHECK(lane_events.size() == static_cast<std::size_t>(bsv.lanes()));
  const auto& gates = plan.circuit().gates();
  const std::size_t total = plan.gate_count();
  const std::vector<Injection> schedule =
      merge_schedule(lane_events, start_gates, total);

  std::size_t applied = start_gates;
  for (const Injection& inj : schedule) {
    if (inj.site > applied) {
      apply_plan_range(plan, bsv, applied, inj.site);
      applied = inj.site;
    }
    const Gate& g = gates[inj.gate_index];
    if (inj.pauli0 != Pauli::kI) bsv.apply_pauli(inj.lane, inj.pauli0, g.qubits[0]);
    if (inj.pauli1 != Pauli::kI) {
      QFAB_CHECK(g.arity() >= 2);
      bsv.apply_pauli(inj.lane, inj.pauli1, g.qubits[1]);
    }
  }
  apply_plan_range(plan, bsv, applied, total);
}

template void run_trajectories_batched_split<double>(
    const FusedPlan&, BatchedStateVector&, std::size_t,
    const std::vector<std::vector<ErrorEvent>>&);
template void run_trajectories_batched_split<float>(
    const FusedPlan&, BatchedStateVectorF&, std::size_t,
    const std::vector<std::vector<ErrorEvent>>&);

}  // namespace qfab
