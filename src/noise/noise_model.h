// Depolarizing gate-noise model (Qiskit `depolarizing_error` semantics).
//
// A 1q gate with depolarizing parameter p applies, after the ideal gate,
// one of {X, Y, Z} each with probability p/4 (identity otherwise); a 2q
// gate applies one of the 15 non-identity two-qubit Paulis each with
// probability p/16. The paper's sweeps set exactly one of p1q/p2q nonzero
// and attach the error to every transpiled gate of that arity (Sec. IV:
// "we include either 1q-gate or 2q-gate error rates ... and do not include
// any other gate errors").
#pragma once

#include "circuit/circuit.h"
#include "noise/thermal.h"

namespace qfab {

struct NoiseModel {
  /// Depolarizing parameter attached to one-qubit basis gates.
  double p1q = 0.0;
  /// Depolarizing parameter attached to CX gates.
  double p2q = 0.0;
  /// Whether RZ gates are noisy. The paper's gate counts include RZ as a
  /// 1q gate; on IBM hardware RZ is virtual (error-free), so this switch
  /// exists for the noise-attachment ablation. Default: noisy (paper
  /// reading).
  bool noisy_rz = true;
  /// Whether Id gates are noisy (idle error). Default: noisy.
  bool noisy_id = true;

  /// Thermal relaxation (Pauli-twirled, see noise/thermal.h), applied to
  /// *each qubit* of every timed gate in addition to the depolarizing
  /// error. Disabled while t1 and t2 are both <= 0. RZ is virtual on IBM
  /// hardware (zero duration) and never relaxes; Id idles for time_1q.
  double t1 = 0.0;
  double t2 = 0.0;
  double time_1q = 0.0;  // 1q gate duration, same units as t1/t2
  double time_2q = 0.0;  // CX duration

  /// Depolarizing parameter attached to this gate (p1q/p2q, 0 for
  /// noise-exempt gates such as RZ when noisy_rz is off).
  double depolarizing_param(const Gate& g) const;

  /// Probability that the gate suffers a *non-identity* depolarizing Pauli
  /// error: 3p/4 for 1q, 15p/16 for 2q, 0 for noise-exempt gates.
  double error_event_prob(const Gate& g) const;

  bool thermal_enabled() const { return t1 > 0.0 || t2 > 0.0; }
  /// Duration of `g` under this model (0 for RZ).
  double gate_duration(const Gate& g) const;
  /// Twirled thermal Pauli probabilities for one qubit of `g`.
  PauliProbs thermal_probs(const Gate& g) const;

  bool enabled() const { return p1q > 0.0 || p2q > 0.0 || thermal_enabled(); }
};

/// Number of Pauli-error alternatives for a gate (3 for 1q, 15 for 2q).
int pauli_alternatives(const Gate& g);

}  // namespace qfab
