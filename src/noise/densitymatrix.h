// Exact density-matrix simulation.
//
// Small-n companion to the state-vector engine: evolves ρ -> U ρ U† and
// applies the depolarizing / thermal channels *exactly* (no sampling).
// This is the ground truth the Pauli-trajectory machinery is validated
// against (tests/test_densitymatrix.cpp shows the stratified estimator
// converges to the exact channel marginal), and a practical exact-channel
// backend for circuits up to ~10 qubits.
//
// Representation: vec(ρ) with the row index in the low n "qubits" and the
// column index in the high n, so U ρ U† is "apply U on row qubits, conj(U)
// on column qubits" — the state-vector kernels' access pattern reused on a
// 2^{2n} buffer.
#pragma once

#include <vector>

#include "noise/noise_model.h"
#include "sim/statevector.h"

namespace qfab {

class DensityMatrix {
 public:
  /// |0...0><0...0| on n qubits. n <= 12 (memory guard: 4^n entries).
  explicit DensityMatrix(int num_qubits);

  /// Pure state ρ = |ψ><ψ|.
  static DensityMatrix from_statevector(const StateVector& sv);

  int num_qubits() const { return num_qubits_; }
  u64 dim() const { return pow2(num_qubits_); }

  /// ρ(r, c).
  cplx at(u64 row, u64 col) const;

  // -- unitary evolution --
  void apply_gate(const Gate& g);
  void apply_circuit(const QuantumCircuit& qc);

  // -- exact channels --
  /// Depolarizing with parameter p on one qubit:
  /// ρ -> (1 - 3p/4) ρ + (p/4) Σ_{P∈{X,Y,Z}} P ρ P.
  void apply_depolarizing1(int q, double p);
  /// Two-qubit depolarizing: (1 - 15p/16) ρ + (p/16) Σ_{15 Paulis} P ρ P.
  void apply_depolarizing2(int q0, int q1, double p);
  /// Pauli mixture channel (e.g. the thermal PTA) on one qubit.
  void apply_pauli_channel(int q, const PauliProbs& probs);

  /// Gate + per-gate noise, exactly as ErrorLocations attaches it
  /// (depolarizing by arity, thermal PTA per gate qubit).
  void apply_noisy_circuit(const QuantumCircuit& qc, const NoiseModel& noise);

  // -- measurement --
  /// Diagonal of ρ.
  std::vector<double> probabilities() const;
  /// Output distribution of a qubit subset.
  std::vector<double> marginal_probabilities(
      const std::vector<int>& qubits) const;

  double trace() const;
  /// tr(ρ²) — 1 for pure states, 1/2^n for the maximally mixed state.
  double purity() const;
  /// Fidelity <ψ|ρ|ψ> against a pure state.
  double fidelity(const StateVector& psi) const;

 private:
  /// Apply a k-qubit matrix on arbitrary buffer "qubits" (row or column
  /// side) of vec(ρ).
  void apply_buffer_matrix(const Matrix& u, const std::vector<int>& targets);
  /// One Pauli conjugation term P ρ P (pauli on a single qubit).
  void conjugate_pauli(int q, Pauli p);

  int num_qubits_ = 0;
  std::vector<cplx> rho_;  // vec(ρ), row index low
};

}  // namespace qfab
