// Canonical gate matrices.
//
// Single source of truth for gate semantics: the circuit IR, the transpiler,
// the fast simulator kernels, and every test are validated against these
// matrices. Conventions follow Qiskit (little-endian; RZ(θ) = diag(e^{-iθ/2},
// e^{iθ/2}); P(θ) = diag(1, e^{iθ}); controlled gates put the control on the
// *higher* gate-local bit, i.e. qubit order (target, control) when embedding).
#pragma once

#include "linalg/matrix.h"

namespace qfab::gates {

// ---- one-qubit -----------------------------------------------------------

Matrix I();
Matrix X();
Matrix Y();
Matrix Z();
Matrix H();
Matrix SX();      // sqrt(X), IBM basis gate
Matrix SXdg();
Matrix RZ(double theta);   // exp(-i θ Z / 2)
Matrix RY(double theta);   // exp(-i θ Y / 2)
Matrix RX(double theta);   // exp(-i θ X / 2)
Matrix P(double lambda);   // phase gate diag(1, e^{iλ})
Matrix U(double theta, double phi, double lambda);  // generic 1q (Qiskit U)

/// The paper's R_l: P(2π / 2^l).
Matrix R_l(int l);

// ---- two-qubit (gate-local bit 0 = target, bit 1 = control) ---------------

Matrix CX();
Matrix CZ();
Matrix CP(double lambda);
Matrix CH();
Matrix SWAP();
Matrix CRl(int l);  // controlled R_l == CP(2π/2^l)

// ---- three-qubit (bit 0 = target, bits 1,2 = controls) --------------------

Matrix CCP(double lambda);
Matrix CCX();

/// Generic single-controlled version of a k-qubit unitary: control becomes
/// the highest gate-local bit.
Matrix controlled(const Matrix& u);

}  // namespace qfab::gates
