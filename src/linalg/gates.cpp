#include "linalg/gates.h"

#include <cmath>
#include <numbers>

namespace qfab::gates {

namespace {
constexpr double kPi = std::numbers::pi;
const cplx kI{0.0, 1.0};

cplx expi(double t) { return {std::cos(t), std::sin(t)}; }
}  // namespace

Matrix I() { return Matrix::identity(2); }

Matrix X() {
  return Matrix{{0.0, 1.0}, {1.0, 0.0}};
}

Matrix Y() {
  return Matrix{{0.0, -kI}, {kI, 0.0}};
}

Matrix Z() {
  return Matrix{{1.0, 0.0}, {0.0, -1.0}};
}

Matrix H() {
  const double s = 1.0 / std::sqrt(2.0);
  return Matrix{{s, s}, {s, -s}};
}

Matrix SX() {
  // 0.5 * [[1+i, 1-i], [1-i, 1+i]]
  const cplx a{0.5, 0.5}, b{0.5, -0.5};
  return Matrix{{a, b}, {b, a}};
}

Matrix SXdg() { return SX().adjoint(); }

Matrix RZ(double theta) {
  return Matrix{{expi(-theta / 2), 0.0}, {0.0, expi(theta / 2)}};
}

Matrix RY(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix{{c, -s}, {s, c}};
}

Matrix RX(double theta) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix{{c, -kI * s}, {-kI * s, c}};
}

Matrix P(double lambda) {
  return Matrix{{1.0, 0.0}, {0.0, expi(lambda)}};
}

Matrix U(double theta, double phi, double lambda) {
  const double c = std::cos(theta / 2), s = std::sin(theta / 2);
  return Matrix{{c, -expi(lambda) * s},
                {expi(phi) * s, expi(phi + lambda) * c}};
}

Matrix R_l(int l) {
  QFAB_CHECK(l >= 1);
  return P(2.0 * kPi / std::pow(2.0, l));
}

Matrix controlled(const Matrix& u) {
  const std::size_t d = u.rows();
  QFAB_CHECK(u.cols() == d);
  Matrix out = Matrix::identity(2 * d);
  for (std::size_t i = 0; i < d; ++i)
    for (std::size_t j = 0; j < d; ++j) out.at(d + i, d + j) = u.at(i, j);
  return out;
}

Matrix CX() { return controlled(X()); }
Matrix CZ() { return controlled(Z()); }
Matrix CP(double lambda) { return controlled(P(lambda)); }
Matrix CH() { return controlled(H()); }
Matrix CRl(int l) { return controlled(R_l(l)); }
Matrix CCP(double lambda) { return controlled(controlled(P(lambda))); }
Matrix CCX() { return controlled(controlled(X())); }

Matrix SWAP() {
  return Matrix{{1.0, 0.0, 0.0, 0.0},
                {0.0, 0.0, 1.0, 0.0},
                {0.0, 1.0, 0.0, 0.0},
                {0.0, 0.0, 0.0, 1.0}};
}

}  // namespace qfab::gates
