// Dense complex matrices.
//
// This is deliberately a *small*-matrix library: its job is to provide exact
// reference semantics for gates and few-qubit circuits (tests compare the
// fast state-vector kernels against dense matrix application). It is not on
// any performance-critical path.
#pragma once

#include <complex>
#include <initializer_list>
#include <vector>

#include "common/bits.h"
#include "common/check.h"

namespace qfab {

using cplx = std::complex<double>;

/// Row-major dense complex matrix.
class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, cplx{0.0, 0.0}) {}

  /// Square matrix from a nested initializer list.
  Matrix(std::initializer_list<std::initializer_list<cplx>> init);

  static Matrix identity(std::size_t n);
  /// All-zero square matrix.
  static Matrix zero(std::size_t n) { return Matrix(n, n); }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }

  cplx& at(std::size_t r, std::size_t c) {
    QFAB_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  const cplx& at(std::size_t r, std::size_t c) const {
    QFAB_CHECK(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  Matrix operator*(const Matrix& rhs) const;
  Matrix operator+(const Matrix& rhs) const;
  Matrix operator-(const Matrix& rhs) const;
  Matrix operator*(cplx scalar) const;

  /// Matrix-vector product.
  std::vector<cplx> apply(const std::vector<cplx>& v) const;

  /// Conjugate transpose.
  Matrix adjoint() const;

  /// Kronecker product: this ⊗ rhs (this owns the high-order bits).
  Matrix kron(const Matrix& rhs) const;

  /// Frobenius-norm distance to rhs.
  double distance(const Matrix& rhs) const;

  /// True when ‖A†A − I‖_F < tol.
  bool is_unitary(double tol = 1e-10) const;

  /// True when ‖A − B‖_F < tol.
  bool approx_equal(const Matrix& rhs, double tol = 1e-10) const;

  /// True when A == e^{iθ} B for some θ (global-phase equivalence):
  /// the test used to validate transpiled circuits.
  bool equal_up_to_phase(const Matrix& rhs, double tol = 1e-9) const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<cplx> data_;
};

/// Embed the k-qubit gate `u` acting on `targets` (little-endian qubit
/// indices, targets[0] = least-significant gate qubit) into an n-qubit
/// unitary. Reference implementation used by tests and circuit->unitary.
Matrix embed_gate(const Matrix& u, const std::vector<int>& targets,
                  int num_qubits);

}  // namespace qfab
