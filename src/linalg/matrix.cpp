#include "linalg/matrix.h"

#include <cmath>

namespace qfab {

Matrix::Matrix(std::initializer_list<std::initializer_list<cplx>> init) {
  rows_ = init.size();
  QFAB_CHECK(rows_ > 0);
  cols_ = init.begin()->size();
  data_.reserve(rows_ * cols_);
  for (const auto& row : init) {
    QFAB_CHECK(row.size() == cols_);
    data_.insert(data_.end(), row.begin(), row.end());
  }
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m.at(i, i) = 1.0;
  return m;
}

Matrix Matrix::operator*(const Matrix& rhs) const {
  QFAB_CHECK(cols_ == rhs.rows_);
  Matrix out(rows_, rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t k = 0; k < cols_; ++k) {
      const cplx a = at(i, k);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t j = 0; j < rhs.cols_; ++j)
        out.at(i, j) += a * rhs.at(k, j);
    }
  return out;
}

Matrix Matrix::operator+(const Matrix& rhs) const {
  QFAB_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] + rhs.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& rhs) const {
  QFAB_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] - rhs.data_[i];
  return out;
}

Matrix Matrix::operator*(cplx scalar) const {
  Matrix out(rows_, cols_);
  for (std::size_t i = 0; i < data_.size(); ++i)
    out.data_[i] = data_[i] * scalar;
  return out;
}

std::vector<cplx> Matrix::apply(const std::vector<cplx>& v) const {
  QFAB_CHECK(v.size() == cols_);
  std::vector<cplx> out(rows_, cplx{0.0, 0.0});
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out[i] += at(i, j) * v[j];
  return out;
}

Matrix Matrix::adjoint() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      out.at(j, i) = std::conj(at(i, j));
  return out;
}

Matrix Matrix::kron(const Matrix& rhs) const {
  Matrix out(rows_ * rhs.rows_, cols_ * rhs.cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) {
      const cplx a = at(i, j);
      if (a == cplx{0.0, 0.0}) continue;
      for (std::size_t k = 0; k < rhs.rows_; ++k)
        for (std::size_t l = 0; l < rhs.cols_; ++l)
          out.at(i * rhs.rows_ + k, j * rhs.cols_ + l) = a * rhs.at(k, l);
    }
  return out;
}

double Matrix::distance(const Matrix& rhs) const {
  QFAB_CHECK(rows_ == rhs.rows_ && cols_ == rhs.cols_);
  double sum = 0.0;
  for (std::size_t i = 0; i < data_.size(); ++i)
    sum += std::norm(data_[i] - rhs.data_[i]);
  return std::sqrt(sum);
}

bool Matrix::is_unitary(double tol) const {
  if (rows_ != cols_) return false;
  return (adjoint() * *this).distance(identity(rows_)) < tol;
}

bool Matrix::approx_equal(const Matrix& rhs, double tol) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
  return distance(rhs) < tol;
}

bool Matrix::equal_up_to_phase(const Matrix& rhs, double tol) const {
  if (rows_ != rhs.rows_ || cols_ != rhs.cols_) return false;
  // Find the largest-magnitude entry of rhs and use it to fix the phase.
  std::size_t best_i = 0, best_j = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j)
      if (std::abs(rhs.at(i, j)) > best) {
        best = std::abs(rhs.at(i, j));
        best_i = i;
        best_j = j;
      }
  if (best < tol) return distance(rhs) < tol;
  const cplx phase = at(best_i, best_j) / rhs.at(best_i, best_j);
  if (std::abs(std::abs(phase) - 1.0) > tol) return false;
  return distance(rhs * phase) < tol;
}

Matrix embed_gate(const Matrix& u, const std::vector<int>& targets,
                  int num_qubits) {
  const std::size_t gate_dim = u.rows();
  QFAB_CHECK(u.cols() == gate_dim);
  const int k = ceil_log2(gate_dim);
  QFAB_CHECK(pow2(k) == gate_dim);
  QFAB_CHECK(static_cast<int>(targets.size()) == k);
  for (int t : targets) QFAB_CHECK(t >= 0 && t < num_qubits);

  const u64 dim = pow2(num_qubits);
  Matrix out(dim, dim);
  for (u64 col = 0; col < dim; ++col) {
    // Extract the gate-local column index from the target bits of col.
    u64 gcol = 0;
    for (int b = 0; b < k; ++b)
      gcol |= static_cast<u64>(get_bit(col, targets[b])) << b;
    // Bits of col outside the targets are untouched.
    for (u64 grow = 0; grow < gate_dim; ++grow) {
      const cplx a = u.at(grow, gcol);
      if (a == cplx{0.0, 0.0}) continue;
      u64 row = col;
      for (int b = 0; b < k; ++b) {
        row = clear_bit(row, targets[b]);
        if (get_bit(grow, b)) row = set_bit(row, targets[b]);
      }
      out.at(row, col) += a;
    }
  }
  return out;
}

}  // namespace qfab
