// Gate IR.
//
// A Gate is a flat POD-like record (kind + up to three qubits + up to three
// real parameters) so circuits stay cache-friendly: the noisy sweeps replay
// circuits of a few thousand gates millions of times.
#pragma once

#include <array>
#include <string>

#include "linalg/matrix.h"

namespace qfab {

enum class GateKind : std::uint8_t {
  // one-qubit
  kId,
  kX,
  kY,
  kZ,
  kH,
  kSX,
  kSXdg,
  kRZ,   // params[0] = theta
  kRY,
  kRX,
  kP,    // params[0] = lambda
  kU,    // params = (theta, phi, lambda)
  // two-qubit; qubits[0] = target, qubits[1] = control (where applicable)
  kCX,
  kCZ,
  kCP,   // params[0] = lambda
  kCH,
  kSWAP, // qubits[0], qubits[1] symmetric
  // three-qubit; qubits[0] = target, qubits[1..2] = controls
  kCCP,  // params[0] = lambda
  kCCX,
};

/// Number of qubits the kind acts on (1, 2 or 3).
int gate_arity(GateKind kind);

/// Number of real parameters the kind carries (0..3).
int gate_param_count(GateKind kind);

/// Lower-case mnemonic ("h", "cp", "ccx", ...).
const std::string& gate_name(GateKind kind);

/// True for gates whose matrix is diagonal in the computational basis.
bool gate_is_diagonal(GateKind kind);

struct Gate {
  GateKind kind{};
  std::array<int, 3> qubits{{-1, -1, -1}};
  std::array<double, 3> params{{0.0, 0.0, 0.0}};

  int arity() const { return gate_arity(kind); }

  /// Dense matrix on the gate-local qubits (bit 0 = qubits[0], etc.),
  /// matching linalg/gates.h conventions.
  Matrix matrix() const;

  /// The gate implementing this one's inverse (same qubits).
  Gate inverse() const;

  /// Human-readable form, e.g. "cp(0.785398) q3, q7".
  std::string to_string() const;
};

/// Constructors with qubit-count validation deferred to QuantumCircuit.
Gate make_gate1(GateKind kind, int q, double p0 = 0.0, double p1 = 0.0,
                double p2 = 0.0);
Gate make_gate2(GateKind kind, int target, int control, double p0 = 0.0);
Gate make_gate3(GateKind kind, int target, int c1, int c2, double p0 = 0.0);

}  // namespace qfab
