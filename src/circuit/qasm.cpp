#include "circuit/qasm.h"

#include <cctype>
#include <cmath>
#include <map>
#include <numbers>
#include <sstream>

namespace qfab {

namespace {

constexpr double kPi = std::numbers::pi;

// ---------------------------------------------------------------- export

void write_angle(std::ostream& os, double theta) {
  // Render common multiples of pi symbolically for readability.
  const double ratio = theta / kPi;
  for (int den = 1; den <= 64; den *= 2) {
    const double num = ratio * den;
    if (std::abs(num - std::round(num)) < 1e-12) {
      const auto n = static_cast<long>(std::round(num));
      if (n == 0) {
        os << "0";
      } else {
        if (n == -1) os << "-pi";
        else if (n == 1) os << "pi";
        else os << n << "*pi";
        if (den > 1) os << "/" << den;
      }
      return;
    }
  }
  std::ostringstream tmp;
  tmp.precision(17);
  tmp << theta;
  os << tmp.str();
}

struct QubitNamer {
  std::vector<std::pair<std::string, QubitRange>> regs;

  explicit QubitNamer(const QuantumCircuit& qc) {
    regs = qc.registers();
    if (regs.empty()) regs.push_back({"q", QubitRange{0, qc.num_qubits()}});
  }

  std::string operator()(int qubit) const {
    for (const auto& [name, range] : regs)
      if (qubit >= range.start && qubit < range.start + range.size) {
        std::ostringstream os;
        os << name << '[' << (qubit - range.start) << ']';
        return os.str();
      }
    QFAB_CHECK_MSG(false, "qubit " << qubit << " not covered by registers");
    return {};
  }
};

void emit_gate(std::ostream& os, const Gate& g, const QubitNamer& name) {
  const int t = g.qubits[0], c1 = g.qubits[1], c2 = g.qubits[2];
  switch (g.kind) {
    case GateKind::kId:   os << "id " << name(t); break;
    case GateKind::kX:    os << "x " << name(t); break;
    case GateKind::kY:    os << "y " << name(t); break;
    case GateKind::kZ:    os << "z " << name(t); break;
    case GateKind::kH:    os << "h " << name(t); break;
    case GateKind::kSX:   os << "sx " << name(t); break;
    case GateKind::kSXdg: os << "sxdg " << name(t); break;
    case GateKind::kRZ:
      os << "rz(";
      write_angle(os, g.params[0]);
      os << ") " << name(t);
      break;
    case GateKind::kRY:
      os << "ry(";
      write_angle(os, g.params[0]);
      os << ") " << name(t);
      break;
    case GateKind::kRX:
      os << "rx(";
      write_angle(os, g.params[0]);
      os << ") " << name(t);
      break;
    case GateKind::kP:
      os << "u1(";
      write_angle(os, g.params[0]);
      os << ") " << name(t);
      break;
    case GateKind::kU:
      os << "u3(";
      write_angle(os, g.params[0]);
      os << ",";
      write_angle(os, g.params[1]);
      os << ",";
      write_angle(os, g.params[2]);
      os << ") " << name(t);
      break;
    case GateKind::kCX:
      os << "cx " << name(c1) << "," << name(t);
      break;
    case GateKind::kCZ:
      os << "cz " << name(c1) << "," << name(t);
      break;
    case GateKind::kCP:
      os << "cu1(";
      write_angle(os, g.params[0]);
      os << ") " << name(c1) << "," << name(t);
      break;
    case GateKind::kCH:
      os << "ch " << name(c1) << "," << name(t);
      break;
    case GateKind::kSWAP:
      os << "swap " << name(t) << "," << name(c1);
      break;
    case GateKind::kCCX:
      os << "ccx " << name(c1) << "," << name(c2) << "," << name(t);
      break;
    case GateKind::kCCP: {
      // Standard expansion (qelib1 has no doubly-controlled phase).
      const double l = g.params[0];
      os << "cu1(";
      write_angle(os, l / 2);
      os << ") " << name(c2) << "," << name(t) << ";\n";
      os << "cx " << name(c1) << "," << name(c2) << ";\n";
      os << "cu1(";
      write_angle(os, -l / 2);
      os << ") " << name(c2) << "," << name(t) << ";\n";
      os << "cx " << name(c1) << "," << name(c2) << ";\n";
      os << "cu1(";
      write_angle(os, l / 2);
      os << ") " << name(c1) << "," << name(t);
      break;
    }
  }
  os << ";\n";
}

// ---------------------------------------------------------------- import

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  QuantumCircuit parse() {
    skip_ws();
    expect_keyword("OPENQASM");
    // Version token, e.g. 2.0.
    (void)parse_number();
    expect(';');
    skip_ws();
    // Optional includes.
    while (peek_keyword("include")) {
      while (pos_ < text_.size() && text_[pos_] != ';') ++pos_;
      expect(';');
      skip_ws();
    }
    // Register declarations and gate applications.
    QuantumCircuit qc(0);
    while (true) {
      skip_ws();
      if (pos_ >= text_.size()) break;
      if (peek_keyword("qreg")) {
        parse_qreg(qc);
        continue;
      }
      if (peek_keyword("creg") || peek_keyword("barrier")) {
        while (pos_ < text_.size() && text_[pos_] != ';') ++pos_;
        expect(';');
        continue;
      }
      parse_gate(qc);
    }
    return qc;
  }

 private:
  [[noreturn]] void fail(const std::string& msg) const {
    int line = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i)
      if (text_[i] == '\n') ++line;
    QFAB_CHECK_MSG(false, "QASM parse error (line " << line << "): " << msg);
    std::abort();  // unreachable
  }

  void skip_ws() {
    while (pos_ < text_.size()) {
      if (std::isspace(static_cast<unsigned char>(text_[pos_]))) {
        ++pos_;
      } else if (text_.compare(pos_, 2, "//") == 0) {
        while (pos_ < text_.size() && text_[pos_] != '\n') ++pos_;
      } else {
        break;
      }
    }
  }

  bool peek_keyword(const std::string& kw) {
    skip_ws();
    if (text_.compare(pos_, kw.size(), kw) != 0) return false;
    const std::size_t end = pos_ + kw.size();
    if (end < text_.size() &&
        (std::isalnum(static_cast<unsigned char>(text_[end])) ||
         text_[end] == '_'))
      return false;
    return true;
  }

  void expect_keyword(const std::string& kw) {
    if (!peek_keyword(kw)) fail("expected '" + kw + "'");
    pos_ += kw.size();
  }

  void expect(char c) {
    skip_ws();
    if (pos_ >= text_.size() || text_[pos_] != c)
      fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool accept(char c) {
    skip_ws();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  std::string parse_identifier() {
    skip_ws();
    std::size_t start = pos_;
    while (pos_ < text_.size() &&
           (std::isalnum(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '_'))
      ++pos_;
    if (pos_ == start) fail("expected identifier");
    return text_.substr(start, pos_ - start);
  }

  double parse_number() {
    skip_ws();
    std::size_t consumed = 0;
    double value = 0.0;
    try {
      value = std::stod(text_.substr(pos_), &consumed);
    } catch (const std::exception&) {
      fail("expected number");
    }
    pos_ += consumed;
    return value;
  }

  long parse_int() {
    skip_ws();
    const double v = parse_number();
    return static_cast<long>(v);
  }

  // Angle grammar: expr := term (('+'|'-') term)*;
  //                term := factor (('*'|'/') factor)*;
  //                factor := 'pi' | number | '-' factor | '(' expr ')'.
  double parse_expr() {
    double value = parse_term();
    for (;;) {
      if (accept('+')) value += parse_term();
      else if (accept('-')) value -= parse_term();
      else return value;
    }
  }

  double parse_term() {
    double value = parse_factor();
    for (;;) {
      if (accept('*')) value *= parse_factor();
      else if (accept('/')) value /= parse_factor();
      else return value;
    }
  }

  double parse_factor() {
    skip_ws();
    if (accept('-')) return -parse_factor();
    if (accept('(')) {
      const double v = parse_expr();
      expect(')');
      return v;
    }
    if (peek_keyword("pi")) {
      pos_ += 2;
      return kPi;
    }
    return parse_number();
  }

  void parse_qreg(QuantumCircuit& qc) {
    expect_keyword("qreg");
    const std::string name = parse_identifier();
    expect('[');
    const long size = parse_int();
    expect(']');
    expect(';');
    if (size <= 0) fail("qreg size must be positive");
    qc.add_register(name, static_cast<int>(size));
  }

  int parse_qubit(const QuantumCircuit& qc) {
    const std::string name = parse_identifier();
    expect('[');
    const long index = parse_int();
    expect(']');
    if (!qc.has_register(name)) fail("unknown register " + name);
    const QubitRange r = qc.reg(name);
    if (index < 0 || index >= r.size) fail("qubit index out of range");
    return r[static_cast<int>(index)];
  }

  void parse_gate(QuantumCircuit& qc) {
    const std::string name = parse_identifier();
    std::vector<double> params;
    if (accept('(')) {
      if (!accept(')')) {
        params.push_back(parse_expr());
        while (accept(',')) params.push_back(parse_expr());
        expect(')');
      }
    }
    std::vector<int> qubits;
    qubits.push_back(parse_qubit(qc));
    while (accept(',')) qubits.push_back(parse_qubit(qc));
    expect(';');

    auto need = [&](std::size_t nq, std::size_t np) {
      if (qubits.size() != nq || params.size() != np)
        fail("wrong arity for gate " + name);
    };
    if (name == "id") { need(1, 0); qc.id(qubits[0]); }
    else if (name == "x") { need(1, 0); qc.x(qubits[0]); }
    else if (name == "y") { need(1, 0); qc.y(qubits[0]); }
    else if (name == "z") { need(1, 0); qc.z(qubits[0]); }
    else if (name == "h") { need(1, 0); qc.h(qubits[0]); }
    else if (name == "sx") { need(1, 0); qc.sx(qubits[0]); }
    else if (name == "sxdg") { need(1, 0); qc.sxdg(qubits[0]); }
    else if (name == "rz") { need(1, 1); qc.rz(qubits[0], params[0]); }
    else if (name == "ry") { need(1, 1); qc.ry(qubits[0], params[0]); }
    else if (name == "rx") { need(1, 1); qc.rx(qubits[0], params[0]); }
    else if (name == "u1" || name == "p") {
      need(1, 1);
      qc.p(qubits[0], params[0]);
    } else if (name == "u3" || name == "u") {
      need(1, 3);
      qc.u(qubits[0], params[0], params[1], params[2]);
    } else if (name == "s") { need(1, 0); qc.p(qubits[0], kPi / 2); }
    else if (name == "sdg") { need(1, 0); qc.p(qubits[0], -kPi / 2); }
    else if (name == "t") { need(1, 0); qc.p(qubits[0], kPi / 4); }
    else if (name == "tdg") { need(1, 0); qc.p(qubits[0], -kPi / 4); }
    else if (name == "cx") { need(2, 0); qc.cx(qubits[0], qubits[1]); }
    else if (name == "cz") { need(2, 0); qc.cz(qubits[0], qubits[1]); }
    else if (name == "cu1" || name == "cp") {
      need(2, 1);
      qc.cp(qubits[0], qubits[1], params[0]);
    } else if (name == "ch") { need(2, 0); qc.ch(qubits[0], qubits[1]); }
    else if (name == "swap") { need(2, 0); qc.swap(qubits[0], qubits[1]); }
    else if (name == "ccx") {
      need(3, 0);
      qc.ccx(qubits[0], qubits[1], qubits[2]);
    } else {
      fail("unsupported gate " + name);
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

}  // namespace

std::string to_qasm(const QuantumCircuit& qc) {
  std::ostringstream os;
  os << "OPENQASM 2.0;\n";
  os << "include \"qelib1.inc\";\n";
  const QubitNamer namer(qc);
  for (const auto& [name, range] : namer.regs)
    os << "qreg " << name << '[' << range.size << "];\n";
  for (const Gate& g : qc.gates()) emit_gate(os, g, namer);
  return os.str();
}

QuantumCircuit from_qasm(const std::string& text) {
  Parser parser(text);
  return parser.parse();
}

}  // namespace qfab
