#include "circuit/circuit.h"

#include <algorithm>

namespace qfab {

QuantumCircuit::QuantumCircuit(int num_qubits) : num_qubits_(num_qubits) {
  QFAB_CHECK(num_qubits >= 0);
}

QuantumCircuit QuantumCircuit::same_shape(const QuantumCircuit& other) {
  QuantumCircuit qc(0);
  qc.num_qubits_ = other.num_qubits_;
  qc.registers_ = other.registers_;
  return qc;
}

QubitRange QuantumCircuit::add_register(const std::string& name, int size) {
  QFAB_CHECK(size > 0);
  QFAB_CHECK_MSG(!has_register(name), "register " << name << " already exists");
  const QubitRange range{num_qubits_, size};
  num_qubits_ += size;
  registers_.emplace_back(name, range);
  return range;
}

QubitRange QuantumCircuit::reg(const std::string& name) const {
  for (const auto& [n, r] : registers_)
    if (n == name) return r;
  QFAB_CHECK_MSG(false, "no register named " << name);
  return {};
}

bool QuantumCircuit::has_register(const std::string& name) const {
  return std::any_of(registers_.begin(), registers_.end(),
                     [&](const auto& p) { return p.first == name; });
}

std::vector<std::pair<std::string, QubitRange>> QuantumCircuit::registers()
    const {
  return registers_;
}

void QuantumCircuit::append(const Gate& g) {
  for (int i = 0; i < g.arity(); ++i)
    QFAB_CHECK_MSG(g.qubits[i] >= 0 && g.qubits[i] < num_qubits_,
                   "gate " << g.to_string() << " out of range for "
                           << num_qubits_ << " qubits");
  gates_.push_back(g);
}

void QuantumCircuit::compose(const QuantumCircuit& other) {
  QFAB_CHECK(other.num_qubits_ == num_qubits_);
  gates_.insert(gates_.end(), other.gates_.begin(), other.gates_.end());
  global_phase_ += other.global_phase_;
}

void QuantumCircuit::compose_mapped(const QuantumCircuit& other,
                                    const std::vector<int>& mapping) {
  QFAB_CHECK(static_cast<int>(mapping.size()) == other.num_qubits_);
  for (int m : mapping) QFAB_CHECK(m >= 0 && m < num_qubits_);
  for (Gate g : other.gates_) {
    for (int i = 0; i < g.arity(); ++i) g.qubits[i] = mapping[g.qubits[i]];
    append(g);
  }
  global_phase_ += other.global_phase_;
}

QuantumCircuit QuantumCircuit::inverse() const {
  QuantumCircuit inv(0);
  inv.num_qubits_ = num_qubits_;
  inv.registers_ = registers_;
  inv.global_phase_ = -global_phase_;
  inv.gates_.reserve(gates_.size());
  for (auto it = gates_.rbegin(); it != gates_.rend(); ++it)
    inv.gates_.push_back(it->inverse());
  return inv;
}

QuantumCircuit QuantumCircuit::controlled_on(int control) const {
  QFAB_CHECK(control >= 0 && control < num_qubits_);
  QuantumCircuit out(0);
  out.num_qubits_ = num_qubits_;
  out.registers_ = registers_;
  if (global_phase_ != 0.0) out.p(control, global_phase_);
  for (const Gate& g : gates_) {
    for (int i = 0; i < g.arity(); ++i)
      QFAB_CHECK_MSG(g.qubits[i] != control,
                     "controlled_on: control overlaps " << g.to_string());
    switch (g.kind) {
      case GateKind::kId:
        out.id(g.qubits[0]);
        break;
      case GateKind::kX:
        out.cx(control, g.qubits[0]);
        break;
      case GateKind::kZ:
        out.cz(control, g.qubits[0]);
        break;
      case GateKind::kH:
        out.ch(control, g.qubits[0]);
        break;
      case GateKind::kP:
        out.cp(control, g.qubits[0], g.params[0]);
        break;
      case GateKind::kRZ:
        // c-RZ(θ) = P(-θ/2) on control · CP(θ): RZ = e^{-iθ/2} P(θ).
        out.p(control, -g.params[0] / 2);
        out.cp(control, g.qubits[0], g.params[0]);
        break;
      case GateKind::kCX:
        out.ccx(control, g.qubits[1], g.qubits[0]);
        break;
      case GateKind::kCZ:
        out.ccp(control, g.qubits[1], g.qubits[0], 3.141592653589793);
        break;
      case GateKind::kCP:
        out.ccp(control, g.qubits[1], g.qubits[0], g.params[0]);
        break;
      default:
        QFAB_CHECK_MSG(false,
                       "controlled_on: unsupported gate " << g.to_string());
    }
  }
  return out;
}

GateCounts QuantumCircuit::counts() const {
  GateCounts c;
  for (const Gate& g : gates_) {
    ++c.by_name[gate_name(g.kind)];
    switch (g.arity()) {
      case 1: ++c.one_qubit; break;
      case 2: ++c.two_qubit; break;
      default: ++c.three_qubit; break;
    }
  }
  return c;
}

int QuantumCircuit::depth() const {
  std::vector<int> level(static_cast<std::size_t>(num_qubits_), 0);
  int depth = 0;
  for (const Gate& g : gates_) {
    int lvl = 0;
    for (int i = 0; i < g.arity(); ++i)
      lvl = std::max(lvl, level[static_cast<std::size_t>(g.qubits[i])]);
    ++lvl;
    for (int i = 0; i < g.arity(); ++i)
      level[static_cast<std::size_t>(g.qubits[i])] = lvl;
    depth = std::max(depth, lvl);
  }
  return depth;
}

Matrix QuantumCircuit::to_unitary(int max_qubits) const {
  QFAB_CHECK_MSG(num_qubits_ <= max_qubits,
                 "to_unitary limited to " << max_qubits << " qubits");
  Matrix u = Matrix::identity(pow2(num_qubits_));
  for (const Gate& g : gates_) {
    std::vector<int> targets(g.qubits.begin(), g.qubits.begin() + g.arity());
    u = embed_gate(g.matrix(), targets, num_qubits_) * u;
  }
  const cplx phase{std::cos(global_phase_), std::sin(global_phase_)};
  return u * phase;
}

}  // namespace qfab
