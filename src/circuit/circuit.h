// QuantumCircuit: an ordered gate list over named qubit registers.
//
// Registers are contiguous, little-endian qubit ranges (register bit 0 =
// lowest qubit index = least-significant bit of the encoded integer),
// matching the arithmetic layer's two's-complement encoding.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "circuit/gate.h"

namespace qfab {

/// Contiguous qubit range within a circuit.
struct QubitRange {
  int start = 0;
  int size = 0;

  /// Global index of register-local bit `i`.
  int operator[](int i) const {
    QFAB_CHECK(i >= 0 && i < size);
    return start + i;
  }
};

struct GateCounts {
  std::map<std::string, std::size_t> by_name;
  std::size_t one_qubit = 0;
  std::size_t two_qubit = 0;
  std::size_t three_qubit = 0;
  std::size_t total() const { return one_qubit + two_qubit + three_qubit; }
};

class QuantumCircuit {
 public:
  explicit QuantumCircuit(int num_qubits = 0);

  /// Empty circuit with the same width and register table as `other`.
  static QuantumCircuit same_shape(const QuantumCircuit& other);

  int num_qubits() const { return num_qubits_; }
  const std::vector<Gate>& gates() const { return gates_; }
  double global_phase() const { return global_phase_; }
  void add_global_phase(double phase) { global_phase_ += phase; }

  /// Append `size` fresh qubits as a named register; returns its range.
  QubitRange add_register(const std::string& name, int size);
  /// Look up a previously added register.
  QubitRange reg(const std::string& name) const;
  bool has_register(const std::string& name) const;
  /// Registers in creation order as (name, range).
  std::vector<std::pair<std::string, QubitRange>> registers() const;

  // -- gate appenders (validated against num_qubits) --
  void append(const Gate& g);
  void id(int q)              { append(make_gate1(GateKind::kId, q)); }
  void x(int q)               { append(make_gate1(GateKind::kX, q)); }
  void y(int q)               { append(make_gate1(GateKind::kY, q)); }
  void z(int q)               { append(make_gate1(GateKind::kZ, q)); }
  void h(int q)               { append(make_gate1(GateKind::kH, q)); }
  void sx(int q)              { append(make_gate1(GateKind::kSX, q)); }
  void sxdg(int q)            { append(make_gate1(GateKind::kSXdg, q)); }
  void rz(int q, double t)    { append(make_gate1(GateKind::kRZ, q, t)); }
  void ry(int q, double t)    { append(make_gate1(GateKind::kRY, q, t)); }
  void rx(int q, double t)    { append(make_gate1(GateKind::kRX, q, t)); }
  void p(int q, double l)     { append(make_gate1(GateKind::kP, q, l)); }
  void u(int q, double t, double ph, double l) {
    append(make_gate1(GateKind::kU, q, t, ph, l));
  }
  void cx(int control, int target) {
    append(make_gate2(GateKind::kCX, target, control));
  }
  void cz(int control, int target) {
    append(make_gate2(GateKind::kCZ, target, control));
  }
  void cp(int control, int target, double lambda) {
    append(make_gate2(GateKind::kCP, target, control, lambda));
  }
  void ch(int control, int target) {
    append(make_gate2(GateKind::kCH, target, control));
  }
  void swap(int a, int b) { append(make_gate2(GateKind::kSWAP, a, b)); }
  void ccp(int c1, int c2, int target, double lambda) {
    append(make_gate3(GateKind::kCCP, target, c1, c2, lambda));
  }
  void ccx(int c1, int c2, int target) {
    append(make_gate3(GateKind::kCCX, target, c1, c2));
  }

  /// Append every gate of `other` (same width required), including its
  /// global phase.
  void compose(const QuantumCircuit& other);

  /// Append `other` with its qubit i mapped to `mapping[i]`.
  void compose_mapped(const QuantumCircuit& other,
                      const std::vector<int>& mapping);

  /// The inverse circuit (reversed order, inverted gates, negated phase).
  /// Register table is preserved.
  QuantumCircuit inverse() const;

  /// A circuit in which every gate of `this` is controlled on `control`
  /// (which must lie outside every gate's qubits). The global phase becomes
  /// a P(phase) on the control. Supported kinds: the QFT/adder alphabet
  /// {id, x, z, h, p, rz, cx, cz, cp} — others throw CheckError.
  QuantumCircuit controlled_on(int control) const;

  // -- metrics --
  GateCounts counts() const;
  /// Circuit depth: longest chain of gates sharing qubits (greedy per-qubit
  /// level assignment, barrier-free).
  int depth() const;

  /// Dense unitary including global phase. Guarded to n <= max_qubits
  /// (default 12) — reference/testing only.
  Matrix to_unitary(int max_qubits = 12) const;

  /// Multi-line ASCII rendering (see draw.cpp).
  std::string draw(std::size_t max_columns = 120) const;

 private:
  int num_qubits_ = 0;
  double global_phase_ = 0.0;
  std::vector<Gate> gates_;
  std::vector<std::pair<std::string, QubitRange>> registers_;
};

}  // namespace qfab
