#include "circuit/gate.h"

#include <sstream>

#include "linalg/gates.h"

namespace qfab {

int gate_arity(GateKind kind) {
  switch (kind) {
    case GateKind::kId:
    case GateKind::kX:
    case GateKind::kY:
    case GateKind::kZ:
    case GateKind::kH:
    case GateKind::kSX:
    case GateKind::kSXdg:
    case GateKind::kRZ:
    case GateKind::kRY:
    case GateKind::kRX:
    case GateKind::kP:
    case GateKind::kU:
      return 1;
    case GateKind::kCX:
    case GateKind::kCZ:
    case GateKind::kCP:
    case GateKind::kCH:
    case GateKind::kSWAP:
      return 2;
    case GateKind::kCCP:
    case GateKind::kCCX:
      return 3;
  }
  QFAB_CHECK_MSG(false, "unknown gate kind");
  return 0;
}

int gate_param_count(GateKind kind) {
  switch (kind) {
    case GateKind::kRZ:
    case GateKind::kRY:
    case GateKind::kRX:
    case GateKind::kP:
    case GateKind::kCP:
    case GateKind::kCCP:
      return 1;
    case GateKind::kU:
      return 3;
    default:
      return 0;
  }
}

const std::string& gate_name(GateKind kind) {
  static const std::string names[] = {
      "id", "x",  "y",  "z",  "h",  "sx",  "sxdg", "rz", "ry", "rx",
      "p",  "u",  "cx", "cz", "cp", "ch",  "swap", "ccp", "ccx"};
  const auto idx = static_cast<std::size_t>(kind);
  QFAB_CHECK(idx < std::size(names));
  return names[idx];
}

bool gate_is_diagonal(GateKind kind) {
  switch (kind) {
    case GateKind::kId:
    case GateKind::kZ:
    case GateKind::kRZ:
    case GateKind::kP:
    case GateKind::kCZ:
    case GateKind::kCP:
    case GateKind::kCCP:
      return true;
    default:
      return false;
  }
}

Matrix Gate::matrix() const {
  switch (kind) {
    case GateKind::kId:   return gates::I();
    case GateKind::kX:    return gates::X();
    case GateKind::kY:    return gates::Y();
    case GateKind::kZ:    return gates::Z();
    case GateKind::kH:    return gates::H();
    case GateKind::kSX:   return gates::SX();
    case GateKind::kSXdg: return gates::SXdg();
    case GateKind::kRZ:   return gates::RZ(params[0]);
    case GateKind::kRY:   return gates::RY(params[0]);
    case GateKind::kRX:   return gates::RX(params[0]);
    case GateKind::kP:    return gates::P(params[0]);
    case GateKind::kU:    return gates::U(params[0], params[1], params[2]);
    case GateKind::kCX:   return gates::CX();
    case GateKind::kCZ:   return gates::CZ();
    case GateKind::kCP:   return gates::CP(params[0]);
    case GateKind::kCH:   return gates::CH();
    case GateKind::kSWAP: return gates::SWAP();
    case GateKind::kCCP:  return gates::CCP(params[0]);
    case GateKind::kCCX:  return gates::CCX();
  }
  QFAB_CHECK_MSG(false, "unknown gate kind");
  return {};
}

Gate Gate::inverse() const {
  Gate inv = *this;
  switch (kind) {
    case GateKind::kSX:
      inv.kind = GateKind::kSXdg;
      break;
    case GateKind::kSXdg:
      inv.kind = GateKind::kSX;
      break;
    case GateKind::kRZ:
    case GateKind::kRY:
    case GateKind::kRX:
    case GateKind::kP:
    case GateKind::kCP:
    case GateKind::kCCP:
      inv.params[0] = -params[0];
      break;
    case GateKind::kU:
      // U(θ,φ,λ)^{-1} = U(-θ,-λ,-φ)
      inv.params = {-params[0], -params[2], -params[1]};
      break;
    default:
      break;  // self-inverse: id, x, y, z, h, cx, cz, ch, swap, ccx
  }
  return inv;
}

std::string Gate::to_string() const {
  std::ostringstream os;
  os << gate_name(kind);
  const int np = gate_param_count(kind);
  if (np > 0) {
    os << '(';
    for (int i = 0; i < np; ++i) {
      if (i) os << ", ";
      os << params[i];
    }
    os << ')';
  }
  os << ' ';
  for (int i = 0; i < arity(); ++i) {
    if (i) os << ", ";
    os << 'q' << qubits[i];
  }
  return os.str();
}

Gate make_gate1(GateKind kind, int q, double p0, double p1, double p2) {
  QFAB_CHECK(gate_arity(kind) == 1);
  Gate g;
  g.kind = kind;
  g.qubits = {q, -1, -1};
  g.params = {p0, p1, p2};
  return g;
}

Gate make_gate2(GateKind kind, int target, int control, double p0) {
  QFAB_CHECK(gate_arity(kind) == 2);
  QFAB_CHECK_MSG(target != control, "2q gate with identical qubits");
  Gate g;
  g.kind = kind;
  g.qubits = {target, control, -1};
  g.params = {p0, 0.0, 0.0};
  return g;
}

Gate make_gate3(GateKind kind, int target, int c1, int c2, double p0) {
  QFAB_CHECK(gate_arity(kind) == 3);
  QFAB_CHECK_MSG(target != c1 && target != c2 && c1 != c2,
                 "3q gate with repeated qubits");
  Gate g;
  g.kind = kind;
  g.qubits = {target, c1, c2};
  g.params = {p0, 0.0, 0.0};
  return g;
}

}  // namespace qfab
