// OpenQASM 2.0 interoperability.
//
// Export targets the classic qelib1 alphabet (p -> u1, cp -> cu1, u -> u3,
// CCP emitted as its standard 5-gate cu1/cx expansion), so the output loads
// in Qiskit/Aer directly — useful for cross-checking this library's
// circuits against the paper's original toolchain. Import parses the same
// subset (multiple qregs, angle expressions over pi, comments, barriers)
// and is round-trip tested against export at the unitary level.
#pragma once

#include <string>

#include "circuit/circuit.h"

namespace qfab {

/// Serialize to OpenQASM 2.0. Registers are preserved by name; a circuit
/// without registers gets a single register "q".
std::string to_qasm(const QuantumCircuit& qc);

/// Parse an OpenQASM 2.0 program (the subset documented above). Throws
/// CheckError with a line diagnostic on unsupported constructs.
QuantumCircuit from_qasm(const std::string& text);

}  // namespace qfab
