// ASCII circuit rendering: one text row per qubit, one column per depth
// level, controls drawn as '*', targets as the gate mnemonic.
#include <sstream>

#include "circuit/circuit.h"

namespace qfab {

namespace {

std::string cell_label(const Gate& g, int slot) {
  // slot 0 = target cell, slots >= 1 = control cells.
  if (slot > 0) return "*";
  if (g.kind == GateKind::kSWAP) return "x";
  std::string name = gate_name(g.kind);
  // Strip the leading c's of controlled mnemonics; controls are drawn as '*'.
  if (g.kind == GateKind::kCX || g.kind == GateKind::kCCX) name = "X";
  else if (g.kind == GateKind::kCZ) name = "Z";
  else if (g.kind == GateKind::kCP || g.kind == GateKind::kCCP) name = "P";
  else if (g.kind == GateKind::kCH) name = "H";
  return name;
}

}  // namespace

std::string QuantumCircuit::draw(std::size_t max_columns) const {
  const auto nq = static_cast<std::size_t>(num_qubits());
  // Assign gates to columns greedily by per-qubit occupancy, like depth().
  std::vector<std::size_t> level(nq, 0);
  std::vector<std::vector<std::string>> cells(nq);  // [qubit][column]
  auto ensure_col = [&](std::size_t col) {
    for (auto& row : cells)
      while (row.size() <= col) row.emplace_back();
  };

  for (const Gate& g : gates()) {
    std::size_t col = 0;
    for (int i = 0; i < g.arity(); ++i)
      col = std::max(col, level[static_cast<std::size_t>(g.qubits[i])]);
    ensure_col(col);
    for (int i = 0; i < g.arity(); ++i) {
      const auto q = static_cast<std::size_t>(g.qubits[i]);
      cells[q][col] = cell_label(g, g.kind == GateKind::kSWAP ? 0 : i);
      level[q] = col + 1;
    }
    // Mark the vertical span so crossing wires are visible.
    if (g.arity() > 1) {
      int lo = g.qubits[0], hi = g.qubits[0];
      for (int i = 1; i < g.arity(); ++i) {
        lo = std::min(lo, g.qubits[i]);
        hi = std::max(hi, g.qubits[i]);
      }
      for (int q = lo + 1; q < hi; ++q) {
        auto& cell = cells[static_cast<std::size_t>(q)][col];
        if (cell.empty()) cell = "|";
        level[static_cast<std::size_t>(q)] =
            std::max(level[static_cast<std::size_t>(q)], col + 1);
      }
    }
  }

  // Column widths.
  const std::size_t ncols = cells.empty() ? 0 : cells[0].size();
  std::vector<std::size_t> width(ncols, 1);
  for (const auto& row : cells)
    for (std::size_t c = 0; c < row.size(); ++c)
      width[c] = std::max(width[c], row[c].size());

  std::ostringstream os;
  for (std::size_t q = 0; q < nq; ++q) {
    std::ostringstream line;
    line << 'q' << q << ": ";
    for (std::size_t c = 0; c < ncols; ++c) {
      const std::string& cell = cells[q][c];
      const std::string body = cell.empty() ? "-" : cell;
      line << '-' << body;
      for (std::size_t pad = body.size(); pad < width[c]; ++pad) line << '-';
    }
    line << '-';
    std::string s = line.str();
    if (s.size() > max_columns) {
      s.resize(max_columns > 3 ? max_columns - 3 : 0);
      s += "...";
    }
    os << s << '\n';
  }
  return os.str();
}

}  // namespace qfab
