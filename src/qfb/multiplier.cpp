#include "qfb/multiplier.h"

#include <cmath>
#include <numbers>

namespace qfab {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

void append_qfm(QuantumCircuit& qc, const std::vector<int>& x,
                const std::vector<int>& y, const std::vector<int>& z,
                const MultiplierOptions& options) {
  const int n = static_cast<int>(x.size());
  const int m = static_cast<int>(y.size());
  QFAB_CHECK_MSG(static_cast<int>(z.size()) == n + m,
                 "product register must have n + m qubits");

  const AdderOptions add_options{options.qft_depth, options.add_depth,
                                 options.max_rotation_order, false};
  for (int i = 1; i <= n; ++i) {
    // Build the QFA of y into an (m+1)-qubit scratch window, then lift it
    // to a controlled circuit with x_i as the control.
    QuantumCircuit sub(m + (m + 1) + 1);
    std::vector<int> sub_y(static_cast<std::size_t>(m));
    for (int j = 0; j < m; ++j) sub_y[static_cast<std::size_t>(j)] = j;
    std::vector<int> sub_w(static_cast<std::size_t>(m + 1));
    for (int w = 0; w <= m; ++w) sub_w[static_cast<std::size_t>(w)] = m + w;
    const int sub_control = 2 * m + 1;
    append_qfa(sub, sub_y, sub_w, add_options);
    const QuantumCircuit controlled = sub.controlled_on(sub_control);

    // Map into the main circuit: window w -> z[i-1+w], control -> x[i-1].
    std::vector<int> mapping(static_cast<std::size_t>(2 * m + 2));
    for (int j = 0; j < m; ++j) mapping[static_cast<std::size_t>(j)] = y[j];
    for (int w = 0; w <= m; ++w)
      mapping[static_cast<std::size_t>(m + w)] = z[i - 1 + w];
    mapping[static_cast<std::size_t>(sub_control)] = x[i - 1];
    qc.compose_mapped(controlled, mapping);
  }
}

void append_qfm_fused(QuantumCircuit& qc, const std::vector<int>& x,
                      const std::vector<int>& y, const std::vector<int>& z,
                      const MultiplierOptions& options) {
  const int n = static_cast<int>(x.size());
  const int m = static_cast<int>(y.size());
  QFAB_CHECK_MSG(static_cast<int>(z.size()) == n + m,
                 "product register must have n + m qubits");

  append_qft(qc, z, options.qft_depth);
  // x_i y_j contributes 2^{i+j-2} to the product; on Fourier-basis qubit
  // z_q that is the rotation R_l with l = q - (i + j - 2), kept for l >= 1.
  for (int i = 1; i <= n; ++i) {
    for (int j = 1; j <= m; ++j) {
      for (int q = i + j - 1; q <= n + m; ++q) {
        const int l = q - (i + j - 2);
        if (options.add_depth > 0 && l - 1 > options.add_depth) continue;
        if (options.max_rotation_order > 0 && l > options.max_rotation_order)
          continue;
        qc.ccp(x[i - 1], y[j - 1], z[q - 1], kTwoPi / std::ldexp(1.0, l));
      }
    }
  }
  append_iqft(qc, z, options.qft_depth);
}

void append_square_accumulate(QuantumCircuit& qc, const std::vector<int>& x,
                              const std::vector<int>& z,
                              const MultiplierOptions& options) {
  const int n = static_cast<int>(x.size());
  const int m = static_cast<int>(z.size());
  QFAB_CHECK_MSG(n >= 1 && m >= 1, "squarer needs non-empty registers");

  append_qft(qc, z, options.qft_depth);
  // x² = Σ_i x_i 4^{i-1} + 2 Σ_{i<j} x_i x_j 2^{i+j-2}.
  auto emit = [&](int weight_exp, int qi, int qj) {
    // Phase contribution 2^{weight_exp} on Fourier-basis qubit z_q.
    for (int q = weight_exp + 1; q <= m; ++q) {
      const int l = q - weight_exp;
      if (options.add_depth > 0 && l - 1 > options.add_depth) continue;
      if (options.max_rotation_order > 0 && l > options.max_rotation_order)
        continue;
      const double angle = kTwoPi / std::ldexp(1.0, l);
      if (qi == qj) qc.cp(x[qi], z[q - 1], angle);
      else qc.ccp(x[qi], x[qj], z[q - 1], angle);
    }
  };
  for (int i = 1; i <= n; ++i) emit(2 * i - 2, i - 1, i - 1);
  for (int i = 1; i <= n; ++i)
    for (int j = i + 1; j <= n; ++j) emit(i + j - 1, i - 1, j - 1);
  append_iqft(qc, z, options.qft_depth);
}

QuantumCircuit make_qfm(int n, int m, const MultiplierOptions& options,
                        bool fused) {
  QuantumCircuit qc(0);
  const QubitRange x = qc.add_register("x", n);
  const QubitRange y = qc.add_register("y", m);
  const QubitRange z = qc.add_register("z", n + m);
  if (fused)
    append_qfm_fused(qc, range_qubits(x), range_qubits(y), range_qubits(z),
                     options);
  else
    append_qfm(qc, range_qubits(x), range_qubits(y), range_qubits(z),
               options);
  return qc;
}

}  // namespace qfab
