#include "qfb/weighted_sum.h"

#include <cmath>
#include <numbers>

namespace qfab {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;
}  // namespace

void append_weighted_phase_add(QuantumCircuit& qc, const std::vector<int>& x,
                               const std::vector<int>& acc,
                               std::int64_t weight) {
  const int n = static_cast<int>(x.size());
  const int m = static_cast<int>(acc.size());
  QFAB_CHECK(n >= 1 && m >= 1 && m < 62);
  if (weight == 0) return;
  for (int j = 1; j <= n; ++j) {
    // x_j contributes weight * 2^{j-1}; on accumulator qubit q the phase is
    // 2π (weight·2^{j-1} mod 2^q) / 2^q.
    for (int q = 1; q <= m; ++q) {
      const std::int64_t mod = std::int64_t{1} << q;
      // weight * 2^{j-1} mod 2^q, kept exact by reducing weight first.
      const std::int64_t w_mod = ((weight % mod) + mod) % mod;
      std::int64_t rem = w_mod;
      for (int s = 1; s < j; ++s) rem = (rem * 2) % mod;
      if (rem == 0) continue;
      qc.cp(x[j - 1], acc[q - 1],
            kTwoPi * static_cast<double>(rem) / static_cast<double>(mod));
    }
  }
}

void append_weighted_sum(QuantumCircuit& qc,
                         const std::vector<WeightedTerm>& terms,
                         const std::vector<int>& acc, int qft_depth) {
  append_qft(qc, acc, qft_depth);
  for (const WeightedTerm& t : terms)
    append_weighted_phase_add(qc, t.qubits, acc, t.weight);
  append_iqft(qc, acc, qft_depth);
}

}  // namespace qfab
