// Quantum Fourier Multiplication (QFM).
//
// Two constructions of |x>|y>|z> -> |x>|y>|z + x·y mod 2^{n+m}>:
//
//  * append_qfm — the paper's Fig. 3: a cascade of controlled QFAs. The
//    i-th x bit controls a full QFA of y into the (m+1)-qubit window
//    z[i-1 .. i+m-1]; every H/CP of the QFA is lifted to CH/CCP with x_i as
//    the extra control. This is the circuit the paper simulates and counts.
//    NOTE: interior-window carries are dropped, so the cascade is exact
//    only under the no-overflow invariant — guaranteed when z starts at 0
//    (the paper's configuration), not for arbitrary accumulation.
//
//  * append_qfm_fused — the Ruiz-Perez weighted-sum form: a single QFT over
//    the whole product register, doubly-controlled rotations for every
//    (x_i, y_j) pair, then one inverse QFT. Far fewer gates; used by the
//    construction-ablation bench.
//
// The product register must hold n + m qubits (no-overflow guarantee).
#pragma once

#include <vector>

#include "circuit/circuit.h"
#include "qfb/adder.h"

namespace qfab {

struct MultiplierOptions {
  /// AQFT depth applied to the (controlled) QFTs. For the cascade form this
  /// is the depth of each (m+1)-qubit window cQFT; for the fused form, of
  /// the single (n+m)-qubit QFT.
  int qft_depth = kFullDepth;

  /// Approximate-addition depth for the (c)add steps (0 = exact).
  int add_depth = 0;

  /// Drop rotations R_l with l > cap in the add steps (0 = keep all).
  int max_rotation_order = 0;
};

/// Paper construction (cascade of controlled QFAs).
void append_qfm(QuantumCircuit& qc, const std::vector<int>& x,
                const std::vector<int>& y, const std::vector<int>& z,
                const MultiplierOptions& options = {});

/// Ruiz-Perez single-QFT construction.
void append_qfm_fused(QuantumCircuit& qc, const std::vector<int>& x,
                      const std::vector<int>& y, const std::vector<int>& z,
                      const MultiplierOptions& options = {});

/// Standalone multiplier with registers "x" (n), "y" (m), "z" (n+m).
QuantumCircuit make_qfm(int n, int m, const MultiplierOptions& options = {},
                        bool fused = false);

/// Squaring accumulator |x>|z> -> |x>|z + x² mod 2^{|z|}> (a "tensor
/// extension" in the paper's sense): the fused construction specialised to
/// y = x, where diagonal terms x_i² = x_i need only singly-controlled
/// rotations and cross terms get a factor 2. |z| must be >= 2n for exact
/// (non-modular) squares.
void append_square_accumulate(QuantumCircuit& qc, const std::vector<int>& x,
                              const std::vector<int>& z,
                              const MultiplierOptions& options = {});

}  // namespace qfab
