// Modular arithmetic in the Fourier basis (Beauregard's construction) —
// the modular QFA/QFM variants the paper points to (Refs. [ruiz2017],
// [2020sahin]) and the substrate of Shor-style modular exponentiation.
//
// Core primitive: the modular constant adder  |y> -> |y + a mod N>  on an
// (n+1)-qubit register (top qubit is the overflow/sign sentinel, always
// returned to |0>) plus one ancilla:
//
//   φ-add(a); φ-sub(N); QFT†; CX(msb, anc); QFT; c-φ-add(N | anc);
//   φ-sub(a); QFT†; X(msb); CX(msb, anc); X(msb); QFT; φ-add(a)
//
// All additions are single-qubit-rotation constant adders, so controlled
// variants stay cheap. Built on top of it:
//
//   * append_cc_modular_add_const — doubly-controlled (for multiplication),
//   * append_modular_mac_const    — |x>|z> -> |x>|z + a·x mod N>,
//   * append_modular_mul_const    — in-place |x> -> |a·x mod N> (requires
//     gcd(a, N) = 1; uses the multiply / swap / inverse-uncompute trick).
//
// Register convention: values live in the low n qubits; `y` spans n+1
// qubits. Requires 0 <= a < N and N >= 2 (values reduced mod N on entry
// is the caller's contract, as in Beauregard).
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "qfb/qft.h"

namespace qfab {

/// |y> -> |y + a mod N>. `y` has n+1 qubits (n = value width, msb
/// sentinel), `ancilla` is one clean qubit (returned clean). `controls`
/// (0, 1 or 2 qubits) lift the whole operation to a (multi-)controlled one.
void append_modular_add_const(QuantumCircuit& qc, const std::vector<int>& y,
                              int ancilla, u64 a, u64 N,
                              const std::vector<int>& controls = {},
                              int qft_depth = kFullDepth);

/// |x>|z> -> |x>|z + a·x mod N>: a cascade of doubly-controlled modular
/// constant adders (one per x bit, constants a·2^i mod N). `z` has n+1
/// qubits. A single optional extra control lifts it to the controlled
/// version used by modular exponentiation.
void append_modular_mac_const(QuantumCircuit& qc, const std::vector<int>& x,
                              const std::vector<int>& z, int ancilla, u64 a,
                              u64 N, int control = -1,
                              int qft_depth = kFullDepth);

/// In-place modular multiplication |x> -> |a·x mod N> for gcd(a, N) = 1:
/// MAC into a clean (n+1)-qubit scratch register, SWAP the low n qubits,
/// then uncompute with the inverse MAC of a^{-1} mod N. Optional control.
void append_modular_mul_const(QuantumCircuit& qc, const std::vector<int>& x,
                              const std::vector<int>& scratch, int ancilla,
                              u64 a, u64 N, int control = -1,
                              int qft_depth = kFullDepth);

/// a^{-1} mod N (throws CheckError when gcd(a, N) != 1).
u64 modular_inverse(u64 a, u64 N);

/// a^e mod N by repeated squaring.
u64 modular_pow(u64 a, u64 e, u64 N);

}  // namespace qfab
