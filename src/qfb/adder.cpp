#include "qfb/adder.h"

#include <cmath>
#include <numbers>

namespace qfab {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Should the addition-step rotation R_l be kept under `options`?
bool keep_rotation(int l, const AdderOptions& options) {
  if (options.add_depth > 0 && l - 1 > options.add_depth) return false;
  if (options.max_rotation_order > 0 && l > options.max_rotation_order)
    return false;
  return true;
}

}  // namespace

void append_phase_add(QuantumCircuit& qc, const std::vector<int>& x,
                      const std::vector<int>& y,
                      const AdderOptions& options) {
  const int n = static_cast<int>(x.size());
  const int m = static_cast<int>(y.size());
  QFAB_CHECK_MSG(n >= 1 && m >= n, "adder requires 1 <= |x| <= |y|");
  const double sign = options.subtract ? -1.0 : 1.0;
  // Fourier-basis qubit y_q carries e^{2πi y / 2^q}; adding x shifts it by
  // 2π x_j 2^{j-1} / 2^q = R_{q-j+1} controlled on x_j, for every j <= q.
  for (int q = 1; q <= m; ++q) {
    for (int j = std::min(q, n); j >= 1; --j) {
      const int l = q - j + 1;
      if (!keep_rotation(l, options)) continue;
      qc.cp(x[j - 1], y[q - 1], sign * kTwoPi / std::ldexp(1.0, l));
    }
  }
}

void append_qfa(QuantumCircuit& qc, const std::vector<int>& x,
                const std::vector<int>& y, const AdderOptions& options) {
  append_qft(qc, y, options.qft_depth);
  append_phase_add(qc, x, y, options);
  append_iqft(qc, y, options.qft_depth);
}

void append_phase_add_const(QuantumCircuit& qc, const std::vector<int>& y,
                            std::int64_t value, bool subtract) {
  const int m = static_cast<int>(y.size());
  QFAB_CHECK(m >= 1 && m < 63);
  const double sign = subtract ? -1.0 : 1.0;
  for (int q = 1; q <= m; ++q) {
    // Phase shift 2π (value mod 2^q) / 2^q on qubit q.
    const std::int64_t mod = std::int64_t{1} << q;
    const std::int64_t rem = ((value % mod) + mod) % mod;
    if (rem == 0) continue;
    qc.p(y[q - 1],
         sign * kTwoPi * static_cast<double>(rem) / static_cast<double>(mod));
  }
}

void append_qfa_const(QuantumCircuit& qc, const std::vector<int>& y,
                      std::int64_t value, const AdderOptions& options) {
  append_qft(qc, y, options.qft_depth);
  append_phase_add_const(qc, y, value, options.subtract);
  append_iqft(qc, y, options.qft_depth);
}

QuantumCircuit make_qfa(int n, int m, const AdderOptions& options) {
  QuantumCircuit qc(0);
  const QubitRange x = qc.add_register("x", n);
  const QubitRange y = qc.add_register("y", m);
  append_qfa(qc, range_qubits(x), range_qubits(y), options);
  return qc;
}

std::size_t adder_rotation_count(int n, int m, const AdderOptions& options) {
  std::size_t count = 0;
  for (int q = 1; q <= m; ++q)
    for (int j = 1; j <= std::min(q, n); ++j)
      if (keep_rotation(q - j + 1, options)) ++count;
  return count;
}

}  // namespace qfab
