#include "qfb/qft.h"

#include <cmath>
#include <numbers>

namespace qfab {

namespace {
constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Angle of the paper's R_l gate: 2π / 2^l.
double rotation_angle(int l) { return kTwoPi / std::ldexp(1.0, l); }
}  // namespace

int resolve_qft_depth(int depth, int register_size) {
  QFAB_CHECK(register_size >= 1);
  if (depth == kFullDepth) return register_size - 1;
  QFAB_CHECK_MSG(depth >= 0, "QFT depth must be >= 0 or kFullDepth");
  return std::min(depth, register_size - 1);
}

void append_qft(QuantumCircuit& qc, const std::vector<int>& qubits,
                int depth, bool with_swaps) {
  const int n = static_cast<int>(qubits.size());
  QFAB_CHECK(n >= 1);
  const int d = resolve_qft_depth(depth, n);
  // Process qubits from most significant (local index n) downward; each
  // gets H followed by rotations controlled by the next-lower qubits.
  for (int q = n; q >= 1; --q) {
    qc.h(qubits[q - 1]);
    // Rotation R_l controlled by local qubit j = q - (l - 1); keep l-1 <= d.
    for (int l = 2; l <= std::min(q, d + 1); ++l) {
      const int j = q - (l - 1);
      qc.cp(qubits[j - 1], qubits[q - 1], rotation_angle(l));
    }
  }
  if (with_swaps)
    for (int i = 0; i < n / 2; ++i) qc.swap(qubits[i], qubits[n - 1 - i]);
}

void append_iqft(QuantumCircuit& qc, const std::vector<int>& qubits,
                 int depth, bool with_swaps) {
  QuantumCircuit fwd(qc.num_qubits());
  append_qft(fwd, qubits, depth, with_swaps);
  qc.compose(fwd.inverse());
}

QuantumCircuit make_qft(int n, int depth, bool with_swaps) {
  QuantumCircuit qc(0);
  const QubitRange r = qc.add_register("q", n);
  append_qft(qc, range_qubits(r), depth, with_swaps);
  return qc;
}

std::size_t qft_rotation_count(int n, int depth) {
  const int d = resolve_qft_depth(depth, n);
  std::size_t count = 0;
  for (int q = 1; q <= n; ++q)
    count += static_cast<std::size_t>(std::min(q - 1, d));
  return count;
}

std::vector<int> range_qubits(const QubitRange& r) {
  std::vector<int> out(static_cast<std::size_t>(r.size));
  for (int i = 0; i < r.size; ++i) out[static_cast<std::size_t>(i)] = r[i];
  return out;
}

}  // namespace qfab
