// Weighted sums of quantum integers with classical weights — the
// data-processing / machine-learning motif the paper's introduction cites
// (weighted-sum optimization, inner products with known coefficients).
//
// acc += Σ_k w_k · x^(k)  (mod 2^{|acc|}),
//
// realized as one QFT on the accumulator, then per-term phase additions
// (each x bit controls single-qubit-indexed rotations scaled by the
// classical weight), then one inverse QFT. Negative weights subtract, so
// signed (two's-complement) weighted sums work directly.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "qfb/qft.h"

namespace qfab {

struct WeightedTerm {
  std::vector<int> qubits;  // the quantum integer x^(k), little-endian
  std::int64_t weight = 1;  // classical coefficient w_k
};

/// Append the phase-space addition of weight * x into an accumulator that
/// is already in the Fourier basis.
void append_weighted_phase_add(QuantumCircuit& qc, const std::vector<int>& x,
                               const std::vector<int>& acc,
                               std::int64_t weight);

/// Full weighted sum: QFT(acc), all terms, QFT(acc)^{-1}.
void append_weighted_sum(QuantumCircuit& qc,
                         const std::vector<WeightedTerm>& terms,
                         const std::vector<int>& acc,
                         int qft_depth = kFullDepth);

}  // namespace qfab
