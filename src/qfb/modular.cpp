#include "qfb/modular.h"

#include <cmath>
#include <numbers>
#include <utility>

namespace qfab {

namespace {

constexpr double kTwoPi = 2.0 * std::numbers::pi;

/// Fourier-space constant addition of `value` (two's complement mod 2^m)
/// onto `y`, lifted over 0-2 control qubits.
void emit_const_phase_add(QuantumCircuit& qc, const std::vector<int>& y,
                          u64 value, bool subtract,
                          const std::vector<int>& controls) {
  const int m = static_cast<int>(y.size());
  const double sign = subtract ? -1.0 : 1.0;
  for (int q = 1; q <= m; ++q) {
    const u64 mod = u64{1} << q;
    const u64 rem = value & (mod - 1);
    if (rem == 0) continue;
    const double angle =
        sign * kTwoPi * static_cast<double>(rem) / static_cast<double>(mod);
    switch (controls.size()) {
      case 0:
        qc.p(y[q - 1], angle);
        break;
      case 1:
        qc.cp(controls[0], y[q - 1], angle);
        break;
      case 2:
        qc.ccp(controls[0], controls[1], y[q - 1], angle);
        break;
      default:
        QFAB_CHECK_MSG(false, "at most two controls supported");
    }
  }
}

}  // namespace

u64 modular_inverse(u64 a, u64 N) {
  QFAB_CHECK(N >= 2 && a < N);
  // Extended Euclid on signed intermediates.
  std::int64_t t = 0, new_t = 1;
  std::int64_t r = static_cast<std::int64_t>(N);
  std::int64_t new_r = static_cast<std::int64_t>(a);
  while (new_r != 0) {
    const std::int64_t q = r / new_r;
    t = std::exchange(new_t, t - q * new_t);
    r = std::exchange(new_r, r - q * new_r);
  }
  QFAB_CHECK_MSG(r == 1, "modular_inverse: gcd(" << a << ", " << N
                                                 << ") != 1");
  if (t < 0) t += static_cast<std::int64_t>(N);
  return static_cast<u64>(t);
}

u64 modular_pow(u64 a, u64 e, u64 N) {
  QFAB_CHECK(N >= 1);
  u64 result = 1 % N;
  u64 base = a % N;
  while (e > 0) {
    if (e & 1) result = (result * base) % N;
    base = (base * base) % N;
    e >>= 1;
  }
  return result;
}

void append_modular_add_const(QuantumCircuit& qc, const std::vector<int>& y,
                              int ancilla, u64 a, u64 N,
                              const std::vector<int>& controls,
                              int qft_depth) {
  const int m = static_cast<int>(y.size());
  QFAB_CHECK_MSG(m >= 2, "modular adder needs n+1 >= 2 qubits");
  QFAB_CHECK_MSG(N >= 2 && N < pow2(m - 1), "modulus must fit in n bits");
  QFAB_CHECK(a < N);
  const int msb = y[m - 1];

  // Work in Fourier space; drop to the computational basis only for the
  // two sentinel-bit tests.
  append_qft(qc, y, qft_depth);
  emit_const_phase_add(qc, y, a, false, controls);
  emit_const_phase_add(qc, y, N, true, {});
  append_iqft(qc, y, qft_depth);
  qc.cx(msb, ancilla);  // ancilla <- 1 iff y + a - N went negative
  append_qft(qc, y, qft_depth);
  emit_const_phase_add(qc, y, N, false, {ancilla});
  emit_const_phase_add(qc, y, a, true, controls);
  append_iqft(qc, y, qft_depth);
  // Restore the ancilla: after subtracting a back, msb == 0 iff the
  // original value was >= 0 (i.e. the reduction branch was NOT taken).
  qc.x(msb);
  qc.cx(msb, ancilla);
  qc.x(msb);
  append_qft(qc, y, qft_depth);
  emit_const_phase_add(qc, y, a, false, controls);
  append_iqft(qc, y, qft_depth);
}

void append_modular_mac_const(QuantumCircuit& qc, const std::vector<int>& x,
                              const std::vector<int>& z, int ancilla, u64 a,
                              u64 N, int control, int qft_depth) {
  QFAB_CHECK(!x.empty());
  u64 term = a % N;
  for (std::size_t i = 0; i < x.size(); ++i) {
    std::vector<int> controls;
    if (control >= 0) controls.push_back(control);
    controls.push_back(x[i]);
    if (term != 0)
      append_modular_add_const(qc, z, ancilla, term, N, controls, qft_depth);
    term = (term * 2) % N;
  }
}

void append_modular_mul_const(QuantumCircuit& qc, const std::vector<int>& x,
                              const std::vector<int>& scratch, int ancilla,
                              u64 a, u64 N, int control, int qft_depth) {
  const int n = static_cast<int>(x.size());
  QFAB_CHECK(static_cast<int>(scratch.size()) == n + 1);
  const u64 a_red = a % N;
  const u64 a_inv = modular_inverse(a_red, N);

  // scratch += a·x mod N
  append_modular_mac_const(qc, x, scratch, ancilla, a_red, N, control,
                           qft_depth);
  // (c)SWAP the value qubits of x and scratch.
  for (int i = 0; i < n; ++i) {
    if (control < 0) {
      qc.swap(x[i], scratch[i]);
    } else {
      // Fredkin via CX · CCX · CX.
      qc.cx(scratch[i], x[i]);
      qc.ccx(control, x[i], scratch[i]);
      qc.cx(scratch[i], x[i]);
    }
  }
  // Uncompute the old x (now in scratch): scratch -= a^{-1}·x_new mod N.
  QuantumCircuit mac_inv(qc.num_qubits());
  append_modular_mac_const(mac_inv, x, scratch, ancilla, a_inv, N, control,
                           qft_depth);
  qc.compose(mac_inv.inverse());
}

}  // namespace qfab
