// Quantum Fourier Transform and its depth-d approximation (AQFT).
//
// Conventions (matching the paper, Sec. II):
//  * Registers are little-endian: qubits[0] is the least-significant bit.
//  * The QFT is *swapless* (Draper form): after the transform, qubit q
//    (1-indexed from the LSB) carries the phase e^{2πi y / 2^q}, i.e. the
//    binary fraction [0.y_q ... y_1]. The arithmetic layer performs all
//    phase additions in this basis, so no SWAP network is ever needed.
//  * The approximation depth d is the maximum number of *controlled*
//    rotations applied per qubit (the paper's d): the full QFT of an
//    n-qubit register corresponds to d = n-1, and depth d keeps exactly
//    the rotations R_2 .. R_{d+1} (R_l = P(2π/2^l)).
#pragma once

#include <vector>

#include "circuit/circuit.h"

namespace qfab {

/// Sentinel for "no approximation" (d = register size - 1).
inline constexpr int kFullDepth = -1;

/// Resolve a depth argument: kFullDepth -> size-1; otherwise clamp-checked.
int resolve_qft_depth(int depth, int register_size);

/// Append the (A)QFT of `qubits` to `qc`. `with_swaps` appends the final
/// bit-reversal SWAP network, making the circuit equal to the textbook DFT.
void append_qft(QuantumCircuit& qc, const std::vector<int>& qubits,
                int depth = kFullDepth, bool with_swaps = false);

/// Append the inverse (A)QFT.
void append_iqft(QuantumCircuit& qc, const std::vector<int>& qubits,
                 int depth = kFullDepth, bool with_swaps = false);

/// Standalone n-qubit (A)QFT circuit with a register named "q".
QuantumCircuit make_qft(int n, int depth = kFullDepth,
                        bool with_swaps = false);

/// Number of controlled-phase rotations in an n-qubit depth-d (A)QFT:
/// sum over qubits q of min(q-1, d).
std::size_t qft_rotation_count(int n, int depth = kFullDepth);

/// Qubit indices of a register range as a vector (helper for the appenders).
std::vector<int> range_qubits(const QubitRange& r);

}  // namespace qfab
