// Quantum Fourier Addition (QFA) — Draper-style phase-space arithmetic.
//
// The adder updates a target register y (m qubits) by a source register x
// (n <= m qubits): |x>|y> -> |x>|y + x mod 2^m>. With m = n the operation is
// the paper's modular adder; with m = n + 1 and inputs below 2^n it is the
// non-modular adder of Fig. 2. Subtraction is the same circuit with negated
// rotation angles. Because values are two's-complement encodings mod 2^m,
// signed addition works unchanged.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "qfb/qft.h"

namespace qfab {

struct AdderOptions {
  /// AQFT approximation depth d for the surrounding QFT/QFT^{-1}
  /// (kFullDepth = exact).
  int qft_depth = kFullDepth;

  /// Approximation of the *addition step* itself (the paper defers this to
  /// future work; we expose it for the ablation bench). 0 = exact;
  /// otherwise keep only rotations R_l with l - 1 <= add_depth, mirroring
  /// the AQFT rule.
  int add_depth = 0;

  /// Drop rotations R_l with l > max_rotation_order everywhere in the
  /// addition step (0 = keep all). The paper's Table I gate counts
  /// correspond to max_rotation_order = n - 1 for QFA (one R_n gate fewer
  /// than the exact modular adder); see EXPERIMENTS.md.
  int max_rotation_order = 0;

  /// Negate all addition rotations: y -> y - x mod 2^m.
  bool subtract = false;
};

/// Append only the addition step (Fig. 2): assumes y is already in the
/// Fourier basis produced by append_qft (swapless convention).
void append_phase_add(QuantumCircuit& qc, const std::vector<int>& x,
                      const std::vector<int>& y,
                      const AdderOptions& options = {});

/// Append the full QFA: QFT(y), add, QFT(y)^{-1}.
void append_qfa(QuantumCircuit& qc, const std::vector<int>& x,
                const std::vector<int>& y, const AdderOptions& options = {});

/// Classical-operand addition (paper Sec. III closing remark): adds the
/// constant `value` (interpreted mod 2^m) using single-qubit rotations only.
/// Assumes y is already in the Fourier basis.
void append_phase_add_const(QuantumCircuit& qc, const std::vector<int>& y,
                            std::int64_t value, bool subtract = false);

/// Full constant QFA: QFT(y), add constant, QFT(y)^{-1}.
void append_qfa_const(QuantumCircuit& qc, const std::vector<int>& y,
                      std::int64_t value, const AdderOptions& options = {});

/// Standalone adder circuit with registers "x" (n qubits) and "y" (m
/// qubits), m >= n.
QuantumCircuit make_qfa(int n, int m, const AdderOptions& options = {});

/// Number of controlled-phase rotations in the addition step.
std::size_t adder_rotation_count(int n, int m,
                                 const AdderOptions& options = {});

}  // namespace qfab
