#include "arith/qint.h"

#include <algorithm>
#include <cmath>

namespace qfab {

QInt::QInt(int bits, std::vector<Term> terms)
    : bits_(bits), terms_(std::move(terms)) {
  QFAB_CHECK(bits >= 1 && bits < 63);
  QFAB_CHECK_MSG(!terms_.empty(), "qinteger needs at least one term");
  std::sort(terms_.begin(), terms_.end(),
            [](const Term& a, const Term& b) { return a.value < b.value; });
  double norm = 0.0;
  for (std::size_t i = 0; i < terms_.size(); ++i) {
    QFAB_CHECK_MSG(terms_[i].value < pow2(bits_), "term out of range");
    QFAB_CHECK_MSG(i == 0 || terms_[i].value != terms_[i - 1].value,
                   "duplicate qinteger term " << terms_[i].value);
    norm += std::norm(terms_[i].amplitude);
  }
  QFAB_CHECK_MSG(norm > 0.0, "qinteger has zero norm");
  const double scale = 1.0 / std::sqrt(norm);
  for (Term& t : terms_) t.amplitude *= scale;
}

QInt QInt::classical(int bits, std::int64_t value) {
  return QInt(bits, {Term{encode(value, bits), cplx{1.0, 0.0}}});
}

QInt QInt::uniform(int bits, const std::vector<std::int64_t>& values) {
  QFAB_CHECK(!values.empty());
  std::vector<Term> terms;
  terms.reserve(values.size());
  for (std::int64_t v : values)
    terms.push_back(Term{encode(v, bits), cplx{1.0, 0.0}});
  return QInt(bits, std::move(terms));
}

QInt QInt::superposition(int bits, std::vector<Term> terms) {
  return QInt(bits, std::move(terms));
}

std::vector<u64> QInt::support() const {
  std::vector<u64> out;
  out.reserve(terms_.size());
  for (const Term& t : terms_) out.push_back(t.value);
  return out;
}

std::vector<cplx> QInt::amplitudes() const {
  std::vector<cplx> amps(pow2(bits_), cplx{0.0, 0.0});
  for (const Term& t : terms_) amps[t.value] = t.amplitude;
  return amps;
}

u64 QInt::encode(std::int64_t value, int bits) {
  QFAB_CHECK(bits >= 1 && bits < 63);
  const std::int64_t mod = std::int64_t{1} << bits;
  const std::int64_t rem = ((value % mod) + mod) % mod;
  return static_cast<u64>(rem);
}

std::int64_t QInt::decode_signed(u64 encoded, int bits) {
  QFAB_CHECK(bits >= 1 && bits < 63);
  QFAB_CHECK(encoded < pow2(bits));
  const auto raw = static_cast<std::int64_t>(encoded);
  const std::int64_t half = std::int64_t{1} << (bits - 1);
  return raw >= half ? raw - (std::int64_t{1} << bits) : raw;
}

StateVector prepare_product_state(
    int total_qubits,
    const std::vector<std::pair<QubitRange, QInt>>& registers) {
  // Validate that registers are disjoint and in range.
  std::vector<bool> used(static_cast<std::size_t>(total_qubits), false);
  for (const auto& [range, value] : registers) {
    QFAB_CHECK(range.size == value.bits());
    for (int i = 0; i < range.size; ++i) {
      const int q = range[i];
      QFAB_CHECK(q >= 0 && q < total_qubits);
      QFAB_CHECK_MSG(!used[static_cast<std::size_t>(q)],
                     "overlapping registers in prepare_product_state");
      used[static_cast<std::size_t>(q)] = true;
    }
  }

  std::vector<cplx> amps(pow2(total_qubits), cplx{0.0, 0.0});
  // Cartesian product over register terms (orders are tiny in practice).
  std::vector<std::size_t> cursor(registers.size(), 0);
  for (;;) {
    u64 index = 0;
    cplx amp{1.0, 0.0};
    for (std::size_t r = 0; r < registers.size(); ++r) {
      const auto& term = registers[r].second.terms()[cursor[r]];
      index |= term.value << registers[r].first.start;
      amp *= term.amplitude;
    }
    amps[index] = amp;
    // Advance the odometer.
    std::size_t r = 0;
    while (r < registers.size()) {
      if (++cursor[r] < registers[r].second.terms().size()) break;
      cursor[r] = 0;
      ++r;
    }
    if (r == registers.size()) break;
    if (registers.empty()) break;
  }
  if (registers.empty()) amps[0] = 1.0;
  return StateVector::from_amplitudes(std::move(amps));
}

}  // namespace qfab
