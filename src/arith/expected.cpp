#include "arith/expected.h"

#include <algorithm>

namespace qfab {

namespace {

std::vector<u64> sorted_unique(std::vector<u64> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

template <typename Op>
std::vector<u64> combine(const QInt& x, const QInt& y, int out_bits, Op op) {
  QFAB_CHECK(out_bits >= 1 && out_bits < 63);
  const u64 mask = pow2(out_bits) - 1;
  std::vector<u64> out;
  out.reserve(x.terms().size() * y.terms().size());
  for (const auto& tx : x.terms())
    for (const auto& ty : y.terms()) out.push_back(op(tx.value, ty.value) & mask);
  return sorted_unique(std::move(out));
}

}  // namespace

std::vector<u64> expected_sums(const QInt& x, const QInt& y, int out_bits) {
  return combine(x, y, out_bits, [](u64 a, u64 b) { return a + b; });
}

std::vector<u64> expected_differences(const QInt& x, const QInt& y,
                                      int out_bits) {
  // y - x mod 2^out_bits (the subtractor updates y).
  return combine(x, y, out_bits,
                 [](u64 a, u64 b) { return b + (~a + 1); });
}

std::vector<u64> expected_products(const QInt& x, const QInt& y,
                                   int out_bits) {
  return combine(x, y, out_bits, [](u64 a, u64 b) { return a * b; });
}

std::vector<u64> expected_weighted_sums(
    const std::vector<std::pair<QInt, std::int64_t>>& terms, u64 acc_initial,
    int out_bits) {
  QFAB_CHECK(out_bits >= 1 && out_bits < 63);
  const u64 mask = pow2(out_bits) - 1;
  std::vector<u64> sums = {acc_initial & mask};
  for (const auto& [q, w] : terms) {
    std::vector<u64> next;
    next.reserve(sums.size() * q.terms().size());
    for (u64 s : sums)
      for (const auto& t : q.terms())
        next.push_back((s + t.value * static_cast<u64>(w)) & mask);
    sums = sorted_unique(std::move(next));
  }
  return sums;
}

}  // namespace qfab
