// Classical computation of the correct outputs of a quantum arithmetic
// instance — the ground truth the success metric compares measured counts
// against (paper Sec. IV: "the binary outputs with the highest frequency
// matched those anticipated based on the input values").
#pragma once

#include <vector>

#include "arith/qint.h"

namespace qfab {

/// All distinct values (x + y) mod 2^out_bits over the operand supports,
/// ascending. For QFA the output register is y, so out_bits = |y|.
std::vector<u64> expected_sums(const QInt& x, const QInt& y, int out_bits);

/// All distinct values (y - x) mod 2^out_bits (subtractor ground truth).
std::vector<u64> expected_differences(const QInt& x, const QInt& y,
                                      int out_bits);

/// All distinct values (x * y) mod 2^out_bits over the operand supports.
std::vector<u64> expected_products(const QInt& x, const QInt& y,
                                   int out_bits);

/// All distinct values (acc + Σ w_k x_k) mod 2^out_bits for single-term
/// weighted sums over each operand's support (weights classical).
std::vector<u64> expected_weighted_sums(
    const std::vector<std::pair<QInt, std::int64_t>>& terms, u64 acc_initial,
    int out_bits);

}  // namespace qfab
