// Quantum integers (qintegers).
//
// A qinteger is a superposition of two's-complement integer states on an
// n-qubit register (paper Sec. II). An order-j qinteger has j basis states
// with nonzero amplitude. This type is purely descriptive — the simulator
// consumes it through prepare_product_state (the paper's noise-free
// initialization) or through the state-preparation circuit synthesizer.
#pragma once

#include <cstdint>
#include <vector>

#include "circuit/circuit.h"
#include "sim/statevector.h"

namespace qfab {

class QInt {
 public:
  struct Term {
    u64 value = 0;  // encoded (mod 2^bits) representation
    cplx amplitude{0.0, 0.0};
  };

  /// Order-1 qinteger |value mod 2^bits>.
  static QInt classical(int bits, std::int64_t value);

  /// Uniform superposition of the given (distinct) values, equal real
  /// amplitudes 1/sqrt(k) — the paper's evenly-distributed operands.
  static QInt uniform(int bits, const std::vector<std::int64_t>& values);

  /// General superposition; amplitudes are normalized on construction.
  static QInt superposition(int bits, std::vector<Term> terms);

  int bits() const { return bits_; }
  int order() const { return static_cast<int>(terms_.size()); }
  const std::vector<Term>& terms() const { return terms_; }

  /// Encoded values in ascending order.
  std::vector<u64> support() const;

  /// Full 2^bits amplitude vector.
  std::vector<cplx> amplitudes() const;

  // Two's-complement helpers.
  static u64 encode(std::int64_t value, int bits);
  static std::int64_t decode_signed(u64 encoded, int bits);

 private:
  QInt(int bits, std::vector<Term> terms);

  int bits_ = 0;
  std::vector<Term> terms_;
};

/// Build the joint state of several registers of one circuit, each holding
/// a qinteger, with all remaining qubits in |0>. This is the paper's
/// noise-free initialization: amplitudes are written directly, no gates.
StateVector prepare_product_state(
    int total_qubits,
    const std::vector<std::pair<QubitRange, QInt>>& registers);

}  // namespace qfab
