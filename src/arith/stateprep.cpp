#include "arith/stateprep.h"

#include <cmath>

#include "common/bits.h"

namespace qfab {

void append_multiplexed_rotation(QuantumCircuit& qc,
                                 const std::vector<int>& controls, int target,
                                 const std::vector<double>& angles,
                                 char axis) {
  QFAB_CHECK(axis == 'y' || axis == 'z');
  QFAB_CHECK(angles.size() == pow2(static_cast<int>(controls.size())));
  if (controls.empty()) {
    if (axis == 'y') qc.ry(target, angles[0]);
    else qc.rz(target, angles[0]);
    return;
  }
  // Split on the most significant control: the two halves become
  // half-sized multiplexors of (lo+hi)/2 and (lo-hi)/2 separated by CX,
  // using X R(θ) X = R(-θ) for both RY and RZ.
  const std::size_t half = angles.size() / 2;
  std::vector<double> sum(half), diff(half);
  for (std::size_t i = 0; i < half; ++i) {
    sum[i] = (angles[i] + angles[i + half]) / 2;
    diff[i] = (angles[i] - angles[i + half]) / 2;
  }
  const int top = controls.back();
  const std::vector<int> rest(controls.begin(), controls.end() - 1);
  append_multiplexed_rotation(qc, rest, target, sum, axis);
  qc.cx(top, target);
  append_multiplexed_rotation(qc, rest, target, diff, axis);
  qc.cx(top, target);
}

namespace {

bool all_zero(const std::vector<double>& v) {
  for (double x : v)
    if (std::abs(x) > 1e-12) return false;
  return true;
}

}  // namespace

void append_state_preparation(QuantumCircuit& qc,
                              const std::vector<int>& qubits,
                              const std::vector<cplx>& amplitudes) {
  const int n = static_cast<int>(qubits.size());
  QFAB_CHECK(n >= 1);
  QFAB_CHECK(amplitudes.size() == pow2(n));
  double norm = 0.0;
  for (const cplx& a : amplitudes) norm += std::norm(a);
  QFAB_CHECK_MSG(std::abs(norm - 1.0) < 1e-8,
                 "state preparation requires a normalized target");

  // Disentangle the LSB repeatedly; record the uncompute multiplexors.
  QuantumCircuit uncompute(qc.num_qubits());
  std::vector<cplx> psi = amplitudes;
  for (int b = 0; b < n; ++b) {
    const std::size_t pairs = psi.size() / 2;
    std::vector<double> theta(pairs), phi(pairs);
    std::vector<cplx> next(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      const cplx a = psi[2 * i], c = psi[2 * i + 1];
      const double ra = std::abs(a), rc = std::abs(c);
      const double r = std::hypot(ra, rc);
      if (r < 1e-15) {
        theta[i] = phi[i] = 0.0;
        next[i] = cplx{0.0, 0.0};
        continue;
      }
      const double arg_a = (ra < 1e-15) ? 0.0 : std::arg(a);
      const double arg_c = (rc < 1e-15) ? 0.0 : std::arg(c);
      theta[i] = 2.0 * std::atan2(rc, ra);
      phi[i] = arg_c - arg_a;
      const double mu = 0.5 * (arg_a + arg_c);
      next[i] = r * cplx{std::cos(mu), std::sin(mu)};
    }
    std::vector<int> controls(qubits.begin() + b + 1, qubits.end());
    // Uncompute order per level: UCRZ(-φ) then UCRY(-θ) sends each pair
    // (a, c) to (r e^{iμ}, 0).
    std::vector<double> neg_phi(pairs), neg_theta(pairs);
    for (std::size_t i = 0; i < pairs; ++i) {
      neg_phi[i] = -phi[i];
      neg_theta[i] = -theta[i];
    }
    if (!all_zero(neg_phi))
      append_multiplexed_rotation(uncompute, controls, qubits[b], neg_phi,
                                  'z');
    if (!all_zero(neg_theta))
      append_multiplexed_rotation(uncompute, controls, qubits[b], neg_theta,
                                  'y');
    psi = std::move(next);
  }
  // psi is now the scalar e^{iΛ}: uncompute |target> = e^{iΛ}|0>, so the
  // preparation circuit is uncompute^{-1} with global phase Λ.
  const double lambda = std::arg(psi[0]);
  QuantumCircuit prep = uncompute.inverse();
  // inverse() negated uncompute's (zero) phase; set the true one.
  qc.compose(prep);
  qc.add_global_phase(lambda);
}

}  // namespace qfab
