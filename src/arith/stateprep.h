// State-preparation circuit synthesis (Shende–Bullock–Markov reverse
// decomposition, the algorithm behind Qiskit's `initialize` that the paper
// uses for operand preparation).
//
// The synthesizer reduces the target state to |0...0> one qubit at a time
// with uniformly-controlled RZ/RY multiplexors (decomposed into CX + RY/RZ
// recursively), then emits the inverse. The paper applies no noise during
// initialization, so the experiment harness bypasses these circuits and
// writes amplitudes directly; this module exists for completeness, for the
// examples, and to document the gate cost of real initialization.
#pragma once

#include <vector>

#include "circuit/circuit.h"

namespace qfab {

/// Append a uniformly-controlled RY (axis='y') or RZ (axis='z') multiplexor:
/// applies R(angles[c]) to `target` where c is the little-endian value of
/// `controls` (angles.size() == 2^{controls.size()}).
void append_multiplexed_rotation(QuantumCircuit& qc,
                                 const std::vector<int>& controls, int target,
                                 const std::vector<double>& angles, char axis);

/// Append a circuit preparing `amplitudes` (size 2^{qubits.size()},
/// normalized) on `qubits` from |0...0>. Exact up to global phase, which is
/// tracked on the circuit.
void append_state_preparation(QuantumCircuit& qc,
                              const std::vector<int>& qubits,
                              const std::vector<cplx>& amplitudes);

}  // namespace qfab
