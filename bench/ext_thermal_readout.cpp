// Extension experiment (the paper's stated future work, Sec. V): isolate
// thermal relaxation (T1/T2, Pauli-twirled) and measurement/readout error
// for QFA, alone and combined with the 2q depolarizing error — the
// "simultaneous simulation" the paper calls for.
#include <iostream>

#include "common/cli.h"
#include "common/stopwatch.h"
#include "exp/sweep.h"
#include "transpile/transpile.h"

namespace {

using namespace qfab;

double run_point(const QuantumCircuit& circuit, const CircuitSpec& spec,
                 const std::vector<ArithInstance>& insts,
                 const NoiseModel& noise, const RunOptions& run,
                 std::uint64_t seed) {
  std::vector<InstanceOutcome> outcomes;
  for (std::size_t i = 0; i < insts.size(); ++i) {
    const InstanceContext ctx(circuit, spec, insts[i], run);
    Pcg64 rng(seed + i);
    outcomes.push_back(ctx.evaluate(noise, run, rng));
  }
  return aggregate_outcomes(outcomes).success_rate;
}

}  // namespace

int main(int argc, char** argv) {
  const CliFlags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 6));
  const int instances = static_cast<int>(flags.get_int("instances", 8));
  const int traj = static_cast<int>(flags.get_int("traj", 10));
  const auto shots =
      static_cast<std::uint64_t>(flags.get_int("shots", 2048));
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 31));
  // IBM-flavored timings: T1/T2 in microseconds, gates in ns.
  const double time_1q = flags.get_double("time1q", 0.035);  // 35 ns
  const double time_2q = flags.get_double("time2q", 0.30);   // 300 ns
  if (!flags.validate()) return 2;

  std::cout << "=== Extension: thermal relaxation + readout error (QFA n = "
            << n << ", 2:2 operands, depth full) ===\n"
            << "T1/T2 in µs; gate times " << 1000 * time_1q << " ns (1q), "
            << 1000 * time_2q << " ns (2q); Pauli-twirled relaxation.\n\n";

  CircuitSpec spec;
  spec.op = Operation::kAdd;
  spec.n = n;
  const QuantumCircuit circuit = build_transpiled_circuit(spec);
  Pcg64 gen(seed);
  const auto insts = generate_instances(instances, n, n, {2, 2}, gen);

  RunOptions run;
  run.shots = shots;
  run.error_trajectories = traj;

  Stopwatch watch;
  {
    TextTable table({"T1 (µs)", "T2 (µs)", "thermal only", "+2q depol 0.5%",
                     "+readout 2%"});
    for (const auto& [t1, t2] : std::vector<std::pair<double, double>>{
             {500.0, 300.0}, {100.0, 80.0}, {30.0, 25.0}, {10.0, 8.0}}) {
      NoiseModel thermal;
      thermal.t1 = t1;
      thermal.t2 = t2;
      thermal.time_1q = time_1q;
      thermal.time_2q = time_2q;

      NoiseModel combined = thermal;
      combined.p2q = 0.005;

      RunOptions with_readout = run;
      with_readout.readout = ReadoutError{0.02, 0.02};

      table.add_row(
          {fmt_double(t1, 0), fmt_double(t2, 0),
           fmt_percent(run_point(circuit, spec, insts, thermal, run, seed),
                       1) + "%",
           fmt_percent(run_point(circuit, spec, insts, combined, run, seed),
                       1) + "%",
           fmt_percent(run_point(circuit, spec, insts, combined,
                                 with_readout, seed),
                       1) + "%"});
    }
    table.print(std::cout);
  }

  std::cout << '\n';
  {
    TextTable table({"readout p01=p10", "success (no gate noise)"});
    for (double p : {0.0, 0.02, 0.05, 0.1, 0.2, 0.3}) {
      RunOptions ro = run;
      ro.readout = ReadoutError{p, p};
      table.add_row(
          {fmt_percent(p, 1) + "%",
           fmt_percent(run_point(circuit, spec, insts, NoiseModel{}, ro,
                                 seed),
                       1) + "%"});
    }
    table.print(std::cout);
  }
  std::cout << "\n(" << fmt_double(watch.seconds(), 1)
            << " s) The majority-vote metric is remarkably robust to\n"
            << "readout error (tens of percent per bit before it breaks);\n"
            << "thermal relaxation at current-device T1/T2 and gate times\n"
            << "is mild for QFA but compounds with 2q depolarizing noise.\n";
  return 0;
}
