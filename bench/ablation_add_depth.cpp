// Ablation A: approximating the *addition step* itself (the paper defers
// this to future work, predicting smaller benefit than the AQFT because
// the cutoff directly perturbs the applied phase shifts and removes half
// as many gates). We sweep the add-step depth alongside the AQFT depth.
#include <iostream>

#include "common/cli.h"
#include "common/stopwatch.h"
#include "exp/sweep.h"
#include "transpile/transpile.h"

int main(int argc, char** argv) {
  using namespace qfab;
  const CliFlags flags(argc, argv);
  const int n = static_cast<int>(flags.get_int("n", 8));
  const int instances = static_cast<int>(flags.get_int("instances", 10));
  const int traj = static_cast<int>(flags.get_int("traj", 8));
  const auto shots =
      static_cast<std::uint64_t>(flags.get_int("shots", 2048));
  const double rate2q = flags.get_double("rate2q", 1.0);  // percent
  const auto seed = static_cast<std::uint64_t>(flags.get_int("seed", 99));
  if (!flags.validate()) return 2;

  std::cout << "=== Ablation: approximate addition step (QFA n = " << n
            << ", P2q = " << rate2q << "%) ===\n"
            << "add-depth 0 = exact addition step; AQFT depth varied per "
               "column.\n\n";

  Pcg64 gen(seed);
  const auto insts = generate_instances(instances, n, n, {2, 2}, gen);

  TextTable table({"add_depth", "aqft d=2", "aqft d=3", "aqft d=full",
                   "2q gates (d=3)"});
  Stopwatch watch;
  for (int add_depth : {0, 1, 2, 3, 4}) {
    std::vector<std::string> row = {add_depth == 0
                                        ? std::string("exact")
                                        : std::to_string(add_depth)};
    std::size_t gates_2q = 0;
    for (int depth : {2, 3, kFullDepth}) {
      SweepConfig cfg;
      cfg.base.op = Operation::kAdd;
      cfg.base.n = n;
      cfg.base.add_depth = add_depth;
      cfg.depths = {depth};
      cfg.rates_percent = {rate2q};
      cfg.vary_2q = true;
      cfg.include_noise_free = false;
      cfg.instances = instances;
      cfg.run.shots = shots;
      cfg.run.error_trajectories = traj;
      cfg.seed = seed;
      const SweepResult r = run_sweep(cfg, insts);
      row.push_back(fmt_percent(r.points[0].stats.success_rate, 1) + "%");
      if (depth == 3) {
        CircuitSpec spec = cfg.base;
        spec.depth = 3;
        gates_2q = build_transpiled_circuit(spec).counts().two_qubit;
      }
    }
    row.push_back(std::to_string(gates_2q));
    table.add_row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "\n(" << fmt_double(watch.seconds(), 1) << " s; instances="
            << instances << " shots=" << shots << " traj=" << traj << ")\n"
            << "Expected: shallow add-depth removes gates but corrupts the\n"
            << "encoded sums; only mild cutoffs can pay off, and less than\n"
            << "the AQFT (paper Sec. III).\n";
  return 0;
}
